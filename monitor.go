package monocle

// Proxy-layer re-exports: the per-switch Monitor state machine that sits
// between an SDN controller and its switch, the probe-routing Multiplexer,
// and the virtual clock they run on. Transport integrations (cmd/monocle's
// TCP proxy, the simulated testbed) wire messages in and out; the Monitor
// itself owns no goroutines and must be driven from one event-loop thread.

import (
	imon "monocle/internal/monocle"
	"monocle/internal/packet"
	"monocle/internal/sim"
)

// Monitor proxies one controller-switch session and monitors that switch:
// FlowMods update the expected table and trigger dynamic probe
// confirmation; steady-state cycling probes every installed rule.
type Monitor = imon.Monitor

// MonitorConfig parameterizes one Monitor.
type MonitorConfig = imon.Config

// MonitorStats counts one Monitor's activity.
type MonitorStats = imon.MonitorStats

// Multiplexer routes caught probes between the Monitors of a fleet by the
// switch id embedded in the probe metadata. Its routing table is safe for
// concurrent use; RouteCaught deliveries and Register follow the owning
// Monitor's single-threaded contract (register a monitor before its event
// loop starts; deliver on that loop's thread).
type Multiplexer = imon.Multiplexer

// MuxStats counts multiplexer routing results.
type MuxStats = imon.MuxStats

// HostPeer marks a port that leads out of the monitored core: probes
// emitted there are lost (no catcher, §3.5).
const HostPeer = imon.HostPeer

// NewMonitor creates a Monitor on the given virtual clock. Wire
// ToSwitch/ToController (and a Multiplexer for multi-switch deployments)
// before delivering messages. Prefer Fleet.AttachMonitor for fleets.
func NewMonitor(s *Sim, cfg MonitorConfig) *Monitor { return imon.New(s, cfg) }

// NewMultiplexer returns an empty probe-routing multiplexer.
func NewMultiplexer() *Multiplexer { return imon.NewMultiplexer() }

// NewMonitorConfig returns the paper-default Monitor parameters for one
// switch, with facade options applied: WithProbeField/WithProbeTag set
// the probe tagging, WithPeers the port-to-neighbour map,
// WithDetectionTimeout the steady-state alarm timeout, WithProbeRate the
// steady probing rate, and WithCounting the multicast/ECMP exception.
func NewMonitorConfig(switchID uint32, opts ...Option) MonitorConfig {
	set := defaultSettings()
	set.apply(opts)
	cfg := imon.DefaultConfig(switchID)
	cfg.ProbeField = set.probeField
	if set.probeTag != 0 {
		cfg.TagValue = uint32(set.probeTag)
	}
	if set.peers != nil {
		cfg.PortPeer = set.monitorPeers()
	}
	if len(set.ports) > 0 {
		cfg.Ports = append([]PortID(nil), set.ports...)
	}
	if set.detectionTimeout > 0 {
		cfg.AlarmTimeout = set.detectionTimeout
		cfg.DynamicTimeout = set.detectionTimeout
	}
	if set.probeRate > 0 {
		cfg.ProbeRate = set.probeRate
	}
	cfg.Counting = set.counting
	return cfg
}

// ProbeMetadata identifies one in-flight probe: it rides in the probe
// payload and routes the caught probe back to its owning Monitor.
type ProbeMetadata = packet.Metadata

// Expectation tells the collector how to interpret a probe's arrival.
type Expectation = packet.Expectation

// Expectation values.
const (
	// ExpectPresent: arrival consistent with Present confirms the rule.
	ExpectPresent = packet.ExpectPresent
	// ExpectAbsent: arrival consistent with Absent confirms a deletion.
	ExpectAbsent = packet.ExpectAbsent
	// ExpectModified: arrival with the new rewrite confirms a
	// modification.
	ExpectModified = packet.ExpectModified
)

// CraftFrame serializes an abstract probe header plus payload into a real
// Ethernet/IPv4 frame (what PacketOut carries).
func CraftFrame(h Header, payload []byte) ([]byte, error) { return packet.Craft(h, payload) }

// ParseFrame decodes a frame back into the abstract header and payload.
func ParseFrame(frame []byte) (Header, []byte, error) { return packet.Parse(frame) }

// UnmarshalProbeMetadata decodes a probe payload; it returns an error for
// payloads that are not Monocle probes.
func UnmarshalProbeMetadata(b []byte) (ProbeMetadata, error) { return packet.UnmarshalMetadata(b) }

// Sim is the discrete-event virtual clock the Monitor runs on. Real-time
// integrations (cmd/monocle) advance it against the wall clock; simulated
// ones (the testbed, the experiments) drive it directly.
type Sim = sim.Sim

// Time is a virtual-clock timestamp (a duration since the clock's zero).
type Time = sim.Time

// Timer is a cancellable scheduled callback on a Sim.
type Timer = sim.Timer

// NewSim returns a virtual clock at time zero.
func NewSim() *Sim { return sim.New() }
