package monocle_test

// Cluster coordinator tests: the sharded fleet behind one aggregating
// control plane must be indistinguishable — byte for byte — from a single
// monocled, regardless of how many replicas the fleet is cut into or how
// many sweep workers each replica runs. The kill/restart e2e additionally
// pins the failure story: a dead replica degrades only its own shard, and
// a restart from the same state directory yields zero false recoveries
// and an aggregated alert stream identical to the run where nothing died.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"monocle"
)

// clusterDriver drives the scripted deployment against one base URL — a
// coordinator or a bare monocled; the script cannot tell the difference.
type clusterDriver struct {
	t    *testing.T
	base string
}

func (d *clusterDriver) req(method, path string, body []byte) ([]byte, int) {
	d.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, d.base+path, rd)
	if err != nil {
		d.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		d.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		d.t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

func (d *clusterDriver) mustJSON(method, path string, v any, wantStatus int) []byte {
	d.t.Helper()
	var body []byte
	if v != nil {
		var err error
		body, err = json.Marshal(v)
		if err != nil {
			d.t.Fatal(err)
		}
	}
	resp, status := d.req(method, path, body)
	if status != wantStatus {
		d.t.Fatalf("%s %s: status %d (want %d): %s", method, path, status, wantStatus, resp)
	}
	return resp
}

func (d *clusterDriver) addSwitch(id uint32) {
	d.mustJSON(http.MethodPost, "/switches", monocle.SwitchSpec{ID: id}, http.StatusCreated)
}

func (d *clusterDriver) ruleOp(sw uint32, op monocle.RuleOp) {
	d.mustJSON(http.MethodPost, fmt.Sprintf("/switches/%d/rules", sw), op, http.StatusOK)
}

func (d *clusterDriver) sweep() (alerts []monocle.Alert) {
	d.t.Helper()
	resp := d.mustJSON(http.MethodPost, "/sweep", nil, http.StatusOK)
	var out struct {
		Alerts []monocle.Alert `json:"alerts"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		d.t.Fatal(err)
	}
	return out.Alerts
}

// clusterStreams captures the three aggregated read surfaces the
// determinism differential compares byte for byte.
type clusterStreams struct {
	alerts   []byte
	sweeps   []byte
	switches []byte
}

func (d *clusterDriver) streams() clusterStreams {
	d.t.Helper()
	alerts, _ := d.req(http.MethodGet, "/alerts", nil)
	sweeps, _ := d.req(http.MethodGet, "/sweeps", nil)
	switches, _ := d.req(http.MethodGet, "/switches", nil)
	return clusterStreams{alerts: alerts, sweeps: sweeps, switches: switches}
}

func testRule(sw uint32, j int) monocle.RuleSpec {
	return monocle.RuleSpec{ID: uint64(7 + j), Priority: 10 + j,
		Match:   map[string]string{"dl_type": "0x800", "nw_src": fmt.Sprintf("10.%d.%d.1", sw, j)},
		Actions: []monocle.ActionSpec{{Output: 9}}}
}

// runClusterScript drives the canonical deployment: 6 sim switches × 2
// rules, a healthy sweep, two injected data-plane faults, the failing
// sweep, a quiet sweep, the heal, and the recovery sweep.
func runClusterScript(t *testing.T, d *clusterDriver) clusterStreams {
	t.Helper()
	for id := uint32(1); id <= 6; id++ {
		d.addSwitch(id)
		for j := 0; j < 2; j++ {
			rs := testRule(id, j)
			d.ruleOp(id, monocle.RuleOp{Op: "add", Rule: &rs})
		}
	}
	if alerts := d.sweep(); len(alerts) != 0 {
		t.Fatalf("healthy sweep alerted: %+v", alerts)
	}
	// Silent hardware-side rule loss on two switches (which land on
	// different replicas for most shardings).
	d.ruleOp(2, monocle.RuleOp{Op: "delete", ID: 7, Dataplane: "actual"})
	d.ruleOp(5, monocle.RuleOp{Op: "delete", ID: 8, Dataplane: "actual"})
	if alerts := d.sweep(); len(alerts) != 2 {
		t.Fatalf("want 2 rule_failing alerts, got %+v", alerts)
	}
	if alerts := d.sweep(); len(alerts) != 0 {
		t.Fatalf("already-alerted fault re-fired: %+v", alerts)
	}
	r27, r58 := testRule(2, 0), testRule(5, 1)
	d.ruleOp(2, monocle.RuleOp{Op: "add", Rule: &r27, Dataplane: "actual"})
	d.ruleOp(5, monocle.RuleOp{Op: "add", Rule: &r58, Dataplane: "actual"})
	if alerts := d.sweep(); len(alerts) != 2 {
		t.Fatalf("want 2 rule_recovered alerts, got %+v", alerts)
	}
	return d.streams()
}

// startCluster boots n sim-backed replicas behind a coordinator and
// returns the coordinator's base URL.
func startCluster(t *testing.T, n, workers int) string {
	t.Helper()
	specs := make([]monocle.ReplicaSpec, n)
	for i := 0; i < n; i++ {
		svc := monocle.NewService(monocle.WithWorkers(workers), monocle.WithDebounce(1))
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { ts.Close(); svc.Close() })
		specs[i] = monocle.ReplicaSpec{Name: fmt.Sprintf("shard-%d", i), URL: ts.URL}
	}
	coord, err := monocle.NewCoordinator(monocle.ClusterConfig{Replicas: specs})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { cts.Close(); coord.Close() })
	return cts.URL
}

// TestClusterAggregationDifferential is the determinism pin: the
// aggregated /alerts, /sweeps and /switches streams must be byte-identical
// across replica counts 1/2/4 and worker budgets 1/2/8 — and identical to
// a standalone monocled driven through the very same script.
func TestClusterAggregationDifferential(t *testing.T) {
	var want clusterStreams
	first := ""
	check := func(name string, got clusterStreams) {
		t.Helper()
		if first == "" {
			want, first = got, name
			return
		}
		if !bytes.Equal(got.alerts, want.alerts) {
			t.Errorf("%s /alerts diverges from %s:\n got %s\nwant %s", name, first, got.alerts, want.alerts)
		}
		if !bytes.Equal(got.sweeps, want.sweeps) {
			t.Errorf("%s /sweeps diverges from %s:\n got %s\nwant %s", name, first, got.sweeps, want.sweeps)
		}
		if !bytes.Equal(got.switches, want.switches) {
			t.Errorf("%s /switches diverges from %s:\n got %s\nwant %s", name, first, got.switches, want.switches)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		// Standalone monocled: the reference the cluster must reproduce.
		svc := monocle.NewService(monocle.WithWorkers(workers), monocle.WithDebounce(1))
		ts := httptest.NewServer(svc.Handler())
		check(fmt.Sprintf("standalone/workers=%d", workers),
			runClusterScript(t, &clusterDriver{t: t, base: ts.URL}))
		ts.Close()
		svc.Close()
		for _, replicas := range []int{1, 2, 4} {
			url := startCluster(t, replicas, workers)
			check(fmt.Sprintf("replicas=%d/workers=%d", replicas, workers),
				runClusterScript(t, &clusterDriver{t: t, base: url}))
		}
	}
	if len(want.alerts) == 0 {
		t.Fatal("differential compared empty alert streams")
	}
	// The aggregated stream's seq tags are the merged global order 1..N.
	lines := bytes.Split(bytes.TrimSpace(want.alerts), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("want 4 alerts in the stream, got %d: %s", len(lines), want.alerts)
	}
	for i, line := range lines {
		var a monocle.Alert
		if err := json.Unmarshal(line, &a); err != nil {
			t.Fatal(err)
		}
		if a.Seq != uint64(i+1) {
			t.Fatalf("alert %d has seq %d, want %d: %s", i, a.Seq, i+1, line)
		}
	}
}

// TestClusterShardMap pins the shard surface: every registered switch is
// owned by exactly one live replica, the map agrees with the
// coordinator's routing, and single-replica clusters own everything.
func TestClusterShardMap(t *testing.T) {
	url := startCluster(t, 3, 1)
	d := &clusterDriver{t: t, base: url}
	for id := uint32(1); id <= 12; id++ {
		d.addSwitch(id)
	}
	resp := d.mustJSON(http.MethodGet, "/shards", nil, http.StatusOK)
	var m monocle.ShardMap
	if err := json.Unmarshal(resp, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Replicas) != 3 || len(m.Switches) != 12 || len(m.Degraded) != 0 {
		t.Fatalf("bad shard map: %s", resp)
	}
	owned := map[string]int{}
	for id, owner := range m.Switches {
		if got := m.Owner(id); got != owner {
			t.Fatalf("switch %d: map says %q, rendezvous says %q", id, owner, got)
		}
		owned[owner]++
	}
	// Each switch reachable through the coordinator exactly where the map
	// says: a rule op on every switch must route without error.
	for id := uint32(1); id <= 12; id++ {
		rs := testRule(id, 0)
		d.ruleOp(id, monocle.RuleOp{Op: "add", Rule: &rs})
	}
}

// TestClusterMetricsFederation checks the rollups add up and the
// Prometheus rendering carries replica labels.
func TestClusterMetricsFederation(t *testing.T) {
	url := startCluster(t, 2, 1)
	d := &clusterDriver{t: t, base: url}
	for id := uint32(1); id <= 4; id++ {
		d.addSwitch(id)
		rs := testRule(id, 0)
		d.ruleOp(id, monocle.RuleOp{Op: "add", Rule: &rs})
	}
	d.sweep()
	resp := d.mustJSON(http.MethodGet, "/metrics", nil, http.StatusOK)
	var m monocle.ClusterMetrics
	if err := json.Unmarshal(resp, &m); err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 1 || m.Switches != 4 || len(m.Replicas) != 2 {
		t.Fatalf("bad cluster metrics: %s", resp)
	}
	if m.RulesSwept != 4 {
		t.Fatalf("rules_swept rollup = %d, want 4", m.RulesSwept)
	}
	req, _ := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	promResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(promResp.Body)
	prom := buf.String()
	for _, want := range []string{
		"monocle_cluster_sweep_rounds_total 1",
		"monocle_cluster_switches 4",
		`monocle_replica_up{replica="shard-0"} 1`,
		`monocle_replica_up{replica="shard-1"} 1`,
		`monocle_sweep_rounds_total{replica="shard-0"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

// TestClusterPolicyFanout: a PUT /policy through the coordinator lands on
// every replica and the aggregated reply unions the group assignments.
func TestClusterPolicyFanout(t *testing.T) {
	url := startCluster(t, 2, 1)
	d := &clusterDriver{t: t, base: url}
	for id := uint32(1); id <= 4; id++ {
		d.addSwitch(id)
	}
	policy := "policy all { select all }\n"
	resp, status := d.req(http.MethodPut, "/policy", []byte(policy))
	if status != http.StatusOK {
		t.Fatalf("PUT /policy: %d: %s", status, resp)
	}
	var put struct {
		Groups      []string            `json:"groups"`
		Assignments map[string][]uint32 `json:"assignments"`
	}
	if err := json.Unmarshal(resp, &put); err != nil {
		t.Fatal(err)
	}
	if len(put.Assignments["all"]) != 4 {
		t.Fatalf("assignment union wrong: %s", resp)
	}
	body, status := d.req(http.MethodGet, "/policy", nil)
	if status != http.StatusOK || !bytes.Equal(body, []byte(policy)) {
		t.Fatalf("GET /policy: %d: %q", status, body)
	}
	// A policy that does not parse must be rejected before any replica
	// sees it (shards must never diverge on the active policy).
	resp, status = d.req(http.MethodPut, "/policy", []byte("policy { nope"))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad policy accepted: %d: %s", status, resp)
	}
	if body, status := d.req(http.MethodGet, "/policy", nil); status != http.StatusOK || !bytes.Equal(body, []byte(policy)) {
		t.Fatalf("rejected policy clobbered the active one: %d: %q", status, body)
	}
}

// liveRule is a rule a live TCP sim switch can actually prove: unlike
// testRule it outputs to a real port, so the probe has a catcher.
func liveRule(sw uint32) monocle.RuleSpec {
	return monocle.RuleSpec{ID: 7, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": fmt.Sprintf("10.0.%d.0/24", sw)},
		Actions: []monocle.ActionSpec{{Output: 2}}}
}

// replicaProc is one live replica in the kill/restart e2e: a Service on a
// real TCP HTTP listener whose address survives a restart.
type replicaProc struct {
	svc  *monocle.Service
	srv  *http.Server
	addr string
}

func startReplicaProc(t *testing.T, svc *monocle.Service, addr string) *replicaProc {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("replica listen %s: %v", addr, err)
	}
	p := &replicaProc{svc: svc, addr: ln.Addr().String()}
	p.srv = &http.Server{Handler: svc.Handler()}
	go p.srv.Serve(ln)
	return p
}

// kill simulates the process dying: the HTTP listener and the service
// (with its backend connections) go away; the state directory survives.
func (p *replicaProc) kill() {
	p.srv.Close()
	p.svc.Close()
}

// clusterE2EStreams runs the live-TCP kill/restart script and returns the
// aggregated alert stream. With kill=true the replica owning the broken
// switch dies right after the failing alert and is restarted from its
// state directory; with kill=false it just keeps serving. Both runs
// execute the identical sweep script, so the streams must match.
func clusterE2EStreams(t *testing.T, kill bool) []byte {
	t.Helper()
	const victim = uint32(2)

	// Three live TCP switches, self-looped ports.
	servers := map[uint32]*monocle.SwitchServer{}
	for id := uint32(1); id <= 3; id++ {
		srv, err := monocle.StartSwitchServer(monocle.SwitchServerConfig{
			ID: id, Ports: []monocle.PortID{1, 2, 3, 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[id] = srv
	}

	// Three replicas with per-shard state dirs on fixed TCP addresses.
	baseDir := t.TempDir()
	newReplica := func(name string) *monocle.Service {
		return monocle.NewService(
			monocle.WithWorkers(1),
			monocle.WithDebounce(1),
			monocle.WithDetectionTimeout(500*time.Millisecond),
			monocle.WithStateDir(baseDir+"/"+name),
		)
	}
	procs := map[string]*replicaProc{}
	var specs []monocle.ReplicaSpec
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard-%d", i)
		p := startReplicaProc(t, newReplica(name), "127.0.0.1:0")
		procs[name] = p
		specs = append(specs, monocle.ReplicaSpec{Name: name, URL: "http://" + p.addr})
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.kill()
		}
	})
	coord, err := monocle.NewCoordinator(monocle.ClusterConfig{Replicas: specs})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { cts.Close(); coord.Close() })
	d := &clusterDriver{t: t, base: cts.URL}

	// Register the live switches through the coordinator and install one
	// rule each, confirmed over the wire.
	for id := uint32(1); id <= 3; id++ {
		d.mustJSON(http.MethodPost, "/switches", monocle.SwitchSpec{
			ID: id, Backend: "proxy", Address: servers[id].Addr(),
			Ports: []uint16{1, 2, 3, 4},
			Peers: map[uint16]uint32{1: id, 2: id, 3: id, 4: id},
		}, http.StatusCreated)
		rs := liveRule(id)
		d.ruleOp(id, monocle.RuleOp{Op: "add", Rule: &rs})
	}
	if alerts := d.sweep(); len(alerts) != 0 {
		t.Fatalf("healthy sweep alerted: %+v", alerts)
	}

	// Silent hardware fault on the victim switch.
	servers[victim].FailRule(7)
	alerts := d.sweep()
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleFailing || alerts[0].SwitchID != victim {
		t.Fatalf("want one rule_failing on switch %d, got %+v", victim, alerts)
	}

	victimShard := coord.Owner(victim).Name
	if kill {
		// The owning replica dies mid-serve. Its shard — and only its
		// shard — degrades; the fleet survives.
		procs[victimShard].kill()
		var h monocle.ClusterHealth
		if err := json.Unmarshal(d.mustJSON(http.MethodGet, "/healthz", nil, http.StatusOK), &h); err != nil {
			t.Fatal(err)
		}
		if h.OK || len(h.Degraded) != 1 || h.Degraded[0] != victimShard {
			t.Fatalf("healthz after kill: %+v", h)
		}
		// Ops on the dead shard fail loudly with the shard name...
		rs := liveRule(victim)
		body, _ := json.Marshal(monocle.RuleOp{Op: "add", Rule: &rs})
		resp, status := d.req(http.MethodPost, fmt.Sprintf("/switches/%d/rules", victim), body)
		if status != http.StatusServiceUnavailable || !strings.Contains(string(resp), victimShard) {
			t.Fatalf("op on dead shard: %d: %s", status, resp)
		}
		// ...while the aggregated read surface stays up, marked degraded.
		req, _ := http.NewRequest(http.MethodGet, cts.URL+"/alerts", nil)
		aresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		aresp.Body.Close()
		if got := aresp.Header.Get("X-Monocle-Degraded"); got != victimShard {
			t.Fatalf("X-Monocle-Degraded = %q, want %q", got, victimShard)
		}

		// Restart: same name, same state directory, same address. Resume
		// replays the WAL and re-dials the live switch.
		svc := newReplica(victimShard)
		if err := svc.Resume(context.Background()); err != nil {
			t.Fatalf("resume: %v", err)
		}
		procs[victimShard] = startReplicaProc(t, svc, procs[victimShard].addr)
		var h2 monocle.ClusterHealth
		if err := json.Unmarshal(d.mustJSON(http.MethodGet, "/healthz", nil, http.StatusOK), &h2); err != nil {
			t.Fatal(err)
		}
		if !h2.OK {
			t.Fatalf("healthz after restart: %+v", h2)
		}
	}

	// The fault is still in the hardware and was already alerted: the
	// next sweep must stay quiet — in particular the restarted replica
	// must not claim rule_recovered.
	if alerts := d.sweep(); len(alerts) != 0 {
		t.Fatalf("false alert after %v: %+v", map[bool]string{true: "restart", false: "steady state"}[kill], alerts)
	}

	// Heal the hardware for real; exactly the injected failure recovers.
	servers[victim].HealRule(7)
	rs := liveRule(victim)
	d.ruleOp(victim, monocle.RuleOp{Op: "add", Rule: &rs, Dataplane: "actual"})
	alerts = d.sweep()
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleRecovered || alerts[0].SwitchID != victim {
		t.Fatalf("want exactly one rule_recovered on switch %d, got %+v", victim, alerts)
	}

	stream, _ := d.req(http.MethodGet, "/alerts", nil)
	return stream
}

// TestClusterKillRestartE2E is the CI cluster e2e: a 3-replica cluster
// over live TCP switches survives a replica kill + restart with an
// aggregated alert stream byte-identical to the run where nothing died.
func TestClusterKillRestartE2E(t *testing.T) {
	control := clusterE2EStreams(t, false)
	killed := clusterE2EStreams(t, true)
	if !bytes.Equal(control, killed) {
		t.Fatalf("kill/restart changed the aggregated alert stream:\n no-kill %s\n    kill %s", control, killed)
	}
	if len(bytes.TrimSpace(control)) == 0 {
		t.Fatal("e2e produced an empty alert stream")
	}
}

// TestServiceCloseConcurrent pins Service.Close as idempotent and safe
// concurrently with itself, with Run's drain, and with in-flight sweeps —
// the coordinator teardown path hits all three at once.
func TestServiceCloseConcurrent(t *testing.T) {
	svc := monocle.NewService(monocle.WithWorkers(2), monocle.WithSteadyInterval(time.Millisecond))
	if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	rs := testRule(1, 0)
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- svc.Run(ctx) }()
	time.Sleep(5 * time.Millisecond) // let Run sweep

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = svc.Close()
		}(i)
	}
	cancel()
	wg.Wait()
	if err := <-runDone; err != nil && err != context.Canceled {
		t.Fatalf("Run: %v", err)
	}
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close() not idempotent: call %d returned %v, call 0 returned %v", i, err, errs[0])
		}
	}
	// And once more after everything settled.
	if err := svc.Close(); err != errs[0] {
		t.Fatalf("late Close() returned %v, want %v", err, errs[0])
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /livez is always
// 200, /readyz stays 503 until the first completed round of this process
// life, and flips back to 503 on drain.
func TestReadyzLifecycle(t *testing.T) {
	svc := monocle.NewService(monocle.WithWorkers(1), monocle.WithDebounce(1))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	d := &clusterDriver{t: t, base: ts.URL}

	status := func(path string) int {
		_, code := d.req(http.MethodGet, path, nil)
		return code
	}
	if got := status("/livez"); got != http.StatusOK {
		t.Fatalf("/livez before first round: %d", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before first round: %d, want 503", got)
	}
	if svc.Ready() {
		t.Fatal("Ready() true before first round")
	}
	d.addSwitch(1)
	d.sweep()
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after first round: %d, want 200", got)
	}
	if !svc.Ready() {
		t.Fatal("Ready() false after first round")
	}

	// A cancelled Run marks the service draining: not ready, still live.
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- svc.Run(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-runDone
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", got)
	}
	if got := status("/livez"); got != http.StatusOK {
		t.Fatalf("/livez while draining: %d", got)
	}
}

// TestReadyzResumeGate: a restarted service is not ready between process
// start and its first post-Resume round, so a coordinator never routes to
// a replica that has not re-proven its fleet.
func TestReadyzResumeGate(t *testing.T) {
	dir := t.TempDir()
	svc := monocle.NewService(monocle.WithWorkers(1), monocle.WithDebounce(1), monocle.WithStateDir(dir))
	if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	rs := testRule(1, 0)
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs}); err != nil {
		t.Fatal(err)
	}
	svc.SweepRound(context.Background())
	if !svc.Ready() {
		t.Fatal("first life not ready after a round")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := monocle.NewService(monocle.WithWorkers(1), monocle.WithDebounce(1), monocle.WithStateDir(dir))
	defer svc2.Close()
	if svc2.Ready() {
		t.Fatal("restarted service ready before Resume")
	}
	if err := svc2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Resume restores rounds, but readiness needs a round of THIS life.
	if svc2.Ready() {
		t.Fatal("restarted service ready before its first post-Resume round")
	}
	svc2.SweepRound(context.Background())
	if !svc2.Ready() {
		t.Fatal("restarted service not ready after its post-Resume round")
	}
}
