package monocle

// Evaluation-harness re-exports: the paper's experiment runners (§8), the
// catching-rule coloring planner (§6), the topology generators, and the
// synthetic ACL datasets. They let user programs (and the bundled
// examples) rerun the paper's evaluation through the public API alone.

import (
	"monocle/internal/coloring"
	"monocle/internal/dataset"
	"monocle/internal/experiments"
	"monocle/internal/topo"
)

// Graph is an undirected graph over switches 0..N-1 (coloring input).
type Graph = coloring.Graph

// ColoringAssignment is the result of planning reserved probe-tag values
// for one topology and strategy.
type ColoringAssignment = coloring.Assignment

// Topology is a named graph from one of the generator families.
type Topology = topo.Topology

// NewGraph returns an edgeless graph on n vertices.
func NewGraph(n int) *Graph { return coloring.NewGraph(n) }

// Waxman generates a Waxman random WAN-like topology.
func Waxman(n int, alpha, beta float64, seed int64) Topology {
	return topo.Waxman(n, alpha, beta, seed)
}

// NoColoring is the baseline assignment: one reserved value per switch.
func NoColoring(g *Graph) ColoringAssignment { return coloring.NoColoring(g) }

// PlanStrategy1 plans reserved values for single-field probe tagging: a
// proper coloring of the topology graph (§6).
func PlanStrategy1(g *Graph, budget int64) ColoringAssignment {
	return coloring.PlanStrategy1(g, budget)
}

// PlanStrategy2 plans reserved values for two-field probe tagging: a
// proper coloring of the square graph (§6).
func PlanStrategy2(g *Graph, budget int64) ColoringAssignment {
	return coloring.PlanStrategy2(g, budget)
}

// ValidColoring reports whether colors is a proper coloring of g.
func ValidColoring(g *Graph, colors []int) bool { return coloring.Valid(g, colors) }

// DatasetProfile parameterizes one synthetic ACL rule-set family.
type DatasetProfile = dataset.Profile

// StanfordDataset is the Stanford-backbone-like ACL profile (Table 2).
func StanfordDataset() DatasetProfile { return dataset.Stanford() }

// CampusDataset is the campus-network-like ACL profile (Table 2).
func CampusDataset() DatasetProfile { return dataset.Campus() }

// GenerateDataset builds the profile's flow table and returns it with its
// rules (deterministic for a given profile).
func GenerateDataset(p DatasetProfile) (*Table, []*Rule) { return dataset.Generate(p) }

// Experiment configuration and result rows (§8 figures and tables).
type (
	// Table2Config parameterizes the per-rule generation-latency table.
	Table2Config = experiments.Table2Config
	// Table2Row is one dataset row of Table 2.
	Table2Row = experiments.Table2Row
	// Table2SweepRow is one whole-table incremental-sweep row.
	Table2SweepRow = experiments.Table2SweepRow
	// Figure4Config parameterizes the steady-state detection experiment.
	Figure4Config = experiments.Figure4Config
	// Figure4Scenario is one failure scenario of Figure 4.
	Figure4Scenario = experiments.Figure4Scenario
	// Figure4Result carries the detection-latency CDF series.
	Figure4Result = experiments.Figure4Result
	// Figure5Config parameterizes the consistent-update experiment.
	Figure5Config = experiments.Figure5Config
	// Figure5Flow is one rerouted flow's timeline.
	Figure5Flow = experiments.Figure5Flow
	// Figure5Result is one (switch, mode) consistent-update run.
	Figure5Result = experiments.Figure5Result
	// Figure6Point is one PacketOut:FlowMod interference measurement.
	Figure6Point = experiments.Figure6Point
	// Figure7Point is one PacketIn interference measurement.
	Figure7Point = experiments.Figure7Point
	// SwitchRatesRow is one switch's standalone message-rate row.
	SwitchRatesRow = experiments.SwitchRatesRow
	// Figure8Config parameterizes the batched FatTree update experiment.
	Figure8Config = experiments.Figure8Config
	// Figure8Result is one batched-update run.
	Figure8Result = experiments.Figure8Result
	// Figure9Row is one topology's coloring result.
	Figure9Row = experiments.Figure9Row
	// Figure9Result is a corpus of coloring results.
	Figure9Result = experiments.Figure9Result
)

// RunTable2 measures per-rule probe-generation latency on the synthetic
// ACL datasets.
func RunTable2(cfg Table2Config) []Table2Row { return experiments.RunTable2(cfg) }

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string { return experiments.FormatTable2(rows) }

// RunTable2Sweep measures whole-table sweeps through the incremental
// engine (limit 0 = full tables, parallelism 0 = all CPUs).
func RunTable2Sweep(limit, parallelism int) []Table2SweepRow {
	return experiments.RunTable2Sweep(limit, parallelism)
}

// FormatTable2Sweep renders incremental-sweep rows.
func FormatTable2Sweep(rows []Table2SweepRow) string { return experiments.FormatTable2Sweep(rows) }

// DefaultFigure4 returns the paper's Figure 4 configuration at the given
// repetition count.
func DefaultFigure4(reps int) Figure4Config { return experiments.DefaultFigure4(reps) }

// RunFigure4 runs the steady-state failure-detection experiment.
func RunFigure4(cfg Figure4Config) Figure4Result { return experiments.RunFigure4(cfg) }

// FormatFigure4 renders the detection-latency CDFs.
func FormatFigure4(r Figure4Result) string { return experiments.FormatFigure4(r) }

// DefaultFigure5 runs the consistent-update experiment across the
// paper's switch profiles and modes.
func DefaultFigure5(flows int) []Figure5Result { return experiments.DefaultFigure5(flows) }

// RunFigure5 runs one consistent-update configuration.
func RunFigure5(cfg Figure5Config) Figure5Result { return experiments.RunFigure5(cfg) }

// FormatFigure5 renders consistent-update results.
func FormatFigure5(results []Figure5Result) string { return experiments.FormatFigure5(results) }

// RunFigure6 sweeps the PacketOut:FlowMod interference matrix.
func RunFigure6() []Figure6Point { return experiments.RunFigure6() }

// FormatFigure6 renders the PacketOut interference matrix.
func FormatFigure6(points []Figure6Point) string { return experiments.FormatFigure6(points) }

// RunFigure7 sweeps the PacketIn interference matrix.
func RunFigure7() []Figure7Point { return experiments.RunFigure7() }

// FormatFigure7 renders the PacketIn interference matrix.
func FormatFigure7(points []Figure7Point) string { return experiments.FormatFigure7(points) }

// RunSwitchRates measures each profile's standalone message rates.
func RunSwitchRates() []SwitchRatesRow { return experiments.RunSwitchRates() }

// FormatSwitchRates renders the standalone rate table.
func FormatSwitchRates(rows []SwitchRatesRow) string { return experiments.FormatSwitchRates(rows) }

// DefaultFigure8 runs the batched FatTree update experiment with and
// without Monocle.
func DefaultFigure8(paths int) []Figure8Result { return experiments.DefaultFigure8(paths) }

// RunFigure8 runs one batched-update configuration.
func RunFigure8(cfg Figure8Config) Figure8Result { return experiments.RunFigure8(cfg) }

// FormatFigure8 renders batched-update results.
func FormatFigure8(results []Figure8Result) string { return experiments.FormatFigure8(results) }

// RunFigure9Zoo colors the Topology-Zoo-like corpus (§8.2).
func RunFigure9Zoo(budget int64, limit int) Figure9Result {
	return experiments.RunFigure9Zoo(budget, limit)
}

// RunFigure9Rocketfuel colors the Rocketfuel-like corpus (§8.2).
func RunFigure9Rocketfuel(budget int64, limit int) Figure9Result {
	return experiments.RunFigure9Rocketfuel(budget, limit)
}

// FormatFigure9 renders a coloring corpus's summary.
func FormatFigure9(r Figure9Result) string { return experiments.FormatFigure9(r) }
