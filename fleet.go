package monocle

// Fleet: the sharded multi-switch sweep service. The paper deploys one
// Monocle proxy per switch-controller connection (§7); a production
// deployment monitors a fleet. Fleet owns one Verifier per member switch,
// shards a bounded solver-worker budget across concurrent per-switch
// sweeps, and streams the per-rule results over a context-aware channel.
// It can also host the proxy Monitors of a live deployment, wired through
// one shared Multiplexer so probes caught at any member switch route back
// to their owner.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	imon "monocle/internal/monocle"
)

// ErrDuplicateSwitch reports an AddSwitch/AttachMonitor id already
// registered in the fleet.
var ErrDuplicateSwitch = errors.New("monocle: switch already in the fleet")

// Fleet verifies a fleet of switches. Members are added with AddSwitch
// (offline/sweep verification) or AttachMonitor (live proxy monitoring);
// Sweep, Stream, and Serve run steady-state probe generation across every
// member under the fleet-wide worker budget (WithWorkers).
//
// Fleet is safe for concurrent use, with one carve-out: members attached
// via AttachMonitor are swept on the calling goroutine, which must be the
// monitors' event-loop thread (see Multiplexer's contract).
type Fleet struct {
	set settings

	mu      sync.Mutex
	members []*fleetMember
	byID    map[uint32]*fleetMember
	mux     *imon.Multiplexer
}

// fleetMember is one monitored switch: verifier-backed (AddSwitch,
// AddBackend), self-sweeping backend-backed (AttachBackend), or
// monitor-backed (AttachMonitor). be, when set, is the data-plane driver
// paired with the member.
type fleetMember struct {
	id  uint32
	v   *Verifier
	mon *imon.Monitor
	be  Backend
}

// SweepEvent is one per-rule result streamed from a fleet sweep.
type SweepEvent struct {
	// SwitchID identifies the member switch the result belongs to.
	SwitchID uint32
	// Epoch is the member's table-change epoch the probe was generated
	// against; results from superseded epochs can be discarded.
	Epoch uint64
	// Result carries the rule, the generated probe, and the error, if
	// any (ErrUnmonitorable, a context error, or an internal failure).
	Result ProbeResult
}

// NewFleet returns an empty fleet. WithWorkers bounds the total solver
// budget its sweeps use; WithSteadyInterval paces Serve.
func NewFleet(opts ...Option) *Fleet {
	set := defaultSettings()
	set.apply(opts)
	return &Fleet{
		set:  set,
		byID: make(map[uint32]*fleetMember),
		mux:  imon.NewMultiplexer(),
	}
}

// AddSwitch registers switch id for sweep verification and returns its
// Verifier. Per-switch options override the fleet-wide ones; by default
// the switch's probe tag is its id (strategy 1, §6). Adding a duplicate
// id fails.
func (f *Fleet) AddSwitch(id uint32, opts ...Option) (*Verifier, error) {
	v, err := newVerifier(id, &f.set, opts)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byID[id]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateSwitch, id)
	}
	m := &fleetMember{id: id, v: v}
	f.members = append(f.members, m)
	f.byID[id] = m
	return v, nil
}

// AttachMonitor registers a live proxy Monitor for cfg.SwitchID: the
// monitor is created on the given virtual clock, wired into the fleet's
// shared Multiplexer (probes caught at any attached switch route back to
// their owner), and its expected table joins the fleet's sweeps. The
// caller wires ToSwitch/ToController and drives the monitor from one
// event-loop thread; fleet sweeps over attached monitors must run on that
// same thread.
func (f *Fleet) AttachMonitor(s *Sim, cfg MonitorConfig) (*Monitor, error) {
	mon := imon.New(s, cfg)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byID[cfg.SwitchID]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateSwitch, cfg.SwitchID)
	}
	f.mux.Register(mon)
	m := &fleetMember{id: cfg.SwitchID, mon: mon}
	f.members = append(f.members, m)
	f.byID[cfg.SwitchID] = m
	return mon, nil
}

// AddBackend registers switch backend be for sweep verification: the
// member gets a facade Verifier for its expected table (like AddSwitch)
// paired with be as its data-plane driver, so consumers — the monocled
// Service above all — can judge every generated probe against the data
// plane through the Backend seam. Per-switch options override the
// fleet-wide ones. The caller connects and closes the backend.
func (f *Fleet) AddBackend(be Backend, opts ...Option) (*Verifier, error) {
	id := be.SwitchID()
	v, err := newVerifier(id, &f.set, opts)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byID[id]; dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateSwitch, id)
	}
	m := &fleetMember{id: id, v: v, be: be}
	f.members = append(f.members, m)
	f.byID[id] = m
	return v, nil
}

// AttachBackend registers a self-sweeping backend: one that owns its
// switch's expected flow table (a live ProxyBackend learning it from the
// FlowMods it proxies) and therefore implements Sweeper. Such members are
// swept through the driver itself, concurrently with verifier-backed
// members under the fleet worker budget. The caller connects and closes
// the backend.
func (f *Fleet) AttachBackend(be Backend) error {
	if _, ok := be.(Sweeper); !ok {
		return fmt.Errorf("monocle: backend for switch %d does not sweep its own expected table (no Sweeper); use AddBackend with a Verifier instead", be.SwitchID())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byID[be.SwitchID()]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateSwitch, be.SwitchID())
	}
	m := &fleetMember{id: be.SwitchID(), be: be}
	f.members = append(f.members, m)
	f.byID[be.SwitchID()] = m
	return nil
}

// Backend returns the data-plane driver of a switch registered with
// AddBackend or AttachBackend.
func (f *Fleet) Backend(id uint32) (Backend, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.byID[id]
	if !ok || m.be == nil {
		return nil, false
	}
	return m.be, true
}

// Multiplexer returns the fleet's shared probe-routing multiplexer.
func (f *Fleet) Multiplexer() *Multiplexer { return f.mux }

// Verifier returns the Verifier of a switch added with AddSwitch.
func (f *Fleet) Verifier(id uint32) (*Verifier, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.byID[id]
	if !ok || m.v == nil {
		return nil, false
	}
	return m.v, true
}

// Switches returns the member switch ids in registration order.
func (f *Fleet) Switches() []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint32, len(f.members))
	for i, m := range f.members {
		out[i] = m.id
	}
	return out
}

// Size returns the number of member switches.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// Sweep runs one steady-state sweep over every member switch and returns
// the per-rule events grouped by member in registration order (rules in
// table priority order within a member). Verifier-backed members sweep
// concurrently under the fleet worker budget; each member's probe set is
// bit-identical to a standalone sweep of its table regardless of the
// budget or the sharding.
func (f *Fleet) Sweep(ctx context.Context) []SweepEvent {
	members := f.snapshot()
	perMember := make([][]SweepEvent, len(members))
	f.sweepInto(ctx, members, nil, func(i int, evs []SweepEvent) { perMember[i] = evs })
	return collectEvents(perMember)
}

// SweepPlan runs one sweep restricted to a probe plan: only member
// switches present in sel are swept, each over the given rule-id subset.
// A nil subset sweeps the member's whole table; an empty non-nil subset
// sweeps nothing for that member (a sampled round that chose no rules)
// while still claiming its sweep slot. Event ordering and determinism
// match Sweep: members in registration order, rules in table priority
// order, bit-identical for any worker budget.
func (f *Fleet) SweepPlan(ctx context.Context, sel map[uint32][]uint64) []SweepEvent {
	members := f.snapshot()
	picked := members[:0:0]
	for _, m := range members {
		if _, ok := sel[m.id]; ok {
			picked = append(picked, m)
		}
	}
	perMember := make([][]SweepEvent, len(picked))
	f.sweepInto(ctx, picked, sel, func(i int, evs []SweepEvent) { perMember[i] = evs })
	return collectEvents(perMember)
}

// collectEvents concatenates per-member event slices into one result
// sized in a single allocation (the old grow-by-append doubled its way
// up every round), then recycles the per-member backing arrays for the
// next round's memberEvents.
func collectEvents(perMember [][]SweepEvent) []SweepEvent {
	total := 0
	for _, evs := range perMember {
		total += len(evs)
	}
	out := make([]SweepEvent, 0, total)
	for _, evs := range perMember {
		out = append(out, evs...)
		recycleMemberEvents(evs)
	}
	return out
}

// Stream runs one sweep like Sweep but streams events as each member
// completes, over a channel that closes when the sweep finishes or the
// context is cancelled. Fleets with attached Monitors should prefer the
// synchronous Sweep from the monitors' event-loop thread.
//
// Cancellation is deterministic: once the context is cancelled the sweep
// stops claiming members, delivery halts, and the channel closes promptly
// whether or not the consumer keeps draining. At most the single event
// already offered to the consumer at cancellation time is still
// delivered; everything after it is dropped, never a random subset.
func (f *Fleet) Stream(ctx context.Context) <-chan SweepEvent {
	out := make(chan SweepEvent)
	inner := make(chan SweepEvent)
	members := f.snapshot()
	go func() {
		defer close(inner)
		f.sweepInto(ctx, members, nil, func(_ int, evs []SweepEvent) {
			for _, ev := range evs {
				select {
				case inner <- ev:
				case <-ctx.Done():
					return
				}
			}
		})
	}()
	go func() {
		defer close(out)
		// drain unblocks the producer side after cancellation so the
		// sweep goroutines always exit, draining consumer or not.
		drain := func() {
			for range inner {
			}
		}
		for {
			// Poll cancellation first: a ready ctx.Done must win over a
			// ready inner event, or a post-cancel drain would receive a
			// nondeterministic subset of the in-flight events.
			if ctx.Err() != nil {
				drain()
				return
			}
			select {
			case <-ctx.Done():
				drain()
				return
			case ev, ok := <-inner:
				if !ok {
					return
				}
				if ctx.Err() != nil {
					drain()
					return
				}
				select {
				case out <- ev:
				case <-ctx.Done():
					drain()
					return
				}
			}
		}
	}()
	return out
}

// Serve runs steady-state sweeps every WithSteadyInterval until the
// context is cancelled, delivering every event to sink (called from
// Serve's goroutine). It returns the context's error.
func (f *Fleet) Serve(ctx context.Context, sink func(SweepEvent)) error {
	ticker := time.NewTicker(f.set.steadyInterval)
	defer ticker.Stop()
	for {
		for _, ev := range f.Sweep(ctx) {
			sink(ev)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// snapshot copies the member list under the lock.
func (f *Fleet) snapshot() []*fleetMember {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*fleetMember(nil), f.members...)
}

// sweepInto sweeps every member, invoking done(i, events) once per member
// (possibly concurrently for verifier- and sweeper-backend-backed
// members). The worker budget B is sharded: with K = min(B, members)
// member sweeps in flight, each gets B/K solver workers, so the fleet
// never runs more than B solver goroutines at once. Monitor-backed
// members sweep sequentially on the calling goroutine with the full
// budget (their event-loop contract); self-sweeping backends marshal onto
// their own loops internally, so they join the concurrent pool.
//
// sel, when non-nil, restricts each member to a rule-id subset (SweepPlan):
// verifier-backed members generate only the subset; self-sweeping and
// monitor-backed members sweep their own table and the events are filtered
// afterwards (their table is theirs to enumerate).
func (f *Fleet) sweepInto(ctx context.Context, members []*fleetMember, sel map[uint32][]uint64, done func(int, []SweepEvent)) {
	budget := f.set.effectiveWorkers()

	var vIdx []int
	for i, m := range members {
		if m.v != nil {
			vIdx = append(vIdx, i)
			continue
		}
		if _, ok := m.be.(Sweeper); ok {
			vIdx = append(vIdx, i)
		}
	}
	if k := len(vIdx); k > 0 {
		if k > budget {
			k = budget
		}
		share := budget / k
		if share < 1 {
			share = 1
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					// A cancelled sweep stops claiming members; rules of
					// already-claimed members carry the context error.
					if ctx.Err() != nil {
						return
					}
					n := int(next.Add(1)) - 1
					if n >= len(vIdx) {
						return
					}
					i := vIdx[n]
					m := members[i]
					subset, limited := planSubset(sel, m.id)
					var (
						epoch   uint64
						results []ProbeResult
					)
					switch {
					case m.v != nil && limited:
						epoch, results = m.v.sweepSubset(ctx, subset)
					case m.v != nil:
						epoch, results = m.v.sweepShard(ctx, share)
					default:
						epoch, results = m.be.(Sweeper).SweepExpected(ctx, share)
						if limited {
							results = filterResults(results, subset)
						}
					}
					done(i, memberEvents(m.id, epoch, results))
				}
			}()
		}
		wg.Wait()
	}

	for i, m := range members {
		if m.mon == nil {
			continue
		}
		epoch := m.mon.Epoch()
		results := m.mon.SweepExpected(ctx, budget)
		if subset, limited := planSubset(sel, m.id); limited {
			results = filterResults(results, subset)
		}
		done(i, memberEvents(m.id, epoch, results))
	}
}

// planSubset looks up one member's rule subset in a sweep plan. The second
// return is false when the member should sweep its whole table (no plan,
// or a nil subset).
func planSubset(sel map[uint32][]uint64, id uint32) ([]uint64, bool) {
	if sel == nil {
		return nil, false
	}
	subset, ok := sel[id]
	return subset, ok && subset != nil
}

// filterResults keeps only results for the planned rule ids, preserving
// order.
func filterResults(results []ProbeResult, ids []uint64) []ProbeResult {
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := results[:0:0]
	for _, res := range results {
		if res.Rule != nil && want[res.Rule.ID] {
			out = append(out, res)
		}
	}
	return out
}

// memberEvents wraps one member's sweep results as events, reusing a
// recycled backing array when one fits (see collectEvents).
func memberEvents(id uint32, epoch uint64, results []ProbeResult) []SweepEvent {
	evs := takeMemberEvents(len(results))
	for _, res := range results {
		evs = append(evs, SweepEvent{SwitchID: id, Epoch: epoch, Result: res})
	}
	return evs
}

// memberEventPool recycles per-member event slice backing arrays across
// sweep rounds. Stream's events are never recycled (they outlive the
// sweep on the consumer's side of the channel by value, but the slices
// are dropped mid-loop on cancellation), only Sweep/SweepPlan's.
var memberEventPool sync.Pool

// takeMemberEvents returns a zero-length event slice with capacity for
// n, pooled when a big-enough recycled array is available.
func takeMemberEvents(n int) []SweepEvent {
	if p, ok := memberEventPool.Get().(*[]SweepEvent); ok {
		if evs := *p; cap(evs) >= n {
			return evs[:0]
		}
	}
	return make([]SweepEvent, 0, n)
}

// recycleMemberEvents clears and pools one per-member slice. Elements
// are zeroed first so the pool does not pin the round's Rule and Probe
// objects beyond the round that produced them.
func recycleMemberEvents(evs []SweepEvent) {
	if cap(evs) == 0 {
		return
	}
	evs = evs[:cap(evs)]
	for i := range evs {
		evs[i] = SweepEvent{}
	}
	boxed := evs[:0]
	memberEventPool.Put(&boxed)
}
