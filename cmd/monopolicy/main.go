// Command monopolicy checks and explains Monocle monitoring policies
// offline — the pre-flight for `monocled -policy` and `PUT /policy`.
//
// Check mode (the default) parses the policy and prints its canonical
// form; a parse or validation error prints as file:line:col and exits
// non-zero, so a bad policy fails in CI instead of at the switch:
//
//	monopolicy edge.policy
//
// Explain mode compiles the policy against a described fleet and prints
// each switch's resolved assignment — winning group, cadence, sampling,
// thresholds, alert filter — and, with -rules, the exact probe plan a
// sweep round would execute (which rule ids are probed, which are left
// unsampled), as JSON lines:
//
//	monopolicy -explain -switches "1=edge;2=edge,rack7;9=core" edge.policy
//	monopolicy -explain -switches "1=edge;9=core" -rules 200 -round 3 edge.policy
//
// Because probe plans are a pure function of (policy, switch, rules,
// round), the plan printed here is byte-identical to what a running
// monocled compiles for the same inputs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"monocle"
)

func main() {
	var (
		explain  = flag.Bool("explain", false, "resolve the policy against a fleet (-switches) and print per-switch assignments")
		switches = flag.String("switches", "", `fleet description for -explain: "id=tag,tag;id=;..." (e.g. "1=edge;2=edge,rack7;9=core")`)
		rules    = flag.Int("rules", 0, "with -explain: compile the full probe plan against this many synthetic rules (ids 1..n)")
		round    = flag.Uint64("round", 0, "with -rules: the group sweep-round index to compile the plan for (drives sampling)")
		quiet    = flag.Bool("q", false, "check only; print nothing on success")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: monopolicy [-explain -switches SPEC [-rules N -round R]] <policy-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	pol, err := monocle.ParsePolicyFile(path)
	if err != nil {
		// A *PolicyError renders "line:col: message"; prefix the file so
		// editors and CI annotations can jump to the position.
		var perr *monocle.PolicyError
		if errors.As(err, &perr) {
			fmt.Fprintf(os.Stderr, "%s:%v\n", path, perr)
		} else {
			fmt.Fprintf(os.Stderr, "monopolicy: %v\n", err)
		}
		os.Exit(1)
	}

	if !*explain {
		if !*quiet {
			// The canonical form: normalized values, fixed directive
			// order — what the policy means, not how it was typed.
			fmt.Print(pol.String())
		}
		return
	}

	fleet, err := parseFleet(*switches)
	if err != nil {
		fmt.Fprintf(os.Stderr, "monopolicy: -switches: %v\n", err)
		os.Exit(2)
	}
	table := syntheticRules(*rules)
	enc := json.NewEncoder(os.Stdout)
	for _, sw := range fleet {
		if *rules > 0 {
			if err := enc.Encode(pol.Plan(sw.id, sw.tags, table, *round)); err != nil {
				fmt.Fprintf(os.Stderr, "monopolicy: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		asn := pol.Assignment(sw.id, sw.tags)
		if err := enc.Encode(struct {
			Switch uint32                   `json:"switch"`
			Tags   []string                 `json:"tags,omitempty"`
			Plan   monocle.PolicyAssignment `json:"assignment"`
		}{sw.id, sw.tags, asn}); err != nil {
			fmt.Fprintf(os.Stderr, "monopolicy: %v\n", err)
			os.Exit(1)
		}
	}
}

// fleetSwitch is one -switches entry.
type fleetSwitch struct {
	id   uint32
	tags []string
}

// parseFleet parses the "id=tag,tag;id=;..." fleet description.
func parseFleet(spec string) ([]fleetSwitch, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("describe the fleet, e.g. -switches \"1=edge;9=core\"")
	}
	var out []fleetSwitch
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, tagStr, _ := strings.Cut(part, "=")
		id, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad switch id %q", idStr)
		}
		var tags []string
		for _, t := range strings.Split(tagStr, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tags = append(tags, t)
			}
		}
		out = append(out, fleetSwitch{id: uint32(id), tags: tags})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out, nil
}

// syntheticRules builds a stand-in table of n wildcard rules (ids 1..n)
// so sampling decisions — a pure function of (seed, switch, rule, round)
// — can be previewed without the real tables.
func syntheticRules(n int) []*monocle.Rule {
	rules := make([]*monocle.Rule, n)
	for i := range rules {
		rules[i] = &monocle.Rule{
			ID:       uint64(i + 1),
			Priority: n - i,
			Match:    monocle.MatchAll(),
			Actions:  []monocle.Action{monocle.Output(1)},
		}
	}
	return rules
}
