// Command experiments regenerates the paper's evaluation tables and
// figures (§8) on the simulated substrate and prints the same rows/series
// the paper reports.
//
// Usage:
//
//	experiments -all
//	experiments -fig 4 -reps 1000
//	experiments -table 2
//	experiments -fig 9 -zoo 261 -rocketfuel 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"monocle"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every experiment")
		fig    = flag.Int("fig", 0, "figure number to run (4,5,6,7,8,9; 67 for the §8.3.1 scalars)")
		table  = flag.Int("table", 0, "table number to run (2)")
		reps   = flag.Int("reps", 100, "repetitions for Figure 4 (paper: 1000)")
		flows  = flag.Int("flows", 300, "flows for Figure 5 (paper: 300)")
		paths  = flag.Int("paths", 2000, "paths for Figure 8 (paper: 2000)")
		zoo    = flag.Int("zoo", 261, "Zoo-like topologies for Figure 9")
		rocket = flag.Int("rocketfuel", 10, "Rocketfuel-like topologies for Figure 9")
		budget = flag.Int64("budget", 2_000_000, "exact-coloring search budget per graph")
	)
	flag.Parse()

	ran := false
	run := func(n int) bool {
		if *all || *fig == n {
			ran = true
			return true
		}
		return false
	}

	if *all || *table == 2 {
		ran = true
		start := time.Now()
		rows := monocle.RunTable2(monocle.Table2Config{})
		fmt.Print(monocle.FormatTable2(rows))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))

		start = time.Now()
		sweep := monocle.RunTable2Sweep(0, 0)
		fmt.Print(monocle.FormatTable2Sweep(sweep))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run(4) {
		start := time.Now()
		res := monocle.RunFigure4(monocle.DefaultFigure4(*reps))
		fmt.Print(monocle.FormatFigure4(res))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run(5) {
		start := time.Now()
		res := monocle.DefaultFigure5(*flows)
		fmt.Print(monocle.FormatFigure5(res))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run(6) {
		fmt.Print(monocle.FormatFigure6(monocle.RunFigure6()))
		fmt.Println()
	}
	if run(7) {
		fmt.Print(monocle.FormatFigure7(monocle.RunFigure7()))
		fmt.Println()
	}
	if *all || *fig == 67 {
		ran = true
		fmt.Print(monocle.FormatSwitchRates(monocle.RunSwitchRates()))
		fmt.Println()
	}
	if run(8) {
		start := time.Now()
		res := monocle.DefaultFigure8(*paths)
		fmt.Print(monocle.FormatFigure8(res))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if run(9) {
		start := time.Now()
		fmt.Print(monocle.FormatFigure9(monocle.RunFigure9Zoo(*budget, *zoo)))
		fmt.Print(monocle.FormatFigure9(monocle.RunFigure9Rocketfuel(*budget, *rocket)))
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -fig N or -table 2")
		flag.Usage()
		os.Exit(2)
	}
}
