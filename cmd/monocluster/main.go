// Command monocluster is the sharded monocled control plane: N replica
// services each own a deterministic slice of the switch fleet (rendezvous
// hashing on switch id), and one coordinator re-exposes them as a single
// aggregated HTTP surface — merged /alerts and /sweeps streams in a
// deterministic global order, federated /metrics with replica-labelled
// series, and a cluster-aware /healthz that names degraded shards.
//
// Two membership modes:
//
//	monocluster -replicas 3 -state-dir /var/lib/monocle
//	    spawn mode: runs 3 in-process replicas (shard-0..shard-2) on
//	    consecutive ports next to the coordinator, each with its own
//	    WAL under <state-dir>/<shard>, resumed on start.
//
//	monocluster -join shard-0=http://10.0.0.7:8866,shard-1=http://10.0.0.8:8866
//	    join mode: fronts already-running monocled replicas. Names are
//	    the shard identities — keep them stable across restarts or the
//	    whole fleet reshards.
//
// The aggregated surface speaks the same API as a single monocled:
//
//	curl -X POST :8866/switches -d '{"id":1}'      # routed to the owner
//	curl :8866/shards                              # the live shard map
//	curl :8866/alerts                              # merged global stream
//	curl :8866/healthz                             # per-replica health
//
// On SIGINT/SIGTERM spawn-mode replicas drain their in-flight rounds and
// every HTTP server shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"monocle"
)

func main() {
	var (
		listen    = flag.String("listen", ":8866", "coordinator HTTP listen address")
		replicas  = flag.Int("replicas", 0, "spawn mode: run this many in-process replicas (shard-0..shard-N-1)")
		repHost   = flag.String("replica-host", "127.0.0.1", "spawn mode: host replicas bind to")
		repBase   = flag.Int("replica-base-port", 8871, "spawn mode: first replica port (shard-i listens on base+i)")
		join      = flag.String("join", "", "join mode: comma-separated name=url static membership of running monocled replicas")
		interval  = flag.Duration("interval", 2*time.Second, "spawn mode: steady-state sweep interval per replica")
		workers   = flag.Int("workers", 0, "spawn mode: per-replica solver-worker budget (0 = all CPUs)")
		debounce  = flag.Int("debounce", 1, "spawn mode: consecutive failing sweeps before a rule alert")
		stateDir  = flag.String("state-dir", "", "spawn mode: per-shard WAL directories under <dir>/<shard>; replicas resume from them on start")
		checkIntv = flag.Duration("check-interval", 2*time.Second, "replica health-check cadence")
	)
	flag.Parse()
	if (*replicas > 0) == (*join != "") {
		log.Fatal("monocluster: exactly one of -replicas (spawn) or -join (front) is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var specs []monocle.ReplicaSpec
	var wg sync.WaitGroup
	var servers []*http.Server

	if *replicas > 0 {
		for i := 0; i < *replicas; i++ {
			name := fmt.Sprintf("shard-%d", i)
			opts := []monocle.Option{
				monocle.WithWorkers(*workers),
				monocle.WithSteadyInterval(*interval),
				monocle.WithDebounce(*debounce),
			}
			if *stateDir != "" {
				opts = append(opts, monocle.WithStateDir(*stateDir+"/"+name))
			}
			svc := monocle.NewService(opts...)
			defer svc.Close()
			if *stateDir != "" {
				if err := svc.Resume(ctx); err != nil {
					log.Printf("monocluster %s resume (continuing): %v", name, err)
				}
			}
			addr := fmt.Sprintf("%s:%d", *repHost, *repBase+i)
			srv := &http.Server{Addr: addr, Handler: svc.Handler()}
			servers = append(servers, srv)
			go func(name string) {
				if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
					log.Fatalf("monocluster %s: %v", name, err)
				}
			}(name)
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if err := svc.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
					log.Printf("monocluster %s run: %v", name, err)
				}
			}(name)
			specs = append(specs, monocle.ReplicaSpec{Name: name, URL: "http://" + addr})
			log.Printf("monocluster replica %s on %s", name, addr)
		}
	} else {
		for _, part := range strings.Split(*join, ",") {
			name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				log.Fatalf("monocluster: -join entry %q is not name=url", part)
			}
			specs = append(specs, monocle.ReplicaSpec{Name: name, URL: url})
		}
	}

	coord, err := monocle.NewCoordinator(monocle.ClusterConfig{
		Replicas:      specs,
		CheckInterval: *checkIntv,
	})
	if err != nil {
		log.Fatalf("monocluster: %v", err)
	}
	defer coord.Close()
	go coord.Run(ctx)

	srv := &http.Server{Addr: *listen, Handler: coord.Handler()}
	go func() {
		log.Printf("monocluster coordinator on %s fronting %d replicas", *listen, len(specs))
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("monocluster: %v", err)
		}
	}()

	<-ctx.Done()
	log.Print("monocluster draining")
	wg.Wait() // spawn-mode replicas finish their in-flight rounds
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range append(servers, srv) {
		if err := s.Shutdown(shutdownCtx); err != nil {
			log.Printf("monocluster shutdown: %v", err)
		}
	}
}
