// Command monocled is the long-running Monocle fleet service: an HTTP
// control surface over a monocle.Fleet of switch Backends — simulated
// data planes (backend "sim") or live TCP OpenFlow 1.0 switches fronted
// by the library's proxy driver (backend "proxy") — with the cross-epoch
// diff engine turning every sweep into alerts, delivered through
// pluggable sinks (-alert-webhook, -alert-log, the in-memory ring behind
// GET /alerts).
//
//	monocled -listen :8866 -interval 2s -debounce 2 \
//	         -alert-webhook http://pager.example/hook
//
// Lifecycle (see the README's "Running monocled" section for a full curl
// session):
//
//	curl -X POST :8866/switches -d '{"id":1}'
//	curl -X POST :8866/switches -d \
//	     '{"id":2,"backend":"proxy","address":"10.0.0.5:6653"}'  # live switch
//	curl -X POST :8866/switches/1/rules -d '{"op":"add","rule":{...}}'
//	curl -X POST :8866/switches/1/rules \
//	     -d '{"op":"delete","id":7,"dataplane":"actual"}'   # break hardware
//	curl :8866/alerts                                       # watch it surface
//	curl -H 'Accept: text/plain' :8866/metrics              # Prometheus scrape
//
// On SIGINT/SIGTERM the service drains: the in-flight sweep round
// completes, /healthz reports draining, and the HTTP server shuts down
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"monocle"
)

func main() {
	var (
		listen     = flag.String("listen", ":8866", "HTTP listen address")
		interval   = flag.Duration("interval", 2*time.Second, "steady-state sweep interval")
		workers    = flag.Int("workers", 0, "fleet-wide solver-worker budget (0 = all CPUs)")
		debounce   = flag.Int("debounce", 1, "consecutive failing sweeps before a rule alert")
		stall      = flag.Int("stall", 3, "missed sweep rounds before a switch-stalled alert")
		flapWin    = flag.Int("flap-window", 6, "sweep window for verdict-flap detection")
		flapN      = flag.Int("flap-flips", 3, "status flips inside the window that count as flapping")
		ring       = flag.Int("alert-ring", 4096, "alerts retained in memory for GET /alerts")
		webhook    = flag.String("alert-webhook", "", "POST each round's alerts as a JSON array to this URL")
		alertLog   = flag.Bool("alert-log", false, "log one ALERT line per alert on stderr")
		stateDir   = flag.String("state-dir", "", "persist switches, epoch snapshots, and alerts in this directory and resume from it on start")
		reconMin   = flag.Duration("reconnect-min", 100*time.Millisecond, "first proxy-backend reconnect backoff delay")
		reconMax   = flag.Duration("reconnect-max", 15*time.Second, "proxy-backend reconnect backoff cap")
		recordDir  = flag.String("record-dir", "", "record every switch's backend session to <dir>/switch-<id>.trace for deterministic replay (monotrace)")
		policyFile = flag.String("policy", "", "monitoring-policy file: per-group sweep cadences, rule sampling, alert filters (validate with monopolicy)")
	)
	flag.Parse()

	opts := []monocle.Option{
		monocle.WithWorkers(*workers),
		monocle.WithSteadyInterval(*interval),
		monocle.WithDebounce(*debounce),
		monocle.WithStallThreshold(*stall),
		monocle.WithFlapWindow(*flapWin, *flapN),
		monocle.WithAlertSink(monocle.NewRingSink(*ring)),
		monocle.WithReconnectBackoff(*reconMin, *reconMax),
	}
	if *webhook != "" {
		opts = append(opts, monocle.WithAlertSink(monocle.NewWebhookSink(*webhook, nil)))
	}
	if *alertLog {
		opts = append(opts, monocle.WithAlertSink(monocle.NewLogSink(nil)))
	}
	if *stateDir != "" {
		opts = append(opts, monocle.WithStateDir(*stateDir))
	}
	if *recordDir != "" {
		opts = append(opts, monocle.WithRecordDir(*recordDir))
	}
	if *policyFile != "" {
		// Unlike WithPolicyFile (which degrades to no policy), a policy
		// named on the command line failing to parse is an operator typo
		// that should stop the launch, with the source position.
		p, err := monocle.ParsePolicyFile(*policyFile)
		if err != nil {
			log.Fatalf("monocled: -policy %s: %v", *policyFile, err)
		}
		opts = append(opts, monocle.WithPolicy(p))
	}
	svc := monocle.NewService(opts...)
	defer svc.Close()
	if *stateDir != "" {
		if err := svc.Resume(context.Background()); err != nil {
			log.Printf("monocled resume (continuing): %v", err)
		}
	}
	srv := &http.Server{Addr: *listen, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		log.Printf("monocled listening on %s (sweep interval %v)", *listen, *interval)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("monocled: %v", err)
		}
	}()

	err := svc.Run(ctx)
	log.Printf("monocled draining: %v", err)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("monocled shutdown: %v", err)
	}
}
