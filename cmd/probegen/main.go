// Command probegen generates data plane probes offline: it loads a flow
// table description from JSON, runs the Monocle probe generator for every
// rule (or one selected rule), and prints the probe header, the expected
// outcomes, and solver statistics. With -json it emits one ResultRecord
// object per line, the stream format the fleet sweep service and scripts
// consume.
//
// JSON input format (array of rules):
//
//	[
//	  {"id":1, "priority":10,
//	   "match": {"nw_src":"10.0.0.0/8", "nw_proto":"6", "tp_dst":"80"},
//	   "actions":[{"output":2},{"set":"nw_tos","value":46}]}
//	]
//
// Field names follow OpenFlow 1.0 (in_port, dl_src, dl_dst, dl_type,
// dl_vlan, dl_vlan_pcp, nw_src, nw_dst, nw_proto, nw_tos, tp_src, tp_dst).
// Prefixes are supported on nw_src/nw_dst; an empty action list is a drop.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"monocle"
)

type jsonAction struct {
	Output *uint16  `json:"output,omitempty"`
	Set    string   `json:"set,omitempty"`
	Value  uint64   `json:"value,omitempty"`
	ECMP   []uint16 `json:"ecmp,omitempty"`
}

type jsonRule struct {
	ID       uint64            `json:"id"`
	Priority int               `json:"priority"`
	Match    map[string]string `json:"match"`
	Actions  []jsonAction      `json:"actions"`
}

var fieldByName = map[string]monocle.FieldID{}

func init() {
	for f := monocle.FieldID(0); f < monocle.NumFields; f++ {
		fieldByName[f.String()] = f
	}
}

func parseMatch(m map[string]string) (monocle.Match, error) {
	out := monocle.MatchAll()
	for name, val := range m {
		f, ok := fieldByName[name]
		if !ok {
			return out, fmt.Errorf("unknown field %q", name)
		}
		if (f == monocle.IPSrc || f == monocle.IPDst) && strings.Contains(val, "/") {
			parts := strings.SplitN(val, "/", 2)
			ip, err := parseIP(parts[0])
			if err != nil {
				return out, err
			}
			plen, err := strconv.Atoi(parts[1])
			if err != nil {
				return out, err
			}
			out = out.With(f, monocle.Prefix(f, ip, plen))
			continue
		}
		var v uint64
		var err error
		if strings.Contains(val, ".") {
			v, err = parseIP(val)
		} else {
			v, err = strconv.ParseUint(strings.TrimPrefix(val, "0x"), pickBase(val), 64)
		}
		if err != nil {
			return out, fmt.Errorf("field %s: %v", name, err)
		}
		out = out.WithExact(f, v)
	}
	return out, nil
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func parseIP(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, err
		}
		v = v<<8 | b
	}
	return v, nil
}

func toRule(jr jsonRule) (*monocle.Rule, error) {
	m, err := parseMatch(jr.Match)
	if err != nil {
		return nil, err
	}
	r := &monocle.Rule{ID: jr.ID, Priority: jr.Priority, Match: m}
	for _, a := range jr.Actions {
		switch {
		case a.Output != nil:
			r.Actions = append(r.Actions, monocle.Output(monocle.PortID(*a.Output)))
		case len(a.ECMP) > 0:
			ports := make([]monocle.PortID, len(a.ECMP))
			for i, p := range a.ECMP {
				ports[i] = monocle.PortID(p)
			}
			r.Actions = append(r.Actions, monocle.ECMP(ports...))
		case a.Set != "":
			f, ok := fieldByName[a.Set]
			if !ok {
				return nil, fmt.Errorf("unknown set field %q", a.Set)
			}
			r.Actions = append(r.Actions, monocle.SetField(f, a.Value))
		default:
			return nil, fmt.Errorf("empty action entry")
		}
	}
	return r, r.Validate()
}

func main() {
	var (
		in       = flag.String("in", "-", "JSON rule file ('-' = stdin)")
		ruleID   = flag.Uint64("rule", 0, "generate for this rule id only (0 = all)")
		tag      = flag.Uint64("tag", 1, "probe tag value (Collect constraint on dl_vlan)")
		miss     = flag.String("miss", "drop", "table-miss behaviour: drop|controller")
		stats    = flag.Bool("stats", false, "sweep with the incremental clustered engine and report per-worker solver statistics")
		workers  = flag.Int("workers", 0, "worker count for -stats/-json sweeps (0 = all CPUs)")
		jsonMode = flag.Bool("json", false, "emit one ResultRecord JSON object per line (stream format of the fleet sweep service)")
	)
	flag.Parse()

	var data []byte
	var err error
	if *in == "-" {
		data, err = readAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fatal(err)
	}
	var jrs []jsonRule
	if err := json.Unmarshal(data, &jrs); err != nil {
		fatal(fmt.Errorf("parsing rules: %w", err))
	}

	opts := []monocle.Option{
		monocle.WithProbeTag(*tag),
		monocle.WithWorkers(*workers),
	}
	if *miss == "controller" {
		opts = append(opts, monocle.WithTableMiss(monocle.MissController))
	}
	v, err := monocle.NewVerifier(opts...)
	if err != nil {
		fatal(err)
	}
	var rules []*monocle.Rule
	for i, jr := range jrs {
		r, err := toRule(jr)
		if err != nil {
			fatal(fmt.Errorf("rule %d: %w", i, err))
		}
		if err := v.Install(r); err != nil {
			fatal(err)
		}
		rules = append(rules, r)
	}

	switch {
	case *jsonMode:
		sweepJSON(v, *ruleID)
	case *stats:
		if *ruleID != 0 {
			fatal(errors.New("-stats sweeps the whole table; drop -rule"))
		}
		sweepWithStats(v)
	default:
		perRule(v, rules, *ruleID)
	}
}

// perRule is the classic human-readable mode: one generation per rule
// through the verifier's cached session, with wall times.
func perRule(v *monocle.Verifier, rules []*monocle.Rule, ruleID uint64) {
	found, unmon := 0, 0
	for _, r := range rules {
		if ruleID != 0 && r.ID != ruleID {
			continue
		}
		start := time.Now()
		p, err := v.ProbeFor(r.ID)
		el := time.Since(start)
		if errors.Is(err, monocle.ErrUnmonitorable) {
			unmon++
			fmt.Printf("rule %d: UNMONITORABLE (%v)\n", r.ID, el.Round(time.Microsecond))
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("rule %d: %w", r.ID, err))
		}
		found++
		printProbe(r.ID, p)
		fmt.Printf("         time=%v\n", el.Round(time.Microsecond))
	}
	fmt.Printf("probes found: %d, unmonitorable: %d\n", found, unmon)
}

// sweepJSON emits one ResultRecord per line for the whole table (or just
// the selected rule), the stream format scripts and the fleet service
// parse.
func sweepJSON(v *monocle.Verifier, ruleID uint64) {
	enc := json.NewEncoder(os.Stdout)
	emit := func(res monocle.ProbeResult) {
		if res.Err != nil && !errors.Is(res.Err, monocle.ErrUnmonitorable) {
			fatal(fmt.Errorf("rule %d: %w", res.Rule.ID, res.Err))
		}
		if err := enc.Encode(monocle.NewResultRecord(0, 0, res)); err != nil {
			fatal(err)
		}
	}
	if ruleID != 0 {
		// Single rule: one generation, not a whole-table sweep.
		var rule *monocle.Rule
		for _, r := range v.Rules() {
			if r.ID == ruleID {
				rule = r
				break
			}
		}
		if rule == nil {
			fatal(fmt.Errorf("rule %d: %w", ruleID, monocle.ErrNotFound))
		}
		p, err := v.ProbeFor(ruleID)
		emit(monocle.ProbeResult{Rule: rule, Probe: p, Err: err})
		return
	}
	for _, res := range v.Sweep(context.Background()) {
		emit(res)
	}
}

// sweepWithStats runs the whole table through the incremental clustered
// batch engine and reports what each worker's solver did.
func sweepWithStats(v *monocle.Verifier) {
	start := time.Now()
	results, ws := v.SweepStats(context.Background())
	wall := time.Since(start)
	found, unmon := 0, 0
	for _, res := range results {
		if errors.Is(res.Err, monocle.ErrUnmonitorable) {
			unmon++
			fmt.Printf("rule %d: UNMONITORABLE\n", res.Rule.ID)
			continue
		}
		if res.Err != nil {
			fatal(fmt.Errorf("rule %d: %w", res.Rule.ID, res.Err))
		}
		found++
		printProbe(res.Rule.ID, res.Probe)
	}
	fmt.Printf("probes found: %d, unmonitorable: %d, wall=%v\n", found, unmon, wall.Round(time.Microsecond))
	fmt.Printf("%-8s %8s %10s %12s %14s %12s\n",
		"worker", "rules", "clusters", "decisions", "propagations", "conflicts")
	var tot monocle.WorkerStats
	for _, w := range ws {
		fmt.Printf("%-8d %8d %10d %12d %14d %12d\n",
			w.Worker, w.Rules, w.Clusters, w.Decisions, w.Propagations, w.Conflicts)
		tot.Rules += w.Rules
		tot.Clusters += w.Clusters
		tot.Decisions += w.Decisions
		tot.Propagations += w.Propagations
		tot.Conflicts += w.Conflicts
	}
	fmt.Printf("%-8s %8d %10d %12d %14d %12d\n",
		"total", tot.Rules, tot.Clusters, tot.Decisions, tot.Propagations, tot.Conflicts)
}

func printProbe(id uint64, p *monocle.Probe) {
	fmt.Printf("rule %d: probe %s\n", id, p.Header)
	fmt.Printf("         present: %s\n", describeOutcome(p.Present))
	fmt.Printf("         absent:  %s\n", describeOutcome(p.Absent))
	fmt.Printf("         vars=%d clauses=%d overlapping=%d\n",
		p.Stats.Vars, p.Stats.Clauses, p.Stats.Overlapping)
}

func describeOutcome(o monocle.Outcome) string {
	if o.Drop {
		return "dropped (negative probing)"
	}
	s := ""
	for i, e := range o.Emissions {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("port %d", e.Port)
	}
	if o.ECMP {
		s = "one of: " + s
	}
	return s
}

func readAll(f *os.File) ([]byte, error) { return io.ReadAll(f) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probegen:", err)
	os.Exit(1)
}
