// Command monocle runs Monocle proxy Monitors over real TCP OpenFlow 1.0
// connections, as in the paper's deployment: for each monitored switch the
// SDN controller connects to a proxy listen address, the proxy dials the
// switch, and every message is intercepted by that switch's Monitor state
// machine — FlowMods update the expected table and trigger dynamic probe
// monitoring; steady-state cycling can be enabled with -steady.
//
// Single-switch mode mirrors the paper's one-proxy-per-switch deployment
// (§7):
//
//	monocle -listen :16653 -switch 10.0.0.5:6653 -id 3 \
//	        -peers 1=5,2=7 -steady
//
// Fleet mode drives N switches through one monocle.Fleet in a single
// process: every Monitor shares one event loop and one probe-routing
// Multiplexer, so probes caught at any member switch are routed back to
// their owner — which a process-per-switch deployment cannot do. Specs
// are semicolon-separated; within a spec the peer map uses ':' pairs:
//
//	monocle -fleet "id=1,listen=:16653,switch=10.0.0.5:6653,peers=1:2 2:3;\
//	                id=2,listen=:16654,switch=10.0.0.6:6653,peers=1:1" \
//	        -steady -sweep 30s
//
// With -sweep, the fleet periodically sweeps every expected table through
// the shared worker budget and emits one ResultRecord JSON line per rule
// on stdout (the same stream format as `probegen -json`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"monocle"
)

// rtLoop drives a monocle.Sim in wall-clock time: external events are
// posted through a channel, timers fire when their virtual due time
// passes. All Monitor state machines stay single-threaded inside the
// loop, satisfying the Multiplexer's event-loop contract.
type rtLoop struct {
	s     *monocle.Sim
	ch    chan func()
	start time.Time
}

func newRTLoop() *rtLoop {
	return &rtLoop{s: monocle.NewSim(), ch: make(chan func(), 1024), start: time.Now()}
}

// post queues fn onto the loop thread.
func (l *rtLoop) post(fn func()) { l.ch <- fn }

// run is the loop body (blocks forever).
func (l *rtLoop) run() {
	for {
		now := time.Since(l.start)
		l.s.RunUntil(now)
		var wait time.Duration = 50 * time.Millisecond
		if at, ok := l.s.NextEventAt(); ok {
			if d := at - l.s.Now(); d < wait {
				wait = d
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case fn := <-l.ch:
			l.s.RunUntil(time.Since(l.start))
			fn()
		case <-time.After(wait):
		}
	}
}

// switchSpec is one monitored switch's configuration.
type switchSpec struct {
	id     uint32
	listen string
	swAddr string
	peers  map[monocle.PortID]uint32
	tag    uint64
}

// parsePeerPairs parses port/switchID pairs (one per element, split on
// kvSep) into a peer map.
func parsePeerPairs(pairs []string, kvSep string) (map[monocle.PortID]uint32, error) {
	peers := map[monocle.PortID]uint32{}
	for _, kv := range pairs {
		parts := strings.SplitN(kv, kvSep, 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad peers entry %q", kv)
		}
		p, err1 := strconv.ParseUint(parts[0], 10, 16)
		sw, err2 := strconv.ParseUint(parts[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad peers entry %q", kv)
		}
		peers[monocle.PortID(p)] = uint32(sw)
	}
	return peers, nil
}

// parsePeers parses the single-switch -peers flag (comma-separated
// port=switchID pairs).
func parsePeers(s string) (map[monocle.PortID]uint32, error) {
	if s == "" {
		return map[monocle.PortID]uint32{}, nil
	}
	return parsePeerPairs(strings.Split(s, ","), "=")
}

// parseFleet parses the -fleet spec list. Within one spec, fields are
// comma-separated key=value pairs; the peers value holds space- or
// colon-pair-separated port=switch entries (e.g. "peers=1:5 2:7" or
// "peers=1:5").
func parseFleet(s string) ([]switchSpec, error) {
	var specs []switchSpec
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		spec := switchSpec{peers: map[monocle.PortID]uint32{}}
		for _, kv := range strings.Split(raw, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad fleet entry %q", kv)
			}
			key, val := parts[0], parts[1]
			switch key {
			case "id":
				id, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("bad fleet id %q", val)
				}
				spec.id = uint32(id)
			case "listen":
				spec.listen = val
			case "switch":
				spec.swAddr = val
			case "tag":
				tag, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("bad fleet tag %q", val)
				}
				spec.tag = tag
			case "peers":
				pm, err := parsePeerPairs(strings.Fields(val), ":")
				if err != nil {
					return nil, fmt.Errorf("fleet %w", err)
				}
				for p, sw := range pm {
					spec.peers[p] = sw
				}
			default:
				return nil, fmt.Errorf("unknown fleet key %q", key)
			}
		}
		if spec.id == 0 || spec.listen == "" || spec.swAddr == "" {
			return nil, fmt.Errorf("fleet spec %q needs id, listen, and switch", raw)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-fleet given but no specs parsed")
	}
	return specs, nil
}

func main() {
	var (
		listen   = flag.String("listen", ":16653", "controller-side listen address (single-switch mode)")
		swAddr   = flag.String("switch", "127.0.0.1:6653", "switch address to dial (single-switch mode)")
		id       = flag.Uint("id", 1, "this switch's Monocle identifier / probe tag (single-switch mode)")
		peers    = flag.String("peers", "", "port=switchID map, e.g. 1=5,2=7 (ports without entries are treated as edge ports)")
		fleet    = flag.String("fleet", "", "multi-switch specs 'id=..,listen=..,switch=..[,peers=p:s ...][,tag=..];...' (overrides the single-switch flags)")
		steady   = flag.Bool("steady", false, "enable steady-state monitoring of all proxied rules")
		rate     = flag.Float64("rate", 500, "steady-state probe rate (probes/s)")
		sweep    = flag.Duration("sweep", 0, "fleet sweep interval; emits ResultRecord JSON lines on stdout (0 disables)")
		workers  = flag.Int("workers", 0, "solver-worker budget shared by fleet sweeps (0 = all CPUs)")
		reserved = flag.String("reserved", "", "comma-separated reserved tag values; prints the catching FlowMods for this switch and exits")
	)
	flag.Parse()

	specs := []switchSpec{}
	if *fleet != "" {
		fs, err := parseFleet(*fleet)
		if err != nil {
			log.Fatalf("parsing -fleet: %v", err)
		}
		specs = fs
	} else {
		pm, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("parsing -peers: %v", err)
		}
		specs = append(specs, switchSpec{
			id: uint32(*id), listen: *listen, swAddr: *swAddr, peers: pm,
		})
	}

	loop := newRTLoop()
	fl := monocle.NewFleet(monocle.WithWorkers(*workers))
	monitors := make([]*monocle.Monitor, len(specs))
	for i, spec := range specs {
		opts := []monocle.Option{
			monocle.WithProbeRate(*rate),
			monocle.WithPeers(spec.peers),
		}
		if spec.tag != 0 {
			opts = append(opts, monocle.WithProbeTag(spec.tag))
		}
		cfg := monocle.NewMonitorConfig(spec.id, opts...)
		cfg.OnAlarm = func(ruleID uint64, at monocle.Time) {
			log.Printf("S%d ALARM: rule %d misbehaving in the data plane (t=%v)", spec.id, ruleID, at)
		}
		cfg.OnRuleConfirmed = func(ruleID uint64, at monocle.Time) {
			log.Printf("S%d confirmed: rule %d is in the data plane (t=%v)", spec.id, ruleID, at)
		}
		mon, err := fl.AttachMonitor(loop.s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		monitors[i] = mon
	}

	if *reserved != "" {
		var vals []uint32
		for _, v := range strings.Split(*reserved, ",") {
			x, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				log.Fatalf("bad -reserved value %q", v)
			}
			vals = append(vals, uint32(x))
		}
		for _, mon := range monitors {
			for _, r := range mon.CatchRules(vals) {
				fmt.Printf("S%d catch rule: %v\n", mon.Cfg.SwitchID, r)
			}
		}
		os.Exit(0)
	}

	// Each switch dials/accepts on its own goroutine (controllers may
	// connect in any order); callback wiring is posted onto the event
	// loop so Monitor state is only ever touched from the loop thread.
	for i := range specs {
		go wireSwitch(loop, specs[i], monitors[i], *steady)
	}

	if *sweep > 0 {
		startFleetSweeps(loop, fl, *sweep)
	}
	loop.run()
}

// wireSwitch dials the switch, accepts the controller connection, and
// wires the Monitor's message callbacks; reader goroutines post every
// received message onto the shared event loop.
func wireSwitch(loop *rtLoop, spec switchSpec, mon *monocle.Monitor, steady bool) {
	swConn, err := net.Dial("tcp", spec.swAddr)
	if err != nil {
		log.Fatalf("S%d: dialing switch: %v", spec.id, err)
	}
	log.Printf("S%d: connected to switch %s", spec.id, spec.swAddr)

	ln, err := net.Listen("tcp", spec.listen)
	if err != nil {
		log.Fatalf("S%d: listen: %v", spec.id, err)
	}
	log.Printf("S%d: waiting for controller on %s", spec.id, spec.listen)
	ctrlConn, err := ln.Accept()
	if err != nil {
		log.Fatalf("S%d: accept: %v", spec.id, err)
	}
	log.Printf("S%d: controller connected from %s", spec.id, ctrlConn.RemoteAddr())

	loop.post(func() {
		mon.ToSwitch = func(msg monocle.Message, xid uint32) {
			if err := monocle.WriteMessage(swConn, msg, xid); err != nil {
				log.Fatalf("S%d: write to switch: %v", spec.id, err)
			}
		}
		mon.ToController = func(msg monocle.Message, xid uint32) {
			if err := monocle.WriteMessage(ctrlConn, msg, xid); err != nil {
				log.Fatalf("S%d: write to controller: %v", spec.id, err)
			}
		}
		if steady {
			mon.StartSteadyState()
		}
	})

	go func() {
		for {
			msg, xid, err := monocle.ReadMessage(ctrlConn)
			if err != nil {
				log.Fatalf("S%d: controller read: %v", spec.id, err)
			}
			loop.post(func() { mon.OnControllerMessage(msg, xid) })
		}
	}()
	go func() {
		for {
			msg, xid, err := monocle.ReadMessage(swConn)
			if err != nil {
				log.Fatalf("S%d: switch read: %v", spec.id, err)
			}
			loop.post(func() { mon.OnSwitchMessage(msg, xid) })
		}
	}()
}

// startFleetSweeps emits ResultRecord JSON lines for every member's
// expected table at the given cadence, and folds every round through the
// cross-epoch diff engine: a rule that stops being generatable (newly
// hidden or erroring), recovers, or flaps across epochs — or a switch
// that stops contributing results — is logged as a typed alert on stderr.
// Sweeps run on the event-loop thread (the monitors' single-threaded
// contract); the solver fan-out inside each sweep still uses the fleet
// worker budget.
func startFleetSweeps(loop *rtLoop, fl *monocle.Fleet, every time.Duration) {
	enc := json.NewEncoder(os.Stdout)
	differ := monocle.NewDiffer()
	var tick func()
	tick = func() {
		for _, ev := range fl.Sweep(context.Background()) {
			differ.Observe(ev)
			if err := enc.Encode(ev.Record()); err != nil {
				log.Fatalf("sweep encode: %v", err)
			}
		}
		for _, a := range differ.EndSweep() {
			b, err := json.Marshal(a)
			if err != nil {
				log.Fatalf("alert encode: %v", err)
			}
			log.Printf("ALERT %s", b)
		}
		time.AfterFunc(every, func() { loop.post(tick) })
	}
	time.AfterFunc(every, func() { loop.post(tick) })
}
