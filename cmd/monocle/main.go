// Command monocle runs one Monocle Monitor proxy over real TCP OpenFlow
// 1.0 connections, as in the paper's deployment: the SDN controller
// connects to the proxy's listen address, the proxy dials the switch, and
// every message is intercepted by the Monitor state machine — FlowMods
// update the expected table and trigger dynamic probe monitoring; steady
// state cycling can be enabled with -steady.
//
// One proxy instance monitors one switch (§7: each Monocle proxy is
// responsible for a single switch-controller connection). The probe tag
// value and the peer map describing which switch id sits behind each port
// come from flags.
//
//	monocle -listen :16653 -switch 10.0.0.5:6653 -id 3 \
//	        -peers 1=5,2=7 -steady
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/monocle"
	"monocle/internal/openflow"
	"monocle/internal/sim"
)

// rtLoop drives a sim.Sim in wall-clock time: external events are posted
// through a channel, timers fire when their virtual due time passes. The
// Monitor state machine itself stays single-threaded inside the loop.
type rtLoop struct {
	s     *sim.Sim
	ch    chan func()
	start time.Time
}

func newRTLoop() *rtLoop {
	return &rtLoop{s: sim.New(), ch: make(chan func(), 1024), start: time.Now()}
}

// post queues fn onto the loop thread.
func (l *rtLoop) post(fn func()) { l.ch <- fn }

// run is the loop body (blocks forever).
func (l *rtLoop) run() {
	for {
		now := time.Since(l.start)
		l.s.RunUntil(now)
		var wait time.Duration = 50 * time.Millisecond
		if at, ok := l.s.NextEventAt(); ok {
			if d := at - l.s.Now(); d < wait {
				wait = d
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case fn := <-l.ch:
			l.s.RunUntil(time.Since(l.start))
			fn()
		case <-time.After(wait):
		}
	}
}

func main() {
	var (
		listen   = flag.String("listen", ":16653", "controller-side listen address")
		swAddr   = flag.String("switch", "127.0.0.1:6653", "switch address to dial")
		id       = flag.Uint("id", 1, "this switch's Monocle identifier / probe tag")
		peers    = flag.String("peers", "", "port=switchID map, e.g. 1=5,2=7 (ports without entries are treated as edge ports)")
		steady   = flag.Bool("steady", false, "enable steady-state monitoring of all proxied rules")
		rate     = flag.Float64("rate", 500, "steady-state probe rate (probes/s)")
		reserved = flag.String("reserved", "", "comma-separated reserved tag values; prints the catching FlowMods for this switch and exits")
	)
	flag.Parse()

	cfg := monocle.DefaultConfig(uint32(*id))
	cfg.ProbeRate = *rate
	cfg.PortPeer = map[flowtable.PortID]uint32{}
	if *peers != "" {
		for _, kv := range strings.Split(*peers, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad -peers entry %q", kv)
			}
			p, err1 := strconv.ParseUint(parts[0], 10, 16)
			s, err2 := strconv.ParseUint(parts[1], 10, 32)
			if err1 != nil || err2 != nil {
				log.Fatalf("bad -peers entry %q", kv)
			}
			cfg.PortPeer[flowtable.PortID(p)] = uint32(s)
			cfg.Ports = append(cfg.Ports, flowtable.PortID(p))
		}
	}
	cfg.OnAlarm = func(ruleID uint64, at sim.Time) {
		log.Printf("ALARM: rule %d misbehaving in the data plane (t=%v)", ruleID, at)
	}
	cfg.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
		log.Printf("confirmed: rule %d is in the data plane (t=%v)", ruleID, at)
	}

	loop := newRTLoop()
	mon := monocle.New(loop.s, cfg)

	if *reserved != "" {
		var vals []uint32
		for _, v := range strings.Split(*reserved, ",") {
			x, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				log.Fatalf("bad -reserved value %q", v)
			}
			vals = append(vals, uint32(x))
		}
		for _, r := range mon.CatchRules(vals) {
			fmt.Printf("catch rule: %v\n", r)
		}
		os.Exit(0)
	}

	// Dial the switch.
	swConn, err := net.Dial("tcp", *swAddr)
	if err != nil {
		log.Fatalf("dialing switch: %v", err)
	}
	log.Printf("connected to switch %s", *swAddr)

	// Accept exactly one controller connection.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("waiting for controller on %s", *listen)
	ctrlConn, err := ln.Accept()
	if err != nil {
		log.Fatalf("accept: %v", err)
	}
	log.Printf("controller connected from %s", ctrlConn.RemoteAddr())

	mon.ToSwitch = func(msg openflow.Message, xid uint32) {
		if err := openflow.WriteMessage(swConn, msg, xid); err != nil {
			log.Fatalf("write to switch: %v", err)
		}
	}
	mon.ToController = func(msg openflow.Message, xid uint32) {
		if err := openflow.WriteMessage(ctrlConn, msg, xid); err != nil {
			log.Fatalf("write to controller: %v", err)
		}
	}
	if *steady {
		loop.post(mon.StartSteadyState)
	}

	// Reader goroutines post into the event loop.
	go func() {
		for {
			msg, xid, err := openflow.ReadMessage(ctrlConn)
			if err != nil {
				log.Fatalf("controller read: %v", err)
			}
			loop.post(func() { mon.OnControllerMessage(msg, xid) })
		}
	}()
	go func() {
		for {
			msg, xid, err := openflow.ReadMessage(swConn)
			if err != nil {
				log.Fatalf("switch read: %v", err)
			}
			loop.post(func() { mon.OnSwitchMessage(msg, xid) })
		}
	}()
	loop.run()
}
