// Command monocle runs Monocle proxy Monitors over real TCP OpenFlow 1.0
// connections, as in the paper's deployment: for each monitored switch the
// SDN controller connects to a proxy listen address, the proxy dials the
// switch, and every message is intercepted by that switch's Monitor state
// machine — FlowMods update the expected table and trigger dynamic probe
// monitoring; steady-state cycling can be enabled with -steady.
//
// The proxy loop itself lives in the library (monocle.ProxyBackend): this
// command is flag parsing over that driver. Single-switch mode mirrors the
// paper's one-proxy-per-switch deployment (§7):
//
//	monocle -listen :16653 -switch 10.0.0.5:6653 -id 3 \
//	        -peers 1=5,2=7 -steady
//
// Fleet mode drives N switches through one monocle.Fleet in a single
// process: every ProxyBackend shares one monocle.ProxyGroup (one event
// loop, one probe-routing Multiplexer), so probes caught at any member
// switch are routed back to their owner — which a process-per-switch
// deployment cannot do. Specs are semicolon-separated; within a spec the
// peer map uses ':' pairs:
//
//	monocle -fleet "id=1,listen=:16653,switch=10.0.0.5:6653,peers=1:2 2:3;\
//	                id=2,listen=:16654,switch=10.0.0.6:6653,peers=1:1" \
//	        -steady -sweep 30s
//
// With -sweep, the fleet periodically sweeps every proxied expected table
// through the shared worker budget, emits one ResultRecord JSON line per
// rule on stdout (the same stream format as `probegen -json`), and folds
// every round through the cross-epoch diff engine, logging typed alerts
// on stderr through a monocle.LogSink.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"monocle"
)

// switchSpec is one monitored switch's configuration.
type switchSpec struct {
	id     uint32
	listen string
	swAddr string
	peers  map[monocle.PortID]uint32
	tag    uint64
}

// parsePeerPairs parses port/switchID pairs (one per element, split on
// kvSep) into a peer map.
func parsePeerPairs(pairs []string, kvSep string) (map[monocle.PortID]uint32, error) {
	peers := map[monocle.PortID]uint32{}
	for _, kv := range pairs {
		parts := strings.SplitN(kv, kvSep, 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad peers entry %q", kv)
		}
		p, err1 := strconv.ParseUint(parts[0], 10, 16)
		sw, err2 := strconv.ParseUint(parts[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad peers entry %q", kv)
		}
		peers[monocle.PortID(p)] = uint32(sw)
	}
	return peers, nil
}

// parsePeers parses the single-switch -peers flag (comma-separated
// port=switchID pairs).
func parsePeers(s string) (map[monocle.PortID]uint32, error) {
	if s == "" {
		return map[monocle.PortID]uint32{}, nil
	}
	return parsePeerPairs(strings.Split(s, ","), "=")
}

// parseFleet parses the -fleet spec list. Within one spec, fields are
// comma-separated key=value pairs; the peers value holds space- or
// colon-pair-separated port=switch entries (e.g. "peers=1:5 2:7" or
// "peers=1:5").
func parseFleet(s string) ([]switchSpec, error) {
	var specs []switchSpec
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		spec := switchSpec{peers: map[monocle.PortID]uint32{}}
		for _, kv := range strings.Split(raw, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad fleet entry %q", kv)
			}
			key, val := parts[0], parts[1]
			switch key {
			case "id":
				id, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("bad fleet id %q", val)
				}
				spec.id = uint32(id)
			case "listen":
				spec.listen = val
			case "switch":
				spec.swAddr = val
			case "tag":
				tag, err := strconv.ParseUint(val, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("bad fleet tag %q", val)
				}
				spec.tag = tag
			case "peers":
				pm, err := parsePeerPairs(strings.Fields(val), ":")
				if err != nil {
					return nil, fmt.Errorf("fleet %w", err)
				}
				for p, sw := range pm {
					spec.peers[p] = sw
				}
			default:
				return nil, fmt.Errorf("unknown fleet key %q", key)
			}
		}
		if spec.id == 0 || spec.listen == "" || spec.swAddr == "" {
			return nil, fmt.Errorf("fleet spec %q needs id, listen, and switch", raw)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-fleet given but no specs parsed")
	}
	return specs, nil
}

func main() {
	var (
		listen   = flag.String("listen", ":16653", "controller-side listen address (single-switch mode)")
		swAddr   = flag.String("switch", "127.0.0.1:6653", "switch address to dial (single-switch mode)")
		id       = flag.Uint("id", 1, "this switch's Monocle identifier / probe tag (single-switch mode)")
		peers    = flag.String("peers", "", "port=switchID map, e.g. 1=5,2=7 (ports without entries are treated as edge ports)")
		fleet    = flag.String("fleet", "", "multi-switch specs 'id=..,listen=..,switch=..[,peers=p:s ...][,tag=..];...' (overrides the single-switch flags)")
		steady   = flag.Bool("steady", false, "enable steady-state monitoring of all proxied rules")
		rate     = flag.Float64("rate", 500, "steady-state probe rate (probes/s)")
		sweep    = flag.Duration("sweep", 0, "fleet sweep interval; emits ResultRecord JSON lines on stdout (0 disables)")
		workers  = flag.Int("workers", 0, "solver-worker budget shared by fleet sweeps (0 = all CPUs)")
		reserved = flag.String("reserved", "", "comma-separated reserved tag values; prints the catching FlowMods for this switch and exits")
	)
	flag.Parse()

	specs := []switchSpec{}
	if *fleet != "" {
		fs, err := parseFleet(*fleet)
		if err != nil {
			log.Fatalf("parsing -fleet: %v", err)
		}
		specs = fs
	} else {
		pm, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("parsing -peers: %v", err)
		}
		specs = append(specs, switchSpec{
			id: uint32(*id), listen: *listen, swAddr: *swAddr, peers: pm,
		})
	}

	// One shared group: one event loop, one Multiplexer, cross-switch
	// probe routing.
	group := monocle.NewProxyGroup()
	fl := monocle.NewFleet(monocle.WithWorkers(*workers))
	backends := make([]*monocle.ProxyBackend, len(specs))
	for i, spec := range specs {
		opts := []monocle.Option{
			monocle.WithProbeRate(*rate),
			monocle.WithPeers(spec.peers),
		}
		if spec.tag != 0 {
			opts = append(opts, monocle.WithProbeTag(spec.tag))
		}
		backends[i] = monocle.NewProxyBackend(monocle.ProxyConfig{
			SwitchID:   spec.id,
			SwitchAddr: spec.swAddr,
			Listen:     spec.listen,
			Steady:     *steady,
			Group:      group,
		}, opts...)
	}

	if *reserved != "" {
		var vals []uint32
		for _, v := range strings.Split(*reserved, ",") {
			x, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				log.Fatalf("bad -reserved value %q", v)
			}
			vals = append(vals, uint32(x))
		}
		for _, be := range backends {
			for _, r := range be.CatchRules(vals) {
				fmt.Printf("S%d catch rule: %v\n", be.SwitchID(), r)
			}
		}
		os.Exit(0)
	}

	for _, be := range backends {
		if err := be.Connect(context.Background()); err != nil {
			log.Fatal(err)
		}
		if err := fl.AttachBackend(be); err != nil {
			log.Fatal(err)
		}
		go logEvents(be)
	}

	if *sweep > 0 {
		go sweepLoop(fl, *sweep)
	}
	select {} // the proxy runs until killed
}

// logEvents mirrors one backend's lifecycle events to the log: connects,
// disconnects, and the Monitor's own confirmations and alarms.
func logEvents(be *monocle.ProxyBackend) {
	for ev := range be.Events() {
		switch ev.Type {
		case monocle.BackendAlarm:
			log.Printf("S%d ALARM: %s", ev.SwitchID, ev.Detail)
		case monocle.BackendDisconnected:
			log.Fatalf("S%d: %s", ev.SwitchID, ev.Detail)
		default:
			log.Printf("S%d %s: %s", ev.SwitchID, ev.Type, ev.Detail)
		}
	}
}

// sweepLoop emits ResultRecord JSON lines for every member's proxied
// expected table at the given cadence, and folds every round through the
// cross-epoch diff engine: a rule that stops being generatable (newly
// hidden or erroring), recovers, or flaps across epochs — or a switch
// that stops contributing results — is logged as a typed alert on stderr
// through a LogSink. ProxyBackend sweeps marshal onto the group's event
// loop internally, so this loop runs on a plain goroutine.
func sweepLoop(fl *monocle.Fleet, every time.Duration) {
	enc := json.NewEncoder(os.Stdout)
	differ := monocle.NewDiffer()
	alerts := monocle.NewLogSink(log.New(os.Stderr, "", log.LstdFlags))
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for range ticker.C {
		for _, ev := range fl.Sweep(context.Background()) {
			differ.Observe(ev)
			if err := enc.Encode(ev.Record()); err != nil {
				log.Fatalf("sweep encode: %v", err)
			}
		}
		if as := differ.EndSweep(); len(as) > 0 {
			if err := alerts.Deliver(context.Background(), as); err != nil {
				log.Printf("alert sink: %v", err)
			}
		}
	}
}
