// Command monotrace replays recorded switch-backend sessions through a
// fresh monocle Service — deterministically, with zero network.
//
// A monocled run started with -record-dir (or any Service built with
// monocle.WithRecordDir) writes one append-only trace per switch:
// every Apply, Observe, Epoch call, every backend event, plus
// annotations for the session-level rule operations and sweep rounds
// that produced them. monotrace reads those traces, registers each
// switch with a replay backend, and re-drives the annotated rule
// operations and sweep rounds in their recorded order. The replay
// backends serve the recorded verdicts and events; the verification
// stack, diff engine, and alerting run for real on top.
//
//	monotrace /var/lib/monocled/traces/switch-1.trace
//	monotrace -debounce 2 traces/switch-*.trace   # whole fleet, one run
//	monotrace -dump traces/switch-1.trace         # inspect, don't replay
//
// Replay is judged strictly: if the re-driven session departs from the
// recording — a different operation, a different probe, a different
// order — the replay backend reports a structured divergence and
// monotrace exits with status 2. Exit status 1 means the trace could
// not be read or replayed at all.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"monocle"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "print the trace records instead of replaying")
		debounce = flag.Int("debounce", 1, "consecutive failing sweeps before a rule alert")
		stall    = flag.Int("stall", 3, "missed sweep rounds before a switch-stalled alert")
		quiet    = flag.Bool("q", false, "suppress per-round output; only the final summary")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: monotrace [-dump] [-debounce n] [-stall n] [-q] trace [trace...]")
		os.Exit(1)
	}
	if *dump {
		for _, path := range flag.Args() {
			if err := dumpTrace(path); err != nil {
				fmt.Fprintf(os.Stderr, "monotrace: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	os.Exit(replay(flag.Args(), *debounce, *stall, *quiet))
}

// dumpTrace prints one trace's records, one line each.
func dumpTrace(path string) error {
	tr, err := monocle.ReadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: switch %d, %d records\n", path, tr.Header.Switch, len(tr.Records))
	for _, rec := range tr.Records {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", line)
	}
	return nil
}

// replaySwitch is one trace's replay cursor: the annotation stream
// (rule ops and round marks) drives the service; everything else is
// served by the replay backend.
type replaySwitch struct {
	path  string
	id    uint32
	annos []monocle.TraceRecord
	pos   int
}

func replay(paths []string, debounce, stall int, quiet bool) int {
	svc := monocle.NewService(
		monocle.WithDebounce(debounce),
		monocle.WithStallThreshold(stall),
	)
	defer svc.Close()

	var switches []*replaySwitch
	for _, path := range paths {
		tr, err := monocle.ReadTraceFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monotrace: %s: %v\n", path, err)
			return 1
		}
		rs := &replaySwitch{path: path, id: tr.Header.Switch}
		spec := monocle.SwitchSpec{ID: tr.Header.Switch}
		for _, rec := range tr.Records {
			switch rec.Kind {
			case monocle.TraceKindSpec:
				if rec.Spec != nil {
					spec = *rec.Spec
				}
			case monocle.TraceKindRuleOp, monocle.TraceKindRound:
				rs.annos = append(rs.annos, rec)
			}
		}
		// The recorded session dialed a live switch; the replay serves it
		// from the trace instead.
		spec.Backend = "replay"
		spec.Trace = path
		spec.Address = ""
		if _, err := svc.AddSwitch(spec); err != nil {
			fmt.Fprintf(os.Stderr, "monotrace: %s: %v\n", path, err)
			return 1
		}
		switches = append(switches, rs)
	}

	// Re-drive the annotation streams: each trace's rule operations run
	// in their recorded order, and a sweep round runs whenever every
	// stream has reached its next round mark.
	status := 0
	ctx := context.Background()
	rounds, alerts := 0, 0
	for {
		for _, rs := range switches {
			for rs.pos < len(rs.annos) && rs.annos[rs.pos].Kind == monocle.TraceKindRuleOp {
				op := rs.annos[rs.pos].RuleOp
				rs.pos++
				if op == nil {
					continue
				}
				if err := driveOp(svc, rs.id, *op); err != nil {
					fmt.Fprintf(os.Stderr, "monotrace: %s: replaying %s: %v\n", rs.path, op.Op, err)
					status = pickStatus(status, err)
				}
			}
		}
		pending := false
		for _, rs := range switches {
			if rs.pos < len(rs.annos) {
				pending = true
			}
		}
		if !pending {
			break
		}
		roundAlerts := svc.SweepRound(ctx)
		rounds++
		alerts += len(roundAlerts)
		if !quiet {
			for _, a := range roundAlerts {
				line, _ := json.Marshal(a)
				fmt.Println(string(line))
			}
		}
		for _, rs := range switches {
			if rs.pos < len(rs.annos) && rs.annos[rs.pos].Kind == monocle.TraceKindRound {
				rs.pos++
			}
		}
	}

	// A divergence folds into the sweep as a loud failing verdict rather
	// than an error return, so check every replay backend explicitly.
	for _, rs := range switches {
		be, ok := svc.Fleet().Backend(rs.id)
		if !ok {
			continue
		}
		if rb, ok := monocle.UnwrapBackend(be).(*monocle.ReplayBackend); ok {
			if div := rb.Divergence(); div != nil {
				fmt.Fprintf(os.Stderr, "monotrace: %s: DIVERGED: %v\n", rs.path, div)
				status = 2
			}
		}
	}
	fmt.Fprintf(os.Stderr, "monotrace: %d switch(es), %d round(s), %d alert(s)\n", len(switches), rounds, alerts)
	return status
}

// driveOp re-drives one recorded rule operation.
func driveOp(svc *monocle.Service, id uint32, op monocle.RuleOp) error {
	if op.Op == "install" {
		if op.Rule == nil {
			return fmt.Errorf("install annotation without a rule")
		}
		return svc.InstallRuleSpecs(id, *op.Rule)
	}
	_, err := svc.ApplyRule(id, op)
	return err
}

// pickStatus keeps the most specific failure: divergence (2) wins over
// generic replay trouble (1).
func pickStatus(cur int, err error) int {
	var div *monocle.DivergenceError
	if errors.As(err, &div) {
		return 2
	}
	if cur == 0 {
		return 1
	}
	return cur
}
