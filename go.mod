module monocle

go 1.22
