package monocle

// Cross-epoch diff/alert engine. A Differ folds the SweepEvent stream of a
// fleet into per-switch epoch snapshots and diffs consecutive snapshots,
// turning raw per-rule sweep results into typed, debounced Alerts: a rule
// newly diverging from the controller's view, a rule recovering, a switch
// that stopped contributing sweep results, and a rule whose verdict keeps
// flapping. The paper's promise is *continuous* monitoring (§7): the alert
// stream, not the individual probe result, is what an operator watches.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RuleStatus classifies one rule's state in one sweep snapshot.
type RuleStatus uint8

// Rule statuses, ordered from healthy to broken.
const (
	// StatusOK: a probe was generated and, when judged against the data
	// plane, confirmed the rule.
	StatusOK RuleStatus = iota
	// StatusUnmonitorable: no probe can verify this rule (§3.5); the
	// diff engine treats it as neutral, not failing.
	StatusUnmonitorable
	// StatusFailing: the probe's data plane observation matched the
	// rule-absent hypothesis or neither hypothesis — hardware and
	// controller state have diverged.
	StatusFailing
	// StatusError: probe generation itself failed (internal error or a
	// cancelled sweep).
	StatusError
)

// bad reports whether the status should count toward failing-rule alerts.
func (s RuleStatus) bad() bool { return s == StatusFailing || s == StatusError }

// String names the status.
func (s RuleStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnmonitorable:
		return "unmonitorable"
	case StatusFailing:
		return "failing"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// MarshalJSON renders the status as its string name.
func (s RuleStatus) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string name form (API clients and tests).
func (s *RuleStatus) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for c := StatusOK; c <= StatusError; c++ {
		if c.String() == name {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("monocle: unknown rule status %q", name)
}

// AlertType classifies one Alert.
type AlertType uint8

// Alert types.
const (
	// AlertRuleFailing: a rule moved into a bad status and stayed there
	// for the debounce threshold (WithDebounce) of consecutive sweeps.
	AlertRuleFailing AlertType = iota
	// AlertRuleRecovered: a rule with an outstanding failing alert
	// produced a good status again.
	AlertRuleRecovered
	// AlertSwitchStalled: a switch that had been sweeping produced no
	// events for WithStallThreshold consecutive sweep rounds.
	AlertSwitchStalled
	// AlertVerdictFlapping: a rule's good/bad state flipped at least the
	// configured number of times inside the flap window (WithFlapWindow).
	AlertVerdictFlapping
	// AlertBackendFlapping: a switch's driver completed at least the
	// configured number of disconnect/reconnect cycles inside the backend
	// flap window (WithBackendFlapWindow) — the reconnect machinery is
	// keeping the switch reachable, but the transport itself is sick.
	AlertBackendFlapping
)

// String names the alert type.
func (t AlertType) String() string {
	switch t {
	case AlertRuleFailing:
		return "rule_failing"
	case AlertRuleRecovered:
		return "rule_recovered"
	case AlertSwitchStalled:
		return "switch_stalled"
	case AlertVerdictFlapping:
		return "verdict_flapping"
	case AlertBackendFlapping:
		return "backend_flapping"
	default:
		return fmt.Sprintf("alert(%d)", uint8(t))
	}
}

// MarshalJSON renders the alert type as its string name.
func (t AlertType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses the string name form (API clients and tests).
func (t *AlertType) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for c := AlertRuleFailing; c <= AlertBackendFlapping; c++ {
		if c.String() == name {
			*t = c
			return nil
		}
	}
	return fmt.Errorf("monocle: unknown alert type %q", name)
}

// Alert is one typed cross-epoch finding. Alerts marshal to single JSON
// lines; rule-level alerts carry the triggering sweep result as a
// ResultRecord.
type Alert struct {
	// Type classifies the alert.
	Type AlertType `json:"type"`
	// SwitchID is the member switch the alert concerns.
	SwitchID uint32 `json:"switch"`
	// Rule is the rule id for rule-level alerts (failing/recovered/
	// flapping); rule ids may legitimately be zero, so the field is
	// always emitted and only meaningful for rule-level alert types.
	Rule uint64 `json:"rule"`
	// Epoch is the table-change epoch of the snapshot that raised the
	// alert.
	Epoch uint64 `json:"epoch,omitempty"`
	// Status is the rule's status in that snapshot.
	Status RuleStatus `json:"status,omitempty"`
	// Streak counts consecutive bad sweeps (failing alerts), flips in
	// the flap window (flapping alerts), or missed rounds (stall
	// alerts).
	Streak int `json:"streak,omitempty"`
	// Detail is a human-readable one-liner.
	Detail string `json:"detail,omitempty"`
	// Round is the 1-based sweep-round counter of the Differ that raised
	// the alert. Rounds survive restarts (DifferState carries the
	// counter), so the stamp is stable across a kill-and-resume cycle.
	Round uint64 `json:"round,omitempty"`
	// Seq is the Differ's monotonic alert sequence number: alert N+1 of a
	// diff engine's lifetime (restarts included) carries Seq one greater
	// than alert N. A cluster coordinator merges per-replica alert
	// streams by (Round, SwitchID, Rule, Seq) — the per-replica Seq
	// breaks ties among a switch's alerts within one round without
	// imposing any cross-replica clock.
	Seq uint64 `json:"seq,omitempty"`
	// Record is the sweep result that triggered a rule-level alert.
	Record *ResultRecord `json:"record,omitempty"`
}

// observation is one rule's result within the accumulating snapshot.
type observation struct {
	status    RuleStatus
	rec       ResultRecord
	rule      *Rule // the probed rule, for alert-filter predicates (may be nil)
	skipped   bool  // present in the table but unjudgeable this round
	unsampled bool  // present in the table but not selected by the round's plan
}

// ruleDiff is the folded cross-epoch state of one rule.
type ruleDiff struct {
	streak  int    // consecutive bad sweeps
	alerted bool   // failing alert outstanding, awaiting recovery
	hist    []bool // last flapWindow bad-bits, oldest first
	flapped bool   // flapping alert outstanding for the current window
}

// switchDiff is the folded cross-epoch state of one switch.
type switchDiff struct {
	epoch   uint64
	seen    bool // events observed in the current round
	ever    bool // at least one round completed with events
	cur     map[uint64]*observation
	rules   map[uint64]*ruleDiff
	missed  int // consecutive rounds with no events
	stalled bool

	pendingCycles  int   // reconnect cycles completed since the last round
	cycleHist      []int // per-round cycle counts, oldest first
	backendFlapped bool  // backend_flapping alert outstanding
}

// Differ folds a SweepEvent stream into per-switch epoch snapshots and
// diffs consecutive snapshots into Alerts. Feed every event of a sweep
// round through Observe (or ObserveVerdict when the probe was judged
// against the data plane), then call EndSweep once per round to finalize
// the snapshots and collect the round's alerts. Events carrying an epoch
// older than the switch's current snapshot epoch are discarded.
//
// A Differ is safe for concurrent use; alert order within a round is
// deterministic (switches, then rules, ascending by id).
type Differ struct {
	set settings

	mu        sync.Mutex
	switches  map[uint32]*switchDiff
	overrides map[uint32]*DiffOverrides
	rounds    uint64
	seq       uint64
}

// DiffOverrides are per-switch alerting overrides, layered on top of the
// Differ's own thresholds — how a monitoring policy gives one switch group
// tighter debounce or a rule-level alert filter without touching the rest
// of the fleet. Zero-valued thresholds keep the Differ's setting.
type DiffOverrides struct {
	// Debounce overrides WithDebounce for this switch.
	Debounce int
	// StallSweeps overrides WithStallThreshold for this switch.
	StallSweeps int
	// FlapWindow and FlapFlips override WithFlapWindow for this switch
	// (both must be set together to take effect).
	FlapWindow int
	FlapFlips  int
	// AlertFilter, when non-nil, gates the rule-level alert types
	// (rule_failing, rule_recovered, verdict_flapping): alerts for rules
	// it rejects are suppressed symmetrically — a suppressed failure also
	// suppresses its eventual recovery — while the fold state underneath
	// still advances, so removing the filter later resumes alerting from
	// truthful state. Switch-level alerts (switch_stalled,
	// backend_flapping) are never filtered. The rule pointer may be nil
	// when the triggering observation carried no rule body.
	AlertFilter func(rule uint64, r *Rule) bool
}

// SetOverrides installs (or, with nil, clears) one switch's alerting
// overrides. Overrides are not part of DifferState: they derive from the
// active policy, and the Service re-applies them after Restore.
func (d *Differ) SetOverrides(id uint32, ov *DiffOverrides) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ov == nil {
		delete(d.overrides, id)
		return
	}
	if d.overrides == nil {
		d.overrides = make(map[uint32]*DiffOverrides)
	}
	d.overrides[id] = ov
}

// effective returns the alerting thresholds for one switch: the Differ's
// settings with any per-switch overrides applied.
type effectiveThresholds struct {
	debounce, stallSweeps, flapWindow, flapFlips int
	filter                                       func(rule uint64, r *Rule) bool
}

func (d *Differ) effectiveLocked(id uint32) effectiveThresholds {
	eff := effectiveThresholds{
		debounce:    d.set.debounce,
		stallSweeps: d.set.stallSweeps,
		flapWindow:  d.set.flapWindow,
		flapFlips:   d.set.flapFlips,
	}
	ov := d.overrides[id]
	if ov == nil {
		return eff
	}
	if ov.Debounce > 0 {
		eff.debounce = ov.Debounce
	}
	if ov.StallSweeps > 0 {
		eff.stallSweeps = ov.StallSweeps
	}
	if ov.FlapWindow > 0 && ov.FlapFlips > 0 {
		eff.flapWindow = ov.FlapWindow
		eff.flapFlips = ov.FlapFlips
	}
	eff.filter = ov.AlertFilter
	return eff
}

// NewDiffer returns an empty diff engine. WithDebounce, WithStallThreshold,
// and WithFlapWindow tune the alerting thresholds.
func NewDiffer(opts ...Option) *Differ {
	set := defaultSettings()
	set.apply(opts)
	return &Differ{set: set, switches: make(map[uint32]*switchDiff)}
}

// Observe folds one sweep event into the current round's snapshot using
// the generation result alone: rules with probes are StatusOK, rules that
// cannot be probed StatusUnmonitorable, generation failures StatusError.
// Consumers that inject probes and judge the observations should use
// ObserveVerdict instead.
func (d *Differ) Observe(ev SweepEvent) {
	d.observe(ev, statusFromResult(ev.Result))
}

// ObserveVerdict folds one sweep event whose probe was judged against the
// data plane: VerdictConfirmed keeps the rule StatusOK, while
// VerdictAbsent and VerdictUnexpected mark it StatusFailing — the moment
// hardware diverges from the controller's view.
func (d *Differ) ObserveVerdict(ev SweepEvent, v Verdict) {
	st := statusFromResult(ev.Result)
	if st == StatusOK && v != VerdictConfirmed {
		st = StatusFailing
	}
	d.observe(ev, st)
}

// ObserveSkipped records a rule whose sweep observation could not be
// judged this round (the backend disconnected or closed mid-sweep). The
// rule is still part of the expected table, so it must stay in the
// round's snapshot: without this, a partial round — some rules folded
// before the transport died, the rest skipped — would make the skipped
// rules look like intentional table deletions, silently discarding an
// outstanding failing alert and swallowing its eventual recovery. A
// skipped observation contributes presence only; the rule's debounce
// streak, flap history, and alert state carry over frozen.
func (d *Differ) ObserveSkipped(ev SweepEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw := d.switchLocked(ev.SwitchID)
	if ev.Epoch < sw.epoch {
		return // superseded epoch: the table changed under the sweep
	}
	sw.cur[ev.Result.Rule.ID] = &observation{
		skipped: true,
		rule:    ev.Result.Rule,
		rec:     NewResultRecord(ev.SwitchID, ev.Epoch, ev.Result),
	}
}

// ObserveUnsampled records a rule the round's probe plan deliberately left
// out (policy sampling). Like a skipped observation it contributes
// presence only — the rule stays tracked with its debounce streak, flap
// history, and alert state frozen — but unlike skipped it does not imply
// transport trouble: a round whose observations are all unsampled is a
// healthy quiet round, not an outage.
func (d *Differ) ObserveUnsampled(switchID uint32, epoch, rule uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw := d.switchLocked(switchID)
	if epoch < sw.epoch {
		return // superseded epoch: the table changed under the sweep
	}
	sw.cur[rule] = &observation{unsampled: true}
}

// statusFromResult classifies a generation result without a verdict.
// Both no-probe-exists sentinels are structural properties of the table,
// not divergence: a rule hidden by higher-priority rules (§3.5) and a
// rule rewriting the reserved probe field (§3.2) are unverifiable by
// construction and must not raise failing alerts.
func statusFromResult(res ProbeResult) RuleStatus {
	switch {
	case errors.Is(res.Err, ErrUnmonitorable), errors.Is(res.Err, ErrRewritesProbeField):
		return StatusUnmonitorable
	case res.Err != nil:
		return StatusError
	default:
		return StatusOK
	}
}

// ObserveBackendEvent folds one driver lifecycle event into the current
// round: each BackendReconnected completes one disconnect/reconnect
// cycle, and EndSweep raises AlertBackendFlapping once the cycle count
// inside the backend flap window crosses the WithBackendFlapWindow
// threshold. The Service feeds every switch's event stream through here
// (draining its queue at the start of each round); other event types are
// ignored — an outage without recovery surfaces as switch_stalled
// instead.
func (d *Differ) ObserveBackendEvent(ev BackendEvent) {
	if ev.Type != BackendReconnected {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.switchLocked(ev.SwitchID).pendingCycles++
}

// switchLocked returns (creating if needed) switch id's fold state.
func (d *Differ) switchLocked(id uint32) *switchDiff {
	sw := d.switches[id]
	if sw == nil {
		sw = &switchDiff{
			cur:   make(map[uint64]*observation),
			rules: make(map[uint64]*ruleDiff),
		}
		d.switches[id] = sw
	}
	return sw
}

func (d *Differ) observe(ev SweepEvent, st RuleStatus) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sw := d.switchLocked(ev.SwitchID)
	if ev.Epoch < sw.epoch {
		return // superseded epoch: the table changed under the sweep
	}
	sw.epoch = ev.Epoch
	sw.seen = true
	sw.cur[ev.Result.Rule.ID] = &observation{
		status: st,
		rule:   ev.Result.Rule,
		rec:    NewResultRecord(ev.SwitchID, ev.Epoch, ev.Result),
	}
}

// EndSweep finalizes the current round: every switch's accumulated
// snapshot is diffed against its folded history, debounce/flap/stall
// state advances, and the round's alerts are returned (nil when quiet).
// Rules that left the expected table simply stop being tracked — an
// intentional controller change is not a divergence.
func (d *Differ) EndSweep() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]uint32, 0, len(d.switches))
	for id := range d.switches {
		ids = append(ids, id)
	}
	return d.endSweepLocked(ids)
}

// EndSweepScoped finalizes a round that swept only the given switches —
// one policy group's cadence tick. Switches outside the scope are left
// untouched: their in-progress snapshots, missed-round counters, and
// backend flap windows advance only on their own group's rounds, so a
// 50ms edge cadence cannot stall-out a 5s core group. Unknown switch IDs
// are tracked from this round on (a swept switch that produced no events
// must still accrue missed rounds).
func (d *Differ) EndSweepScoped(ids []uint32) []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range ids {
		d.switchLocked(id)
	}
	return d.endSweepLocked(ids)
}

// AbortSweep discards the current round's accumulated snapshots without
// finalizing anything: no alerts, no debounce/stall/flap advancement, and
// the round does not count. Backend lifecycle cycles already observed stay
// pending for the next completed round. It is how a cancelled sweep (the
// Service's Run context ending mid-round) avoids turning its own partial
// results into false alerts.
func (d *Differ) AbortSweep() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, sw := range d.switches {
		if len(sw.cur) > 0 {
			sw.cur = make(map[uint64]*observation)
		}
		sw.seen = false
	}
}

func (d *Differ) endSweepLocked(ids []uint32) []Alert {
	d.rounds++

	var alerts []Alert
	ids = append([]uint32(nil), ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		sw := d.switches[id]
		if sw == nil {
			continue
		}
		eff := d.effectiveLocked(id)

		// Backend flap detection runs for every switch every round —
		// transport health is orthogonal to whether the round produced
		// sweep events (a flapping backend often means it did not).
		sw.cycleHist = append(sw.cycleHist, sw.pendingCycles)
		sw.pendingCycles = 0
		if len(sw.cycleHist) > d.set.backendFlapWindow {
			sw.cycleHist = sw.cycleHist[1:]
		}
		cycles := 0
		for _, c := range sw.cycleHist {
			cycles += c
		}
		if cycles >= d.set.backendFlapCycles {
			if !sw.backendFlapped {
				sw.backendFlapped = true
				alerts = append(alerts, Alert{
					Type:     AlertBackendFlapping,
					SwitchID: id,
					Epoch:    sw.epoch,
					Streak:   cycles,
					Detail:   fmt.Sprintf("switch %d backend reconnected %d times in the last %d sweeps", id, cycles, len(sw.cycleHist)),
				})
			}
		} else {
			sw.backendFlapped = false
		}

		// A round whose entries are all unsampled is a healthy quiet round
		// (the plan chose no rules this tick), not an outage: it takes the
		// normal path below with every entry frozen.
		quiet := !sw.seen && len(sw.cur) > 0
		for _, o := range sw.cur {
			if !quiet {
				break
			}
			quiet = o.unsampled
		}

		if !sw.seen && !quiet {
			// A round with only skipped observations (full outage) counts
			// as missed: the skip entries protected nothing this round,
			// and must not survive into the next snapshot.
			if len(sw.cur) > 0 {
				sw.cur = make(map[uint64]*observation)
			}
			if !sw.ever {
				continue
			}
			sw.missed++
			if !sw.stalled && sw.missed >= eff.stallSweeps {
				sw.stalled = true
				alerts = append(alerts, Alert{
					Type:     AlertSwitchStalled,
					SwitchID: id,
					Epoch:    sw.epoch,
					Streak:   sw.missed,
					Detail:   fmt.Sprintf("switch %d missed %d consecutive sweeps", id, sw.missed),
				})
			}
			continue
		}
		if sw.seen {
			sw.ever = true
		}
		sw.missed = 0
		sw.stalled = false

		rids := make([]uint64, 0, len(sw.cur))
		for rid := range sw.cur {
			rids = append(rids, rid)
		}
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })

		for _, rid := range rids {
			o := sw.cur[rid]
			if o.skipped || o.unsampled {
				// Unjudged (or unplanned) this round: the snapshot entry
				// keeps the rule tracked, everything else carries over
				// untouched.
				continue
			}
			pass := eff.filter == nil || eff.filter(rid, o.rule)
			r := sw.rules[rid]
			if r == nil {
				r = &ruleDiff{}
				sw.rules[rid] = r
			}
			bad := o.status.bad()
			if bad {
				r.streak++
			} else {
				r.streak = 0
			}

			if bad && !r.alerted && r.streak >= eff.debounce {
				r.alerted = true
				if pass {
					rec := o.rec
					alerts = append(alerts, Alert{
						Type:     AlertRuleFailing,
						SwitchID: id,
						Rule:     rid,
						Epoch:    sw.epoch,
						Status:   o.status,
						Streak:   r.streak,
						Detail:   fmt.Sprintf("rule %d on switch %d %s for %d consecutive sweeps", rid, id, o.status, r.streak),
						Record:   &rec,
					})
				}
			}
			if !bad && r.alerted {
				r.alerted = false
				if pass {
					rec := o.rec
					alerts = append(alerts, Alert{
						Type:     AlertRuleRecovered,
						SwitchID: id,
						Rule:     rid,
						Epoch:    sw.epoch,
						Status:   o.status,
						Detail:   fmt.Sprintf("rule %d on switch %d recovered", rid, id),
						Record:   &rec,
					})
				}
			}

			// Flap detection over the last flapWindow sweeps.
			r.hist = append(r.hist, bad)
			if len(r.hist) > eff.flapWindow {
				r.hist = r.hist[1:]
			}
			flips := 0
			for i := 1; i < len(r.hist); i++ {
				if r.hist[i] != r.hist[i-1] {
					flips++
				}
			}
			if flips >= eff.flapFlips {
				if !r.flapped {
					r.flapped = true
					if pass {
						rec := o.rec
						alerts = append(alerts, Alert{
							Type:     AlertVerdictFlapping,
							SwitchID: id,
							Rule:     rid,
							Epoch:    sw.epoch,
							Status:   o.status,
							Streak:   flips,
							Detail:   fmt.Sprintf("rule %d on switch %d flipped %d times in the last %d sweeps", rid, id, flips, len(r.hist)),
							Record:   &rec,
						})
					}
				}
			} else {
				r.flapped = false
			}
		}

		// Rules absent from the snapshot left the expected table.
		for rid := range sw.rules {
			if _, ok := sw.cur[rid]; !ok {
				delete(sw.rules, rid)
			}
		}
		sw.cur = make(map[uint64]*observation)
		sw.seen = false
	}
	// Stamp every alert with the round that raised it and the engine's
	// lifetime sequence number, in emission order — the per-replica merge
	// key a cluster coordinator orders aggregated streams by.
	for i := range alerts {
		d.seq++
		alerts[i].Round = d.rounds
		alerts[i].Seq = d.seq
	}
	return alerts
}

// Rounds returns the number of completed sweep rounds.
func (d *Differ) Rounds() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// RuleDiffState is the serializable fold state of one rule: everything the
// diff engine needs to keep its debounce, recovery, and flap decisions
// coherent across a process restart.
type RuleDiffState struct {
	// Streak counts consecutive bad sweeps.
	Streak int `json:"streak,omitempty"`
	// Alerted marks an outstanding rule_failing alert awaiting recovery.
	Alerted bool `json:"alerted,omitempty"`
	// Hist is the flap window's bad-bit history, oldest first.
	Hist []bool `json:"hist,omitempty"`
	// Flapped marks an outstanding verdict_flapping alert.
	Flapped bool `json:"flapped,omitempty"`
}

// SwitchDiffState is the serializable fold state of one switch.
type SwitchDiffState struct {
	// Epoch is the table-change epoch of the last finalized snapshot.
	Epoch uint64 `json:"epoch"`
	// Ever records that at least one round completed with events (stall
	// detection only arms after that).
	Ever bool `json:"ever,omitempty"`
	// Missed counts consecutive rounds with no events.
	Missed int `json:"missed,omitempty"`
	// Stalled marks an outstanding switch_stalled alert.
	Stalled bool `json:"stalled,omitempty"`
	// PendingCycles counts reconnect cycles observed since the last
	// finalized round.
	PendingCycles int `json:"pending_cycles,omitempty"`
	// CycleHist is the backend flap window's per-round reconnect-cycle
	// counts, oldest first.
	CycleHist []int `json:"cycle_hist,omitempty"`
	// BackendFlapped marks an outstanding backend_flapping alert.
	BackendFlapped bool `json:"backend_flapped,omitempty"`
	// Rules is the per-rule fold state.
	Rules map[uint64]RuleDiffState `json:"rules,omitempty"`
}

// DifferState is the full serializable fold state of a Differ — what a
// Store persists so a restarted process resumes diffing from the last
// completed round instead of re-learning every rule's state (and paging
// the operator with false rule_recovered alerts while it does).
type DifferState struct {
	// Rounds is the completed sweep-round count.
	Rounds uint64 `json:"rounds,omitempty"`
	// Seq is the lifetime alert sequence counter (the Seq stamp of the
	// most recently raised alert), so a restarted engine keeps numbering
	// where the previous life stopped.
	Seq uint64 `json:"seq,omitempty"`
	// Switches is the per-switch fold state.
	Switches map[uint32]SwitchDiffState `json:"switches,omitempty"`
}

// State snapshots the engine's folded cross-epoch state. Call it between
// rounds (after EndSweep): the in-progress snapshot of a half-fed round is
// not part of the state.
func (d *Differ) State() DifferState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DifferState{Rounds: d.rounds, Seq: d.seq}
	if len(d.switches) > 0 {
		st.Switches = make(map[uint32]SwitchDiffState, len(d.switches))
	}
	for id, sw := range d.switches {
		s := SwitchDiffState{
			Epoch:          sw.epoch,
			Ever:           sw.ever,
			Missed:         sw.missed,
			Stalled:        sw.stalled,
			PendingCycles:  sw.pendingCycles,
			CycleHist:      append([]int(nil), sw.cycleHist...),
			BackendFlapped: sw.backendFlapped,
		}
		if len(sw.rules) > 0 {
			s.Rules = make(map[uint64]RuleDiffState, len(sw.rules))
		}
		for rid, r := range sw.rules {
			s.Rules[rid] = RuleDiffState{
				Streak:  r.streak,
				Alerted: r.alerted,
				Hist:    append([]bool(nil), r.hist...),
				Flapped: r.flapped,
			}
		}
		st.Switches[id] = s
	}
	return st
}

// Restore replaces the engine's folded state with a previously captured
// State snapshot, discarding any in-progress round. After Restore the next
// sweep round diffs against the restored history exactly as if the process
// had never restarted.
func (d *Differ) Restore(st DifferState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rounds = st.Rounds
	d.seq = st.Seq
	d.switches = make(map[uint32]*switchDiff, len(st.Switches))
	for id, s := range st.Switches {
		sw := &switchDiff{
			epoch:          s.Epoch,
			ever:           s.Ever,
			missed:         s.Missed,
			stalled:        s.Stalled,
			pendingCycles:  s.PendingCycles,
			cycleHist:      append([]int(nil), s.CycleHist...),
			backendFlapped: s.BackendFlapped,
			cur:            make(map[uint64]*observation),
			rules:          make(map[uint64]*ruleDiff, len(s.Rules)),
		}
		for rid, r := range s.Rules {
			sw.rules[rid] = &ruleDiff{
				streak:  r.Streak,
				alerted: r.Alerted,
				hist:    append([]bool(nil), r.Hist...),
				flapped: r.Flapped,
			}
		}
		d.switches[id] = sw
	}
}

// EvaluateProbe judges a generated probe against an actual data-plane
// table, simulating its injection: the probe packet is looked up in
// actual, the matched rule's emissions are observed, and the observation
// set is classified against the probe's two hypotheses. It is how the
// monocled service (and any consumer holding a model of the hardware
// state) turns sweep probes into verdicts without a live switch.
func EvaluateProbe(p *Probe, actual *Table) Verdict {
	ems := tableEmissions(actual, p.Header)
	present := outcomeConsistent(p.Present, ems)
	absent := outcomeConsistent(p.Absent, ems)
	switch {
	case present && !absent:
		return VerdictConfirmed
	case absent && !present:
		return VerdictAbsent
	default:
		return VerdictUnexpected
	}
}

// tableEmissions computes what the table's data plane emits for packet h.
func tableEmissions(t *Table, h Header) []Emission {
	r := t.Lookup(h)
	if r == nil {
		if t.Miss == MissController {
			return []Emission{{Port: PortController, Header: h}}
		}
		return nil
	}
	return r.Apply(h, func(int) int { return 0 })
}

// outcomeConsistent reports whether an observed emission set is consistent
// with one expected outcome. The ingress port is not part of an emitted
// packet, so in_port is masked on both sides (as Judge does).
func outcomeConsistent(o Outcome, ems []Emission) bool {
	if o.Drop {
		return len(ems) == 0
	}
	if o.ECMP {
		return len(ems) == 1 && emissionExpected(o.Emissions, ems[0])
	}
	if len(ems) != len(o.Emissions) {
		return false
	}
	used := make([]bool, len(o.Emissions))
	for _, e := range ems {
		found := false
		for i, want := range o.Emissions {
			if used[i] {
				continue
			}
			if emissionEqual(want, e) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// emissionExpected reports whether e matches any expected emission.
func emissionExpected(want []Emission, e Emission) bool {
	for _, w := range want {
		if emissionEqual(w, e) {
			return true
		}
	}
	return false
}

// emissionEqual compares two emissions ignoring in_port.
func emissionEqual(a, b Emission) bool {
	if a.Port != b.Port {
		return false
	}
	ha, hb := a.Header, b.Header
	ha.Set(InPort, 0)
	hb.Set(InPort, 0)
	return ha == hb
}
