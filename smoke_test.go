package monocle_test

// Top-level smoke test: one end-to-end probe-generation sweep through the
// public layers (dataset → flowtable → probe engine), so `go test .` runs
// an actual test rather than only benchmarks.

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"monocle/internal/dataset"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
)

func TestSmokeBatchSweep(t *testing.T) {
	p := dataset.Stanford()
	p.Rules = 100
	tb, rules := dataset.Generate(p)
	gen := probe.NewGenerator(probe.Config{
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, 1),
		ValidateModel: true,
	})
	results := gen.GenerateAll(context.Background(), tb, runtime.NumCPU())
	if len(results) != len(rules) {
		t.Fatalf("got %d results for %d rules", len(results), len(rules))
	}
	found := 0
	for _, res := range results {
		switch {
		case res.Err == nil:
			if res.Probe == nil || res.Probe.RuleID != res.Rule.ID {
				t.Fatalf("rule %d: malformed result %+v", res.Rule.ID, res)
			}
			found++
		case errors.Is(res.Err, probe.ErrUnmonitorable):
		default:
			t.Fatalf("rule %d: unexpected error %v", res.Rule.ID, res.Err)
		}
	}
	if found < len(rules)*8/10 {
		t.Fatalf("only %d/%d rules got probes", found, len(rules))
	}
}
