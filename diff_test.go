package monocle_test

// Diff-engine tests: the differential/property test (K random data-plane
// mutations injected across random epochs must surface as exactly the
// injected alert set — no false positives, no misses — for several fleet
// worker budgets), plus focused unit tests for the debounce, stall, and
// flap thresholds.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"monocle"
	"monocle/internal/dataset"
)

// diffFleet builds a fleet plus per-switch data-plane clones of the
// expected tables.
func diffFleet(t *testing.T, nSwitches, nRules, budget int) (*monocle.Fleet, map[uint32]*monocle.Table) {
	t.Helper()
	fleet := monocle.NewFleet(monocle.WithWorkers(budget))
	actual := map[uint32]*monocle.Table{}
	for id := uint32(1); id <= uint32(nSwitches); id++ {
		v, err := fleet.AddSwitch(id)
		if err != nil {
			t.Fatal(err)
		}
		_, rules := dataset.Generate(fleetProfile(id, nRules))
		if err := v.Install(rules...); err != nil {
			t.Fatal(err)
		}
		tbl := monocle.NewTable()
		for _, r := range rules {
			if err := tbl.Insert(r.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		actual[id] = tbl
	}
	return fleet, actual
}

// sweepRound runs one fleet sweep through the diff engine, judging every
// probe against the data-plane tables.
func sweepRound(fleet *monocle.Fleet, actual map[uint32]*monocle.Table, differ *monocle.Differ) []monocle.Alert {
	for _, ev := range fleet.Sweep(context.Background()) {
		if ev.Result.Probe != nil {
			differ.ObserveVerdict(ev, monocle.EvaluateProbe(ev.Result.Probe, actual[ev.SwitchID]))
		} else {
			differ.Observe(ev)
		}
	}
	return differ.EndSweep()
}

// mutation is one injected hardware divergence: switch sw loses or
// corrupts rule at round.
type mutation struct {
	sw     uint32
	rule   uint64
	round  int
	delete bool // false: corrupt the action list instead
}

// TestDifferDetectsInjectedMutations is the differential/property test:
// K random data-plane mutations injected at random rounds must produce
// exactly K rule-failing alerts (the injected set, nothing else), then —
// after the hardware heals — exactly K recovery alerts, identically for
// worker budgets 1, 2, and 8.
func TestDifferDetectsInjectedMutations(t *testing.T) {
	const (
		nSwitches = 5
		nRules    = 30
		healRound = 5
		lastRound = 7
	)
	rng := rand.New(rand.NewSource(20260727))

	// Build the mutation schedule once, against a reference fleet: one
	// mutation per switch (so injected faults cannot mask each other's
	// probes), on a random monitorable rule, at a random round.
	refFleet, _ := diffFleet(t, nSwitches, nRules, 1)
	probed := map[uint32][]uint64{}
	for _, ev := range refFleet.Sweep(context.Background()) {
		if ev.Result.Probe != nil {
			probed[ev.SwitchID] = append(probed[ev.SwitchID], ev.Result.Rule.ID)
		}
	}
	var schedule []mutation
	for id := uint32(1); id <= nSwitches; id++ {
		rules := probed[id]
		if len(rules) == 0 {
			t.Fatalf("switch %d has no monitorable rules", id)
		}
		schedule = append(schedule, mutation{
			sw:     id,
			rule:   rules[rng.Intn(len(rules))],
			round:  1 + rng.Intn(3), // rounds 1..3; heal at 5 keeps flap quiet
			delete: rng.Intn(2) == 0,
		})
	}

	key := func(sw uint32, rule uint64) string { return fmt.Sprintf("%d/%d", sw, rule) }
	injected := map[string]bool{}
	for _, m := range schedule {
		injected[key(m.sw, m.rule)] = true
	}

	var alertJSON []string
	for _, budget := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", budget), func(t *testing.T) {
			fleet, actual := diffFleet(t, nSwitches, nRules, budget)
			// Saved rules so healed hardware restores the exact state.
			saved := map[string]*monocle.Rule{}
			for _, m := range schedule {
				r, ok := actual[m.sw].Get(m.rule)
				if !ok {
					t.Fatalf("scheduled rule %d missing from switch %d", m.rule, m.sw)
				}
				saved[key(m.sw, m.rule)] = r.Clone()
			}

			differ := monocle.NewDiffer(monocle.WithStallThreshold(1 << 20))
			failing := map[string]int{}
			recovered := map[string]int{}
			var stream []monocle.Alert
			for round := 0; round <= lastRound; round++ {
				for _, m := range schedule {
					if m.round != round {
						continue
					}
					if m.delete {
						if err := actual[m.sw].Delete(m.rule); err != nil {
							t.Fatal(err)
						}
					} else {
						// Corrupt: hardware forwards to a port no rule in
						// the dataset uses.
						if err := actual[m.sw].Modify(m.rule, []monocle.Action{monocle.Output(4000)}); err != nil {
							t.Fatal(err)
						}
					}
				}
				if round == healRound {
					for _, m := range schedule {
						k := key(m.sw, m.rule)
						if m.delete {
							if err := actual[m.sw].Delete(m.rule); err == nil {
								t.Fatalf("healing %s: rule resurrected before heal", k)
							}
							if err := actual[m.sw].Insert(saved[k]); err != nil {
								t.Fatal(err)
							}
						} else {
							if err := actual[m.sw].Modify(m.rule, saved[k].Actions); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				for _, a := range sweepRound(fleet, actual, differ) {
					stream = append(stream, a)
					switch a.Type {
					case monocle.AlertRuleFailing:
						failing[key(a.SwitchID, a.Rule)]++
					case monocle.AlertRuleRecovered:
						recovered[key(a.SwitchID, a.Rule)]++
					default:
						t.Fatalf("unexpected alert type %v: %+v", a.Type, a)
					}
				}
			}

			// No misses: every injected mutation alerted exactly once,
			// then recovered exactly once.
			for k := range injected {
				if failing[k] != 1 {
					t.Errorf("mutation %s: %d failing alerts, want exactly 1", k, failing[k])
				}
				if recovered[k] != 1 {
					t.Errorf("mutation %s: %d recovery alerts, want exactly 1", k, recovered[k])
				}
			}
			// No false positives: nothing outside the injected set.
			for k, n := range failing {
				if !injected[k] {
					t.Errorf("false positive: %s failed %d times without an injected mutation", k, n)
				}
			}
			for k := range recovered {
				if !injected[k] {
					t.Errorf("false positive recovery for %s", k)
				}
			}

			// The alert stream must be identical across worker budgets
			// (the diff engine inherits the fleet's determinism).
			b, err := json.Marshal(stream)
			if err != nil {
				t.Fatal(err)
			}
			alertJSON = append(alertJSON, string(b))
		})
	}
	for i := 1; i < len(alertJSON); i++ {
		if alertJSON[i] != alertJSON[0] {
			t.Fatalf("alert stream diverged between worker budgets:\n%s\n%s", alertJSON[0], alertJSON[i])
		}
	}
}

// synthetic builds a sweep event for hand-driven differ tests.
func synthetic(sw uint32, epoch uint64, rule uint64) monocle.SweepEvent {
	return monocle.SweepEvent{
		SwitchID: sw,
		Epoch:    epoch,
		Result:   monocle.ProbeResult{Rule: &monocle.Rule{ID: rule}},
	}
}

// TestDifferDebounceAndRecovery: a rule must stay bad for the debounce
// threshold before alerting, alert exactly once while bad, and raise one
// recovery alert when it heals.
func TestDifferDebounceAndRecovery(t *testing.T) {
	d := monocle.NewDiffer(monocle.WithDebounce(3))
	drive := func(verdict monocle.Verdict) []monocle.Alert {
		d.ObserveVerdict(synthetic(1, 1, 7), verdict)
		return d.EndSweep()
	}
	if as := drive(monocle.VerdictConfirmed); len(as) != 0 {
		t.Fatalf("healthy round alerted: %+v", as)
	}
	for i := 0; i < 2; i++ {
		if as := drive(monocle.VerdictAbsent); len(as) != 0 {
			t.Fatalf("alert before debounce threshold (round %d): %+v", i+1, as)
		}
	}
	as := drive(monocle.VerdictAbsent)
	if len(as) != 1 || as[0].Type != monocle.AlertRuleFailing || as[0].Rule != 7 || as[0].Streak != 3 {
		t.Fatalf("want one failing alert at streak 3, got %+v", as)
	}
	if as[0].Status != monocle.StatusFailing {
		t.Fatalf("alert status = %v, want failing", as[0].Status)
	}
	for i := 0; i < 3; i++ {
		if as := drive(monocle.VerdictAbsent); len(as) != 0 {
			t.Fatalf("still-failing rule re-alerted: %+v", as)
		}
	}
	as = drive(monocle.VerdictConfirmed)
	if len(as) != 1 || as[0].Type != monocle.AlertRuleRecovered {
		t.Fatalf("want one recovery alert, got %+v", as)
	}
	if as := drive(monocle.VerdictConfirmed); len(as) != 0 {
		t.Fatalf("healthy rule alerted after recovery: %+v", as)
	}
}

// TestDifferStalledSwitch: a switch that stops contributing events raises
// one stall alert at the threshold, and resumes cleanly.
func TestDifferStalledSwitch(t *testing.T) {
	d := monocle.NewDiffer(monocle.WithStallThreshold(3))
	for i := 0; i < 2; i++ {
		d.ObserveVerdict(synthetic(9, 1, 1), monocle.VerdictConfirmed)
		if as := d.EndSweep(); len(as) != 0 {
			t.Fatalf("healthy round alerted: %+v", as)
		}
	}
	for i := 0; i < 2; i++ {
		if as := d.EndSweep(); len(as) != 0 {
			t.Fatalf("stall alert before threshold (missed %d): %+v", i+1, as)
		}
	}
	as := d.EndSweep()
	if len(as) != 1 || as[0].Type != monocle.AlertSwitchStalled || as[0].SwitchID != 9 || as[0].Streak != 3 {
		t.Fatalf("want one stall alert at 3 missed rounds, got %+v", as)
	}
	if as := d.EndSweep(); len(as) != 0 {
		t.Fatalf("stalled switch re-alerted: %+v", as)
	}
	// Resume: no alert, and a fresh stall counts from zero again.
	d.ObserveVerdict(synthetic(9, 1, 1), monocle.VerdictConfirmed)
	if as := d.EndSweep(); len(as) != 0 {
		t.Fatalf("resumed switch alerted: %+v", as)
	}
	d.EndSweep()
	d.EndSweep()
	as = d.EndSweep()
	if len(as) != 1 || as[0].Type != monocle.AlertSwitchStalled {
		t.Fatalf("want a second stall alert after re-stalling, got %+v", as)
	}
}

// TestDifferVerdictFlapping: a rule toggling between good and bad inside
// the flap window raises one flapping alert, which re-arms once the rule
// settles.
func TestDifferVerdictFlapping(t *testing.T) {
	// Debounce high enough that failing alerts stay out of the way.
	d := monocle.NewDiffer(monocle.WithDebounce(100), monocle.WithFlapWindow(4, 3))
	drive := func(verdict monocle.Verdict) []monocle.Alert {
		d.ObserveVerdict(synthetic(2, 1, 5), verdict)
		return d.EndSweep()
	}
	verdicts := []monocle.Verdict{monocle.VerdictConfirmed, monocle.VerdictAbsent, monocle.VerdictConfirmed}
	for i, v := range verdicts {
		if as := drive(v); len(as) != 0 {
			t.Fatalf("flap alert before threshold (round %d): %+v", i, as)
		}
	}
	as := drive(monocle.VerdictAbsent) // history g,b,g,b -> 3 flips
	if len(as) != 1 || as[0].Type != monocle.AlertVerdictFlapping || as[0].Rule != 5 || as[0].Streak != 3 {
		t.Fatalf("want one flapping alert with 3 flips, got %+v", as)
	}
	if as := drive(monocle.VerdictConfirmed); len(as) != 0 { // still flapping: latched
		t.Fatalf("flapping re-alerted while latched: %+v", as)
	}
	// Settle for a full window, then flap again: the alert re-arms.
	for i := 0; i < 4; i++ {
		if as := drive(monocle.VerdictConfirmed); len(as) != 0 {
			t.Fatalf("settled rule alerted (round %d): %+v", i, as)
		}
	}
	drive(monocle.VerdictAbsent)
	drive(monocle.VerdictConfirmed)
	as = drive(monocle.VerdictAbsent)
	if len(as) != 1 || as[0].Type != monocle.AlertVerdictFlapping {
		t.Fatalf("want a re-armed flapping alert, got %+v", as)
	}
}

// TestDifferDiscardsStaleEpochs: events from a superseded epoch must not
// overwrite the snapshot of a newer one.
func TestDifferDiscardsStaleEpochs(t *testing.T) {
	d := monocle.NewDiffer()
	d.ObserveVerdict(synthetic(1, 5, 1), monocle.VerdictConfirmed)
	d.ObserveVerdict(synthetic(1, 4, 1), monocle.VerdictAbsent) // stale: discarded
	if as := d.EndSweep(); len(as) != 0 {
		t.Fatalf("stale event alerted: %+v", as)
	}
}
