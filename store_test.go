package monocle

// White-box tests for the persistence layer: FileStore WAL round-trips,
// compaction, torn-tail tolerance, the Rule <-> RuleSpec wire-form
// round-trip the store depends on, and the Differ's State/Restore fold
// continuity.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := SwitchSpec{ID: 7, Backend: "sim", Ports: []uint16{1, 2}}
	if err := fs.SaveSwitch(spec); err != nil {
		t.Fatal(err)
	}
	rules := []RuleSpec{{ID: 1, Priority: 10,
		Match:   map[string]string{"dl_type": "2048", "nw_dst": "167772416/24"},
		Actions: []ActionSpec{{Output: 2}}}}
	if err := fs.SaveRules(7, 5, rules); err != nil {
		t.Fatal(err)
	}
	diffState := DifferState{Rounds: 9, Switches: map[uint32]SwitchDiffState{
		7: {Epoch: 5, Ever: true, Rules: map[uint64]RuleDiffState{
			1: {Streak: 2, Alerted: true, Hist: []bool{false, true, true}},
		}},
	}}
	alerts := []Alert{{Type: AlertRuleFailing, SwitchID: 7, Rule: 1, Epoch: 5, Status: StatusFailing, Streak: 2}}
	if err := fs.SaveRound(diffState, alerts); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store on the same directory sees everything back.
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	state, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	st, ok := state.Switches[7]
	if !ok {
		t.Fatalf("switch 7 missing from %+v", state)
	}
	if !reflect.DeepEqual(st.Spec, spec) {
		t.Fatalf("spec round-trip: got %+v want %+v", st.Spec, spec)
	}
	if st.Epoch != 5 || !reflect.DeepEqual(st.Rules, rules) {
		t.Fatalf("rules round-trip: epoch %d rules %+v", st.Epoch, st.Rules)
	}
	if !st.HasDiff || !reflect.DeepEqual(st.Diff, diffState.Switches[7]) {
		t.Fatalf("diff round-trip: %+v", st)
	}
	if state.Rounds != 9 {
		t.Fatalf("rounds = %d, want 9", state.Rounds)
	}
	if !reflect.DeepEqual(state.Alerts, alerts) {
		t.Fatalf("alerts round-trip: %+v", state.Alerts)
	}
}

func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// Push one switch's WAL far past the compaction threshold with
	// superseding snapshots.
	for i := 0; i < compactEvery+16; i++ {
		if err := fs.SaveRules(3, uint64(i+1), []RuleSpec{{ID: 1, Priority: i}}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, switchWALName(3)))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines > compactEvery {
		t.Fatalf("WAL not compacted: %d lines", lines)
	}
	// The compacted file still loads to the latest snapshot.
	state, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := state.Switches[3]
	if st.Epoch != uint64(compactEvery+16) || len(st.Rules) != 1 || st.Rules[0].Priority != compactEvery+15 {
		t.Fatalf("post-compaction load: %+v", st)
	}
	// Appends after compaction land in the same file.
	if err := fs.SaveRules(3, 9999, nil); err != nil {
		t.Fatal(err)
	}
	state, err = fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := state.Switches[3]; got.Epoch != 9999 || len(got.Rules) != 0 {
		t.Fatalf("post-compaction append: %+v", got)
	}
}

func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveRules(1, 3, []RuleSpec{{ID: 4, Priority: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveRound(DifferState{Rounds: 2}, nil); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	// A crash mid-append leaves a truncated final line; it must not take
	// the parsed prefix down with it.
	for _, name := range []string{switchWALName(1), serviceWALName} {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(f, `{"kind":"rules","seq":99,"epo`)
		f.Close()
	}
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	state, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st := state.Switches[1]; st.Epoch != 3 || len(st.Rules) != 1 {
		t.Fatalf("torn tail corrupted the prefix: %+v", st)
	}
	if state.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", state.Rounds)
	}
}

func TestFileStoreCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := SwitchSpec{ID: 5, Backend: "sim", Ports: []uint16{1, 2}}
	if err := fs.SaveSwitch(spec); err != nil {
		t.Fatal(err)
	}
	rules := []RuleSpec{{ID: 2, Priority: 7, Actions: []ActionSpec{{Output: 2}}}}
	if err := fs.SaveRules(5, 11, rules); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Simulate a kill between the compaction's tmp write and its atomic
	// rename: a fully written, synced temporary holding a *different*
	// (would-be compacted) state sits next to the untouched WAL. The WAL
	// is still the authoritative file — the rename never happened.
	stale := filepath.Join(dir, switchWALName(5)+".tmp-123456")
	if err := os.WriteFile(stale,
		[]byte(`{"seq":1,"kind":"rules","epoch":999,"rules":[{"id":66,"priority":1}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	state, err := fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	st, ok := state.Switches[5]
	if !ok {
		t.Fatalf("switch 5 missing from %+v", state)
	}
	if !reflect.DeepEqual(st.Spec, spec) || st.Epoch != 11 || !reflect.DeepEqual(st.Rules, rules) {
		t.Fatalf("load after compaction crash returned the wrong state: %+v", st)
	}
	// The orphaned temporary must be swept on open, not left to pile up.
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temporary survived open: %v", err)
	}
	// The recovered store keeps working: appends and a real compaction
	// against the survivor WAL.
	for i := 0; i < compactEvery+1; i++ {
		if err := fs2.SaveRules(5, uint64(100+i), rules); err != nil {
			t.Fatal(err)
		}
	}
	state, err = fs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := state.Switches[5]; got.Epoch != uint64(100+compactEvery) {
		t.Fatalf("post-recovery compaction lost the latest snapshot: %+v", got)
	}
}

func TestRuleSpecRoundTrip(t *testing.T) {
	arbitrary := Ternary{Value: 0x0a000001 & 0xff0000ff, Mask: 0xff0000ff}
	rules := []*Rule{
		{ID: 1, Priority: 10,
			Match:   MatchAll().WithExact(EthType, EthTypeIPv4).With(IPDst, Prefix(IPDst, 10<<24|1<<8, 24)),
			Actions: []Action{Output(2)}},
		{ID: 2, Priority: 20,
			Match:   MatchAll().WithExact(EthType, EthTypeIPv4).With(IPSrc, arbitrary),
			Actions: []Action{SetField(VlanID, 5), Output(1)}},
		{ID: 3, Priority: 5,
			Match:   MatchAll(),
			Actions: []Action{ECMP(1, 2, 3)}},
		{ID: 4, Priority: 1, Match: MatchAll()}, // drop
	}
	for _, r := range rules {
		spec := ruleSpec(r)
		back, err := spec.rule()
		if err != nil {
			t.Fatalf("rule %d: re-parsing %+v: %v", r.ID, spec, err)
		}
		if back.ID != r.ID || back.Priority != r.Priority || back.Match != r.Match ||
			!reflect.DeepEqual(back.Actions, r.Actions) {
			t.Fatalf("rule %d round-trip:\n got %+v\nwant %+v\n(spec %+v)", r.ID, back, r, spec)
		}
	}
}

func TestParseTernaryMaskForm(t *testing.T) {
	tern, err := parseTernary(IPSrc, "0xa000001&0xff0000ff")
	if err != nil {
		t.Fatal(err)
	}
	want := Ternary{Value: 0x0a000001 & 0xff0000ff, Mask: 0xff0000ff}
	if tern != want {
		t.Fatalf("got %+v want %+v", tern, want)
	}
	if _, err := parseTernary(VlanID, "1&0xffffffff"); err == nil {
		t.Fatal("over-wide mask accepted")
	}
	if _, err := parseTernary(IPSrc, "zzz&1"); err == nil {
		t.Fatal("bad value accepted")
	}
}

// TestDifferStateRestore pins fold continuity: a Differ restored from a
// snapshot behaves exactly like the one that never stopped — outstanding
// failing alerts do not re-fire, and a later recovery fires once.
func TestDifferStateRestore(t *testing.T) {
	rule := &Rule{ID: 11, Priority: 1, Match: MatchAll(), Actions: []Action{Output(1)}}
	feed := func(d *Differ, bad bool) []Alert {
		ev := SweepEvent{SwitchID: 1, Epoch: 4, Result: ProbeResult{Rule: rule}}
		if bad {
			d.ObserveVerdict(ev, VerdictAbsent)
		} else {
			d.ObserveVerdict(ev, VerdictConfirmed)
		}
		return d.EndSweep()
	}

	d1 := NewDiffer(WithDebounce(2))
	if got := feed(d1, true); len(got) != 0 {
		t.Fatalf("debounce round alerted: %+v", got)
	}
	if got := feed(d1, true); len(got) != 1 || got[0].Type != AlertRuleFailing {
		t.Fatalf("want one failing alert, got %+v", got)
	}

	d2 := NewDiffer(WithDebounce(2))
	d2.Restore(d1.State())
	if d2.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", d2.Rounds())
	}
	// Still failing: the restored alerted flag suppresses a duplicate.
	if got := feed(d2, true); len(got) != 0 {
		t.Fatalf("restored differ re-fired: %+v", got)
	}
	// Recovery fires exactly once against the restored state.
	got := feed(d2, false)
	if len(got) != 1 || got[0].Type != AlertRuleRecovered || got[0].Rule != 11 {
		t.Fatalf("want one recovery, got %+v", got)
	}
	if got := feed(d2, false); len(got) != 0 {
		t.Fatalf("second recovery: %+v", got)
	}
}
