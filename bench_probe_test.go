package monocle_test

// Probe-dataplane benchmarks for the batched zero-alloc injection path:
// frame craft/parse (pinned at 0 B/op), the SimBackend batch seam, and
// the live ProxyBackend throughput comparison — N serialized one-shot
// round trips versus one pipelined ObserveBatch over the same wire.
// BENCH_probe.json records the results; TestProbeBenchRegression guards
// the allocation numbers in CI.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"monocle"
	"monocle/internal/header"
	"monocle/internal/packet"
)

// benchProbeHeader is the widest frame the crafter emits (tagged IPv4
// TCP), mirroring the internal packet alloc pins.
func benchProbeHeader() header.Header {
	var h header.Header
	h.Set(header.EthDst, 0x0000deadbeef)
	h.Set(header.EthSrc, 0x0000cafef00d)
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, 7)
	h.Set(header.VlanPCP, 1)
	h.Set(header.IPSrc, 0x0a000001)
	h.Set(header.IPDst, 0x0a000002)
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.TPSrc, 1234)
	h.Set(header.TPDst, 80)
	return h
}

// BenchmarkProbeCraft measures the reused-buffer injection marshal: one
// metadata payload + frame craft per op, 0 B/op.
func BenchmarkProbeCraft(b *testing.B) {
	h := benchProbeHeader()
	meta := packet.Metadata{RuleID: 42, SwitchID: 3, Expect: packet.ExpectPresent, Nonce: 99}
	frameBuf := make([]byte, 0, packet.DefaultFrameCap)
	metaBuf := make([]byte, 0, packet.MetadataLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meta.Seq = uint64(i)
		payload := meta.AppendTo(metaBuf[:0])
		var err error
		frameBuf, err = packet.CraftInto(frameBuf[:0], h, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeParse measures the catch-side frame parse, 0 B/op.
func BenchmarkProbeParse(b *testing.B) {
	h := benchProbeHeader()
	meta := packet.Metadata{RuleID: 42, Seq: 7, SwitchID: 3, Expect: packet.ExpectPresent, Nonce: 99}
	frame, err := packet.Craft(h, meta.Marshal())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := packet.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeObserveBatchSim measures the batch seam against the
// simulated driver: one 64-probe ObserveBatch per op. The bytes/op here
// are dominated by probe evaluation; the seam itself adds only the two
// result slices (pinned by TestSimBackendObserveBatchAllocs).
func BenchmarkProbeObserveBatchSim(b *testing.B) {
	be := monocle.NewSimBackend(1)
	v, err := monocle.NewVerifier(monocle.WithProbeTag(1))
	if err != nil {
		b.Fatal(err)
	}
	var probes []*monocle.Probe
	var expects []monocle.Expectation
	for i := uint64(0); i < 64; i++ {
		r := seamRule(1, i)
		if err := be.Apply(monocle.BackendOp{Op: "add", Rule: r.Clone()}); err != nil {
			b.Fatal(err)
		}
		p, err := v.Add(r)
		if err != nil {
			b.Fatal(err)
		}
		probes = append(probes, p)
		expects = append(expects, monocle.ExpectPresent)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts, errs := be.ObserveBatch(ctx, probes, expects)
		if errs[0] != nil || verdicts[0] != monocle.VerdictConfirmed {
			b.Fatalf("verdict %v err %v", verdicts[0], errs[0])
		}
	}
}

// proxyBenchEnv is a live TCP switch + proxy driver + generated probes,
// shared by the throughput benchmarks.
type proxyBenchEnv struct {
	be      *monocle.ProxyBackend
	probes  []*monocle.Probe
	expects []monocle.Expectation
}

func newProxyBenchEnv(b *testing.B, nRules uint64) *proxyBenchEnv {
	b.Helper()
	ports := []monocle.PortID{1, 2, 3, 4}
	srv, err := monocle.StartSwitchServer(monocle.SwitchServerConfig{ID: 9, Ports: ports, Profile: monocle.SwitchProfile{}})
	if err != nil {
		b.Fatal(err)
	}
	peers := map[monocle.PortID]uint32{1: 9, 2: 9, 3: 9, 4: 9}
	be := monocle.NewProxyBackend(monocle.ProxyConfig{
		SwitchID:   9,
		SwitchAddr: srv.Addr(),
	}, monocle.WithPorts(ports...), monocle.WithPeers(peers))
	if err := be.Connect(context.Background()); err != nil {
		srv.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		be.Close()
		srv.Close()
	})
	v, err := monocle.NewVerifier(monocle.WithProbeTag(9), monocle.WithPorts(ports...), monocle.WithPeers(peers))
	if err != nil {
		b.Fatal(err)
	}
	env := &proxyBenchEnv{be: be}
	for i := uint64(0); i < nRules; i++ {
		r := seamRule(9, i)
		if err := be.Apply(monocle.BackendOp{Op: "add", Rule: r.Clone()}); err != nil {
			b.Fatal(err)
		}
		p, err := v.Add(r)
		if err != nil {
			b.Fatal(err)
		}
		env.probes = append(env.probes, p)
		env.expects = append(env.expects, monocle.ExpectPresent)
	}
	return env
}

// BenchmarkProbeProxyOneShot is the pre-batch baseline: every probe is
// one Observe call — one event-loop post, one wire round trip, and a
// full inject→wait→inject serialization.
func BenchmarkProbeProxyOneShot(b *testing.B) {
	env := newProxyBenchEnv(b, 128)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range env.probes {
			v, err := env.be.Observe(ctx, p, env.expects[j])
			if err != nil || v != monocle.VerdictConfirmed {
				b.Fatalf("observe %d: %v %v", j, v, err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(env.probes)*b.N)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkProbeProxyBatch10k is the batched dataplane: a 10k-probe
// sweep through one ObserveBatch call — one event-loop post, an
// in-flight window of pipelined observations saturating the wire. The
// probes/s here versus BenchmarkProbeProxyOneShot is the headline
// speedup BENCH_probe.json records.
func BenchmarkProbeProxyBatch10k(b *testing.B) {
	const sweep = 10000
	env := newProxyBenchEnv(b, 128)
	// The 128 generated probes cycled to a 10k-probe sweep: every entry
	// is injected as its own wire probe with a fresh sequence number.
	probes := make([]*monocle.Probe, 0, sweep)
	expects := make([]monocle.Expectation, 0, sweep)
	for len(probes) < sweep {
		probes = append(probes, env.probes...)
		expects = append(expects, env.expects...)
	}
	probes, expects = probes[:sweep], expects[:sweep]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts, errs := env.be.ObserveBatch(ctx, probes, expects)
		for j := range verdicts {
			if errs[j] != nil || verdicts[j] != monocle.VerdictConfirmed {
				b.Fatalf("probe %d: %v %v", j, verdicts[j], errs[j])
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sweep*b.N)/b.Elapsed().Seconds(), "probes/s")
}

// probeBenchBaseline is BENCH_probe.json's guarded slice: per-benchmark
// allocation baselines.
type probeBenchBaseline struct {
	Benchmarks map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// TestProbeBenchRegression is the CI bench-smoke guard: it re-runs the
// deterministic probe benchmarks and fails when bytes/op regresses more
// than 20% over BENCH_probe.json (time is not guarded — shared runners
// jitter; allocation behaviour does not). Gated behind an env var so
// ordinary test runs stay fast.
func TestProbeBenchRegression(t *testing.T) {
	if os.Getenv("MONOCLE_BENCH_GUARD") == "" {
		t.Skip("set MONOCLE_BENCH_GUARD=1 to run the bench regression guard (CI bench-smoke)")
	}
	raw, err := os.ReadFile("BENCH_probe.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base probeBenchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing BENCH_probe.json: %v", err)
	}
	for name, bench := range map[string]func(*testing.B){
		"BenchmarkProbeCraft":           BenchmarkProbeCraft,
		"BenchmarkProbeParse":           BenchmarkProbeParse,
		"BenchmarkProbeObserveBatchSim": BenchmarkProbeObserveBatchSim,
	} {
		want, ok := base.Benchmarks[name]
		if !ok {
			t.Errorf("%s missing from BENCH_probe.json", name)
			continue
		}
		r := testing.Benchmark(bench)
		got := r.AllocedBytesPerOp()
		limit := int64(float64(want.BytesPerOp) * 1.2)
		if want.BytesPerOp == 0 && got != 0 {
			t.Errorf("%s: %d B/op, baseline is zero-alloc", name, got)
			continue
		}
		if got > limit {
			t.Errorf("%s: %d B/op regressed >20%% over baseline %d", name, got, want.BytesPerOp)
		}
		t.Logf("%s: %d B/op %d allocs/op (baseline %d B/op)", name, got, r.AllocsPerOp(), want.BytesPerOp)
	}
}
