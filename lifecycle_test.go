package monocle_test

// Restart-lifecycle and sink-robustness regression tests: a webhook
// endpoint that stalls forever must not wedge alert delivery, and the
// drain flag must be read under the lock and reset when a new Run begins
// (a restarted service must not report draining forever). Run under -race
// in CI.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"monocle"
)

// TestWebhookSinkStallingServer pins the per-POST deadline: a server that
// accepts the connection and then never answers must fail the delivery
// within the sink's timeout instead of blocking the sweep goroutine
// forever (sweeps deliver with a background context, so the sink's own
// deadline is the only bound there is).
func TestWebhookSinkStallingServer(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer stalled.Close()
	// Unblock the handler before the deferred Close (LIFO), which waits
	// for outstanding requests.
	defer close(release)

	sink := monocle.NewWebhookSink(stalled.URL, nil).SetTimeout(50 * time.Millisecond)
	defer sink.Close()
	start := time.Now()
	err := sink.Deliver(context.Background(), []monocle.Alert{{Type: monocle.AlertRuleFailing, SwitchID: 1, Rule: 7}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("delivery to a stalling endpoint reported success")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("delivery blocked for %v — the per-POST timeout is not bounding the request", elapsed)
	}
}

// TestServiceDrainLifecycle drives the Run/drain/restart cycle while
// hammering /healthz concurrently: the draining flag must be visible as
// true after a drain, must reset to false when a new Run starts (the
// restart-lifecycle bug this release fixes), and every read must be
// data-race-free under -race.
func TestServiceDrainLifecycle(t *testing.T) {
	svc := monocle.NewService(
		monocle.WithWorkers(1),
		monocle.WithSteadyInterval(2*time.Millisecond),
	)
	defer svc.Close()
	if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	healthz := func() (draining bool) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			OK       bool `json:"ok"`
			Draining bool `json:"draining"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !out.OK {
			t.Fatal("healthz not ok")
		}
		return out.Draining
	}

	runOnce := func() {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			svc.Run(ctx)
		}()

		// Concurrent healthz reads race the drain transition on purpose.
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						healthz()
					}
				}
			}()
		}

		// While Run is live the service must not report draining.
		deadline := time.Now().Add(10 * time.Second)
		for healthz() {
			if time.Now().After(deadline) {
				t.Fatal("service still draining after Run started")
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(10 * time.Millisecond) // let sweeps and readers overlap
		cancel()
		<-done
		close(stop)
		wg.Wait()
		if !healthz() {
			t.Fatal("service does not report draining after Run returned")
		}
	}

	// Two full cycles: the second would fail without the draining reset at
	// the top of Run.
	runOnce()
	runOnce()
}
