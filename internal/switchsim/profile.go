// Package switchsim is an event-driven OpenFlow 1.0 switch simulator. It
// stands in for the hardware switches of the paper's testbed (HP ProCurve
// 5406zl, Pica8, Dell S4810, Dell 8132F): each Profile reproduces the
// externally observable control-plane behaviour the paper measured —
// message processing rates (§8.3.1), control-vs-data-plane lag and
// premature acknowledgments (§8.1.2, [16]), rule reordering, and the
// interference of PacketOut/PacketIn load with rule modification
// throughput (Figures 6 and 7).
//
// A Switch is a pure state machine over a sim.Sim virtual clock: the
// controller side feeds it openflow messages, the data plane side feeds it
// wire frames, and it emits messages/frames through callbacks. That keeps
// it deterministic and lets experiments replay seconds of testbed time in
// milliseconds.
package switchsim

import (
	"time"
)

// Profile captures one switch model's control-plane behaviour. Service
// times are per message; sustained maxima are their reciprocals, so the
// §8.3.1 measurements calibrate them directly.
type Profile struct {
	// Name labels the profile in experiment output.
	Name string

	// FlowModService is the control-plane processing time per FlowMod.
	FlowModService time.Duration
	// CommitService is the data plane (TCAM) update time per rule; the
	// commit pipeline is serial and runs behind the control plane,
	// which is what creates control/data-plane inconsistency windows.
	CommitService time.Duration
	// PacketOutService is the processing time per PacketOut; its
	// reciprocal is the switch's maximum PacketOut rate.
	PacketOutService time.Duration
	// PacketInService is the time to punt one packet to the controller;
	// its reciprocal caps the PacketIn rate (excess punts are dropped).
	PacketInService time.Duration
	// PacketInShare is the fraction of PacketIn punting work that
	// contends with the FlowMod path (Figure 7's interference knob).
	PacketInShare float64

	// PrematureAck makes the switch answer barriers as soon as the
	// control plane has processed preceding FlowMods, before the data
	// plane commit finishes — the HP/Pica8 behaviour from [16] that
	// Monocle exists to paper over.
	PrematureAck bool
	// ReorderCommits lets data plane commits complete out of order
	// (Pica8): each commit gets an extra uniform delay in
	// [0, ReorderJitter].
	ReorderCommits bool
	// ReorderJitter bounds the commit reorder delay.
	ReorderJitter time.Duration
}

// MaxPacketOutRate returns the sustained PacketOut/s capacity.
func (p Profile) MaxPacketOutRate() float64 {
	if p.PacketOutService <= 0 {
		return 1e12
	}
	return float64(time.Second) / float64(p.PacketOutService)
}

// MaxPacketInRate returns the sustained PacketIn/s capacity.
func (p Profile) MaxPacketInRate() float64 {
	if p.PacketInService <= 0 {
		return 1e12
	}
	return float64(time.Second) / float64(p.PacketInService)
}

// MaxFlowModRate returns the sustained FlowMod/s capacity of the control
// plane (the data plane commit pipeline may be slower).
func (p Profile) MaxFlowModRate() float64 {
	if p.FlowModService <= 0 {
		return 1e12
	}
	return float64(time.Second) / float64(p.FlowModService)
}

// Calibration notes: PacketOut/PacketIn service times are set from the
// paper's measured maxima (§8.3.1): HP 7006/5531 msg/s, Dell S4810
// 850/401, Dell 8132F 9128/1105. FlowMod and commit rates are set so the
// Figure 5/6/7 shapes reproduce: HP and Pica8 acknowledge rules several
// milliseconds to hundreds of milliseconds before the data plane commit
// lands; Dell S4810 is very slow with distinct priorities and much faster
// (but interference-prone) with equal priorities [16].

// HP5406zl models the HP ProCurve 5406zl.
func HP5406zl() Profile {
	return Profile{
		Name:             "HP 5406zl",
		FlowModService:   4500 * time.Microsecond, // ~222 FlowMod/s
		CommitService:    5100 * time.Microsecond, // ~196 commits/s
		PacketOutService: 143 * time.Microsecond,  // ~7006 PacketOut/s
		PacketInService:  181 * time.Microsecond,  // ~5531 PacketIn/s
		PacketInShare:    0.03,
		PrematureAck:     true,
	}
}

// Pica8 models the Pica8 behaviour the paper emulates in front of OVS:
// premature barrier replies and rule reordering.
func Pica8() Profile {
	return Profile{
		Name:             "PICA8 emulation",
		FlowModService:   5500 * time.Microsecond, // ~182 FlowMod/s
		CommitService:    5900 * time.Microsecond, // ~170 commits/s
		PacketOutService: 200 * time.Microsecond,
		PacketInService:  400 * time.Microsecond,
		PacketInShare:    0.05,
		PrematureAck:     true,
		ReorderCommits:   true,
		ReorderJitter:    40 * time.Millisecond,
	}
}

// DellS4810 models the Dell S4810 with rules at distinct priorities
// (very low baseline modification rate).
func DellS4810() Profile {
	return Profile{
		Name:             "DELL S4810",
		FlowModService:   35 * time.Millisecond, // ~29 FlowMod/s
		CommitService:    35 * time.Millisecond,
		PacketOutService: 1176 * time.Microsecond, // ~850 PacketOut/s
		PacketInService:  2494 * time.Microsecond, // ~401 PacketIn/s
		PacketInShare:    0.02,
	}
}

// DellS4810EqualPrio models the S4810 with all rules at equal priority
// (the ** series in Figures 6–7): a much higher baseline rate that is
// easily degraded by control-channel load.
func DellS4810EqualPrio() Profile {
	return Profile{
		Name:             "DELL S4810**",
		FlowModService:   1430 * time.Microsecond, // ~700 FlowMod/s
		CommitService:    1430 * time.Microsecond,
		PacketOutService: 1176 * time.Microsecond,
		PacketInService:  2494 * time.Microsecond,
		PacketInShare:    0.6,
	}
}

// Dell8132F models the Dell 8132F with experimental OpenFlow support.
func Dell8132F() Profile {
	return Profile{
		Name:             "DELL 8132F",
		FlowModService:   4 * time.Millisecond, // ~250 FlowMod/s
		CommitService:    4 * time.Millisecond,
		PacketOutService: 110 * time.Microsecond, // ~9128 PacketOut/s
		PacketInService:  905 * time.Microsecond, // ~1105 PacketIn/s
		PacketInShare:    0.05,
	}
}

// HonestPica8 is the Figure 8 "ideal switch" baseline: the same
// processing and commit rates as the Pica8 emulation, but with truthful
// barriers and in-order commits. Comparing Monocle-on-Pica8 against it
// isolates the cost of Monocle's feedback from the switch's speed.
func HonestPica8() Profile {
	p := Pica8()
	p.Name = "Ideal"
	p.PrematureAck = false
	p.ReorderCommits = false
	p.ReorderJitter = 0
	return p
}

// OVS models Open vSwitch: fast, with accurate update acknowledgments
// (the hypervisor/edge switch role in §8.4).
func OVS() Profile {
	return Profile{
		Name:             "OVS",
		FlowModService:   100 * time.Microsecond,
		CommitService:    50 * time.Microsecond,
		PacketOutService: 20 * time.Microsecond,
		PacketInService:  30 * time.Microsecond,
		PacketInShare:    0.01,
	}
}

// Ideal models the hypothetical switch with instantaneous, truthful
// updates (the comparison baseline of Figure 8).
func Ideal() Profile {
	return Profile{
		Name:             "Ideal",
		FlowModService:   100 * time.Microsecond,
		CommitService:    100 * time.Microsecond,
		PacketOutService: 20 * time.Microsecond,
		PacketInService:  30 * time.Microsecond,
	}
}
