package switchsim

import (
	"fmt"
	"math/rand"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/sim"
)

// PortTable aliases the OpenFlow OFPP_TABLE pseudo-port: a PacketOut with
// this output port submits the frame to the switch's own flow table, which
// is how Monocle injects probes through the probed switch.
const PortTable = openflow.PortTable

// Frame is a wire-format packet traversing the simulated data plane.
type Frame []byte

// Switch is one simulated OpenFlow switch. All methods must be called from
// the owning sim.Sim event loop; the switch schedules its own follow-up
// events on that loop.
type Switch struct {
	ID      uint32
	Sim     *sim.Sim
	Profile Profile

	// ToController delivers switch→controller messages (PacketIn,
	// BarrierReply, EchoReply, ...). Set by the owner before use.
	ToController func(msg openflow.Message, xid uint32)

	dataTable *flowtable.Table
	links     map[flowtable.PortID]*linkEnd

	// Control-plane server occupancy.
	ctrlBusyUntil sim.Time
	// Data plane commit pipeline occupancy and completion bookkeeping.
	commitBusyUntil sim.Time
	lastCommitDone  sim.Time

	// PacketIn rate limiting.
	piNextFree sim.Time

	rng *rand.Rand

	// Failure injection state.
	failedRules map[uint64]bool

	// OnCommit, when set, observes every data plane commit (used by the
	// experiment harness to timestamp when rules truly land).
	OnCommit func(cmd uint16, cookie uint64, at sim.Time)

	// Statistics.
	Stats Stats
}

// Stats counts switch activity for the experiments.
type Stats struct {
	FlowModsProcessed  int
	CommitsApplied     int
	PacketOuts         int
	PacketIns          int
	PacketInsDropped   int
	DataPacketsIn      int
	DataPacketsOut     int
	DataPacketsDropped int
}

// New creates a switch bound to the simulation kernel. The seed fixes the
// ECMP and reordering randomness.
func New(id uint32, s *sim.Sim, profile Profile, seed int64) *Switch {
	return &Switch{
		ID:          id,
		Sim:         s,
		Profile:     profile,
		dataTable:   flowtable.New(),
		links:       make(map[flowtable.PortID]*linkEnd),
		rng:         rand.New(rand.NewSource(seed)),
		failedRules: make(map[uint64]bool),
	}
}

// DataTable exposes the data plane table (read-only use by tests and
// failure injection).
func (sw *Switch) DataTable() *flowtable.Table { return sw.dataTable }

// CtrlBusyUntil reports when the control-plane server drains its current
// backlog (virtual time); used by closed-loop load generators.
func (sw *Switch) CtrlBusyUntil() sim.Time { return sw.ctrlBusyUntil }

// linkEnd is one side of a link: either a peer switch port or a host
// delivery function.
type linkEnd struct {
	latency time.Duration
	failed  *bool // shared between both directions
	deliver func(f Frame)
}

// Connect wires port a of sa to port b of sb with the given one-way
// latency. It returns a handle that can fail/heal the link.
func Connect(sa *Switch, pa flowtable.PortID, sb *Switch, pb flowtable.PortID, latency time.Duration) *Link {
	failed := new(bool)
	l := &Link{failed: failed}
	sa.links[pa] = &linkEnd{latency: latency, failed: failed, deliver: func(f Frame) {
		sb.InjectFrame(pb, f)
	}}
	sb.links[pb] = &linkEnd{latency: latency, failed: failed, deliver: func(f Frame) {
		sa.InjectFrame(pa, f)
	}}
	return l
}

// ConnectHost attaches a host (delivery callback) to a switch port.
func ConnectHost(sw *Switch, p flowtable.PortID, latency time.Duration, deliver func(f Frame)) *Link {
	failed := new(bool)
	sw.links[p] = &linkEnd{latency: latency, failed: failed, deliver: deliver}
	return &Link{failed: failed}
}

// Link is a handle over a (bidirectional) link for failure injection.
type Link struct{ failed *bool }

// Fail makes the link drop all frames.
func (l *Link) Fail() { *l.failed = true }

// Heal restores the link.
func (l *Link) Heal() { *l.failed = false }

// Failed reports the link state.
func (l *Link) Failed() bool { return *l.failed }

// FailRule removes a rule from the data plane while leaving every
// control-plane view intact — the paper's steady-state failure injection
// (§8.1.1). Unknown IDs are remembered so a late commit is suppressed.
func (sw *Switch) FailRule(id uint64) {
	sw.failedRules[id] = true
	_ = sw.dataTable.Delete(id)
}

// HealRule lifts the injected failure so a subsequent (re-)install works;
// the rule itself must be re-installed by the control plane.
func (sw *Switch) HealRule(id uint64) {
	delete(sw.failedRules, id)
}

// ctrlOccupy serializes work on the control-plane server and returns the
// completion time of this unit of work.
func (sw *Switch) ctrlOccupy(service time.Duration) sim.Time {
	start := sw.Sim.Now()
	if sw.ctrlBusyUntil > start {
		start = sw.ctrlBusyUntil
	}
	done := start + service
	sw.ctrlBusyUntil = done
	return done
}

// commitOccupy serializes work on the data plane commit pipeline.
func (sw *Switch) commitOccupy(after sim.Time, service time.Duration) sim.Time {
	start := after
	if sw.commitBusyUntil > start {
		start = sw.commitBusyUntil
	}
	done := start + service
	sw.commitBusyUntil = done
	return done
}

// FromController handles one controller→switch message.
func (sw *Switch) FromController(msg openflow.Message, xid uint32) {
	switch m := msg.(type) {
	case *openflow.Hello, openflow.Hello:
		// Session setup is implicit in simulation.
	case *openflow.EchoRequest:
		sw.reply(openflow.EchoReply{Data: m.Data}, xid)
	case *openflow.FeaturesRequest, openflow.FeaturesRequest:
		sw.reply(sw.features(), xid)
	case *openflow.FlowMod:
		sw.handleFlowMod(m, xid)
	case *openflow.PacketOut:
		sw.handlePacketOut(m)
	case *openflow.BarrierRequest, openflow.BarrierRequest:
		sw.handleBarrier(xid)
	default:
		sw.reply(openflow.ErrorMsg{Type: 1, Code: 1}, xid) // bad request
	}
}

func (sw *Switch) reply(msg openflow.Message, xid uint32) {
	if sw.ToController == nil {
		return
	}
	sw.Sim.At(sw.Sim.Now(), func() { sw.ToController(msg, xid) })
}

func (sw *Switch) features() openflow.FeaturesReply {
	fr := openflow.FeaturesReply{DatapathID: uint64(sw.ID), NBuffers: 256, NTables: 1}
	for p := range sw.links {
		fr.Ports = append(fr.Ports, openflow.PhyPort{PortNo: uint16(p), Name: fmt.Sprintf("port%d", p)})
	}
	return fr
}

// handleFlowMod runs the FlowMod through the control-plane server, then
// schedules the data plane commit behind the commit pipeline.
func (sw *Switch) handleFlowMod(m *openflow.FlowMod, _ uint32) {
	procDone := sw.ctrlOccupy(sw.Profile.FlowModService)
	commitService := sw.Profile.CommitService
	commitDone := sw.commitOccupy(procDone, commitService)
	if sw.Profile.ReorderCommits && sw.Profile.ReorderJitter > 0 {
		// Reordering manifests under concurrency: a commit can be
		// delayed past later ones, but only within the window the
		// pending backlog provides (a lone sequential update cannot be
		// reordered with anything).
		backlog := sw.commitBusyUntil - procDone
		if backlog < 0 {
			backlog = 0
		}
		window := sw.Profile.ReorderJitter
		if backlog < window {
			window = backlog
		}
		if window > 0 {
			commitDone += time.Duration(sw.rng.Int63n(int64(window)))
		}
	}
	if commitDone > sw.lastCommitDone {
		sw.lastCommitDone = commitDone
	}
	match := m.Match.ToMatch()
	actions, err := openflow.ToActions(m.Actions)
	if err != nil {
		sw.reply(openflow.ErrorMsg{Type: 2, Code: 0}, 0) // bad action
		return
	}
	cmd := m.Command
	cookie := m.Cookie
	prio := int(m.Priority)
	sw.Sim.At(procDone, func() { sw.Stats.FlowModsProcessed++ })
	sw.Sim.At(commitDone, func() {
		sw.Stats.CommitsApplied++
		sw.applyCommit(cmd, cookie, prio, match, actions)
		if sw.OnCommit != nil {
			sw.OnCommit(cmd, cookie, sw.Sim.Now())
		}
	})
}

func (sw *Switch) applyCommit(cmd uint16, cookie uint64, prio int, match flowtable.Match, actions []flowtable.Action) {
	switch cmd {
	case openflow.FCAdd:
		if sw.failedRules[cookie] {
			return // injected install failure
		}
		// OpenFlow add-or-replace semantics for identical match+prio.
		sw.dataTable.DeleteMatching(match, prio)
		rule := &flowtable.Rule{ID: cookie, Priority: prio, Match: match, Actions: actions}
		if err := sw.dataTable.Insert(rule); err != nil {
			// Equal-priority overlap: spec-undefined; real switches
			// accept silently. We drop the new rule to stay defined.
			return
		}
	case openflow.FCModify, openflow.FCModifyStrict:
		if r, ok := sw.dataTable.Get(cookie); ok {
			_ = sw.dataTable.Modify(r.ID, actions)
			return
		}
		sw.dataTable.DeleteMatching(match, prio)
		_ = sw.dataTable.Insert(&flowtable.Rule{ID: cookie, Priority: prio, Match: match, Actions: actions})
	case openflow.FCDelete, openflow.FCDeleteStrict:
		if _, ok := sw.dataTable.Get(cookie); ok {
			_ = sw.dataTable.Delete(cookie)
			return
		}
		sw.dataTable.DeleteMatching(match, prio)
	}
}

// handleBarrier replies per the profile's acknowledgment discipline.
func (sw *Switch) handleBarrier(xid uint32) {
	procDone := sw.ctrlOccupy(0)
	replyAt := procDone
	if !sw.Profile.PrematureAck {
		// Honest barrier: wait for every commit issued so far.
		if sw.lastCommitDone > replyAt {
			replyAt = sw.lastCommitDone
		}
	}
	sw.Sim.At(replyAt, func() {
		if sw.ToController != nil {
			sw.ToController(openflow.BarrierReply{}, xid)
		}
	})
}

// handlePacketOut emits the frame after control-plane processing.
func (sw *Switch) handlePacketOut(m *openflow.PacketOut) {
	done := sw.ctrlOccupy(sw.Profile.PacketOutService)
	data := append(Frame(nil), m.Data...)
	inPort := m.InPort
	var outs []uint16
	for _, a := range m.Actions {
		if a.Type == 0 { // OUTPUT
			outs = append(outs, a.Port)
		}
	}
	sw.Sim.At(done, func() {
		sw.Stats.PacketOuts++
		for _, p := range outs {
			if p == PortTable {
				sw.forwardViaTable(flowtable.PortID(inPort), data)
			} else {
				sw.emit(flowtable.PortID(p), data)
			}
		}
	})
}

// InjectFrame is the data plane entry point: a frame arrives on a port.
func (sw *Switch) InjectFrame(port flowtable.PortID, f Frame) {
	sw.Stats.DataPacketsIn++
	sw.forwardViaTable(port, f)
}

// forwardViaTable looks the frame up in the data plane table and executes
// the matching rule's actions.
func (sw *Switch) forwardViaTable(inPort flowtable.PortID, f Frame) {
	h, payload, err := packet.Parse(f)
	if err != nil {
		sw.Stats.DataPacketsDropped++
		return
	}
	h.Set(header.InPort, uint64(inPort))
	rule := sw.dataTable.Lookup(h)
	if rule == nil {
		if sw.dataTable.Miss == flowtable.MissController {
			sw.punt(inPort, f, openflow.ReasonNoMatch)
		} else {
			sw.Stats.DataPacketsDropped++
		}
		return
	}
	emissions := rule.Apply(h, sw.rng.Intn)
	if len(emissions) == 0 {
		sw.Stats.DataPacketsDropped++
		return
	}
	for _, em := range emissions {
		if em.Port == flowtable.PortController {
			out, err := packet.Craft(em.Header, payload)
			if err != nil {
				sw.Stats.DataPacketsDropped++
				continue
			}
			sw.punt(inPort, out, openflow.ReasonAction)
			continue
		}
		out, err := packet.Craft(em.Header, payload)
		if err != nil {
			sw.Stats.DataPacketsDropped++
			continue
		}
		sw.emit(em.Port, out)
	}
}

// punt sends a PacketIn, subject to the profile's PacketIn capacity.
func (sw *Switch) punt(inPort flowtable.PortID, f Frame, reason uint8) {
	now := sw.Sim.Now()
	if now < sw.piNextFree {
		sw.Stats.PacketInsDropped++
		return
	}
	sw.piNextFree = now + sw.Profile.PacketInService
	// Punting steals a share of the control-plane server (Figure 7).
	if sw.Profile.PacketInShare > 0 {
		sw.ctrlOccupy(time.Duration(float64(sw.Profile.PacketInService) * sw.Profile.PacketInShare))
	}
	data := append(Frame(nil), f...)
	sw.Sim.At(now+sw.Profile.PacketInService, func() {
		sw.Stats.PacketIns++
		if sw.ToController != nil {
			sw.ToController(&openflow.PacketIn{
				BufferID: openflow.BufferNone,
				InPort:   uint16(inPort),
				Reason:   reason,
				Data:     data,
			}, 0)
		}
	})
}

// emit puts the frame on the link attached to port, if any.
func (sw *Switch) emit(port flowtable.PortID, f Frame) {
	le, ok := sw.links[port]
	if !ok || *le.failed {
		sw.Stats.DataPacketsDropped++
		return
	}
	sw.Stats.DataPacketsOut++
	cp := append(Frame(nil), f...)
	sw.Sim.After(le.latency, func() { le.deliver(cp) })
}
