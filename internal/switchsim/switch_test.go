package switchsim

import (
	"testing"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/sim"
)

func ip4(a, b, c, d uint64) uint64 { return a<<24 | b<<16 | c<<8 | d }

func testFrame(t *testing.T, src uint64) Frame {
	t.Helper()
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPProto, header.ProtoUDP)
	h.Set(header.IPSrc, src)
	f, err := packet.Craft(h, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func fmAdd(t *testing.T, cookie uint64, prio uint16, src uint64, out uint16) *openflow.FlowMod {
	t.Helper()
	m := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		WithExact(header.IPSrc, src)
	wm, err := openflow.FromMatch(m)
	if err != nil {
		t.Fatal(err)
	}
	var acts []openflow.Action
	if out != 0 {
		acts = []openflow.Action{openflow.OutputAction(out)}
	}
	return &openflow.FlowMod{Match: wm, Cookie: cookie, Command: openflow.FCAdd,
		Priority: prio, BufferID: openflow.BufferNone, OutPort: openflow.PortNone, Actions: acts}
}

func TestFlowModCommitTiming(t *testing.T) {
	s := sim.New()
	sw := New(1, s, HP5406zl(), 1)
	sw.FromController(fmAdd(t, 1, 10, ip4(10, 0, 0, 1), 2), 1)
	s.RunUntil(HP5406zl().FlowModService) // control processed, commit pending
	if _, ok := sw.DataTable().Get(1); ok {
		t.Fatal("rule committed too early")
	}
	s.Run()
	if _, ok := sw.DataTable().Get(1); !ok {
		t.Fatal("rule never committed")
	}
	if sw.Stats.FlowModsProcessed != 1 || sw.Stats.CommitsApplied != 1 {
		t.Fatalf("stats %+v", sw.Stats)
	}
}

func TestHonestBarrierWaitsForCommit(t *testing.T) {
	s := sim.New()
	sw := New(1, s, Ideal(), 1) // Ideal: no premature ack
	var barrierAt sim.Time = -1
	sw.ToController = func(msg openflow.Message, xid uint32) {
		if _, ok := msg.(openflow.BarrierReply); ok {
			barrierAt = s.Now()
		}
	}
	sw.FromController(fmAdd(t, 1, 10, ip4(10, 0, 0, 1), 2), 1)
	sw.FromController(openflow.BarrierRequest{}, 2)
	s.Run()
	want := Ideal().FlowModService + Ideal().CommitService
	if barrierAt < want {
		t.Fatalf("honest barrier at %v, commit finishes at %v", barrierAt, want)
	}
}

func TestDataPlaneForwarding(t *testing.T) {
	s := sim.New()
	a := New(1, s, Ideal(), 1)
	b := New(2, s, Ideal(), 2)
	Connect(a, 1, b, 1, time.Millisecond)
	a.FromController(fmAdd(t, 1, 10, ip4(10, 0, 0, 1), 1), 1)
	s.Run()
	a.InjectFrame(2, testFrame(t, ip4(10, 0, 0, 1)))
	s.Run()
	if b.Stats.DataPacketsIn != 1 {
		t.Fatalf("b did not receive the frame: %+v", b.Stats)
	}
	// Unmatched traffic drops (MissDrop default).
	a.InjectFrame(2, testFrame(t, ip4(10, 0, 0, 9)))
	s.Run()
	if a.Stats.DataPacketsDropped != 1 {
		t.Fatalf("a stats %+v", a.Stats)
	}
}

func TestRewriteAppliedOnPath(t *testing.T) {
	s := sim.New()
	a := New(1, s, Ideal(), 1)
	var got header.Header
	ConnectHost(a, 1, 0, func(f Frame) {
		h, _, err := packet.Parse(f)
		if err != nil {
			t.Errorf("parse: %v", err)
		}
		got = h
	})
	m := flowtable.MatchAll().WithExact(header.EthType, header.EthTypeIPv4)
	wm, _ := openflow.FromMatch(m)
	fm := &openflow.FlowMod{Match: wm, Cookie: 1, Command: openflow.FCAdd, Priority: 5,
		BufferID: openflow.BufferNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{
			{Type: 8, Value: 0x2e}, // SET_NW_TOS
			openflow.OutputAction(1),
		}}
	a.FromController(fm, 1)
	s.Run()
	a.InjectFrame(2, testFrame(t, ip4(1, 2, 3, 4)))
	s.Run()
	if got.Get(header.IPTos) != 0x2e {
		t.Fatalf("rewrite not applied: tos=%#x", got.Get(header.IPTos))
	}
}

func TestPacketOutViaTable(t *testing.T) {
	s := sim.New()
	a := New(1, s, Ideal(), 1)
	b := New(2, s, Ideal(), 2)
	Connect(a, 1, b, 1, 0)
	a.FromController(fmAdd(t, 1, 10, ip4(10, 0, 0, 1), 1), 1)
	s.Run()
	a.FromController(&openflow.PacketOut{
		BufferID: openflow.BufferNone, InPort: 2,
		Actions: []openflow.Action{openflow.OutputAction(PortTable)},
		Data:    testFrame(t, ip4(10, 0, 0, 1)),
	}, 2)
	s.Run()
	if b.Stats.DataPacketsIn != 1 {
		t.Fatalf("OFPP_TABLE injection failed: %+v", b.Stats)
	}
}

func TestPacketOutDirectPort(t *testing.T) {
	s := sim.New()
	a := New(1, s, Ideal(), 1)
	b := New(2, s, Ideal(), 2)
	Connect(a, 1, b, 1, 0)
	a.FromController(&openflow.PacketOut{
		BufferID: openflow.BufferNone, InPort: openflow.PortNone,
		Actions: []openflow.Action{openflow.OutputAction(1)},
		Data:    testFrame(t, ip4(10, 0, 0, 1)),
	}, 1)
	s.Run()
	if b.Stats.DataPacketsIn != 1 {
		t.Fatalf("direct PacketOut failed: %+v", b.Stats)
	}
}

func TestPacketInRateCap(t *testing.T) {
	s := sim.New()
	prof := DellS4810() // 401 PacketIn/s
	sw := New(1, s, prof, 1)
	sw.DataTable().Miss = flowtable.MissController
	received := 0
	sw.ToController = func(msg openflow.Message, xid uint32) {
		if _, ok := msg.(*openflow.PacketIn); ok {
			received++
		}
	}
	// Offer 2000 packets over 1 second.
	for i := 0; i < 2000; i++ {
		f := testFrame(t, ip4(9, 9, uint64(i>>8), uint64(i&0xff)))
		s.At(sim.Time(i)*(time.Second/2000), func() { sw.InjectFrame(1, f) })
	}
	s.Run()
	max := int(prof.MaxPacketInRate()) + 10
	if received > max {
		t.Fatalf("PacketIn rate cap violated: %d > %d", received, max)
	}
	if received < 300 {
		t.Fatalf("too few PacketIns: %d", received)
	}
	if sw.Stats.PacketInsDropped == 0 {
		t.Fatal("no drops recorded above capacity")
	}
}

func TestFailRuleRemovesFromDataplaneOnly(t *testing.T) {
	s := sim.New()
	sw := New(1, s, Ideal(), 1)
	sw.FromController(fmAdd(t, 5, 10, ip4(10, 0, 0, 5), 1), 1)
	s.Run()
	sw.FailRule(5)
	if _, ok := sw.DataTable().Get(5); ok {
		t.Fatal("rule still in data plane")
	}
	// A re-install attempt is suppressed (persistent failure).
	sw.FromController(fmAdd(t, 5, 10, ip4(10, 0, 0, 5), 1), 2)
	s.Run()
	if _, ok := sw.DataTable().Get(5); ok {
		t.Fatal("failed rule resurrected")
	}
}

func TestLinkFailure(t *testing.T) {
	s := sim.New()
	a := New(1, s, Ideal(), 1)
	b := New(2, s, Ideal(), 2)
	link := Connect(a, 1, b, 1, 0)
	a.FromController(fmAdd(t, 1, 10, ip4(10, 0, 0, 1), 1), 1)
	s.Run()
	link.Fail()
	a.InjectFrame(2, testFrame(t, ip4(10, 0, 0, 1)))
	s.Run()
	if b.Stats.DataPacketsIn != 0 {
		t.Fatal("failed link delivered")
	}
	link.Heal()
	if link.Failed() {
		t.Fatal("heal")
	}
	a.InjectFrame(2, testFrame(t, ip4(10, 0, 0, 1)))
	s.Run()
	if b.Stats.DataPacketsIn != 1 {
		t.Fatal("healed link did not deliver")
	}
}

func TestEchoAndFeatures(t *testing.T) {
	s := sim.New()
	sw := New(7, s, Ideal(), 1)
	ConnectHost(sw, 3, 0, func(Frame) {})
	var msgs []openflow.Message
	sw.ToController = func(msg openflow.Message, xid uint32) { msgs = append(msgs, msg) }
	sw.FromController(&openflow.EchoRequest{Data: []byte("hi")}, 1)
	sw.FromController(openflow.FeaturesRequest{}, 2)
	s.Run()
	if len(msgs) != 2 {
		t.Fatalf("msgs %v", msgs)
	}
	if er, ok := msgs[0].(openflow.EchoReply); !ok || string(er.Data) != "hi" {
		t.Fatalf("echo %v", msgs[0])
	}
	fr, ok := msgs[1].(openflow.FeaturesReply)
	if !ok || fr.DatapathID != 7 || len(fr.Ports) != 1 {
		t.Fatalf("features %v", msgs[1])
	}
}

func TestModifyAndDeleteCommands(t *testing.T) {
	s := sim.New()
	sw := New(1, s, Ideal(), 1)
	fm := fmAdd(t, 9, 10, ip4(10, 0, 0, 9), 1)
	sw.FromController(fm, 1)
	s.Run()
	mod := *fm
	mod.Command = openflow.FCModifyStrict
	mod.Actions = []openflow.Action{openflow.OutputAction(4)}
	sw.FromController(&mod, 2)
	s.Run()
	r, _ := sw.DataTable().Get(9)
	if r == nil || r.ForwardingSet()[0] != 4 {
		t.Fatalf("modify: %v", r)
	}
	del := *fm
	del.Command = openflow.FCDeleteStrict
	del.Actions = nil
	sw.FromController(&del, 3)
	s.Run()
	if sw.DataTable().Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestReorderCommits(t *testing.T) {
	s := sim.New()
	sw := New(1, s, Pica8(), 42)
	var commitTimes []sim.Time
	n := 20
	for i := 0; i < n; i++ {
		sw.FromController(fmAdd(t, uint64(i), uint16(10+i), ip4(10, 0, 1, uint64(i)), 1), uint32(i))
	}
	// Sample commit completion order by polling each event step.
	seen := make(map[uint64]bool)
	for s.Step() {
		for i := 0; i < n; i++ {
			if _, ok := sw.DataTable().Get(uint64(i)); ok && !seen[uint64(i)] {
				seen[uint64(i)] = true
				commitTimes = append(commitTimes, sim.Time(i))
			}
		}
	}
	if len(commitTimes) != n {
		t.Fatalf("committed %d/%d", len(commitTimes), n)
	}
	inOrder := true
	for i := 1; i < n; i++ {
		if commitTimes[i] < commitTimes[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("Pica8 profile should reorder commits (with jitter 40ms over 5.9ms service)")
	}
}

func TestProfileRatesMatchPaper(t *testing.T) {
	checks := []struct {
		prof Profile
		po   float64
		pi   float64
	}{
		{HP5406zl(), 7006, 5531},
		{DellS4810(), 850, 401},
		{Dell8132F(), 9128, 1105},
	}
	for _, c := range checks {
		if got := c.prof.MaxPacketOutRate(); got < c.po*0.95 || got > c.po*1.05 {
			t.Errorf("%s PacketOut rate %.0f want ≈%.0f", c.prof.Name, got, c.po)
		}
		if got := c.prof.MaxPacketInRate(); got < c.pi*0.95 || got > c.pi*1.05 {
			t.Errorf("%s PacketIn rate %.0f want ≈%.0f", c.prof.Name, got, c.pi)
		}
	}
	if HP5406zl().MaxFlowModRate() <= 0 {
		t.Fatal("flowmod rate")
	}
}
