// Package controller provides the reference SDN controller pieces the
// paper's experiments drive Monocle with: per-flow rule construction, path
// installation over a multi-switch fabric, and the two-phase consistent
// update discipline of §8.1.2/§8.4 ("the controller cannot update the
// upstream switch sooner than the downstream switch finished updating its
// data plane").
package controller

import (
	"fmt"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
)

// Flow identifies one unidirectional IP flow by source/destination pair.
type Flow struct {
	ID    uint64
	SrcIP uint64
	DstIP uint64
}

// FlowForIndex deterministically assigns flow i an address pair in
// 10.0.0.0/8 (src) and 10.128.0.0/9 (dst).
func FlowForIndex(i int) Flow {
	return Flow{
		ID:    uint64(i),
		SrcIP: 10<<24 | uint64(i+1),
		DstIP: 10<<24 | 1<<23 | uint64(i+1),
	}
}

// Match builds the exact-flow match.
func (f Flow) Match() flowtable.Match {
	return flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		WithExact(header.IPSrc, f.SrcIP).
		WithExact(header.IPDst, f.DstIP)
}

// RuleID derives a per-switch unique rule id for the flow.
func (f Flow) RuleID(sw uint32) uint64 {
	return f.ID<<16 | uint64(sw)&0xffff
}

// FlowModAdd builds the ADD FlowMod forwarding the flow to out.
func FlowModAdd(f Flow, sw uint32, priority uint16, out flowtable.PortID) (*openflow.FlowMod, error) {
	wm, err := openflow.FromMatch(f.Match())
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return &openflow.FlowMod{
		Match:    wm,
		Cookie:   f.RuleID(sw),
		Command:  openflow.FCAdd,
		Priority: priority,
		BufferID: openflow.BufferNone,
		OutPort:  openflow.PortNone,
		Actions:  []openflow.Action{openflow.OutputAction(uint16(out))},
	}, nil
}

// FlowModModify builds the MODIFY_STRICT FlowMod rerouting the flow.
func FlowModModify(f Flow, sw uint32, priority uint16, out flowtable.PortID) (*openflow.FlowMod, error) {
	fm, err := FlowModAdd(f, sw, priority, out)
	if err != nil {
		return nil, err
	}
	fm.Command = openflow.FCModifyStrict
	return fm, nil
}

// PathPorts maps a switch path to (switch, egress port) hops using a port
// resolver; the final hop egresses toward the destination host port.
type Hop struct {
	Switch uint32
	Out    flowtable.PortID
}

// PortResolver resolves wiring: the egress port of switch u toward switch
// v, and the host port of an edge switch.
type PortResolver interface {
	PortBetween(u, v int) (flowtable.PortID, bool)
	HostPort(edge int) (flowtable.PortID, bool)
}

// HopsForPath converts a switch-index path into per-hop egress ports,
// ending at the destination edge switch's host port.
func HopsForPath(path []int, r PortResolver) ([]Hop, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("controller: empty path")
	}
	var hops []Hop
	for i := 0; i < len(path)-1; i++ {
		p, ok := r.PortBetween(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("controller: no link %d-%d", path[i], path[i+1])
		}
		hops = append(hops, Hop{Switch: uint32(path[i]), Out: p})
	}
	last := path[len(path)-1]
	hp, ok := r.HostPort(last)
	if !ok {
		return nil, fmt.Errorf("controller: switch %d has no host port", last)
	}
	hops = append(hops, Hop{Switch: uint32(last), Out: hp})
	return hops, nil
}

// TwoPhaseUpdate captures the §8.4 discipline for one path: phase one
// installs every rule except the ingress switch's; phase two updates the
// ingress rule once phase one is confirmed.
type TwoPhaseUpdate struct {
	Flow    Flow
	Ingress Hop
	Rest    []Hop

	pending map[uint64]bool // rule ids awaited in phase 1
	done    bool
	// OnPhase2 fires when the ingress rule may be safely updated.
	OnPhase2 func()
}

// NewTwoPhaseUpdate splits a hop list into ingress + rest.
func NewTwoPhaseUpdate(f Flow, hops []Hop) *TwoPhaseUpdate {
	u := &TwoPhaseUpdate{Flow: f, Ingress: hops[0], Rest: hops[1:], pending: map[uint64]bool{}}
	for _, h := range u.Rest {
		u.pending[f.RuleID(h.Switch)] = true
	}
	return u
}

// Phase1Rules returns the FlowMods for the non-ingress hops.
func (u *TwoPhaseUpdate) Phase1Rules(priority uint16) ([]*openflow.FlowMod, error) {
	var out []*openflow.FlowMod
	for _, h := range u.Rest {
		fm, err := FlowModAdd(u.Flow, h.Switch, priority, h.Out)
		if err != nil {
			return nil, err
		}
		out = append(out, fm)
	}
	return out, nil
}

// Phase2Rule returns the ingress FlowMod.
func (u *TwoPhaseUpdate) Phase2Rule(priority uint16) (*openflow.FlowMod, error) {
	return FlowModAdd(u.Flow, u.Ingress.Switch, priority, u.Ingress.Out)
}

// Confirm records one rule confirmation; it triggers OnPhase2 exactly once
// when every phase-1 rule is confirmed. Returns true if phase 2 fired.
func (u *TwoPhaseUpdate) Confirm(ruleID uint64) bool {
	if u.done {
		return false
	}
	delete(u.pending, ruleID)
	if len(u.pending) == 0 {
		u.done = true
		if u.OnPhase2 != nil {
			u.OnPhase2()
		}
		return true
	}
	return false
}

// Done reports whether phase 2 has fired.
func (u *TwoPhaseUpdate) Done() bool { return u.done }
