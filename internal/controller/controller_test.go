package controller

import (
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/topo"
)

func TestFlowForIndexDistinct(t *testing.T) {
	seen := map[[2]uint64]bool{}
	for i := 0; i < 2000; i++ {
		f := FlowForIndex(i)
		key := [2]uint64{f.SrcIP, f.DstIP}
		if seen[key] {
			t.Fatalf("flow %d collides", i)
		}
		seen[key] = true
	}
}

func TestFlowMatchAndRuleID(t *testing.T) {
	f := FlowForIndex(7)
	m := f.Match()
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.IPSrc, f.SrcIP)
	h.Set(header.IPDst, f.DstIP)
	if !m.Covers(h) {
		t.Fatal("flow match must cover its packet")
	}
	h.Set(header.IPDst, f.DstIP+1)
	if m.Covers(h) {
		t.Fatal("must be exact")
	}
	if FlowForIndex(7).RuleID(3) == FlowForIndex(7).RuleID(4) {
		t.Fatal("rule ids must differ per switch")
	}
	if FlowForIndex(7).RuleID(3) == FlowForIndex(8).RuleID(3) {
		t.Fatal("rule ids must differ per flow")
	}
}

func TestFlowModBuilders(t *testing.T) {
	f := FlowForIndex(1)
	fm, err := FlowModAdd(f, 2, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Command != openflow.FCAdd || fm.Cookie != f.RuleID(2) || fm.Priority != 100 {
		t.Fatalf("%+v", fm)
	}
	if len(fm.Actions) != 1 || fm.Actions[0].Port != 5 {
		t.Fatalf("actions %+v", fm.Actions)
	}
	if !fm.Match.ToMatch().Equal(f.Match()) {
		t.Fatal("match round trip")
	}
	mod, err := FlowModModify(f, 2, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Command != openflow.FCModifyStrict {
		t.Fatal("modify command")
	}
}

type ftResolver struct{ ft *topo.FatTree }

func (r ftResolver) PortBetween(u, v int) (flowtable.PortID, bool) { return r.ft.Port(u, v) }
func (r ftResolver) HostPort(e int) (flowtable.PortID, bool) {
	p, ok := r.ft.HostPort[e]
	return p, ok
}

func TestHopsForPath(t *testing.T) {
	ft := topo.NewFatTree(4)
	path := ft.Path(ft.Edge[0][0], ft.Edge[1][0])
	hops, err := HopsForPath(path, ftResolver{ft})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != len(path) {
		t.Fatalf("hops %d path %d", len(hops), len(path))
	}
	// Every hop's egress port must exist on that switch; final hop uses
	// the host port.
	last := hops[len(hops)-1]
	hp, _ := ft.HostPort[path[len(path)-1]], true
	if last.Out != hp {
		t.Fatalf("final hop port %d want host port %d", last.Out, hp)
	}
	if _, err := HopsForPath(nil, ftResolver{ft}); err == nil {
		t.Fatal("empty path must error")
	}
	// A disconnected pair of switches fails port resolution.
	if _, err := HopsForPath([]int{ft.Core[0], ft.Core[1]}, ftResolver{ft}); err == nil {
		t.Fatal("non-adjacent hop must error")
	}
}

func TestTwoPhaseUpdate(t *testing.T) {
	f := FlowForIndex(3)
	hops := []Hop{{Switch: 10, Out: 1}, {Switch: 11, Out: 2}, {Switch: 12, Out: 3}}
	u := NewTwoPhaseUpdate(f, hops)
	fired := 0
	u.OnPhase2 = func() { fired++ }

	fms, err := u.Phase1Rules(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(fms) != 2 {
		t.Fatalf("phase1 rules %d", len(fms))
	}
	if u.Confirm(f.RuleID(11)); u.Done() {
		t.Fatal("half-confirmed update must not be done")
	}
	if !u.Confirm(f.RuleID(12)) || !u.Done() || fired != 1 {
		t.Fatalf("done=%v fired=%d", u.Done(), fired)
	}
	// Idempotent.
	if u.Confirm(f.RuleID(12)) || fired != 1 {
		t.Fatal("double confirmation must not refire")
	}
	p2, err := u.Phase2Rule(50)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cookie != f.RuleID(10) {
		t.Fatal("phase2 cookie")
	}
}

func TestTwoPhaseIgnoresForeignRules(t *testing.T) {
	f := FlowForIndex(4)
	u := NewTwoPhaseUpdate(f, []Hop{{Switch: 1, Out: 1}, {Switch: 2, Out: 2}})
	if u.Confirm(999999) {
		t.Fatal("foreign rule must not complete the update")
	}
	if !u.Confirm(f.RuleID(2)) {
		t.Fatal("own rule must complete it")
	}
}
