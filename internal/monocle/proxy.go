package monocle

// Proxy logic: the Monitor intercepts the controller↔switch session. It
// forwards FlowMods immediately (§7: "Monitor forwards the FlowMod
// messages as soon as it receives them"), tracks the expected flow table,
// starts dynamic monitoring of every update, queues updates that overlap
// still-unconfirmed ones (§4.2), rewrites drop rules when drop-postponing
// is enabled (§4.3), and answers controller barriers only once every
// preceding update is provably in the data plane (§8.1.2).

import (
	"monocle/internal/flowtable"
	"monocle/internal/openflow"
	"monocle/internal/packet"
)

// OnControllerMessage handles one controller→Monitor message.
func (m *Monitor) OnControllerMessage(msg openflow.Message, xid uint32) {
	switch t := msg.(type) {
	case *openflow.FlowMod:
		m.handleControllerFlowMod(t, xid)
	case *openflow.BarrierRequest, openflow.BarrierRequest:
		m.handleControllerBarrier(xid)
	default:
		m.forwardToSwitch(msg, xid)
	}
}

// OnSwitchMessage handles one switch→Monitor message.
func (m *Monitor) OnSwitchMessage(msg openflow.Message, xid uint32) {
	switch t := msg.(type) {
	case *openflow.PacketIn:
		if m.handleCaughtProbe(t) {
			return // consumed: a Monocle probe, not production traffic
		}
		m.forwardToController(msg, xid)
	case openflow.PacketIn:
		if m.handleCaughtProbe(&t) {
			return
		}
		m.forwardToController(msg, xid)
	case *openflow.BarrierReply, openflow.BarrierReply:
		if m.handleSwitchBarrierReply(xid) {
			return // consumed: a barrier Monocle is gating
		}
		m.forwardToController(msg, xid)
	default:
		m.forwardToController(msg, xid)
	}
}

func (m *Monitor) forwardToSwitch(msg openflow.Message, xid uint32) {
	if m.ToSwitch != nil {
		m.ToSwitch(msg, xid)
	}
}

func (m *Monitor) forwardToController(msg openflow.Message, xid uint32) {
	if m.ToController != nil {
		m.ToController(msg, xid)
	}
}

// handleControllerFlowMod applies §4.1/§4.2/§4.3 to one rule update.
func (m *Monitor) handleControllerFlowMod(fm *openflow.FlowMod, xid uint32) {
	m.Stats.FlowModsProxied++

	// §4.2: hold back updates that overlap any unconfirmed update.
	if m.overlapsPending(fm) {
		m.Stats.QueuedOverlaps++
		m.queued = append(m.queued, &queuedMod{fm: fm, xid: xid})
		return
	}
	m.processFlowMod(fm, xid)
}

// overlapsPending reports whether fm's match overlaps a pending update's.
func (m *Monitor) overlapsPending(fm *openflow.FlowMod) bool {
	match := fm.Match.ToMatch()
	for id := range m.pending {
		if r, ok := m.expected.Get(id); ok && r.Match.Overlaps(match) {
			return true
		}
		// Deleted rules are no longer in expected; conservative check
		// against the probe's rule match via pending probes.
		if pu := m.pending[id]; pu != nil && pu.probe != nil {
			// The probe header matches the pending rule by
			// construction, so an overlap with the probe header is an
			// overlap with the rule.
			var h = pu.probe.Header
			if match.Covers(h) {
				return true
			}
		}
	}
	return false
}

// processFlowMod updates the expected table, forwards the (possibly
// rewritten) FlowMod, and starts dynamic monitoring for it.
func (m *Monitor) processFlowMod(fm *openflow.FlowMod, xid uint32) {
	actions, err := openflow.ToActions(fm.Actions)
	if err != nil {
		// Not expressible: forward unmonitored.
		m.forwardToSwitch(fm, xid)
		return
	}
	match := fm.Match.ToMatch()

	switch fm.Command {
	case openflow.FCAdd:
		if m.Cfg.DropPostpone && len(actions) == 0 {
			m.addWithDropPostpone(fm, xid)
			return
		}
		m.addRule(fm, xid, match, actions)
	case openflow.FCModify, openflow.FCModifyStrict:
		m.modifyRule(fm, xid, match, actions)
	case openflow.FCDelete, openflow.FCDeleteStrict:
		m.deleteRule(fm, xid, match)
	default:
		m.forwardToSwitch(fm, xid)
	}
}

func (m *Monitor) addRule(fm *openflow.FlowMod, xid uint32, match flowtable.Match, actions []flowtable.Action) {
	// Add-or-replace semantics.
	m.expected.DeleteMatching(match, int(fm.Priority))
	rule := &flowtable.Rule{ID: fm.Cookie, Priority: int(fm.Priority), Match: match, Actions: actions}
	if err := m.expected.Insert(rule); err != nil {
		// Equal-priority overlap or duplicate id: undefined on the
		// switch too; forward unmonitored.
		m.forwardToSwitch(fm, xid)
		return
	}
	m.tableChanged(match)
	m.forwardToSwitch(fm, xid)

	// Addition probes target the expected table as-is, so they run through
	// the epoch-aware session cache (only this rule gets recompiled).
	p, err := m.generateExpected(rule)
	if err != nil {
		m.noteGenFailure(err)
		// Unmonitorable: confirm optimistically so barriers don't hang
		// (the switch's own barrier still gates them).
		m.confirmWithoutProbe(rule.ID)
		return
	}
	m.Stats.GeneratedProbes++
	m.startPending(rule.ID, p, packet.ExpectPresent)
}

// addWithDropPostpone installs the marked-forwarding version of a drop
// rule, confirms it positively, then swaps in the real drop (§4.3).
func (m *Monitor) addWithDropPostpone(fm *openflow.FlowMod, xid uint32) {
	match := fm.Match.ToMatch()
	marked := []flowtable.Action{
		flowtable.SetField(m.Cfg.DropField, m.Cfg.DropValue),
		flowtable.Output(m.Cfg.DropNeighborPort),
	}
	wireActs, err := openflow.FromActions(marked)
	if err != nil {
		m.forwardToSwitch(fm, xid)
		return
	}
	markedFM := *fm
	markedFM.Actions = wireActs
	m.expected.DeleteMatching(match, int(fm.Priority))
	rule := &flowtable.Rule{ID: fm.Cookie, Priority: int(fm.Priority), Match: match, Actions: marked}
	if err := m.expected.Insert(rule); err != nil {
		m.forwardToSwitch(fm, xid)
		return
	}
	m.tableChanged(match)
	m.forwardToSwitch(&markedFM, xid)

	p, err := m.generateExpected(rule)
	if err != nil {
		m.noteGenFailure(err)
		m.confirmWithoutProbe(rule.ID)
		return
	}
	m.Stats.GeneratedProbes++
	pu := m.startPending(rule.ID, p, packet.ExpectPresent)
	pu.postponed = &postponedDrop{match: match, priority: fm.Priority, cookie: fm.Cookie}
}

func (m *Monitor) modifyRule(fm *openflow.FlowMod, xid uint32, match flowtable.Match, actions []flowtable.Action) {
	old := m.findRule(fm.Cookie, match, int(fm.Priority))
	if old == nil {
		// Modify of unknown rule behaves like add on OF1.0 switches.
		m.addRule(fm, xid, match, actions)
		return
	}
	p, err := m.gen.GenerateModification(m.expected, old, actions)
	if err != nil {
		m.noteGenFailure(err)
		_ = m.expected.Modify(old.ID, actions)
		m.tableChanged(match)
		m.forwardToSwitch(fm, xid)
		m.confirmWithoutProbe(old.ID)
		return
	}
	m.Stats.GeneratedProbes++
	_ = m.expected.Modify(old.ID, actions)
	m.tableChanged(match)
	m.forwardToSwitch(fm, xid)
	m.startPending(old.ID, p, packet.ExpectModified)
}

func (m *Monitor) deleteRule(fm *openflow.FlowMod, xid uint32, match flowtable.Match) {
	old := m.findRule(fm.Cookie, match, int(fm.Priority))
	if old == nil {
		m.forwardToSwitch(fm, xid)
		return
	}
	// Generate the probe while the rule is still in the expected table;
	// deletion is confirmed when the Absent outcome is observed (§4.1).
	// The rule is only dropped from the session cache's library on the
	// epoch sync after the delete below.
	p, err := m.generateExpected(old)
	_ = m.expected.Delete(old.ID)
	m.tableChanged(match)
	m.forwardToSwitch(fm, xid)
	if err != nil {
		m.noteGenFailure(err)
		m.confirmWithoutProbe(old.ID)
		return
	}
	m.Stats.GeneratedProbes++
	m.startPending(old.ID, p, packet.ExpectAbsent)
}

// findRule locates the referenced rule by cookie, falling back to strict
// match+priority lookup.
func (m *Monitor) findRule(cookie uint64, match flowtable.Match, priority int) *flowtable.Rule {
	if r, ok := m.expected.Get(cookie); ok {
		return r
	}
	for _, r := range m.expected.Rules() {
		if r.Priority == priority && r.Match.Equal(match) {
			return r
		}
	}
	return nil
}

// handleControllerBarrier forwards the barrier and gates the reply on all
// currently unconfirmed (and queued) updates.
func (m *Monitor) handleControllerBarrier(xid uint32) {
	pb := &pendingBarrier{xid: xid, waitingRules: make(map[uint64]bool)}
	for id := range m.pending {
		pb.waitingRules[id] = true
	}
	for _, q := range m.queued {
		pb.waitingRules[q.fm.Cookie] = true
	}
	m.barriers = append(m.barriers, pb)
	m.forwardToSwitch(openflow.BarrierRequest{}, xid)
}

// handleSwitchBarrierReply resolves the matching gated barrier; it returns
// false when the barrier was not one Monocle is gating.
func (m *Monitor) handleSwitchBarrierReply(xid uint32) bool {
	for _, pb := range m.barriers {
		if pb.xid == xid && !pb.switchAcked {
			pb.switchAcked = true
			m.releaseBarriers()
			return true
		}
	}
	return false
}

// releaseBarriers answers every gated barrier whose conditions hold, in
// order; barriers are FIFO so release stops at the first blocked one.
func (m *Monitor) releaseBarriers() {
	for len(m.barriers) > 0 {
		pb := m.barriers[0]
		if !pb.switchAcked || len(pb.waitingRules) > 0 {
			return
		}
		m.barriers = m.barriers[1:]
		m.forwardToController(openflow.BarrierReply{}, pb.xid)
	}
}

// confirmRule finalizes a confirmed update: callbacks, barrier release,
// drop-postpone follow-up, queued-update drain.
func (m *Monitor) confirmRule(pu *pendingUpdate) {
	if pu.deadline != nil {
		pu.deadline.Cancel()
	}
	delete(m.pending, pu.ruleID)
	m.Stats.Confirmations++

	if pu.postponed != nil {
		m.finishDropPostpone(pu.postponed)
	}
	for _, f := range pu.onConfirm {
		f()
	}
	if m.Cfg.OnRuleConfirmed != nil {
		m.Cfg.OnRuleConfirmed(pu.ruleID, m.Sim.Now())
	}
	for _, pb := range m.barriers {
		delete(pb.waitingRules, pu.ruleID)
	}
	m.releaseBarriers()
	m.drainQueue()
}

// confirmWithoutProbe resolves updates we cannot probe: they are treated
// as confirmed for barrier purposes (the switch barrier still orders them)
// but no data plane verification happened.
func (m *Monitor) confirmWithoutProbe(ruleID uint64) {
	if m.Cfg.OnRuleConfirmed != nil {
		m.Cfg.OnRuleConfirmed(ruleID, m.Sim.Now())
	}
	for _, pb := range m.barriers {
		delete(pb.waitingRules, ruleID)
	}
	m.releaseBarriers()
	m.drainQueue()
}

// finishDropPostpone swaps the confirmed marked rule for the real drop.
func (m *Monitor) finishDropPostpone(pd *postponedDrop) {
	wm, err := openflow.FromMatch(pd.match)
	if err != nil {
		return
	}
	fm := &openflow.FlowMod{
		Match:    wm,
		Cookie:   pd.cookie,
		Command:  openflow.FCModify,
		Priority: pd.priority,
		BufferID: openflow.BufferNone,
		OutPort:  openflow.PortNone,
	}
	if r, ok := m.expected.Get(pd.cookie); ok {
		_ = m.expected.Modify(r.ID, nil)
		m.tableChanged(pd.match)
	}
	m.forwardToSwitch(fm, m.virtXID())
}

// drainQueue re-processes queued updates that no longer overlap pending
// ones, preserving arrival order.
func (m *Monitor) drainQueue() {
	for len(m.queued) > 0 {
		q := m.queued[0]
		if m.overlapsPending(q.fm) {
			return // head-of-line stays ordered with respect to overlaps
		}
		m.queued = m.queued[1:]
		m.processFlowMod(q.fm, q.xid)
	}
}

// virtXID allocates transaction ids for Monocle-originated messages.
func (m *Monitor) virtXID() uint32 {
	m.nextVirtXID++
	return 0x4d000000 | m.nextVirtXID&0xffffff
}
