package monocle

// One-shot probe observation: ObserveProbe injects a probe into the
// monitored switch's data plane and reports the verdict of the response,
// independent of the dynamic-update and steady-state machinery. It is the
// primitive the library's switch backends (the TCP proxy driver) use to
// judge externally generated probes — a facade Verifier's sweep or
// confirmation probe — against live hardware.

import (
	"time"

	"monocle/internal/header"
	"monocle/internal/packet"
	"monocle/internal/probe"
	"monocle/internal/sim"
)

// defaultObserveTimeout bounds one ObserveProbe round when the caller
// passes no timeout.
const defaultObserveTimeout = 2 * time.Second

// probeObserver tracks one ObserveProbe request across injections.
type probeObserver struct {
	probe    *probe.Probe
	expect   packet.Expectation
	done     func(Verdict)
	finished bool
	caught   bool
	last     Verdict
	retry    *sim.Timer
	deadline *sim.Timer
	// seqs are the observer's injected sequence numbers, so release is
	// O(injections) instead of a scan of the whole inflight map — the
	// scan was quadratic across a large ObserveProbeBatch.
	seqs []uint64
}

// ObserveProbe injects probe p and reports, through done, the verdict of
// the data plane's response: the probe is re-injected every retry interval
// until a catch settles the expectation (Present evidence for additions
// and modifications, Absent evidence for deletions) or the timeout
// elapses. On timeout the last observed verdict is reported; with no catch
// at all the silence itself is judged — a probe whose expected outcome is
// uncatchable (a drop, or every emission exiting toward hosts) confirms by
// silence, anything else is VerdictUnexpected. Like every Monitor method,
// it must run on the event-loop thread; done fires on that thread too.
func (m *Monitor) ObserveProbe(p *probe.Probe, expect packet.Expectation, retry, timeout time.Duration, done func(Verdict)) {
	if retry <= 0 {
		retry = m.retryInterval()
	}
	if timeout <= 0 {
		timeout = defaultObserveTimeout
	}
	ob := &probeObserver{probe: p, expect: expect, done: done}
	ob.deadline = m.Sim.After(timeout, func() {
		m.finishObserver(ob, m.timeoutVerdict(ob))
	})
	var tick func()
	tick = func() {
		if ob.finished {
			return
		}
		m.injectForObserver(ob)
		if !ob.finished {
			ob.retry = m.Sim.After(retry, tick)
		}
	}
	tick()
}

// injectForObserver sends one probe copy and tags its inflight entry with
// the observer so the catch routes back here.
func (m *Monitor) injectForObserver(ob *probeObserver) {
	seq := m.injectProbe(ob.probe, false, ob.expect)
	if seq == 0 {
		// The probe packet cannot be crafted onto the wire (non-IPv4
		// header): a live driver cannot verify this rule.
		m.finishObserver(ob, VerdictUnexpected)
		return
	}
	m.inflight[seq].observer = ob
	ob.seqs = append(ob.seqs, seq)
}

// observerCatch judges a caught probe owned by an observer. Evidence that
// settles the expectation finishes the observation; anything else keeps
// the retries going (the update may not have committed yet).
func (m *Monitor) observerCatch(ob *probeObserver, catcher uint32, obs header.Header) {
	if ob.finished {
		return
	}
	v := m.judge(ob.probe, catcher, obs)
	ob.caught = true
	ob.last = v
	if judgeForKind(ob.expect, v) == VerdictConfirmed {
		m.finishObserver(ob, v)
	}
}

// timeoutVerdict resolves an observation window that ended without a
// settling catch.
func (m *Monitor) timeoutVerdict(ob *probeObserver) Verdict {
	if ob.caught {
		return ob.last
	}
	presentSilent := m.outcomeSilent(ob.probe.Present)
	absentSilent := m.outcomeSilent(ob.probe.Absent)
	switch {
	case presentSilent && !absentSilent:
		return VerdictConfirmed
	case absentSilent && !presentSilent:
		return VerdictAbsent
	default:
		return VerdictUnexpected
	}
}

// defaultBatchWindow bounds the observations one ObserveProbeBatch keeps
// in flight when the caller passes no window.
const defaultBatchWindow = 64

// BatchPacing configures ObserveProbeBatch's injection scheduling.
type BatchPacing struct {
	// Window caps the observations in flight at once (<= 0: 64).
	Window int
	// Rate paces observation starts, in probes per second, through a
	// token bucket on the Monitor's clock (<= 0: unpaced). Pacing bounds
	// the PacketOut burst a batch puts on the control channel, so probes
	// do not crowd out FlowMods (§8.4's interference concern).
	Rate float64
}

// batchRun drives one ObserveProbeBatch: an in-flight window of
// concurrent ObserveProbe observations, refilled as each completes, with
// token-bucket pacing of the starts. All state is event-loop-owned.
type batchRun struct {
	m              *Monitor
	probes         []*probe.Probe
	expects        []packet.Expectation
	retry, timeout time.Duration
	done           func(int, Verdict)

	next     int // next probe index to start
	active   int // observations in flight
	window   int
	interval time.Duration // token refill gap (0: unpaced)
	nextTok  sim.Time      // earliest time the next token is available
	pacer    *sim.Timer    // reused pacing timer (re-armed, never stacked)
	filling  bool          // re-entrance guard for fill
	again    bool
}

// ObserveProbeBatch judges probes[i] against expects[i] exactly like N
// ObserveProbe calls, but pipelined: up to pacing.Window observations run
// concurrently — an in-flight window instead of inject→wait→inject — and
// observation starts are paced by pacing.Rate's token bucket, so one
// batch call replaces N round trips without flooding the control
// channel. done(i, v) fires once per probe on the event-loop thread, in
// completion order. retry and timeout clamp exactly as in ObserveProbe
// (non-positive values fall back to the defaults). len(expects) must
// equal len(probes). Like every Monitor method, it must run on the
// event-loop thread.
func (m *Monitor) ObserveProbeBatch(probes []*probe.Probe, expects []packet.Expectation, retry, timeout time.Duration, pacing BatchPacing, done func(int, Verdict)) {
	if len(probes) == 0 {
		return
	}
	br := &batchRun{
		m: m, probes: probes, expects: expects,
		retry: retry, timeout: timeout, done: done,
		window: pacing.Window,
	}
	if br.window <= 0 {
		br.window = defaultBatchWindow
	}
	if pacing.Rate > 0 {
		br.interval = time.Duration(float64(time.Second) / pacing.Rate)
	}
	br.fill()
}

// fill tops the in-flight window back up. The guard flattens the
// recursion of synchronously-finishing observations (a probe that cannot
// be crafted resolves inside ObserveProbe) into a loop.
func (br *batchRun) fill() {
	if br.filling {
		br.again = true
		return
	}
	br.filling = true
	for {
		br.again = false
		br.launch()
		if !br.again {
			break
		}
	}
	br.filling = false
}

// launch starts observations until the window is full, the batch is
// exhausted, or the token bucket runs dry (in which case the reused
// pacing timer re-arms for the next token).
func (br *batchRun) launch() {
	for br.next < len(br.probes) && br.active < br.window {
		if br.interval > 0 {
			now := br.m.Sim.Now()
			if now < br.nextTok {
				if br.pacer == nil || !br.pacer.Pending() {
					br.pacer = br.m.Sim.After(time.Duration(br.nextTok-now), br.fill)
				}
				return
			}
			if br.nextTok < now {
				br.nextTok = now // idle bucket: no credit for elapsed time
			}
			br.nextTok += sim.Time(br.interval)
		}
		i := br.next
		br.next++
		br.active++
		br.m.ObserveProbe(br.probes[i], br.expects[i], br.retry, br.timeout, func(v Verdict) {
			br.active--
			if br.done != nil {
				br.done(i, v)
			}
			br.fill()
		})
	}
}

// finishObserver reports the verdict once and releases the observer's
// timers and inflight entries.
func (m *Monitor) finishObserver(ob *probeObserver, v Verdict) {
	if ob.finished {
		return
	}
	ob.finished = true
	if ob.retry != nil {
		ob.retry.Cancel()
	}
	if ob.deadline != nil {
		ob.deadline.Cancel()
	}
	for _, seq := range ob.seqs {
		if fl, ok := m.inflight[seq]; ok && fl.observer == ob {
			delete(m.inflight, seq)
		}
	}
	if ob.done != nil {
		ob.done(v)
	}
}
