package monocle

// One-shot probe observation: ObserveProbe injects a probe into the
// monitored switch's data plane and reports the verdict of the response,
// independent of the dynamic-update and steady-state machinery. It is the
// primitive the library's switch backends (the TCP proxy driver) use to
// judge externally generated probes — a facade Verifier's sweep or
// confirmation probe — against live hardware.

import (
	"time"

	"monocle/internal/header"
	"monocle/internal/packet"
	"monocle/internal/probe"
	"monocle/internal/sim"
)

// defaultObserveTimeout bounds one ObserveProbe round when the caller
// passes no timeout.
const defaultObserveTimeout = 2 * time.Second

// probeObserver tracks one ObserveProbe request across injections.
type probeObserver struct {
	probe    *probe.Probe
	expect   packet.Expectation
	done     func(Verdict)
	finished bool
	caught   bool
	last     Verdict
	retry    *sim.Timer
	deadline *sim.Timer
}

// ObserveProbe injects probe p and reports, through done, the verdict of
// the data plane's response: the probe is re-injected every retry interval
// until a catch settles the expectation (Present evidence for additions
// and modifications, Absent evidence for deletions) or the timeout
// elapses. On timeout the last observed verdict is reported; with no catch
// at all the silence itself is judged — a probe whose expected outcome is
// uncatchable (a drop, or every emission exiting toward hosts) confirms by
// silence, anything else is VerdictUnexpected. Like every Monitor method,
// it must run on the event-loop thread; done fires on that thread too.
func (m *Monitor) ObserveProbe(p *probe.Probe, expect packet.Expectation, retry, timeout time.Duration, done func(Verdict)) {
	if retry <= 0 {
		retry = m.retryInterval()
	}
	if timeout <= 0 {
		timeout = defaultObserveTimeout
	}
	ob := &probeObserver{probe: p, expect: expect, done: done}
	ob.deadline = m.Sim.After(timeout, func() {
		m.finishObserver(ob, m.timeoutVerdict(ob))
	})
	var tick func()
	tick = func() {
		if ob.finished {
			return
		}
		m.injectForObserver(ob)
		if !ob.finished {
			ob.retry = m.Sim.After(retry, tick)
		}
	}
	tick()
}

// injectForObserver sends one probe copy and tags its inflight entry with
// the observer so the catch routes back here.
func (m *Monitor) injectForObserver(ob *probeObserver) {
	seq := m.injectProbe(ob.probe, false, ob.expect)
	if seq == 0 {
		// The probe packet cannot be crafted onto the wire (non-IPv4
		// header): a live driver cannot verify this rule.
		m.finishObserver(ob, VerdictUnexpected)
		return
	}
	m.inflight[seq].observer = ob
}

// observerCatch judges a caught probe owned by an observer. Evidence that
// settles the expectation finishes the observation; anything else keeps
// the retries going (the update may not have committed yet).
func (m *Monitor) observerCatch(ob *probeObserver, catcher uint32, obs header.Header) {
	if ob.finished {
		return
	}
	v := m.judge(ob.probe, catcher, obs)
	ob.caught = true
	ob.last = v
	if judgeForKind(ob.expect, v) == VerdictConfirmed {
		m.finishObserver(ob, v)
	}
}

// timeoutVerdict resolves an observation window that ended without a
// settling catch.
func (m *Monitor) timeoutVerdict(ob *probeObserver) Verdict {
	if ob.caught {
		return ob.last
	}
	presentSilent := m.outcomeSilent(ob.probe.Present)
	absentSilent := m.outcomeSilent(ob.probe.Absent)
	switch {
	case presentSilent && !absentSilent:
		return VerdictConfirmed
	case absentSilent && !presentSilent:
		return VerdictAbsent
	default:
		return VerdictUnexpected
	}
}

// finishObserver reports the verdict once and releases the observer's
// timers and inflight entries.
func (m *Monitor) finishObserver(ob *probeObserver, v Verdict) {
	if ob.finished {
		return
	}
	ob.finished = true
	if ob.retry != nil {
		ob.retry.Cancel()
	}
	if ob.deadline != nil {
		ob.deadline.Cancel()
	}
	for seq, fl := range m.inflight {
		if fl.observer == ob {
			delete(m.inflight, seq)
		}
	}
	if ob.done != nil {
		ob.done(v)
	}
}
