package monocle

// Tests for one-shot and batched probe observation: the timeout clamp
// regression (a non-positive timeout must mean the default, never an
// instant or infinite deadline), batch/one-shot verdict equivalence
// across window sizes, and token-bucket pacing of batch injections.

import (
	"context"
	"testing"
	"time"

	"monocle/internal/packet"
	"monocle/internal/probe"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// sweepProbes generates probes for the monitored switch's rules with
// RuleID >= minID (filtering out the preinstalled catch rules), in
// table order.
func sweepProbes(t *testing.T, tb *lineTestbed, minID uint64) []*probe.Probe {
	t.Helper()
	var out []*probe.Probe
	for _, res := range tb.mon[2].SweepExpected(context.Background(), 1) {
		if res.Err != nil || res.Probe == nil || res.Probe.RuleID < minID {
			continue
		}
		out = append(out, res.Probe)
	}
	return out
}

// TestObserveProbeClampsNonPositiveTimeout: ObserveProbe with timeout
// <= 0 must clamp to defaultObserveTimeout — resolving neither
// immediately (timeout taken literally) nor never (deadline never
// armed) — and ObserveProbeBatch must clamp identically.
func TestObserveProbeClampsNonPositiveTimeout(t *testing.T) {
	tb := newLineTestbed(t, switchsim.Ideal(), nil)
	tb.mon[2].OnControllerMessage(addFM(t, 500, 10, ip4(10, 9, 0, 1), 2), 1)
	tb.sim.RunUntil(time.Second)
	probes := sweepProbes(t, tb, 500)
	if len(probes) != 1 {
		t.Fatalf("want 1 probe, got %d", len(probes))
	}
	// Fail the rule in the data plane: with no settling catch the
	// observation can only resolve at the deadline, which exposes the
	// effective timeout value.
	tb.sw[2].FailRule(500)

	start := tb.sim.Now()
	var doneAt sim.Time = -1
	var got Verdict
	tb.mon[2].ObserveProbe(probes[0], packet.ExpectPresent, 0, 0, func(v Verdict) {
		got, doneAt = v, tb.sim.Now()
	})
	tb.sim.RunUntil(start + sim.Time(defaultObserveTimeout)/2)
	if doneAt >= 0 {
		t.Fatalf("observation resolved at +%v: timeout<=0 must clamp to the default, not fire early", doneAt-start)
	}
	tb.sim.RunUntil(start + 2*sim.Time(defaultObserveTimeout))
	if doneAt < 0 {
		t.Fatal("observation never resolved: timeout<=0 must clamp to the default, not wait forever")
	}
	if elapsed := doneAt - start; elapsed != sim.Time(defaultObserveTimeout) {
		t.Fatalf("resolved after %v, want the clamped default %v", elapsed, defaultObserveTimeout)
	}
	if got != VerdictAbsent {
		t.Fatalf("verdict %v, want %v for a failed rule", got, VerdictAbsent)
	}

	// The batch path must apply the identical clamp.
	start = tb.sim.Now()
	batchAt := sim.Time(-1)
	var batchV Verdict
	tb.mon[2].ObserveProbeBatch(probes, []packet.Expectation{packet.ExpectPresent}, 0, 0, BatchPacing{}, func(_ int, v Verdict) {
		batchV, batchAt = v, tb.sim.Now()
	})
	tb.sim.RunUntil(start + 2*sim.Time(defaultObserveTimeout))
	if batchAt < 0 {
		t.Fatal("batch observation never resolved with timeout<=0")
	}
	if elapsed := batchAt - start; elapsed != sim.Time(defaultObserveTimeout) {
		t.Fatalf("batch resolved after %v, want the clamped default %v", elapsed, defaultObserveTimeout)
	}
	if batchV != got {
		t.Fatalf("batch verdict %v != one-shot verdict %v", batchV, got)
	}
}

// TestObserveProbeBatchMatchesOneShot: the pipelined batch reports the
// same per-probe verdicts as sequential one-shot observations, for any
// in-flight window.
func TestObserveProbeBatchMatchesOneShot(t *testing.T) {
	const timeout = 200 * time.Millisecond
	tb := newLineTestbed(t, switchsim.Ideal(), nil)
	for i := 0; i < 12; i++ {
		tb.mon[2].OnControllerMessage(addFM(t, uint64(500+i), 10, ip4(10, 9, 1, uint64(i)), 2), uint32(i))
	}
	tb.sim.RunUntil(time.Second)
	probes := sweepProbes(t, tb, 500)
	if len(probes) != 12 {
		t.Fatalf("want 12 probes, got %d", len(probes))
	}
	for _, id := range []uint64{502, 507, 511} {
		tb.sw[2].FailRule(id)
	}
	expects := make([]packet.Expectation, len(probes))
	for i := range expects {
		expects[i] = packet.ExpectPresent
	}

	// One-shot reference: strictly sequential inject→wait→inject.
	oneShot := make([]Verdict, len(probes))
	for i, p := range probes {
		resolved := false
		tb.mon[2].ObserveProbe(p, expects[i], 0, timeout, func(v Verdict) {
			oneShot[i], resolved = v, true
		})
		tb.sim.RunUntil(tb.sim.Now() + 2*sim.Time(timeout))
		if !resolved {
			t.Fatalf("one-shot observation %d never resolved", i)
		}
	}

	for _, window := range []int{1, 4, 64} {
		batch := make([]Verdict, len(probes))
		seen := make([]bool, len(probes))
		n := 0
		tb.mon[2].ObserveProbeBatch(probes, expects, 0, timeout, BatchPacing{Window: window}, func(i int, v Verdict) {
			if seen[i] {
				t.Fatalf("window %d: verdict for probe %d delivered twice", window, i)
			}
			batch[i], seen[i] = v, true
			n++
		})
		tb.sim.RunUntil(tb.sim.Now() + sim.Time(len(probes))*2*sim.Time(timeout))
		if n != len(probes) {
			t.Fatalf("window %d: %d/%d verdicts delivered", window, n, len(probes))
		}
		for i := range probes {
			if batch[i] != oneShot[i] {
				t.Fatalf("window %d: probe %d verdict %v != one-shot %v", window, i, batch[i], oneShot[i])
			}
		}
	}
}

// TestObserveProbeBatchPacing: a positive Rate spreads injection starts
// through the token bucket — the batch cannot finish before the last
// token is issued.
func TestObserveProbeBatchPacing(t *testing.T) {
	tb := newLineTestbed(t, switchsim.Ideal(), nil)
	for i := 0; i < 10; i++ {
		tb.mon[2].OnControllerMessage(addFM(t, uint64(500+i), 10, ip4(10, 9, 2, uint64(i)), 2), uint32(i))
	}
	tb.sim.RunUntil(time.Second)
	probes := sweepProbes(t, tb, 500)
	if len(probes) != 10 {
		t.Fatalf("want 10 probes, got %d", len(probes))
	}
	expects := make([]packet.Expectation, len(probes))
	for i := range expects {
		expects[i] = packet.ExpectPresent
	}

	start := tb.sim.Now()
	var lastAt sim.Time
	n := 0
	// 100 probes/s: tokens at 0ms, 10ms, ..., 90ms.
	tb.mon[2].ObserveProbeBatch(probes, expects, 0, time.Second, BatchPacing{Rate: 100}, func(_ int, v Verdict) {
		if v != VerdictConfirmed {
			t.Fatalf("healthy rule judged %v", v)
		}
		lastAt = tb.sim.Now()
		n++
	})
	tb.sim.RunUntil(start + 5*sim.Time(time.Second))
	if n != len(probes) {
		t.Fatalf("%d/%d verdicts delivered", n, len(probes))
	}
	if elapsed := lastAt - start; elapsed < 90*time.Millisecond {
		t.Fatalf("batch finished after %v: pacing at 100/s cannot issue the 10th token before 90ms", elapsed)
	}
	if elapsed := lastAt - start; elapsed > 500*time.Millisecond {
		t.Fatalf("paced batch took %v: pacing should gap starts by 10ms, not serialize timeouts", elapsed)
	}
}
