package monocle

// End-to-end proxy test over real TCP sockets: a scripted OpenFlow 1.0
// switch accepts the Monitor's connection, acknowledges barriers, and
// reflects injected probes back as PacketIns (an instant self-catching
// data plane). This exercises the same wiring cmd/monocle uses: wire
// framing, FlowMod interception, dynamic confirmation, and barrier gating
// across a network boundary.

import (
	"net"
	"testing"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/sim"
)

// scriptedSwitch is a minimal TCP OpenFlow switch: FlowMods are accepted,
// barriers are acknowledged immediately after an installDelay, and any
// PacketOut's frame is reflected back as a PacketIn after the rule
// "commits" (simulating the probe being caught downstream).
func scriptedSwitch(t *testing.T, ln net.Listener, installDelay time.Duration) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		t.Errorf("switch accept: %v", err)
		return
	}
	defer conn.Close()
	committed := time.Now().Add(installDelay)
	for {
		msg, xid, err := openflow.ReadMessage(conn)
		if err != nil {
			return // proxy closed
		}
		switch m := msg.(type) {
		case *openflow.FlowMod:
			committed = time.Now().Add(installDelay)
		case *openflow.BarrierRequest:
			if err := openflow.WriteMessage(conn, openflow.BarrierReply{}, xid); err != nil {
				return
			}
		case *openflow.PacketOut:
			// Reflect the probe once the install delay elapsed.
			if time.Now().After(committed) {
				pi := openflow.PacketIn{
					BufferID: openflow.BufferNone,
					InPort:   1,
					Reason:   openflow.ReasonAction,
					Data:     m.Data,
				}
				if err := openflow.WriteMessage(conn, pi, 0); err != nil {
					return
				}
			}
		}
	}
}

func TestMonitorOverRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go scriptedSwitch(t, ln, 20*time.Millisecond)

	swConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer swConn.Close()

	s := sim.New()
	cfg := DefaultConfig(1)
	cfg.Ports = []flowtable.PortID{1, 2}
	// Port 2's "downstream catcher" is ourselves: the scripted switch
	// reflects probes straight back.
	cfg.PortPeer = map[flowtable.PortID]uint32{1: 1, 2: 1}
	confirmed := make(chan uint64, 4)
	cfg.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { confirmed <- ruleID }
	mon := New(s, cfg)

	barrierReplies := make(chan uint32, 4)
	mon.ToController = func(msg openflow.Message, xid uint32) {
		switch msg.(type) {
		case openflow.BarrierReply, *openflow.BarrierReply:
			barrierReplies <- xid
		}
	}
	mon.ToSwitch = func(msg openflow.Message, xid uint32) {
		if err := openflow.WriteMessage(swConn, msg, xid); err != nil {
			t.Errorf("write: %v", err)
		}
	}

	// Event loop: switch messages and timer ticks drive the monitor.
	fromSwitch := make(chan func(), 64)
	go func() {
		for {
			msg, xid, err := openflow.ReadMessage(swConn)
			if err != nil {
				close(fromSwitch)
				return
			}
			fromSwitch <- func() { mon.OnSwitchMessage(msg, xid) }
		}
	}()

	// Controller: one FlowMod plus one barrier.
	m := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		WithExact(header.IPSrc, 0x0a00002a)
	wm, err := openflow.FromMatch(m)
	if err != nil {
		t.Fatal(err)
	}
	mon.OnControllerMessage(&openflow.FlowMod{
		Match: wm, Cookie: 42, Command: openflow.FCAdd, Priority: 10,
		BufferID: openflow.BufferNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{openflow.OutputAction(2)},
	}, 100)
	mon.OnControllerMessage(openflow.BarrierRequest{}, 101)

	// Drive the virtual clock in wall time until the rule confirms.
	start := time.Now()
	deadline := time.After(5 * time.Second)
	var gotConfirm, gotBarrier bool
	for !gotConfirm || !gotBarrier {
		s.RunUntil(sim.Time(time.Since(start)))
		select {
		case fn, ok := <-fromSwitch:
			if ok {
				fn()
			}
		case id := <-confirmed:
			if id == 42 {
				gotConfirm = true
			}
		case xid := <-barrierReplies:
			if xid == 101 {
				gotBarrier = true
			}
		case <-time.After(2 * time.Millisecond):
		case <-deadline:
			t.Fatalf("timeout: confirm=%v barrier=%v stats=%+v",
				gotConfirm, gotBarrier, mon.Stats)
		}
	}
	if !gotBarrier || !gotConfirm {
		t.Fatal("unreachable")
	}
	if mon.Stats.ProbesSent == 0 || mon.Stats.ProbesCaught == 0 {
		t.Fatalf("probes did not flow over TCP: %+v", mon.Stats)
	}
}
