package monocle

import (
	"testing"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// lineTestbed is a 3-switch line S1 -p1--p1- S2 -p2--p1- S3 with the middle
// switch monitored; S1 and S3 run pass-through Monitors whose only job is
// catching probes.
type lineTestbed struct {
	sim    *sim.Sim
	sw     [4]*switchsim.Switch // 1-indexed
	mon    [4]*Monitor
	mux    *Multiplexer
	toCtrl []openflow.Message // messages the monitored proxy sent upstream
	xids   []uint32
}

func newLineTestbed(t *testing.T, profile switchsim.Profile, cfgEdit func(*Config)) *lineTestbed {
	t.Helper()
	tb := &lineTestbed{sim: sim.New(), mux: NewMultiplexer()}
	for i := 1; i <= 3; i++ {
		tb.sw[i] = switchsim.New(uint32(i), tb.sim, profile, int64(i))
	}
	switchsim.Connect(tb.sw[1], 1, tb.sw[2], 1, 100*time.Microsecond)
	switchsim.Connect(tb.sw[2], 2, tb.sw[3], 1, 100*time.Microsecond)

	ports := map[int][]flowtable.PortID{1: {1}, 2: {1, 2}, 3: {1}}
	peers := map[int]map[flowtable.PortID]uint32{
		1: {1: 2},
		2: {1: 1, 2: 3},
		3: {1: 2},
	}
	reserved := []uint32{1, 2, 3}
	for i := 1; i <= 3; i++ {
		cfg := DefaultConfig(uint32(i))
		cfg.Ports = ports[i]
		cfg.PortPeer = peers[i]
		if i == 2 && cfgEdit != nil {
			cfgEdit(&cfg)
		}
		mon := New(tb.sim, cfg)
		tb.mon[i] = mon
		tb.mux.Register(mon)
		sw := tb.sw[i]
		mon.ToSwitch = func(msg openflow.Message, xid uint32) { sw.FromController(msg, xid) }
		sw.ToController = func(msg openflow.Message, xid uint32) { mon.OnSwitchMessage(msg, xid) }
		if i == 2 {
			mon.ToController = func(msg openflow.Message, xid uint32) {
				tb.toCtrl = append(tb.toCtrl, msg)
				tb.xids = append(tb.xids, xid)
			}
		} else {
			mon.ToController = func(openflow.Message, uint32) {}
		}
		// Catching rules: preinstalled in both the data plane and the
		// monitor's expected view.
		for _, cr := range mon.CatchRules(reserved) {
			if err := mon.Preinstall(cr); err != nil {
				t.Fatalf("preinstall: %v", err)
			}
			if err := sw.DataTable().Insert(cr.Clone()); err != nil {
				t.Fatalf("catch insert: %v", err)
			}
		}
	}
	return tb
}

// addFM builds a FlowMod add for a /32 source flow forwarded on port out.
func addFM(t *testing.T, cookie uint64, prio uint16, srcIP uint64, out uint16) *openflow.FlowMod {
	t.Helper()
	m := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		WithExact(header.IPSrc, srcIP)
	wm, err := openflow.FromMatch(m)
	if err != nil {
		t.Fatal(err)
	}
	var acts []openflow.Action
	if out != 0 {
		acts = []openflow.Action{openflow.OutputAction(out)}
	}
	return &openflow.FlowMod{
		Match: wm, Cookie: cookie, Command: openflow.FCAdd, Priority: prio,
		BufferID: openflow.BufferNone, OutPort: openflow.PortNone, Actions: acts,
	}
}

func ip4(a, b, c, d uint64) uint64 { return a<<24 | b<<16 | c<<8 | d }

func TestDynamicAddConfirmation(t *testing.T) {
	var confirmedAt sim.Time = -1
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
			if ruleID == 100 {
				confirmedAt = at
			}
		}
	})
	tb.mon[2].OnControllerMessage(addFM(t, 100, 10, ip4(10, 0, 0, 1), 2), 1)
	tb.sim.RunUntil(2 * time.Second)
	if confirmedAt < 0 {
		t.Fatalf("rule never confirmed; stats=%+v sw=%+v", tb.mon[2].Stats, tb.sw[2].Stats)
	}
	// Confirmation cannot precede the data plane commit.
	if confirmedAt < switchsim.Ideal().CommitService {
		t.Fatalf("confirmed at %v, before any commit could land", confirmedAt)
	}
	if _, ok := tb.sw[2].DataTable().Get(100); !ok {
		t.Fatal("rule not in data plane")
	}
	if tb.mon[2].Stats.ProbesSent == 0 || tb.mon[2].Stats.Confirmations != 1 {
		t.Fatalf("stats %+v", tb.mon[2].Stats)
	}
}

// TestBarrierGatedOnDataplane: with a premature-acking switch, the barrier
// reply must still reach the controller only after the rule is truly in
// the data plane (§8.1.2).
func TestBarrierGatedOnDataplane(t *testing.T) {
	tb := newLineTestbed(t, switchsim.HP5406zl(), nil)
	var confirmedAt sim.Time = -1
	tb.mon[2].Cfg.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { confirmedAt = at }

	tb.mon[2].OnControllerMessage(addFM(t, 200, 10, ip4(10, 0, 0, 2), 2), 7)
	tb.mon[2].OnControllerMessage(openflow.BarrierRequest{}, 8)
	tb.sim.RunUntil(5 * time.Second)

	var barrierAt sim.Time = -1
	for i, msg := range tb.toCtrl {
		if _, ok := msg.(openflow.BarrierReply); ok && tb.xids[i] == 8 {
			barrierAt = confirmedAt // reply happens at/after confirmation
		}
	}
	if barrierAt < 0 {
		t.Fatalf("no barrier reply; msgs=%v", tb.toCtrl)
	}
	if confirmedAt < tb.sw[2].Profile.CommitService {
		t.Fatalf("confirmed before commit possible: %v", confirmedAt)
	}
}

// TestBarrierWithoutMonitorWouldLie sanity-checks the premise: the HP
// profile acks barriers before the data plane commit.
func TestBarrierWithoutMonitorWouldLie(t *testing.T) {
	s := sim.New()
	sw := switchsim.New(1, s, switchsim.HP5406zl(), 1)
	var barrierAt sim.Time = -1
	committed := false
	var commitAt sim.Time
	sw.ToController = func(msg openflow.Message, xid uint32) {
		if _, ok := msg.(openflow.BarrierReply); ok {
			barrierAt = s.Now()
		}
	}
	fm := addFM(t, 1, 10, ip4(10, 9, 9, 9), 2)
	sw.FromController(fm, 1)
	sw.FromController(openflow.BarrierRequest{}, 2)
	for s.Step() {
		if _, ok := sw.DataTable().Get(1); ok && !committed {
			committed = true
			commitAt = s.Now()
		}
	}
	if barrierAt < 0 || !committed {
		t.Fatalf("barrier=%v committed=%v", barrierAt, committed)
	}
	if barrierAt >= commitAt {
		t.Fatalf("premature-ack switch should ack (%v) before commit (%v)", barrierAt, commitAt)
	}
}

// TestSteadyStateDetectsFailedRule: fail a rule from the data plane and
// expect an alarm within the cycle period plus the alarm timeout.
func TestSteadyStateDetectsFailedRule(t *testing.T) {
	var alarmID uint64
	var alarmAt sim.Time = -1
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnAlarm = func(ruleID uint64, at sim.Time) {
			if alarmAt < 0 {
				alarmID, alarmAt = ruleID, at
			}
		}
	})
	// Install 20 rules.
	for i := 0; i < 20; i++ {
		tb.mon[2].OnControllerMessage(addFM(t, uint64(300+i), 10, ip4(10, 0, 1, uint64(i)), 2), uint32(i))
	}
	tb.sim.RunUntil(time.Second)
	if got := tb.mon[2].Stats.Confirmations; got != 20 {
		t.Fatalf("confirmations=%d stats=%+v", got, tb.mon[2].Stats)
	}
	tb.mon[2].StartSteadyState()
	tb.sim.RunUntil(1500 * time.Millisecond) // let a clean cycle pass
	if alarmAt >= 0 {
		t.Fatalf("false alarm on rule %d at %v", alarmID, alarmAt)
	}
	failAt := tb.sim.Now()
	tb.sw[2].FailRule(310)
	tb.sim.RunUntil(failAt + 5*time.Second)
	if alarmAt < 0 {
		t.Fatalf("failure not detected; stats=%+v", tb.mon[2].Stats)
	}
	if alarmID != 310 {
		t.Fatalf("alarmed wrong rule %d", alarmID)
	}
	detection := alarmAt - failAt
	// Cycle over ~20 rules at 500/s is 40ms; alarm timeout is 150ms.
	if detection > 400*time.Millisecond {
		t.Fatalf("detection took %v", detection)
	}
	if detection < tb.mon[2].Cfg.AlarmTimeout {
		t.Fatalf("detection %v faster than the alarm timeout — suspicious", detection)
	}
}

// TestSteadyStateHealthyNoAlarms: a healthy switch never alarms.
func TestSteadyStateHealthyNoAlarms(t *testing.T) {
	tb := newLineTestbed(t, switchsim.Ideal(), nil)
	for i := 0; i < 10; i++ {
		tb.mon[2].OnControllerMessage(addFM(t, uint64(400+i), 10, ip4(10, 0, 2, uint64(i)), 2), uint32(i))
	}
	tb.sim.RunUntil(time.Second)
	tb.mon[2].StartSteadyState()
	tb.sim.RunUntil(4 * time.Second)
	if tb.mon[2].Stats.Alarms != 0 {
		t.Fatalf("false alarms: %+v", tb.mon[2].Stats)
	}
	if tb.mon[2].Stats.ProbesSent < 100 {
		t.Fatalf("prober barely ran: %+v", tb.mon[2].Stats)
	}
}

// TestDropRuleConfirmedBySilence: adding a drop rule (without
// drop-postponing) is confirmed negatively.
func TestDropRuleConfirmedBySilence(t *testing.T) {
	confirmed := false
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
			if ruleID == 500 {
				confirmed = true
			}
		}
	})
	// Underlying forwarding rule so the drop rule is distinguishable.
	tb.mon[2].OnControllerMessage(addFM(t, 501, 5, ip4(10, 0, 3, 1), 2), 1)
	tb.sim.RunUntil(time.Second)
	tb.mon[2].OnControllerMessage(addFM(t, 500, 10, ip4(10, 0, 3, 1), 0), 2)
	tb.sim.RunUntil(3 * time.Second)
	if !confirmed {
		t.Fatalf("drop rule unconfirmed; stats=%+v", tb.mon[2].Stats)
	}
}

// TestDropPostponing: with §4.3 enabled the drop rule is first installed
// as a marked-forward rule, confirmed positively, then swapped to a real
// drop.
func TestDropPostponing(t *testing.T) {
	confirmed := false
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.DropPostpone = true
		c.DropNeighborPort = 2
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
			if ruleID == 600 {
				confirmed = true
			}
		}
	})
	tb.mon[2].OnControllerMessage(addFM(t, 601, 5, ip4(10, 0, 4, 1), 2), 1)
	tb.sim.RunUntil(time.Second)
	tb.mon[2].OnControllerMessage(addFM(t, 600, 10, ip4(10, 0, 4, 1), 0), 2)
	tb.sim.RunUntil(4 * time.Second)
	if !confirmed {
		t.Fatalf("postponed drop unconfirmed; stats=%+v", tb.mon[2].Stats)
	}
	r, ok := tb.sw[2].DataTable().Get(600)
	if !ok {
		t.Fatal("rule missing from data plane")
	}
	if !r.IsDrop() {
		t.Fatalf("rule not swapped to a real drop: %v", r)
	}
}

// TestOverlapQueuing: an update overlapping an unconfirmed one is held
// back until the first confirms (§4.2).
func TestOverlapQueuing(t *testing.T) {
	var order []uint64
	tb := newLineTestbed(t, switchsim.HP5406zl(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { order = append(order, ruleID) }
	})
	// Rule A: 10.0.5.0/24 → port 2 (low prio); rule B overlaps (host in
	// the subnet, higher prio, different port).
	mA := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		With(header.IPSrc, header.Prefix(header.IPSrc, ip4(10, 0, 5, 0), 24))
	wmA, _ := openflow.FromMatch(mA)
	fmA := &openflow.FlowMod{Match: wmA, Cookie: 700, Command: openflow.FCAdd, Priority: 5,
		BufferID: openflow.BufferNone, OutPort: openflow.PortNone,
		Actions: []openflow.Action{openflow.OutputAction(2)}}
	fmB := addFM(t, 701, 10, ip4(10, 0, 5, 7), 1)

	tb.mon[2].OnControllerMessage(fmA, 1)
	tb.mon[2].OnControllerMessage(fmB, 2)
	if tb.mon[2].Stats.QueuedOverlaps != 1 {
		t.Fatalf("expected B to queue: %+v", tb.mon[2].Stats)
	}
	tb.sim.RunUntil(10 * time.Second)
	if len(order) != 2 || order[0] != 700 || order[1] != 701 {
		t.Fatalf("confirmation order %v; stats=%+v", order, tb.mon[2].Stats)
	}
}

// TestDeleteConfirmation: deleting a rule is confirmed when probes start
// hitting the underlying rule.
func TestDeleteConfirmation(t *testing.T) {
	var confirms []uint64
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { confirms = append(confirms, ruleID) }
	})
	// Base rule on port 2 and override on port 1.
	tb.mon[2].OnControllerMessage(addFM(t, 800, 5, ip4(10, 0, 6, 1), 2), 1)
	tb.sim.RunUntil(500 * time.Millisecond)
	fmHigh := addFM(t, 801, 10, ip4(10, 0, 6, 1), 1)
	tb.mon[2].OnControllerMessage(fmHigh, 2)
	tb.sim.RunUntil(time.Second)

	del := *fmHigh
	del.Command = openflow.FCDeleteStrict
	del.Actions = nil
	tb.mon[2].OnControllerMessage(&del, 3)
	tb.sim.RunUntil(3 * time.Second)

	want := []uint64{800, 801, 801}
	if len(confirms) != 3 {
		t.Fatalf("confirms %v; stats=%+v", confirms, tb.mon[2].Stats)
	}
	for i := range want {
		if confirms[i] != want[i] {
			t.Fatalf("confirms %v", confirms)
		}
	}
	if _, ok := tb.sw[2].DataTable().Get(801); ok {
		t.Fatal("rule still in data plane")
	}
	if _, ok := tb.mon[2].Expected().Get(801); ok {
		t.Fatal("rule still in expected table")
	}
}

// TestModifyConfirmation: modifying a rule's output port is confirmed via
// the altered-table probe (§4.1).
func TestModifyConfirmation(t *testing.T) {
	var confirms []uint64
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { confirms = append(confirms, ruleID) }
	})
	fm := addFM(t, 900, 10, ip4(10, 0, 7, 1), 2)
	tb.mon[2].OnControllerMessage(fm, 1)
	tb.sim.RunUntil(time.Second)

	mod := *fm
	mod.Command = openflow.FCModifyStrict
	mod.Actions = []openflow.Action{openflow.OutputAction(1)}
	tb.mon[2].OnControllerMessage(&mod, 2)
	tb.sim.RunUntil(3 * time.Second)

	if len(confirms) != 2 || confirms[1] != 900 {
		t.Fatalf("confirms %v; stats=%+v", confirms, tb.mon[2].Stats)
	}
	r, _ := tb.sw[2].DataTable().Get(900)
	if r == nil || len(r.ForwardingSet()) != 1 || r.ForwardingSet()[0] != 1 {
		t.Fatalf("dataplane rule after modify: %v", r)
	}
}

// TestProductionPacketInPassthrough: non-probe PacketIns go to the
// controller untouched.
func TestProductionPacketInPassthrough(t *testing.T) {
	tb := newLineTestbed(t, switchsim.Ideal(), nil)
	tb.sw[2].DataTable().Miss = flowtable.MissController
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPProto, header.ProtoUDP)
	h.Set(header.IPSrc, ip4(192, 168, 0, 1))
	frame, err := packet.Craft(h, []byte("user payload"))
	if err != nil {
		t.Fatal(err)
	}
	tb.sw[2].InjectFrame(1, frame)
	tb.sim.RunUntil(100 * time.Millisecond)
	found := false
	for _, msg := range tb.toCtrl {
		if _, ok := msg.(*openflow.PacketIn); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("production PacketIn not forwarded; got %v", tb.toCtrl)
	}
}

// TestCatchRuleGeneration: the right set of catch rules per switch.
func TestCatchRuleGeneration(t *testing.T) {
	cfg := DefaultConfig(2)
	m := New(sim.New(), cfg)
	rules := m.CatchRules([]uint32{1, 2, 3, 9})
	if len(rules) != 3 {
		t.Fatalf("want 3 catch rules, got %d", len(rules))
	}
	for _, r := range rules {
		if r.Match[header.VlanID].Covers(2) {
			t.Fatal("catch rule must not catch own probes")
		}
		if r.ForwardingSet()[0] != flowtable.PortController {
			t.Fatal("catch must punt to controller")
		}
	}
	cfg2 := DefaultConfig(2)
	cfg2.DropPostpone = true
	m2 := New(sim.New(), cfg2)
	rules2 := m2.CatchRules([]uint32{1, 2})
	last := rules2[len(rules2)-1]
	if !last.IsDrop() || last.Priority != dropPriority {
		t.Fatalf("drop-postpone catch set missing special drop: %v", last)
	}
}
