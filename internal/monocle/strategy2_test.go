package monocle

import (
	"errors"
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
	"monocle/internal/sim"
)

func TestCatchRulesStrategy2(t *testing.T) {
	fields := DefaultStrategy2Fields()
	rules := CatchRulesStrategy2(3, fields, []uint32{1, 2, 3, 4})
	if len(rules) != 4 { // 1 catch + 3 filters
		t.Fatalf("got %d rules", len(rules))
	}
	catch := rules[0]
	if !catch.Match[fields.H2].Covers(3) || catch.ForwardingSet()[0] != flowtable.PortController {
		t.Fatalf("catch rule wrong: %v", catch)
	}
	if catch.Priority <= rules[1].Priority {
		t.Fatal("catch must outrank filters")
	}
	for _, f := range rules[1:] {
		if !f.IsDrop() {
			t.Fatalf("filter must drop: %v", f)
		}
		if f.Match[fields.H1].Covers(3) {
			t.Fatal("filter must not drop own probes")
		}
	}
}

func TestStrategy2CollectPinsBothFields(t *testing.T) {
	fields := DefaultStrategy2Fields()
	m := Strategy2Collect(fields, 5, 2)
	var h header.Header
	h.Set(fields.H1, 5)
	h.Set(fields.H2, 2)
	if !m.Covers(h) {
		t.Fatal("must cover the tagged probe")
	}
	h.Set(fields.H2, 3)
	if m.Covers(h) {
		t.Fatal("wrong downstream must not match")
	}
}

func TestGenerateStrategy2(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(5)
	cfg.PortPeer = map[flowtable.PortID]uint32{1: 1, 2: 2}
	cfg.Ports = []flowtable.PortID{1, 2}
	m := New(s, cfg)
	fields := DefaultStrategy2Fields()

	tb := flowtable.New()
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	target := &flowtable.Rule{ID: 2, Priority: 5,
		Match: flowtable.MatchAll().
			WithExact(header.EthType, header.EthTypeIPv4).
			WithExact(header.IPSrc, 0x0a000001),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	for _, r := range []*flowtable.Rule{def, target} {
		if err := tb.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.GenerateStrategy2(tb, target, fields)
	if err != nil {
		t.Fatal(err)
	}
	// The probe must carry H1=5 (probed) and H2=2 (downstream of port 2).
	if p.Header.Get(fields.H1) != 5 || p.Header.Get(fields.H2) != 2 {
		t.Fatalf("probe tags H1=%d H2=%d", p.Header.Get(fields.H1), p.Header.Get(fields.H2))
	}
}

func TestGenerateStrategy2EgressUnmonitorable(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(5)
	cfg.PortPeer = map[flowtable.PortID]uint32{1: 1, 9: HostPeer}
	cfg.Ports = []flowtable.PortID{1, 9}
	m := New(s, cfg)

	tb := flowtable.New()
	egress := &flowtable.Rule{ID: 1, Priority: 5,
		Match:   flowtable.MatchAll().WithExact(header.EthType, header.EthTypeIPv4),
		Actions: []flowtable.Action{flowtable.Output(9)}} // host-facing
	if err := tb.Insert(egress); err != nil {
		t.Fatal(err)
	}
	_, err := m.GenerateStrategy2(tb, egress, DefaultStrategy2Fields())
	if !errors.Is(err, probe.ErrUnmonitorable) {
		t.Fatalf("egress rule must be unmonitorable, got %v", err)
	}
}
