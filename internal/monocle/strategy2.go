package monocle

// Strategy 2 of §6: instead of one reserved header field whose probes all
// return to the controller from every neighbour, two fields H1/H2 are
// reserved. A probe carries H1 = id of the probed switch and H2 = id of
// the intended downstream switch; each switch pre-installs
//
//	catch:     match(H2 = S_i)            → controller  (highest priority)
//	filter_j:  match(H1 = S_j), j ≠ S_i   → drop        (just below)
//
// so the probe reaches the controller only via the desired downstream
// switch and is silently filtered at every other neighbour, trading extra
// reserved values (identifiers must differ between any two switches with
// a common neighbour — the square-graph coloring) for control-channel
// load. The Monitor's steady/dynamic machinery is strategy-agnostic: the
// strategy only changes the catching rules and the Collect constraint.

import (
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
)

// Strategy2Fields names the two reserved fields. The defaults pair the
// VLAN id (H1, probed switch) with the VLAN PCP (H2, downstream switch),
// which keeps both inside the 802.1Q tag; any two rewritable-free fields
// work.
type Strategy2Fields struct {
	H1 header.FieldID
	H2 header.FieldID
}

// DefaultStrategy2Fields returns the VLAN-based pairing.
func DefaultStrategy2Fields() Strategy2Fields {
	return Strategy2Fields{H1: header.VlanID, H2: header.VlanPCP}
}

// CatchRulesStrategy2 returns the rules switch `self` must pre-install
// under strategy 2 for the given reserved identifier sets (values of H1
// and H2 respectively).
func CatchRulesStrategy2(self uint32, fields Strategy2Fields, reservedH1 []uint32) []*flowtable.Rule {
	id := uint64(0xC2000000) | uint64(self)<<16
	out := []*flowtable.Rule{{
		ID:       id,
		Priority: catchPriority,
		Match:    flowtable.MatchAll().WithExact(fields.H2, uint64(self)),
		Actions:  []flowtable.Action{flowtable.Output(flowtable.PortController)},
	}}
	id++
	for _, v := range reservedH1 {
		if v == self {
			continue
		}
		out = append(out, &flowtable.Rule{
			ID:       id,
			Priority: catchPriority - 1,
			Match:    flowtable.MatchAll().WithExact(fields.H1, uint64(v)),
			Actions:  nil, // drop foreign probes that strayed here
		})
		id++
	}
	return out
}

// Strategy2Collect builds the Collect constraint for probing a rule whose
// expected output reaches downstream switch `next`: the probe must carry
// H1 = probed switch, H2 = next.
func Strategy2Collect(fields Strategy2Fields, probed, next uint32) flowtable.Match {
	return flowtable.MatchAll().
		WithExact(fields.H1, uint64(probed)).
		WithExact(fields.H2, uint64(next))
}

// GenerateStrategy2 produces a probe for `rule` under the two-field
// scheme, targeting the downstream switch reachable through the rule's
// first forwarding port (per portPeer). It wraps the Monitor's generator
// with the per-target Collect constraint; steady/dynamic monitoring can
// feed the returned probe through the normal machinery.
func (m *Monitor) GenerateStrategy2(table *flowtable.Table, rule *flowtable.Rule, fields Strategy2Fields) (*probe.Probe, error) {
	ports := rule.ForwardingSet()
	var next uint32 = HostPeer
	for _, p := range ports {
		if peer, ok := m.Cfg.PortPeer[p]; ok && peer != HostPeer {
			next = peer
			break
		}
	}
	if next == HostPeer {
		return nil, probe.ErrUnmonitorable // egress rule (§3.5)
	}
	cfg := m.generatorConfig()
	cfg.Collect = Strategy2Collect(fields, m.Cfg.SwitchID, next)
	cfg.ReservedFields = []header.FieldID{fields.H1, fields.H2}
	gen := probe.NewGenerator(cfg)
	return gen.Generate(table, rule)
}
