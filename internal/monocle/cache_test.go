package monocle

import (
	"testing"
	"time"

	"monocle/internal/openflow"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// TestMonitorSessionCacheDeltaRecompile: a burst of rule updates flowing
// through the proxy generates all its dynamic probes through the
// epoch-aware session cache — the probe library is compiled incrementally
// (one delta per inserted rule), never rebuilt per update, and every
// update still confirms against the data plane.
func TestMonitorSessionCacheDeltaRecompile(t *testing.T) {
	confirmed := map[uint64]sim.Time{}
	tb := newLineTestbed(t, switchsim.Ideal(), func(c *Config) {
		c.OnRuleConfirmed = func(ruleID uint64, at sim.Time) { confirmed[ruleID] = at }
	})
	m := tb.mon[2]

	const n = 8
	for i := 0; i < n; i++ {
		fm := addFM(t, uint64(200+i), uint16(10+i), ip4(10, 0, 1, uint64(i)), 2)
		m.OnControllerMessage(fm, uint32(i+1))
		tb.sim.RunUntil(tb.sim.Now() + 100*time.Millisecond)
	}
	// Delete half of them again.
	for i := 0; i < n/2; i++ {
		fm := addFM(t, uint64(200+i), uint16(10+i), ip4(10, 0, 1, uint64(i)), 2)
		fm.Command = openflow.FCDeleteStrict
		m.OnControllerMessage(fm, uint32(100+i))
		tb.sim.RunUntil(tb.sim.Now() + 100*time.Millisecond)
	}
	tb.sim.RunUntil(tb.sim.Now() + time.Second)

	for i := 0; i < n; i++ {
		if _, ok := confirmed[uint64(200+i)]; !ok {
			t.Fatalf("rule %d never confirmed; stats=%+v", 200+i, m.Stats)
		}
	}
	st := m.cache.Stats
	if st.Syncs == 0 {
		t.Fatal("dynamic probes bypassed the session cache entirely")
	}
	// Each epoch recompiles only its delta: far fewer rule compilations
	// than syncs × table size (the rebuild-per-epoch behaviour). The
	// preinstalled catch rules get compiled once, then each add compiles
	// one rule; generous slack for re-syncs after deletions.
	limit := 3*n + 16
	if st.DeltaRules > limit {
		t.Fatalf("cache recompiled %d rules (limit %d): not a delta recompile; stats=%+v",
			st.DeltaRules, limit, st)
	}
}
