package monocle

// Probe injection, collection and judging. Probes are injected through the
// monitored switch's own control channel as PacketOut messages whose only
// action outputs to OFPP_TABLE, i.e. the frame traverses the switch's flow
// table exactly like a data packet arriving on InPort (§8.3.1: "the
// approach we implemented relies on the control channel"). Caught probes
// arrive as PacketIns at the *downstream* switch's Monitor, which hands
// them to the Multiplexer for routing back to the owner by the switch id
// in the probe metadata (§4.2).

import (
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/probe"
)

// startPending registers dynamic monitoring for an update. All pending
// updates share one round-robin prober whose aggregate PacketOut budget is
// capped by DynamicProbeRate, so a burst of updates (the §8.4 batched
// scenario) does not crowd FlowMods out of the switch's control channel.
func (m *Monitor) startPending(ruleID uint64, p *probe.Probe, kind packet.Expectation) *pendingUpdate {
	pu := &pendingUpdate{ruleID: ruleID, probe: p, kind: kind, issuedAt: m.Sim.Now()}
	// The probe is ready for injection after the modeled generation
	// latency (Table 2).
	pu.eligibleAt = m.Sim.Now() + m.Cfg.GenDelay
	m.pending[ruleID] = pu
	m.dynQueue = append(m.dynQueue, ruleID)
	if m.Cfg.DynamicTimeout > 0 {
		pu.deadline = m.Sim.After(m.Cfg.DynamicTimeout, func() {
			if m.pending[ruleID] == pu {
				if m.Cfg.OnUpdateStuck != nil {
					m.Cfg.OnUpdateStuck(ruleID, m.Sim.Now())
				}
			}
		})
	}
	m.armDynTicker(m.Cfg.GenDelay)
	return pu
}

// armDynTicker ensures a prober tick is scheduled within d.
func (m *Monitor) armDynTicker(d time.Duration) {
	if m.dynTicker != nil && m.dynTicker.Pending() {
		return
	}
	m.dynTicker = m.Sim.After(d, m.dynamicTick)
}

// dynTickInterval is the pacing of the round-robin prober.
func (m *Monitor) dynTickInterval() time.Duration {
	rate := m.Cfg.DynamicProbeRate
	if rate <= 0 {
		rate = 1000
	}
	return time.Duration(float64(time.Second) / rate)
}

// retryInterval is the minimum per-update re-injection gap.
func (m *Monitor) retryInterval() time.Duration {
	if m.Cfg.DynamicRetryInterval > 0 {
		return m.Cfg.DynamicRetryInterval
	}
	return defaultRetryInterval
}

// dynamicTick probes the oldest eligible pending update first: updates
// are forwarded to the switch in arrival order and commit in roughly that
// order, so the head of the queue is the rule most likely to have just
// landed in the data plane. Silence-confirmable updates (drops, deletions
// falling through to a drop) confirm when a full retry interval passes
// without any catch.
func (m *Monitor) dynamicTick() {
	if len(m.pending) == 0 {
		m.dynQueue = m.dynQueue[:0]
		return
	}
	now := m.Sim.Now()
	scanned := 0
	injected := false
	for scanned < len(m.dynQueue) && !injected {
		id := m.dynQueue[scanned]
		scanned++
		pu, ok := m.pending[id]
		if !ok {
			continue // confirmed; lazily compacted below
		}
		if now < pu.eligibleAt {
			continue
		}
		if m.confirmsBySilence(pu) && pu.lastInject > 0 && pu.lastCatch < pu.lastInject &&
			now-pu.lastInject >= m.retryInterval() {
			m.confirmRule(pu)
			continue
		}
		if pu.lastInject > 0 && now-pu.lastInject < m.retryInterval() {
			continue
		}
		m.injectProbe(pu.probe, true, pu.kind)
		pu.lastInject = now
		injected = true
	}
	// Compact confirmed entries off the head, and fully once the queue
	// is mostly dead.
	for len(m.dynQueue) > 0 {
		if _, ok := m.pending[m.dynQueue[0]]; ok {
			break
		}
		m.dynQueue = m.dynQueue[1:]
	}
	if len(m.dynQueue) > 32 && len(m.dynQueue) > 2*len(m.pending) {
		kept := make([]uint64, 0, len(m.pending))
		for _, id := range m.dynQueue {
			if _, ok := m.pending[id]; ok {
				kept = append(kept, id)
			}
		}
		m.dynQueue = kept
	}
	if len(m.pending) > 0 {
		m.dynTicker = m.Sim.After(m.dynTickInterval(), m.dynamicTick)
	}
}

const defaultRetryInterval = 3 * time.Millisecond

// confirmsBySilence reports whether the update's expected post-state
// produces no catchable probe, so absence of evidence is the confirmation
// signal (§3.3's negative probing, applied to dynamic mode).
func (m *Monitor) confirmsBySilence(pu *pendingUpdate) bool {
	switch pu.kind {
	case packet.ExpectPresent, packet.ExpectModified:
		return m.outcomeSilent(pu.probe.Present)
	case packet.ExpectAbsent:
		return m.outcomeSilent(pu.probe.Absent)
	}
	return false
}

// outcomeSilent reports whether no emission of the outcome can reach a
// catcher (drop, or every emission exits toward hosts).
func (m *Monitor) outcomeSilent(o probe.Outcome) bool {
	if o.Drop {
		return true
	}
	for _, e := range o.Emissions {
		if m.catcherFor(e.Port) != HostPeer {
			return false
		}
	}
	return true
}

// catcherFor maps an output port of the monitored switch to the switch ID
// that would catch a probe emitted there.
func (m *Monitor) catcherFor(p flowtable.PortID) uint32 {
	if p == flowtable.PortController {
		// A to-controller emission comes back as a PacketIn on the
		// monitored switch itself.
		return m.Cfg.SwitchID
	}
	if id, ok := m.Cfg.PortPeer[p]; ok {
		return id
	}
	return HostPeer
}

// injectProbe crafts and PacketOuts one probe; it returns the sequence
// number (0 on crafting failure). The frame, metadata payload, and
// PacketOut are built in Monitor-owned scratch buffers reused across
// injections (see the ToSwitch contract): a 10k-probe sweep injects with
// zero per-probe buffer allocations.
func (m *Monitor) injectProbe(p *probe.Probe, dynamic bool, kind packet.Expectation) uint64 {
	m.nextSeq++
	seq := m.nextSeq
	meta := packet.Metadata{
		RuleID:   p.RuleID,
		Seq:      seq,
		SwitchID: m.Cfg.SwitchID,
		Expect:   kind,
		Nonce:    m.nonce,
	}
	if cap(m.metaBuf) == 0 {
		m.metaBuf = make([]byte, 0, packet.MetadataLen)
		m.frameBuf = make([]byte, 0, packet.DefaultFrameCap)
		m.scratchAct[0] = openflow.OutputAction(openflow.PortTable)
	}
	m.metaBuf = meta.AppendTo(m.metaBuf[:0])
	frame, err := packet.CraftInto(m.frameBuf[:0], p.Header, m.metaBuf)
	if err != nil {
		return 0
	}
	m.frameBuf = frame
	m.inflight[seq] = &inflightProbe{seq: seq, ruleID: p.RuleID, dynamic: dynamic, epoch: m.updateEpoch}
	m.Stats.ProbesSent++
	m.scratchPO = openflow.PacketOut{
		BufferID: openflow.BufferNone,
		InPort:   uint16(p.Header.Get(header.InPort)),
		Actions:  m.scratchAct[:],
		Data:     frame,
	}
	m.forwardToSwitch(&m.scratchPO, m.virtXID())
	return seq
}

// handleCaughtProbe inspects a PacketIn arriving from this Monitor's
// switch; Monocle probes are consumed and routed, everything else passes
// through to the controller. It returns true when consumed.
func (m *Monitor) handleCaughtProbe(pi *openflow.PacketIn) bool {
	h, payload, err := packet.Parse(pi.Data)
	if err != nil {
		return false
	}
	meta, err := packet.UnmarshalMetadata(payload)
	if err != nil {
		return false
	}
	h.Set(header.InPort, 0)
	if m.Mux != nil {
		m.Mux.RouteCaught(meta, m.Cfg.SwitchID, h)
		return true
	}
	// Single-switch setups without a Multiplexer: self-route.
	if meta.SwitchID == m.Cfg.SwitchID {
		m.OnProbeCaught(meta, m.Cfg.SwitchID, h)
	}
	return true
}

// OnProbeCaught processes a probe owned by this Monitor that was caught at
// switch `catcher` carrying observed header `obs`.
func (m *Monitor) OnProbeCaught(meta packet.Metadata, catcher uint32, obs header.Header) {
	m.Stats.ProbesCaught++
	if meta.Nonce != m.nonce {
		m.Stats.ProbesStale++
		return
	}
	fl, ok := m.inflight[meta.Seq]
	if !ok {
		m.Stats.ProbesStale++
		return
	}
	delete(m.inflight, meta.Seq)

	if fl.observer != nil {
		m.observerCatch(fl.observer, catcher, obs)
		return
	}
	if fl.dynamic {
		pu := m.pending[fl.ruleID]
		if pu == nil {
			return // confirmed by an earlier probe
		}
		pu.lastCatch = m.Sim.Now()
		switch judgeForKind(pu.kind, m.judge(pu.probe, catcher, obs)) {
		case VerdictConfirmed:
			m.confirmRule(pu)
		case VerdictAbsent, VerdictUnexpected:
			// Transient inconsistency: keep retrying (§4.1 — do not
			// raise an alarm instantly in dynamic mode).
		}
		return
	}
	m.steadyVerdict(fl, catcher, obs)
}

// judge classifies an observation against the pending update's semantics:
// for additions/modifications the Present outcome confirms; for deletions
// the Absent outcome does.
func (m *Monitor) judge(p *probe.Probe, catcher uint32, obs header.Header) Verdict {
	matchesPresent := m.outcomeMatches(p.Present, catcher, obs)
	matchesAbsent := m.outcomeMatches(p.Absent, catcher, obs)
	switch {
	case matchesPresent && !matchesAbsent:
		return VerdictConfirmed
	case matchesAbsent && !matchesPresent:
		return VerdictAbsent
	case matchesPresent && matchesAbsent:
		// Cannot happen for a valid probe (outcomes distinguishable).
		return VerdictUnexpected
	default:
		return VerdictUnexpected
	}
}

// judgeForKind maps raw present/absent evidence to confirmation for the
// update kind.
func judgeForKind(kind packet.Expectation, v Verdict) Verdict {
	if kind == packet.ExpectAbsent {
		switch v {
		case VerdictConfirmed:
			return VerdictAbsent // rule still present
		case VerdictAbsent:
			return VerdictConfirmed // deletion took effect
		}
	}
	return v
}

// outcomeMatches checks one observation against an expected outcome: the
// probe must have been caught by the switch downstream of one of the
// outcome's emission ports, with exactly the rewritten header.
func (m *Monitor) outcomeMatches(o probe.Outcome, catcher uint32, obs header.Header) bool {
	if o.Drop {
		return false
	}
	for _, e := range o.Emissions {
		if m.catcherFor(e.Port) != catcher {
			continue
		}
		want := e.Header
		want.Set(header.InPort, 0)
		if want == obs {
			return true
		}
	}
	return false
}
