package monocle

// Steady-state monitoring (§3, §8.1.1): Monocle cycles through every
// installed rule at a capped probe rate, re-sends unanswered probes up to
// Retries times, and raises an alarm when a rule stays unconfirmed for
// AlarmTimeout. Probes are cached per rule and regenerated whenever the
// expected table changes (epoch bump).

import (
	"context"
	"time"

	"monocle/internal/header"
	"monocle/internal/packet"
	"monocle/internal/probe"
	"monocle/internal/sim"
)

// steadyState is the cycling prober.
type steadyState struct {
	order   []uint64 // rule id cycle
	idx     int
	cache   map[uint64]*cachedProbe
	active  map[uint64]*attempt
	failed  map[uint64]bool // already-alarmed rules (no duplicate alarms)
	ticker  *sim.Timer
	running bool
}

type cachedProbe struct {
	p     *probe.Probe
	dirty bool
}

// attempt tracks one rule's in-progress verification.
type attempt struct {
	ruleID    uint64
	firstSent sim.Time
	resends   int
	negative  bool
	confirmed bool
	alarm     *sim.Timer
	retry     *sim.Timer
}

// StartSteadyState begins (or restarts) cycling over all rules currently
// in the expected table plus rules added later.
func (m *Monitor) StartSteadyState() {
	if m.steady == nil {
		m.steady = &steadyState{
			cache:  make(map[uint64]*cachedProbe),
			active: make(map[uint64]*attempt),
			failed: make(map[uint64]bool),
		}
	}
	m.steady.running = true
	m.prewarmProbeCache()
	m.scheduleTick(0)
}

// prewarmProbeCache fills the steady-state probe cache for every rule that
// lacks a fresh probe, using the incremental parallel engine: the whole
// expected table is swept through persistent per-worker SAT sessions
// instead of re-encoding each rule from scratch on its first cycle tick.
// The sweep runs over the epoch-aware SessionCache, so repeated prewarms
// across table changes recompile only the changed rules. Generation costs
// no virtual time, so monitoring semantics are unchanged; the sweep only
// moves the real-time cost off the per-tick path.
func (m *Monitor) prewarmProbeCache() {
	st := m.steady
	stale := false
	for _, r := range m.expected.View() {
		cp := st.cache[r.ID]
		if cp == nil || cp.dirty {
			stale = true
			break
		}
	}
	if !stale {
		return
	}
	for _, res := range m.cache.GenerateAll(context.Background(), m.updateEpoch, 0) {
		cp := st.cache[res.Rule.ID]
		if cp != nil && !cp.dirty {
			continue // fresh entry; keep it (semantics of the lazy path)
		}
		if res.Err != nil {
			m.noteGenFailure(res.Err)
			st.cache[res.Rule.ID] = &cachedProbe{p: nil}
			continue
		}
		m.Stats.GeneratedProbes++
		st.cache[res.Rule.ID] = &cachedProbe{p: res.Probe}
	}
}

// StopSteadyState pauses the cycle.
func (m *Monitor) StopSteadyState() {
	if m.steady == nil {
		return
	}
	m.steady.running = false
	if m.steady.ticker != nil {
		m.steady.ticker.Cancel()
	}
}

// probeInterval is the steady-state pacing (1/ProbeRate).
func (m *Monitor) probeInterval() time.Duration {
	rate := m.Cfg.ProbeRate
	if rate <= 0 {
		rate = 500
	}
	return time.Duration(float64(time.Second) / rate)
}

func (m *Monitor) scheduleTick(d time.Duration) {
	st := m.steady
	if st.ticker != nil {
		st.ticker.Cancel()
	}
	st.ticker = m.Sim.After(d, m.steadyTick)
}

// steadyTick probes the next rule in the cycle.
func (m *Monitor) steadyTick() {
	st := m.steady
	if st == nil || !st.running {
		return
	}
	defer m.scheduleTick(m.probeInterval())

	ruleID, ok := m.nextSteadyRule()
	if !ok {
		return // nothing to monitor this tick
	}
	cp := st.cache[ruleID]
	rule, exists := m.expected.Get(ruleID)
	if !exists {
		delete(st.cache, ruleID)
		return
	}
	if cp == nil || cp.dirty {
		p, err := m.generateExpected(rule)
		if err != nil {
			m.noteGenFailure(err)
			st.cache[ruleID] = &cachedProbe{p: nil}
			return
		}
		m.Stats.GeneratedProbes++
		cp = &cachedProbe{p: p}
		st.cache[ruleID] = cp
	}
	if cp.p == nil {
		return // unmonitorable at current epoch
	}
	m.beginAttempt(ruleID, cp.p)
}

// nextSteadyRule advances the cycle, rebuilding the order from the
// expected table when exhausted. Rules under dynamic confirmation and
// rules with an attempt in flight are skipped.
func (m *Monitor) nextSteadyRule() (uint64, bool) {
	st := m.steady
	for scan := 0; scan < 2; scan++ {
		for st.idx < len(st.order) {
			id := st.order[st.idx]
			st.idx++
			if _, pending := m.pending[id]; pending {
				continue
			}
			if _, busy := st.active[id]; busy {
				continue
			}
			if _, ok := m.expected.Get(id); !ok {
				continue
			}
			return id, true
		}
		// Rebuild the cycle.
		st.order = st.order[:0]
		for _, r := range m.expected.Rules() {
			st.order = append(st.order, r.ID)
		}
		st.idx = 0
		if len(st.order) == 0 {
			return 0, false
		}
	}
	return 0, false
}

// beginAttempt sends the first probe of an attempt and arms retry/alarm
// timers. Negative probes (drop rules) invert the logic: silence until
// AlarmTimeout confirms, a caught Absent observation alarms.
func (m *Monitor) beginAttempt(ruleID uint64, p *probe.Probe) {
	st := m.steady
	at := &attempt{ruleID: ruleID, firstSent: m.Sim.Now(), negative: p.Negative}
	st.active[ruleID] = at
	m.sendSteadyProbe(at, p)

	retryGap := m.Cfg.AlarmTimeout / time.Duration(m.Cfg.Retries+1)
	if retryGap <= 0 {
		retryGap = 50 * time.Millisecond
	}
	var rearm func()
	rearm = func() {
		if at.confirmed || st.active[ruleID] != at {
			return
		}
		if at.resends >= m.Cfg.Retries {
			return
		}
		at.resends++
		m.sendSteadyProbe(at, p)
		at.retry = m.Sim.After(retryGap, rearm)
	}
	at.retry = m.Sim.After(retryGap, rearm)
	at.alarm = m.Sim.After(m.Cfg.AlarmTimeout, func() {
		if st.active[ruleID] != at {
			return
		}
		delete(st.active, ruleID)
		if at.retry != nil {
			at.retry.Cancel()
		}
		if at.negative {
			// Silence is the expected (present) outcome for drop rules.
			return
		}
		if !at.confirmed {
			m.raiseAlarm(ruleID)
		}
	})
}

func (m *Monitor) sendSteadyProbe(at *attempt, p *probe.Probe) {
	seq := m.injectProbe(p, false, packet.ExpectPresent)
	if seq == 0 {
		return
	}
	m.inflight[seq].attempt = at
}

// steadyVerdict resolves a caught steady-state probe.
func (m *Monitor) steadyVerdict(fl *inflightProbe, catcher uint32, obs header.Header) {
	st := m.steady
	if st == nil {
		return
	}
	at := fl.attempt
	if at == nil || st.active[at.ruleID] != at {
		m.Stats.ProbesStale++
		return
	}
	cp := st.cache[at.ruleID]
	if cp == nil || cp.p == nil {
		return
	}
	switch m.judge(cp.p, catcher, obs) {
	case VerdictConfirmed:
		at.confirmed = true
		delete(st.active, at.ruleID)
		if at.alarm != nil {
			at.alarm.Cancel()
		}
		if at.retry != nil {
			at.retry.Cancel()
		}
		delete(st.failed, at.ruleID) // rule healed
	case VerdictAbsent, VerdictUnexpected:
		if at.negative {
			// A drop-rule probe that reappears proves the rule is not
			// dropping: immediate alarm.
			delete(st.active, at.ruleID)
			if at.alarm != nil {
				at.alarm.Cancel()
			}
			if at.retry != nil {
				at.retry.Cancel()
			}
			m.raiseAlarm(at.ruleID)
			return
		}
		// Definitive negative evidence still waits for the timeout
		// (retries may reveal a transient), matching the paper's
		// timeout-driven detection latency.
	}
}

func (m *Monitor) raiseAlarm(ruleID uint64) {
	st := m.steady
	if st.failed[ruleID] {
		return
	}
	st.failed[ruleID] = true
	m.Stats.Alarms++
	if m.Cfg.OnAlarm != nil {
		m.Cfg.OnAlarm(ruleID, m.Sim.Now())
	}
}
