package monocle

// Multiplexer (§7): connects to the Monitors of all monitored switches and
// routes caught probes to their owners. In the paper it also fans
// PacketIn/PacketOut messages between switch connections; in this
// event-driven reproduction each Monitor keeps its own switch connection
// and the Multiplexer's job reduces to probe routing by the switch id
// embedded in the probe metadata.
//
// Concurrency contract: the routing table (Register/Monitor/Monitors) and
// the routing counters are guarded by a mutex, so lookups and probe
// routing may come from different goroutines — the fleet deployment wires
// one Multiplexer across many switch connections. Two things stay outside
// the mutex's protection and follow the Monitor's own single-threaded
// rule instead: RouteCaught delivers synchronously into the owning
// Monitor (so it must run on that Monitor's event-loop thread), and
// Register wires the monitor's Mux pointer (so a monitor must be
// registered before its event loop starts delivering messages —
// Fleet.AttachMonitor registers at construction time, satisfying this).
// Sharing one event loop across every Monitor of a fleet, as cmd/monocle
// does, satisfies the delivery rule trivially.

import (
	"sort"
	"sync"

	"monocle/internal/header"
	"monocle/internal/packet"
)

// Multiplexer routes caught probes between Monitors.
type Multiplexer struct {
	mu       sync.RWMutex
	monitors map[uint32]*Monitor
	stats    MuxStats
}

// MuxStats counts multiplexer routing results.
type MuxStats struct {
	Routed  int
	NoOwner int
}

// NewMultiplexer returns an empty multiplexer.
func NewMultiplexer() *Multiplexer {
	return &Multiplexer{monitors: make(map[uint32]*Monitor)}
}

// Register attaches a Monitor and wires its Mux pointer. Registering a
// second Monitor under the same switch id replaces the first. The Mux
// pointer write is not synchronized with the monitor's event loop:
// register a monitor before that loop starts delivering its messages
// (see the package comment).
func (x *Multiplexer) Register(m *Monitor) {
	x.mu.Lock()
	x.monitors[m.Cfg.SwitchID] = m
	x.mu.Unlock()
	m.Mux = x
}

// Monitor returns the Monitor for a switch id.
func (x *Multiplexer) Monitor(id uint32) (*Monitor, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	m, ok := x.monitors[id]
	return m, ok
}

// Monitors returns every registered Monitor sorted by switch id, so fleet
// iteration is deterministic regardless of registration order.
func (x *Multiplexer) Monitors() []*Monitor {
	x.mu.RLock()
	out := make([]*Monitor, 0, len(x.monitors))
	for _, m := range x.monitors {
		out = append(out, m)
	}
	x.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Cfg.SwitchID < out[j].Cfg.SwitchID })
	return out
}

// Stats returns a snapshot of the routing counters.
func (x *Multiplexer) Stats() MuxStats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.stats
}

// RouteCaught delivers a probe caught at switch `catcher` to the Monitor
// that owns it (meta.SwitchID). The lookup and counters are thread-safe;
// the delivery itself runs on the caller's goroutine and must respect the
// owning Monitor's single-threaded contract (see the package comment).
func (x *Multiplexer) RouteCaught(meta packet.Metadata, catcher uint32, obs header.Header) {
	x.mu.Lock()
	owner, ok := x.monitors[meta.SwitchID]
	if !ok {
		x.stats.NoOwner++
		x.mu.Unlock()
		return
	}
	x.stats.Routed++
	x.mu.Unlock()
	owner.OnProbeCaught(meta, catcher, obs)
}
