package monocle

// Multiplexer (§7): connects to the Monitors of all monitored switches and
// routes caught probes to their owners. In the paper it also fans
// PacketIn/PacketOut messages between switch connections; in this
// event-driven reproduction each Monitor keeps its own switch connection
// and the Multiplexer's job reduces to probe routing by the switch id
// embedded in the probe metadata.

import (
	"monocle/internal/header"
	"monocle/internal/packet"
)

// Multiplexer routes caught probes between Monitors.
type Multiplexer struct {
	monitors map[uint32]*Monitor
	// Stats counts routing activity.
	Stats MuxStats
}

// MuxStats counts multiplexer routing results.
type MuxStats struct {
	Routed  int
	NoOwner int
}

// NewMultiplexer returns an empty multiplexer.
func NewMultiplexer() *Multiplexer {
	return &Multiplexer{monitors: make(map[uint32]*Monitor)}
}

// Register attaches a Monitor and wires its Mux pointer.
func (x *Multiplexer) Register(m *Monitor) {
	x.monitors[m.Cfg.SwitchID] = m
	m.Mux = x
}

// Monitor returns the Monitor for a switch id.
func (x *Multiplexer) Monitor(id uint32) (*Monitor, bool) {
	m, ok := x.monitors[id]
	return m, ok
}

// RouteCaught delivers a probe caught at switch `catcher` to the Monitor
// that owns it (meta.SwitchID).
func (x *Multiplexer) RouteCaught(meta packet.Metadata, catcher uint32, obs header.Header) {
	owner, ok := x.monitors[meta.SwitchID]
	if !ok {
		x.Stats.NoOwner++
		return
	}
	x.Stats.Routed++
	owner.OnProbeCaught(meta, catcher, obs)
}
