// Package monocle implements the Monocle proxy itself (§2, §4, §7): a
// per-switch Monitor that sits between an SDN controller and one switch,
// tracks the expected flow table from the FlowMods it forwards, verifies
// the data plane with generated probes, and a Multiplexer that routes
// caught probes back to the Monitor that owns them.
//
// The Monitor is a pure event-driven state machine over a sim.Sim clock:
// transport adapters (the in-process simulator harness, or the real TCP
// proxy in cmd/monocle) deliver controller/switch messages and the Monitor
// emits messages through callbacks. It never blocks and owns no goroutines.
package monocle

import (
	"context"
	"fmt"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/probe"
	"monocle/internal/sim"
)

// Config parameterizes one Monitor.
type Config struct {
	// SwitchID is the network-wide unique identifier of the monitored
	// switch, used to route caught probes back to this Monitor.
	SwitchID uint32
	// TagValue is the reserved probe-field value S_i this switch stamps
	// on its probes. With the vertex-coloring optimization of §6 this is
	// the switch's color; zero means "use SwitchID".
	TagValue uint32
	// ProbeField is the header field reserved for probe tagging
	// (strategy 1 uses a single field; default dl_vlan).
	ProbeField header.FieldID
	// PortPeer maps each switch port to the switch ID of the neighbour
	// reachable over it (the downstream catcher), or to HostPeer for
	// edge ports (probes exiting there are lost, §3.5).
	PortPeer map[flowtable.PortID]uint32
	// Ports lists the switch's usable ports (the in_port domain).
	Ports []flowtable.PortID

	// ProbeRate caps steady-state probing (probes/second); 500/s in the
	// paper's experiments.
	ProbeRate float64
	// AlarmTimeout is how long a rule may stay unconfirmed (with
	// retries) before the steady-state monitor raises an alarm; 150 ms
	// in the paper.
	AlarmTimeout time.Duration
	// Retries is the number of re-sent probes within AlarmTimeout (3).
	Retries int
	// GenDelay models the probe-generation latency charged on the
	// virtual clock before a dynamic probe is first injected (Table 2
	// measures 1.5–4 ms per probe on real rule sets).
	GenDelay time.Duration
	// DynamicRetryInterval is the minimum re-injection gap per pending
	// update while waiting for it to reach the data plane.
	DynamicRetryInterval time.Duration
	// DynamicProbeRate caps the aggregate dynamic-probe PacketOut rate
	// (probes/s, default 1000); pending updates share it round-robin so
	// bursts of updates do not crowd FlowMods out of the control
	// channel (§8.4).
	DynamicProbeRate float64
	// DynamicTimeout bounds how long an update may stay unconfirmed
	// before OnUpdateStuck fires (0 disables).
	DynamicTimeout time.Duration

	// DropPostpone enables the §4.3 reliable drop-rule installation:
	// drop rules are installed as "mark with DropValue in DropField and
	// forward to DropNeighborPort", confirmed positively, then
	// rewritten into real drops.
	DropPostpone bool
	// DropField/DropValue are the special header marking; neighbours
	// must hold a pre-installed rule dropping marked traffic.
	DropField header.FieldID
	// DropValue marks to-be-dropped traffic during postponement.
	DropValue uint64
	// DropNeighborPort is where postponed-drop traffic is diverted.
	DropNeighborPort flowtable.PortID

	// Counting enables the multicast/ECMP probe-counting exception.
	Counting bool

	// OnAlarm fires when steady-state monitoring concludes a rule is
	// misbehaving in the data plane.
	OnAlarm func(ruleID uint64, at sim.Time)
	// OnRuleConfirmed fires when a dynamic update (add/modify/delete)
	// is verified to have reached the data plane.
	OnRuleConfirmed func(ruleID uint64, at sim.Time)
	// OnUpdateStuck fires when a dynamic update exceeds DynamicTimeout.
	OnUpdateStuck func(ruleID uint64, at sim.Time)
}

// HostPeer marks a port that leads out of the monitored core (no catcher).
const HostPeer uint32 = 0xffffffff

// DefaultConfig returns the paper's experiment parameters.
func DefaultConfig(switchID uint32) Config {
	return Config{
		SwitchID:             switchID,
		ProbeField:           header.VlanID,
		ProbeRate:            500,
		AlarmTimeout:         150 * time.Millisecond,
		Retries:              3,
		GenDelay:             2 * time.Millisecond,
		DynamicRetryInterval: 3 * time.Millisecond,
		DropField:            header.IPTos,
		DropValue:            0xfc,
	}
}

// Verdict classifies one probe observation.
type Verdict int

const (
	// VerdictConfirmed: observation matches the Present outcome.
	VerdictConfirmed Verdict = iota
	// VerdictAbsent: observation matches the Absent outcome (rule
	// missing, or deletion/modification not yet applied).
	VerdictAbsent
	// VerdictUnexpected: observation matches neither outcome (rule
	// misbehaving, or a stale in-flight probe).
	VerdictUnexpected
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictConfirmed:
		return "confirmed"
	case VerdictAbsent:
		return "absent"
	case VerdictUnexpected:
		return "unexpected"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Monitor proxies one controller↔switch session and monitors that switch.
type Monitor struct {
	Cfg Config
	Sim *sim.Sim

	// ToSwitch and ToController forward proxied messages; the harness
	// wires them. Sinks must consume the message synchronously: the
	// Monitor reuses the PacketOut and frame buffers of its injection
	// hot path across probes, so a sink that needs the message beyond
	// the call must copy it (WriteMessage and the simulated switch both
	// serialize/copy inline).
	ToSwitch     func(msg openflow.Message, xid uint32)
	ToController func(msg openflow.Message, xid uint32)
	// Mux routes probes caught at this switch to their owners.
	Mux *Multiplexer

	expected *flowtable.Table
	gen      *probe.Generator
	// cache keeps the compiled probe library alive across table changes:
	// rule insertions/deletions recompile only the affected rules instead
	// of rebuilding the whole library each epoch (keyed by updateEpoch).
	cache *probe.SessionCache

	// Dynamic monitoring state.
	pending   map[uint64]*pendingUpdate // by rule ID
	queued    []*queuedMod              // overlapping updates held back (§4.2)
	dynQueue  []uint64                  // arrival (oldest-first) order for the prober
	dynTicker *sim.Timer

	// Barrier gating: barriers are answered to the controller only when
	// the switch replied and every update issued before them confirmed.
	barriers    []*pendingBarrier
	nextVirtXID uint32

	// Steady-state monitoring state.
	steady      *steadyState
	inflight    map[uint64]*inflightProbe // by probe seq
	nextSeq     uint64
	nonce       uint64
	updateEpoch uint64 // bumped on table changes; invalidates cached probes

	// Injection scratch: one frame buffer, one metadata buffer, and one
	// PacketOut (with its single-element action list) reused across every
	// probe injected by this Monitor. Safe because the Monitor is
	// single-threaded and ToSwitch sinks consume messages synchronously.
	frameBuf   []byte
	metaBuf    []byte
	scratchPO  openflow.PacketOut
	scratchAct [1]openflow.Action

	// Stats for experiments.
	Stats MonitorStats
}

// MonitorStats counts monitor activity.
type MonitorStats struct {
	FlowModsProxied  int
	ProbesSent       int
	ProbesCaught     int
	ProbesStale      int
	Confirmations    int
	Alarms           int
	Unmonitorable    int
	QueuedOverlaps   int
	GeneratedProbes  int
	GenerationFailed int
}

// pendingUpdate tracks one not-yet-confirmed rule update.
type pendingUpdate struct {
	ruleID     uint64
	probe      *probe.Probe
	kind       packet.Expectation
	issuedAt   sim.Time
	lastInject sim.Time
	lastCatch  sim.Time
	eligibleAt sim.Time
	deadline   *sim.Timer // DynamicTimeout
	postponed  *postponedDrop
	// onConfirm runs when the update is verified (used by barrier
	// gating and drop-postponing follow-ups).
	onConfirm []func()
}

// postponedDrop remembers the real drop rule to install after the marked
// version is confirmed (§4.3).
type postponedDrop struct {
	match    flowtable.Match
	priority uint16
	cookie   uint64
}

// queuedMod is a FlowMod held back because it overlaps unconfirmed rules.
type queuedMod struct {
	fm  *openflow.FlowMod
	xid uint32
}

// pendingBarrier gates one controller barrier.
type pendingBarrier struct {
	xid          uint32
	switchAcked  bool
	waitingRules map[uint64]bool
}

// inflightProbe tracks one injected steady-state, dynamic, or observed
// probe.
type inflightProbe struct {
	seq      uint64
	ruleID   uint64
	dynamic  bool
	epoch    uint64
	attempt  *attempt       // steady-state attempt this probe belongs to
	observer *probeObserver // ObserveProbe request this probe belongs to
}

// New creates a Monitor. Wire ToSwitch/ToController/Mux before use.
func New(s *sim.Sim, cfg Config) *Monitor {
	if cfg.ProbeField == 0 {
		cfg.ProbeField = header.VlanID
	}
	if cfg.TagValue == 0 {
		cfg.TagValue = cfg.SwitchID
	}
	m := &Monitor{
		Cfg:      cfg,
		Sim:      s,
		expected: flowtable.New(),
		pending:  make(map[uint64]*pendingUpdate),
		inflight: make(map[uint64]*inflightProbe),
		nonce:    uint64(cfg.SwitchID)<<32 | 1,
	}
	m.gen = probe.NewGenerator(m.generatorConfig())
	m.cache = m.gen.NewSessionCache(m.expected)
	return m
}

// generatorConfig builds the probe.Config for this switch: the Collect
// constraint pins the probe tag to this switch's own ID so any neighbour's
// catching rule intercepts it (strategy 1, §6), and in_port is restricted
// to real ports.
func (m *Monitor) generatorConfig() probe.Config {
	domains := header.DefaultDomains()
	if len(m.Cfg.Ports) > 0 {
		vals := make([]uint64, len(m.Cfg.Ports))
		for i, p := range m.Cfg.Ports {
			vals[i] = uint64(p)
		}
		domains[header.InPort] = header.Domain{Values: vals}
	}
	return probe.Config{
		Collect:        flowtable.MatchAll().WithExact(m.Cfg.ProbeField, uint64(m.Cfg.TagValue)),
		Domains:        domains,
		ReservedFields: []header.FieldID{m.Cfg.ProbeField},
		Counting:       m.Cfg.Counting,
		ValidateModel:  true,
	}
}

// Expected exposes the tracked control-plane view (tests, experiments).
func (m *Monitor) Expected() *flowtable.Table { return m.expected }

// Epoch returns the monitor's table-change epoch: it is bumped on every
// change to the expected table, and keys the probe session cache.
func (m *Monitor) Epoch() uint64 { return m.updateEpoch }

// SweepExpected generates a probe for every rule of the expected table
// through the monitor's epoch-aware session cache, fanning the solves out
// over `parallelism` workers (<= 0 means all CPUs). It powers the fleet
// sweep service: repeated sweeps across table changes recompile only the
// changed rules. It must be called from the monitor's event-loop thread
// (like every other Monitor method) and runs its workers to completion
// before returning.
func (m *Monitor) SweepExpected(ctx context.Context, parallelism int) []probe.Result {
	return m.cache.GenerateAll(ctx, m.updateEpoch, parallelism)
}

// Preinstall records rules that are already in the switch (catching rules,
// pre-existing state) into the expected table without monitoring them.
// Returns the first insert error, if any.
func (m *Monitor) Preinstall(rules ...*flowtable.Rule) error {
	var firstErr error
	for _, r := range rules {
		if err := m.expected.Insert(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.invalidateAllCached()
	return firstErr
}

// CatchRules returns the catching rules this switch must carry for its
// neighbours' probes (strategy 1): one top-priority rule per reserved
// value other than its own, forwarding to the controller. The pre-installed
// drop rule for drop-postponing is appended when that mode is on.
func (m *Monitor) CatchRules(reserved []uint32) []*flowtable.Rule {
	var out []*flowtable.Rule
	id := uint64(0xC0000000) | uint64(m.Cfg.SwitchID)<<16
	for _, v := range reserved {
		if v == m.Cfg.TagValue {
			continue
		}
		out = append(out, &flowtable.Rule{
			ID:       id,
			Priority: catchPriority,
			Match:    flowtable.MatchAll().WithExact(m.Cfg.ProbeField, uint64(v)),
			Actions:  []flowtable.Action{flowtable.Output(flowtable.PortController)},
		})
		id++
	}
	if m.Cfg.DropPostpone {
		out = append(out, &flowtable.Rule{
			ID:       id,
			Priority: dropPriority,
			Match:    flowtable.MatchAll().WithExact(m.Cfg.DropField, m.Cfg.DropValue),
			Actions:  nil, // drop
		})
	}
	return out
}

// Catch and postponed-drop rule priorities: catching is highest, the
// special drop sits just below it but above production rules (§4.3).
const (
	catchPriority = 1 << 15
	dropPriority  = catchPriority - 1
)

// tableChanged invalidates cached steady-state probes affected by a rule
// change with the given match: per the §5.4 overlap lemma, only probes of
// rules overlapping the changed match can be influenced.
func (m *Monitor) tableChanged(match flowtable.Match) {
	m.updateEpoch++
	if m.steady == nil {
		return
	}
	for id, cp := range m.steady.cache {
		r, ok := m.expected.Get(id)
		if !ok {
			delete(m.steady.cache, id)
			continue
		}
		if r.Match.Overlaps(match) {
			cp.dirty = true
		}
	}
}

// invalidateAllCached marks every cached probe stale (Preinstall and other
// bulk changes).
func (m *Monitor) invalidateAllCached() {
	m.updateEpoch++
	if m.steady == nil {
		return
	}
	for _, cp := range m.steady.cache {
		cp.dirty = true
	}
}

// generateExpected generates a probe for a rule of the current expected
// table through the epoch-aware session cache (steady-state probes,
// addition and deletion probes — anything probing the table as-is). The
// one-shot generator remains the fallback if no session can be built.
func (m *Monitor) generateExpected(rule *flowtable.Rule) (*probe.Probe, error) {
	sess, err := m.cache.Session(m.updateEpoch)
	if err != nil {
		return m.gen.Generate(m.expected, rule)
	}
	return sess.Generate(rule)
}

// errUnmonitorable marks generation failures in stats without alarming.
func (m *Monitor) noteGenFailure(err error) {
	m.Stats.GenerationFailed++
	if err == probe.ErrUnmonitorable {
		m.Stats.Unmonitorable++
	}
}

// String identifies the monitor in logs.
func (m *Monitor) String() string { return fmt.Sprintf("monitor(S%d)", m.Cfg.SwitchID) }
