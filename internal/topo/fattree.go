package topo

import (
	"fmt"

	"monocle/internal/coloring"
	"monocle/internal/flowtable"
)

// FatTree models the k-ary fat-tree of the §8.4 experiment as an explicit
// switch/port wiring, not just a graph: (k/2)² core switches, k pods of
// k/2 aggregation and k/2 edge switches, with one host port per edge
// switch (the paper attaches a single emulated hypervisor per ToR). k=4
// gives the paper's 20-switch network.
type FatTree struct {
	K int
	// Switch indices.
	Core []int
	Agg  [][]int // [pod][i]
	Edge [][]int // [pod][i]
	// Links[(u,v)] = port of u facing v.
	ports map[[2]int]flowtable.PortID
	// HostPort is the edge-switch port facing its host.
	HostPort map[int]flowtable.PortID
	N        int
	graph    *coloring.Graph
}

// NewFatTree builds the wiring for an even k ≥ 2.
func NewFatTree(k int) *FatTree {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree k must be even and >= 2, got %d", k))
	}
	half := k / 2
	ft := &FatTree{
		K:        k,
		ports:    make(map[[2]int]flowtable.PortID),
		HostPort: make(map[int]flowtable.PortID),
	}
	next := 0
	alloc := func() int { v := next; next++; return v }
	for i := 0; i < half*half; i++ {
		ft.Core = append(ft.Core, alloc())
	}
	ft.Agg = make([][]int, k)
	ft.Edge = make([][]int, k)
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			ft.Agg[p] = append(ft.Agg[p], alloc())
		}
		for i := 0; i < half; i++ {
			ft.Edge[p] = append(ft.Edge[p], alloc())
		}
	}
	ft.N = next
	ft.graph = coloring.NewGraph(ft.N)
	portCount := make([]flowtable.PortID, ft.N)
	link := func(u, v int) {
		portCount[u]++
		portCount[v]++
		ft.ports[[2]int{u, v}] = portCount[u]
		ft.ports[[2]int{v, u}] = portCount[v]
		ft.graph.AddEdge(u, v)
	}
	// Core i*half+j connects to aggregation switch i of every pod... the
	// standard wiring: agg i in each pod connects to cores
	// [i*half, (i+1)*half).
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				link(ft.Agg[p][i], ft.Core[i*half+j])
			}
			for e := 0; e < half; e++ {
				link(ft.Agg[p][i], ft.Edge[p][e])
			}
		}
		for e := 0; e < half; e++ {
			portCount[ft.Edge[p][e]]++
			ft.HostPort[ft.Edge[p][e]] = portCount[ft.Edge[p][e]]
		}
	}
	return ft
}

// Graph returns the adjacency graph (for coloring).
func (ft *FatTree) Graph() *coloring.Graph { return ft.graph }

// Port returns u's port facing v.
func (ft *FatTree) Port(u, v int) (flowtable.PortID, bool) {
	p, ok := ft.ports[[2]int{u, v}]
	return p, ok
}

// Neighbors lists v's adjacent switches.
func (ft *FatTree) Neighbors(v int) []int { return ft.graph.Neighbors(v) }

// EdgeSwitches flattens the edge layer.
func (ft *FatTree) EdgeSwitches() []int {
	var out []int
	for _, pod := range ft.Edge {
		out = append(out, pod...)
	}
	return out
}

// Path computes a shortest switch path between two edge switches using
// BFS (deterministic tie-breaking by index order).
func (ft *FatTree) Path(src, dst int) []int {
	return BFSPath(ft.graph, src, dst)
}

// BFSPath returns a shortest path in g from src to dst inclusive, or nil.
func BFSPath(g *coloring.Graph, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if prev[w] == -1 {
				prev[w] = v
				if w == dst {
					var path []int
					for x := dst; x != src; x = prev[x] {
						path = append([]int{x}, path...)
					}
					return append([]int{src}, path...)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}
