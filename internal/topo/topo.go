// Package topo provides network topologies: a FatTree builder for the
// §8.4 experiment, shortest-path routing, and deterministic synthetic
// topology corpora standing in for the Internet Topology Zoo (261 graphs,
// up to 754 switches) and Rocketfuel (10 graphs, up to ~11800 switches)
// used by Figure 9. The synthetic families (ring, tree, grid, Waxman-like
// geometric, preferential attachment, sparse Erdős–Rényi) span the same
// size range and sparsity regime as the real corpora, which is what the
// chromatic-number CDF depends on.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"monocle/internal/coloring"
)

// Topology is a named undirected graph.
type Topology struct {
	Name  string
	Graph *coloring.Graph
}

// Ring returns the n-cycle.
func Ring(n int) Topology {
	g := coloring.NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return Topology{Name: fmt.Sprintf("ring%d", n), Graph: g}
}

// Star returns a hub with n-1 leaves.
func Star(n int) Topology {
	g := coloring.NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return Topology{Name: fmt.Sprintf("star%d", n), Graph: g}
}

// Tree returns a complete b-ary tree with n vertices.
func Tree(n, b int) Topology {
	g := coloring.NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/b)
	}
	return Topology{Name: fmt.Sprintf("tree%d-%d", n, b), Graph: g}
}

// Grid returns an r×c mesh.
func Grid(r, c int) Topology {
	g := coloring.NewGraph(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return Topology{Name: fmt.Sprintf("grid%dx%d", r, c), Graph: g}
}

// Waxman returns a geometric random WAN-like graph: vertices in the unit
// square, edge probability decaying with distance, patched to be
// connected. This is the classic model for ISP-like topologies.
func Waxman(n int, alpha, beta float64, seed int64) Topology {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	g := coloring.NewGraph(n)
	maxD := math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxD)) {
				g.AddEdge(i, j)
			}
		}
	}
	connect(g, rng)
	return Topology{Name: fmt.Sprintf("waxman%d-%d", n, seed), Graph: g}
}

// PreferentialAttachment returns a Barabási–Albert-style graph where each
// new vertex attaches to m existing ones with degree bias (hub-and-spoke
// ISP shapes).
func PreferentialAttachment(n, m int, seed int64) Topology {
	rng := rand.New(rand.NewSource(seed))
	g := coloring.NewGraph(n)
	var targets []int // degree-weighted multiset
	for v := 0; v < n; v++ {
		if v == 0 {
			targets = append(targets, 0)
			continue
		}
		k := m
		if v < m {
			k = v
		}
		chosen := map[int]bool{}
		for len(chosen) < k {
			w := targets[rng.Intn(len(targets))]
			if w != v {
				chosen[w] = true
			}
		}
		for w := range chosen {
			g.AddEdge(v, w)
			targets = append(targets, w)
		}
		targets = append(targets, v)
	}
	return Topology{Name: fmt.Sprintf("pa%d-%d", n, seed), Graph: g}
}

// SparseRandom returns an Erdős–Rényi G(n, avgDeg/n) graph patched to be
// connected.
func SparseRandom(n int, avgDeg float64, seed int64) Topology {
	rng := rand.New(rand.NewSource(seed))
	g := coloring.NewGraph(n)
	p := avgDeg / float64(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	connect(g, rng)
	return Topology{Name: fmt.Sprintf("er%d-%d", n, seed), Graph: g}
}

// connect links each non-initial component to a random earlier vertex.
func connect(g *coloring.Graph, rng *rand.Rand) {
	seen := make([]bool, g.N)
	var stack []int
	visit := func(start int) {
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	if g.N == 0 {
		return
	}
	visit(0)
	for v := 1; v < g.N; v++ {
		if !seen[v] {
			g.AddEdge(v, rng.Intn(v))
			visit(v)
		}
	}
}

// ZooCorpus generates 261 synthetic topologies with the Topology Zoo's
// size profile: mostly tens of switches, a tail up to 754.
func ZooCorpus() []Topology {
	var out []Topology
	rng := rand.New(rand.NewSource(2015))
	for i := 0; i < 261; i++ {
		// Zoo sizes: median ~20, max 754.
		var n int
		switch {
		case i%20 == 19:
			n = 150 + rng.Intn(605) // tail up to 754
		case i%5 == 4:
			n = 50 + rng.Intn(100)
		default:
			n = 5 + rng.Intn(45)
		}
		seed := int64(1000 + i)
		switch i % 6 {
		case 0:
			out = append(out, Ring(n))
		case 1:
			out = append(out, Tree(n, 2+rng.Intn(3)))
		case 2:
			out = append(out, Waxman(n, 0.4, 0.15, seed))
		case 3:
			out = append(out, PreferentialAttachment(n, 1+rng.Intn(2), seed))
		case 4:
			out = append(out, SparseRandom(n, 2.5+rng.Float64(), seed))
		default:
			r := 2 + rng.Intn(8)
			out = append(out, Grid(r, (n+r-1)/r))
		}
	}
	return out
}

// RocketfuelCorpus generates 10 large ISP-scale topologies up to ~11800
// switches (router-level graphs are sparse, degree ≈ 2–4, with hubs).
func RocketfuelCorpus() []Topology {
	sizes := []int{315, 604, 960, 1300, 2100, 3000, 4500, 7000, 10200, 11800}
	var out []Topology
	for i, n := range sizes {
		seed := int64(9000 + i)
		if i%2 == 0 {
			out = append(out, PreferentialAttachment(n, 2, seed))
		} else {
			out = append(out, SparseRandom(n, 3.0, seed))
		}
		out[len(out)-1].Name = fmt.Sprintf("rocketfuel%d", n)
	}
	return out
}
