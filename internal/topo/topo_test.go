package topo

import (
	"testing"

	"monocle/internal/coloring"
)

func connected(g *coloring.Graph) bool {
	if g.N == 0 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

func TestBasicFamilies(t *testing.T) {
	if g := Ring(10).Graph; g.Edges() != 10 || !connected(g) {
		t.Fatal("ring")
	}
	if g := Star(10).Graph; g.Edges() != 9 || g.MaxDegree() != 9 {
		t.Fatal("star")
	}
	if g := Tree(15, 2).Graph; g.Edges() != 14 || !connected(g) {
		t.Fatal("tree")
	}
	if g := Grid(3, 4).Graph; g.Edges() != 3*3+2*4 || !connected(g) {
		t.Fatal("grid")
	}
}

func TestRandomFamiliesConnectedAndDeterministic(t *testing.T) {
	w1 := Waxman(100, 0.4, 0.15, 7)
	w2 := Waxman(100, 0.4, 0.15, 7)
	if w1.Graph.Edges() != w2.Graph.Edges() {
		t.Fatal("Waxman not deterministic")
	}
	if !connected(w1.Graph) {
		t.Fatal("Waxman not connected")
	}
	pa := PreferentialAttachment(200, 2, 3)
	if !connected(pa.Graph) {
		t.Fatal("PA not connected")
	}
	er := SparseRandom(150, 3, 4)
	if !connected(er.Graph) {
		t.Fatal("ER not connected")
	}
}

func TestZooCorpusProfile(t *testing.T) {
	corpus := ZooCorpus()
	if len(corpus) != 261 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	maxN, bigCount := 0, 0
	for _, tp := range corpus {
		if tp.Graph.N > maxN {
			maxN = tp.Graph.N
		}
		if tp.Graph.N > 150 {
			bigCount++
		}
		if tp.Graph.N > 0 && !connected(tp.Graph) {
			t.Fatalf("%s disconnected", tp.Name)
		}
	}
	if maxN < 300 || maxN > 760 {
		t.Fatalf("max size %d outside Zoo-like range", maxN)
	}
	if bigCount == 0 {
		t.Fatal("no large topologies in the tail")
	}
}

func TestRocketfuelCorpusProfile(t *testing.T) {
	corpus := RocketfuelCorpus()
	if len(corpus) != 10 {
		t.Fatalf("size %d", len(corpus))
	}
	if corpus[9].Graph.N != 11800 {
		t.Fatalf("largest %d", corpus[9].Graph.N)
	}
	for _, tp := range corpus {
		avgDeg := 2 * float64(tp.Graph.Edges()) / float64(tp.Graph.N)
		if avgDeg < 1.5 || avgDeg > 8 {
			t.Fatalf("%s avg degree %.1f not router-like", tp.Name, avgDeg)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	ft := NewFatTree(4)
	if ft.N != 20 {
		t.Fatalf("k=4 fat tree must have 20 switches, got %d", ft.N)
	}
	if len(ft.Core) != 4 || len(ft.Agg) != 4 || len(ft.Edge) != 4 {
		t.Fatal("layer sizes")
	}
	if ft.Graph().Edges() != 32 { // 16 core-agg + 16 agg-edge
		t.Fatalf("edges %d", ft.Graph().Edges())
	}
	if !connected(ft.Graph()) {
		t.Fatal("disconnected")
	}
	if len(ft.EdgeSwitches()) != 8 {
		t.Fatal("edge switches")
	}
	// Each edge switch has a host port distinct from its uplinks.
	for _, e := range ft.EdgeSwitches() {
		hp, ok := ft.HostPort[e]
		if !ok || hp == 0 {
			t.Fatalf("no host port for edge %d", e)
		}
		for _, n := range ft.Neighbors(e) {
			if p, _ := ft.Port(e, n); p == hp {
				t.Fatal("host port collides with uplink")
			}
		}
	}
}

func TestFatTreePorts(t *testing.T) {
	ft := NewFatTree(4)
	u, v := ft.Agg[0][0], ft.Core[0]
	pu, ok1 := ft.Port(u, v)
	pv, ok2 := ft.Port(v, u)
	if !ok1 || !ok2 || pu == 0 || pv == 0 {
		t.Fatal("port lookup")
	}
	if _, ok := ft.Port(ft.Core[0], ft.Core[1]); ok {
		t.Fatal("cores are not directly linked")
	}
}

func TestFatTreePath(t *testing.T) {
	ft := NewFatTree(4)
	edges := ft.EdgeSwitches()
	// Same pod: edge→agg→edge (3 hops).
	p := ft.Path(ft.Edge[0][0], ft.Edge[0][1])
	if len(p) != 3 {
		t.Fatalf("intra-pod path %v", p)
	}
	// Cross pod: edge→agg→core→agg→edge (5 hops).
	p = ft.Path(ft.Edge[0][0], ft.Edge[1][0])
	if len(p) != 5 {
		t.Fatalf("cross-pod path %v", p)
	}
	// Path endpoints and adjacency.
	for i := 0; i+1 < len(p); i++ {
		if _, ok := ft.Port(p[i], p[i+1]); !ok {
			t.Fatalf("path hop %d-%d not linked", p[i], p[i+1])
		}
	}
	if BFSPath(ft.Graph(), edges[0], edges[0])[0] != edges[0] {
		t.Fatal("self path")
	}
}

func TestFatTreePanicsOnOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewFatTree(3)
}
