// Package coloring solves the vertex-coloring problem Monocle uses to
// minimize the number of reserved probe-tag values and catching rules
// (§6, Figure 9). Strategy 1 needs a proper coloring of the topology graph
// (no two adjacent switches share an identifier); strategy 2 additionally
// requires distinct identifiers for any two switches with a common
// neighbour, which is a proper coloring of the square of the graph.
//
// The paper uses an exact ILP where feasible and a greedy heuristic where
// the ILP runs out of memory (strategy 2 on Rocketfuel); here the exact
// solver is an iterative-deepening branch-and-bound that is exact for the
// same regime, plus greedy largest-first and DSATUR heuristics.
package coloring

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int
	set []map[int]bool
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n), set: make([]map[int]bool, n)}
}

// AddEdge inserts an undirected edge; loops and duplicates are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	if g.set[u] == nil {
		g.set[u] = make(map[int]bool)
	}
	if g.set[v] == nil {
		g.set[v] = make(map[int]bool)
	}
	if g.set[u][v] {
		return
	}
	g.set[u][v] = true
	g.set[v][u] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports adjacency.
func (g *Graph) HasEdge(u, v int) bool { return g.set[u] != nil && g.set[u][v] }

// Neighbors returns the adjacency list of u (shared slice; do not modify).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.N; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edges counts undirected edges.
func (g *Graph) Edges() int {
	e := 0
	for v := 0; v < g.N; v++ {
		e += len(g.adj[v])
	}
	return e / 2
}

// Square returns the graph with an extra edge between every pair of
// vertices at distance two — the strategy-2 constraint graph: for each
// switch, its neighbours form a clique (§6).
func (g *Graph) Square() *Graph {
	sq := NewGraph(g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			sq.AddEdge(u, v)
		}
		for i := 0; i < len(g.adj[u]); i++ {
			for j := i + 1; j < len(g.adj[u]); j++ {
				sq.AddEdge(g.adj[u][i], g.adj[u][j])
			}
		}
	}
	return sq
}

// Valid reports whether colors is a proper coloring of g.
func Valid(g *Graph, colors []int) bool {
	if len(colors) != g.N {
		return false
	}
	for u := 0; u < g.N; u++ {
		if colors[u] < 0 {
			return false
		}
		for _, v := range g.adj[u] {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// NumColors returns the number of distinct colors used.
func NumColors(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// GreedyLargestFirst colors vertices in decreasing degree order with the
// smallest feasible color (Welsh–Powell).
func GreedyLargestFirst(g *Graph) []int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	return greedyInOrder(g, order)
}

func greedyInOrder(g *Graph, order []int) []int {
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.N+1)
	for _, v := range order {
		for i := range used {
			used[i] = false
		}
		for _, w := range g.adj[v] {
			if colors[w] >= 0 {
				used[colors[w]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// DSATUR colors by maximum color-saturation first (Brélaz), typically
// using fewer colors than largest-first on sparse graphs.
func DSATUR(g *Graph) []int {
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	sat := make([]map[int]bool, g.N)
	for i := range sat {
		sat[i] = map[int]bool{}
	}
	for done := 0; done < g.N; done++ {
		// Pick uncolored vertex with max saturation, tie-break degree.
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < g.N; v++ {
			if colors[v] >= 0 {
				continue
			}
			s, d := len(sat[v]), g.Degree(v)
			if s > bestSat || (s == bestSat && d > bestDeg) {
				best, bestSat, bestDeg = v, s, d
			}
		}
		c := 0
		for sat[best][c] {
			c++
		}
		colors[best] = c
		for _, w := range g.adj[best] {
			sat[w][c] = true
		}
	}
	return colors
}

// Exact computes an optimal coloring by iterative deepening on k with a
// DSATUR-ordered branch-and-bound. maxNodes bounds the search effort;
// when exceeded the best heuristic coloring found so far is returned with
// exact=false. The paper's ILP plays the same role ("solving takes only a
// couple of minutes for all 261+10 topologies").
func Exact(g *Graph, maxNodes int64) (colors []int, exact bool) {
	best := DSATUR(g)
	ub := NumColors(best)
	lb := cliqueLowerBound(g)
	if lb >= ub {
		return best, true
	}
	for k := lb; k < ub; k++ {
		nodes := maxNodes
		if sol, ok := colorWithK(g, k, &nodes); ok {
			return sol, true
		} else if nodes <= 0 {
			return best, false // budget exhausted: fall back to heuristic
		}
	}
	return best, true
}

// cliqueLowerBound finds a greedy clique to lower-bound the chromatic
// number.
func cliqueLowerBound(g *Graph) int {
	if g.N == 0 {
		return 0
	}
	bestLen := 1
	for start := 0; start < g.N; start++ {
		clique := []int{start}
		cand := append([]int{}, g.adj[start]...)
		sort.Slice(cand, func(a, b int) bool { return g.Degree(cand[a]) > g.Degree(cand[b]) })
		for _, v := range cand {
			inClique := true
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					inClique = false
					break
				}
			}
			if inClique {
				clique = append(clique, v)
			}
		}
		if len(clique) > bestLen {
			bestLen = len(clique)
		}
		if start > 64 { // sampling suffices for a bound
			break
		}
	}
	return bestLen
}

// colorWithK tries to properly color g with exactly ≤k colors.
func colorWithK(g *Graph, k int, nodes *int64) ([]int, bool) {
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	// Static DSATUR-ish order: decreasing degree.
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })

	var dfs func(pos int, maxUsed int) bool
	dfs = func(pos int, maxUsed int) bool {
		*nodes--
		if *nodes <= 0 {
			return false
		}
		if pos == g.N {
			return true
		}
		v := order[pos]
		forbidden := 0 // bitmask for k <= 63; fallback slice otherwise
		var forbiddenBig []bool
		if k > 63 {
			forbiddenBig = make([]bool, k)
		}
		for _, w := range g.adj[v] {
			if c := colors[w]; c >= 0 {
				if forbiddenBig != nil {
					forbiddenBig[c] = true
				} else {
					forbidden |= 1 << c
				}
			}
		}
		// Symmetry breaking: allow at most one brand-new color.
		limit := maxUsed + 1
		if limit > k-1 {
			limit = k - 1
		}
		for c := 0; c <= limit; c++ {
			bad := false
			if forbiddenBig != nil {
				bad = forbiddenBig[c]
			} else {
				bad = forbidden&(1<<c) != 0
			}
			if bad {
				continue
			}
			colors[v] = c
			nm := maxUsed
			if c > nm {
				nm = c
			}
			if dfs(pos+1, nm) {
				return true
			}
			colors[v] = -1
			if *nodes <= 0 {
				return false
			}
		}
		return false
	}
	if g.N == 0 {
		return colors, true
	}
	if dfs(0, -1) {
		return colors, true
	}
	return nil, false
}

// Assignment summarizes a catching-rule plan for one strategy.
type Assignment struct {
	Colors []int
	// Values is the number of reserved header-field values (= colors).
	Values int
	// Exact reports whether the coloring is provably optimal.
	Exact bool
}

// PlanStrategy1 colors the topology graph (probes of neighbours must be
// distinguishable: adjacent switches need distinct identifiers).
func PlanStrategy1(g *Graph, budget int64) Assignment {
	c, exact := Exact(g, budget)
	return Assignment{Colors: c, Values: NumColors(c), Exact: exact}
}

// PlanStrategy2 colors the square graph (two-field scheme: switches with a
// common neighbour also need distinct identifiers; the count is at least
// maxdegree, §8.3.2).
func PlanStrategy2(g *Graph, budget int64) Assignment {
	sq := g.Square()
	c, exact := Exact(sq, budget)
	return Assignment{Colors: c, Values: NumColors(c), Exact: exact}
}

// NoColoring is the baseline: every switch gets its own value (§6's
// "basic version").
func NoColoring(g *Graph) Assignment {
	c := make([]int, g.N)
	for i := range c {
		c[i] = i
	}
	return Assignment{Colors: c, Values: g.N, Exact: true}
}

// String renders an assignment.
func (a Assignment) String() string {
	return fmt.Sprintf("%d values (exact=%v)", a.Values, a.Exact)
}
