package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func complete(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func petersen() *Graph {
	g := NewGraph(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(2, 2) // loop ignored
	g.AddEdge(1, 3)
	if g.Edges() != 2 || !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatalf("edges=%d", g.Edges())
	}
	if g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Fatal("degree")
	}
}

func TestChromaticNumbersKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		chi  int
	}{
		{"path10", path(10), 2},
		{"evencycle", cycle(8), 2},
		{"oddcycle", cycle(9), 3},
		{"K5", complete(5), 5},
		{"star20", star(20), 2},
		{"petersen", petersen(), 3},
		{"single", NewGraph(1), 1},
		{"empty", NewGraph(0), 0},
	}
	for _, c := range cases {
		colors, exact := Exact(c.g, 1_000_000)
		if !exact {
			t.Fatalf("%s: budget exhausted", c.name)
		}
		if !Valid(c.g, colors) && c.g.N > 0 {
			t.Fatalf("%s: invalid coloring", c.name)
		}
		if NumColors(colors) != c.chi {
			t.Fatalf("%s: chi=%d want %d", c.name, NumColors(colors), c.chi)
		}
	}
}

func TestHeuristicsValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		g := NewGraph(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for name, colors := range map[string][]int{
			"greedy": GreedyLargestFirst(g),
			"dsatur": DSATUR(g),
		} {
			if !Valid(g, colors) {
				t.Fatalf("%s produced invalid coloring", name)
			}
			if NumColors(colors) > g.MaxDegree()+1 {
				t.Fatalf("%s exceeded Brooks bound", name)
			}
		}
	}
}

// Property: Exact never uses more colors than DSATUR, and both are valid.
func TestExactAtMostDSATUR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		g := NewGraph(n)
		for i := 0; i < n+rng.Intn(2*n); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		ex, _ := Exact(g, 200_000)
		ds := DSATUR(g)
		return Valid(g, ex) && Valid(g, ds) && NumColors(ex) <= NumColors(ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareGraph(t *testing.T) {
	// Path 0-1-2: square adds 0-2.
	g := path(3)
	sq := g.Square()
	if !sq.HasEdge(0, 2) || !sq.HasEdge(0, 1) || sq.Edges() != 3 {
		t.Fatalf("square of P3 wrong: %d edges", sq.Edges())
	}
	// Star: square is a clique.
	st := star(6)
	sqs := st.Square()
	if sqs.Edges() != 15 {
		t.Fatalf("square of star should be K6: %d edges", sqs.Edges())
	}
}

func TestPlans(t *testing.T) {
	g := star(10) // center + 9 leaves
	s1 := PlanStrategy1(g, 1_000_000)
	if s1.Values != 2 {
		t.Fatalf("strategy 1 on a star needs 2 values, got %d", s1.Values)
	}
	s2 := PlanStrategy2(g, 1_000_000)
	if s2.Values != 10 {
		// Square of a star is K10: all switches share the hub.
		t.Fatalf("strategy 2 on a star needs 10 values, got %d", s2.Values)
	}
	// Strategy 2 is lower-bounded by maxdegree+1 (§8.3.2 observation).
	if s2.Values < g.MaxDegree() {
		t.Fatal("strategy 2 below degree bound")
	}
	nc := NoColoring(g)
	if nc.Values != 10 || !Valid(g, nc.Colors) {
		t.Fatal("no-coloring baseline")
	}
	if s1.String() == "" {
		t.Fatal("String")
	}
}

func TestExactBudgetFallback(t *testing.T) {
	// A graph hard enough that 1 node of budget is insufficient; the
	// fallback must still be a valid DSATUR coloring.
	g := complete(8)
	for i := 8; i < 16; i++ {
		// attach a pendant to each clique vertex
	}
	colors, _ := Exact(g, 1)
	if !Valid(g, colors) {
		t.Fatal("fallback coloring invalid")
	}
}

func TestValidRejects(t *testing.T) {
	g := path(3)
	if Valid(g, []int{0, 0, 1}) {
		t.Fatal("adjacent same color accepted")
	}
	if Valid(g, []int{0, 1}) {
		t.Fatal("wrong length accepted")
	}
	if Valid(g, []int{0, -1, 0}) {
		t.Fatal("uncolored accepted")
	}
}

func BenchmarkExactMediumGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	g := NewGraph(n)
	for i := 0; i < 2*n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g, 2_000_000)
	}
}
