package dataset

import (
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

func TestGenerateSizes(t *testing.T) {
	for _, p := range []Profile{Stanford(), Campus()} {
		tb, rules := Generate(p)
		if tb.Len() != p.Rules || len(rules) != p.Rules {
			t.Fatalf("%s: got %d rules want %d", p.Name, tb.Len(), p.Rules)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, a := Generate(Stanford())
	_, b := Generate(Stanford())
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("rule %d differs", i)
		}
	}
}

func TestRulesWellFormed(t *testing.T) {
	_, rules := Generate(Stanford())
	deps := header.Dependencies()
	for _, r := range rules {
		for f, dep := range deps {
			if r.Match[f].IsWildcard() {
				continue
			}
			// A conditionally-included field may be matched only when
			// its parent is exact-matched to an including value.
			pt := r.Match[dep.Parent]
			if !pt.IsExact(dep.Parent) {
				t.Fatalf("rule %d matches %s without pinning %s", r.ID, f, dep.Parent)
			}
			ok := false
			for _, v := range dep.ParentValues {
				if pt.Value == v {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("rule %d: %s matched under wrong parent value %#x", r.ID, f, pt.Value)
			}
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMixFractions(t *testing.T) {
	p := Campus()
	_, rules := Generate(p)
	drops, ports := 0, 0
	for _, r := range rules {
		if r.IsDrop() {
			drops++
		}
		if !r.Match[header.TPSrc].IsWildcard() || !r.Match[header.TPDst].IsWildcard() {
			ports++
		}
	}
	denyFrac := float64(drops) / float64(len(rules))
	if denyFrac < p.DenyFraction-0.1 || denyFrac > p.DenyFraction+0.1 {
		t.Fatalf("deny fraction %.2f want ≈%.2f", denyFrac, p.DenyFraction)
	}
	portFrac := float64(ports) / float64(len(rules))
	if portFrac < p.PortFraction-0.1 || portFrac > p.PortFraction+0.1 {
		t.Fatalf("port fraction %.2f want ≈%.2f", portFrac, p.PortFraction)
	}
}

func TestOverlapStructureExists(t *testing.T) {
	tb, rules := Generate(Stanford())
	overlapping := 0
	sample := rules
	if len(sample) > 200 {
		sample = sample[:200]
	}
	for _, r := range sample {
		if len(tb.Overlapping(r)) > 0 {
			overlapping++
		}
	}
	if overlapping < len(sample)/2 {
		t.Fatalf("too little overlap: %d/%d", overlapping, len(sample))
	}
}

func TestDefaultRoutePresent(t *testing.T) {
	tb, _ := Generate(Stanford())
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.IPSrc, 0x01020304)
	h.Set(header.IPDst, 0x05060708)
	if tb.Lookup(h) == nil {
		t.Fatal("no rule matched a generic packet — default route missing")
	}
}

func TestPrioritiesStrictlyOrdered(t *testing.T) {
	_, rules := Generate(Stanford())
	seen := map[int]flowtable.Match{}
	for _, r := range rules {
		if prev, ok := seen[r.Priority]; ok && prev.Overlaps(r.Match) {
			t.Fatalf("equal-priority overlap at %d", r.Priority)
		}
		seen[r.Priority] = r.Match
	}
}
