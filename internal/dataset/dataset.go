// Package dataset generates synthetic ACL-style rule sets standing in for
// the two proprietary corpora of Table 2: the Stanford backbone router
// "yoza" configuration (2755 rules) and a large campus network's ACLs
// (10958 rules). The paper observes that probe-generation time "depends
// mostly on the number of rules, and not on the rule composition", so the
// generator reproduces what does matter: rule count, the field-usage mix
// of ACLs (source/destination prefixes, protocol, transport ports), a
// deny/permit mix, and the prefix-nesting that creates rule overlaps.
//
// Rules are well-formed in the §5.2 sense (transport ports only matched
// under a pinned IPv4/TCP-or-UDP parent) and carry strictly decreasing
// priorities, matching first-match ACL semantics.
package dataset

import (
	"math/rand"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// Profile shapes a generated rule set.
type Profile struct {
	Name  string
	Rules int
	// PrefixPool is the number of distinct address prefixes drawn from
	// the synthetic trie; smaller pools create more overlap.
	PrefixPool int
	// DenyFraction is the fraction of drop rules.
	DenyFraction float64
	// PortFraction is the fraction of rules matching transport ports.
	PortFraction float64
	// RewriteFraction is the fraction of forwarding rules that also
	// rewrite the ToS field (QoS marking).
	RewriteFraction float64
	// Ports is the number of egress ports forwarding rules spread over.
	Ports int
	Seed  int64
}

// Stanford approximates the "yoza" router rule set size and shape.
func Stanford() Profile {
	return Profile{
		Name: "Stanford", Rules: 2755, PrefixPool: 1400,
		DenyFraction: 0.35, PortFraction: 0.55, RewriteFraction: 0.05,
		Ports: 16, Seed: 0x5714f02d,
	}
}

// Campus approximates the large-scale campus ACL corpus.
func Campus() Profile {
	return Profile{
		Name: "Campus", Rules: 10958, PrefixPool: 5200,
		DenyFraction: 0.45, PortFraction: 0.65, RewriteFraction: 0.03,
		Ports: 24, Seed: 0xca3b05,
	}
}

// prefix is one entry of the synthetic address trie.
type prefix struct {
	value uint64
	plen  int
}

// buildPrefixPool draws prefixes from a random binary trie: a mix of
// short aggregates and long host routes, with nesting (children refine
// parents), which is what produces realistic overlap structure.
func buildPrefixPool(rng *rand.Rand, n int) []prefix {
	pool := make([]prefix, 0, n)
	// Aggregates.
	for len(pool) < n/4 {
		plen := 8 + rng.Intn(9) // /8../16
		v := uint64(rng.Uint32()) &^ ((1 << (32 - plen)) - 1)
		pool = append(pool, prefix{v, plen})
	}
	// Refinements of existing prefixes plus fresh subnets and hosts.
	for len(pool) < n {
		switch rng.Intn(3) {
		case 0: // refine an aggregate
			p := pool[rng.Intn(len(pool))]
			plen := p.plen + 4 + rng.Intn(8)
			if plen > 32 {
				plen = 32
			}
			v := p.value | (uint64(rng.Uint32()) & ((1 << (32 - p.plen)) - 1))
			v &^= (1 << (32 - plen)) - 1
			pool = append(pool, prefix{v, plen})
		case 1: // subnet
			plen := 20 + rng.Intn(9)
			v := uint64(rng.Uint32()) &^ ((1 << (32 - plen)) - 1)
			pool = append(pool, prefix{v, plen})
		default: // host route
			pool = append(pool, prefix{uint64(rng.Uint32()), 32})
		}
	}
	return pool
}

// wellKnownPorts is the service-port distribution of campus/backbone ACLs.
var wellKnownPorts = []uint64{22, 23, 25, 53, 80, 110, 123, 143, 161, 443, 445, 993, 1433, 3306, 3389, 5432, 8080}

// Generate materializes the profile into a flow table plus the rule list
// in priority order (highest first). Every rule set includes a lowest
// priority default-forward rule, like a backbone router's default route.
func Generate(p Profile) (*flowtable.Table, []*flowtable.Rule) {
	rng := rand.New(rand.NewSource(p.Seed))
	pool := buildPrefixPool(rng, p.PrefixPool)
	tb := flowtable.New()
	var rules []*flowtable.Rule

	mkMatch := func() flowtable.Match {
		m := flowtable.MatchAll().WithExact(header.EthType, header.EthTypeIPv4)
		// ACL entries almost always constrain src and/or dst.
		style := rng.Intn(10)
		if style < 8 {
			pf := pool[rng.Intn(len(pool))]
			m = m.With(header.IPSrc, header.Prefix(header.IPSrc, pf.value, pf.plen))
		}
		if style >= 2 {
			pf := pool[rng.Intn(len(pool))]
			m = m.With(header.IPDst, header.Prefix(header.IPDst, pf.value, pf.plen))
		}
		if rng.Float64() < p.PortFraction {
			proto := header.ProtoTCP
			if rng.Intn(3) == 0 {
				proto = header.ProtoUDP
			}
			m = m.WithExact(header.IPProto, proto)
			port := wellKnownPorts[rng.Intn(len(wellKnownPorts))]
			if rng.Intn(2) == 0 {
				m = m.WithExact(header.TPDst, port)
			} else {
				m = m.WithExact(header.TPSrc, port)
			}
		} else if rng.Intn(4) == 0 {
			m = m.WithExact(header.IPProto, header.ProtoICMP)
		}
		return m
	}

	for id := 0; len(rules) < p.Rules-1; id++ {
		prio := p.Rules - len(rules) + 10 // strictly decreasing
		r := &flowtable.Rule{ID: uint64(id), Priority: prio, Match: mkMatch()}
		if rng.Float64() >= p.DenyFraction {
			out := flowtable.PortID(1 + rng.Intn(p.Ports))
			if rng.Float64() < p.RewriteFraction {
				r.Actions = append(r.Actions, flowtable.SetField(header.IPTos, uint64(rng.Intn(64))<<2))
			}
			r.Actions = append(r.Actions, flowtable.Output(out))
		}
		if err := tb.Insert(r); err != nil {
			continue // regenerate on the rare same-priority clash
		}
		rules = append(rules, r)
	}
	// Default route.
	def := &flowtable.Rule{
		ID:       uint64(p.Rules + 1),
		Priority: 1,
		Match:    flowtable.MatchAll(),
		Actions:  []flowtable.Action{flowtable.Output(flowtable.PortID(1 + rng.Intn(p.Ports)))},
	}
	if err := tb.Insert(def); err == nil {
		rules = append(rules, def)
	}
	return tb, rules
}
