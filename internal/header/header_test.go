package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLayout(t *testing.T) {
	if TotalBits != 16+48+48+16+16+3+32+32+8+8+16+16 {
		t.Fatalf("TotalBits=%d", TotalBits)
	}
	if Offset(InPort) != 0 {
		t.Fatal("InPort offset")
	}
	// Offsets must be contiguous.
	off := 0
	for f := FieldID(0); f < NumFields; f++ {
		if Offset(f) != off {
			t.Fatalf("offset(%s)=%d want %d", f, Offset(f), off)
		}
		off += Width(f)
	}
}

func TestBitVarMapping(t *testing.T) {
	if BitVar(InPort, 0) != 1 {
		t.Fatalf("first bit must be var 1, got %d", BitVar(InPort, 0))
	}
	if BitVar(TPDst, Width(TPDst)-1) != TotalBits {
		t.Fatalf("last bit must be var %d", TotalBits)
	}
	seen := map[int]bool{}
	for f := FieldID(0); f < NumFields; f++ {
		for b := 0; b < Width(f); b++ {
			v := BitVar(f, b)
			if v < 1 || v > TotalBits || seen[v] {
				t.Fatalf("BitVar(%s,%d)=%d invalid/duplicate", f, b, v)
			}
			seen[v] = true
		}
	}
}

func TestBitVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range bit")
		}
	}()
	BitVar(VlanPCP, 3)
}

func TestHeaderSetGetTruncates(t *testing.T) {
	var h Header
	h.Set(VlanPCP, 0xff)
	if h.Get(VlanPCP) != 0x7 {
		t.Fatalf("got %#x, want truncation to width", h.Get(VlanPCP))
	}
	h.Set(IPSrc, 0x1_0000_0001)
	if h.Get(IPSrc) != 1 {
		t.Fatalf("got %#x", h.Get(IPSrc))
	}
}

func TestHeaderBitMSBFirst(t *testing.T) {
	var h Header
	h.Set(IPProto, 0x80) // MSB of the 8-bit field
	if !h.Bit(IPProto, 0) || h.Bit(IPProto, 7) {
		t.Fatal("Bit() must be MSB-first")
	}
}

func TestFromModelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Header
		for fid := FieldID(0); fid < NumFields; fid++ {
			h.Set(fid, rng.Uint64())
		}
		model := make([]bool, TotalBits+1)
		for fid := FieldID(0); fid < NumFields; fid++ {
			for b := 0; b < Width(fid); b++ {
				model[BitVar(fid, b)] = h.Bit(fid, b)
			}
		}
		return FromModel(model) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTernaryExact(t *testing.T) {
	tn := Exact(EthType, EthTypeIPv4)
	if !tn.IsExact(EthType) || tn.IsWildcard() {
		t.Fatal("Exact flags")
	}
	if !tn.Covers(EthTypeIPv4) || tn.Covers(EthTypeARP) {
		t.Fatal("Covers")
	}
}

func TestTernaryPrefix(t *testing.T) {
	// 10.0.0.0/24
	v := uint64(10)<<24 | 0
	p := Prefix(IPSrc, v, 24)
	if !p.Covers(v | 5) {
		t.Fatal("prefix must cover host bits")
	}
	if p.Covers(uint64(11) << 24) {
		t.Fatal("prefix must reject other networks")
	}
	if Prefix(IPSrc, 0, 0) != Wildcard() {
		t.Fatal("zero-length prefix is wildcard")
	}
	full := Prefix(IPSrc, v|5, 32)
	if !full.IsExact(IPSrc) {
		t.Fatal("/32 is exact")
	}
}

func TestTernaryPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad prefix length")
		}
	}()
	Prefix(IPSrc, 0, 33)
}

func TestTernaryOverlapSubsume(t *testing.T) {
	a := Prefix(IPSrc, 10<<24, 8)  // 10/8
	b := Prefix(IPSrc, 10<<24, 24) // 10.0.0/24
	c := Prefix(IPSrc, 11<<24, 8)  // 11/8
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes must not overlap")
	}
	if !a.Subsumes(b) || b.Subsumes(a) {
		t.Fatal("subsume direction")
	}
	w := Wildcard()
	if !w.Overlaps(a) || !w.Subsumes(a) || a.Subsumes(w) {
		t.Fatal("wildcard relations")
	}
}

// Property: Overlaps is symmetric and implied by a shared covered value.
func TestOverlapsProperty(t *testing.T) {
	f := func(v1, m1, v2, m2 uint32) bool {
		a := Ternary{Value: uint64(v1), Mask: uint64(m1)}
		b := Ternary{Value: uint64(v2), Mask: uint64(m2)}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		if a.Overlaps(b) {
			// Construct the witness: agree on common bits, take each
			// side's value on its own bits.
			w := (a.Value & a.Mask) | (b.Value & b.Mask &^ a.Mask)
			return a.Covers(w) && b.Covers(w)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRender(t *testing.T) {
	if Wildcard().Render(IPSrc) != "*" {
		t.Fatal("wildcard render")
	}
	if Exact(IPProto, 6).Render(IPProto) != "0x6" {
		t.Fatalf("exact render: %s", Exact(IPProto, 6).Render(IPProto))
	}
	if Prefix(IPSrc, 10<<24, 8).Render(IPSrc) == "*" {
		t.Fatal("prefix render")
	}
}

func TestFieldString(t *testing.T) {
	if InPort.String() != "in_port" || TPDst.String() != "tp_dst" {
		t.Fatal("field names")
	}
	if FieldID(99).String() != "field(99)" {
		t.Fatal("out-of-range field name")
	}
}

func TestDomains(t *testing.T) {
	d := DefaultDomains()
	if !d[EthType].Contains(EthTypeIPv4) || d[EthType].Contains(EthTypeARP) {
		t.Fatal("dl_type domain")
	}
	if !d[IPProto].Contains(ProtoTCP) || d[IPProto].Contains(2) {
		t.Fatal("nw_proto domain")
	}
	if !d[VlanID].Contains(100) || !d[VlanID].Contains(VlanNone) || d[VlanID].Contains(5000) {
		t.Fatal("dl_vlan domain")
	}
	if d[VlanPCP].Full() != true {
		t.Fatal("pcp full")
	}
}

func TestDomainSpare(t *testing.T) {
	d := Domain{Values: []uint64{1, 6, 17}}
	used := map[uint64]bool{1: true, 6: true}
	v, ok := d.Spare(used, 255)
	if !ok || v != 17 {
		t.Fatalf("spare=%d ok=%v", v, ok)
	}
	used[17] = true
	if _, ok := d.Spare(used, 255); ok {
		t.Fatal("no spare should remain")
	}
	full := Domain{}
	v, ok = full.Spare(map[uint64]bool{0: true, 1: true}, 10)
	if !ok || v != 2 {
		t.Fatalf("full-domain spare=%d ok=%v", v, ok)
	}
}

func TestDependencies(t *testing.T) {
	deps := Dependencies()
	if deps[TPSrc].Parent != IPProto {
		t.Fatal("tp_src parent")
	}
	if deps[IPSrc].Parent != EthType {
		t.Fatal("nw_src parent")
	}
	if _, ok := deps[EthSrc]; ok {
		t.Fatal("dl_src is unconditional")
	}
	if !PCPRequiresTag(VlanNone) || PCPRequiresTag(100) {
		t.Fatal("PCPRequiresTag")
	}
}
