package header

// This file models the two technical concerns of translating an abstract
// SAT solution into data a packet-crafting library will accept (§5.2):
//
//  1. limited domains of some field values (e.g. dl_type must be a real
//     EtherType, nw_proto must be a protocol the crafting library knows),
//     handled either by an explicit "must be one of" constraint for small
//     domains or by the spare-value substitution lemma for large ones; and
//
//  2. conditionally-included fields (e.g. tp_src exists only when
//     nw_proto selects TCP/UDP), captured as a parent-field dependency
//     tree that the prober uses to eliminate conditionally-excluded
//     fields from the solution.

// Domain describes the set of values a field may take in a valid packet.
type Domain struct {
	// Values enumerates the domain if it is small; nil means the domain
	// is the field's full range (subject to ExcludedRanges).
	Values []uint64
	// ExcludedRanges lists inclusive [lo,hi] ranges of invalid values
	// carved out of an otherwise full range (e.g. dl_vlan
	// 0xfff..0xfffe between the valid VIDs and the VlanNone sentinel).
	ExcludedRanges [][2]uint64
}

// Full reports whether the domain is the field's entire range.
func (d Domain) Full() bool { return d.Values == nil && len(d.ExcludedRanges) == 0 }

// Contains reports whether v is a valid domain value.
func (d Domain) Contains(v uint64) bool {
	if d.Values != nil {
		for _, x := range d.Values {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, r := range d.ExcludedRanges {
		if v >= r[0] && v <= r[1] {
			return false
		}
	}
	return true
}

// Spare returns a domain value not present in `used`, for the spare-value
// substitution of §5.2 ("assume the domain contains at least one spare
// value"). The max argument bounds the search for full-range domains.
// ok is false when no spare value exists.
func (d Domain) Spare(used map[uint64]bool, max uint64) (uint64, bool) {
	if d.Values != nil {
		for _, v := range d.Values {
			if !used[v] {
				return v, true
			}
		}
		return 0, false
	}
	for v := uint64(0); v <= max; v++ {
		if !used[v] && d.Contains(v) {
			return v, true
		}
	}
	return 0, false
}

// DefaultDomains returns the per-field value domains assumed by the
// reference packet crafter. dl_type is restricted to IPv4 (probes are IPv4
// packets so that the full 12-tuple is exercisable); nw_proto to
// ICMP/TCP/UDP; dl_vlan to valid VIDs plus the no-tag sentinel.
func DefaultDomains() map[FieldID]Domain {
	return map[FieldID]Domain{
		EthType: {Values: []uint64{EthTypeIPv4}},
		IPProto: {Values: []uint64{ProtoICMP, ProtoTCP, ProtoUDP}},
		VlanPCP: {}, // full 3-bit range
		// dl_vlan: VIDs 0..4094 are valid, 4095 is reserved, and
		// 0xffff is the "untagged" sentinel. Everything in between is
		// invalid on the wire.
		VlanID: {ExcludedRanges: [][2]uint64{{4095, VlanNone - 1}}},
	}
}

// Dependency describes a conditionally-included field (§5.2): the field is
// present in a real packet only when Parent takes one of ParentValues.
type Dependency struct {
	Parent       FieldID
	ParentValues []uint64
}

// Dependencies returns the conditional-inclusion tree for the OpenFlow 1.0
// abstract packet:
//
//	nw_* fields require dl_type == IPv4;
//	tp_* fields require nw_proto in {TCP, UDP} (for ICMP the "ports"
//	carry type/code per the OpenFlow 1.0 convention, which we treat as
//	included);
//	dl_vlan_pcp requires a VLAN tag to be present (dl_vlan != VlanNone).
//
// dl_vlan_pcp is handled specially by callers because its condition is an
// inequality; here it is expressed as "parent dl_vlan with the valid-VID
// enumeration" being impractical, so PCPRequiresTag is exposed instead.
func Dependencies() map[FieldID]Dependency {
	ipOnly := Dependency{Parent: EthType, ParentValues: []uint64{EthTypeIPv4}}
	tports := Dependency{Parent: IPProto, ParentValues: []uint64{ProtoTCP, ProtoUDP, ProtoICMP}}
	return map[FieldID]Dependency{
		IPSrc:   ipOnly,
		IPDst:   ipOnly,
		IPProto: ipOnly,
		IPTos:   ipOnly,
		TPSrc:   tports,
		TPDst:   tports,
	}
}

// PCPRequiresTag reports whether the dl_vlan_pcp field is conditionally
// excluded for the given dl_vlan value (no tag → no PCP bits).
func PCPRequiresTag(vlanID uint64) bool { return vlanID == VlanNone }
