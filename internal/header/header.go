// Package header defines the abstract packet view used throughout Monocle
// (§5.1 of the paper): instead of representing a packet as a stream of bits
// with complex wire-format dependencies, a packet is a series of abstract
// fields, one per well-defined protocol field, mirroring the OpenFlow 1.0
// 12-tuple. Constraints are formulated over the bits of this abstract view;
// the packet package later translates a solved abstract header into a real
// wire-format packet.
package header

import (
	"fmt"
	"strings"
)

// FieldID identifies one abstract header field.
type FieldID int

// The OpenFlow 1.0 match fields.
const (
	InPort FieldID = iota
	EthSrc
	EthDst
	EthType
	VlanID
	VlanPCP
	IPSrc
	IPDst
	IPProto
	IPTos
	TPSrc
	TPDst
	NumFields // sentinel
)

var fieldNames = [NumFields]string{
	"in_port", "dl_src", "dl_dst", "dl_type", "dl_vlan", "dl_vlan_pcp",
	"nw_src", "nw_dst", "nw_proto", "nw_tos", "tp_src", "tp_dst",
}

// String returns the OpenFlow-style field name.
func (f FieldID) String() string {
	if f < 0 || f >= NumFields {
		return fmt.Sprintf("field(%d)", int(f))
	}
	return fieldNames[f]
}

// Width in bits of each abstract field. VlanID is 16 bits wide so that the
// OpenFlow 1.0 OFP_VLAN_NONE sentinel (0xffff, "packet has no 802.1Q tag")
// is representable directly in the abstract space.
var fieldWidths = [NumFields]int{
	16, 48, 48, 16, 16, 3, 32, 32, 8, 8, 16, 16,
}

// Width returns the bit width of field f.
func Width(f FieldID) int { return fieldWidths[f] }

// offsets[f] is the index of field f's most significant bit in the flat
// bit-vector view of the abstract packet.
var offsets [NumFields]int

// TotalBits is the length of the flat bit vector of the abstract packet.
var TotalBits int

func init() {
	off := 0
	for f := FieldID(0); f < NumFields; f++ {
		offsets[f] = off
		off += fieldWidths[f]
	}
	TotalBits = off
}

// Offset returns the flat bit offset of field f's most significant bit.
func Offset(f FieldID) int { return offsets[f] }

// BitVar returns the 1-based SAT variable for bit `bit` (0 = MSB) of field
// f. This is the canonical mapping between abstract header bits and DIMACS
// problem variables.
func BitVar(f FieldID, bit int) int {
	if bit < 0 || bit >= fieldWidths[f] {
		panic(fmt.Sprintf("header: bit %d out of range for %s", bit, f))
	}
	return offsets[f] + bit + 1
}

// VlanNone is the OpenFlow 1.0 sentinel for "no 802.1Q tag present".
const VlanNone uint64 = 0xffff

// EtherType values used by the reproduction.
const (
	EthTypeIPv4 uint64 = 0x0800
	EthTypeARP  uint64 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP uint64 = 1
	ProtoTCP  uint64 = 6
	ProtoUDP  uint64 = 17
)

// Header is a fully concrete abstract packet: one value per field.
type Header [NumFields]uint64

// Get returns field f.
func (h *Header) Get(f FieldID) uint64 { return h[f] }

// Set assigns field f, truncating to the field width.
func (h *Header) Set(f FieldID, v uint64) {
	h[f] = v & widthMask(f)
}

func widthMask(f FieldID) uint64 {
	w := fieldWidths[f]
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// WidthMask returns the all-ones mask for field f's width.
func WidthMask(f FieldID) uint64 { return widthMask(f) }

// Bit returns bit `bit` (0 = MSB) of field f.
func (h *Header) Bit(f FieldID, bit int) bool {
	w := fieldWidths[f]
	return h[f]>>(w-1-bit)&1 == 1
}

// FromModel reconstructs a concrete header from a SAT model indexed by the
// BitVar mapping (model[v] for variable v).
func FromModel(model []bool) Header {
	var h Header
	for f := FieldID(0); f < NumFields; f++ {
		var v uint64
		for b := 0; b < fieldWidths[f]; b++ {
			v <<= 1
			if model[BitVar(f, b)] {
				v |= 1
			}
		}
		h[f] = v
	}
	return h
}

// String renders the header compactly.
func (h Header) String() string {
	var sb strings.Builder
	for f := FieldID(0); f < NumFields; f++ {
		if f > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%#x", f, h[f])
	}
	return sb.String()
}

// Ternary is a value/mask pair over a single field: mask bit 1 means the
// bit must equal the corresponding value bit, mask bit 0 is wildcard. The
// all-zero Ternary is the full wildcard.
type Ternary struct {
	Value uint64
	Mask  uint64
}

// Exact returns a fully specified ternary for field f.
func Exact(f FieldID, v uint64) Ternary {
	m := widthMask(f)
	return Ternary{Value: v & m, Mask: m}
}

// Prefix returns a CIDR-style ternary matching the top plen bits of v in a
// field of f's width (used for nw_src/nw_dst).
func Prefix(f FieldID, v uint64, plen int) Ternary {
	w := fieldWidths[f]
	if plen < 0 || plen > w {
		panic(fmt.Sprintf("header: prefix length %d out of range for %s", plen, f))
	}
	var m uint64
	if plen > 0 {
		m = widthMask(f) &^ ((uint64(1) << (w - plen)) - 1)
	}
	return Ternary{Value: v & m, Mask: m}
}

// Wildcard is the fully wildcarded ternary.
func Wildcard() Ternary { return Ternary{} }

// IsWildcard reports whether no bit is constrained.
func (t Ternary) IsWildcard() bool { return t.Mask == 0 }

// IsExact reports whether every bit of field f is constrained.
func (t Ternary) IsExact(f FieldID) bool { return t.Mask == widthMask(f) }

// Covers reports whether concrete value v matches the ternary.
func (t Ternary) Covers(v uint64) bool { return (v^t.Value)&t.Mask == 0 }

// Overlaps reports whether some concrete value matches both ternaries:
// the values agree on every commonly constrained bit.
func (t Ternary) Overlaps(o Ternary) bool {
	return (t.Value^o.Value)&(t.Mask&o.Mask) == 0
}

// Subsumes reports whether every value covered by o is covered by t.
func (t Ternary) Subsumes(o Ternary) bool {
	return t.Mask&^o.Mask == 0 && (t.Value^o.Value)&t.Mask == 0
}

// String renders the ternary for field f.
func (t Ternary) Render(f FieldID) string {
	if t.IsWildcard() {
		return "*"
	}
	if t.IsExact(f) {
		return fmt.Sprintf("%#x", t.Value)
	}
	return fmt.Sprintf("%#x/%#x", t.Value, t.Mask)
}
