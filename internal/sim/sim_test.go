package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestOrderingAndClock(t *testing.T) {
	s := New()
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("pending before run")
	}
	if !tm.Cancel() {
		t.Fatal("cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("double cancel should fail")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("pending after cancel")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Cancel() {
		t.Fatal("cancel after fire must report false")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var at []Time
	s.After(time.Millisecond, func() {
		at = append(at, s.Now())
		s.After(2*time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	s.Run()
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 3*time.Millisecond {
		t.Fatalf("times %v", at)
	}
}

func TestSchedulingInPast(t *testing.T) {
	s := New()
	var got Time = -1
	s.After(10*time.Millisecond, func() {
		s.At(time.Millisecond, func() { got = s.Now() }) // in the past
	})
	s.Run()
	if got != 10*time.Millisecond {
		t.Fatalf("past event ran at %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("count %d", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d", s.Pending())
	}
	s.RunUntil(4 * time.Millisecond) // no-op: deadline in past
	if count != 5 {
		t.Fatal("regressed")
	}
	s.Run()
	if count != 10 {
		t.Fatalf("final count %d", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("clock %v", s.Now())
	}
}

// TestRandomizedOrdering inserts events in random order with random
// cancellations and verifies global time-ordering of execution.
func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		s := New()
		var fired []Time
		var timers []*Timer
		var want []Time
		cancelIdx := map[int]bool{}
		n := 200
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000)) * time.Microsecond
			timers = append(timers, s.At(at, func() { fired = append(fired, s.Now()) }))
			if rng.Intn(4) == 0 {
				cancelIdx[i] = true
			} else {
				want = append(want, at)
			}
		}
		for i := range cancelIdx {
			timers[i].Cancel()
		}
		s.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fired) != len(want) {
			t.Fatalf("fired %d want %d", len(fired), len(want))
		}
		for i := range fired {
			if fired[i] != want[i] {
				t.Fatalf("event %d at %v want %v", i, fired[i], want[i])
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j%97)*time.Microsecond, func() {})
		}
		s.Run()
	}
}
