// Package sim is a small discrete-event simulation kernel: a virtual
// clock, an ordered event queue, and cancellable timers. All Monocle and
// switch logic in this repository is written as event-driven state
// machines against this kernel, which is what lets the experiment harness
// replay second-scale hardware experiments (1000-repetition CDFs, §8.1)
// in milliseconds of wall time, deterministically.
package sim

import (
	"container/heap"
	"time"
)

// Time is virtual time since simulation start.
type Time = time.Duration

// event is one scheduled callback. seq breaks ties FIFO so same-instant
// events run in schedule order — determinism matters more than speed here.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// index inside the heap, -1 once popped/cancelled.
	index int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is the simulation kernel. Not safe for concurrent use: the whole
// point is single-threaded determinism.
type Sim struct {
	now Time
	pq  eventHeap
	seq uint64
}

// New returns a kernel at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Timer handles a scheduled event; Cancel is a no-op after firing.
type Timer struct {
	s *Sim
	e *event
}

// Cancel prevents the timer from firing. It reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.e == nil || t.e.index < 0 {
		return false
	}
	heap.Remove(&t.s.pq, t.e.index)
	t.e.fn = nil
	return true
}

// Pending reports whether the timer has not yet fired or been cancelled.
func (t *Timer) Pending() bool { return t != nil && t.e != nil && t.e.index >= 0 }

// At schedules fn at absolute virtual time at (clamped to now).
func (s *Sim) At(at Time, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pq, e)
	return &Timer{s: s, e: e}
}

// After schedules fn after delay d.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Step runs the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*event)
		if e.fn == nil {
			continue // cancelled
		}
		s.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with at <= deadline, then advances the clock to
// the deadline.
func (s *Sim) RunUntil(deadline Time) {
	for s.pq.Len() > 0 {
		// Peek.
		next := s.pq[0]
		if next.fn == nil {
			heap.Pop(&s.pq)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// NextEventAt reports the virtual time of the earliest live event; ok is
// false when the queue is empty. Real-time adapters use it to sleep until
// the next timer without busy-polling.
func (s *Sim) NextEventAt() (Time, bool) {
	for s.pq.Len() > 0 {
		if s.pq[0].fn == nil {
			heap.Pop(&s.pq)
			continue
		}
		return s.pq[0].at, true
	}
	return 0, false
}

// Pending returns the number of live scheduled events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.pq {
		if e.fn != nil {
			n++
		}
	}
	return n
}
