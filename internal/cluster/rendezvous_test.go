package cluster

import (
	"fmt"
	"sort"
	"testing"
)

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func TestOwnerDeterministic(t *testing.T) {
	reps := replicaNames(4)
	for id := uint32(1); id <= 1000; id++ {
		a := Owner(reps, id)
		b := Owner(reps, id)
		if a != b {
			t.Fatalf("Owner(%d) unstable: %q vs %q", id, a, b)
		}
		// Order of the membership list must not matter.
		shuffled := []string{reps[2], reps[0], reps[3], reps[1]}
		if c := Owner(shuffled, id); c != a {
			t.Fatalf("Owner(%d) depends on list order: %q vs %q", id, a, c)
		}
	}
}

func TestOwnerEmpty(t *testing.T) {
	if got := Owner(nil, 7); got != "" {
		t.Fatalf("Owner(nil) = %q, want \"\"", got)
	}
}

func TestOwnerSingleReplica(t *testing.T) {
	for id := uint32(1); id <= 100; id++ {
		if got := Owner([]string{"solo"}, id); got != "solo" {
			t.Fatalf("Owner(solo, %d) = %q", id, got)
		}
	}
}

// TestRendezvousMinimalDisruption is the property that makes shard
// reassignment survivable: removing one replica moves only that replica's
// switches; every other assignment is untouched.
func TestRendezvousMinimalDisruption(t *testing.T) {
	reps := replicaNames(4)
	without := []string{"shard-0", "shard-1", "shard-3"} // shard-2 removed
	for id := uint32(1); id <= 2000; id++ {
		before := Owner(reps, id)
		after := Owner(without, id)
		if before != "shard-2" && before != after {
			t.Fatalf("switch %d moved %q -> %q although its owner stayed in the set", id, before, after)
		}
		if before == "shard-2" && after == "shard-2" {
			t.Fatalf("switch %d still owned by removed replica", id)
		}
	}
}

// TestRendezvousBalance sanity-checks the spread: across 4 replicas and
// 4000 switches no replica should own a wildly disproportionate share.
func TestRendezvousBalance(t *testing.T) {
	reps := replicaNames(4)
	ids := make([]uint32, 4000)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	asn := Assignments(reps, ids)
	if len(asn) != len(reps) {
		t.Fatalf("Assignments has %d entries, want %d", len(asn), len(reps))
	}
	for name, owned := range asn {
		if len(owned) < 500 || len(owned) > 1500 {
			t.Fatalf("replica %s owns %d of 4000 switches — hash badly skewed", name, len(owned))
		}
		if !sort.SliceIsSorted(owned, func(i, j int) bool { return owned[i] < owned[j] }) {
			t.Fatalf("replica %s assignment list not sorted", name)
		}
	}
}

func TestAssignmentsCoversAllReplicas(t *testing.T) {
	asn := Assignments(replicaNames(3), []uint32{1})
	if len(asn) != 3 {
		t.Fatalf("want empty entries for unowned replicas, got %v", asn)
	}
}

func TestScoreSeparator(t *testing.T) {
	// The zero separator keeps (name, id) encodings prefix-free enough
	// that these adversarial pairs score differently.
	if Score("a", 0x62000001) == Score("ab", 1) {
		t.Fatal("Score collides across name/id boundary")
	}
}

func TestKeyLess(t *testing.T) {
	ordered := []Key{
		{Round: 1, Switch: 1, Rule: 1, Seq: 1},
		{Round: 1, Switch: 1, Rule: 2, Seq: 2},
		{Round: 1, Switch: 2, Rule: 0, Seq: 1},
		{Round: 2, Switch: 1, Rule: 0, Seq: 3},
		{Round: 2, Switch: 1, Rule: 0, Seq: 4},
	}
	for i := range ordered {
		for j := range ordered {
			want := i < j
			if got := ordered[i].Less(ordered[j]); got != want {
				t.Fatalf("Less(%v, %v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}
