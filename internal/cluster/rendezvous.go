// Package cluster holds the pure, dependency-free primitives behind the
// monocle cluster coordinator: rendezvous (highest-random-weight) shard
// assignment of switch ids to replica names, and the total order used to
// merge per-replica record streams into one deterministic global stream.
//
// Everything here is deterministic across processes and platforms: the
// hash is FNV-1a over fixed byte encodings, ties break lexicographically,
// and no state is kept between calls — so every coordinator (and every
// test) computes the same shard map from the same membership list.
package cluster

import "sort"

// fnv1a64 constants (FNV-1a, 64 bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Score is the rendezvous weight of replica name for switch id: FNV-1a
// over the replica name, a zero separator byte, and the big-endian switch
// id. Owner picks the replica with the highest score; exposing the raw
// weight lets tests assert the tie-break independently of Owner.
func Score(name string, id uint32) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	h ^= 0 // separator: "ab"+id and "a"+("b"<<..) must not collide by construction
	h *= fnvPrime
	for shift := 24; shift >= 0; shift -= 8 {
		h ^= uint64(byte(id >> shift))
		h *= fnvPrime
	}
	// FNV-1a barely diffuses its trailing input bytes into the high bits,
	// and rendezvous hashing compares whole words — without a final
	// avalanche the replica-name hash dominates and one replica wins every
	// switch. Finish with the murmur3 64-bit finalizer.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the replica that owns switch id under rendezvous hashing:
// the name with the highest Score, ties broken by the lexicographically
// smallest name. Owner("") is returned for an empty replica list.
// Membership changes move only the switches whose highest-scoring replica
// joined or left — every other assignment is untouched, which is the
// property that makes shard reassignment survivable.
func Owner(replicas []string, id uint32) string {
	best := ""
	var bestScore uint64
	for _, name := range replicas {
		s := Score(name, id)
		if best == "" || s > bestScore || (s == bestScore && name < best) {
			best, bestScore = name, s
		}
	}
	return best
}

// Assignments groups the switch ids by owning replica. Every replica in
// the membership list gets an entry (possibly empty), and each id list is
// sorted ascending, so the result is canonical for a given input set.
func Assignments(replicas []string, ids []uint32) map[string][]uint32 {
	out := make(map[string][]uint32, len(replicas))
	for _, name := range replicas {
		out[name] = nil
	}
	for _, id := range ids {
		o := Owner(replicas, id)
		out[o] = append(out[o], id)
	}
	for name := range out {
		sort.Slice(out[name], func(i, j int) bool { return out[name][i] < out[name][j] })
	}
	return out
}

// Key is the total order a coordinator merges per-replica alert streams
// by: sweep round first, then switch id, then rule id, then the replica's
// own sequence number. Switch ownership is disjoint across replicas, so
// two alerts from different replicas can never tie on (Round, Switch) —
// Seq only ever breaks ties within one replica's stream, where it is
// strictly increasing. The merged order is therefore total and identical
// for every replica count, including one.
type Key struct {
	Round  uint64
	Switch uint32
	Rule   uint64
	Seq    uint64
}

// Less reports whether k sorts before other in the merged global stream.
func (k Key) Less(other Key) bool {
	if k.Round != other.Round {
		return k.Round < other.Round
	}
	if k.Switch != other.Switch {
		return k.Switch < other.Switch
	}
	if k.Rule != other.Rule {
		return k.Rule < other.Rule
	}
	return k.Seq < other.Seq
}
