// Package openflow implements the subset of the OpenFlow 1.0 wire protocol
// Monocle needs to proxy a controller-switch connection: HELLO, ECHO,
// FEATURES, FLOW_MOD, PACKET_IN, PACKET_OUT, BARRIER, FLOW_REMOVED and
// ERROR messages, the 40-byte ofp_match structure, and the action list
// encoding. Messages are Go structs with symmetric Encode/Decode and a
// length-prefixed framing over any io.Reader/io.Writer.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the OpenFlow 1.0 wire version byte.
const Version = 0x01

// MsgType is the ofp_type enum.
type MsgType uint8

// OpenFlow 1.0 message types (subset).
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypePacketIn        MsgType = 10
	TypeFlowRemoved     MsgType = 11
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
	TypeBarrierRequest  MsgType = 18
	TypeBarrierReply    MsgType = 19
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// FlowMod commands.
const (
	FCAdd          uint16 = 0
	FCModify       uint16 = 1
	FCModifyStrict uint16 = 2
	FCDelete       uint16 = 3
	FCDeleteStrict uint16 = 4
)

// PacketIn reasons.
const (
	ReasonNoMatch uint8 = 0
	ReasonAction  uint8 = 1
)

// Special port numbers.
const (
	PortMax        uint16 = 0xff00
	PortTable      uint16 = 0xfff9
	PortController uint16 = 0xfffd
	PortNone       uint16 = 0xffff
)

// BufferNone is the "packet not buffered" sentinel.
const BufferNone uint32 = 0xffffffff

// ErrMalformed is returned for undecodable wire bytes.
var ErrMalformed = errors.New("openflow: malformed message")

// ErrTooLong is returned when a message exceeds the 16-bit length field.
var ErrTooLong = errors.New("openflow: message exceeds 65535 bytes")

// Message is any OpenFlow message body. All message types implement it
// with value receivers; Decode returns pointer forms.
type Message interface {
	MsgType() MsgType
	encodeBody(b []byte) []byte
}

// bodyDecoder is the internal decoding half, implemented on pointers.
type bodyDecoder interface {
	Message
	decodeBody(b []byte) error
}

// Hello is OFPT_HELLO.
type Hello struct{}

// MsgType implements Message.
func (Hello) MsgType() MsgType           { return TypeHello }
func (Hello) encodeBody(b []byte) []byte { return b }
func (*Hello) decodeBody([]byte) error   { return nil }

// EchoRequest is OFPT_ECHO_REQUEST.
type EchoRequest struct{ Data []byte }

// MsgType implements Message.
func (EchoRequest) MsgType() MsgType             { return TypeEchoRequest }
func (m EchoRequest) encodeBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoRequest) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// EchoReply is OFPT_ECHO_REPLY.
type EchoReply struct{ Data []byte }

// MsgType implements Message.
func (EchoReply) MsgType() MsgType             { return TypeEchoReply }
func (m EchoReply) encodeBody(b []byte) []byte { return append(b, m.Data...) }
func (m *EchoReply) decodeBody(b []byte) error {
	m.Data = append([]byte(nil), b...)
	return nil
}

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{}

// MsgType implements Message.
func (FeaturesRequest) MsgType() MsgType           { return TypeFeaturesRequest }
func (FeaturesRequest) encodeBody(b []byte) []byte { return b }
func (*FeaturesRequest) decodeBody([]byte) error   { return nil }

// PhyPort is a trimmed ofp_phy_port (number + name).
type PhyPort struct {
	PortNo uint16
	Name   string // at most 15 bytes on the wire
}

// FeaturesReply is OFPT_FEATURES_REPLY with the fields Monocle uses.
type FeaturesReply struct {
	DatapathID uint64
	NBuffers   uint32
	NTables    uint8
	Ports      []PhyPort
}

// MsgType implements Message.
func (FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

func (m FeaturesReply) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, m.DatapathID)
	b = binary.BigEndian.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, 0, 0, 0) // n_tables + pad
	b = binary.BigEndian.AppendUint32(b, 0)
	b = binary.BigEndian.AppendUint32(b, 0) // capabilities, actions
	for _, p := range m.Ports {
		b = binary.BigEndian.AppendUint16(b, p.PortNo)
		b = append(b, make([]byte, 6)...) // hw addr
		name := make([]byte, 16)
		copy(name, p.Name)
		name[15] = 0
		b = append(b, name...)
		b = append(b, make([]byte, 24)...) // config..peer
	}
	return b
}

func (m *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < 24 {
		return fmt.Errorf("%w: features reply %d bytes", ErrMalformed, len(b))
	}
	m.DatapathID = binary.BigEndian.Uint64(b[0:8])
	m.NBuffers = binary.BigEndian.Uint32(b[8:12])
	m.NTables = b[12]
	rest := b[24:]
	m.Ports = nil
	for len(rest) >= 48 {
		p := PhyPort{PortNo: binary.BigEndian.Uint16(rest[0:2])}
		// Names carry at most 15 bytes on the wire (byte 16 is the
		// forced NUL terminator); reading only 15 keeps decode(encode(x))
		// stable even when the terminator byte holds junk.
		name := rest[8:23]
		for i, c := range name {
			if c == 0 {
				name = name[:i]
				break
			}
		}
		p.Name = string(name)
		m.Ports = append(m.Ports, p)
		rest = rest[48:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: trailing %d bytes in features reply", ErrMalformed, len(rest))
	}
	return nil
}

// PacketIn is OFPT_PACKET_IN.
type PacketIn struct {
	BufferID uint32
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// MsgType implements Message.
func (PacketIn) MsgType() MsgType { return TypePacketIn }

func (m PacketIn) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Data)))
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.Reason, 0)
	return append(b, m.Data...)
}

func (m *PacketIn) decodeBody(b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("%w: packet_in %d bytes", ErrMalformed, len(b))
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[6:8])
	m.Reason = b[8]
	m.Data = append([]byte(nil), b[10:]...)
	return nil
}

// PacketOut is OFPT_PACKET_OUT.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// MsgType implements Message.
func (PacketOut) MsgType() MsgType { return TypePacketOut }

func (m PacketOut) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	actions := encodeActions(m.Actions)
	b = binary.BigEndian.AppendUint16(b, uint16(len(actions)))
	b = append(b, actions...)
	return append(b, m.Data...)
}

func (m *PacketOut) decodeBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: packet_out %d bytes", ErrMalformed, len(b))
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	alen := int(binary.BigEndian.Uint16(b[6:8]))
	if len(b) < 8+alen {
		return fmt.Errorf("%w: packet_out actions", ErrMalformed)
	}
	var err error
	m.Actions, err = decodeActions(b[8 : 8+alen])
	if err != nil {
		return err
	}
	m.Data = append([]byte(nil), b[8+alen:]...)
	return nil
}

// FlowMod is OFPT_FLOW_MOD. Cookie doubles as Monocle's rule identifier.
type FlowMod struct {
	Match       WireMatch
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// MsgType implements Message.
func (FlowMod) MsgType() MsgType { return TypeFlowMod }

func (m FlowMod) encodeBody(b []byte) []byte {
	b = m.Match.encode(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Command)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.OutPort)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	return append(b, encodeActions(m.Actions)...)
}

func (m *FlowMod) decodeBody(b []byte) error {
	if len(b) < wireMatchLen+24 {
		return fmt.Errorf("%w: flow_mod %d bytes", ErrMalformed, len(b))
	}
	if err := m.Match.decode(b[:wireMatchLen]); err != nil {
		return err
	}
	r := b[wireMatchLen:]
	m.Cookie = binary.BigEndian.Uint64(r[0:8])
	m.Command = binary.BigEndian.Uint16(r[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(r[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(r[12:14])
	m.Priority = binary.BigEndian.Uint16(r[14:16])
	m.BufferID = binary.BigEndian.Uint32(r[16:20])
	m.OutPort = binary.BigEndian.Uint16(r[20:22])
	m.Flags = binary.BigEndian.Uint16(r[22:24])
	var err error
	m.Actions, err = decodeActions(r[24:])
	return err
}

// FlowRemoved is OFPT_FLOW_REMOVED (trimmed).
type FlowRemoved struct {
	Match    WireMatch
	Cookie   uint64
	Priority uint16
	Reason   uint8
}

// MsgType implements Message.
func (FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

func (m FlowRemoved) encodeBody(b []byte) []byte {
	b = m.Match.encode(b)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, 0)
	b = append(b, make([]byte, 4+4+2+2+8+8)...) // duration..byte_count
	return b
}

func (m *FlowRemoved) decodeBody(b []byte) error {
	if len(b) < wireMatchLen+12 {
		return fmt.Errorf("%w: flow_removed", ErrMalformed)
	}
	if err := m.Match.decode(b[:wireMatchLen]); err != nil {
		return err
	}
	r := b[wireMatchLen:]
	m.Cookie = binary.BigEndian.Uint64(r[0:8])
	m.Priority = binary.BigEndian.Uint16(r[8:10])
	m.Reason = r[10]
	return nil
}

// BarrierRequest is OFPT_BARRIER_REQUEST.
type BarrierRequest struct{}

// MsgType implements Message.
func (BarrierRequest) MsgType() MsgType           { return TypeBarrierRequest }
func (BarrierRequest) encodeBody(b []byte) []byte { return b }
func (*BarrierRequest) decodeBody([]byte) error   { return nil }

// BarrierReply is OFPT_BARRIER_REPLY.
type BarrierReply struct{}

// MsgType implements Message.
func (BarrierReply) MsgType() MsgType           { return TypeBarrierReply }
func (BarrierReply) encodeBody(b []byte) []byte { return b }
func (*BarrierReply) decodeBody([]byte) error   { return nil }

// ErrorMsg is OFPT_ERROR.
type ErrorMsg struct {
	Type uint16
	Code uint16
	Data []byte
}

// MsgType implements Message.
func (ErrorMsg) MsgType() MsgType { return TypeError }

func (m ErrorMsg) encodeBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Type)
	b = binary.BigEndian.AppendUint16(b, m.Code)
	return append(b, m.Data...)
}

func (m *ErrorMsg) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: error msg", ErrMalformed)
	}
	m.Type = binary.BigEndian.Uint16(b[0:2])
	m.Code = binary.BigEndian.Uint16(b[2:4])
	m.Data = append([]byte(nil), b[4:]...)
	return nil
}

// headerLen is the common ofp_header size.
const headerLen = 8

// Encode serializes a message with the given transaction id.
func Encode(msg Message, xid uint32) ([]byte, error) {
	b := make([]byte, headerLen, headerLen+64)
	b = msg.encodeBody(b)
	if len(b) > 0xffff {
		return nil, ErrTooLong
	}
	b[0] = Version
	b[1] = byte(msg.MsgType())
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint32(b[4:8], xid)
	return b, nil
}

// Decode parses one complete wire message.
func Decode(b []byte) (Message, uint32, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("%w: short header", ErrMalformed)
	}
	if b[0] != Version {
		return nil, 0, fmt.Errorf("%w: version %d", ErrMalformed, b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length != len(b) {
		return nil, 0, fmt.Errorf("%w: length %d != %d", ErrMalformed, length, len(b))
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	var msg bodyDecoder
	switch MsgType(b[1]) {
	case TypeHello:
		msg = &Hello{}
	case TypeError:
		msg = &ErrorMsg{}
	case TypeEchoRequest:
		msg = &EchoRequest{}
	case TypeEchoReply:
		msg = &EchoReply{}
	case TypeFeaturesRequest:
		msg = &FeaturesRequest{}
	case TypeFeaturesReply:
		msg = &FeaturesReply{}
	case TypePacketIn:
		msg = &PacketIn{}
	case TypeFlowRemoved:
		msg = &FlowRemoved{}
	case TypePacketOut:
		msg = &PacketOut{}
	case TypeFlowMod:
		msg = &FlowMod{}
	case TypeBarrierRequest:
		msg = &BarrierRequest{}
	case TypeBarrierReply:
		msg = &BarrierReply{}
	default:
		return nil, xid, fmt.Errorf("%w: unknown type %d", ErrMalformed, b[1])
	}
	if err := msg.decodeBody(b[headerLen:]); err != nil {
		return nil, xid, err
	}
	return msg, xid, nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	b, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadMessage reads exactly one framed message.
func ReadMessage(r io.Reader) (Message, uint32, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen {
		return nil, 0, fmt.Errorf("%w: length %d", ErrMalformed, length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, 0, err
	}
	return Decode(buf)
}
