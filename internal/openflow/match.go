package openflow

import (
	"encoding/binary"
	"fmt"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// ofp_match wildcard bits (OpenFlow 1.0 §5.2.3).
const (
	wInPort    = 1 << 0
	wDLVlan    = 1 << 1
	wDLSrc     = 1 << 2
	wDLDst     = 1 << 3
	wDLType    = 1 << 4
	wNWProto   = 1 << 5
	wTPSrc     = 1 << 6
	wTPDst     = 1 << 7
	wNWSrcAll  = 32 << 8 // >= 32 wildcards the whole field
	wNWDstAll  = 32 << 14
	wDLVlanPCP = 1 << 20
	wNWTos     = 1 << 21
	wAll       = (1 << 22) - 1
)

const wireMatchLen = 40

// WireMatch is the fixed 40-byte ofp_match structure.
type WireMatch struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     uint64
	DLDst     uint64
	DLVlan    uint16
	DLVlanPCP uint8
	DLType    uint16
	NWTos     uint8
	NWProto   uint8
	NWSrc     uint32
	NWDst     uint32
	TPSrc     uint16
	TPDst     uint16
}

func (m WireMatch) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, m.Wildcards)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	var mac [8]byte
	binary.BigEndian.PutUint64(mac[:], m.DLSrc<<16)
	b = append(b, mac[:6]...)
	binary.BigEndian.PutUint64(mac[:], m.DLDst<<16)
	b = append(b, mac[:6]...)
	b = binary.BigEndian.AppendUint16(b, m.DLVlan)
	b = append(b, m.DLVlanPCP, 0)
	b = binary.BigEndian.AppendUint16(b, m.DLType)
	b = append(b, m.NWTos, m.NWProto, 0, 0)
	b = binary.BigEndian.AppendUint32(b, m.NWSrc)
	b = binary.BigEndian.AppendUint32(b, m.NWDst)
	b = binary.BigEndian.AppendUint16(b, m.TPSrc)
	return binary.BigEndian.AppendUint16(b, m.TPDst)
}

func (m *WireMatch) decode(b []byte) error {
	if len(b) < wireMatchLen {
		return fmt.Errorf("%w: match %d bytes", ErrMalformed, len(b))
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	var mac [8]byte
	copy(mac[2:], b[6:12])
	m.DLSrc = binary.BigEndian.Uint64(mac[:])
	copy(mac[2:], b[12:18])
	m.DLDst = binary.BigEndian.Uint64(mac[:])
	m.DLVlan = binary.BigEndian.Uint16(b[18:20])
	m.DLVlanPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTos = b[24]
	m.NWProto = b[25]
	m.NWSrc = binary.BigEndian.Uint32(b[28:32])
	m.NWDst = binary.BigEndian.Uint32(b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}

// nwSrcWildBits / nwDstWildBits extract the 6-bit prefix-wildcard counts.
func (m WireMatch) nwSrcWildBits() int { return int(m.Wildcards >> 8 & 0x3f) }
func (m WireMatch) nwDstWildBits() int { return int(m.Wildcards >> 14 & 0x3f) }

// FromMatch converts an abstract flowtable match into the wire structure.
// OpenFlow 1.0 can express only exact matches, full wildcards, and
// nw_src/nw_dst prefixes; anything else is an error.
func FromMatch(m flowtable.Match) (WireMatch, error) {
	var w WireMatch
	w.Wildcards = wAll &^ (wNWSrcAll | wNWDstAll)
	w.Wildcards |= wNWSrcAll | wNWDstAll

	setExact := func(f header.FieldID, bit uint32, assign func(v uint64)) error {
		t := m[f]
		if t.IsWildcard() {
			return nil
		}
		if !t.IsExact(f) {
			return fmt.Errorf("openflow: field %s: partial masks not expressible in OF1.0", f)
		}
		w.Wildcards &^= bit
		assign(t.Value)
		return nil
	}
	if err := setExact(header.InPort, wInPort, func(v uint64) { w.InPort = uint16(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.EthSrc, wDLSrc, func(v uint64) { w.DLSrc = v }); err != nil {
		return w, err
	}
	if err := setExact(header.EthDst, wDLDst, func(v uint64) { w.DLDst = v }); err != nil {
		return w, err
	}
	if err := setExact(header.EthType, wDLType, func(v uint64) { w.DLType = uint16(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.VlanID, wDLVlan, func(v uint64) { w.DLVlan = uint16(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.VlanPCP, wDLVlanPCP, func(v uint64) { w.DLVlanPCP = uint8(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.IPProto, wNWProto, func(v uint64) { w.NWProto = uint8(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.IPTos, wNWTos, func(v uint64) { w.NWTos = uint8(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.TPSrc, wTPSrc, func(v uint64) { w.TPSrc = uint16(v) }); err != nil {
		return w, err
	}
	if err := setExact(header.TPDst, wTPDst, func(v uint64) { w.TPDst = uint16(v) }); err != nil {
		return w, err
	}

	// nw_src / nw_dst as prefixes.
	encodePrefix := func(f header.FieldID, shift uint) (uint32, uint32, error) {
		t := m[f]
		if t.IsWildcard() {
			return 32 << shift, 0, nil
		}
		plen := prefixLen(t.Mask)
		if plen < 0 {
			return 0, 0, fmt.Errorf("openflow: field %s: non-prefix mask %#x", f, t.Mask)
		}
		return uint32(32-plen) << shift, uint32(t.Value), nil
	}
	wc, v, err := encodePrefix(header.IPSrc, 8)
	if err != nil {
		return w, err
	}
	w.Wildcards = w.Wildcards&^(0x3f<<8) | wc
	w.NWSrc = v
	wc, v, err = encodePrefix(header.IPDst, 14)
	if err != nil {
		return w, err
	}
	w.Wildcards = w.Wildcards&^(0x3f<<14) | wc
	w.NWDst = v
	return w, nil
}

// prefixLen returns the prefix length of a 32-bit mask, or -1 if the mask
// is not of prefix form.
func prefixLen(mask uint64) int {
	m := uint32(mask)
	for plen := 0; plen <= 32; plen++ {
		var want uint32
		if plen > 0 {
			want = ^uint32(0) << (32 - plen)
		}
		if m == want {
			return plen
		}
	}
	return -1
}

// ToMatch converts the wire structure back into an abstract match.
func (m WireMatch) ToMatch() flowtable.Match {
	out := flowtable.MatchAll()
	if m.Wildcards&wInPort == 0 {
		out = out.WithExact(header.InPort, uint64(m.InPort))
	}
	if m.Wildcards&wDLSrc == 0 {
		out = out.WithExact(header.EthSrc, m.DLSrc)
	}
	if m.Wildcards&wDLDst == 0 {
		out = out.WithExact(header.EthDst, m.DLDst)
	}
	if m.Wildcards&wDLType == 0 {
		out = out.WithExact(header.EthType, uint64(m.DLType))
	}
	if m.Wildcards&wDLVlan == 0 {
		out = out.WithExact(header.VlanID, uint64(m.DLVlan))
	}
	if m.Wildcards&wDLVlanPCP == 0 {
		out = out.WithExact(header.VlanPCP, uint64(m.DLVlanPCP))
	}
	if m.Wildcards&wNWProto == 0 {
		out = out.WithExact(header.IPProto, uint64(m.NWProto))
	}
	if m.Wildcards&wNWTos == 0 {
		out = out.WithExact(header.IPTos, uint64(m.NWTos))
	}
	if m.Wildcards&wTPSrc == 0 {
		out = out.WithExact(header.TPSrc, uint64(m.TPSrc))
	}
	if m.Wildcards&wTPDst == 0 {
		out = out.WithExact(header.TPDst, uint64(m.TPDst))
	}
	if wb := m.nwSrcWildBits(); wb < 32 {
		out = out.With(header.IPSrc, header.Prefix(header.IPSrc, uint64(m.NWSrc), 32-wb))
	}
	if wb := m.nwDstWildBits(); wb < 32 {
		out = out.With(header.IPDst, header.Prefix(header.IPDst, uint64(m.NWDst), 32-wb))
	}
	return out
}
