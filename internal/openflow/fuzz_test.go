package openflow

// FuzzDecode hardens the wire codec against arbitrary bytes: Decode must
// never panic, and anything it accepts must round-trip — re-encoding the
// decoded message yields bytes that decode to an identical message (the
// canonical form is a fixed point). The seed corpus is built from the
// same messages the unit tests exercise, one per message type.

import (
	"bytes"
	"reflect"
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// fuzzSeeds mirrors the messages of the round-trip unit tests.
func fuzzSeeds() []Message {
	m := flowtable.MatchAll().
		With(header.IPSrc, header.Prefix(header.IPSrc, 10<<24, 24)).
		WithExact(header.IPProto, header.ProtoTCP).
		WithExact(header.TPDst, 80)
	wm, _ := FromMatch(m)
	return []Message{
		Hello{},
		EchoRequest{Data: []byte("ping")},
		EchoReply{Data: []byte("pong")},
		FeaturesRequest{},
		FeaturesReply{
			DatapathID: 0x1122334455667788,
			NBuffers:   256,
			NTables:    2,
			Ports:      []PhyPort{{PortNo: 1, Name: "eth1"}, {PortNo: 2, Name: "eth2"}},
		},
		PacketIn{BufferID: BufferNone, InPort: 3, Reason: ReasonAction, Data: []byte{1, 2, 3}},
		PacketOut{
			BufferID: BufferNone,
			InPort:   7,
			Actions:  []Action{OutputAction(2), {Type: atSetVlanVID, Value: 42}},
			Data:     []byte{0xde, 0xad, 0xbe, 0xef},
		},
		FlowMod{
			Match:    wm,
			Cookie:   99,
			Command:  FCAdd,
			Priority: 10,
			BufferID: BufferNone,
			OutPort:  PortNone,
			Actions:  []Action{OutputAction(4), {Type: atSetNWSrc, Value: 0x0a000001}},
		},
		FlowRemoved{Match: wm, Cookie: 7, Priority: 3, Reason: 1},
		BarrierRequest{},
		BarrierReply{},
		ErrorMsg{Type: 1, Code: 2, Data: []byte("bad")},
	}
}

// traceSeeds reproduces the wire traffic a recorded live-switch session
// (a -record-dir trace of the scenario fleet) actually carries: strict
// modify/delete flow-mods with header-rewrite actions (churn plans), and
// probe frames riding PacketOut/PacketIn. Found divergences replay as
// traces, so the codec is fuzzed from the same distribution.
func traceSeeds() []Message {
	m := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		With(header.IPDst, header.Prefix(header.IPDst, 10<<24|1<<8, 24))
	wm, _ := FromMatch(m)
	// The abstract probe header the traces record: dl_type 0x800,
	// dl_vlan 1, in_port 1, nw_dst 10.0.x.0, nw_proto 1.
	probe := []byte{
		0x00, 0x00, 0x11, 0x22, 0x33, 0x44, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, // eth dst/src
		0x81, 0x00, 0x00, 0x01, // vlan 1
		0x08, 0x00, // ipv4
		0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x01, 0x00, 0x00, // ihl/len/ttl/icmp
		0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x01, 0x00, // 10.0.0.1 -> 10.0.1.0
		0x08, 0x00, 0x00, 0x00, 0x00, 0x07, 0x00, 0x09, // icmp echo + probe metadata
	}
	return []Message{
		FlowMod{
			Match:    wm,
			Command:  FCModifyStrict,
			Priority: 10,
			BufferID: BufferNone,
			OutPort:  PortNone,
			Actions:  []Action{{Type: atSetNWTos, Value: 36}, OutputAction(4)},
		},
		FlowMod{
			Match:    wm,
			Command:  FCDeleteStrict,
			Priority: 10,
			BufferID: BufferNone,
			OutPort:  PortNone,
		},
		PacketOut{BufferID: BufferNone, InPort: PortNone,
			Actions: []Action{OutputAction(1)}, Data: probe},
		PacketIn{BufferID: BufferNone, InPort: 1, Reason: ReasonNoMatch, Data: probe},
	}
}

func FuzzDecode(f *testing.F) {
	for _, msg := range append(fuzzSeeds(), traceSeeds()...) {
		b, err := Encode(msg, 0x11223344)
		if err != nil {
			f.Fatalf("encoding seed %T: %v", msg, err)
		}
		f.Add(b)
	}
	// A few malformed shapes so the fuzzer starts near the error paths.
	f.Add([]byte{})
	f.Add([]byte{Version, byte(TypeHello), 0, 8, 0, 0, 0, 0, 0xff})
	f.Add([]byte{0x04, byte(TypeFlowMod), 0, 8, 0, 0, 0, 0})
	// Regression seeds for two hardened decode paths (seeds also run
	// under plain `go test`): a SET_DL_SRC action whose length field
	// claims 8 bytes (the 16-byte body read must not run past the
	// buffer), and a FeaturesReply port name of 16 non-NUL bytes (decode
	// must cap at the 15 wire bytes so re-encoding is stable).
	shortDL := make([]byte, 80)
	shortDL[0], shortDL[1], shortDL[3] = Version, byte(TypeFlowMod), 80
	shortDL[73], shortDL[75] = byte(atSetDLSrc), 8
	f.Add(shortDL)
	longName := make([]byte, 80)
	longName[0], longName[1], longName[3] = Version, byte(TypeFeaturesReply), 80
	for i := 40; i < 56; i++ {
		longName[i] = 'A'
	}
	f.Add(longName)

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, xid, err := Decode(b)
		if err != nil {
			return // rejected input: no panic is all we require
		}
		// Accepted input must round-trip through the canonical encoding.
		enc, err := Encode(msg, xid)
		if err != nil {
			t.Fatalf("Encode(Decode(%x)) failed: %v", b, err)
		}
		msg2, xid2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(Decode(%x))) failed: %v", b, err)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across round-trip: %#x -> %#x", xid, xid2)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("message changed across round-trip:\n in: %#v\nout: %#v", msg, msg2)
		}
		enc2, err := Encode(msg2, xid2)
		if err != nil {
			t.Fatalf("re-encoding round-tripped message: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n %x\n %x", enc, enc2)
		}
	})
}
