package openflow

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

func roundTrip(t *testing.T, msg Message, xid uint32) Message {
	t.Helper()
	b, err := Encode(msg, xid)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, gotXID, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if gotXID != xid {
		t.Fatalf("xid %d != %d", gotXID, xid)
	}
	return got
}

func TestHelloEchoBarrierRoundTrip(t *testing.T) {
	if _, ok := roundTrip(t, Hello{}, 1).(*Hello); !ok {
		t.Fatal("hello")
	}
	er := roundTrip(t, EchoRequest{Data: []byte("ping")}, 2).(*EchoRequest)
	if string(er.Data) != "ping" {
		t.Fatal("echo data")
	}
	if _, ok := roundTrip(t, BarrierRequest{}, 3).(*BarrierRequest); !ok {
		t.Fatal("barrier req")
	}
	if _, ok := roundTrip(t, BarrierReply{}, 4).(*BarrierReply); !ok {
		t.Fatal("barrier rep")
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	msg := FeaturesReply{
		DatapathID: 0xabcdef0123456789,
		NBuffers:   256,
		NTables:    2,
		Ports:      []PhyPort{{PortNo: 1, Name: "eth1"}, {PortNo: 2, Name: "eth2"}},
	}
	got := roundTrip(t, msg, 7).(*FeaturesReply)
	if got.DatapathID != msg.DatapathID || got.NBuffers != 256 || got.NTables != 2 {
		t.Fatalf("%+v", got)
	}
	if !reflect.DeepEqual(got.Ports, msg.Ports) {
		t.Fatalf("ports %+v", got.Ports)
	}
}

func TestPacketInOutRoundTrip(t *testing.T) {
	pin := PacketIn{BufferID: BufferNone, InPort: 3, Reason: ReasonAction, Data: []byte{1, 2, 3}}
	gotIn := roundTrip(t, pin, 9).(*PacketIn)
	if gotIn.InPort != 3 || gotIn.Reason != ReasonAction || !bytes.Equal(gotIn.Data, pin.Data) {
		t.Fatalf("%+v", gotIn)
	}
	pout := PacketOut{
		BufferID: BufferNone, InPort: PortNone,
		Actions: []Action{OutputAction(5)},
		Data:    []byte("frame"),
	}
	gotOut := roundTrip(t, pout, 10).(*PacketOut)
	if len(gotOut.Actions) != 1 || gotOut.Actions[0].Port != 5 || !bytes.Equal(gotOut.Data, pout.Data) {
		t.Fatalf("%+v", gotOut)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := flowtable.MatchAll().
		With(header.IPSrc, header.Prefix(header.IPSrc, 10<<24, 24)).
		WithExact(header.IPProto, header.ProtoTCP).
		WithExact(header.TPDst, 80)
	wm, err := FromMatch(m)
	if err != nil {
		t.Fatal(err)
	}
	fm := FlowMod{
		Match:    wm,
		Cookie:   42,
		Command:  FCAdd,
		Priority: 100,
		BufferID: BufferNone,
		OutPort:  PortNone,
		Actions:  []Action{{Type: atSetNWTos, Value: 0x2e}, OutputAction(2)},
	}
	got := roundTrip(t, fm, 11).(*FlowMod)
	if got.Cookie != 42 || got.Priority != 100 || len(got.Actions) != 2 {
		t.Fatalf("%+v", got)
	}
	if !got.Match.ToMatch().Equal(m) {
		t.Fatalf("match: %v != %v", got.Match.ToMatch(), m)
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	e := roundTrip(t, ErrorMsg{Type: 3, Code: 1, Data: []byte("bad")}, 12).(*ErrorMsg)
	if e.Type != 3 || e.Code != 1 || string(e.Data) != "bad" {
		t.Fatalf("%+v", e)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	wm, _ := FromMatch(flowtable.MatchAll().WithExact(header.IPProto, 6))
	fr := roundTrip(t, FlowRemoved{Match: wm, Cookie: 5, Priority: 7, Reason: 1}, 13).(*FlowRemoved)
	if fr.Cookie != 5 || fr.Priority != 7 || fr.Reason != 1 {
		t.Fatalf("%+v", fr)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); !errors.Is(err, ErrMalformed) {
		t.Fatal("nil")
	}
	b, _ := Encode(Hello{}, 1)
	b[0] = 9 // wrong version
	if _, _, err := Decode(b); !errors.Is(err, ErrMalformed) {
		t.Fatal("version")
	}
	b, _ = Encode(Hello{}, 1)
	b[1] = 200 // unknown type
	if _, _, err := Decode(b); !errors.Is(err, ErrMalformed) {
		t.Fatal("type")
	}
	b, _ = Encode(Hello{}, 1)
	if _, _, err := Decode(b[:6]); !errors.Is(err, ErrMalformed) {
		t.Fatal("short")
	}
}

// TestMatchConversionProperty: abstract → wire → abstract is the identity
// for OF1.0-expressible matches.
func TestMatchConversionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := flowtable.MatchAll()
		if rng.Intn(2) == 0 {
			m = m.WithExact(header.InPort, uint64(rng.Intn(48)+1))
		}
		if rng.Intn(2) == 0 {
			m = m.WithExact(header.EthSrc, rng.Uint64()&header.WidthMask(header.EthSrc))
		}
		if rng.Intn(2) == 0 {
			m = m.WithExact(header.EthType, header.EthTypeIPv4)
			if rng.Intn(2) == 0 {
				m = m.With(header.IPSrc, header.Prefix(header.IPSrc, rng.Uint64(), rng.Intn(33)))
			}
			if rng.Intn(2) == 0 {
				m = m.With(header.IPDst, header.Prefix(header.IPDst, rng.Uint64(), rng.Intn(33)))
			}
			if rng.Intn(2) == 0 {
				m = m.WithExact(header.IPProto, header.ProtoUDP)
				m = m.WithExact(header.TPSrc, uint64(rng.Intn(65536)))
			}
		}
		wm, err := FromMatch(m)
		if err != nil {
			return false
		}
		back := wm.ToMatch()
		// Wire roundtrip too.
		var buf []byte
		buf = wm.encode(buf)
		var wm2 WireMatch
		if err := wm2.decode(buf); err != nil {
			return false
		}
		return back.Equal(m) && wm2.ToMatch().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromMatchRejectsNonPrefix(t *testing.T) {
	m := flowtable.MatchAll().With(header.IPSrc, header.Ternary{Value: 1, Mask: 1})
	if _, err := FromMatch(m); err == nil {
		t.Fatal("non-prefix nw mask must be rejected")
	}
	m2 := flowtable.MatchAll().With(header.EthSrc, header.Ternary{Value: 0, Mask: 0xff})
	if _, err := FromMatch(m2); err == nil {
		t.Fatal("partial dl mask must be rejected")
	}
}

func TestActionsConversion(t *testing.T) {
	abstract := []flowtable.Action{
		flowtable.SetField(header.IPTos, 0x2e),
		flowtable.SetField(header.EthDst, 0x0000aabbccddee),
		flowtable.Output(7),
	}
	wire, err := FromActions(abstract)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToActions(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, abstract) {
		t.Fatalf("%+v != %+v", back, abstract)
	}
	if _, err := FromActions([]flowtable.Action{flowtable.ECMP(1, 2)}); err == nil {
		t.Fatal("ECMP must be rejected")
	}
}

func TestActionWireRoundTripAllTypes(t *testing.T) {
	actions := []Action{
		OutputAction(3),
		{Type: atSetVlanVID, Value: 42},
		{Type: atSetVlanPCP, Value: 5},
		{Type: atStripVlan},
		{Type: atSetDLSrc, Value: 0x1234567890ab},
		{Type: atSetDLDst, Value: 0xa1b2c3d4e5f6},
		{Type: atSetNWSrc, Value: 0x0a000001},
		{Type: atSetNWDst, Value: 0x0a000002},
		{Type: atSetNWTos, Value: 0x2e},
		{Type: atSetTPSrc, Value: 8080},
		{Type: atSetTPDst, Value: 443},
	}
	got, err := decodeActions(encodeActions(actions))
	if err != nil {
		t.Fatal(err)
	}
	// MaxLen only survives for OUTPUT.
	if !reflect.DeepEqual(got, actions) {
		t.Fatalf("\n got %+v\nwant %+v", got, actions)
	}
}

func TestDecodeActionsRejectsBadLength(t *testing.T) {
	if _, err := decodeActions([]byte{0, 0, 0}); err == nil {
		t.Fatal("short header")
	}
	b := encodeActions([]Action{OutputAction(1)})
	b[3] = 7 // not multiple of 8
	if _, err := decodeActions(b); err == nil {
		t.Fatal("bad length")
	}
}

// TestReadWriteOverTCP exercises framing over a real loopback connection.
func TestReadWriteOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for i := 0; i < 3; i++ {
			msg, xid, err := ReadMessage(conn)
			if err != nil {
				done <- err
				return
			}
			if err := WriteMessage(conn, msg, xid); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msgs := []Message{
		Hello{},
		EchoRequest{Data: []byte("x")},
		PacketOut{BufferID: BufferNone, InPort: PortNone, Actions: []Action{OutputAction(1)}, Data: []byte("d")},
	}
	for i, m := range msgs {
		if err := WriteMessage(conn, m, uint32(i)); err != nil {
			t.Fatal(err)
		}
		echo, xid, err := ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if xid != uint32(i) || echo.MsgType() != m.MsgType() {
			t.Fatalf("echo %v xid=%d", echo.MsgType(), xid)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, typ := range []MsgType{TypeHello, TypeError, TypeEchoRequest, TypeEchoReply,
		TypeFeaturesRequest, TypeFeaturesReply, TypePacketIn, TypeFlowRemoved,
		TypePacketOut, TypeFlowMod, TypeBarrierRequest, TypeBarrierReply} {
		if typ.String() == "" {
			t.Fatal("empty name")
		}
	}
	if MsgType(99).String() != "TYPE(99)" {
		t.Fatal("unknown type name")
	}
}

func BenchmarkFlowModEncodeDecode(b *testing.B) {
	wm, _ := FromMatch(flowtable.MatchAll().
		With(header.IPSrc, header.Prefix(header.IPSrc, 10<<24, 24)).
		WithExact(header.IPProto, 6))
	fm := FlowMod{Match: wm, Cookie: 1, Priority: 10, BufferID: BufferNone, OutPort: PortNone,
		Actions: []Action{OutputAction(2)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := Encode(fm, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
