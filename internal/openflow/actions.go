package openflow

import (
	"encoding/binary"
	"fmt"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// ofp_action_type values (OpenFlow 1.0 §5.2.4).
const (
	atOutput     uint16 = 0
	atSetVlanVID uint16 = 1
	atSetVlanPCP uint16 = 2
	atStripVlan  uint16 = 3
	atSetDLSrc   uint16 = 4
	atSetDLDst   uint16 = 5
	atSetNWSrc   uint16 = 6
	atSetNWDst   uint16 = 7
	atSetNWTos   uint16 = 8
	atSetTPSrc   uint16 = 9
	atSetTPDst   uint16 = 10
)

// Action is one wire-format action.
type Action struct {
	Type uint16
	// Port and MaxLen apply to OUTPUT.
	Port   uint16
	MaxLen uint16
	// Value carries the set-field payload for the remaining types.
	Value uint64
}

// OutputAction builds an OUTPUT action.
func OutputAction(port uint16) Action {
	return Action{Type: atOutput, Port: port, MaxLen: 0xffff}
}

func encodeActions(actions []Action) []byte {
	var b []byte
	for _, a := range actions {
		switch a.Type {
		case atOutput:
			b = binary.BigEndian.AppendUint16(b, atOutput)
			b = binary.BigEndian.AppendUint16(b, 8)
			b = binary.BigEndian.AppendUint16(b, a.Port)
			b = binary.BigEndian.AppendUint16(b, a.MaxLen)
		case atSetDLSrc, atSetDLDst:
			b = binary.BigEndian.AppendUint16(b, a.Type)
			b = binary.BigEndian.AppendUint16(b, 16)
			var mac [8]byte
			binary.BigEndian.PutUint64(mac[:], a.Value<<16)
			b = append(b, mac[:6]...)
			b = append(b, make([]byte, 6)...)
		case atSetNWSrc, atSetNWDst:
			b = binary.BigEndian.AppendUint16(b, a.Type)
			b = binary.BigEndian.AppendUint16(b, 8)
			b = binary.BigEndian.AppendUint32(b, uint32(a.Value))
		case atSetVlanVID, atSetTPSrc, atSetTPDst:
			b = binary.BigEndian.AppendUint16(b, a.Type)
			b = binary.BigEndian.AppendUint16(b, 8)
			b = binary.BigEndian.AppendUint16(b, uint16(a.Value))
			b = append(b, 0, 0)
		case atSetVlanPCP, atSetNWTos:
			b = binary.BigEndian.AppendUint16(b, a.Type)
			b = binary.BigEndian.AppendUint16(b, 8)
			b = append(b, byte(a.Value), 0, 0, 0)
		case atStripVlan:
			b = binary.BigEndian.AppendUint16(b, atStripVlan)
			b = binary.BigEndian.AppendUint16(b, 8)
			b = append(b, 0, 0, 0, 0)
		}
	}
	return b
}

func decodeActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header", ErrMalformed)
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		ln := int(binary.BigEndian.Uint16(b[2:4]))
		// ofp_action_dl_addr is 16 bytes; every other supported action is
		// 8. Enforcing the per-type minimum keeps the body reads below in
		// bounds on crafted inputs.
		want := 8
		if typ == atSetDLSrc || typ == atSetDLDst {
			want = 16
		}
		if ln < want || ln%8 != 0 || len(b) < ln {
			return nil, fmt.Errorf("%w: action length %d", ErrMalformed, ln)
		}
		body := b[4:ln]
		a := Action{Type: typ}
		switch typ {
		case atOutput:
			a.Port = binary.BigEndian.Uint16(body[0:2])
			a.MaxLen = binary.BigEndian.Uint16(body[2:4])
		case atSetDLSrc, atSetDLDst:
			var mac [8]byte
			copy(mac[2:], body[0:6])
			a.Value = binary.BigEndian.Uint64(mac[:])
		case atSetNWSrc, atSetNWDst:
			a.Value = uint64(binary.BigEndian.Uint32(body[0:4]))
		case atSetVlanVID, atSetTPSrc, atSetTPDst:
			a.Value = uint64(binary.BigEndian.Uint16(body[0:2]))
		case atSetVlanPCP, atSetNWTos:
			a.Value = uint64(body[0])
		case atStripVlan:
		default:
			return nil, fmt.Errorf("%w: action type %d", ErrMalformed, typ)
		}
		out = append(out, a)
		b = b[ln:]
	}
	return out, nil
}

// setFieldType maps abstract fields to OF1.0 set-field action types.
var setFieldType = map[header.FieldID]uint16{
	header.EthSrc:  atSetDLSrc,
	header.EthDst:  atSetDLDst,
	header.VlanID:  atSetVlanVID,
	header.VlanPCP: atSetVlanPCP,
	header.IPSrc:   atSetNWSrc,
	header.IPDst:   atSetNWDst,
	header.IPTos:   atSetNWTos,
	header.TPSrc:   atSetTPSrc,
	header.TPDst:   atSetTPDst,
}

var setFieldOf = func() map[uint16]header.FieldID {
	m := make(map[uint16]header.FieldID, len(setFieldType))
	for f, t := range setFieldType {
		m[t] = f
	}
	return m
}()

// FromActions converts abstract rule actions to wire actions. ECMP groups
// have no OpenFlow 1.0 encoding and yield an error; the in-simulator data
// path exchanges abstract rules directly and never hits this limit.
func FromActions(actions []flowtable.Action) ([]Action, error) {
	var out []Action
	for _, a := range actions {
		switch a.Kind {
		case flowtable.ActionOutput:
			out = append(out, OutputAction(uint16(a.Port)))
		case flowtable.ActionSetField:
			t, ok := setFieldType[a.Field]
			if !ok {
				return nil, fmt.Errorf("openflow: no OF1.0 set action for field %s", a.Field)
			}
			out = append(out, Action{Type: t, Value: a.Value})
		case flowtable.ActionGroupECMP:
			return nil, fmt.Errorf("openflow: ECMP groups are not expressible in OF1.0")
		}
	}
	return out, nil
}

// ToActions converts wire actions to abstract rule actions.
func ToActions(actions []Action) ([]flowtable.Action, error) {
	var out []flowtable.Action
	for _, a := range actions {
		switch a.Type {
		case atOutput:
			out = append(out, flowtable.Output(flowtable.PortID(a.Port)))
		case atStripVlan:
			out = append(out, flowtable.SetField(header.VlanID, header.VlanNone))
		default:
			f, ok := setFieldOf[a.Type]
			if !ok {
				return nil, fmt.Errorf("%w: action type %d", ErrMalformed, a.Type)
			}
			out = append(out, flowtable.SetField(f, a.Value))
		}
	}
	return out, nil
}
