package cnf

import (
	"testing"
)

func TestMarkResetRestoresState(t *testing.T) {
	e := NewEncoder(4)
	e.Assert(Or(Lit(1), Lit(2)))
	sharedDef := e.Define(And(Lit(3), Lit(4)))
	vars, clauses, outLen := e.NumVars(), e.NumClauses(), len(e.Vector())

	m := e.Mark()
	e.Assert(And(Or(Lit(-1), Lit(3)), Or(Lit(-2), Lit(4))))
	deltaVar := e.Define(Or(And(Lit(1), Lit(2)), Lit(-3)))
	if len(e.VectorFrom(m)) != len(e.Vector())-outLen {
		t.Fatal("VectorFrom must be the post-mark suffix")
	}
	e.Reset(m)

	if e.NumVars() != vars || e.NumClauses() != clauses || len(e.Vector()) != outLen {
		t.Fatalf("Reset left vars=%d clauses=%d out=%d, want %d/%d/%d",
			e.NumVars(), e.NumClauses(), len(e.Vector()), vars, clauses, outLen)
	}
	// The shared definition survives the reset; re-defining it must not
	// emit anything new.
	if got := e.Define(And(Lit(3), Lit(4))); got == sharedDef {
		// Structural nodes are cached by identity; a fresh node re-encodes.
		t.Fatal("distinct nodes should not share a cache entry")
	}
	if e.NumVars() <= vars {
		t.Fatal("re-defining a fresh node should allocate again")
	}
	_ = deltaVar
}

func TestResetEvictsPostMarkDefinitions(t *testing.T) {
	e := NewEncoder(3)
	shared := And(Lit(1), Lit(2))
	sharedLit := e.Define(shared)
	m := e.Mark()
	delta := Or(Lit(-1), Lit(3))
	deltaLit := e.Define(delta)
	e.Reset(m)
	// Shared definition stays cached (no new clauses), post-mark one is
	// evicted and re-encodes at the same variable as before.
	before := e.NumClauses()
	if got := e.Define(shared); got != sharedLit || e.NumClauses() != before {
		t.Fatalf("shared definition re-encoded: lit %d vs %d", got, sharedLit)
	}
	if got := e.Define(delta); got != deltaLit {
		t.Fatalf("delta definition should reuse the variable space: %d vs %d", got, deltaLit)
	}
}

func TestResetRestoresTrueVarAndUnsat(t *testing.T) {
	e := NewEncoder(2)
	m := e.Mark()
	// Force the lazily allocated constant variable and an UNSAT marker
	// after the mark; both must roll back.
	_ = e.Define(True())
	e.Assert(False())
	if !e.Unsat() {
		t.Fatal("Assert(False) must mark unsat")
	}
	e.Reset(m)
	if e.Unsat() || e.NumVars() != 2 || e.NumClauses() != 0 {
		t.Fatalf("Reset did not clear constant state: unsat=%v vars=%d", e.Unsat(), e.NumVars())
	}
}

func TestForkIsIndependent(t *testing.T) {
	e := NewEncoder(3)
	e.Assert(Or(Lit(1), Lit(2)))
	shared := And(Lit(2), Lit(3))
	sl := e.Define(shared)

	f := e.Fork()
	e.Assert(Lit(3))
	f.Assert(Lit(-3))
	if e.NumClauses() != f.NumClauses() {
		t.Fatalf("clause counts diverged structurally: %d vs %d", e.NumClauses(), f.NumClauses())
	}
	ev, fv := e.Vector(), f.Vector()
	if ev[len(ev)-2] != 3 || fv[len(fv)-2] != -3 {
		t.Fatalf("appends leaked across the fork: %v vs %v", ev[len(ev)-2:], fv[len(fv)-2:])
	}
	// The definition cache is shared by value: both encoders reuse the
	// pre-fork definition without re-encoding.
	if got := f.Define(shared); got != sl {
		t.Fatalf("fork lost the shared definition: %d vs %d", got, sl)
	}
}
