package cnf

import (
	"math/rand"
	"testing"

	"monocle/internal/sat"
)

// eval interprets a formula under an assignment of problem variables
// (assign[v] for v >= 1).
func eval(f *Formula, assign []bool) bool {
	switch f.kind {
	case KindConst:
		return f.val
	case KindLit:
		v := f.lit
		if v < 0 {
			return !assign[-v]
		}
		return assign[v]
	case KindNot:
		return !eval(f.kids[0], assign)
	case KindAnd:
		for _, k := range f.kids {
			if !eval(k, assign) {
				return false
			}
		}
		return true
	case KindOr:
		for _, k := range f.kids {
			if eval(k, assign) {
				return true
			}
		}
		return false
	case KindITEChain:
		for i, c := range f.conds {
			if eval(c, assign) {
				return eval(f.kids[i], assign)
			}
		}
		return eval(f.els, assign)
	}
	panic("bad kind")
}

// satisfiableUnder checks, via the SAT solver, whether the encoder output
// plus unit clauses pinning the problem variables is satisfiable.
func satisfiableUnder(t *testing.T, e *Encoder, assign []bool) bool {
	t.Helper()
	s := sat.New(e.NumVars())
	if err := s.AddDIMACSVector(e.Vector()); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= e.NumProblemVars(); v++ {
		l := v
		if !assign[v] {
			l = -v
		}
		if err := s.AddClause(l); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := s.Solve()
	return st == sat.Satisfiable
}

// checkEquivalent asserts that for every assignment of the n problem vars,
// CNF-satisfiability matches direct formula evaluation.
func checkEquivalent(t *testing.T, n int, f *Formula) {
	t.Helper()
	e := NewEncoder(n)
	e.Assert(f)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = mask>>(v-1)&1 == 1
		}
		want := eval(f, assign)
		got := satisfiableUnder(t, e, assign)
		if got != want {
			t.Fatalf("assign=%v: eval=%v cnfSAT=%v formula=%s", assign[1:], want, got, f)
		}
	}
}

func TestAssertLiteral(t *testing.T) {
	checkEquivalent(t, 2, Lit(1))
	checkEquivalent(t, 2, Lit(-2))
}

func TestAssertAndOfLits(t *testing.T) {
	checkEquivalent(t, 3, And(Lit(1), Lit(-2), Lit(3)))
}

func TestAssertOrOfLits(t *testing.T) {
	f := Or(Lit(1), Lit(-2), Lit(3))
	e := NewEncoder(3)
	e.Assert(f)
	if e.NumVars() != 3 {
		t.Fatalf("pure-literal Or must not allocate fresh vars, got %d", e.NumVars())
	}
	checkEquivalent(t, 3, f)
}

func TestNotDeMorgan(t *testing.T) {
	// ¬(a ∧ ¬b) should become (¬a ∨ b) with no fresh vars.
	f := Not(And(Lit(1), Lit(-2)))
	if f.Kind() != KindOr {
		t.Fatalf("De Morgan not applied: %s", f)
	}
	checkEquivalent(t, 2, f)
}

func TestNestedMix(t *testing.T) {
	// (a ∨ (b ∧ c)) ∧ (¬a ∨ ¬c)
	f := And(Or(Lit(1), And(Lit(2), Lit(3))), Or(Lit(-1), Lit(-3)))
	checkEquivalent(t, 3, f)
}

func TestConstFolding(t *testing.T) {
	if And() != True() || Or() != False() {
		t.Fatal("empty And/Or")
	}
	if And(True(), False()) != False() {
		t.Fatal("And const fold")
	}
	if Or(False(), True()) != True() {
		t.Fatal("Or const fold")
	}
	if Not(True()) != False() || Not(False()) != True() {
		t.Fatal("Not const fold")
	}
	if And(Lit(1)).Kind() != KindLit {
		t.Fatal("single-child And should collapse")
	}
}

func TestAssertFalseUnsat(t *testing.T) {
	e := NewEncoder(1)
	e.Assert(False())
	if !e.Unsat() {
		t.Fatal("Assert(False) must flag unsat")
	}
	s := sat.New(e.NumVars() + 1)
	if err := s.AddDIMACSVector(e.Vector()); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Solve(); st != sat.Unsatisfiable {
		t.Fatalf("got %v", st)
	}
}

func TestImplies(t *testing.T) {
	checkEquivalent(t, 2, Implies(Lit(1), Lit(2)))
}

func TestITEChainSimple(t *testing.T) {
	// if(a, b, c)
	f := ITEChain([]*Formula{Lit(1)}, []*Formula{Lit(2)}, Lit(3))
	checkEquivalent(t, 3, f)
}

func TestITEChainTwoLevel(t *testing.T) {
	// if(a, x, if(b, ¬x, y))
	f := ITEChain(
		[]*Formula{Lit(1), Lit(2)},
		[]*Formula{Lit(3), Lit(-3)},
		Lit(4))
	checkEquivalent(t, 4, f)
}

func TestITEChainConstConds(t *testing.T) {
	// constant-false condition dropped; constant-true truncates
	f := ITEChain(
		[]*Formula{False(), Lit(1), True(), Lit(2)},
		[]*Formula{Lit(3), Lit(4), Lit(-4), Lit(3)},
		Lit(3))
	// equivalent to if(x1, x4, ¬x4)
	checkEquivalent(t, 4, f)
}

func TestITEChainAllCondsFalse(t *testing.T) {
	f := ITEChain([]*Formula{False()}, []*Formula{Lit(1)}, Lit(2))
	if f.Kind() != KindLit {
		t.Fatalf("chain should collapse to else, got %s", f)
	}
}

func TestITEChainSplitting(t *testing.T) {
	// Long chain with MaxChain=3 forces recursive splitting; verify
	// equivalence against the interpreter on all assignments.
	n := 6
	conds := []*Formula{Lit(1), Lit(2), Lit(3), Lit(4), Lit(5)}
	thens := []*Formula{Lit(-1), Lit(6), Lit(-6), Lit(2), Lit(-3)}
	f := ITEChain(conds, thens, Lit(6))
	e := NewEncoder(n)
	e.MaxChain = 3
	e.Assert(f)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = mask>>(v-1)&1 == 1
		}
		want := eval(f, assign)
		got := satisfiableUnder(t, e, assign)
		if got != want {
			t.Fatalf("split chain mismatch assign=%v eval=%v sat=%v", assign[1:], want, got)
		}
	}
}

func TestSharedSubformulaEncodedOnce(t *testing.T) {
	shared := And(Lit(1), Lit(2), Lit(3))
	f := And(Or(shared, Lit(4)), Or(shared, Lit(-4)))
	e := NewEncoder(4)
	e.Assert(f)
	vars1 := e.NumVars()
	// Re-encode with duplicated (non-shared) nodes; must use more vars.
	dup1 := And(Lit(1), Lit(2), Lit(3))
	dup2 := And(Lit(1), Lit(2), Lit(3))
	g := And(Or(dup1, Lit(4)), Or(dup2, Lit(-4)))
	e2 := NewEncoder(4)
	e2.Assert(g)
	if e2.NumVars() <= vars1 {
		t.Fatalf("sharing saved nothing: shared=%d dup=%d", vars1, e2.NumVars())
	}
	checkEquivalent(t, 4, f)
}

// randomFormula builds a random formula over vars 1..n with given depth.
func randomFormula(rng *rand.Rand, n, depth int) *Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		l := rng.Intn(n) + 1
		if rng.Intn(2) == 0 {
			l = -l
		}
		return Lit(l)
	}
	switch rng.Intn(5) {
	case 0:
		k := 2 + rng.Intn(3)
		kids := make([]*Formula, k)
		for i := range kids {
			kids[i] = randomFormula(rng, n, depth-1)
		}
		return And(kids...)
	case 1:
		k := 2 + rng.Intn(3)
		kids := make([]*Formula, k)
		for i := range kids {
			kids[i] = randomFormula(rng, n, depth-1)
		}
		return Or(kids...)
	case 2:
		return Not(randomFormula(rng, n, depth-1))
	case 3:
		k := 1 + rng.Intn(3)
		conds := make([]*Formula, k)
		thens := make([]*Formula, k)
		for i := 0; i < k; i++ {
			conds[i] = randomFormula(rng, n, depth-1)
			thens[i] = randomFormula(rng, n, depth-1)
		}
		return ITEChain(conds, thens, randomFormula(rng, n, depth-1))
	default:
		return Bool(rng.Intn(2) == 0)
	}
}

// TestRandomFormulaEquivalence is the main property test: random formulas
// over few variables must be equisatisfiable with their CNF encoding under
// every assignment of the problem variables.
func TestRandomFormulaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2015))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		f := randomFormula(rng, n, 3)
		checkEquivalent(t, n, f)
	}
}

func TestStringRendering(t *testing.T) {
	f := ITEChain([]*Formula{Lit(1)}, []*Formula{And(Lit(2), Lit(3))}, Not(Or(Lit(1), And(Lit(2), Or(Lit(3), Lit(4))))))
	if f.String() == "" || True().String() != "T" || False().String() != "F" {
		t.Fatal("String rendering broken")
	}
}

func BenchmarkEncodeITEChain(b *testing.B) {
	// A 100-rule Distinguish-like chain of literal-conjunction conditions.
	rng := rand.New(rand.NewSource(5))
	n := 60
	conds := make([]*Formula, 100)
	thens := make([]*Formula, 100)
	for i := range conds {
		k := 3 + rng.Intn(5)
		lits := make([]*Formula, k)
		for j := range lits {
			l := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				l = -l
			}
			lits[j] = Lit(l)
		}
		conds[i] = And(lits...)
		thens[i] = Bool(rng.Intn(2) == 0)
	}
	f := ITEChain(conds, thens, True())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(n)
		e.Assert(f)
	}
}
