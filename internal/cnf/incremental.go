package cnf

// This file adds the incremental interface the probe generator's table
// sessions use: an encoder can emit a shared prefix (the table encoding)
// once, mark it, append per-rule delta clauses, hand just the delta to the
// solver, and rewind to the mark for the next rule. Fork clones an encoder
// at its current state so parallel workers can share one table prefix.

// Mark is a rewind point in an Encoder's output. Marks only nest LIFO:
// resetting to an older mark invalidates newer ones.
type Mark struct {
	nextVar  int
	outLen   int
	nClauses int
	trueVar  int
	unsat    bool
}

// Mark records the current encoder state.
func (e *Encoder) Mark() Mark {
	return Mark{
		nextVar:  e.nextVar,
		outLen:   len(e.out),
		nClauses: e.nClauses,
		trueVar:  e.trueVar,
		unsat:    e.unsat,
	}
}

// Reset rewinds the encoder to a previous Mark: clauses and fresh
// variables allocated since are discarded, and cached Tseitin definitions
// that lived in the discarded region are evicted (definitions from before
// the mark stay shared). The output slice is truncated in place, so
// a Vector() result obtained before the Reset must not be retained.
func (e *Encoder) Reset(m Mark) {
	e.out = e.out[:m.outLen]
	e.nClauses = m.nClauses
	e.trueVar = m.trueVar
	e.unsat = m.unsat
	// Cached definition literals are always the (positive) fresh variable
	// allocated for the node and grow monotonically, so the post-mark
	// definitions form a suffix of the insertion-order log: pop until the
	// survivors are within the mark's variable bound.
	for len(e.defs) > 0 {
		f := e.defs[len(e.defs)-1]
		if e.cache[f] <= m.nextVar {
			break
		}
		delete(e.cache, f)
		e.defs = e.defs[:len(e.defs)-1]
	}
	e.nextVar = m.nextVar
}

// VectorFrom returns the 0-terminated clause vector emitted since the
// mark. The slice aliases internal storage; do not modify or retain it
// across Reset.
func (e *Encoder) VectorFrom(m Mark) []int { return e.out[m.outLen:] }

// Define returns a DIMACS literal equivalent to f, emitting the defining
// clauses (once — definitions are cached by node identity). Unlike Assert
// it does not constrain f to hold; the caller may later assert, assume, or
// negate the returned literal.
func (e *Encoder) Define(f *Formula) int { return e.litOf(f) }

// Fork returns an independent copy of the encoder: same emitted clauses,
// variable counter, and definition cache. Appending to either copy does
// not affect the other, so workers can fork one shared table prefix and
// encode their per-rule deltas privately.
func (e *Encoder) Fork() *Encoder {
	cp := &Encoder{
		nProblem: e.nProblem,
		nextVar:  e.nextVar,
		out:      append([]int(nil), e.out...),
		nClauses: e.nClauses,
		cache:    make(map[*Formula]int, len(e.cache)),
		trueVar:  e.trueVar,
		unsat:    e.unsat,
		MaxChain: e.MaxChain,
	}
	for f, l := range e.cache {
		cp.cache[f] = l
	}
	cp.defs = append([]*Formula(nil), e.defs...)
	return cp
}
