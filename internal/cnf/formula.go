// Package cnf builds Boolean formulas and converts them to conjunctive
// normal form for an off-the-shelf SAT solver, following Appendix B of the
// Monocle paper: conjunctions and disjunctions via the Tseitin transform
// (fresh variables, equisatisfiable output), restricted negation forms, and
// the Velev if-then-else chain construction used for the Distinguish
// constraint (it mimics the priority matching of a switch TCAM).
//
// The emitted CNF is a one-dimensional vector of DIMACS integers with 0 as
// the clause terminator — the exact representation the paper's
// implementation feeds to PicoSAT, chosen there (and here) to avoid
// allocating many small per-clause objects.
package cnf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind discriminates formula AST nodes.
type Kind int

const (
	// KindConst is the constant true/false.
	KindConst Kind = iota
	// KindLit is a literal over a problem variable.
	KindLit
	// KindAnd is an n-ary conjunction.
	KindAnd
	// KindOr is an n-ary disjunction.
	KindOr
	// KindNot negates its single child.
	KindNot
	// KindITEChain is If(i1,t1, If(i2,t2, ... else)).
	KindITEChain
)

// Formula is an immutable Boolean formula node. Construct with the package
// constructors; the zero value is invalid.
type Formula struct {
	kind  Kind
	val   bool // KindConst
	lit   int  // KindLit: DIMACS literal (nonzero)
	kids  []*Formula
	conds []*Formula // KindITEChain: the i_k conditions; kids are the t_k branches
	els   *Formula   // KindITEChain: the final else branch
}

// Kind reports the node kind.
func (f *Formula) Kind() Kind { return f.kind }

var (
	trueF  = &Formula{kind: KindConst, val: true}
	falseF = &Formula{kind: KindConst, val: false}
)

// True returns the constant-true formula.
func True() *Formula { return trueF }

// False returns the constant-false formula.
func False() *Formula { return falseF }

// Bool returns the constant formula for b.
func Bool(b bool) *Formula {
	if b {
		return trueF
	}
	return falseF
}

// litTable interns literal formulas: probe generation requests the same
// few thousand literal nodes millions of times per sweep, and literal
// nodes are stateless (the encoder never keys its definition cache on
// them), so sharing is safe. Reads are one atomic load; growth copies the
// table under a mutex.
type litTable struct {
	pos, neg []*Formula // indexed by variable
}

var (
	litTab  atomic.Pointer[litTable]
	litGrow sync.Mutex
)

func init() {
	litTab.Store(&litTable{})
}

// Lit returns the literal formula for a nonzero DIMACS literal. The
// returned node may be shared: literal formulas are immutable and
// interned.
func Lit(l int) *Formula {
	if l == 0 {
		panic("cnf: zero literal")
	}
	v := l
	if v < 0 {
		v = -v
	}
	t := litTab.Load()
	if v < len(t.pos) {
		if l > 0 {
			return t.pos[v]
		}
		return t.neg[v]
	}
	litGrow.Lock()
	defer litGrow.Unlock()
	t = litTab.Load()
	if v >= len(t.pos) {
		n := 2 * v
		if n < 256 {
			n = 256
		}
		next := &litTable{pos: make([]*Formula, n), neg: make([]*Formula, n)}
		copy(next.pos, t.pos)
		copy(next.neg, t.neg)
		for i := len(t.pos); i < n; i++ {
			if i == 0 {
				continue
			}
			next.pos[i] = &Formula{kind: KindLit, lit: i}
			next.neg[i] = &Formula{kind: KindLit, lit: -i}
		}
		litTab.Store(next)
		t = next
	}
	if l > 0 {
		return t.pos[v]
	}
	return t.neg[v]
}

// IsConst reports whether f is a constant, and its value.
func (f *Formula) IsConst() (bool, bool) {
	return f.kind == KindConst, f.val
}

// And returns the conjunction of the operands with constant folding.
func And(fs ...*Formula) *Formula {
	kids := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		if c, v := f.IsConst(); c {
			if !v {
				return falseF
			}
			continue
		}
		if f.kind == KindAnd {
			kids = append(kids, f.kids...)
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return trueF
	case 1:
		return kids[0]
	}
	return &Formula{kind: KindAnd, kids: kids}
}

// Or returns the disjunction of the operands with constant folding.
func Or(fs ...*Formula) *Formula {
	kids := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		if c, v := f.IsConst(); c {
			if v {
				return trueF
			}
			continue
		}
		if f.kind == KindOr {
			kids = append(kids, f.kids...)
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return falseF
	case 1:
		return kids[0]
	}
	return &Formula{kind: KindOr, kids: kids}
}

// Not negates f. Negation is pushed through constants, literals, and (per
// Appendix B) one level of pure-literal conjunctions/disjunctions via De
// Morgan; anything deeper is represented structurally and handled by the
// encoder through a Tseitin definition variable.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KindConst:
		return Bool(!f.val)
	case KindLit:
		return Lit(-f.lit)
	case KindNot:
		return f.kids[0]
	case KindAnd, KindOr:
		// De Morgan when all children are literals (the only negation
		// shapes the paper needs); otherwise keep the Not node.
		allLits := true
		for _, k := range f.kids {
			if k.kind != KindLit {
				allLits = false
				break
			}
		}
		if allLits {
			neg := make([]*Formula, len(f.kids))
			for i, k := range f.kids {
				neg[i] = Lit(-k.lit)
			}
			if f.kind == KindAnd {
				return Or(neg...)
			}
			return And(neg...)
		}
	}
	return &Formula{kind: KindNot, kids: []*Formula{f}}
}

// Implies returns ¬a ∨ b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// ITEChain builds If(conds[0], thens[0], If(conds[1], thens[1], ... els)).
// It is the Distinguish-constraint shape: conditions are Matches tests in
// decreasing priority order, branches are DiffOutcome values, and els is the
// outcome for the table-miss case. Constant conditions are folded: a
// constant-true condition truncates the chain, a constant-false one is
// dropped.
func ITEChain(conds, thens []*Formula, els *Formula) *Formula {
	if len(conds) != len(thens) {
		panic(fmt.Sprintf("cnf: ITEChain arity mismatch %d vs %d", len(conds), len(thens)))
	}
	var cs, ts []*Formula
	for i := range conds {
		if c, v := conds[i].IsConst(); c {
			if v {
				els = thens[i]
				break
			}
			continue // never taken
		}
		cs = append(cs, conds[i])
		ts = append(ts, thens[i])
	}
	if len(cs) == 0 {
		return els
	}
	return &Formula{kind: KindITEChain, kids: ts, conds: cs, els: els}
}

// String renders the formula for debugging.
func (f *Formula) String() string {
	switch f.kind {
	case KindConst:
		if f.val {
			return "T"
		}
		return "F"
	case KindLit:
		return fmt.Sprintf("%d", f.lit)
	case KindNot:
		return "!(" + f.kids[0].String() + ")"
	case KindAnd, KindOr:
		op := " & "
		if f.kind == KindOr {
			op = " | "
		}
		s := "("
		for i, k := range f.kids {
			if i > 0 {
				s += op
			}
			s += k.String()
		}
		return s + ")"
	case KindITEChain:
		s := ""
		for i := range f.conds {
			s += fmt.Sprintf("if(%s, %s, ", f.conds[i], f.kids[i])
		}
		s += f.els.String()
		for range f.conds {
			s += ")"
		}
		return s
	}
	return "?"
}
