package cnf

// Encoder converts formulas to a CNF clause vector via the Tseitin
// transform (Appendix B of the paper). Problem variables are 1..nProblem;
// fresh definition variables are allocated above them. The output is the
// one-dimensional 0-terminated DIMACS integer vector described in §7.
type Encoder struct {
	nProblem   int
	nextVar    int
	out        []int
	nClauses   int
	cache      map[*Formula]int
	defs       []*Formula // cache keys in insertion order (for LIFO eviction on Reset)
	trueVar    int        // lazily allocated variable asserted true, for constants
	unsat      bool
	iteScratch []int // clause-assembly scratch for defineITEFlat

	// MaxChain bounds the length of an encoded if-then-else chain before
	// it is split by substituting the postfix with a fresh variable (the
	// construction is quadratic in the chain length, so very long chains
	// must be split — Appendix B). Values < 2 disable splitting.
	MaxChain int
}

// NewEncoder returns an encoder whose problem variables are 1..nProblem.
func NewEncoder(nProblem int) *Encoder {
	return &Encoder{
		nProblem: nProblem,
		nextVar:  nProblem,
		cache:    make(map[*Formula]int),
		MaxChain: 16,
	}
}

// NumVars returns the total variable count (problem + fresh).
func (e *Encoder) NumVars() int { return e.nextVar }

// NumProblemVars returns the number of problem variables.
func (e *Encoder) NumProblemVars() int { return e.nProblem }

// Vector returns the accumulated 0-terminated DIMACS clause vector.
// The slice aliases internal storage; do not modify it.
func (e *Encoder) Vector() []int { return e.out }

// NumClauses counts emitted clauses.
func (e *Encoder) NumClauses() int { return e.nClauses }

// Unsat reports whether a constant-false assertion made the formula
// trivially unsatisfiable.
func (e *Encoder) Unsat() bool { return e.unsat }

func (e *Encoder) fresh() int {
	e.nextVar++
	return e.nextVar
}

func (e *Encoder) clause(lits ...int) {
	e.out = append(e.out, lits...)
	e.out = append(e.out, 0)
	e.nClauses++
}

func (e *Encoder) constLit(v bool) int {
	if e.trueVar == 0 {
		e.trueVar = e.fresh()
		e.clause(e.trueVar)
	}
	if v {
		return e.trueVar
	}
	return -e.trueVar
}

// Assert adds clauses requiring f to be true. Top-level conjunctions are
// flattened into separate assertions and top-level literal disjunctions
// become single clauses, so the common Hit-constraint shape (a conjunction
// of ¬Matches terms) produces no fresh variables at all.
func (e *Encoder) Assert(f *Formula) {
	switch f.kind {
	case KindConst:
		if !f.val {
			e.unsat = true
			e.clause() // empty clause
		}
		return
	case KindLit:
		e.clause(f.lit)
		return
	case KindAnd:
		for _, k := range f.kids {
			e.Assert(k)
		}
		return
	case KindOr:
		// If every disjunct is a literal, emit one clause directly.
		lits := make([]int, 0, len(f.kids))
		direct := true
		for _, k := range f.kids {
			if k.kind != KindLit {
				direct = false
				break
			}
			lits = append(lits, k.lit)
		}
		if direct {
			e.clause(lits...)
			return
		}
		// General case: one definition literal per disjunct.
		lits = lits[:0]
		for _, k := range f.kids {
			lits = append(lits, e.litOf(k))
		}
		e.clause(lits...)
		return
	}
	e.clause(e.litOf(f))
}

// litOf returns a DIMACS literal s with s ↔ f encoded in the clause set.
// Structurally shared nodes are encoded once.
func (e *Encoder) litOf(f *Formula) int {
	switch f.kind {
	case KindConst:
		return e.constLit(f.val)
	case KindLit:
		return f.lit
	case KindNot:
		return -e.litOf(f.kids[0])
	}
	if l, ok := e.cache[f]; ok {
		return l
	}
	var l int
	switch f.kind {
	case KindAnd:
		l = e.defineAnd(f.kids)
	case KindOr:
		l = e.defineOr(f.kids)
	case KindITEChain:
		l = e.defineITE(f.conds, f.kids, f.els)
	default:
		panic("cnf: unknown formula kind")
	}
	e.cache[f] = l
	e.defs = append(e.defs, f)
	return l
}

// defineAnd emits v ↔ (c1 ∧ ... ∧ cn) and returns v.
func (e *Encoder) defineAnd(kids []*Formula) int {
	cl := make([]int, len(kids))
	for i, k := range kids {
		cl[i] = e.litOf(k)
	}
	v := e.fresh()
	long := make([]int, 0, len(cl)+1)
	long = append(long, v)
	for _, c := range cl {
		e.clause(-v, c)
		long = append(long, -c)
	}
	e.clause(long...)
	return v
}

// defineOr emits v ↔ (c1 ∨ ... ∨ cn) and returns v.
func (e *Encoder) defineOr(kids []*Formula) int {
	cl := make([]int, len(kids))
	for i, k := range kids {
		cl[i] = e.litOf(k)
	}
	v := e.fresh()
	long := make([]int, 0, len(cl)+1)
	long = append(long, -v)
	for _, c := range cl {
		e.clause(v, -c)
		long = append(long, c)
	}
	e.clause(long...)
	return v
}

// defineITE encodes s = If(i1,t1, If(i2,t2, ... else)) with the quadratic
// construction from Velev (Appendix B), splitting chains longer than
// MaxChain by substituting the postfix with a fresh definition variable.
func (e *Encoder) defineITE(conds, thens []*Formula, els *Formula) int {
	n := len(conds)
	if e.MaxChain >= 2 && n > e.MaxChain {
		cut := e.MaxChain - 1
		// Represent the postfix chain by its own definition literal and
		// use it as the else branch of the prefix.
		post := e.defineITE(conds[cut:], thens[cut:], els)
		return e.defineITEFlat(conds[:cut], thens[:cut], Lit(post))
	}
	return e.defineITEFlat(conds, thens, els)
}

func (e *Encoder) defineITEFlat(conds, thens []*Formula, els *Formula) int {
	n := len(conds)
	// One backing array for both literal vectors. The recursive litOf
	// calls below may re-enter defineITEFlat (chain splitting, nested
	// definitions), so these cannot live in a shared scratch buffer.
	ia := make([]int, 2*n)
	is, ts := ia[:n], ia[n:]
	for k := 0; k < n; k++ {
		is[k] = e.litOf(conds[k])
		ts[k] = e.litOf(thens[k])
	}
	el := e.litOf(els)
	s := e.fresh()

	// All litOf calls are done: from here on the clause scratch buffer is
	// safe to use, and clause() copies it out immediately. buf holds the
	// growing prefix i1 ... i_{k-1} (positive) with each clause's tail
	// appended transiently.
	buf := e.iteScratch[:0]
	for k := 0; k < n; k++ {
		pl := len(buf)
		buf = append(buf, -is[k], -ts[k], s)
		e.clause(buf...)
		buf = append(buf[:pl], -is[k], ts[k], -s)
		e.clause(buf...)
		buf = append(buf[:pl], is[k])
	}
	pl := len(buf)
	buf = append(buf, -el, s)
	e.clause(buf...)
	buf = append(buf[:pl], el, -s)
	e.clause(buf...)
	e.iteScratch = buf[:0]
	return s
}
