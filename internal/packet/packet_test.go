package packet

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"monocle/internal/header"
)

// validHeader produces an abstract header the crafter accepts.
func validHeader(rng *rand.Rand) header.Header {
	var h header.Header
	h.Set(header.EthSrc, rng.Uint64())
	h.Set(header.EthDst, rng.Uint64())
	h.Set(header.EthType, header.EthTypeIPv4)
	if rng.Intn(2) == 0 {
		h.Set(header.VlanID, uint64(rng.Intn(4095)))
		h.Set(header.VlanPCP, uint64(rng.Intn(8)))
	} else {
		h.Set(header.VlanID, header.VlanNone)
		h.Set(header.VlanPCP, 0)
	}
	h.Set(header.IPSrc, rng.Uint64())
	h.Set(header.IPDst, rng.Uint64())
	h.Set(header.IPTos, uint64(rng.Intn(256)))
	switch rng.Intn(3) {
	case 0:
		h.Set(header.IPProto, header.ProtoTCP)
		h.Set(header.TPSrc, rng.Uint64())
		h.Set(header.TPDst, rng.Uint64())
	case 1:
		h.Set(header.IPProto, header.ProtoUDP)
		h.Set(header.TPSrc, rng.Uint64())
		h.Set(header.TPDst, rng.Uint64())
	default:
		h.Set(header.IPProto, header.ProtoICMP)
		h.Set(header.TPSrc, uint64(rng.Intn(256)))
		h.Set(header.TPDst, uint64(rng.Intn(256)))
	}
	return h
}

// TestCraftParseRoundTrip is the central property: craft → parse recovers
// the abstract header (minus in_port) and payload byte-for-byte.
func TestCraftParseRoundTrip(t *testing.T) {
	f := func(seed int64, payload []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		h := validHeader(rng)
		frame, err := Craft(h, payload)
		if err != nil {
			return false
		}
		got, gotPayload, err := Parse(frame)
		if err != nil {
			return false
		}
		h.Set(header.InPort, 0) // not on the wire
		if got != h {
			return false
		}
		if len(gotPayload) != len(payload) {
			return false
		}
		for i := range payload {
			if gotPayload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCraftRejectsNonIPv4(t *testing.T) {
	var h header.Header
	h.Set(header.EthType, header.EthTypeARP)
	h.Set(header.VlanID, header.VlanNone)
	if _, err := Craft(h, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("got %v", err)
	}
}

func TestCraftRejectsUnknownProto(t *testing.T) {
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPProto, 89) // OSPF
	if _, err := Craft(h, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("got %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := validHeader(rng)
	frame, err := Craft(h, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, 13, 15, 20, len(frame) - 1} {
		if cut >= len(frame) {
			continue
		}
		if _, _, err := Parse(frame[:cut]); err == nil {
			t.Fatalf("cut=%d: want error", cut)
		}
	}
}

func TestParseDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.IPSrc, rng.Uint64())
	frame, err := Craft(h, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the IPv4 source address; header checksum must fail.
	frame[14+12] ^= 0x40
	if _, _, err := Parse(frame); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPChecksumCoversPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.IPSrc, rng.Uint64())
	frame, err := Craft(h, []byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xff // corrupt payload
	if _, _, err := Parse(frame); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v", err)
	}
}

func TestVlanTagOnWire(t *testing.T) {
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, 42)
	h.Set(header.VlanPCP, 5)
	h.Set(header.IPProto, header.ProtoUDP)
	frame, err := Craft(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if frame[12] != 0x81 || frame[13] != 0x00 {
		t.Fatal("missing 802.1Q TPID")
	}
	got, _, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(header.VlanID) != 42 || got.Get(header.VlanPCP) != 5 {
		t.Fatalf("vlan fields: %v", got)
	}
	// Untagged frame is 4 bytes shorter.
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.VlanPCP, 0)
	untagged, err := Craft(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(untagged) != len(frame)-4 {
		t.Fatalf("tagged %d vs untagged %d", len(frame), len(untagged))
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Example from RFC 1071: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2
	// (checksum = ^ddf2 = 220d).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(b); got != 0x220d {
		t.Fatalf("checksum=%#x", got)
	}
	// Odd length pads with zero.
	if checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	f := func(rule, seq, nonce uint64, sw uint32, exp uint8) bool {
		m := Metadata{
			RuleID: rule, Seq: seq, SwitchID: sw,
			Expect: Expectation(exp % 3), Nonce: nonce,
		}
		got, err := UnmarshalMetadata(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalMetadata(nil); !errors.Is(err, ErrBadMetadata) {
		t.Fatal("nil payload")
	}
	if _, err := UnmarshalMetadata(make([]byte, MetadataLen)); !errors.Is(err, ErrBadMetadata) {
		t.Fatal("zero payload")
	}
	m := Metadata{RuleID: 7}.Marshal()
	m[5] ^= 1
	if _, err := UnmarshalMetadata(m); !errors.Is(err, ErrBadMetadata) {
		t.Fatal("corrupt payload")
	}
}

// TestProbeInPacketRoundTrip simulates the full probe pipeline: metadata
// payload inside a crafted frame survives crafting, rewriting nothing, and
// parsing.
func TestProbeInPacketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		h := validHeader(rng)
		meta := Metadata{RuleID: rng.Uint64(), Seq: rng.Uint64(), SwitchID: rng.Uint32(), Nonce: rng.Uint64()}
		frame, err := Craft(h, meta.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		_, payload, err := Parse(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalMetadata(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != meta {
			t.Fatalf("metadata mismatch: %+v vs %+v", got, meta)
		}
	}
}

func BenchmarkCraft(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	h := validHeader(rng)
	payload := Metadata{RuleID: 1}.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Craft(h, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	h := validHeader(rng)
	frame, err := Craft(h, Metadata{RuleID: 1}.Marshal())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}
