package packet

import (
	"testing"

	"monocle/internal/header"
)

// probeHeader builds a representative probe packet header (tagged IPv4
// TCP — the widest frame the crafter emits).
func probeHeader() header.Header {
	var h header.Header
	h.Set(header.EthDst, 0x0000deadbeef)
	h.Set(header.EthSrc, 0x0000cafef00d)
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.VlanID, 7)
	h.Set(header.VlanPCP, 1)
	h.Set(header.IPSrc, 0x0a000001)
	h.Set(header.IPDst, 0x0a000002)
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.TPSrc, 1234)
	h.Set(header.TPDst, 80)
	return h
}

// TestCraftIntoZeroAlloc pins the reused-buffer craft path at zero
// allocations per frame: the batched probe dataplane leans on this to
// inject 10k-probe sweeps without per-probe []byte churn.
func TestCraftIntoZeroAlloc(t *testing.T) {
	h := probeHeader()
	meta := Metadata{RuleID: 42, Seq: 7, SwitchID: 3, Expect: ExpectPresent, Nonce: 99}
	frameBuf := make([]byte, 0, DefaultFrameCap)
	metaBuf := make([]byte, 0, MetadataLen)
	allocs := testing.AllocsPerRun(1000, func() {
		payload := meta.AppendTo(metaBuf[:0])
		var err error
		frameBuf, err = CraftInto(frameBuf[:0], h, payload)
		if err != nil {
			t.Fatalf("CraftInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CraftInto+AppendTo allocated %.1f times per frame, want 0", allocs)
	}
}

// TestParseZeroAlloc pins the parse path (the catch side of every probe)
// at zero allocations per frame on success.
func TestParseZeroAlloc(t *testing.T) {
	h := probeHeader()
	meta := Metadata{RuleID: 42, Seq: 7, SwitchID: 3, Expect: ExpectPresent, Nonce: 99}
	frame, err := Craft(h, meta.Marshal())
	if err != nil {
		t.Fatalf("Craft: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		got, payload, err := Parse(frame)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		if got.Get(header.IPDst) != h.Get(header.IPDst) || len(payload) != MetadataLen {
			t.Fatal("Parse round-trip mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("Parse allocated %.1f times per frame, want 0", allocs)
	}
}

// TestCraftIntoMatchesCraft proves the scratch-buffer path is
// bit-identical to the allocating one.
func TestCraftIntoMatchesCraft(t *testing.T) {
	h := probeHeader()
	meta := Metadata{RuleID: 1, Seq: 2, SwitchID: 3, Expect: ExpectAbsent, Nonce: 4}
	want, err := Craft(h, meta.Marshal())
	if err != nil {
		t.Fatalf("Craft: %v", err)
	}
	got, err := CraftInto(make([]byte, 0, DefaultFrameCap), h, meta.Marshal())
	if err != nil {
		t.Fatalf("CraftInto: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("CraftInto differs from Craft:\n got %x\nwant %x", got, want)
	}
	// AppendTo must produce exactly Marshal's bytes.
	if string(meta.AppendTo(nil)) != string(meta.Marshal()) {
		t.Fatal("Metadata.AppendTo differs from Marshal")
	}
}

// TestBufferPoolRecycles exercises the pool contract: Get after Put
// returns a zero-length frame-capable buffer, and undersized buffers are
// not recycled.
func TestBufferPoolRecycles(t *testing.T) {
	var bp BufferPool
	b := bp.Get()
	if len(b) != 0 || cap(b) < DefaultFrameCap {
		t.Fatalf("Get: len=%d cap=%d, want empty with cap >= %d", len(b), cap(b), DefaultFrameCap)
	}
	b = append(b, 1, 2, 3)
	bp.Put(b)
	b2 := bp.Get()
	if len(b2) != 0 || cap(b2) < DefaultFrameCap {
		t.Fatalf("recycled Get: len=%d cap=%d", len(b2), cap(b2))
	}
	bp.Put(make([]byte, 8)) // undersized: dropped, not recycled
	b3 := bp.Get()
	if cap(b3) < DefaultFrameCap {
		t.Fatalf("undersized buffer leaked back out of the pool (cap=%d)", cap(b3))
	}
}
