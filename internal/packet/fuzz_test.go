package packet

// Fuzz target for the probe packet crafter/parser round trip: any frame
// Parse accepts must re-craft into a frame that parses back to the same
// abstract header and payload. The codec is the boundary between the
// probe engine's abstract view and the bytes a real switch forwards
// (PacketOut payloads, caught PacketIns), so an asymmetry here means a
// live deployment would judge its own probes wrong.

import (
	"bytes"
	"testing"

	"monocle/internal/header"
)

// seedFrame crafts one valid frame for the corpus, panicking on misuse
// (seed construction only).
func seedFrame(mut func(h *header.Header), payload []byte) []byte {
	var h header.Header
	h.Set(header.EthType, header.EthTypeIPv4)
	h.Set(header.EthSrc, 0x0000aabbccdd)
	h.Set(header.EthDst, 0x000011223344)
	h.Set(header.VlanID, header.VlanNone)
	h.Set(header.IPSrc, 10<<24|1)
	h.Set(header.IPDst, 10<<24|2)
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.TPSrc, 1234)
	h.Set(header.TPDst, 80)
	mut(&h)
	f, err := Craft(h, payload)
	if err != nil {
		panic(err)
	}
	return f
}

func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(seedFrame(func(h *header.Header) {}, []byte("hello")))
	f.Add(seedFrame(func(h *header.Header) {
		h.Set(header.VlanID, 42)
		h.Set(header.VlanPCP, 5)
	}, nil))
	f.Add(seedFrame(func(h *header.Header) {
		h.Set(header.IPProto, header.ProtoUDP)
		h.Set(header.IPTos, 0xb8)
	}, []byte{1, 2, 3}))
	f.Add(seedFrame(func(h *header.Header) {
		h.Set(header.IPProto, header.ProtoICMP)
		h.Set(header.TPSrc, 8)
		h.Set(header.TPDst, 0)
	}, bytes.Repeat([]byte{0xaa}, 40)))
	// A probe-metadata payload, as real injected probes carry.
	meta := Metadata{RuleID: 7, Seq: 9, SwitchID: 3, Expect: ExpectPresent, Nonce: 1}
	f.Add(seedFrame(func(h *header.Header) { h.Set(header.VlanID, 3) }, meta.Marshal()))
	// Trace-derived seeds: the frames recorded live-switch sessions
	// actually exchange. The observe records in a -record-dir trace pin
	// the probe shape — ICMP to a 10.0.x.0 destination on vlan 1 — and
	// the catches come back with the nw_tos rewrite the churn scenarios'
	// modify rules apply, still carrying the probe metadata.
	caught := Metadata{RuleID: 102, Seq: 1, SwitchID: 1, Expect: ExpectPresent, Nonce: 0xC0FFEE}
	f.Add(seedFrame(func(h *header.Header) {
		h.Set(header.VlanID, 1)
		h.Set(header.IPProto, header.ProtoICMP)
		h.Set(header.IPDst, 10<<24|2<<8)
		h.Set(header.TPSrc, 8)
		h.Set(header.TPDst, 0)
	}, caught.Marshal()))
	f.Add(seedFrame(func(h *header.Header) {
		h.Set(header.VlanID, 1)
		h.Set(header.IPProto, header.ProtoICMP)
		h.Set(header.IPDst, 10<<24|5<<8)
		h.Set(header.IPTos, 36) // churn modify's Set nw_tos rewrite
		h.Set(header.TPSrc, 8)
		h.Set(header.TPDst, 0)
	}, Metadata{RuleID: 105, Seq: 2, SwitchID: 1, Expect: ExpectAbsent, Nonce: 0xFEED}.Marshal()))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := Parse(data)
		if err != nil {
			return // rejected input: only panics are bugs here
		}
		if got := h.Get(header.InPort); got != 0 {
			t.Fatalf("Parse set in_port %d (switch metadata is not on the wire)", got)
		}
		frame, err := Craft(h, payload)
		if err != nil {
			t.Fatalf("accepted frame does not re-craft: %v (header %v)", err, h)
		}
		h2, payload2, err := Parse(frame)
		if err != nil {
			t.Fatalf("re-crafted frame does not parse: %v", err)
		}
		if h2 != h {
			t.Fatalf("header round trip:\n first %v\nsecond %v", h, h2)
		}
		if !bytes.Equal(payload2, payload) {
			t.Fatalf("payload round trip: %x vs %x", payload, payload2)
		}
	})
}
