// Package packet translates between the abstract header view (package
// header) and real wire-format packets (§5.2 of the paper). It plays the
// role of the "existing packet crafting library" the paper leverages:
// given consistent abstract data, it assembles Ethernet / 802.1Q / IPv4 /
// TCP / UDP / ICMP frames with correct lengths and checksums, and parses
// received frames back into the abstract view.
//
// The design follows the layered serialize/decode idiom of gopacket: each
// protocol is a small layer type with SerializeTo appending its bytes and
// decode consuming them.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"monocle/internal/header"
)

// Common wire constants.
const (
	etherTypeDot1Q = 0x8100
	ipv4Version    = 4
	ipv4MinIHL     = 5
	defaultTTL     = 64
)

// ErrTruncated is returned when a frame is too short for its headers.
var ErrTruncated = errors.New("packet: truncated frame")

// ErrChecksum is returned when a checksum does not verify.
var ErrChecksum = errors.New("packet: bad checksum")

// ErrUnsupported is returned for frames outside the supported subset.
var ErrUnsupported = errors.New("packet: unsupported frame")

// ethernet is the 14-byte Ethernet II header.
type ethernet struct {
	dst, src  uint64 // low 48 bits
	etherType uint16
}

func (e ethernet) serializeTo(b []byte) []byte {
	var mac [8]byte
	binary.BigEndian.PutUint64(mac[:], e.dst<<16)
	b = append(b, mac[:6]...)
	binary.BigEndian.PutUint64(mac[:], e.src<<16)
	b = append(b, mac[:6]...)
	return binary.BigEndian.AppendUint16(b, e.etherType)
}

func decodeEthernet(b []byte) (ethernet, []byte, error) {
	if len(b) < 14 {
		return ethernet{}, nil, fmt.Errorf("%w: ethernet", ErrTruncated)
	}
	var mac [8]byte
	copy(mac[2:], b[0:6])
	dst := binary.BigEndian.Uint64(mac[:])
	copy(mac[2:], b[6:12])
	src := binary.BigEndian.Uint64(mac[:])
	return ethernet{dst: dst, src: src, etherType: binary.BigEndian.Uint16(b[12:14])}, b[14:], nil
}

// dot1q is the 4-byte 802.1Q tag (TPID already consumed as etherType).
type dot1q struct {
	pcp       uint8
	vid       uint16
	etherType uint16
}

func (d dot1q) serializeTo(b []byte) []byte {
	tci := uint16(d.pcp)<<13 | d.vid&0x0fff
	b = binary.BigEndian.AppendUint16(b, tci)
	return binary.BigEndian.AppendUint16(b, d.etherType)
}

func decodeDot1Q(b []byte) (dot1q, []byte, error) {
	if len(b) < 4 {
		return dot1q{}, nil, fmt.Errorf("%w: 802.1q", ErrTruncated)
	}
	tci := binary.BigEndian.Uint16(b[0:2])
	return dot1q{
		pcp:       uint8(tci >> 13),
		vid:       tci & 0x0fff,
		etherType: binary.BigEndian.Uint16(b[2:4]),
	}, b[4:], nil
}

// ipv4 carries the fields Monocle manipulates; the rest use defaults.
type ipv4 struct {
	tos      uint8
	id       uint16
	ttl      uint8
	protocol uint8
	src, dst uint32
	length   uint16 // total length incl. header
}

func (ip ipv4) serializeTo(b []byte) []byte {
	start := len(b)
	b = append(b,
		ipv4Version<<4|ipv4MinIHL, // version + IHL
		ip.tos, 0, 0,              // tos, total length (patched below)
		0, 0, // identification
		0x40, 0, // flags (DF), fragment offset
		ip.ttl, ip.protocol,
		0, 0, // checksum (patched below)
	)
	b = binary.BigEndian.AppendUint32(b, ip.src)
	b = binary.BigEndian.AppendUint32(b, ip.dst)
	binary.BigEndian.PutUint16(b[start+2:], ip.length)
	binary.BigEndian.PutUint16(b[start+4:], ip.id)
	cks := checksum(b[start : start+20])
	binary.BigEndian.PutUint16(b[start+10:], cks)
	return b
}

func decodeIPv4(b []byte) (ipv4, []byte, error) {
	if len(b) < 20 {
		return ipv4{}, nil, fmt.Errorf("%w: ipv4", ErrTruncated)
	}
	if b[0]>>4 != ipv4Version {
		return ipv4{}, nil, fmt.Errorf("%w: ip version %d", ErrUnsupported, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return ipv4{}, nil, fmt.Errorf("%w: ihl", ErrTruncated)
	}
	if checksum(b[:ihl]) != 0 {
		return ipv4{}, nil, fmt.Errorf("%w: ipv4 header", ErrChecksum)
	}
	ip := ipv4{
		tos:      b[1],
		length:   binary.BigEndian.Uint16(b[2:4]),
		id:       binary.BigEndian.Uint16(b[4:6]),
		ttl:      b[8],
		protocol: b[9],
		src:      binary.BigEndian.Uint32(b[12:16]),
		dst:      binary.BigEndian.Uint32(b[16:20]),
	}
	if int(ip.length) < ihl || int(ip.length) > len(b) {
		return ipv4{}, nil, fmt.Errorf("%w: ipv4 total length", ErrTruncated)
	}
	return ip, b[ihl:ip.length], nil
}

// checksum is the RFC 1071 ones-complement sum.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum folds the IPv4 pseudo-header into a partial sum for
// TCP/UDP checksums.
func pseudoHeaderSum(src, dst uint32, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

func finishChecksum(partial uint32, b []byte) uint16 {
	sum := partial
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// serializeTCP appends a minimal TCP header plus payload. Sequence numbers
// are zero and the only flag is ACK, which is sufficient for probes.
func serializeTCP(b []byte, src, dst uint16, ip ipv4, payload []byte) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, src)
	b = binary.BigEndian.AppendUint16(b, dst)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)        // seq, ack
	b = append(b, 5<<4, 0x10)                    // data offset, flags=ACK
	b = binary.BigEndian.AppendUint16(b, 0xffff) // window
	b = append(b, 0, 0, 0, 0)                    // checksum, urgent
	b = append(b, payload...)
	l4 := b[start:]
	cks := finishChecksum(pseudoHeaderSum(ip.src, ip.dst, ip.protocol, len(l4)), l4)
	binary.BigEndian.PutUint16(b[start+16:], cks)
	return b
}

func decodeTCP(b []byte, ip ipv4) (src, dst uint16, payload []byte, err error) {
	if len(b) < 20 {
		return 0, 0, nil, fmt.Errorf("%w: tcp", ErrTruncated)
	}
	if finishChecksum(pseudoHeaderSum(ip.src, ip.dst, ip.protocol, len(b)), b) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: tcp", ErrChecksum)
	}
	off := int(b[12]>>4) * 4
	if off < 20 || len(b) < off {
		return 0, 0, nil, fmt.Errorf("%w: tcp offset", ErrTruncated)
	}
	return binary.BigEndian.Uint16(b[0:2]), binary.BigEndian.Uint16(b[2:4]), b[off:], nil
}

func serializeUDP(b []byte, src, dst uint16, ip ipv4, payload []byte) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, src)
	b = binary.BigEndian.AppendUint16(b, dst)
	b = binary.BigEndian.AppendUint16(b, uint16(8+len(payload)))
	b = append(b, 0, 0) // checksum
	b = append(b, payload...)
	l4 := b[start:]
	cks := finishChecksum(pseudoHeaderSum(ip.src, ip.dst, ip.protocol, len(l4)), l4)
	if cks == 0 {
		cks = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[start+6:], cks)
	return b
}

func decodeUDP(b []byte, ip ipv4) (src, dst uint16, payload []byte, err error) {
	if len(b) < 8 {
		return 0, 0, nil, fmt.Errorf("%w: udp", ErrTruncated)
	}
	ln := int(binary.BigEndian.Uint16(b[4:6]))
	if ln < 8 || ln > len(b) {
		return 0, 0, nil, fmt.Errorf("%w: udp length", ErrTruncated)
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 {
		if finishChecksum(pseudoHeaderSum(ip.src, ip.dst, ip.protocol, ln), b[:ln]) != 0 {
			return 0, 0, nil, fmt.Errorf("%w: udp", ErrChecksum)
		}
	}
	return binary.BigEndian.Uint16(b[0:2]), binary.BigEndian.Uint16(b[2:4]), b[8:ln], nil
}

// serializeICMP uses the OpenFlow 1.0 convention that tp_src/tp_dst carry
// the ICMP type and code.
func serializeICMP(b []byte, icmpType, icmpCode uint8, payload []byte) []byte {
	start := len(b)
	b = append(b, icmpType, icmpCode, 0, 0) // type, code, checksum
	b = append(b, 0, 0, 0, 0)               // identifier, sequence
	b = append(b, payload...)
	cks := checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:], cks)
	return b
}

func decodeICMP(b []byte) (icmpType, icmpCode uint8, payload []byte, err error) {
	if len(b) < 8 {
		return 0, 0, nil, fmt.Errorf("%w: icmp", ErrTruncated)
	}
	if checksum(b) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: icmp", ErrChecksum)
	}
	return b[0], b[1], b[8:], nil
}

// Craft assembles a wire-format frame from the abstract header and
// payload. The in_port field is switch metadata and not represented on the
// wire. It returns an error if the abstract values cannot appear in a
// valid packet (e.g. an EtherType the crafter does not speak) — by
// construction the probe generator's domain handling avoids these.
func Craft(h header.Header, payload []byte) ([]byte, error) {
	return CraftInto(make([]byte, 0, 64+len(payload)), h, payload)
}

// CraftInto is Craft appending into dst (which is truncated first): with a
// dst of sufficient capacity it performs no allocation, so a hot injection
// loop can reuse one scratch buffer across probes. The returned slice
// aliases dst's storage whenever it fits.
func CraftInto(dst []byte, h header.Header, payload []byte) ([]byte, error) {
	if h.Get(header.EthType) != header.EthTypeIPv4 {
		return nil, fmt.Errorf("%w: dl_type %#x", ErrUnsupported, h.Get(header.EthType))
	}
	b := dst[:0]
	eth := ethernet{dst: h.Get(header.EthDst), src: h.Get(header.EthSrc)}
	tagged := h.Get(header.VlanID) != header.VlanNone
	if tagged {
		eth.etherType = etherTypeDot1Q
	} else {
		eth.etherType = uint16(h.Get(header.EthType))
	}
	b = eth.serializeTo(b)
	if tagged {
		b = dot1q{
			pcp:       uint8(h.Get(header.VlanPCP)),
			vid:       uint16(h.Get(header.VlanID)),
			etherType: uint16(h.Get(header.EthType)),
		}.serializeTo(b)
	}

	proto := uint8(h.Get(header.IPProto))
	var l4len int
	switch uint64(proto) {
	case header.ProtoTCP:
		l4len = 20 + len(payload)
	case header.ProtoUDP, header.ProtoICMP:
		l4len = 8 + len(payload)
	default:
		return nil, fmt.Errorf("%w: nw_proto %d", ErrUnsupported, proto)
	}
	ip := ipv4{
		tos:      uint8(h.Get(header.IPTos)),
		ttl:      defaultTTL,
		protocol: proto,
		src:      uint32(h.Get(header.IPSrc)),
		dst:      uint32(h.Get(header.IPDst)),
		length:   uint16(20 + l4len),
	}
	b = ip.serializeTo(b)
	switch uint64(proto) {
	case header.ProtoTCP:
		b = serializeTCP(b, uint16(h.Get(header.TPSrc)), uint16(h.Get(header.TPDst)), ip, payload)
	case header.ProtoUDP:
		b = serializeUDP(b, uint16(h.Get(header.TPSrc)), uint16(h.Get(header.TPDst)), ip, payload)
	case header.ProtoICMP:
		b = serializeICMP(b, uint8(h.Get(header.TPSrc)), uint8(h.Get(header.TPDst)), payload)
	}
	return b, nil
}

// Parse decodes a frame produced by Craft (or a compatible stack) back
// into the abstract view plus its payload. in_port is set to zero.
func Parse(frame []byte) (header.Header, []byte, error) {
	var h header.Header
	eth, rest, err := decodeEthernet(frame)
	if err != nil {
		return h, nil, err
	}
	h.Set(header.EthDst, eth.dst)
	h.Set(header.EthSrc, eth.src)
	etherType := eth.etherType
	h.Set(header.VlanID, header.VlanNone)
	if etherType == etherTypeDot1Q {
		var q dot1q
		q, rest, err = decodeDot1Q(rest)
		if err != nil {
			return h, nil, err
		}
		h.Set(header.VlanID, uint64(q.vid))
		h.Set(header.VlanPCP, uint64(q.pcp))
		etherType = q.etherType
	}
	h.Set(header.EthType, uint64(etherType))
	if uint64(etherType) != header.EthTypeIPv4 {
		return h, nil, fmt.Errorf("%w: dl_type %#x", ErrUnsupported, etherType)
	}
	ip, l4, err := decodeIPv4(rest)
	if err != nil {
		return h, nil, err
	}
	h.Set(header.IPSrc, uint64(ip.src))
	h.Set(header.IPDst, uint64(ip.dst))
	h.Set(header.IPProto, uint64(ip.protocol))
	h.Set(header.IPTos, uint64(ip.tos))
	var payload []byte
	switch uint64(ip.protocol) {
	case header.ProtoTCP:
		var s, d uint16
		s, d, payload, err = decodeTCP(l4, ip)
		h.Set(header.TPSrc, uint64(s))
		h.Set(header.TPDst, uint64(d))
	case header.ProtoUDP:
		var s, d uint16
		s, d, payload, err = decodeUDP(l4, ip)
		h.Set(header.TPSrc, uint64(s))
		h.Set(header.TPDst, uint64(d))
	case header.ProtoICMP:
		var ty, co uint8
		ty, co, payload, err = decodeICMP(l4)
		h.Set(header.TPSrc, uint64(ty))
		h.Set(header.TPDst, uint64(co))
	default:
		return h, nil, fmt.Errorf("%w: nw_proto %d", ErrUnsupported, ip.protocol)
	}
	if err != nil {
		return h, nil, err
	}
	return h, payload, nil
}
