package packet

import "sync"

// DefaultFrameCap sizes pooled frame buffers for the common probe shape:
// Ethernet + 802.1Q + IPv4 + L4 header (≤ 64 bytes of headers) plus the
// fixed-width probe metadata payload, rounded up to a power of two.
const DefaultFrameCap = 128

// BufferPool recycles frame buffers across probe injections — the
// mempool discipline of batch dataplanes (BESS, DPDK) applied to the
// crafting hot path: a sweep of 10k probes reuses a handful of buffers
// instead of allocating one frame each. It is safe for concurrent use;
// the zero value is ready.
type BufferPool struct {
	p sync.Pool
}

// Get returns a zero-length buffer with at least DefaultFrameCap
// capacity, reusing a previously Put buffer when one is available.
func (bp *BufferPool) Get() []byte {
	if b, ok := bp.p.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return make([]byte, 0, DefaultFrameCap)
}

// Put recycles a buffer obtained from Get (or any buffer the caller no
// longer needs). The caller must not touch b afterwards. Undersized
// buffers are dropped rather than recycled, so the pool converges on
// frame-capable storage.
func (bp *BufferPool) Put(b []byte) {
	if cap(b) < DefaultFrameCap {
		return
	}
	b = b[:0]
	bp.p.Put(&b)
}
