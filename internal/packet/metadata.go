package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Probe metadata (§4.2): Monocle embeds "rule under test and expected
// result" into the probe payload, which switches cannot touch, so a caught
// probe can be matched back to the rule it was monitoring even when many
// probes are in flight. The layout is fixed-width and independent of host
// byte order:
//
//	0:4   magic "MNCL"
//	4:12  rule id
//	12:20 sequence number
//	20:24 switch id of the probed switch
//	24:25 expectation code
//	25:33 nonce (generation epoch; invalidates stale in-flight probes)
//	33:35 checksum over bytes 0:33
const (
	metaMagic = "MNCL"
	// MetadataLen is the wire size of the probe metadata payload.
	MetadataLen = 35
)

// Expectation tells the collector how to interpret the probe's arrival.
type Expectation uint8

const (
	// ExpectPresent: arrival consistent with Present confirms the rule.
	ExpectPresent Expectation = iota
	// ExpectAbsent: arrival consistent with Absent confirms a deletion.
	ExpectAbsent
	// ExpectModified: arrival with the new rewrite confirms a
	// modification.
	ExpectModified
)

// ErrBadMetadata is returned when a payload is not a Monocle probe.
var ErrBadMetadata = errors.New("packet: not a Monocle probe payload")

// Metadata identifies one in-flight probe.
type Metadata struct {
	RuleID   uint64
	Seq      uint64
	SwitchID uint32
	Expect   Expectation
	Nonce    uint64
}

// Marshal encodes the metadata into its fixed wire layout.
func (m Metadata) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, MetadataLen))
}

// AppendTo appends the fixed wire layout to b and returns the extended
// slice. With spare capacity it performs no allocation — the zero-alloc
// counterpart of Marshal for reused scratch buffers.
func (m Metadata) AppendTo(b []byte) []byte {
	start := len(b)
	b = append(b, metaMagic...)
	b = binary.BigEndian.AppendUint64(b, m.RuleID)
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint32(b, m.SwitchID)
	b = append(b, byte(m.Expect))
	b = binary.BigEndian.AppendUint64(b, m.Nonce)
	return binary.BigEndian.AppendUint16(b, checksum(b[start:start+33]))
}

// UnmarshalMetadata decodes and verifies a probe payload.
func UnmarshalMetadata(b []byte) (Metadata, error) {
	var m Metadata
	if len(b) < MetadataLen {
		return m, fmt.Errorf("%w: %d bytes", ErrBadMetadata, len(b))
	}
	if string(b[0:4]) != metaMagic {
		return m, fmt.Errorf("%w: bad magic", ErrBadMetadata)
	}
	if binary.BigEndian.Uint16(b[33:35]) != checksum(b[:33]) {
		return m, fmt.Errorf("%w: bad checksum", ErrBadMetadata)
	}
	m.RuleID = binary.BigEndian.Uint64(b[4:12])
	m.Seq = binary.BigEndian.Uint64(b[12:20])
	m.SwitchID = binary.BigEndian.Uint32(b[20:24])
	m.Expect = Expectation(b[24])
	m.Nonce = binary.BigEndian.Uint64(b[25:33])
	return m, nil
}
