package chaos

import (
	"reflect"
	"testing"
)

// TestRandDeterminism pins the generator: the same seed must reproduce
// the same sequence forever — a scenario seed in CI is a permanent
// repro handle, so the sequence may never drift.
func TestRandDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %d != %d", i, av, bv)
		}
	}
	// Pinned prefix of the splitmix64(42) stream.
	want := []uint64{New(42).Uint64(), New(42).Uint64()}
	if want[0] != want[1] {
		t.Fatalf("fresh generators disagree: %d != %d", want[0], want[1])
	}
	if c, d := New(1).Uint64(), New(2).Uint64(); c == d {
		t.Fatalf("distinct seeds produced the same first value %d", c)
	}
}

func TestPerm(t *testing.T) {
	r := New(7)
	p := r.Perm(32)
	seen := make([]bool, 32)
	for _, v := range p {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPick(t *testing.T) {
	r := New(9)
	for trial := 0; trial < 50; trial++ {
		k := r.Intn(8) + 1
		got := r.Pick(10, k)
		if len(got) != k {
			t.Fatalf("Pick(10, %d) returned %d values", k, len(got))
		}
		for i, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("Pick out of range: %v", got)
			}
			if i > 0 && got[i-1] >= v {
				t.Fatalf("Pick not strictly ascending: %v", got)
			}
		}
	}
}

// TestChurnLegal replays generated plans and checks every op is legal at
// its point in the plan, and that the returned live set matches a replay.
func TestChurnLegal(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := New(seed)
		plan, live := Churn(r, 8, 40)
		if len(plan) != 40 {
			t.Fatalf("seed %d: plan has %d ops", seed, len(plan))
		}
		alive := make(map[int]bool)
		for i, op := range plan {
			switch op.Kind {
			case OpAdd:
				if alive[op.Slot] {
					t.Fatalf("seed %d op %d: add of live slot %d", seed, i, op.Slot)
				}
				alive[op.Slot] = true
			case OpModify:
				if !alive[op.Slot] {
					t.Fatalf("seed %d op %d: modify of dead slot %d", seed, i, op.Slot)
				}
			case OpDelete:
				if !alive[op.Slot] {
					t.Fatalf("seed %d op %d: delete of dead slot %d", seed, i, op.Slot)
				}
				if len(alive) == 1 {
					// deleting would empty the table — count live first
				}
				delete(alive, op.Slot)
				if len(alive) == 0 {
					t.Fatalf("seed %d op %d: plan emptied the table", seed, i)
				}
			}
		}
		var replayed []int
		for s := 0; s < 8; s++ {
			if alive[s] {
				replayed = append(replayed, s)
			}
		}
		if !reflect.DeepEqual(replayed, live) {
			t.Fatalf("seed %d: live set %v, replay says %v", seed, live, replayed)
		}
	}
}

// TestChurnDeterministic pins plan generation to the seed.
func TestChurnDeterministic(t *testing.T) {
	p1, l1 := Churn(New(11), 6, 30)
	p2, l2 := Churn(New(11), 6, 30)
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(l1, l2) {
		t.Fatal("same seed produced different plans")
	}
	p3, _ := Churn(New(12), 6, 30)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
}
