// Package chaos generates the deterministic adversarial inputs behind
// the scenario fleet: a tiny seeded PRNG whose sequence is pinned by this
// package (not by a standard-library implementation that may change
// between releases) and plan generators that turn it into legal
// rule-churn storms. Everything is a pure function of the seed, so a
// scenario that fails in CI reproduces bit-for-bit from its name and
// seed alone.
package chaos

import "fmt"

// Rand is a splitmix64 PRNG. The zero value is a valid generator seeded
// with zero.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the splitmix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns the next coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Pick returns k distinct values from [0, n) in ascending order.
// It panics when k > n.
func (r *Rand) Pick(n, k int) []int {
	if k > n {
		panic("chaos: Pick with k > n")
	}
	perm := r.Perm(n)[:k]
	// Insertion sort: k is tiny and this keeps the package dependency-free.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}

// OpKind classifies one churn-plan operation.
type OpKind uint8

// Churn-plan operation kinds.
const (
	// OpAdd installs a rule in a currently-dead slot.
	OpAdd OpKind = iota
	// OpModify replaces the action list of a live slot's rule.
	OpModify
	// OpDelete removes a live slot's rule.
	OpDelete
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one operation of a churn plan: Kind applied to rule slot Slot.
type Op struct {
	Kind OpKind
	Slot int
}

// Churn generates an n-op add/modify/delete storm over rule slots
// [0, slots): every modify and delete targets a slot that is live at that
// point of the plan, every add targets a dead one, and the plan never
// deletes the last live rule (an empty table would make the following
// sweep vacuous). It returns the plan and the slots live after applying
// all of it, ascending.
func Churn(r *Rand, slots, n int) (plan []Op, live []int) {
	if slots <= 0 {
		panic("chaos: Churn with no slots")
	}
	alive := make([]bool, slots)
	count := 0
	var dead, up []int
	for i := 0; i < n; i++ {
		dead = dead[:0]
		up = up[:0]
		for s, a := range alive {
			if a {
				up = append(up, s)
			} else {
				dead = append(dead, s)
			}
		}
		var kinds []OpKind
		if len(dead) > 0 {
			kinds = append(kinds, OpAdd)
		}
		if count > 0 {
			kinds = append(kinds, OpModify)
		}
		if count > 1 {
			kinds = append(kinds, OpDelete)
		}
		op := Op{Kind: kinds[r.Intn(len(kinds))]}
		switch op.Kind {
		case OpAdd:
			op.Slot = dead[r.Intn(len(dead))]
			alive[op.Slot] = true
			count++
		case OpModify:
			op.Slot = up[r.Intn(len(up))]
		case OpDelete:
			op.Slot = up[r.Intn(len(up))]
			alive[op.Slot] = false
			count--
		}
		plan = append(plan, op)
	}
	for s, a := range alive {
		if a {
			live = append(live, s)
		}
	}
	return plan, live
}
