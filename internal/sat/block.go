package sat

import "fmt"

// Block is an immutable, pre-parsed clause block: the DIMACS integers are
// validated and converted to internal literals once, at compile time, so
// the block can be attached to a solver any number of times (AddBlock)
// with no per-clause parsing, deduplication, or allocation. The probe
// generator compiles one block per flow-table rule definition and attaches
// only the blocks in the probed rule's scope to each solve.
//
// Compiled clauses must be well-formed: no duplicate literals and no
// tautologies (x ∨ ¬x). Tseitin-encoder output satisfies this.
type Block struct {
	lits   []lit
	lens   []int32
	maxVar int
}

// CompileBlock parses a 0-terminated DIMACS vector into a Block.
func CompileBlock(vec []int) (Block, error) {
	var b Block
	start := 0
	for i, x := range vec {
		if x == 0 {
			n := i - start
			if n == 0 {
				return Block{}, fmt.Errorf("sat: empty clause in block")
			}
			b.lens = append(b.lens, int32(n))
			start = i + 1
			continue
		}
		v := x
		if v < 0 {
			v = -v
		}
		if v > b.maxVar {
			b.maxVar = v
		}
		b.lits = append(b.lits, toLit(x))
	}
	if start != len(vec) {
		return Block{}, fmt.Errorf("sat: block vector not 0-terminated (trailing %d literals)", len(vec)-start)
	}
	return b, nil
}

// Empty reports whether the block contains no clauses.
func (b *Block) Empty() bool { return len(b.lens) == 0 }

// NumClauses returns the number of clauses in the block.
func (b *Block) NumClauses() int { return len(b.lens) }

// MaxVar returns the highest variable referenced by the block.
func (b *Block) MaxVar() int { return b.maxVar }

// AddBlock attaches every clause of the block. The solver must already
// have room for the block's variables (EnsureVars). Clause literals are
// copied into the solver's retractable arena, so RetractTo reclaims the
// storage wholesale. Clauses satisfied by top-level facts are skipped;
// clauses unit under them propagate immediately.
func (s *Solver) AddBlock(b *Block) {
	if !s.ok {
		return
	}
	if b.maxVar > s.nVars {
		panic(fmt.Sprintf("sat: block references var %d > %d; call EnsureVars first", b.maxVar, s.nVars))
	}
	s.cancelUntil(0)
	pos := 0
	for _, n := range b.lens {
		cl := b.lits[pos : pos+int(n)]
		pos += int(n)

		// Find two watchable (non-false) literals under the top-level
		// facts; detect satisfied and unit clauses on the way. All
		// assignments are at level 0 here.
		i0, i1 := -1, -1
		sat0 := false
		for i, l := range cl {
			switch s.valueLit(l) {
			case vTrue:
				sat0 = true
			case unassigned:
				if i0 < 0 {
					i0 = i
				} else if i1 < 0 {
					i1 = i
				}
			}
			if sat0 {
				break
			}
		}
		if sat0 {
			continue
		}
		if i0 < 0 {
			s.ok = false // every literal false at top level
			return
		}
		if i1 < 0 {
			// Unit under the top-level facts.
			if !s.enqueue(cl[i0], crefNil) || s.propagate() != crefNil {
				s.ok = false
				return
			}
			continue
		}
		start := len(s.arena)
		if start+len(cl) > cap(s.arena) {
			s.growArena(start + len(cl))
		}
		s.arena = append(s.arena, cl...)
		lits := s.arena[start:len(s.arena):len(s.arena)]
		// i1 > i0 >= 0, so the two swaps cannot interfere.
		lits[0], lits[i0] = lits[i0], lits[0]
		lits[1], lits[i1] = lits[i1], lits[1]
		s.db = append(s.db, clause{lits: lits, scope: s.depth, arenaOff: int32(start)})
		s.watch(cref(len(s.db) - 1))
	}
}

// growArena reallocates the clause arena and rebinds every arena-backed
// clause to the new backing array. Keeping the invariant that all
// arena-backed literals live in the *current* arena is what lets RetractTo
// restore them with one bulk copy instead of a per-clause loop.
func (s *Solver) growArena(need int) {
	newCap := 2 * cap(s.arena)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	next := make([]lit, len(s.arena), newCap)
	copy(next, s.arena)
	s.arena = next
	for i := range s.db {
		c := &s.db[i]
		if c.arenaOff >= 0 {
			end := int(c.arenaOff) + len(c.lits)
			c.lits = s.arena[c.arenaOff:end:end]
		}
	}
}
