package sat

import (
	"math/rand"
	"testing"
)

// base3 loads (x1 ∨ x2) ∧ (¬x1 ∨ x3) into a fresh solver.
func base3(t *testing.T) *Solver {
	t.Helper()
	s := New(3)
	for _, c := range [][]int{{1, 2}, {-1, 3}} {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSolveAssumingSAT(t *testing.T) {
	s := base3(t)
	st, m := s.SolveAssuming(-2)
	if st != Satisfiable {
		t.Fatalf("got %v, want SAT", st)
	}
	// ¬x2 forces x1 (first clause) which forces x3 (second clause).
	if m[2] || !m[1] || !m[3] {
		t.Fatalf("model %v violates assumption or clauses", m)
	}
}

func TestSolveAssumingUNSATThenReusable(t *testing.T) {
	s := base3(t)
	// x1 ∧ ¬x3 contradicts (¬x1 ∨ x3).
	if st, _ := s.SolveAssuming(1, -3); st != Unsatisfiable {
		t.Fatalf("got %v, want UNSAT under assumptions", st)
	}
	// The UNSAT verdict was relative to the assumptions only: the solver
	// stays usable, under other assumptions and with none at all.
	if st, m := s.SolveAssuming(-2); st != Satisfiable || !m[1] {
		t.Fatalf("solver not reusable after assumption UNSAT: %v %v", st, m)
	}
	if st, _ := s.Solve(); st != Satisfiable {
		t.Fatal("plain Solve failed after assumption solves")
	}
}

func TestSolveAssumingConflictingAssumptions(t *testing.T) {
	s := base3(t)
	if st, _ := s.SolveAssuming(2, -2); st != Unsatisfiable {
		t.Fatal("contradictory assumptions must be UNSAT")
	}
	if st, _ := s.Solve(); st != Satisfiable {
		t.Fatal("solver must recover")
	}
}

func TestSolveAssumingGloballyUNSAT(t *testing.T) {
	s := New(1)
	_ = s.AddClause(1)
	_ = s.AddClause(-1)
	if st, _ := s.SolveAssuming(1); st != Unsatisfiable {
		t.Fatal("globally UNSAT formula must stay UNSAT under assumptions")
	}
}

func TestCheckpointRetractClauses(t *testing.T) {
	s := base3(t)
	cp := s.Mark()
	// Make the formula UNSAT, observe it, then retract back to SAT.
	_ = s.AddClause(-1)
	_ = s.AddClause(2)
	_ = s.AddClause(-2)
	if st, _ := s.Solve(); st != Unsatisfiable {
		t.Fatal("expected UNSAT after contradictory clauses")
	}
	s.RetractTo(cp)
	st, m := s.Solve()
	if st != Satisfiable {
		t.Fatalf("got %v after retract, want SAT", st)
	}
	checkModel(t, [][]int{{1, 2}, {-1, 3}}, m)
}

func TestCheckpointRetractVars(t *testing.T) {
	s := base3(t)
	cp := s.Mark()
	s.EnsureVars(6)
	if s.NumVars() != 6 {
		t.Fatalf("NumVars=%d after EnsureVars(6)", s.NumVars())
	}
	_ = s.AddClause(4, 5)
	_ = s.AddClause(-5, 6)
	if st, _ := s.Solve(); st != Satisfiable {
		t.Fatal("delta instance should be SAT")
	}
	s.RetractTo(cp)
	if s.NumVars() != 3 {
		t.Fatalf("NumVars=%d after retract, want 3", s.NumVars())
	}
	if st, _ := s.SolveAssuming(-2); st != Satisfiable {
		t.Fatal("base instance should stay SAT after retract")
	}
}

func TestRetractIsDeterministic(t *testing.T) {
	s := New(8)
	rng := rand.New(rand.NewSource(42))
	var clauses [][]int
	for i := 0; i < 20; i++ {
		c := []int{rng.Intn(8) + 1, rng.Intn(8) + 1, rng.Intn(8) + 1}
		for j := range c {
			if rng.Intn(2) == 0 {
				c[j] = -c[j]
			}
		}
		clauses = append(clauses, c)
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	cp := s.Mark()
	st1, m1 := s.Solve()
	s.RetractTo(cp)
	// A solve over different delta clauses in between must not leak into
	// the next base solve.
	_ = s.AddClause(1, 2)
	_ = s.AddClause(-1, -2)
	_, _ = s.Solve()
	s.RetractTo(cp)
	st2, m2 := s.Solve()
	if st1 != st2 {
		t.Fatalf("status changed across retract: %v vs %v", st1, st2)
	}
	if st1 == Satisfiable {
		checkModel(t, clauses, m2)
		for v := 1; v <= 8; v++ {
			if m1[v] != m2[v] {
				t.Fatalf("model not deterministic after retract: %v vs %v", m1, m2)
			}
		}
	}
}

// TestIncrementalAgainstFresh cross-checks the incremental lifecycle
// (mark, add delta, solve under assumptions, retract) against fresh
// one-shot solvers on random instances.
func TestIncrementalAgainstFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for iter := 0; iter < 100; iter++ {
		nVars := 4 + rng.Intn(8)
		mk := func(n int) [][]int {
			var cs [][]int
			for i := 0; i < n; i++ {
				k := 1 + rng.Intn(3)
				c := make([]int, k)
				for j := range c {
					c[j] = rng.Intn(nVars) + 1
					if rng.Intn(2) == 0 {
						c[j] = -c[j]
					}
				}
				cs = append(cs, c)
			}
			return cs
		}
		base := mk(2 + rng.Intn(6))
		s := New(nVars)
		for _, c := range base {
			_ = s.AddClause(c...)
		}
		cp := s.Mark()
		for round := 0; round < 3; round++ {
			delta := mk(1 + rng.Intn(4))
			for _, c := range delta {
				_ = s.AddClause(c...)
			}
			var assume []int
			for len(assume) < rng.Intn(3) {
				a := rng.Intn(nVars) + 1
				if rng.Intn(2) == 0 {
					a = -a
				}
				assume = append(assume, a)
			}
			got, model := s.SolveAssuming(assume...)

			fresh := New(nVars)
			for _, c := range base {
				_ = fresh.AddClause(c...)
			}
			for _, c := range delta {
				_ = fresh.AddClause(c...)
			}
			for _, a := range assume {
				_ = fresh.AddClause(a)
			}
			want, _ := fresh.Solve()
			if got != want {
				t.Fatalf("iter %d round %d: incremental=%v fresh=%v (base=%v delta=%v assume=%v)",
					iter, round, got, want, base, delta, assume)
			}
			if got == Satisfiable {
				checkModel(t, base, model)
				checkModel(t, delta, model)
				for _, a := range assume {
					v := a
					if v < 0 {
						v = -v
					}
					if (a > 0) != model[v] {
						t.Fatalf("assumption %d violated by model", a)
					}
				}
			}
			s.RetractTo(cp)
		}
	}
}
