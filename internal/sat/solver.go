// Package sat implements a complete Boolean satisfiability solver in the
// spirit of PicoSAT, which the Monocle paper uses as its backend solver.
//
// The solver consumes clauses in the DIMACS convention: a clause is a list
// of non-zero integers, where a positive integer v denotes the variable v
// and a negative integer -v denotes its negation. Following the paper's
// implementation note (§7), the whole CNF formula can also be supplied as a
// single one-dimensional vector of integers with 0 acting as the clause
// terminator; this avoids allocating one small slice per clause on the hot
// path of probe generation.
//
// The algorithm is conflict-driven clause learning (CDCL) with two-literal
// watching, first-UIP conflict analysis, non-chronological backjumping, an
// exponential VSIDS-style activity heuristic, and Luby restarts. Probe
// instances are small (a few hundred variables), so the solver is tuned for
// low constant overhead rather than industrial-scale inputs.
package sat

import (
	"errors"
	"fmt"
)

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means solving was aborted (e.g. by budget exhaustion).
	Unknown Status = iota
	// Satisfiable means a model was found.
	Satisfiable
	// Unsatisfiable means no assignment satisfies the formula.
	Unsatisfiable
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Satisfiable:
		return "SAT"
	case Unsatisfiable:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBadLiteral is returned when a clause contains a literal whose variable
// index is zero or out of range.
var ErrBadLiteral = errors.New("sat: literal out of range")

// lit is an internal literal encoding: variable v (1-based) with sign s is
// encoded as 2*v + s where s=1 for negated. lit 0/1 are unused.
type lit uint32

func toLit(dimacs int) lit {
	if dimacs > 0 {
		return lit(2 * dimacs)
	}
	return lit(-2*dimacs + 1)
}

func (l lit) dimacs() int {
	v := int(l >> 1)
	if l&1 == 1 {
		return -v
	}
	return v
}

func (l lit) neg() lit   { return l ^ 1 }
func (l lit) varID() int { return int(l >> 1) }
func (l lit) sign() bool { return l&1 == 1 }

// value of an assignment slot.
type tribool int8

const (
	unassigned tribool = iota
	vTrue
	vFalse
)

type clause struct {
	lits   []lit
	learnt bool
	// scope is the checkpoint depth the clause belongs to: problem clauses
	// get the depth they were added at, learnt clauses the maximum depth of
	// any clause or top-level fact used in their derivation. A learnt
	// clause with scope ≤ d is a logical consequence of the clauses at
	// depth ≤ d alone, so it may survive a retract to depth d.
	scope int32
	// arenaOff is the clause's literal offset in the solver arena, or -1
	// when the literals are an owned allocation. Arena-backed clauses are
	// restored by one bulk arena copy on retract and rebound when the
	// arena's backing array grows (see growArena).
	arenaOff int32
	// act is the VSIDS-style clause activity driving the ReduceDB pass:
	// learnt clauses are bumped whenever they participate in a conflict.
	act float64
}

// cref indexes a clause in the solver's database. Watchers and antecedent
// references hold indices rather than pointers so they are pointer-free:
// watch lists copy with memmove and never trip GC write barriers, which is
// what makes checkpoint restore (RetractTo) cheap.
type cref = int32

// crefNil marks "no clause" (decision/assumption antecedents, no conflict).
const crefNil cref = -1

type watcher struct {
	c       cref
	blocker lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New. A Solver may be reused for multiple Solve calls by
// adding more clauses between calls; clauses added after a Mark can be
// retracted again with RetractTo.
type Solver struct {
	nVars   int
	db      []clause    // problem and learnt clauses, in insertion order
	arena   []lit       // backing storage for AddBlock clause literals
	watches [][]watcher // indexed by lit

	assign  []tribool // indexed by var
	level   []int     // decision level per var
	reason  []cref    // antecedent clause per var (crefNil for decisions)
	trail   []lit
	trailLi []int // trail limits per decision level
	qhead   int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // phase saving

	// Checkpoint-scope bookkeeping (see Mark/RetractTo/RetractToReuse).
	depth     int32   // scope tag given to newly added clauses and facts
	factScope []int32 // per-var scope tag of its top-level fact, if any
	claInc    float64 // clause activity increment (ReduceDB heuristic)

	seenScratch []bool   // conflict-analysis scratch, one slot per var
	keepScratch []clause // RetractToReuse survivor scratch
	litScratch  []lit    // addClause normalization scratch
	litStamp    []uint32 // per-lit stamp for addClause dedup, indexed by lit
	stampGen    uint32   // current addClause stamp generation

	// Watch-list dirty tracking relative to the innermost checkpoint:
	// every list mutated since the last Mark / retract is recorded once,
	// so RetractToReuse restores only those instead of every list.
	watchStamp []uint32 // per-lit generation stamp
	dirtyWatch []lit
	watchGen   uint32

	ok        bool // false once a top-level conflict is found
	conflicts int64
	decisions int64
	propag    int64

	// Budget bounds the number of conflicts before Solve gives up with
	// Unknown. Zero means no limit.
	Budget int64
	// LearntCap bounds the learnt clauses RetractToReuse carries across a
	// retract (the ReduceDB pass keeps the most active ones). Zero uses
	// defaultLearntCap.
	LearntCap int
}

// New returns a solver prepared for nVars variables (1..nVars).
func New(nVars int) *Solver {
	s := &Solver{
		nVars:      nVars,
		watches:    make([][]watcher, 2*nVars+2),
		assign:     make([]tribool, nVars+1),
		level:      make([]int, nVars+1),
		reason:     make([]cref, nVars+1),
		activity:   make([]float64, nVars+1),
		polarity:   make([]bool, nVars+1),
		factScope:  make([]int32, nVars+1),
		litStamp:   make([]uint32, 2*nVars+2),
		watchStamp: make([]uint32, 2*nVars+2),
		varInc:     1.0,
		claInc:     1.0,
		watchGen:   1,
		ok:         true,
	}
	for i := range s.reason {
		s.reason[i] = crefNil
	}
	s.order = newVarHeap(s.activity)
	for v := 1; v <= nVars; v++ {
		s.order.push(v)
	}
	return s
}

// NumVars returns the number of variables the solver was created with.
func (s *Solver) NumVars() int { return s.nVars }

// Stats reports (decisions, propagations, conflicts) accumulated so far.
func (s *Solver) Stats() (decisions, propagations, conflicts int64) {
	return s.decisions, s.propag, s.conflicts
}

// AddClause adds one clause given as DIMACS literals. It returns
// ErrBadLiteral for out-of-range variables. Adding an empty clause (or a
// clause that simplifies to empty) makes the formula trivially UNSAT.
func (s *Solver) AddClause(dimacs ...int) error {
	return s.addClause(dimacs)
}

func (s *Solver) addClause(dimacs []int) error {
	if !s.ok {
		return nil // already UNSAT; further clauses are irrelevant
	}
	// Clauses may arrive between Solve calls; the two-watched-literal
	// invariant only holds for clauses added at decision level 0.
	s.cancelUntil(0)
	// Normalize: drop duplicate literals and satisfied-at-level-0 clauses.
	// Dedup runs through a per-literal stamp array (one generation per
	// clause) instead of a map: this is the hot path of the per-rule
	// Distinguish delta in probe generation.
	s.stampGen++
	gen := s.stampGen
	lits := s.litScratch[:0]
	for _, d := range dimacs {
		if d == 0 {
			return fmt.Errorf("%w: 0 inside clause", ErrBadLiteral)
		}
		v := d
		if v < 0 {
			v = -v
		}
		if v > s.nVars {
			return fmt.Errorf("%w: var %d > %d", ErrBadLiteral, v, s.nVars)
		}
		l := toLit(d)
		if s.litStamp[l.neg()] == gen {
			s.litScratch = lits[:0]
			return nil // clause contains x ∨ ¬x: tautology
		}
		if s.litStamp[l] == gen {
			continue
		}
		s.litStamp[l] = gen
		switch s.valueLit(l) {
		case vTrue:
			if s.level[l.varID()] == 0 {
				s.litScratch = lits[:0]
				return nil // satisfied at top level
			}
		case vFalse:
			if s.level[l.varID()] == 0 {
				continue // falsified at top level: drop literal
			}
		}
		lits = append(lits, l)
	}
	s.litScratch = lits[:0]
	switch len(lits) {
	case 0:
		s.ok = false
		return nil
	case 1:
		if !s.enqueue(lits[0], crefNil) {
			s.ok = false
		} else if conf := s.propagate(); conf != crefNil {
			s.ok = false
		}
		return nil
	}
	// The clause literals live in the retractable arena (like AddBlock's):
	// RetractTo reclaims the storage wholesale and restores surviving
	// arena clauses with one bulk copy.
	start := len(s.arena)
	if start+len(lits) > cap(s.arena) {
		s.growArena(start + len(lits))
	}
	s.arena = append(s.arena, lits...)
	owned := s.arena[start:len(s.arena):len(s.arena)]
	s.db = append(s.db, clause{lits: owned, scope: s.depth, arenaOff: int32(start)})
	s.watch(cref(len(s.db) - 1))
	return nil
}

// AddDIMACSVector adds a whole formula given as a one-dimensional vector of
// integers where 0 terminates each clause, mirroring the representation the
// paper's Cython implementation feeds to PicoSAT.
func (s *Solver) AddDIMACSVector(vec []int) error {
	start := 0
	for i, x := range vec {
		if x == 0 {
			if err := s.addClause(vec[start:i]); err != nil {
				return err
			}
			start = i + 1
		}
	}
	if start != len(vec) {
		return fmt.Errorf("sat: DIMACS vector not 0-terminated (trailing %d literals)", len(vec)-start)
	}
	return nil
}

func (s *Solver) watch(ci cref) {
	c := &s.db[ci]
	s.touchWatch(c.lits[0].neg())
	s.touchWatch(c.lits[1].neg())
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], watcher{ci, c.lits[1]})
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{ci, c.lits[0]})
	// Lazy heap entry: variables join the decision heap when a clause
	// first watches them. Variables no clause ever watches need no
	// decision — any clause over them would either find them as a watch
	// (via migration, which also pushes) or be wholly decided by its
	// watched literals.
	s.order.pushIfAbsent(c.lits[0].varID())
	s.order.pushIfAbsent(c.lits[1].varID())
}

func (s *Solver) valueLit(l lit) tribool {
	a := s.assign[l.varID()]
	if a == unassigned {
		return unassigned
	}
	if l.sign() {
		if a == vTrue {
			return vFalse
		}
		return vTrue
	}
	return a
}

func (s *Solver) enqueue(l lit, from cref) bool {
	switch s.valueLit(l) {
	case vTrue:
		return true
	case vFalse:
		return false
	}
	v := l.varID()
	if l.sign() {
		s.assign[v] = vFalse
	} else {
		s.assign[v] = vTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	if s.level[v] == 0 {
		// Top-level fact: tag it with the current checkpoint depth (a safe
		// upper bound on the depth of the clauses that imply it), so
		// conflict analysis can scope learnt clauses that drop it.
		s.factScope[v] = s.depth
	}
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLi) }

func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propag++
		ws := s.watches[p]
		if len(ws) > 0 {
			s.touchWatch(p) // the in-place compaction below rewrites it
		}
		kept := ws[:0]
		conflict := crefNil
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != crefNil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.valueLit(w.blocker) == vTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.db[w.c]
			// Ensure the false literal (¬p) is at position 1.
			np := p.neg()
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == vTrue {
				kept = append(kept, watcher{w.c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.touchWatch(c.lits[1].neg())
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{w.c, first})
					s.order.pushIfAbsent(c.lits[1].varID())
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.c, first})
			if !s.enqueue(first, w.c) {
				conflict = w.c
				s.qhead = len(s.trail)
			}
		}
		s.watches[p] = kept
		if conflict != crefNil {
			return conflict
		}
	}
	return crefNil
}

// analyze derives the first-UIP learnt clause for the conflict. Along the
// way it computes the clause's checkpoint scope: the maximum scope of every
// clause resolved on and of every top-level fact whose literal is dropped
// from the resolvent — the smallest depth whose clause set provably implies
// the learnt clause, which RetractToReuse uses for retention.
func (s *Solver) analyze(confl cref) (learnt []lit, backLevel int, scope int32) {
	if len(s.seenScratch) < s.nVars+1 {
		s.seenScratch = make([]bool, s.nVars+1)
	}
	seen := s.seenScratch
	counter := 0
	var p lit
	learnt = append(learnt, 0) // slot for the asserting literal
	idx := len(s.trail) - 1
	first := true

	for {
		c := &s.db[confl]
		if c.scope > scope {
			scope = c.scope
		}
		if c.learnt {
			s.bumpClause(confl)
		}
		for _, q := range c.lits {
			if first || q != p {
				v := q.varID()
				if seen[v] {
					continue
				}
				if s.level[v] > 0 {
					seen[v] = true
					s.bumpVar(v)
					if s.level[v] >= s.decisionLevel() {
						counter++
					} else {
						learnt = append(learnt, q)
						if s.level[v] > backLevel {
							backLevel = s.level[v]
						}
					}
				} else if s.factScope[v] > scope {
					// The literal is false at level 0 and dropped from the
					// resolvent, making the learnt clause depend on the
					// fact's derivation.
					scope = s.factScope[v]
				}
			}
		}
		// Find next literal on trail to resolve on.
		for !seen[s.trail[idx].varID()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		seen[p.varID()] = false
		first = false
		if counter == 0 {
			break
		}
		confl = s.reason[p.varID()]
	}
	learnt[0] = p.neg()
	// Clear the remaining marks (lower-level literals kept in the learnt).
	for _, q := range learnt[1:] {
		seen[q.varID()] = false
	}
	return learnt, backLevel, scope
}

// bumpClause increases a learnt clause's activity, rescaling all clause
// activities when they approach overflow.
func (s *Solver) bumpClause(ci cref) {
	c := &s.db[ci]
	c.act += s.claInc
	if c.act > 1e20 {
		for i := range s.db {
			if s.db[i].learnt {
				s.db[i].act *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLi[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].varID()
		s.polarity[v] = s.assign[v] == vTrue
		s.assign[v] = unassigned
		s.reason[v] = crefNil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLi = s.trailLi[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for s.order.len() > 0 {
		v := s.order.pop()
		if s.assign[v] == unassigned {
			return v
		}
	}
	return 0
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	// Find k such that i = 2^k - 1 → return 2^(k-1); otherwise recurse.
	for k := int64(1); ; k++ {
		p := int64(1)<<k - 1
		if i == p {
			return int64(1) << (k - 1)
		}
		if i < p {
			return luby(i - (int64(1)<<(k-1) - 1))
		}
	}
}

// Solve runs the CDCL search. It returns Satisfiable with a model,
// Unsatisfiable, or Unknown when the conflict budget is exhausted.
// The model maps variable v (1..NumVars) at index v; index 0 is unused.
func (s *Solver) Solve() (Status, []bool) {
	return s.SolveAssuming()
}

// search is the CDCL main loop shared by Solve and SolveAssuming. The
// assumption literals are served as the first decisions, one per level;
// an assumption found false under propagation means the formula is UNSAT
// under the assumptions (but not necessarily in itself).
func (s *Solver) search(assume []lit) (Status, []bool) {
	if confl := s.propagate(); confl != crefNil {
		s.ok = false
		return Unsatisfiable, nil
	}
	restart := int64(1)
	conflBudget := 32 * luby(restart)
	conflCount := int64(0)

	for {
		confl := s.propagate()
		if confl != crefNil {
			s.conflicts++
			conflCount++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsatisfiable, nil
			}
			learnt, back, scope := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], crefNil)
				if back == 0 {
					// enqueue tagged the fact with the current depth; the
					// analysis knows the exact (possibly lower) scope.
					s.factScope[learnt[0].varID()] = scope
				}
			} else {
				s.db = append(s.db, clause{lits: learnt, learnt: true, scope: scope, arenaOff: -1})
				ci := cref(len(s.db) - 1)
				s.watch(ci)
				s.enqueue(learnt[0], ci)
			}
			s.varInc *= 1.0 / 0.95
			s.claInc *= 1.0 / 0.999
			if s.Budget > 0 && s.conflicts >= s.Budget {
				return Unknown, nil
			}
			continue
		}
		if conflCount >= conflBudget {
			// Restart. Assumptions are re-served from level 0.
			conflCount = 0
			restart++
			conflBudget = 32 * luby(restart)
			s.cancelUntil(0)
			continue
		}
		if s.decisionLevel() < len(assume) {
			// Serve the next assumption as a decision.
			p := assume[s.decisionLevel()]
			switch s.valueLit(p) {
			case vTrue:
				// Already implied: open a dummy level so the level↔
				// assumption indexing stays aligned.
				s.trailLi = append(s.trailLi, len(s.trail))
			case vFalse:
				return Unsatisfiable, nil // conflicts with the assumptions
			default:
				s.decisions++
				s.trailLi = append(s.trailLi, len(s.trail))
				s.enqueue(p, crefNil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			// All variables assigned: SAT.
			model := make([]bool, s.nVars+1)
			for i := 1; i <= s.nVars; i++ {
				model[i] = s.assign[i] == vTrue
			}
			return Satisfiable, model
		}
		s.decisions++
		s.trailLi = append(s.trailLi, len(s.trail))
		l := toLit(v)
		if s.polarity[v] {
			// branch on last saved phase
		} else {
			l = l.neg()
		}
		s.enqueue(l, crefNil)
	}
}

// SolveVector is a convenience wrapper: it builds a fresh solver for nVars
// variables, loads the 0-terminated DIMACS vector and solves it.
func SolveVector(nVars int, vec []int) (Status, []bool, error) {
	s := New(nVars)
	if err := s.AddDIMACSVector(vec); err != nil {
		return Unknown, nil, err
	}
	st, m := s.Solve()
	return st, m, nil
}
