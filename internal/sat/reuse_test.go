package sat

import (
	"math/rand"
	"testing"
)

// prefixWithConflict builds a solver whose clause set produces a learnt
// clause purely from checkpointed state when solved under assumptions
// a=1, b=2: a requires x1 ∨ x2, both of which imply x3, and b forbids x3 —
// a genuine conflict (not mere assumption propagation), so analyze runs.
func prefixWithConflict(t *testing.T) (*Solver, Checkpoint) {
	t.Helper()
	s := New(6)
	for _, c := range [][]int{
		{-1, 3, 4}, // a → x1 ∨ x2
		{-3, 5},    // x1 → x3
		{-4, 5},    // x2 → x3
		{-2, -5},   // b → ¬x3
	} {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	return s, s.Mark()
}

// TestRetractToReuseKeepsPrefixLearnts: a learnt clause derived only from
// clauses below the checkpoint survives RetractToReuse, while the exact
// RetractTo drops it.
func TestRetractToReuseKeepsPrefixLearnts(t *testing.T) {
	s, cp := prefixWithConflict(t)
	if st, _ := s.SolveAssuming(1, 2); st != Unsatisfiable {
		t.Fatal("a ∧ b should be UNSAT")
	}
	if s.NumLearnts() == 0 {
		t.Fatal("conflict should have produced a learnt clause")
	}
	s.RetractToReuse(cp)
	if got := s.NumLearnts(); got == 0 {
		t.Fatal("prefix-scoped learnt clause was not retained across RetractToReuse")
	}
	// The retained learnt must not change satisfiability.
	if st, _ := s.SolveAssuming(1); st != Satisfiable {
		t.Fatal("assuming only a must stay SAT")
	}
	if st, _ := s.SolveAssuming(1, 2); st != Unsatisfiable {
		t.Fatal("a ∧ b must stay UNSAT after reuse retract")
	}
	s.RetractTo(cp)
	if got := s.NumLearnts(); got != 0 {
		t.Fatalf("exact RetractTo kept %d learnt clauses, want 0", got)
	}
}

// TestRetractToReuseDropsDeltaLearnts: a learnt clause whose derivation
// involves clauses added after the checkpoint must NOT survive, even when
// its literals all reference surviving variables.
func TestRetractToReuseDropsDeltaLearnts(t *testing.T) {
	s := New(6)
	// Base constrains nothing by itself.
	if err := s.AddClause(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	cp := s.Mark()
	// Delta clauses over BASE variables recreate the conflict shape of
	// prefixWithConflict; the learnt mentions only base variables but is
	// not a consequence of the base.
	for _, c := range [][]int{{-1, 3, 4}, {-3, 5}, {-4, 5}, {-2, -5}} {
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := s.SolveAssuming(1, 2); st != Unsatisfiable {
		t.Fatal("a ∧ b should be UNSAT with the delta attached")
	}
	s.RetractToReuse(cp)
	if got := s.NumLearnts(); got != 0 {
		t.Fatalf("delta-scoped learnt clauses retained: %d, want 0", got)
	}
	// Without the delta, a ∧ b is satisfiable again.
	if st, _ := s.SolveAssuming(1, 2); st != Satisfiable {
		t.Fatal("a ∧ b must be SAT once the delta is retracted")
	}
}

// php builds the pigeonhole principle instance PHP(pigeons, holes) —
// UNSAT when pigeons > holes, with a conflict-rich refutation.
func php(t *testing.T, s *Solver, pigeons, holes int) {
	t.Helper()
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		c := make([]int, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				if err := s.AddClause(-v(p1, h), -v(p2, h)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestReduceDBBoundsRetention: the ReduceDB pass caps the learnt clauses a
// reuse retract carries over at LearntCap.
func TestReduceDBBoundsRetention(t *testing.T) {
	s := New(20)
	php(t, s, 5, 4)
	cp := s.Mark()
	s.LearntCap = 3
	if st, _ := s.Solve(); st != Unsatisfiable {
		t.Fatal("PHP(5,4) must be UNSAT")
	}
	if s.NumLearnts() <= s.LearntCap {
		t.Skipf("refutation produced only %d learnts; cap not exercised", s.NumLearnts())
	}
	s.RetractToReuse(cp)
	if got := s.NumLearnts(); got > s.LearntCap {
		t.Fatalf("retained %d learnt clauses, cap is %d", got, s.LearntCap)
	}
}

// TestRetractToReuseAgainstFresh is the soundness fuzz for the reuse path:
// random base + per-round delta + assumptions, with RetractToReuse between
// rounds, must classify exactly like a fresh one-shot solver every round.
// An unsound scope tag (keeping a learnt that is not implied by the
// retained clauses) would surface as a status divergence.
func TestRetractToReuseAgainstFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	for iter := 0; iter < 120; iter++ {
		nVars := 5 + rng.Intn(8)
		mk := func(n int) [][]int {
			var cs [][]int
			for i := 0; i < n; i++ {
				k := 1 + rng.Intn(3)
				c := make([]int, k)
				for j := range c {
					c[j] = rng.Intn(nVars) + 1
					if rng.Intn(2) == 0 {
						c[j] = -c[j]
					}
				}
				cs = append(cs, c)
			}
			return cs
		}
		base := mk(3 + rng.Intn(8))
		s := New(nVars)
		s.LearntCap = 1 + rng.Intn(8) // exercise the ReduceDB pass too
		for _, c := range base {
			_ = s.AddClause(c...)
		}
		cp := s.Mark()
		for round := 0; round < 5; round++ {
			delta := mk(rng.Intn(5))
			for _, c := range delta {
				_ = s.AddClause(c...)
			}
			var assume []int
			for len(assume) < rng.Intn(4) {
				a := rng.Intn(nVars) + 1
				if rng.Intn(2) == 0 {
					a = -a
				}
				assume = append(assume, a)
			}
			got, model := s.SolveAssuming(assume...)

			fresh := New(nVars)
			for _, c := range base {
				_ = fresh.AddClause(c...)
			}
			for _, c := range delta {
				_ = fresh.AddClause(c...)
			}
			for _, a := range assume {
				_ = fresh.AddClause(a)
			}
			want, _ := fresh.Solve()
			if got != want {
				t.Fatalf("iter %d round %d: reuse=%v fresh=%v (base=%v delta=%v assume=%v)",
					iter, round, got, want, base, delta, assume)
			}
			if got == Satisfiable {
				checkModel(t, base, model)
				checkModel(t, delta, model)
				for _, a := range assume {
					v := a
					if v < 0 {
						v = -v
					}
					if (a > 0) != model[v] {
						t.Fatalf("assumption %d violated by model", a)
					}
				}
			}
			s.RetractToReuse(cp)
		}
	}
}

// TestStatsDeterminismAfterRetractCycles is the regression test for
// resetHeuristics completeness: after an exact RetractTo, re-solving the
// identical delta must cost exactly the same decisions, propagations, and
// conflicts every cycle. Any heuristic state leaking across the retract
// (activities, saved phases, varInc, claInc, heap order) shows up as a
// drifting per-cycle delta.
func TestStatsDeterminismAfterRetractCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		nVars := 8 + rng.Intn(8)
		s := New(nVars)
		for i := 0; i < 6+rng.Intn(10); i++ {
			c := []int{rng.Intn(nVars) + 1, rng.Intn(nVars) + 1, rng.Intn(nVars) + 1}
			for j := range c {
				if rng.Intn(2) == 0 {
					c[j] = -c[j]
				}
			}
			_ = s.AddClause(c...)
		}
		cp := s.Mark()
		delta := [][]int{
			{rng.Intn(nVars) + 1, -(rng.Intn(nVars) + 1)},
			{-(rng.Intn(nVars) + 1), rng.Intn(nVars) + 1, rng.Intn(nVars) + 1},
		}
		assume := []int{rng.Intn(nVars) + 1, -(rng.Intn(nVars) + 1)}
		type delta3 struct{ d, p, c int64 }
		var want delta3
		var wantStatus Status
		for cycle := 0; cycle < 40; cycle++ {
			for _, c := range delta {
				_ = s.AddClause(c...)
			}
			d0, p0, c0 := s.Stats()
			st, _ := s.SolveAssuming(assume...)
			d1, p1, c1 := s.Stats()
			got := delta3{d1 - d0, p1 - p0, c1 - c0}
			if cycle == 0 {
				want, wantStatus = got, st
			} else if got != want || st != wantStatus {
				t.Fatalf("iter %d cycle %d: stats delta %+v (status %v), want %+v (%v) — heuristic state leaked across RetractTo",
					iter, cycle, got, st, want, wantStatus)
			}
			s.RetractTo(cp)
		}
	}
}
