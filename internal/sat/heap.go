package sat

// varHeap is a max-heap of variables ordered by activity, used for the
// VSIDS-style branching heuristic. It maintains positions so that activity
// bumps can sift entries in place.
type varHeap struct {
	act  []float64
	heap []int
	pos  []int // pos[v] = index in heap, -1 if absent
}

func newVarHeap(act []float64) *varHeap {
	h := &varHeap{act: act, pos: make([]int, len(act))}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *varHeap) len() int { return len(h.heap) }

// grow rebinds the (possibly reallocated) activity slice and widens the
// position index to cover it, for solvers that add variables after New.
func (h *varHeap) grow(act []float64) {
	h.act = act
	for len(h.pos) < len(act) {
		h.pos = append(h.pos, -1)
	}
}

// reset rebuilds the heap to its canonical initial state over variables
// 1..n: ascending order, which is a valid heap for all-equal activities.
// The activity slice must already be zeroed (or uniform) by the caller.
func (h *varHeap) reset(n int) {
	h.pos = h.pos[:0]
	for len(h.pos) < n+1 {
		h.pos = append(h.pos, -1)
	}
	h.heap = h.heap[:0]
	for v := 1; v <= n; v++ {
		h.heap = append(h.heap, v)
		h.pos[v] = v - 1
	}
}

// rebuild reconstructs the heap over variables 1..n under the *current*
// (non-uniform) activities: every variable is entered and the array is
// heapified bottom-up. Deterministic for a given activity vector, which is
// what lets RetractToReuse keep activities across a retract.
func (h *varHeap) rebuild(n int) {
	h.pos = h.pos[:0]
	for len(h.pos) < n+1 {
		h.pos = append(h.pos, -1)
	}
	h.heap = h.heap[:0]
	for v := 1; v <= n; v++ {
		h.heap = append(h.heap, v)
		h.pos[v] = v - 1
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) less(i, j int) bool { return h.act[h.heap[i]] > h.act[h.heap[j]] }

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// pushIfAbsent re-inserts a variable after backtracking.
func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if p := h.pos[v]; p != -1 {
		h.up(p)
	}
}
