package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, nVars int, clauses [][]int) (Status, []bool) {
	t.Helper()
	s := New(nVars)
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			t.Fatalf("AddClause(%v): %v", c, err)
		}
	}
	st, m := s.Solve()
	return st, m
}

// checkModel verifies that a model satisfies every clause.
func checkModel(t *testing.T, clauses [][]int, model []bool) {
	t.Helper()
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == model[v] {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model does not satisfy clause %v", c)
		}
	}
}

func TestTrivialSAT(t *testing.T) {
	st, m := mustSolve(t, 1, [][]int{{1}})
	if st != Satisfiable || !m[1] {
		t.Fatalf("got %v model=%v, want SAT with x1=true", st, m)
	}
}

func TestTrivialUNSAT(t *testing.T) {
	st, _ := mustSolve(t, 1, [][]int{{1}, {-1}})
	if st != Unsatisfiable {
		t.Fatalf("got %v, want UNSAT", st)
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	s := New(2)
	if err := s.AddClause(); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Solve(); st != Unsatisfiable {
		t.Fatalf("empty clause must be UNSAT, got %v", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	st, _ := mustSolve(t, 2, [][]int{{1, -1}, {2}})
	if st != Satisfiable {
		t.Fatalf("got %v, want SAT", st)
	}
}

func TestNoClausesIsSAT(t *testing.T) {
	st, m := mustSolve(t, 3, nil)
	if st != Satisfiable || len(m) != 4 {
		t.Fatalf("got %v len(model)=%d", st, len(m))
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x1, x1→x2, x2→x3, ..., x9→x10
	clauses := [][]int{{1}}
	for i := 1; i < 10; i++ {
		clauses = append(clauses, []int{-i, i + 1})
	}
	st, m := mustSolve(t, 10, clauses)
	if st != Satisfiable {
		t.Fatalf("got %v, want SAT", st)
	}
	for i := 1; i <= 10; i++ {
		if !m[i] {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestUnsatChain(t *testing.T) {
	clauses := [][]int{{1}}
	for i := 1; i < 10; i++ {
		clauses = append(clauses, []int{-i, i + 1})
	}
	clauses = append(clauses, []int{-10})
	st, _ := mustSolve(t, 10, clauses)
	if st != Unsatisfiable {
		t.Fatalf("got %v, want UNSAT", st)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes is UNSAT. Use n=4 (20 vars).
	n := 4
	varOf := func(p, h int) int { return p*n + h + 1 } // p in [0,n], h in [0,n-1]
	var clauses [][]int
	for p := 0; p <= n; p++ {
		c := make([]int, n)
		for h := 0; h < n; h++ {
			c[h] = varOf(p, h)
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				clauses = append(clauses, []int{-varOf(p1, h), -varOf(p2, h)})
			}
		}
	}
	st, _ := mustSolve(t, (n+1)*n, clauses)
	if st != Unsatisfiable {
		t.Fatalf("pigeonhole got %v, want UNSAT", st)
	}
}

func TestDIMACSVector(t *testing.T) {
	st, m, err := SolveVector(3, []int{1, 2, 0, -1, 0, -2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if st != Satisfiable {
		t.Fatalf("got %v, want SAT", st)
	}
	checkModel(t, [][]int{{1, 2}, {-1}, {-2, 3}}, m)
}

func TestDIMACSVectorTrailing(t *testing.T) {
	if _, _, err := SolveVector(2, []int{1, 2}); err == nil {
		t.Fatal("want error for non-terminated vector")
	}
}

func TestBadLiteral(t *testing.T) {
	s := New(2)
	if err := s.AddClause(3); err == nil {
		t.Fatal("want ErrBadLiteral for out-of-range var")
	}
	if err := s.AddClause(1, 0); err == nil {
		t.Fatal("want error for zero literal")
	}
}

func TestBudgetUnknown(t *testing.T) {
	// A hard random instance with a tiny budget should return Unknown
	// (or finish legitimately; then the test is vacuous but not wrong).
	rng := rand.New(rand.NewSource(7))
	n := 60
	s := New(n)
	s.Budget = 1
	for i := 0; i < int(4.3*float64(n)); i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		if err := s.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := s.Solve()
	if st == Unknown {
		return // budget respected
	}
	// Otherwise the instance was easy enough; accept SAT/UNSAT.
}

func TestStatusString(t *testing.T) {
	if Satisfiable.String() != "SAT" || Unsatisfiable.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("bad Status strings")
	}
}

// brute checks satisfiability by exhaustive enumeration (nVars <= 20).
func brute(nVars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, c := range clauses {
			csat := false
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask>>(v-1)&1 == 1
				if (l > 0) == val {
					csat = true
					break
				}
			}
			if !csat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on many small random instances.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(4*n)
		clauses := make([][]int, 0, m)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			for j := range c {
				v := rng.Intn(n) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses = append(clauses, c)
		}
		st, model := mustSolve(t, n, clauses)
		want := brute(n, clauses)
		if want && st != Satisfiable {
			t.Fatalf("iter %d: brute=SAT solver=%v clauses=%v", iter, st, clauses)
		}
		if !want && st != Unsatisfiable {
			t.Fatalf("iter %d: brute=UNSAT solver=%v clauses=%v", iter, st, clauses)
		}
		if st == Satisfiable {
			checkModel(t, clauses, model)
		}
	}
}

// TestQuickModelSound is a property-based test: for random satisfiable
// instances built from a planted assignment, the solver must return SAT and
// the returned model must satisfy every clause.
func TestQuickModelSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		planted := make([]bool, n+1)
		for i := 1; i <= n; i++ {
			planted[i] = rng.Intn(2) == 1
		}
		var clauses [][]int
		for i := 0; i < 3*n; i++ {
			k := 1 + rng.Intn(4)
			c := make([]int, 0, k)
			for j := 0; j < k; j++ {
				v := rng.Intn(n) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			// Force the clause to be satisfied by the planted assignment.
			v := rng.Intn(n) + 1
			if planted[v] {
				c = append(c, v)
			} else {
				c = append(c, -v)
			}
			clauses = append(clauses, c)
		}
		s := New(n)
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				return false
			}
		}
		st, model := s.Solve()
		if st != Satisfiable {
			return false
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				if (l > 0) == model[v] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d)=%d want %d", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	for _, d := range []int{1, -1, 5, -5, 1000, -1000} {
		l := toLit(d)
		if l.dimacs() != d {
			t.Fatalf("roundtrip %d -> %v -> %d", d, l, l.dimacs())
		}
		if l.neg().dimacs() != -d {
			t.Fatalf("neg(%d) = %d", d, l.neg().dimacs())
		}
	}
}

func TestSolverReuseAfterSAT(t *testing.T) {
	s := New(3)
	if err := s.AddClause(1, 2); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Solve()
	if st != Satisfiable {
		t.Fatalf("first solve: %v", st)
	}
}

func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	var vec []int
	for i := 0; i < int(4.0*float64(n)); i++ {
		for j := 0; j < 3; j++ {
			v := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			vec = append(vec, v)
		}
		vec = append(vec, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveVector(n, vec); err != nil {
			b.Fatal(err)
		}
	}
}
