package sat

import (
	"fmt"
	"sort"
)

// This file implements the incremental interface used by the probe
// generator's table sessions: solving under assumptions (à la MiniSat),
// growing the variable space on demand, and retracting clauses added after
// a checkpoint so one solver instance can serve every rule of a flow table.

// Checkpoint captures the solver state needed to retract clauses added
// after Mark. Checkpoints only nest LIFO: retracting to an older
// checkpoint invalidates newer ones. A Checkpoint may be retracted to any
// number of times.
type Checkpoint struct {
	nVars    int
	dbLen    int
	arenaLen int
	trailLen int
	depth    int32
	ok       bool
	// Search permutes clause literals and migrates watchers, so the
	// checkpoint snapshots both: the literal storage of every retained
	// clause (arena-backed clauses as one arena image, owned clauses
	// concatenated in database order), and every watch list flattened
	// into one arena (offsets[l]..offsets[l+1] is the list of literal l).
	// Restoring them — all pointer-free, so pure memmove — puts the
	// solver in a state that depends only on the retained clause
	// database, never on what was solved in between.
	arenaSnap []lit
	ownedLits []lit
	watchers  []watcher
	offsets   []int32
}

// Mark records the current clause database boundary. The solver is
// backtracked to decision level 0 first, so the recorded trail prefix
// contains exactly the top-level facts implied by the clauses added so far.
func (s *Solver) Mark() Checkpoint {
	s.cancelUntil(0)
	cp := Checkpoint{
		nVars:    s.nVars,
		dbLen:    len(s.db),
		arenaLen: len(s.arena),
		trailLen: len(s.trail),
		depth:    s.depth,
		ok:       s.ok,
		offsets:  make([]int32, len(s.watches)+1),
	}
	// Everything added from here on belongs to a deeper scope, so learnt
	// clauses derived purely from the checkpointed state are recognizable
	// by their scope tag (see RetractToReuse).
	s.depth++
	cp.arenaSnap = append([]lit(nil), s.arena...)
	n := 0
	for i := range s.db {
		if s.db[i].arenaOff < 0 {
			n += len(s.db[i].lits)
		}
	}
	cp.ownedLits = make([]lit, 0, n)
	for i := range s.db {
		if s.db[i].arenaOff < 0 {
			cp.ownedLits = append(cp.ownedLits, s.db[i].lits...)
		}
	}
	n = 0
	for _, ws := range s.watches {
		n += len(ws)
	}
	cp.watchers = make([]watcher, 0, n)
	for i, ws := range s.watches {
		cp.offsets[i] = int32(len(cp.watchers))
		cp.watchers = append(cp.watchers, ws...)
	}
	cp.offsets[len(s.watches)] = int32(len(cp.watchers))
	// The solver state now equals the snapshot: watch-list dirty tracking
	// restarts here, so a following RetractToReuse only needs to restore
	// the lists actually touched since.
	s.resetWatchDirty()
	return cp
}

// RetractTo removes every clause added after the checkpoint (the per-rule
// delta plus any learnt clauses, which may depend on it), unassigns
// top-level facts derived since, shrinks the variable space back to the
// checkpoint's, restores the snapshotted literal order and watch lists,
// and resets the branching heuristics.
//
// After RetractTo the solver state is a pure function of the retained
// clause database: a Solve gives bit-identical results no matter what was
// added, assumed, or solved since the Mark. The batch probe generator
// relies on this for determinism across worker counts. The restore is
// pointer-free bulk copying and allocates only when a watch list grew past
// its previous capacity.
func (s *Solver) RetractTo(cp Checkpoint) {
	s.restoreSnapshot(cp, false)
	s.resetHeuristics()
}

// restoreSnapshot is the pointer-free bulk restore shared by RetractTo and
// RetractToReuse: clause database, arena, trail prefix, variable space and
// watch lists return to their exact state at Mark time. Branching
// heuristics are the caller's business. When dirtyOnly is set, only the
// watch lists touched since the last Mark (or reuse-retract) are restored
// — valid exactly when cp is the most recently Marked checkpoint, because
// that is what the dirty set is tracked against.
func (s *Solver) restoreSnapshot(cp Checkpoint, dirtyOnly bool) {
	s.cancelUntil(0)
	s.db = s.db[:cp.dbLen]
	s.arena = s.arena[:cp.arenaLen]

	// Unassign top-level facts derived after the checkpoint. Facts on the
	// retained prefix were enqueued before Mark, so their reason clauses
	// are all retained too.
	for i := len(s.trail) - 1; i >= cp.trailLen; i-- {
		v := s.trail[i].varID()
		s.assign[v] = unassigned
		s.reason[v] = crefNil
		s.level[v] = 0
	}
	s.trail = s.trail[:cp.trailLen]
	s.qhead = cp.trailLen
	s.ok = cp.ok
	s.depth = cp.depth + 1

	s.shrinkVars(cp.nVars)

	// Literal storage: arena-backed clauses restore with one bulk copy
	// (growArena keeps them bound to the current arena), owned clauses
	// with a short loop.
	copy(s.arena, cp.arenaSnap)
	pos := 0
	for i := range s.db {
		c := &s.db[i]
		if c.arenaOff >= 0 {
			continue
		}
		copy(c.lits, cp.ownedLits[pos:pos+len(c.lits)])
		pos += len(c.lits)
	}

	if dirtyOnly {
		for _, l := range s.dirtyWatch {
			if int(l) >= len(s.watches) {
				continue // literal of a variable retracted away
			}
			s.restoreWatchList(cp, int(l))
		}
	} else {
		for i := range s.watches {
			s.restoreWatchList(cp, i)
		}
	}
	s.resetWatchDirty()
}

func (s *Solver) restoreWatchList(cp Checkpoint, i int) {
	snap := cp.watchers[cp.offsets[i]:cp.offsets[i+1]]
	if cap(s.watches[i]) < len(snap) {
		s.watches[i] = make([]watcher, len(snap))
	} else {
		s.watches[i] = s.watches[i][:len(snap)]
	}
	copy(s.watches[i], snap)
}

// touchWatch records that the watch list of l diverged from the last
// snapshot, so a dirty-only restore knows to roll it back.
func (s *Solver) touchWatch(l lit) {
	if s.watchStamp[l] != s.watchGen {
		s.watchStamp[l] = s.watchGen
		s.dirtyWatch = append(s.dirtyWatch, l)
	}
}

// resetWatchDirty empties the dirty set: the current watch lists are (or
// just became) exactly the snapshot state.
func (s *Solver) resetWatchDirty() {
	s.watchGen++
	s.dirtyWatch = s.dirtyWatch[:0]
}

// defaultLearntCap bounds the learnt clauses RetractToReuse carries over
// when the solver's LearntCap field is zero.
const defaultLearntCap = 512

// RetractToReuse removes the clauses added after the checkpoint like
// RetractTo, but keeps the work worth keeping across solves that share the
// checkpointed prefix:
//
//   - learnt clauses whose scope tag proves them to be consequences of the
//     retained clause database alone survive (re-attached after the bulk
//     restore, bounded by the ReduceDB pass);
//   - variable activities, the activity increment, and saved phases carry
//     over, so branching stays warm where the instances agree.
//
// Unlike RetractTo, the post-state is a function of the retained database
// AND the solve history since Mark, so callers needing bit-exact
// reproducibility (e.g. across differently-scheduled workers) must bracket
// histories identically — the probe generator keys them to rule clusters —
// or use RetractTo.
func (s *Solver) RetractToReuse(cp Checkpoint) {
	s.cancelUntil(0)

	// Collect survivors before the restore truncates the database. Learnt
	// literal storage is owned by the clause (never the arena), so the
	// slices stay valid across the restore.
	keep := s.keepScratch[:0]
	for i := cp.dbLen; i < len(s.db); i++ {
		c := &s.db[i]
		if c.learnt && c.scope <= cp.depth {
			keep = append(keep, *c)
		}
	}
	keep = s.reduceDB(keep)
	s.keepScratch = keep[:0] // recycle the backing array next time

	// cp is the innermost checkpoint (documented requirement), so the
	// watch-list dirty set is tracked against exactly its snapshot and
	// only the touched lists need restoring.
	s.restoreSnapshot(cp, true)

	// Branching state: activities, varInc, and saved phases deliberately
	// survive; only the decision heap is rebuilt over the surviving
	// variable space.
	s.order.grow(s.activity)
	s.order.rebuild(s.nVars)

	for i := range keep {
		s.attachKept(keep[i])
	}
	if s.ok {
		if s.propagate() != crefNil {
			s.ok = false
		}
	}
}

// reduceDB is the activity-based learnt GC: when the survivor set exceeds
// the cap, only the most active clauses are kept (ties resolved toward the
// earlier derivation, so the pass is deterministic).
func (s *Solver) reduceDB(keep []clause) []clause {
	limit := s.LearntCap
	if limit <= 0 {
		limit = defaultLearntCap
	}
	if len(keep) <= limit {
		return keep
	}
	idx := make([]int, len(keep))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if keep[idx[a]].act != keep[idx[b]].act {
			return keep[idx[a]].act > keep[idx[b]].act
		}
		return idx[a] < idx[b]
	})
	idx = idx[:limit]
	sort.Ints(idx) // re-attach in derivation order
	out := make([]clause, limit)
	for i, j := range idx {
		out[i] = keep[j]
	}
	return out
}

// attachKept re-attaches one surviving learnt clause after a snapshot
// restore, in the style of AddBlock: clauses satisfied at the top level are
// dropped, unit clauses propagate, and the rest get two watchable literals.
func (s *Solver) attachKept(c clause) {
	if !s.ok {
		return
	}
	cl := c.lits
	i0, i1 := -1, -1
	for i, l := range cl {
		switch s.valueLit(l) {
		case vTrue:
			return // permanently satisfied under the retained facts
		case unassigned:
			if i0 < 0 {
				i0 = i
			} else if i1 < 0 {
				i1 = i
			}
		}
	}
	if i0 < 0 {
		s.ok = false // retained database is UNSAT and the learnt proves it
		return
	}
	if i1 < 0 {
		if !s.enqueue(cl[i0], crefNil) {
			s.ok = false
			return
		}
		// The fact is implied at the clause's own scope, not the current
		// (deeper) one enqueue assumed.
		s.factScope[cl[i0].varID()] = c.scope
		return
	}
	// i1 > i0 >= 0, so the two swaps cannot interfere.
	cl[0], cl[i0] = cl[i0], cl[0]
	cl[1], cl[i1] = cl[i1], cl[1]
	s.db = append(s.db, clause{lits: cl, learnt: true, scope: c.scope, act: c.act, arenaOff: -1})
	s.watch(cref(len(s.db) - 1))
}

// NumLearnts reports how many learnt clauses the database currently holds
// (diagnostics and tests for the retention/ReduceDB machinery).
func (s *Solver) NumLearnts() int {
	n := 0
	for i := range s.db {
		if s.db[i].learnt {
			n++
		}
	}
	return n
}

// growZeroed extends s to length n, zeroing the new tail. It reuses spare
// capacity left behind by a previous shrink: grow/shrink cycles are the
// steady state of a probe session, and a temporary slice allocation per
// cycle per array would dominate it.
func growZeroed[T any](s []T, n int) []T {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		clear(s[old:])
		return s
	}
	out := make([]T, n)
	copy(out, s)
	return out
}

// EnsureVars grows the variable space to at least n variables. Existing
// clauses and assignments are unaffected; new variables start unassigned
// with zero activity.
func (s *Solver) EnsureVars(n int) {
	if n <= s.nVars {
		return
	}
	s.assign = growZeroed(s.assign, n+1)
	s.level = growZeroed(s.level, n+1)
	s.activity = growZeroed(s.activity, n+1)
	s.polarity = growZeroed(s.polarity, n+1)
	s.factScope = growZeroed(s.factScope, n+1)
	s.litStamp = growZeroed(s.litStamp, 2*n+2)
	s.watchStamp = growZeroed(s.watchStamp, 2*n+2)
	oldReason := len(s.reason)
	s.reason = growZeroed(s.reason, n+1)
	for v := oldReason; v <= n; v++ {
		s.reason[v] = crefNil
	}
	// Re-extend the watch-list table, reusing backing arrays retained
	// across a previous shrink (grow/shrink cycles are the steady state
	// of a probe session; reallocating every list would dominate it).
	for len(s.watches) < 2*n+2 {
		if len(s.watches) < cap(s.watches) {
			s.watches = s.watches[:len(s.watches)+1]
			s.watches[len(s.watches)-1] = s.watches[len(s.watches)-1][:0]
		} else {
			s.watches = append(s.watches, nil)
		}
	}
	// New variables are not entered into the decision heap: a variable
	// only needs branching once a clause watches it (see lazyPush); an
	// unconstrained variable stays unassigned, which reads as false in
	// the model — exactly what a polarity-false decision would yield.
	s.order.grow(s.activity)
	s.nVars = n
}

// shrinkVars truncates the variable space back to n variables. Only valid
// when every clause mentioning a removed variable has been deleted (true
// for RetractTo: clauses added before a checkpoint cannot reference
// variables allocated after it).
func (s *Solver) shrinkVars(n int) {
	if n >= s.nVars {
		return
	}
	s.assign = s.assign[:n+1]
	s.level = s.level[:n+1]
	s.reason = s.reason[:n+1]
	s.activity = s.activity[:n+1]
	s.polarity = s.polarity[:n+1]
	s.factScope = s.factScope[:n+1]
	s.litStamp = s.litStamp[:2*n+2]
	s.watchStamp = s.watchStamp[:2*n+2]
	s.watches = s.watches[:2*n+2]
	s.nVars = n
}

// resetHeuristics restores the deterministic initial branching state: zero
// activities, default phases, unit activity increments (both the variable
// and the clause one — leaving either drifting would let a long-running
// session saturate bump values), and a freshly ordered decision heap.
func (s *Solver) resetHeuristics() {
	for v := 1; v <= s.nVars; v++ {
		s.activity[v] = 0
		s.polarity[v] = false
	}
	s.varInc = 1.0
	s.claInc = 1.0
	s.order.grow(s.activity) // rebind after possible slice reallocation
	s.order.reset(s.nVars)
}

// SolveAssuming runs the CDCL search under the given assumption literals
// (DIMACS convention). Assumptions act as forced first decisions: the
// result is the satisfiability of the clause database conjoined with the
// assumptions, without adding them as clauses. The solver backtracks to
// decision level 0 on entry and exit, so it can be reused — with the same,
// different, or no assumptions — and clauses may be added between calls.
//
// Unsatisfiable is returned either when the clause database itself is
// UNSAT (a later Solve will also report UNSAT) or when the assumptions
// conflict with it (retrying without them may still succeed). Clauses
// learnt during the search are logical consequences of the clause database
// alone and are kept across calls.
func (s *Solver) SolveAssuming(assumptions ...int) (Status, []bool) {
	if !s.ok {
		return Unsatisfiable, nil
	}
	assume := make([]lit, len(assumptions))
	for i, d := range assumptions {
		v := d
		if v < 0 {
			v = -v
		}
		if v == 0 || v > s.nVars {
			panic(fmt.Sprintf("sat: assumption literal %d out of range (1..%d)", d, s.nVars))
		}
		assume[i] = toLit(d)
	}
	s.cancelUntil(0)
	st, model := s.search(assume)
	s.cancelUntil(0)
	return st, model
}
