package sat

import "fmt"

// This file implements the incremental interface used by the probe
// generator's table sessions: solving under assumptions (à la MiniSat),
// growing the variable space on demand, and retracting clauses added after
// a checkpoint so one solver instance can serve every rule of a flow table.

// Checkpoint captures the solver state needed to retract clauses added
// after Mark. Checkpoints only nest LIFO: retracting to an older
// checkpoint invalidates newer ones. A Checkpoint may be retracted to any
// number of times.
type Checkpoint struct {
	nVars    int
	dbLen    int
	arenaLen int
	trailLen int
	ok       bool
	// Search permutes clause literals and migrates watchers, so the
	// checkpoint snapshots both: the concatenated literals of every
	// retained clause, and every watch list flattened into one arena
	// (offsets[l]..offsets[l+1] is the list of literal l). Restoring
	// them — all pointer-free, so pure memmove — puts the solver in a
	// state that depends only on the retained clause database, never on
	// what was solved in between.
	lits     []lit
	watchers []watcher
	offsets  []int32
}

// Mark records the current clause database boundary. The solver is
// backtracked to decision level 0 first, so the recorded trail prefix
// contains exactly the top-level facts implied by the clauses added so far.
func (s *Solver) Mark() Checkpoint {
	s.cancelUntil(0)
	cp := Checkpoint{
		nVars:    s.nVars,
		dbLen:    len(s.db),
		arenaLen: len(s.arena),
		trailLen: len(s.trail),
		ok:       s.ok,
		offsets:  make([]int32, len(s.watches)+1),
	}
	n := 0
	for i := range s.db {
		n += len(s.db[i].lits)
	}
	cp.lits = make([]lit, 0, n)
	for i := range s.db {
		cp.lits = append(cp.lits, s.db[i].lits...)
	}
	n = 0
	for _, ws := range s.watches {
		n += len(ws)
	}
	cp.watchers = make([]watcher, 0, n)
	for i, ws := range s.watches {
		cp.offsets[i] = int32(len(cp.watchers))
		cp.watchers = append(cp.watchers, ws...)
	}
	cp.offsets[len(s.watches)] = int32(len(cp.watchers))
	return cp
}

// RetractTo removes every clause added after the checkpoint (the per-rule
// delta plus any learnt clauses, which may depend on it), unassigns
// top-level facts derived since, shrinks the variable space back to the
// checkpoint's, restores the snapshotted literal order and watch lists,
// and resets the branching heuristics.
//
// After RetractTo the solver state is a pure function of the retained
// clause database: a Solve gives bit-identical results no matter what was
// added, assumed, or solved since the Mark. The batch probe generator
// relies on this for determinism across worker counts. The restore is
// pointer-free bulk copying and allocates only when a watch list grew past
// its previous capacity.
func (s *Solver) RetractTo(cp Checkpoint) {
	s.cancelUntil(0)
	s.db = s.db[:cp.dbLen]
	s.arena = s.arena[:cp.arenaLen]

	// Unassign top-level facts derived after the checkpoint. Facts on the
	// retained prefix were enqueued before Mark, so their reason clauses
	// are all retained too.
	for i := len(s.trail) - 1; i >= cp.trailLen; i-- {
		v := s.trail[i].varID()
		s.assign[v] = unassigned
		s.reason[v] = crefNil
		s.level[v] = 0
	}
	s.trail = s.trail[:cp.trailLen]
	s.qhead = cp.trailLen
	s.ok = cp.ok

	s.shrinkVars(cp.nVars)

	pos := 0
	for i := range s.db {
		c := &s.db[i]
		copy(c.lits, cp.lits[pos:pos+len(c.lits)])
		pos += len(c.lits)
	}
	for i := range s.watches {
		snap := cp.watchers[cp.offsets[i]:cp.offsets[i+1]]
		if cap(s.watches[i]) < len(snap) {
			s.watches[i] = make([]watcher, len(snap))
		} else {
			s.watches[i] = s.watches[i][:len(snap)]
		}
		copy(s.watches[i], snap)
	}
	s.resetHeuristics()
}

// EnsureVars grows the variable space to at least n variables. Existing
// clauses and assignments are unaffected; new variables start unassigned
// with zero activity.
func (s *Solver) EnsureVars(n int) {
	if n <= s.nVars {
		return
	}
	grow := n - s.nVars
	s.assign = append(s.assign, make([]tribool, grow)...)
	s.level = append(s.level, make([]int, grow)...)
	s.activity = append(s.activity, make([]float64, grow)...)
	s.polarity = append(s.polarity, make([]bool, grow)...)
	for v := s.nVars + 1; v <= n; v++ {
		s.reason = append(s.reason, crefNil)
	}
	// Re-extend the watch-list table, reusing backing arrays retained
	// across a previous shrink (grow/shrink cycles are the steady state
	// of a probe session; reallocating every list would dominate it).
	for len(s.watches) < 2*n+2 {
		if len(s.watches) < cap(s.watches) {
			s.watches = s.watches[:len(s.watches)+1]
			s.watches[len(s.watches)-1] = s.watches[len(s.watches)-1][:0]
		} else {
			s.watches = append(s.watches, nil)
		}
	}
	// New variables are not entered into the decision heap: a variable
	// only needs branching once a clause watches it (see lazyPush); an
	// unconstrained variable stays unassigned, which reads as false in
	// the model — exactly what a polarity-false decision would yield.
	s.order.grow(s.activity)
	s.nVars = n
}

// shrinkVars truncates the variable space back to n variables. Only valid
// when every clause mentioning a removed variable has been deleted (true
// for RetractTo: clauses added before a checkpoint cannot reference
// variables allocated after it).
func (s *Solver) shrinkVars(n int) {
	if n >= s.nVars {
		return
	}
	s.assign = s.assign[:n+1]
	s.level = s.level[:n+1]
	s.reason = s.reason[:n+1]
	s.activity = s.activity[:n+1]
	s.polarity = s.polarity[:n+1]
	s.watches = s.watches[:2*n+2]
	s.nVars = n
}

// resetHeuristics restores the deterministic initial branching state:
// zero activities, default phases, and a freshly ordered decision heap.
func (s *Solver) resetHeuristics() {
	for v := 1; v <= s.nVars; v++ {
		s.activity[v] = 0
		s.polarity[v] = false
	}
	s.varInc = 1.0
	s.order.grow(s.activity) // rebind after possible slice reallocation
	s.order.reset(s.nVars)
}

// SolveAssuming runs the CDCL search under the given assumption literals
// (DIMACS convention). Assumptions act as forced first decisions: the
// result is the satisfiability of the clause database conjoined with the
// assumptions, without adding them as clauses. The solver backtracks to
// decision level 0 on entry and exit, so it can be reused — with the same,
// different, or no assumptions — and clauses may be added between calls.
//
// Unsatisfiable is returned either when the clause database itself is
// UNSAT (a later Solve will also report UNSAT) or when the assumptions
// conflict with it (retrying without them may still succeed). Clauses
// learnt during the search are logical consequences of the clause database
// alone and are kept across calls.
func (s *Solver) SolveAssuming(assumptions ...int) (Status, []bool) {
	if !s.ok {
		return Unsatisfiable, nil
	}
	assume := make([]lit, len(assumptions))
	for i, d := range assumptions {
		v := d
		if v < 0 {
			v = -v
		}
		if v == 0 || v > s.nVars {
			panic(fmt.Sprintf("sat: assumption literal %d out of range (1..%d)", d, s.nVars))
		}
		assume[i] = toLit(d)
	}
	s.cancelUntil(0)
	st, model := s.search(assume)
	s.cancelUntil(0)
	return st, model
}
