package experiments

// Figure 9: the number of reserved probe-field values (= catching rules
// per switch) needed across a topology corpus, for the no-coloring
// baseline, the strategy-1 coloring, and the strategy-2 (square-graph)
// coloring (§8.3.2). The paper finds at most 9 values for Zoo topologies
// up to 754 switches and at most 8 for Rocketfuel up to 11800 with
// strategy 1, with strategy 2 sometimes needing many more (max degree
// bound).

import (
	"fmt"
	"sort"

	"monocle/internal/coloring"
	"monocle/internal/topo"
)

// Figure9Row summarizes one topology.
type Figure9Row struct {
	Name       string
	Switches   int
	NoColoring int
	Strategy1  int
	Strategy2  int
}

// Figure9Result is a corpus summary.
type Figure9Result struct {
	Corpus string
	Rows   []Figure9Row
}

// RunFigure9Zoo colors the Topology-Zoo-like corpus. budget bounds the
// exact search per graph.
func RunFigure9Zoo(budget int64, limit int) Figure9Result {
	corpus := topo.ZooCorpus()
	if limit > 0 && limit < len(corpus) {
		corpus = corpus[:limit]
	}
	return runFigure9("Topology Zoo (synthetic)", corpus, budget, false)
}

// RunFigure9Rocketfuel colors the Rocketfuel-like corpus; strategy 2 uses
// the greedy heuristic like the paper ("our ILP formulation runs
// out-of-memory" there).
func RunFigure9Rocketfuel(budget int64, limit int) Figure9Result {
	corpus := topo.RocketfuelCorpus()
	if limit > 0 && limit < len(corpus) {
		corpus = corpus[:limit]
	}
	return runFigure9("Rocketfuel (synthetic)", corpus, budget, true)
}

func runFigure9(name string, corpus []topo.Topology, budget int64, greedy2 bool) Figure9Result {
	res := Figure9Result{Corpus: name}
	for _, tp := range corpus {
		row := Figure9Row{Name: tp.Name, Switches: tp.Graph.N}
		row.NoColoring = coloring.NoColoring(tp.Graph).Values
		row.Strategy1 = coloring.PlanStrategy1(tp.Graph, budget).Values
		if greedy2 {
			row.Strategy2 = coloring.NumColors(coloring.DSATUR(tp.Graph.Square()))
		} else {
			row.Strategy2 = coloring.PlanStrategy2(tp.Graph, budget).Values
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// CDF returns the sorted per-topology value counts for one column.
func (r Figure9Result) CDF(col func(Figure9Row) int) []int {
	out := make([]int, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, col(row))
	}
	sort.Ints(out)
	return out
}

// FormatFigure9 renders the CDF summary.
func FormatFigure9(r Figure9Result) string {
	if len(r.Rows) == 0 {
		return "Figure 9: empty corpus\n"
	}
	no := r.CDF(func(x Figure9Row) int { return x.NoColoring })
	s1 := r.CDF(func(x Figure9Row) int { return x.Strategy1 })
	s2 := r.CDF(func(x Figure9Row) int { return x.Strategy2 })
	maxOf := func(s []int) int { return s[len(s)-1] }
	medOf := func(s []int) int { return s[len(s)/2] }
	out := fmt.Sprintf("Figure 9 (%s, %d topologies):\n", r.Corpus, len(r.Rows))
	out += fmt.Sprintf("  %-14s median=%4d max=%4d\n", "no coloring", medOf(no), maxOf(no))
	out += fmt.Sprintf("  %-14s median=%4d max=%4d\n", "coloring (1)", medOf(s1), maxOf(s1))
	out += fmt.Sprintf("  %-14s median=%4d max=%4d\n", "coloring (2)", medOf(s2), maxOf(s2))
	return out
}
