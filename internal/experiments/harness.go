// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the simulated substrate: one driver per experiment,
// each returning the same rows/series the paper reports. The package is
// used by cmd/experiments and by the root-level benchmark harness.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"monocle/internal/coloring"
	"monocle/internal/flowtable"
	"monocle/internal/monocle"
	"monocle/internal/openflow"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// LinkSpec wires two switches by index with explicit port numbers.
type LinkSpec struct {
	A, B   int
	PA, PB flowtable.PortID
}

// NetConfig describes a simulated network.
type NetConfig struct {
	N         int
	Links     []LinkSpec
	HostPorts map[int]flowtable.PortID // host-facing (egress) port per switch
	Profile   func(i int) switchsim.Profile
	// Monocle attaches a Monitor proxy to every switch and installs
	// colored catching rules; false builds the bare-switch baseline.
	Monocle bool
	CfgEdit func(i int, c *monocle.Config)
	Seed    int64
}

// Net is a wired simulation: switches, optional monitors, and the
// controller-side hooks.
type Net struct {
	Sim      *sim.Sim
	Switches []*switchsim.Switch
	Monitors []*monocle.Monitor
	Mux      *monocle.Multiplexer
	Colors   []int

	cfg      NetConfig
	ports    map[[2]int]flowtable.PortID
	ctrlRecv []func(msg openflow.Message, xid uint32)
	// CommitAt records data plane commit times: key = switch<<48|cookie
	// (cookies in experiments stay under 2^48).
	CommitAt map[uint64]sim.Time
	// OnCommit, when set, observes every commit.
	OnCommit func(sw int, cmd uint16, cookie uint64, at sim.Time)
}

// Build constructs the network.
func Build(cfg NetConfig) *Net {
	n := &Net{
		Sim:      sim.New(),
		cfg:      cfg,
		ports:    make(map[[2]int]flowtable.PortID),
		ctrlRecv: make([]func(openflow.Message, uint32), cfg.N),
		CommitAt: make(map[uint64]sim.Time),
	}
	graph := coloring.NewGraph(cfg.N)
	for i := 0; i < cfg.N; i++ {
		prof := switchsim.OVS()
		if cfg.Profile != nil {
			prof = cfg.Profile(i)
		}
		sw := switchsim.New(uint32(i), n.Sim, prof, cfg.Seed+int64(i)*7919)
		i := i
		sw.OnCommit = func(cmd uint16, cookie uint64, at sim.Time) {
			n.CommitAt[uint64(i)<<48|cookie] = at
			if n.OnCommit != nil {
				n.OnCommit(i, cmd, cookie, at)
			}
		}
		n.Switches = append(n.Switches, sw)
	}
	for _, l := range cfg.Links {
		switchsim.Connect(n.Switches[l.A], l.PA, n.Switches[l.B], l.PB, 50*time.Microsecond)
		n.ports[[2]int{l.A, l.B}] = l.PA
		n.ports[[2]int{l.B, l.A}] = l.PB
		graph.AddEdge(l.A, l.B)
	}
	for swi, p := range cfg.HostPorts {
		switchsim.ConnectHost(n.Switches[swi], p, 50*time.Microsecond, func(switchsim.Frame) {})
	}

	if !cfg.Monocle {
		// Direct mode: the controller talks to the switches.
		for i := range n.Switches {
			i := i
			n.Switches[i].ToController = func(msg openflow.Message, xid uint32) {
				if n.ctrlRecv[i] != nil {
					n.ctrlRecv[i](msg, xid)
				}
			}
		}
		return n
	}

	// Monocle mode: color the topology (strategy 1) and attach proxies.
	plan := coloring.PlanStrategy1(graph, 2_000_000)
	n.Colors = plan.Colors
	reserved := make([]uint32, 0, plan.Values)
	seen := map[int]bool{}
	for _, c := range plan.Colors {
		if !seen[c] {
			seen[c] = true
			reserved = append(reserved, uint32(c+1))
		}
	}
	sort.Slice(reserved, func(a, b int) bool { return reserved[a] < reserved[b] })

	n.Mux = monocle.NewMultiplexer()
	for i := 0; i < cfg.N; i++ {
		mcfg := monocle.DefaultConfig(uint32(i + 1))
		mcfg.SwitchID = uint32(i + 1) // ids start at 1 (0 means default)
		mcfg.TagValue = uint32(plan.Colors[i] + 1)
		mcfg.PortPeer = make(map[flowtable.PortID]uint32)
		for _, l := range cfg.Links {
			if l.A == i {
				mcfg.PortPeer[l.PA] = uint32(l.B + 1)
			}
			if l.B == i {
				mcfg.PortPeer[l.PB] = uint32(l.A + 1)
			}
		}
		if hp, ok := cfg.HostPorts[i]; ok {
			mcfg.PortPeer[hp] = monocle.HostPeer
		}
		for p := range mcfg.PortPeer {
			if p != flowtable.PortController {
				mcfg.Ports = append(mcfg.Ports, p)
			}
		}
		sort.Slice(mcfg.Ports, func(a, b int) bool { return mcfg.Ports[a] < mcfg.Ports[b] })
		if cfg.CfgEdit != nil {
			cfg.CfgEdit(i, &mcfg)
		}
		mon := monocle.New(n.Sim, mcfg)
		n.Mux.Register(mon)
		n.Monitors = append(n.Monitors, mon)
		sw := n.Switches[i]
		mon.ToSwitch = func(msg openflow.Message, xid uint32) { sw.FromController(msg, xid) }
		sw.ToController = func(msg openflow.Message, xid uint32) { mon.OnSwitchMessage(msg, xid) }
		i := i
		mon.ToController = func(msg openflow.Message, xid uint32) {
			if n.ctrlRecv[i] != nil {
				n.ctrlRecv[i](msg, xid)
			}
		}
		for _, cr := range mon.CatchRules(reserved) {
			if err := mon.Preinstall(cr); err != nil {
				panic(fmt.Sprintf("experiments: catch preinstall: %v", err))
			}
			if err := sw.DataTable().Insert(cr.Clone()); err != nil {
				panic(fmt.Sprintf("experiments: catch insert: %v", err))
			}
		}
	}
	return n
}

// Send delivers a controller message toward switch i (through the Monitor
// in Monocle mode).
func (n *Net) Send(i int, msg openflow.Message, xid uint32) {
	if n.Monitors != nil {
		n.Monitors[i].OnControllerMessage(msg, xid)
		return
	}
	n.Switches[i].FromController(msg, xid)
}

// SetCtrlRecv installs the controller-side receive handler for switch i.
func (n *Net) SetCtrlRecv(i int, h func(msg openflow.Message, xid uint32)) {
	n.ctrlRecv[i] = h
}

// PortBetween implements controller.PortResolver.
func (n *Net) PortBetween(u, v int) (flowtable.PortID, bool) {
	p, ok := n.ports[[2]int{u, v}]
	return p, ok
}

// HostPort implements controller.PortResolver.
func (n *Net) HostPort(e int) (flowtable.PortID, bool) {
	p, ok := n.cfg.HostPorts[e]
	return p, ok
}

// CommitTime returns when the rule (switch, cookie) last committed.
func (n *Net) CommitTime(sw int, cookie uint64) (sim.Time, bool) {
	t, ok := n.CommitAt[uint64(sw)<<48|cookie]
	return t, ok
}

// Durations sorts a sample for CDF-style reporting.
func Durations(d []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), d...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-quantile (0..1) of a sorted sample.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
