package experiments

import (
	"testing"
	"time"

	"monocle/internal/switchsim"
)

func TestFigure4SmallCDF(t *testing.T) {
	cfg := DefaultFigure4(4)
	cfg.Rules = 120
	cfg.Scenarios = []Figure4Scenario{
		{Label: "1 out of 1", Fail: 1, Threshold: 1},
		{Label: "3 out of 5", Fail: 5, Threshold: 3},
	}
	res := RunFigure4(cfg)
	for label, s := range res.Series {
		if len(s) != cfg.Reps {
			t.Fatalf("%s: detected %d/%d", label, len(s), cfg.Reps)
		}
		for _, d := range s {
			// Detection cannot beat the 150 ms alarm timeout and must
			// land within cycle (240ms for 120 rules) + timeout slack.
			if d < 150*time.Millisecond || d > 1200*time.Millisecond {
				t.Fatalf("%s: detection %v out of plausible range", label, d)
			}
		}
	}
	if FormatFigure4(res) == "" {
		t.Fatal("format")
	}
}

func TestFigure4LinkFailure(t *testing.T) {
	cfg := DefaultFigure4(3)
	cfg.Rules = 150
	cfg.Scenarios = []Figure4Scenario{
		{Label: "5 out of 102 (link)", Fail: 102, Threshold: 5, FailLink: true},
	}
	res := RunFigure4(cfg)
	s := res.Series["5 out of 102 (link)"]
	if len(s) != cfg.Reps {
		t.Fatalf("detected %d/%d", len(s), cfg.Reps)
	}
	// With 102 simultaneous failures the 5th detection lands quickly
	// (paper: ≈200 ms average with 150 ms of that being the timeout).
	for _, d := range s {
		if d > 600*time.Millisecond {
			t.Fatalf("link failure detection too slow: %v", d)
		}
	}
}

func TestFigure5MonocleEliminatesDrops(t *testing.T) {
	flows := 60
	for _, prof := range []switchsim.Profile{switchsim.HP5406zl(), switchsim.Pica8()} {
		barrier := RunFigure5(Figure5Config{
			Flows: flows, PacketRate: 300, S3Profile: prof, UseMonocle: false, Seed: 5})
		mon := RunFigure5(Figure5Config{
			Flows: flows, PacketRate: 300, S3Profile: prof, UseMonocle: true, Seed: 5})
		if barrier.Dropped <= 0 {
			t.Fatalf("%s: barrier mode should blackhole packets, got %.0f", prof.Name, barrier.Dropped)
		}
		if mon.Dropped > barrier.Dropped/20 {
			t.Fatalf("%s: Monocle still drops %.0f (barriers: %.0f)", prof.Name, mon.Dropped, barrier.Dropped)
		}
		// The total update time must stay comparable (same order).
		if mon.Total > 6*barrier.Total {
			t.Fatalf("%s: Monocle too slow: %v vs %v", prof.Name, mon.Total, barrier.Total)
		}
		completed := 0
		for _, f := range mon.Flows {
			if f.DataplaneReady > 0 {
				completed++
			}
		}
		if completed != flows {
			t.Fatalf("%s: only %d/%d flows completed under Monocle", prof.Name, completed, flows)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := RunTable2(Table2Config{Limit: 120})
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	for _, r := range rows {
		if r.Total != 120 {
			t.Fatalf("%s: total %d", r.Dataset, r.Total)
		}
		// The paper finds probes for the vast majority of rules.
		if float64(r.Found)/float64(r.Total) < 0.8 {
			t.Fatalf("%s: found only %d/%d", r.Dataset, r.Found, r.Total)
		}
		if r.AvgMS <= 0 || r.MaxMS < r.AvgMS {
			t.Fatalf("%s: timing avg=%f max=%f", r.Dataset, r.AvgMS, r.MaxMS)
		}
	}
	if FormatTable2(rows) == "" {
		t.Fatal("format")
	}
}

// TestTable2IncrementalMatchesOneShot: the incremental engine must find
// probes for exactly as many rules as the one-shot generator.
func TestTable2IncrementalMatchesOneShot(t *testing.T) {
	oneShot := RunTable2(Table2Config{Limit: 80})
	incr := RunTable2(Table2Config{Limit: 80, Incremental: true})
	for i := range oneShot {
		if oneShot[i].Found != incr[i].Found || oneShot[i].Total != incr[i].Total {
			t.Fatalf("%s: one-shot %d/%d vs incremental %d/%d",
				oneShot[i].Dataset, oneShot[i].Found, oneShot[i].Total, incr[i].Found, incr[i].Total)
		}
	}
}

func TestTable2SweepShape(t *testing.T) {
	rows := RunTable2Sweep(100, 2)
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	for _, r := range rows {
		if r.Rules != 100 || r.Workers != 2 {
			t.Fatalf("%s: rules=%d workers=%d", r.Dataset, r.Rules, r.Workers)
		}
		if float64(r.Found)/float64(r.Rules) < 0.8 {
			t.Fatalf("%s: found only %d/%d", r.Dataset, r.Found, r.Rules)
		}
		if r.WallMS <= 0 || r.PerRuleMS <= 0 {
			t.Fatalf("%s: timing %+v", r.Dataset, r)
		}
	}
	if FormatTable2Sweep(rows) == "" {
		t.Fatal("format")
	}
}

func TestFigure6Shape(t *testing.T) {
	points := RunFigure6()
	byName := map[string]map[int]float64{}
	for _, p := range points {
		if byName[p.Switch] == nil {
			byName[p.Switch] = map[int]float64{}
		}
		byName[p.Switch][p.K] = p.Normalized
	}
	for name, series := range byName {
		if series[0] < 0.99 {
			t.Fatalf("%s: baseline not 1.0: %f", name, series[0])
		}
		// Monotonic non-increasing in k.
		prev := series[0]
		for _, k := range Figure6Ratios[1:] {
			if series[k] > prev+0.01 {
				t.Fatalf("%s: not monotonic at k=%d", name, k)
			}
			prev = series[k]
		}
		// Paper: up to 5 PacketOuts per FlowMod (k=10) keeps ≥85% for
		// the three normal-priority switches.
		if name != switchsim.DellS4810EqualPrio().Name && series[10] < 0.80 {
			t.Fatalf("%s: %.2f at 5 PO/FM, want ≥0.80", name, series[10])
		}
	}
	// The equal-priority S4810 must be the most affected at high load.
	eq := byName[switchsim.DellS4810EqualPrio().Name][40]
	for name, series := range byName {
		if name == switchsim.DellS4810EqualPrio().Name {
			continue
		}
		if series[40] < eq {
			t.Fatalf("%s (%.2f) worse than S4810** (%.2f) at 40:2", name, series[40], eq)
		}
	}
	if FormatFigure6(points) == "" {
		t.Fatal("format")
	}
}

func TestFigure7Shape(t *testing.T) {
	points := RunFigure7()
	byName := map[string]map[int]float64{}
	for _, p := range points {
		if byName[p.Switch] == nil {
			byName[p.Switch] = map[int]float64{}
		}
		byName[p.Switch][p.PacketIns] = p.Normalized
	}
	// Normal switches nearly unaffected even at 5000 PacketIn/s.
	for name, series := range byName {
		if name == switchsim.DellS4810EqualPrio().Name {
			continue
		}
		if series[5000] < 0.85 {
			t.Fatalf("%s: %.2f at 5000 pi/s, want ≈1", name, series[5000])
		}
	}
	// S4810** drops by up to ~60%.
	eq := byName[switchsim.DellS4810EqualPrio().Name][5000]
	if eq > 0.6 || eq < 0.2 {
		t.Fatalf("S4810** at 5000 pi/s: %.2f, want a heavy (≈60%%) drop", eq)
	}
	if FormatFigure7(points) == "" {
		t.Fatal("format")
	}
}

func TestSwitchRatesMatchPaper(t *testing.T) {
	rows := RunSwitchRates()
	want := map[string][2]float64{
		"HP 5406zl":  {7006, 5531},
		"DELL S4810": {850, 401},
		"DELL 8132F": {9128, 1105},
	}
	for _, r := range rows {
		w, ok := want[r.Switch]
		if !ok {
			continue
		}
		if r.PacketOutRate < w[0]*0.9 || r.PacketOutRate > w[0]*1.1 {
			t.Fatalf("%s PacketOut %f want ≈%f", r.Switch, r.PacketOutRate, w[0])
		}
		if r.PacketInRate < w[1]*0.9 || r.PacketInRate > w[1]*1.1 {
			t.Fatalf("%s PacketIn %f want ≈%f", r.Switch, r.PacketInRate, w[1])
		}
	}
	if FormatSwitchRates(rows) == "" {
		t.Fatal("format")
	}
}

func TestFigure8MonocleOverheadModest(t *testing.T) {
	paths := 200
	results := DefaultFigure8(paths)
	var ideal, mon Figure8Result
	for _, r := range results {
		if r.Mode == "Ideal (barriers)" {
			ideal = r
		} else {
			mon = r
		}
	}
	countDone := func(r Figure8Result) int {
		n := 0
		for _, d := range r.Done {
			if d > 0 {
				n++
			}
		}
		return n
	}
	if countDone(ideal) != paths {
		t.Fatalf("ideal completed %d/%d", countDone(ideal), paths)
	}
	if countDone(mon) != paths {
		t.Fatalf("monocle completed %d/%d", countDone(mon), paths)
	}
	if mon.Total <= ideal.Total {
		t.Fatalf("monocle (%v) should trail ideal (%v) slightly", mon.Total, ideal.Total)
	}
	// The paper reports ≈350 ms extra on 2000 flows; proportionally the
	// overhead must stay well under 2× the ideal total.
	if mon.Total > 2*ideal.Total+2*time.Second {
		t.Fatalf("monocle overhead too large: %v vs %v", mon.Total, ideal.Total)
	}
	if FormatFigure8(results) == "" {
		t.Fatal("format")
	}
}

func TestFigure9Shapes(t *testing.T) {
	zoo := RunFigure9Zoo(200_000, 40)
	if len(zoo.Rows) != 40 {
		t.Fatalf("rows %d", len(zoo.Rows))
	}
	s1 := zoo.CDF(func(r Figure9Row) int { return r.Strategy1 })
	no := zoo.CDF(func(r Figure9Row) int { return r.NoColoring })
	if s1[len(s1)-1] > 12 {
		t.Fatalf("strategy 1 needs %d values; paper: ≤9 for the Zoo", s1[len(s1)-1])
	}
	if no[len(no)-1] <= s1[len(s1)-1] {
		t.Fatal("coloring should beat the identity baseline")
	}
	for _, row := range zoo.Rows {
		if row.Strategy2 < row.Strategy1 {
			t.Fatalf("%s: strategy 2 (%d) cannot beat strategy 1 (%d)", row.Name, row.Strategy2, row.Strategy1)
		}
	}
	if FormatFigure9(zoo) == "" {
		t.Fatal("format")
	}
}

func TestFigure9RocketfuelSmall(t *testing.T) {
	rf := RunFigure9Rocketfuel(50_000, 2)
	if len(rf.Rows) != 2 {
		t.Fatal("rows")
	}
	for _, row := range rf.Rows {
		if row.Strategy1 > 10 {
			t.Fatalf("%s: strategy 1 = %d, paper: ≤8 for Rocketfuel", row.Name, row.Strategy1)
		}
	}
}

func TestHarnessHelpers(t *testing.T) {
	d := Durations([]time.Duration{3, 1, 2})
	if d[0] != 1 || d[2] != 3 {
		t.Fatal("sort")
	}
	if Percentile(d, 0) != 1 || Percentile(d, 1) != 3 {
		t.Fatal("percentile")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}
