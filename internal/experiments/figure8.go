package experiments

// Figure 8: batched consistent update of 2000 random paths in a larger
// network (§8.4): a k=4 FatTree of 20 Pica8-like switches plus one
// hypervisor (OVS with reliable acknowledgments) per edge switch, compared
// against the same FatTree built from 28 ideal switches. The controller
// starts 40 path updates every 10 ms; each path installs all rules except
// the ingress hypervisor's (phase 1), then updates the ingress rule
// (phase 2). Monocle's feedback delays the whole update only modestly
// (≈350 ms in the paper).

import (
	"fmt"
	"math/rand"
	"time"

	"monocle/internal/controller"
	"monocle/internal/flowtable"
	"monocle/internal/openflow"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
	"monocle/internal/topo"
)

// Figure8Config parameterizes the batched update.
type Figure8Config struct {
	Paths      int
	BatchSize  int
	BatchEvery time.Duration
	// UseMonocle: Pica8 cores behind Monocle proxies; false: ideal
	// switches with trustworthy barriers.
	UseMonocle bool
	Seed       int64
}

// Figure8Result is the completion-time series.
type Figure8Result struct {
	Mode string
	// Done[i] is when flow i's phase-2 (ingress) rule was confirmed.
	Done  []time.Duration
	Total time.Duration
}

// fatTreeResolver adapts the FatTree wiring plus hypervisor links to the
// controller's PortResolver.
type fatTreeResolver struct {
	ft   *topo.FatTree
	net  *Net
	hypO map[int]flowtable.PortID // hypervisor's host-facing port
}

func (r fatTreeResolver) PortBetween(u, v int) (flowtable.PortID, bool) {
	return r.net.PortBetween(u, v)
}

func (r fatTreeResolver) HostPort(e int) (flowtable.PortID, bool) {
	p, ok := r.hypO[e]
	return p, ok
}

// RunFigure8 executes one mode of the experiment.
func RunFigure8(cfg Figure8Config) Figure8Result {
	ft := topo.NewFatTree(4)
	nCore := ft.N // 20
	edges := ft.EdgeSwitches()
	nHyp := len(edges) // 8
	total := nCore + nHyp

	// Wiring: core fat-tree links, then hypervisor i (index nCore+i)
	// connects its port 1 to edge switch's host port; its port 2 is the
	// host-facing egress.
	var links []LinkSpec
	g := ft.Graph()
	seen := map[[2]int]bool{}
	for u := 0; u < nCore; u++ {
		for _, v := range g.Neighbors(u) {
			if seen[[2]int{v, u}] || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			pu, _ := ft.Port(u, v)
			pv, _ := ft.Port(v, u)
			links = append(links, LinkSpec{A: u, B: v, PA: pu, PB: pv})
		}
	}
	hostPorts := map[int]flowtable.PortID{}
	hypOf := map[int]int{}
	for i, e := range edges {
		hyp := nCore + i
		hypOf[e] = hyp
		links = append(links, LinkSpec{A: e, B: hyp, PA: ft.HostPort[e], PB: 1})
		hostPorts[hyp] = 2
	}

	net := Build(NetConfig{
		N:         total,
		Links:     links,
		HostPorts: hostPorts,
		Profile: func(i int) switchsim.Profile {
			if !cfg.UseMonocle {
				// Ideal baseline: same speeds, truthful acknowledgments.
				if i < nCore {
					return switchsim.HonestPica8()
				}
				return switchsim.OVS()
			}
			if i < nCore {
				return switchsim.Pica8()
			}
			return switchsim.OVS() // hypervisors: reliable acks
		},
		Monocle: cfg.UseMonocle,
		Seed:    cfg.Seed,
	})

	rng := rand.New(rand.NewSource(cfg.Seed))
	done := make([]time.Duration, cfg.Paths)
	res := Figure8Result{Mode: "Ideal (barriers)"}
	if cfg.UseMonocle {
		res.Mode = "Monocle (Pica8 cores)"
	}

	// Per-switch two-phase bookkeeping: map rule id → update.
	updates := make(map[uint64]*controller.TwoPhaseUpdate)
	const prio = 100

	sendRule := func(sw int, fm *openflow.FlowMod, barrierXID uint32) {
		net.Send(sw, fm, 0)
		if !cfg.UseMonocle || sw >= nCore {
			// Barrier-based confirmation (ideal mode, or hypervisors
			// under Monocle mode — they have reliable acks).
			net.Send(sw, openflow.BarrierRequest{}, barrierXID)
		}
	}

	// Confirmation plumbing. Monocle mode: core rules confirm via the
	// monitor callback; hypervisor / ideal rules via barrier replies.
	confirm := func(flowID int, ruleID uint64, at sim.Time) {
		if u, ok := updates[ruleID]; ok {
			if u.Confirm(ruleID) {
				// Phase 2: ingress rule.
				fm, err := u.Phase2Rule(prio)
				if err != nil {
					panic(err)
				}
				ingress := int(u.Ingress.Switch)
				sendRule(ingress, fm, uint32(3_000_000+u.Flow.ID))
			}
			delete(updates, ruleID)
			return
		}
		_ = flowID
	}

	if cfg.UseMonocle {
		for i := 0; i < nCore; i++ {
			net.Monitors[i].Cfg.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
				confirm(int(ruleID>>16), ruleID, at)
			}
		}
	}
	for i := 0; i < total; i++ {
		i := i
		net.SetCtrlRecv(i, func(msg openflow.Message, xid uint32) {
			switch msg.(type) {
			case openflow.BarrierReply, *openflow.BarrierReply:
				switch {
				case xid >= 3_000_000: // phase-2 ingress commit
					flow := int(xid - 3_000_000)
					if done[flow] == 0 {
						done[flow] = time.Duration(net.Sim.Now())
					}
				case xid >= 2_000_000: // phase-1 rule at a barrier switch
					ruleID := uint64(xid-2_000_000)<<16 | uint64(i)&0xffff
					confirm(int(xid-2_000_000), ruleID, net.Sim.Now())
				}
			}
		})
	}

	// Phase-2 completion under Monocle mode also needs the ingress
	// hypervisor's barrier (handled above; hypervisors always barrier).

	// Launch batches.
	flowID := 0
	var launch func()
	launch = func() {
		for b := 0; b < cfg.BatchSize && flowID < cfg.Paths; b++ {
			i := flowID
			flowID++
			f := controller.FlowForIndex(i)
			srcE := edges[rng.Intn(len(edges))]
			dstE := edges[rng.Intn(len(edges))]
			for dstE == srcE {
				dstE = edges[rng.Intn(len(edges))]
			}
			corePath := ft.Path(srcE, dstE)
			full := append([]int{hypOf[srcE]}, corePath...)
			full = append(full, hypOf[dstE])
			hops, err := controller.HopsForPath(full, fatTreeResolver{ft: ft, net: net, hypO: hostPorts})
			if err != nil {
				panic(err)
			}
			u := controller.NewTwoPhaseUpdate(f, hops)
			fms, err := u.Phase1Rules(prio)
			if err != nil {
				panic(err)
			}
			for hi, fm := range fms {
				sw := int(u.Rest[hi].Switch)
				updates[f.RuleID(uint32(sw))] = u
				sendRule(sw, fm, uint32(2_000_000+i))
			}
		}
		if flowID < cfg.Paths {
			net.Sim.After(cfg.BatchEvery, launch)
		}
	}
	launch()
	net.Sim.RunUntil(10 * time.Minute)

	for i, d := range done {
		if d > res.Total {
			res.Total = d
		}
		_ = i
	}
	res.Done = done
	return res
}

// DefaultFigure8 runs both modes with the paper's parameters.
func DefaultFigure8(paths int) []Figure8Result {
	var out []Figure8Result
	for _, mode := range []bool{false, true} {
		out = append(out, RunFigure8(Figure8Config{
			Paths: paths, BatchSize: 40, BatchEvery: 10 * time.Millisecond,
			UseMonocle: mode, Seed: 8,
		}))
	}
	return out
}

// FormatFigure8 renders the completion comparison.
func FormatFigure8(results []Figure8Result) string {
	out := "Figure 8: batched update of random paths on a 20-switch FatTree\n"
	var ideal, mon time.Duration
	for _, r := range results {
		completed := 0
		for _, d := range r.Done {
			if d > 0 {
				completed++
			}
		}
		out += fmt.Sprintf("  %-24s completed=%d/%d total=%v\n",
			r.Mode, completed, len(r.Done), r.Total.Round(time.Millisecond))
		if r.Mode == "Ideal (barriers)" {
			ideal = r.Total
		} else {
			mon = r.Total
		}
	}
	if ideal > 0 && mon > 0 {
		out += fmt.Sprintf("  Monocle delay over ideal: %v\n", (mon - ideal).Round(time.Millisecond))
	}
	return out
}
