package experiments

// Table 2: probe generation time and success rate on the two ACL rule
// sets (§8.2). Times here are real (wall-clock) measurements of this
// implementation's generator, reported exactly like the paper's rows:
// average ms, max ms, probes found / total rules.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"monocle/internal/dataset"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
)

// Table2Row is one dataset's result.
type Table2Row struct {
	Dataset string
	AvgMS   float64
	MaxMS   float64
	Found   int
	Total   int
}

// Table2Config parameterizes the run.
type Table2Config struct {
	// Limit caps the number of rules probed per dataset (0 = all);
	// tests use a cap to stay fast.
	Limit int
	// SkipOverlapFilter runs the §5.4 ablation variant.
	SkipOverlapFilter bool
	// Incremental routes every generation through one persistent
	// probe.Session per dataset instead of the one-shot path, measuring
	// the amortized per-rule latency of the incremental engine.
	Incremental bool
}

// RunTable2 generates a probe for every rule of both datasets.
func RunTable2(cfg Table2Config) []Table2Row {
	var rows []Table2Row
	for _, prof := range []dataset.Profile{dataset.Stanford(), dataset.Campus()} {
		tb, rules := dataset.Generate(prof)
		rows = append(rows, runTable2Dataset(prof.Name, tb, rules, cfg))
	}
	return rows
}

func runTable2Dataset(name string, tb *flowtable.Table, rules []*flowtable.Rule, cfg Table2Config) Table2Row {
	gen := probe.NewGenerator(probe.Config{
		Collect:           flowtable.MatchAll().WithExact(header.VlanID, 1),
		SkipOverlapFilter: cfg.SkipOverlapFilter,
	})
	row := Table2Row{Dataset: name}
	var total time.Duration
	var max time.Duration
	n := len(rules)
	if cfg.Limit > 0 && cfg.Limit < n {
		n = cfg.Limit
	}
	generate := func(r *flowtable.Rule) (*probe.Probe, error) { return gen.Generate(tb, r) }
	if cfg.Incremental {
		sess, err := gen.NewSession(tb)
		if err != nil {
			panic(fmt.Sprintf("table2: session setup: %v", err))
		}
		generate = sess.Generate
	}
	for _, r := range rules[:n] {
		start := time.Now()
		_, err := generate(r)
		el := time.Since(start)
		total += el
		if el > max {
			max = el
		}
		row.Total++
		if err == nil {
			row.Found++
		} else if !errors.Is(err, probe.ErrUnmonitorable) {
			panic(fmt.Sprintf("table2: unexpected generator error: %v", err))
		}
	}
	if row.Total > 0 {
		row.AvgMS = total.Seconds() * 1000 / float64(row.Total)
	}
	row.MaxMS = max.Seconds() * 1000
	return row
}

// Table2SweepRow is one dataset's whole-table batch sweep result: the
// steady-state workload of probing every installed rule, run through the
// incremental parallel engine.
type Table2SweepRow struct {
	Dataset   string
	Rules     int
	Found     int
	Workers   int
	WallMS    float64
	PerRuleMS float64
}

// RunTable2Sweep sweeps both datasets with Generator.GenerateAll. Limit
// caps the table size (0 = full dataset); parallelism <= 0 uses all CPUs.
func RunTable2Sweep(limit, parallelism int) []Table2SweepRow {
	var rows []Table2SweepRow
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	for _, prof := range []dataset.Profile{dataset.Stanford(), dataset.Campus()} {
		if limit > 0 && limit < prof.Rules {
			prof.Rules = limit
		}
		tb, _ := dataset.Generate(prof)
		gen := probe.NewGenerator(probe.Config{
			Collect: flowtable.MatchAll().WithExact(header.VlanID, 1),
		})
		start := time.Now()
		results := gen.GenerateAll(context.Background(), tb, parallelism)
		wall := time.Since(start)
		row := Table2SweepRow{Dataset: prof.Name, Rules: len(results), Workers: parallelism}
		for _, res := range results {
			if res.Err == nil {
				row.Found++
			} else if !errors.Is(res.Err, probe.ErrUnmonitorable) {
				panic(fmt.Sprintf("table2 sweep: unexpected generator error: %v", res.Err))
			}
		}
		row.WallMS = wall.Seconds() * 1000
		if row.Rules > 0 {
			row.PerRuleMS = row.WallMS / float64(row.Rules)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable2Sweep renders the sweep rows.
func FormatTable2Sweep(rows []Table2SweepRow) string {
	out := "Table 2 (sweep): whole-table batch probe generation\n"
	out += fmt.Sprintf("  %-10s %7s %7s %8s %10s %12s\n", "Data set", "rules", "found", "workers", "wall [ms]", "ms per rule")
	for _, r := range rows {
		out += fmt.Sprintf("  %-10s %7d %7d %8d %10.1f %12.3f\n", r.Dataset, r.Rules, r.Found, r.Workers, r.WallMS, r.PerRuleMS)
	}
	return out
}

// FormatTable2 renders the table like the paper.
func FormatTable2(rows []Table2Row) string {
	out := "Table 2: probe generation time\n"
	out += fmt.Sprintf("  %-10s %8s %8s %15s\n", "Data set", "avg [ms]", "max [ms]", "probes found")
	for _, r := range rows {
		out += fmt.Sprintf("  %-10s %8.2f %8.2f %7d / %d\n", r.Dataset, r.AvgMS, r.MaxMS, r.Found, r.Total)
	}
	return out
}
