package experiments

// Table 2: probe generation time and success rate on the two ACL rule
// sets (§8.2). Times here are real (wall-clock) measurements of this
// implementation's generator, reported exactly like the paper's rows:
// average ms, max ms, probes found / total rules.

import (
	"errors"
	"fmt"
	"time"

	"monocle/internal/dataset"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
)

// Table2Row is one dataset's result.
type Table2Row struct {
	Dataset string
	AvgMS   float64
	MaxMS   float64
	Found   int
	Total   int
}

// Table2Config parameterizes the run.
type Table2Config struct {
	// Limit caps the number of rules probed per dataset (0 = all);
	// tests use a cap to stay fast.
	Limit int
	// SkipOverlapFilter runs the §5.4 ablation variant.
	SkipOverlapFilter bool
}

// RunTable2 generates a probe for every rule of both datasets.
func RunTable2(cfg Table2Config) []Table2Row {
	var rows []Table2Row
	for _, prof := range []dataset.Profile{dataset.Stanford(), dataset.Campus()} {
		tb, rules := dataset.Generate(prof)
		rows = append(rows, runTable2Dataset(prof.Name, tb, rules, cfg))
	}
	return rows
}

func runTable2Dataset(name string, tb *flowtable.Table, rules []*flowtable.Rule, cfg Table2Config) Table2Row {
	gen := probe.NewGenerator(probe.Config{
		Collect:           flowtable.MatchAll().WithExact(header.VlanID, 1),
		SkipOverlapFilter: cfg.SkipOverlapFilter,
	})
	row := Table2Row{Dataset: name}
	var total time.Duration
	var max time.Duration
	n := len(rules)
	if cfg.Limit > 0 && cfg.Limit < n {
		n = cfg.Limit
	}
	for _, r := range rules[:n] {
		start := time.Now()
		_, err := gen.Generate(tb, r)
		el := time.Since(start)
		total += el
		if el > max {
			max = el
		}
		row.Total++
		if err == nil {
			row.Found++
		} else if !errors.Is(err, probe.ErrUnmonitorable) {
			panic(fmt.Sprintf("table2: unexpected generator error: %v", err))
		}
	}
	if row.Total > 0 {
		row.AvgMS = total.Seconds() * 1000 / float64(row.Total)
	}
	row.MaxMS = max.Seconds() * 1000
	return row
}

// FormatTable2 renders the table like the paper.
func FormatTable2(rows []Table2Row) string {
	out := "Table 2: probe generation time\n"
	out += fmt.Sprintf("  %-10s %8s %8s %15s\n", "Data set", "avg [ms]", "max [ms]", "probes found")
	for _, r := range rows {
		out += fmt.Sprintf("  %-10s %8.2f %8.2f %7d / %d\n", r.Dataset, r.AvgMS, r.MaxMS, r.Found, r.Total)
	}
	return out
}
