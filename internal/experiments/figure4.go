package experiments

// Figure 4: time to detect a configured threshold of rule failures after a
// rule/link failure, with 1000 rules in the monitored switch's flow table
// and a 500 probes/s budget (§8.1.1). The monitored switch sits at the
// center of a 4-leaf star, like the paper's HP 5406zl surrounded by four
// OVS instances.

import (
	"fmt"
	"math/rand"
	"time"

	"monocle/internal/controller"
	"monocle/internal/flowtable"
	"monocle/internal/monocle"
	"monocle/internal/openflow"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// Figure4Scenario is one CDF line: raise the alarm after Threshold
// individual failures out of Fail simultaneously failed rules; FailLink
// instead fails the leaf-4 link (the paper's 102-rule link).
type Figure4Scenario struct {
	Label     string
	Fail      int
	Threshold int
	FailLink  bool
}

// Figure4Config parameterizes the experiment.
type Figure4Config struct {
	Rules     int
	ProbeRate float64
	Reps      int
	Seed      int64
	Scenarios []Figure4Scenario
}

// DefaultFigure4 reproduces the paper's parameters (Reps is lowered from
// 1000; raise it via cmd/experiments -reps for the full CDF).
func DefaultFigure4(reps int) Figure4Config {
	return Figure4Config{
		Rules: 1000, ProbeRate: 500, Reps: reps, Seed: 4,
		Scenarios: []Figure4Scenario{
			{Label: "1 out of 1", Fail: 1, Threshold: 1},
			{Label: "3 out of 5", Fail: 5, Threshold: 3},
			{Label: "5 out of 5", Fail: 5, Threshold: 5},
			{Label: "3 out of 10", Fail: 10, Threshold: 3},
			{Label: "5 out of 102 (link)", Fail: 102, Threshold: 5, FailLink: true},
		},
	}
}

// Figure4Result holds per-scenario sorted detection-time samples.
type Figure4Result struct {
	Series map[string][]time.Duration
}

// RunFigure4 executes the experiment.
func RunFigure4(cfg Figure4Config) Figure4Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const linkRules = 102 // rules pinned to the leaf-4 link, as in the paper

	net := Build(NetConfig{
		N: 5,
		Links: []LinkSpec{
			{A: 0, B: 1, PA: 1, PB: 1},
			{A: 0, B: 2, PA: 2, PB: 1},
			{A: 0, B: 3, PA: 3, PB: 1},
			{A: 0, B: 4, PA: 4, PB: 1},
		},
		Profile: func(i int) switchsim.Profile {
			if i == 0 {
				return switchsim.HP5406zl()
			}
			return switchsim.OVS()
		},
		Monocle: true,
		Seed:    cfg.Seed,
		CfgEdit: func(i int, c *monocle.Config) {
			if i == 0 {
				c.ProbeRate = cfg.ProbeRate
			}
		},
	})
	mon := net.Monitors[0]
	sw := net.Switches[0]

	// Install the L3 table: rule i forwards flow i out one of the four
	// links. Exactly `linkRules` rules are pinned to port 4, striped
	// through the table (and hence through the probing cycle) the way
	// a real routing table interleaves next-hops, so the link-failure
	// scenario fails 102 rules spread across the cycle.
	rules := make([]*flowtable.Rule, cfg.Rules)
	stride := cfg.Rules / linkRules
	if stride < 1 {
		stride = 1
	}
	var linkSet []*flowtable.Rule
	for i := 0; i < cfg.Rules; i++ {
		f := controller.FlowForIndex(i)
		out := flowtable.PortID(1 + (i % 3))
		if i%stride == 0 && len(linkSet) < linkRules {
			out = 4
		}
		r := &flowtable.Rule{
			ID:       f.RuleID(0),
			Priority: 100,
			Match:    f.Match(),
			Actions:  []flowtable.Action{flowtable.Output(out)},
		}
		rules[i] = r
		if out == 4 {
			linkSet = append(linkSet, r)
		}
		if err := mon.Preinstall(r); err != nil {
			panic(fmt.Sprintf("figure4: %v", err))
		}
		if err := sw.DataTable().Insert(r.Clone()); err != nil {
			panic(fmt.Sprintf("figure4: %v", err))
		}
	}
	// The leaf-4 link handle for the link-failure scenario.
	leafLink := relinkStar(net)

	var alarms []struct {
		rule uint64
		at   sim.Time
	}
	mon.Cfg.OnAlarm = func(ruleID uint64, at sim.Time) {
		alarms = append(alarms, struct {
			rule uint64
			at   sim.Time
		}{ruleID, at})
	}
	mon.StartSteadyState()
	// Warm up: one full cycle generates and caches every probe.
	cycle := time.Duration(float64(cfg.Rules)/cfg.ProbeRate*float64(time.Second)) + 500*time.Millisecond
	net.Sim.RunUntil(2 * cycle)

	res := Figure4Result{Series: make(map[string][]time.Duration)}
	for _, sc := range cfg.Scenarios {
		var samples []time.Duration
		for rep := 0; rep < cfg.Reps; rep++ {
			// Choose victims.
			var victims []*flowtable.Rule
			if sc.FailLink {
				victims = linkSet
			} else {
				perm := rng.Perm(cfg.Rules)
				for _, idx := range perm {
					if len(victims) == sc.Fail {
						break
					}
					if rules[idx].ForwardingSet()[0] != 4 {
						victims = append(victims, rules[idx])
					}
				}
			}
			// Randomize the failure instant within the probing cycle.
			net.Sim.RunUntil(net.Sim.Now() + time.Duration(rng.Int63n(int64(cycle))))
			t0 := net.Sim.Now()
			alarms = alarms[:0]
			victimSet := map[uint64]bool{}
			if sc.FailLink {
				leafLink.Fail()
				for _, v := range victims {
					victimSet[v.ID] = true
				}
			} else {
				for _, v := range victims {
					sw.FailRule(v.ID)
					victimSet[v.ID] = true
				}
			}
			// Run until the threshold-th victim alarm.
			deadline := t0 + 2*cycle + 2*time.Second
			detected := sim.Time(-1)
			for net.Sim.Now() < deadline && detected < 0 {
				net.Sim.RunUntil(net.Sim.Now() + 10*time.Millisecond)
				count := 0
				for _, a := range alarms {
					if victimSet[a.rule] {
						count++
						if count >= sc.Threshold {
							detected = a.at
							break
						}
					}
				}
			}
			if detected >= 0 {
				samples = append(samples, time.Duration(detected-t0))
			}
			// Heal for the next repetition.
			if sc.FailLink {
				leafLink.Heal()
			} else {
				for _, v := range victims {
					sw.HealRule(v.ID)
					_ = sw.DataTable().Insert(v.Clone())
				}
			}
			// Let the monitor observe recovery (clears failure state).
			net.Sim.RunUntil(net.Sim.Now() + cycle + 500*time.Millisecond)
		}
		res.Series[sc.Label] = Durations(samples)
	}
	mon.StopSteadyState()
	return res
}

// relinkStar rebuilds the leaf-4 link with a handle we can fail. Build
// does not return link handles, so the star harness re-wires that one
// link explicitly.
func relinkStar(net *Net) *switchsim.Link {
	return switchsim.Connect(net.Switches[0], 4, net.Switches[4], 1, 50*time.Microsecond)
}

// FormatFigure4 renders the result like the paper's CDF description.
func FormatFigure4(r Figure4Result) string {
	out := "Figure 4: time to detect >=x of y failed rules (1000 rules, 500 probes/s)\n"
	for label, s := range r.Series {
		if len(s) == 0 {
			out += fmt.Sprintf("  %-22s no detections\n", label)
			continue
		}
		out += fmt.Sprintf("  %-22s n=%d p10=%v p50=%v p90=%v max=%v\n",
			label, len(s), Percentile(s, 0.1), Percentile(s, 0.5), Percentile(s, 0.9), s[len(s)-1])
	}
	return out
}

// Interface check: the harness satisfies the controller's resolver.
var _ controller.PortResolver = (*Net)(nil)

// Silence unused-import vigilance for openflow in this file's signature
// evolution.
var _ = openflow.FCAdd
