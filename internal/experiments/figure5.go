package experiments

// Figure 5: an end-to-end consistent update of 300 flows over a triangle
// S1-S2-S3 where S3 exhibits control/data-plane inconsistency (§8.1.2).
// Initially all flows go H1→S1→S2→H2; the controller reroutes each flow to
// S1→S3→S2, installing the S3 rule first and updating S1 only when the S3
// rule is "confirmed" — by a (premature) barrier reply in the baseline, or
// by Monocle's data plane acknowledgment.
//
// Each flow carries 300 packets/s, so a flow blackholes
// 300 × max(0, dataplaneReady − upstreamUpdated) packets.

import (
	"fmt"
	"time"

	"monocle/internal/controller"
	"monocle/internal/flowtable"
	"monocle/internal/openflow"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// Figure5Config parameterizes the consistent-update experiment.
type Figure5Config struct {
	Flows      int
	PacketRate float64 // packets/s per flow
	// S3Profile is the inconsistent switch model (HP5406zl or Pica8).
	S3Profile switchsim.Profile
	// UseMonocle selects Monocle confirmations vs raw barriers.
	UseMonocle bool
	// Window is how many flows the controller keeps in flight (the
	// flows are disjoint, so pipelining preserves per-flow
	// consistency); 0 means 4.
	Window int
	Seed   int64
}

// Figure5Flow is one flow's outcome.
type Figure5Flow struct {
	ID              int
	UpstreamUpdated time.Duration // when S1 started sending via S3
	DataplaneReady  time.Duration // when S3's rule was truly forwarding
	DroppedPackets  float64
}

// Figure5Result aggregates the run.
type Figure5Result struct {
	Mode    string
	Switch  string
	Flows   []Figure5Flow
	Dropped float64
	Total   time.Duration
}

// RunFigure5 executes one (switch profile, mode) cell of Figure 5.
func RunFigure5(cfg Figure5Config) Figure5Result {
	// Triangle: S1(0) S2(1) S3(2); hosts on S1 (port 3) and S2 (port 3).
	net := Build(NetConfig{
		N: 3,
		Links: []LinkSpec{
			{A: 0, B: 1, PA: 1, PB: 1}, // S1-S2
			{A: 0, B: 2, PA: 2, PB: 1}, // S1-S3
			{A: 1, B: 2, PA: 2, PB: 2}, // S2-S3
		},
		HostPorts: map[int]flowtable.PortID{0: 3, 1: 3},
		Profile: func(i int) switchsim.Profile {
			if i == 2 {
				return cfg.S3Profile
			}
			return switchsim.OVS()
		},
		Monocle: cfg.UseMonocle,
		Seed:    cfg.Seed,
	})

	// Pre-install the initial S1→S2 path and S2→H2 delivery rules.
	for i := 0; i < cfg.Flows; i++ {
		f := controller.FlowForIndex(i)
		preinstall(net, 0, &flowtable.Rule{
			ID: f.RuleID(0), Priority: 100, Match: f.Match(),
			Actions: []flowtable.Action{flowtable.Output(1)}})
		preinstall(net, 1, &flowtable.Rule{
			ID: f.RuleID(1), Priority: 100, Match: f.Match(),
			Actions: []flowtable.Action{flowtable.Output(3)}})
	}

	flows := make([]Figure5Flow, cfg.Flows)
	var confirmS3 func(flow int)

	// Phase 2 per flow: reroute S1 to port 2 (toward S3).
	updateUpstream := func(i int) {
		f := controller.FlowForIndex(i)
		fm, err := controller.FlowModModify(f, 0, 100, 2)
		if err != nil {
			panic(err)
		}
		net.Send(0, fm, uint32(2*i+1))
	}

	next := 0
	startFlow := func() {}
	startFlow = func() {
		if next >= cfg.Flows {
			return
		}
		i := next
		next++
		f := controller.FlowForIndex(i)
		fm, err := controller.FlowModAdd(f, 2, 100, 2) // S3 → S2 (its port 2)
		if err != nil {
			panic(err)
		}
		if cfg.UseMonocle {
			net.Send(2, fm, uint32(2*i))
			// confirmation arrives via the monitor callback below
		} else {
			net.Send(2, fm, uint32(2*i))
			net.Send(2, openflow.BarrierRequest{}, uint32(1_000_000+i))
		}
	}
	confirmS3 = func(i int) {
		updateUpstream(i)
		startFlow() // pipeline the next flow
	}

	if cfg.UseMonocle {
		net.Monitors[2].Cfg.OnRuleConfirmed = func(ruleID uint64, at sim.Time) {
			i := int(ruleID >> 16)
			confirmS3(i)
		}
	} else {
		net.SetCtrlRecv(2, func(msg openflow.Message, xid uint32) {
			switch msg.(type) {
			case openflow.BarrierReply, *openflow.BarrierReply:
				if xid >= 1_000_000 {
					confirmS3(int(xid - 1_000_000))
				}
			}
		})
	}

	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	for i := 0; i < window; i++ {
		startFlow()
	}
	net.Sim.RunUntil(60 * time.Second)

	res := Figure5Result{Switch: cfg.S3Profile.Name, Mode: "Barriers"}
	if cfg.UseMonocle {
		res.Mode = "Monocle"
	}
	for i := 0; i < cfg.Flows; i++ {
		f := controller.FlowForIndex(i)
		up, ok1 := net.CommitTime(0, f.RuleID(0))
		ready, ok2 := net.CommitTime(2, f.RuleID(2))
		if !ok1 || !ok2 {
			continue // flow never completed (would show as missing)
		}
		fl := Figure5Flow{ID: i, UpstreamUpdated: up, DataplaneReady: ready}
		if gap := ready - up; gap > 0 {
			fl.DroppedPackets = cfg.PacketRate * gap.Seconds()
		}
		flows[i] = fl
		res.Dropped += fl.DroppedPackets
		if up > res.Total {
			res.Total = up
		}
		if ready > res.Total {
			res.Total = ready
		}
	}
	res.Flows = flows
	return res
}

func preinstall(net *Net, sw int, r *flowtable.Rule) {
	if net.Monitors != nil {
		if err := net.Monitors[sw].Preinstall(r); err != nil {
			panic(fmt.Sprintf("figure5: %v", err))
		}
	}
	if err := net.Switches[sw].DataTable().Insert(r.Clone()); err != nil {
		panic(fmt.Sprintf("figure5: %v", err))
	}
}

// DefaultFigure5 runs all four cells (HP/Pica8 × Barriers/Monocle).
func DefaultFigure5(flows int) []Figure5Result {
	var out []Figure5Result
	for _, prof := range []switchsim.Profile{switchsim.HP5406zl(), switchsim.Pica8()} {
		for _, useMonocle := range []bool{false, true} {
			out = append(out, RunFigure5(Figure5Config{
				Flows: flows, PacketRate: 300, S3Profile: prof,
				UseMonocle: useMonocle, Seed: 5,
			}))
		}
	}
	return out
}

// FormatFigure5 renders the drop comparison the paper reports in §8.1.2.
func FormatFigure5(results []Figure5Result) string {
	out := "Figure 5: consistent update of 300 flows (300 pkt/s each)\n"
	for _, r := range results {
		out += fmt.Sprintf("  %-16s %-8s dropped=%7.0f packets, total update=%v\n",
			r.Switch, r.Mode, r.Dropped, r.Total.Round(time.Millisecond))
	}
	return out
}
