package experiments

// Figures 6 and 7: how PacketOut and PacketIn load degrade a switch's
// rule-modification throughput (§8.3.1). The harness saturates a single
// simulated switch's control channel with the paper's message mixes and
// reports FlowMod rates normalized to the unloaded baseline. §8.3.1's
// scalar maxima (PacketOut/PacketIn per second) fall out of the profiles.

import (
	"fmt"
	"time"

	"monocle/internal/controller"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/openflow"
	"monocle/internal/packet"
	"monocle/internal/sim"
	"monocle/internal/switchsim"
)

// Figure6Point is one (ratio, switch) cell.
type Figure6Point struct {
	Switch     string
	K          int // PacketOut count in the k:2 mix
	Normalized float64
}

// Figure6Ratios is the paper's x-axis.
var Figure6Ratios = []int{0, 1, 2, 3, 4, 5, 10, 20, 40}

// figureProfiles returns the four switch models of Figures 6–7.
func figureProfiles() []switchsim.Profile {
	return []switchsim.Profile{
		switchsim.Dell8132F(),
		switchsim.HP5406zl(),
		switchsim.DellS4810(),
		switchsim.DellS4810EqualPrio(),
	}
}

// RunFigure6 measures the FlowMod rate under k PacketOuts per 2 FlowMods.
func RunFigure6() []Figure6Point {
	var out []Figure6Point
	for _, prof := range figureProfiles() {
		base := flowModRate(prof, 0, 0)
		for _, k := range Figure6Ratios {
			rate := flowModRate(prof, k, 0)
			out = append(out, Figure6Point{Switch: prof.Name, K: k, Normalized: rate / base})
		}
	}
	return out
}

// Figure7Point is one (PacketIn rate, switch) cell.
type Figure7Point struct {
	Switch     string
	PacketIns  int // offered PacketIn/s
	Normalized float64
}

// Figure7Rates is the paper's x-axis.
var Figure7Rates = []int{0, 100, 200, 300, 400, 1000, 5000}

// RunFigure7 measures the FlowMod rate under background PacketIn load.
func RunFigure7() []Figure7Point {
	var out []Figure7Point
	for _, prof := range figureProfiles() {
		base := flowModRate(prof, 0, 0)
		for _, r := range Figure7Rates {
			rate := flowModRate(prof, 0, r)
			out = append(out, Figure7Point{Switch: prof.Name, PacketIns: r, Normalized: rate / base})
		}
	}
	return out
}

// flowModRate saturates the switch's control channel with the k:2
// PacketOut:FlowMod mix for a simulated window while data packets arrive
// at piRate (hitting a punt-to-controller rule) and returns the achieved
// FlowMod completions per second.
func flowModRate(prof switchsim.Profile, k int, piRate int) float64 {
	s := sim.New()
	sw := switchsim.New(1, s, prof, 99)
	switchsim.ConnectHost(sw, 1, 0, func(switchsim.Frame) {})
	switchsim.ConnectHost(sw, 2, 0, func(switchsim.Frame) {})

	// A punt rule for the PacketIn traffic.
	puntMatch := flowtable.MatchAll().
		WithExact(header.EthType, header.EthTypeIPv4).
		WithExact(header.IPProto, header.ProtoICMP)
	if err := sw.DataTable().Insert(&flowtable.Rule{
		ID: 1 << 40, Priority: 30000, Match: puntMatch,
		Actions: []flowtable.Action{flowtable.Output(flowtable.PortController)},
	}); err != nil {
		panic(err)
	}

	window := 2 * time.Second
	// The k:2 mix (delete an existing rule + add a new one keeps the
	// table size stable, per the paper).
	var poData switchsim.Frame
	{
		var h header.Header
		h.Set(header.EthType, header.EthTypeIPv4)
		h.Set(header.VlanID, header.VlanNone)
		h.Set(header.IPProto, header.ProtoUDP)
		f, err := packet.Craft(h, []byte("probe-size payload, 35B-ish"))
		if err != nil {
			panic(err)
		}
		poData = f
	}
	// Closed-loop feeder: enqueue the next k:2 pattern whenever the
	// control queue drains, so background PacketIn work interleaves with
	// the FlowMod stream instead of queueing behind a preloaded backlog.
	flow := 0
	var feed func()
	feed = func() {
		if s.Now() >= window {
			return
		}
		for j := 0; j < k; j++ {
			sw.FromController(&openflow.PacketOut{
				BufferID: openflow.BufferNone, InPort: openflow.PortNone,
				Actions: []openflow.Action{openflow.OutputAction(1)},
				Data:    poData,
			}, 0)
		}
		for j := 0; j < 2; j++ {
			f := controller.FlowForIndex(flow)
			flow++
			cmd := openflow.FCAdd
			if j == 1 {
				cmd = openflow.FCDeleteStrict
			}
			fm, err := controller.FlowModAdd(f, 1, 100, 2)
			if err != nil {
				panic(err)
			}
			fm.Command = cmd
			sw.FromController(fm, 0)
		}
		next := sw.CtrlBusyUntil()
		if next <= s.Now() {
			next = s.Now() + time.Microsecond
		}
		s.At(next, feed)
	}
	feed()
	// Background PacketIn traffic.
	if piRate > 0 {
		var h header.Header
		h.Set(header.EthType, header.EthTypeIPv4)
		h.Set(header.VlanID, header.VlanNone)
		h.Set(header.IPProto, header.ProtoICMP)
		frame, err := packet.Craft(h, []byte("pi"))
		if err != nil {
			panic(err)
		}
		interval := time.Duration(float64(time.Second) / float64(piRate))
		for t := sim.Time(0); t < window; t += interval {
			t := t
			s.At(t, func() { sw.InjectFrame(2, frame) })
		}
	}
	s.RunUntil(window)
	processed := sw.Stats.FlowModsProcessed
	return float64(processed) / window.Seconds()
}

// SwitchRatesRow reports the §8.3.1 scalar capacities per profile.
type SwitchRatesRow struct {
	Switch        string
	PacketOutRate float64
	PacketInRate  float64
	FlowModRate   float64
}

// RunSwitchRates reproduces the §8.3.1 maxima table.
func RunSwitchRates() []SwitchRatesRow {
	var out []SwitchRatesRow
	for _, p := range figureProfiles() {
		out = append(out, SwitchRatesRow{
			Switch:        p.Name,
			PacketOutRate: p.MaxPacketOutRate(),
			PacketInRate:  p.MaxPacketInRate(),
			FlowModRate:   flowModRate(p, 0, 0),
		})
	}
	return out
}

// FormatFigure6 renders the normalized-rate matrix.
func FormatFigure6(points []Figure6Point) string {
	out := "Figure 6: normalized FlowMod rate vs PacketOut:FlowMod ratio (k:2)\n"
	cur := ""
	for _, p := range points {
		if p.Switch != cur {
			cur = p.Switch
			out += fmt.Sprintf("  %s\n", cur)
		}
		out += fmt.Sprintf("    %2d:2  %.3f\n", p.K, p.Normalized)
	}
	return out
}

// FormatFigure7 renders the PacketIn interference matrix.
func FormatFigure7(points []Figure7Point) string {
	out := "Figure 7: normalized FlowMod rate vs PacketIn rate\n"
	cur := ""
	for _, p := range points {
		if p.Switch != cur {
			cur = p.Switch
			out += fmt.Sprintf("  %s\n", cur)
		}
		out += fmt.Sprintf("    %5d/s  %.3f\n", p.PacketIns, p.Normalized)
	}
	return out
}

// FormatSwitchRates renders the §8.3.1 scalars.
func FormatSwitchRates(rows []SwitchRatesRow) string {
	out := "§8.3.1: control-channel capacities\n"
	out += fmt.Sprintf("  %-14s %12s %12s %12s\n", "Switch", "PacketOut/s", "PacketIn/s", "FlowMod/s")
	for _, r := range rows {
		out += fmt.Sprintf("  %-14s %12.0f %12.0f %12.0f\n", r.Switch, r.PacketOutRate, r.PacketInRate, r.FlowModRate)
	}
	return out
}
