// Package netx is the fault-injectable transport seam of the live switch
// drivers. Production code dials through Dial, which defaults to a plain
// net.Dialer; tests install a hook with SetDialHook to fail dials, delay
// them, or wrap the returned connections so transport faults (a switch
// dropping its TCP session mid-sweep, a flaky link during reconnect
// backoff) can be injected deterministically without touching the driver
// code under test.
package netx

import (
	"context"
	"net"
	"sync"
)

// DialFunc is the signature of the switch-side dial.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

var (
	mu   sync.Mutex
	hook DialFunc
)

// SetDialHook installs h as the dial used by Dial (nil restores the
// default net.Dialer). It returns a function restoring the previous hook,
// so tests can defer the cleanup.
func SetDialHook(h DialFunc) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	prev := hook
	hook = h
	return func() {
		mu.Lock()
		defer mu.Unlock()
		hook = prev
	}
}

// Dial opens a transport connection through the installed hook, or a
// plain net.Dialer when none is installed.
func Dial(ctx context.Context, network, addr string) (net.Conn, error) {
	mu.Lock()
	h := hook
	mu.Unlock()
	if h != nil {
		return h(ctx, network, addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, network, addr)
}
