package flowtable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"monocle/internal/header"
)

func ip(a, b, c, d uint64) uint64 { return a<<24 | b<<16 | c<<8 | d }

func TestMatchCovers(t *testing.T) {
	m := MatchAll().
		With(header.IPSrc, header.Prefix(header.IPSrc, ip(10, 0, 0, 0), 24)).
		WithExact(header.IPProto, header.ProtoTCP)
	var h header.Header
	h.Set(header.IPSrc, ip(10, 0, 0, 7))
	h.Set(header.IPProto, header.ProtoTCP)
	if !m.Covers(h) {
		t.Fatal("should cover")
	}
	h.Set(header.IPProto, header.ProtoUDP)
	if m.Covers(h) {
		t.Fatal("should not cover UDP")
	}
	h.Set(header.IPProto, header.ProtoTCP)
	h.Set(header.IPSrc, ip(10, 0, 1, 7))
	if m.Covers(h) {
		t.Fatal("should not cover other subnet")
	}
}

func TestMatchOverlapsAndSubsumes(t *testing.T) {
	a := MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(10, 0, 0, 0), 8))
	b := MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(10, 1, 0, 0), 16)).
		WithExact(header.IPProto, header.ProtoTCP)
	c := MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(11, 0, 0, 0), 8))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a,b overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("a,c disjoint")
	}
	if !a.Subsumes(b) || b.Subsumes(a) {
		t.Fatal("subsume direction")
	}
	if !MatchAll().Subsumes(a) {
		t.Fatal("wildcard subsumes all")
	}
}

// Property: the paper's overlap lemma witness — if two matches overlap,
// the combined value matches both.
func TestMatchOverlapWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randMatch := func() Match {
			m := MatchAll()
			for i := 0; i < rng.Intn(4); i++ {
				f := header.FieldID(rng.Intn(int(header.NumFields)))
				if rng.Intn(2) == 0 {
					m = m.WithExact(f, rng.Uint64()&header.WidthMask(f))
				} else {
					m = m.With(f, header.Prefix(f, rng.Uint64()&header.WidthMask(f), rng.Intn(header.Width(f)+1)))
				}
			}
			return m
		}
		a, b := randMatch(), randMatch()
		if !a.Overlaps(b) {
			return true
		}
		var h header.Header
		for f := header.FieldID(0); f < header.NumFields; f++ {
			v := (a[f].Value & a[f].Mask) | (b[f].Value & b[f].Mask &^ a[f].Mask)
			h.Set(f, v)
		}
		return a.Covers(h) && b.Covers(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleValidate(t *testing.T) {
	good := &Rule{ID: 1, Actions: []Action{SetField(header.IPTos, 4), Output(1), Output(2)}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	drop := &Rule{ID: 2}
	if err := drop.Validate(); err != nil {
		t.Fatal(err)
	}
	ecmp := &Rule{ID: 3, Actions: []Action{ECMP(1, 2, 3)}}
	if err := ecmp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Rule{ID: 4, Actions: []Action{ECMP(1), Output(2)}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ECMP+Output must be rejected")
	}
	empty := &Rule{ID: 5, Actions: []Action{ECMP()}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty ECMP must be rejected")
	}
}

func TestForwardingSetAndKinds(t *testing.T) {
	r := &Rule{Actions: []Action{Output(3), SetField(header.IPTos, 1), Output(1), Output(3)}}
	fs := r.ForwardingSet()
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 3 {
		t.Fatalf("fs=%v", fs)
	}
	if r.IsDrop() || r.IsECMP() {
		t.Fatal("multicast rule flags")
	}
	drop := &Rule{}
	if !drop.IsDrop() {
		t.Fatal("drop")
	}
	ecmp := &Rule{Actions: []Action{ECMP(1, 2)}}
	if !ecmp.IsECMP() || ecmp.IsDrop() {
		t.Fatal("ecmp flags")
	}
	single := &Rule{Actions: []Action{ECMP(5, 5)}}
	if single.IsECMP() {
		t.Fatal("single-port group is deterministic, not ECMP")
	}
}

func TestRewriteOnPort(t *testing.T) {
	// set tos=1, out(1), set tos=2, out(2): port 1 sees tos=1, port 2 tos=2.
	r := &Rule{Actions: []Action{
		SetField(header.IPTos, 1), Output(1),
		SetField(header.IPTos, 2), Output(2),
	}}
	w1, ok := r.RewriteOnPort(1)
	if !ok || !w1.Set[header.IPTos] || w1.Value[header.IPTos] != 1 {
		t.Fatalf("port1 rewrite %v ok=%v", w1, ok)
	}
	w2, ok := r.RewriteOnPort(2)
	if !ok || w2.Value[header.IPTos] != 2 {
		t.Fatalf("port2 rewrite %v", w2)
	}
	if _, ok := r.RewriteOnPort(9); ok {
		t.Fatal("port 9 unused")
	}
}

func TestRewriteApplyAndBits(t *testing.T) {
	var w Rewrite
	w.Set[header.IPTos] = true
	w.Value[header.IPTos] = 0x80 // MSB set
	var h header.Header
	h.Set(header.IPTos, 0x01)
	got := w.Apply(h)
	if got.Get(header.IPTos) != 0x80 {
		t.Fatalf("apply got %#x", got.Get(header.IPTos))
	}
	fixed, val := w.BitRewrite(header.IPTos, 0)
	if !fixed || !val {
		t.Fatal("bit 0 must be fixed to 1")
	}
	fixed, val = w.BitRewrite(header.IPTos, 7)
	if !fixed || val {
		t.Fatal("bit 7 must be fixed to 0")
	}
	if fixed, _ = w.BitRewrite(header.IPSrc, 0); fixed {
		t.Fatal("unset field passes through")
	}
}

func TestRuleApply(t *testing.T) {
	r := &Rule{Actions: []Action{
		SetField(header.IPTos, 4), Output(1), SetField(header.IPTos, 8), Output(2),
	}}
	var h header.Header
	em := r.Apply(h, nil)
	if len(em) != 2 || em[0].Port != 1 || em[1].Port != 2 {
		t.Fatalf("emissions %v", em)
	}
	if em[0].Header.Get(header.IPTos) != 4 || em[1].Header.Get(header.IPTos) != 8 {
		t.Fatal("interleaved rewrites")
	}
	ecmp := &Rule{Actions: []Action{ECMP(7, 8, 9)}}
	em = ecmp.Apply(h, func(n int) int { return 2 })
	if len(em) != 1 || em[0].Port != 9 {
		t.Fatalf("ecmp choose %v", em)
	}
}

func TestTableInsertOrderAndLookup(t *testing.T) {
	tb := New()
	low := &Rule{ID: 1, Priority: 1, Actions: []Action{Output(1)}}
	mid := &Rule{ID: 2, Priority: 5,
		Match:   MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(10, 0, 0, 0), 8)),
		Actions: []Action{Output(2)}}
	high := &Rule{ID: 3, Priority: 9,
		Match:   MatchAll().WithExact(header.IPSrc, ip(10, 0, 0, 1)),
		Actions: []Action{Output(3)}}
	for _, r := range []*Rule{mid, high, low} {
		if err := tb.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	rs := tb.Rules()
	if rs[0] != high || rs[1] != mid || rs[2] != low {
		t.Fatal("priority order")
	}
	var h header.Header
	h.Set(header.IPSrc, ip(10, 0, 0, 1))
	if tb.Lookup(h) != high {
		t.Fatal("lookup highest")
	}
	h.Set(header.IPSrc, ip(10, 0, 0, 2))
	if tb.Lookup(h) != mid {
		t.Fatal("lookup mid")
	}
	h.Set(header.IPSrc, ip(11, 0, 0, 2))
	if tb.Lookup(h) != low {
		t.Fatal("lookup default")
	}
}

func TestTableRejectsEqualPriorityOverlap(t *testing.T) {
	tb := New()
	a := &Rule{ID: 1, Priority: 5, Match: MatchAll().WithExact(header.IPProto, 6)}
	b := &Rule{ID: 2, Priority: 5, Match: MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, 0, 1))}
	if err := tb.Insert(a); err != nil {
		t.Fatal(err)
	}
	err := tb.Insert(b)
	if !errors.Is(err, ErrSamePriorityOverlap) {
		t.Fatalf("got %v", err)
	}
	// Non-overlapping same priority is fine.
	c := &Rule{ID: 3, Priority: 5, Match: MatchAll().WithExact(header.IPProto, 17)}
	if err := tb.Insert(c); err != nil {
		t.Fatal(err)
	}
}

func TestTableDuplicateID(t *testing.T) {
	tb := New()
	if err := tb.Insert(&Rule{ID: 1, Priority: 1}); err != nil {
		t.Fatal(err)
	}
	err := tb.Insert(&Rule{ID: 1, Priority: 2, Match: MatchAll().WithExact(header.IPProto, 6)})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("got %v", err)
	}
}

func TestTableDeleteModify(t *testing.T) {
	tb := New()
	r := &Rule{ID: 7, Priority: 3, Actions: []Action{Output(1)}}
	if err := tb.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := tb.Modify(7, []Action{Output(2)}); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(7)
	if got.ForwardingSet()[0] != 2 {
		t.Fatal("modify did not take")
	}
	if err := tb.Modify(7, []Action{ECMP(1), Output(2)}); err == nil {
		t.Fatal("modify must validate")
	}
	if err := tb.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if tb.Len() != 0 {
		t.Fatal("len after delete")
	}
}

func TestTableDeleteMatching(t *testing.T) {
	tb := New()
	m := MatchAll().WithExact(header.IPProto, 6)
	a := &Rule{ID: 1, Priority: 4, Match: m}
	b := &Rule{ID: 2, Priority: 5, Match: m}
	if err := tb.Insert(a); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(b); err != nil {
		t.Fatal(err)
	}
	removed := tb.DeleteMatching(m, 4)
	if len(removed) != 1 || removed[0] != a || tb.Len() != 1 {
		t.Fatalf("removed=%v len=%d", removed, tb.Len())
	}
}

func TestHigherLowerOverlapping(t *testing.T) {
	tb := New()
	mk := func(id uint64, prio int, plen int) *Rule {
		return &Rule{ID: id, Priority: prio,
			Match: MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(10, 0, 0, 0), plen))}
	}
	r1 := mk(1, 1, 8)
	r2 := mk(2, 5, 16)
	r3 := mk(3, 9, 24)
	other := &Rule{ID: 4, Priority: 7, Match: MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(192, 168, 0, 0), 16))}
	for _, r := range []*Rule{r1, r2, r3, other} {
		if err := tb.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	hi := tb.HigherPriority(r2)
	if len(hi) != 2 || hi[0] != r3 || hi[1] != other {
		t.Fatalf("higher=%v", hi)
	}
	lo := tb.LowerPriority(r2)
	if len(lo) != 1 || lo[0] != r1 {
		t.Fatalf("lower=%v", lo)
	}
	ov := tb.Overlapping(r2)
	if len(ov) != 2 { // r1, r3 overlap; "other" does not
		t.Fatalf("overlapping=%v", ov)
	}
}

func TestTableClone(t *testing.T) {
	tb := New()
	tb.Miss = MissController
	r := &Rule{ID: 1, Priority: 2, Actions: []Action{ECMP(1, 2)}}
	if err := tb.Insert(r); err != nil {
		t.Fatal(err)
	}
	cp := tb.Clone()
	if cp.Miss != MissController || cp.Len() != 1 {
		t.Fatal("clone meta")
	}
	cr, _ := cp.Get(1)
	if cr == r {
		t.Fatal("clone must deep-copy rules")
	}
	cr.Actions[0].Ports[0] = 99
	if r.Actions[0].Ports[0] == 99 {
		t.Fatal("clone shares ECMP port slice")
	}
}

func TestRuleString(t *testing.T) {
	r := &Rule{ID: 1, Priority: 2, Actions: []Action{SetField(header.IPTos, 4), Output(1)}}
	if r.String() == "" || (&Rule{}).String() == "" {
		t.Fatal("String")
	}
	if MatchAll().String() != "match(*)" {
		t.Fatal("MatchAll string")
	}
}

// Property: Lookup returns the highest-priority covering rule.
func TestLookupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New()
		for i := 0; i < 30; i++ {
			r := &Rule{ID: uint64(i), Priority: rng.Intn(1000),
				Match: MatchAll().
					With(header.IPSrc, header.Prefix(header.IPSrc, rng.Uint64(), rng.Intn(33))).
					With(header.IPDst, header.Prefix(header.IPDst, rng.Uint64(), rng.Intn(33)))}
			_ = tb.Insert(r) // equal-priority overlaps silently skipped
		}
		var h header.Header
		h.Set(header.IPSrc, rng.Uint64())
		h.Set(header.IPDst, rng.Uint64())
		got := tb.Lookup(h)
		// Brute force check.
		var best *Rule
		for _, r := range tb.Rules() {
			if r.Match.Covers(h) && (best == nil || r.Priority > best.Priority) {
				best = r
			}
		}
		if best == nil {
			return got == nil
		}
		return got != nil && got.Priority == best.Priority && got.Match.Covers(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
