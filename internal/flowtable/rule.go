// Package flowtable models OpenFlow 1.0 forwarding state: ternary matches
// over the abstract 12-tuple, prioritized rules with ordered action lists,
// and the lookup semantics of a switch TCAM. It provides the primitives the
// probe generator reasons about: rule overlap, forwarding sets, and the
// per-port rewrite outcome RewriteOnPort (§3.4 of the paper).
package flowtable

import (
	"fmt"
	"sort"
	"strings"

	"monocle/internal/header"
)

// PortID identifies a switch port. The zero value is invalid (OpenFlow 1.0
// numbers physical ports from 1).
type PortID uint16

// PortController is the reserved port for sending packets to the
// controller (catching rules use it).
const PortController PortID = 0xfffd

// Match is a ternary match over every abstract header field; the zero
// value matches every packet (all fields wildcarded).
type Match [header.NumFields]header.Ternary

// MatchAll returns the all-wildcard match.
func MatchAll() Match { return Match{} }

// With returns a copy of m with field f set to t (builder style).
func (m Match) With(f header.FieldID, t header.Ternary) Match {
	m[f] = t
	return m
}

// WithExact returns a copy of m with field f exact-matched to v.
func (m Match) WithExact(f header.FieldID, v uint64) Match {
	m[f] = header.Exact(f, v)
	return m
}

// Covers reports whether the concrete header h matches m.
func (m Match) Covers(h header.Header) bool {
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !m[f].Covers(h.Get(f)) {
			return false
		}
	}
	return true
}

// Overlaps reports whether some packet matches both m and o, i.e. whether
// the two matches agree on every bit they both constrain (§5.4).
func (m Match) Overlaps(o Match) bool {
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !m[f].Overlaps(o[f]) {
			return false
		}
	}
	return true
}

// Subsumes reports whether every packet matched by o is matched by m.
func (m Match) Subsumes(o Match) bool {
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !m[f].Subsumes(o[f]) {
			return false
		}
	}
	return true
}

// Equal reports structural equality.
func (m Match) Equal(o Match) bool { return m == o }

// String renders only the constrained fields.
func (m Match) String() string {
	var parts []string
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !m[f].IsWildcard() {
			parts = append(parts, fmt.Sprintf("%s=%s", f, m[f].Render(f)))
		}
	}
	if len(parts) == 0 {
		return "match(*)"
	}
	return "match(" + strings.Join(parts, ",") + ")"
}

// ActionKind discriminates rule actions.
type ActionKind int

const (
	// ActionSetField rewrites one header field to a fixed value before
	// subsequent outputs.
	ActionSetField ActionKind = iota
	// ActionOutput emits the packet (with rewrites applied so far) on
	// one port. Multiple ActionOutputs make the rule multicast.
	ActionOutput
	// ActionGroupECMP emits the packet on exactly one — unspecified —
	// port from Ports (equal-cost multi-path). A rule may contain at
	// most one group action and no plain outputs alongside it.
	ActionGroupECMP
)

// Action is one element of a rule's ordered action list.
type Action struct {
	Kind  ActionKind
	Field header.FieldID // ActionSetField
	Value uint64         // ActionSetField
	Port  PortID         // ActionOutput
	Ports []PortID       // ActionGroupECMP
}

// SetField builds a rewrite action.
func SetField(f header.FieldID, v uint64) Action {
	return Action{Kind: ActionSetField, Field: f, Value: v & header.WidthMask(f)}
}

// Output builds a unicast output action.
func Output(p PortID) Action { return Action{Kind: ActionOutput, Port: p} }

// ECMP builds an equal-cost multipath group action.
func ECMP(ports ...PortID) Action {
	cp := make([]PortID, len(ports))
	copy(cp, ports)
	return Action{Kind: ActionGroupECMP, Ports: cp}
}

// Rule is one prioritized flow entry. ID is a caller-chosen identifier
// (Monocle uses it to map probes back to rules); it does not participate
// in matching.
type Rule struct {
	ID       uint64
	Priority int
	Match    Match
	Actions  []Action
}

// Validate rejects action lists outside the supported shape: ECMP groups
// must be the sole output-producing action and non-empty.
func (r *Rule) Validate() error {
	groups, outputs := 0, 0
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionGroupECMP:
			groups++
			if len(a.Ports) == 0 {
				return fmt.Errorf("flowtable: rule %d: empty ECMP group", r.ID)
			}
		case ActionOutput:
			outputs++
		case ActionSetField:
			if a.Field < 0 || a.Field >= header.NumFields {
				return fmt.Errorf("flowtable: rule %d: bad set-field %d", r.ID, a.Field)
			}
		default:
			return fmt.Errorf("flowtable: rule %d: unknown action kind %d", r.ID, a.Kind)
		}
	}
	if groups > 1 || (groups == 1 && outputs > 0) {
		return fmt.Errorf("flowtable: rule %d: ECMP group must be the only output action", r.ID)
	}
	return nil
}

// IsDrop reports whether the rule forwards nowhere.
func (r *Rule) IsDrop() bool { return len(r.ForwardingSet()) == 0 }

// IsECMP reports whether the rule forwards nondeterministically to one of
// several ports. A single-port group is deterministic and therefore not
// ECMP in the paper's sense.
func (r *Rule) IsECMP() bool {
	for _, a := range r.Actions {
		if a.Kind == ActionGroupECMP && len(dedupPorts(a.Ports)) > 1 {
			return true
		}
	}
	return false
}

// ForwardingSet returns the set of ports the rule may emit on, sorted.
func (r *Rule) ForwardingSet() []PortID {
	var ports []PortID
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionOutput:
			ports = append(ports, a.Port)
		case ActionGroupECMP:
			ports = append(ports, a.Ports...)
		}
	}
	return dedupPorts(ports)
}

func dedupPorts(ports []PortID) []PortID {
	if len(ports) == 0 {
		return nil
	}
	cp := make([]PortID, len(ports))
	copy(cp, ports)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, p := range cp[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Rewrite is the accumulated effect of set-field actions: for each field,
// whether it is overwritten and with what value. The zero value rewrites
// nothing.
type Rewrite struct {
	Set   [header.NumFields]bool
	Value [header.NumFields]uint64
}

// Apply returns h with the rewrite applied.
func (w Rewrite) Apply(h header.Header) header.Header {
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if w.Set[f] {
			h.Set(f, w.Value[f])
		}
	}
	return h
}

// BitRewrite implements Table 4's R[i] classification for bit `bit` of
// field f: it returns (fixed, value) where fixed=false means the bit
// passes through ("*") and fixed=true means the rule forces it to value.
func (w Rewrite) BitRewrite(f header.FieldID, bit int) (fixed bool, value bool) {
	if !w.Set[f] {
		return false, false
	}
	wdt := header.Width(f)
	return true, w.Value[f]>>(wdt-1-bit)&1 == 1
}

// Equal reports whether two rewrites are structurally identical.
func (w Rewrite) Equal(o Rewrite) bool { return w == o }

// RewriteOnPort returns the rewrite state in effect when the rule emits on
// port p, and whether the rule can emit on p at all. For ECMP groups the
// rewrite is whatever accumulated before the group action. If a multicast
// rule outputs twice to the same port, the first emission's rewrite is
// reported (the paper's model has at most one emission per port).
func (r *Rule) RewriteOnPort(p PortID) (Rewrite, bool) {
	var w Rewrite
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionSetField:
			w.Set[a.Field] = true
			w.Value[a.Field] = a.Value & header.WidthMask(a.Field)
		case ActionOutput:
			if a.Port == p {
				return w, true
			}
		case ActionGroupECMP:
			for _, gp := range a.Ports {
				if gp == p {
					return w, true
				}
			}
		}
	}
	return Rewrite{}, false
}

// Emission is one packet leaving a switch after rule processing.
type Emission struct {
	Port   PortID
	Header header.Header
}

// Apply executes the action list on h deterministically. For ECMP rules
// the choose function selects an index into the group's port list (pass
// nil to take the first port). It returns every emission in order.
func (r *Rule) Apply(h header.Header, choose func(n int) int) []Emission {
	var out []Emission
	cur := h
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionSetField:
			cur.Set(a.Field, a.Value)
		case ActionOutput:
			out = append(out, Emission{Port: a.Port, Header: cur})
		case ActionGroupECMP:
			i := 0
			if choose != nil {
				i = choose(len(a.Ports)) % len(a.Ports)
			}
			out = append(out, Emission{Port: a.Ports[i], Header: cur})
		}
	}
	return out
}

// String renders the rule compactly.
func (r *Rule) String() string {
	var acts []string
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionSetField:
			acts = append(acts, fmt.Sprintf("set(%s=%#x)", a.Field, a.Value))
		case ActionOutput:
			acts = append(acts, fmt.Sprintf("fwd(%d)", a.Port))
		case ActionGroupECMP:
			acts = append(acts, fmt.Sprintf("ecmp(%v)", a.Ports))
		}
	}
	if len(acts) == 0 {
		acts = []string{"drop"}
	}
	return fmt.Sprintf("rule(id=%d,prio=%d,%s -> %s)", r.ID, r.Priority, r.Match, strings.Join(acts, ","))
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	cp := *r
	cp.Actions = make([]Action, len(r.Actions))
	copy(cp.Actions, r.Actions)
	for i, a := range cp.Actions {
		if a.Kind == ActionGroupECMP {
			ports := make([]PortID, len(a.Ports))
			copy(ports, a.Ports)
			cp.Actions[i].Ports = ports
		}
	}
	return &cp
}
