package flowtable

import (
	"errors"
	"fmt"
	"sort"

	"monocle/internal/header"
)

// TableMiss selects what the switch does with packets matching no rule.
// The OpenFlow 1.0 default sends the packet to the controller; many
// deployments (and the paper's examples, §4.2) configure drop instead.
type TableMiss int

const (
	// MissDrop drops unmatched packets.
	MissDrop TableMiss = iota
	// MissController punts unmatched packets to the controller.
	MissController
)

// ErrSamePriorityOverlap is returned when inserting a rule that overlaps
// an existing rule at the same priority: the OpenFlow specification leaves
// that behaviour undefined, so the paper (footnote 1) and this model reject
// it outright.
var ErrSamePriorityOverlap = errors.New("flowtable: overlapping rules at equal priority (undefined behaviour)")

// ErrNotFound is returned by Delete/Modify when no rule matches.
var ErrNotFound = errors.New("flowtable: rule not found")

// ErrDuplicateID is returned when inserting a rule whose ID is in use.
var ErrDuplicateID = errors.New("flowtable: duplicate rule id")

// Table is a priority-ordered flow table with OpenFlow lookup semantics.
// It is not safe for concurrent use; callers own synchronization.
type Table struct {
	rules []*Rule // sorted by priority descending, stable insert order
	byID  map[uint64]*Rule
	// Miss is the table-miss behaviour used by Lookup-driven dataplanes.
	Miss TableMiss
}

// New returns an empty table with MissDrop behaviour.
func New() *Table {
	return &Table{byID: make(map[uint64]*Rule)}
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in priority-descending order. The slice is a
// copy; the pointed-to rules are shared.
func (t *Table) Rules() []*Rule {
	out := make([]*Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// View returns the live rule slice in priority-descending order, without
// copying. The caller must not modify it or hold it across table
// mutations; it exists for read-only hot paths (probe generation scans
// the table once per probed rule).
func (t *Table) View() []*Rule { return t.rules }

// Get returns the rule with the given ID.
func (t *Table) Get(id uint64) (*Rule, bool) {
	r, ok := t.byID[id]
	return r, ok
}

// Insert adds a rule. It rejects invalid action lists, duplicate IDs, and
// equal-priority overlaps.
func (t *Table) Insert(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := t.byID[r.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, r.ID)
	}
	for _, ex := range t.rules {
		if ex.Priority == r.Priority && ex.Match.Overlaps(r.Match) {
			return fmt.Errorf("%w: new %v vs existing %v", ErrSamePriorityOverlap, r, ex)
		}
	}
	// Insert keeping priority-descending order.
	i := sort.Search(len(t.rules), func(i int) bool { return t.rules[i].Priority < r.Priority })
	t.rules = append(t.rules, nil)
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = r
	t.byID[r.ID] = r
	return nil
}

// Delete removes the rule with the given ID.
func (t *Table) Delete(id uint64) error {
	r, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	delete(t.byID, id)
	for i, x := range t.rules {
		if x == r {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			return nil
		}
	}
	panic("flowtable: byID/rules out of sync")
}

// DeleteMatching removes every rule whose match and priority equal the
// given ones (OpenFlow strict delete). It returns the removed rules.
func (t *Table) DeleteMatching(m Match, priority int) []*Rule {
	var removed []*Rule
	kept := t.rules[:0]
	for _, r := range t.rules {
		if r.Priority == priority && r.Match.Equal(m) {
			removed = append(removed, r)
			delete(t.byID, r.ID)
		} else {
			kept = append(kept, r)
		}
	}
	t.rules = kept
	return removed
}

// Modify replaces the actions of the rule with the given ID, keeping match
// and priority (OpenFlow modify semantics; §4.1 of the paper).
func (t *Table) Modify(id uint64, actions []Action) error {
	r, ok := t.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	tmp := *r
	tmp.Actions = actions
	if err := tmp.Validate(); err != nil {
		return err
	}
	r.Actions = actions
	return nil
}

// Lookup returns the highest-priority rule matching h, or nil on a table
// miss. Ties cannot occur for matching rules because equal-priority
// overlaps are rejected at insert.
func (t *Table) Lookup(h header.Header) *Rule {
	for _, r := range t.rules {
		if r.Match.Covers(h) {
			return r
		}
	}
	return nil
}

// HigherPriority returns the rules with strictly higher priority than ref,
// in priority-descending order.
func (t *Table) HigherPriority(ref *Rule) []*Rule {
	var out []*Rule
	for _, r := range t.rules {
		if r.Priority > ref.Priority {
			out = append(out, r)
		}
	}
	return out
}

// LowerPriority returns the rules with strictly lower priority than ref,
// in priority-descending order.
func (t *Table) LowerPriority(ref *Rule) []*Rule {
	var out []*Rule
	for _, r := range t.rules {
		if r.Priority < ref.Priority {
			out = append(out, r)
		}
	}
	return out
}

// Clone deep-copies the table (used by the dynamic prober to build the
// altered table for modification probes, §4.1).
func (t *Table) Clone() *Table {
	cp := New()
	cp.Miss = t.Miss
	cp.rules = make([]*Rule, len(t.rules))
	for i, r := range t.rules {
		rc := r.Clone()
		cp.rules[i] = rc
		cp.byID[rc.ID] = rc
	}
	return cp
}

// Overlapping returns the rules (other than ref itself) whose match
// overlaps ref's match — the §5.4 pre-filter: only these can influence
// probe generation for ref.
func (t *Table) Overlapping(ref *Rule) []*Rule {
	var out []*Rule
	for _, r := range t.rules {
		if r != ref && r.ID != ref.ID && r.Match.Overlaps(ref.Match) {
			out = append(out, r)
		}
	}
	return out
}
