package probe

// Incremental probe generation (the engine behind whole-table sweeps).
//
// The one-shot Generate rebuilds the complete CNF encoding and a fresh SAT
// solver for every rule, so sweeping a table re-encodes every match
// formula once per probe it participates in. A Session amortizes that work
// across the rules of one table:
//
//   - the rule-independent constraints (Collect, limited domains) form a
//     small persistent solver base;
//   - every rule's match formula is Tseitin-defined once, factored through
//     per-field atoms (ACL tables repeat the same (field, ternary) pairs
//     across many rules), and compiled into an immutable sat.Block — a
//     pre-parsed clause block that attaches to the solver with no parsing
//     and no per-clause allocation;
//   - per probed rule, only the blocks of the rules in its overlap scope
//     are attached (the instance stays as small as the one-shot path's),
//     the Hit constraint becomes solver *assumptions* (the probed rule's
//     match bits plus the negated definition literals of higher-priority
//     rules), and only the Distinguish if-then-else chain is freshly
//     encoded; after the solve everything above the base is retracted
//     (sat.Checkpoint), which is cheap because the base is tiny.
//
// Solver state before each solve is a pure function of the table (RetractTo
// restores the base bit-exactly and resets heuristics), so a given rule's
// probe is identical no matter which session generates it or what was
// generated before — the property GenerateAll's determinism rests on.
//
// The batch sweep path adds a second level of sharing on top: rules whose
// overlap scopes attach mostly the same blocks are grouped into clusters
// (see cluster.go). The shared block prefix stays attached for the whole
// cluster behind a cluster checkpoint, and the per-rule retract keeps the
// learnt clauses, activities, and saved phases that the cluster prefix
// provably owns (sat.RetractToReuse), so consecutive rules skip both the
// re-attach and the re-derivation of shared conflicts. Determinism is
// keyed to the cluster: a cluster is processed atomically, in a fixed rule
// order, from an exactly-restored base state, so the probe set is still
// bit-identical for any worker count.
//
// A Session is bound to a snapshot of the table's rule set: it must not be
// used after the table changes (SessionCache rebuilds sessions across
// table epochs, recompiling only changed rules). It is not safe for
// concurrent use; Fork creates independent copies for parallel workers
// (see GenerateAll).

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"monocle/internal/cnf"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/sat"
)

// tableLibrary is the immutable per-table compilation shared by a session
// and all its forks. (A libraryBuilder may still append to it; sessions
// handed out before such an append must no longer be used.)
type tableLibrary struct {
	baseVec   []int          // Collect + domain clauses (the solver base)
	baseVars  int            // variable count of the base encoder state
	baseNC    int            // clause count of the base
	matchLit  map[uint64]int // rule ID → definition literal of its match
	blocks    []sat.Block    // compiled definition blocks (atoms and rules)
	blockVars []int32        // fresh variables introduced per block
	// ruleBlocks lists, per rule ID, the non-empty blocks that must be
	// attached before the rule's definition literal may be used.
	ruleBlocks map[uint64][]int32
}

// atomKey identifies one (field, ternary) match atom shared across rules.
type atomKey struct {
	f           header.FieldID
	value, mask uint64
}

// libraryBuilder compiles tableLibrary content incrementally: the base
// region once, then one definition region per rule, appended in call
// order. It owns the master encoder; sessions get forks of it, so the
// builder can keep appending rule regions (delta recompiles for table
// updates) without disturbing sessions already handed out.
type libraryBuilder struct {
	g       *Generator
	enc     *cnf.Encoder
	lib     *tableLibrary
	atomIdx map[atomKey]int32
	atomLit map[atomKey]int
	removed int // rules dropped since the last full rebuild (garbage metric)
}

// newLibraryBuilder encodes the base region: Collect and the limited
// domains (§5.2), iterated in field order so every builder for the same
// config emits the identical clause sequence (determinism). The
// constant-true variable is pinned here so later regions can reference it.
func (g *Generator) newLibraryBuilder() *libraryBuilder {
	enc := cnf.NewEncoder(header.TotalBits)
	if g.cfg.MaxChain > 0 {
		enc.MaxChain = g.cfg.MaxChain
	}
	enc.Assert(matchFormula(g.cfg.Collect))
	fields := make([]header.FieldID, 0, len(g.cfg.Domains))
	for f := range g.cfg.Domains {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })
	for _, f := range fields {
		d := g.cfg.Domains[f]
		if d.Values == nil {
			continue
		}
		alts := make([]*cnf.Formula, len(d.Values))
		for i, v := range d.Values {
			alts[i] = fieldEquals(f, v)
		}
		enc.Assert(cnf.Or(alts...))
	}
	_ = enc.Define(cnf.True())

	lib := &tableLibrary{
		baseVec:    append([]int(nil), enc.Vector()...),
		baseVars:   enc.NumVars(),
		matchLit:   make(map[uint64]int),
		ruleBlocks: make(map[uint64][]int32),
	}
	for _, x := range lib.baseVec {
		if x == 0 {
			lib.baseNC++
		}
	}
	return &libraryBuilder{
		g:       g,
		enc:     enc,
		lib:     lib,
		atomIdx: make(map[atomKey]int32),
		atomLit: make(map[atomKey]int),
	}
}

func (b *libraryBuilder) compile(m cnf.Mark, preVars int) (int32, error) {
	blk, err := sat.CompileBlock(b.enc.VectorFrom(m))
	if err != nil {
		return -1, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	b.lib.blocks = append(b.lib.blocks, blk)
	b.lib.blockVars = append(b.lib.blockVars, int32(b.enc.NumVars()-preVars))
	return int32(len(b.lib.blocks) - 1), nil
}

// addRule appends the definition region for one rule: one block per
// distinct not-yet-compiled (field, ternary) atom plus one for the rule's
// conjunction. Definition literals get fixed variable ids, which is what
// lets a block compiled once be attached to any number of solves.
func (b *libraryBuilder) addRule(r *flowtable.Rule) error {
	if _, dup := b.lib.matchLit[r.ID]; dup {
		return fmt.Errorf("probe: rule %d already compiled", r.ID)
	}
	var idxs []int32
	var parts []*cnf.Formula
	for f := header.FieldID(0); f < header.NumFields; f++ {
		t := r.Match[f]
		if t.IsWildcard() {
			continue
		}
		k := atomKey{f, t.Value, t.Mask}
		bi, ok := b.atomIdx[k]
		if !ok {
			m, pre := b.enc.Mark(), b.enc.NumVars()
			b.atomLit[k] = b.enc.Define(cnf.And(ternaryLits(f, t)...))
			var err error
			if bi, err = b.compile(m, pre); err != nil {
				return err
			}
			b.atomIdx[k] = bi
		}
		parts = append(parts, cnf.Lit(b.atomLit[k]))
		if !b.lib.blocks[bi].Empty() {
			idxs = append(idxs, bi)
		}
	}
	m, pre := b.enc.Mark(), b.enc.NumVars()
	b.lib.matchLit[r.ID] = b.enc.Define(cnf.And(parts...))
	bi, err := b.compile(m, pre)
	if err != nil {
		return err
	}
	if !b.lib.blocks[bi].Empty() {
		idxs = append(idxs, bi)
	}
	b.lib.ruleBlocks[r.ID] = idxs
	return nil
}

// dropRule forgets a rule's definitions. Its blocks stay in the library as
// garbage (atoms may be shared); SessionCache triggers a full rebuild once
// too much garbage accumulates.
func (b *libraryBuilder) dropRule(id uint64) {
	if _, ok := b.lib.matchLit[id]; !ok {
		return
	}
	delete(b.lib.matchLit, id)
	delete(b.lib.ruleBlocks, id)
	b.removed++
}

// newSession builds a Session over the builder's current library for the
// given table snapshot. The session shares the builder's master encoder:
// a generate's per-rule delta always rewinds to the library mark, so the
// builder may append further rule regions later (SessionCache delta
// recompiles), after which refreshLibrary re-anchors the session.
func (b *libraryBuilder) newSession(table *flowtable.Table, rules []*flowtable.Rule) (*Session, error) {
	solver := sat.New(b.lib.baseVars)
	if err := solver.AddDIMACSVector(b.lib.baseVec); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	sess := &Session{
		g:          b.g,
		table:      table,
		rules:      rules,
		lib:        b.lib,
		enc:        b.enc,
		libMark:    b.enc.Mark(),
		libVars:    b.enc.NumVars(),
		libClauses: b.enc.NumClauses(),
		solver:     solver,
		cp:         solver.Mark(),
		loaded:     make([]uint32, len(b.lib.blocks)),
	}
	sess.buildViews()
	return sess, nil
}

// refreshLibrary re-anchors a session after its builder appended new rule
// regions to the shared library/encoder: new library mark, grown block
// dedup scratch, fresh rule snapshot and forwarding views (a Table.Modify
// changes actions in place, so views cannot be carried over), and a
// dropped cluster plan. The persistent solver carries over untouched —
// it only ever holds the tiny base.
func (s *Session) refreshLibrary(table *flowtable.Table, rules []*flowtable.Rule) {
	s.table = table
	s.rules = rules
	s.libMark = s.enc.Mark()
	s.libVars = s.enc.NumVars()
	s.libClauses = s.enc.NumClauses()
	if len(s.loaded) < len(s.lib.blocks) {
		s.loaded = append(s.loaded, make([]uint32, len(s.lib.blocks)-len(s.loaded))...)
	}
	s.plan = nil
	s.buildViews()
}

// Session generates probes for the rules of one table through a single
// persistent solver instance.
type Session struct {
	g     *Generator
	table *flowtable.Table
	rules []*flowtable.Rule

	lib        *tableLibrary
	enc        *cnf.Encoder
	libMark    cnf.Mark // rewind point: everything past it is per-rule delta
	libVars    int      // encoder variable count at the library mark
	libClauses int      // encoder clause count at the library mark
	solver     *sat.Solver
	cp         sat.Checkpoint // the tiny base (Collect + domains)

	// Block-dedup scratch: loaded[i] == epoch when block i is already
	// attached for the current Generate call.
	loaded []uint32
	epoch  uint32

	// Cluster state for the batch sweep (see cluster.go): while a cluster
	// is open, the shared prefix blocks are attached behind clusterCp and
	// per-rule work retracts back to it instead of the base.
	clusterCp  sat.Checkpoint
	prefixVars int // instance-size contribution of the attached prefix
	prefixNC   int

	plan     []cluster // lazily computed cluster plan (root sessions only)
	sigStamp []uint32  // scope-signature dedup scratch (planning)
	sigGen   uint32

	// Per-generate scratch, reused across calls to keep the hot path off
	// the allocator.
	assumeScratch []int
	lowerScratch  []*flowtable.Rule
	condScratch   []*cnf.Formula
	thenScratch   []*cnf.Formula

	// Forwarding views of every table rule plus the synthetic miss rule,
	// built once per session and shared read-only with forks.
	views map[*flowtable.Rule]*fwdView
	miss  *flowtable.Rule
}

// buildViews precomputes the forwarding views the Distinguish terms need.
func (s *Session) buildViews() {
	s.miss = missRule(s.table.Miss)
	s.views = make(map[*flowtable.Rule]*fwdView, len(s.rules)+1)
	for _, r := range s.rules {
		s.views[r] = newFwdView(r)
	}
	s.views[s.miss] = newFwdView(s.miss)
}

// fwdViewOf returns the cached view, or a fresh one for rules outside the
// session's table snapshot (never cached: the map is shared with forks).
func (s *Session) fwdViewOf(r *flowtable.Rule) *fwdView {
	if v, ok := s.views[r]; ok {
		return v
	}
	return newFwdView(r)
}

// NewSession compiles the table (Collect, domains, one definition block
// per match atom and rule) and prepares the persistent solver.
func (g *Generator) NewSession(table *flowtable.Table) (*Session, error) {
	b := g.newLibraryBuilder()
	rules := table.Rules()
	for _, r := range rules {
		if err := b.addRule(r); err != nil {
			return nil, err
		}
	}
	return b.newSession(table, rules)
}

// Fork returns an independent Session over the same table, sharing the
// compiled library (base vector, definition blocks, match literals) and
// replaying only the small base into a fresh solver. Forks generate
// identical probes to the parent for any given rule.
func (s *Session) Fork() (*Session, error) {
	enc := s.enc.Fork()
	solver := sat.New(s.lib.baseVars)
	if err := solver.AddDIMACSVector(s.lib.baseVec); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	return &Session{
		g:          s.g,
		table:      s.table,
		rules:      s.rules,
		lib:        s.lib,
		enc:        enc,
		libMark:    enc.Mark(),
		libVars:    s.libVars,
		libClauses: s.libClauses,
		solver:     solver,
		cp:         solver.Mark(),
		loaded:     make([]uint32, len(s.lib.blocks)),
		views:      s.views, // read-only after buildViews
		miss:       s.miss,
	}, nil
}

// scopeFor validates the probed rule and computes its overlap scope.
func (s *Session) scopeFor(probed *flowtable.Rule) ([]*flowtable.Rule, error) {
	if err := s.g.checkReserved(probed); err != nil {
		return nil, err
	}
	var scope []*flowtable.Rule
	if s.g.cfg.SkipOverlapFilter {
		for _, r := range s.rules {
			if r != probed && r.ID != probed.ID {
				scope = append(scope, r)
			}
		}
	} else {
		scope = s.table.Overlapping(probed)
	}
	for _, r := range scope {
		if err := s.g.checkReserved(r); err != nil {
			return nil, err
		}
	}
	return scope, nil
}

// Generate creates a probe for `probed` through the session's persistent
// solver. It is equivalent to Generator.Generate over the session's table:
// the same rules are monitorable, the returned probe satisfies the same
// Hit/Distinguish/Collect constraints, and the same errors are reported
// (the concrete header may differ — any witness of the constraints is a
// valid probe).
func (s *Session) Generate(probed *flowtable.Rule) (*Probe, error) {
	scope, err := s.scopeFor(probed)
	if err != nil {
		return nil, err
	}
	return s.generate(probed, scope, nil)
}

// generate is the shared solve core. member == nil is the classic path:
// every scope block is attached and the solver retracts exactly to the
// base afterwards. With a cluster member (batch sweep), the cluster prefix
// is already attached, only the member's suffix blocks are added, and the
// retract goes back to the cluster checkpoint, carrying reusable learnt
// clauses and branching state unless the ablation knob disables it.
func (s *Session) generate(probed *flowtable.Rule, scope []*flowtable.Rule, member *clusterMember) (*Probe, error) {
	g := s.g

	// Hit, as assumptions: the probed rule's constrained match bits, and
	// ¬match for every higher-priority rule in scope via its definition
	// literal.
	assume := appendMatchAssumptions(s.assumeScratch[:0], probed.Match)
	lower := s.lowerScratch[:0]
	for _, r := range scope {
		switch {
		case r.Priority > probed.Priority:
			ml, ok := s.lib.matchLit[r.ID]
			if !ok {
				return nil, fmt.Errorf("probe: rule %d not part of the session table", r.ID)
			}
			assume = append(assume, -ml)
		case r.Priority < probed.Priority:
			lower = append(lower, r)
		default:
			if r.Match.Overlaps(probed.Match) {
				return nil, fmt.Errorf("probe: rule %d overlaps probed rule %d at equal priority", r.ID, probed.ID)
			}
		}
	}

	s.assumeScratch = assume
	s.lowerScratch = lower

	// Distinguish, as freshly encoded delta clauses: the Velev
	// if-then-else chain (§5.3) whose conditions are the rules'
	// definition literals.
	slices.SortStableFunc(lower, func(a, b *flowtable.Rule) int { return cmp.Compare(b.Priority, a.Priority) })
	miss := s.miss
	probedView := s.fwdViewOf(probed)
	if cap(s.condScratch) < len(lower) {
		s.condScratch = make([]*cnf.Formula, len(lower))
		s.thenScratch = make([]*cnf.Formula, len(lower))
	}
	conds := s.condScratch[:len(lower)]
	thens := s.thenScratch[:len(lower)]
	for i, r := range lower {
		ml, ok := s.lib.matchLit[r.ID]
		if !ok {
			return nil, fmt.Errorf("probe: rule %d not part of the session table", r.ID)
		}
		conds[i] = cnf.Lit(ml)
		thens[i] = diffOutcomeView(probed, r, probedView, s.fwdViewOf(r), g.cfg.Counting)
	}

	defer func() {
		switch {
		case member == nil:
			s.solver.RetractTo(s.cp)
		case g.cfg.DisableLearntReuse:
			s.solver.RetractTo(s.clusterCp)
		default:
			s.solver.RetractToReuse(s.clusterCp)
		}
		s.enc.Reset(s.libMark)
	}()
	s.enc.Assert(cnf.ITEChain(conds, thens, diffOutcomeView(probed, miss, probedView, s.fwdViewOf(miss), g.cfg.Counting)))
	if s.enc.Unsat() {
		return nil, ErrUnmonitorable
	}
	s.solver.EnsureVars(s.enc.NumVars())

	// Attach the definition blocks of every rule in scope, each at most
	// once, tracking the size of the instance actually handed to the
	// solver. On the cluster path the shared prefix is attached already
	// and the member's suffix was precomputed; the classic path
	// deduplicates shared atoms via the epoch stamp.
	instVars := s.lib.baseVars
	instClauses := s.lib.baseNC
	if member != nil {
		instVars += s.prefixVars
		instClauses += s.prefixNC
		for _, bi := range member.suffix {
			s.solver.AddBlock(&s.lib.blocks[bi])
			instVars += int(s.lib.blockVars[bi])
			instClauses += s.lib.blocks[bi].NumClauses()
		}
	} else {
		s.epoch++
		for _, r := range scope {
			for _, bi := range s.lib.ruleBlocks[r.ID] {
				if s.loaded[bi] == s.epoch {
					continue
				}
				s.loaded[bi] = s.epoch
				s.solver.AddBlock(&s.lib.blocks[bi])
				instVars += int(s.lib.blockVars[bi])
				instClauses += s.lib.blocks[bi].NumClauses()
			}
		}
	}
	// The Distinguish delta goes through the normalizing AddDIMACSVector
	// path on purpose: an if-then-else chain may repeat a condition
	// literal (two rules with identical matches share a definition), so
	// its clauses can contain duplicate or tautological literals, which
	// compiled blocks deliberately do not handle.
	if err := s.solver.AddDIMACSVector(s.enc.VectorFrom(s.libMark)); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	instVars += s.enc.NumVars() - s.libVars
	instClauses += s.enc.NumClauses() - s.libClauses

	d0, _, c0 := s.solver.Stats()
	status, model := s.solver.SolveAssuming(assume...)
	d1, _, c1 := s.solver.Stats()
	if status != sat.Satisfiable {
		return nil, ErrUnmonitorable
	}
	h := header.FromModel(model)

	h, err := g.repairDomains(h, s.table, probed)
	if err != nil {
		return nil, err
	}
	h = canonicalizeExcluded(h)

	p := &Probe{
		RuleID: probed.ID,
		Header: h,
		Stats: Stats{
			Vars:        instVars,
			Clauses:     instClauses,
			Overlapping: len(scope),
			Decisions:   d1 - d0,
			Conflicts:   c1 - c0,
		},
	}
	p.Present = outcomeOf(probed, h)
	p.Absent = g.absentOutcome(s.table, probed, h)
	p.Negative = p.Present.Drop

	if g.cfg.ValidateModel {
		if err := g.validate(s.table, probed, p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// beginCluster attaches the cluster's shared block prefix on top of the
// base and opens the cluster checkpoint the per-rule retracts return to.
func (s *Session) beginCluster(c *cluster) {
	maxVar := s.lib.baseVars
	for _, bi := range c.prefix {
		if mv := s.lib.blocks[bi].MaxVar(); mv > maxVar {
			maxVar = mv
		}
	}
	s.solver.EnsureVars(maxVar)
	pv, pc := 0, 0
	for _, bi := range c.prefix {
		s.solver.AddBlock(&s.lib.blocks[bi])
		pv += int(s.lib.blockVars[bi])
		pc += s.lib.blocks[bi].NumClauses()
	}
	s.prefixVars, s.prefixNC = pv, pc
	s.clusterCp = s.solver.Mark()
}

// endCluster drops the prefix, every retained learnt clause, and all
// branching state with an exact restore of the base, so the next cluster
// starts from solver state that is a pure function of the table — the
// anchor of the cross-worker determinism contract.
func (s *Session) endCluster() {
	s.solver.RetractTo(s.cp)
}

// appendMatchAssumptions appends the Table-3 match encoding as raw
// assumption literals: one per constrained bit of m (cf. matchFormula).
func appendMatchAssumptions(lits []int, m flowtable.Match) []int {
	for f := header.FieldID(0); f < header.NumFields; f++ {
		t := m[f]
		if t.IsWildcard() {
			continue
		}
		w := header.Width(f)
		for b := 0; b < w; b++ {
			if t.Mask>>(w-1-b)&1 == 0 {
				continue
			}
			v := header.BitVar(f, b)
			if t.Value>>(w-1-b)&1 == 1 {
				lits = append(lits, v)
			} else {
				lits = append(lits, -v)
			}
		}
	}
	return lits
}
