package probe

// Incremental probe generation (the engine behind whole-table sweeps).
//
// The one-shot Generate rebuilds the complete CNF encoding and a fresh SAT
// solver for every rule, so sweeping a table re-encodes every match
// formula once per probe it participates in. A Session amortizes that work
// across the rules of one table:
//
//   - the rule-independent constraints (Collect, limited domains) form a
//     small persistent solver base;
//   - every rule's match formula is Tseitin-defined once, factored through
//     per-field atoms (ACL tables repeat the same (field, ternary) pairs
//     across many rules), and compiled into an immutable sat.Block — a
//     pre-parsed clause block that attaches to the solver with no parsing
//     and no per-clause allocation;
//   - per probed rule, only the blocks of the rules in its overlap scope
//     are attached (the instance stays as small as the one-shot path's),
//     the Hit constraint becomes solver *assumptions* (the probed rule's
//     match bits plus the negated definition literals of higher-priority
//     rules), and only the Distinguish if-then-else chain is freshly
//     encoded; after the solve everything above the base is retracted
//     (sat.Checkpoint), which is cheap because the base is tiny.
//
// Solver state before each solve is a pure function of the table (RetractTo
// restores the base bit-exactly and resets heuristics), so a given rule's
// probe is identical no matter which session generates it or what was
// generated before — the property GenerateAll's determinism rests on.
//
// A Session is bound to a snapshot of the table's rule set: it must not be
// used after the table changes. It is not safe for concurrent use; Fork
// creates independent copies for parallel workers (see GenerateAll).

import (
	"fmt"
	"sort"

	"monocle/internal/cnf"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/sat"
)

// tableLibrary is the immutable per-table compilation shared by a session
// and all its forks.
type tableLibrary struct {
	baseVec    []int          // Collect + domain clauses (the solver base)
	baseVars   int            // variable count of the base encoder state
	baseNC     int            // clause count of the base
	matchLit   map[uint64]int // rule ID → definition literal of its match
	blocks     []sat.Block    // compiled definition blocks (atoms and rules)
	blockVars  []int32        // fresh variables introduced per block
	libVars    int            // encoder variable count after the library
	libClauses int            // encoder clause count after the library
	// ruleBlocks lists, per rule ID, the non-empty blocks that must be
	// attached before the rule's definition literal may be used.
	ruleBlocks map[uint64][]int32
}

// Session generates probes for the rules of one table through a single
// persistent solver instance.
type Session struct {
	g     *Generator
	table *flowtable.Table
	rules []*flowtable.Rule

	lib     *tableLibrary
	enc     *cnf.Encoder
	libMark cnf.Mark // rewind point: everything past it is per-rule delta
	solver  *sat.Solver
	cp      sat.Checkpoint // the tiny base (Collect + domains)

	// Block-dedup scratch: loaded[i] == epoch when block i is already
	// attached for the current Generate call.
	loaded []uint32
	epoch  uint32
}

// NewSession compiles the table (Collect, domains, one definition block
// per match atom and rule) and prepares the persistent solver.
func (g *Generator) NewSession(table *flowtable.Table) (*Session, error) {
	enc := cnf.NewEncoder(header.TotalBits)
	if g.cfg.MaxChain > 0 {
		enc.MaxChain = g.cfg.MaxChain
	}

	// Base region: Collect and the limited domains (§5.2), iterated in
	// field order so every session of the same table emits the identical
	// clause sequence (determinism). The constant-true variable is
	// pinned here so later regions can reference it.
	enc.Assert(matchFormula(g.cfg.Collect))
	fields := make([]header.FieldID, 0, len(g.cfg.Domains))
	for f := range g.cfg.Domains {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })
	for _, f := range fields {
		d := g.cfg.Domains[f]
		if d.Values == nil {
			continue
		}
		alts := make([]*cnf.Formula, len(d.Values))
		for i, v := range d.Values {
			alts[i] = fieldEquals(f, v)
		}
		enc.Assert(cnf.Or(alts...))
	}
	_ = enc.Define(cnf.True())

	lib := &tableLibrary{
		baseVec:    append([]int(nil), enc.Vector()...),
		baseVars:   enc.NumVars(),
		matchLit:   make(map[uint64]int),
		ruleBlocks: make(map[uint64][]int32),
	}

	// Library region: one definition per distinct (field, ternary) atom
	// and one per rule, each compiled into a reusable block. Definition
	// literals get fixed variable ids here, which is what lets a block
	// compiled once be attached to any number of solves.
	type atomKey struct {
		f           header.FieldID
		value, mask uint64
	}
	for _, x := range lib.baseVec {
		if x == 0 {
			lib.baseNC++
		}
	}
	atomIdx := make(map[atomKey]int32)
	atomLit := make(map[atomKey]int)
	rules := table.Rules()
	compile := func(m cnf.Mark, preVars int) (int32, error) {
		blk, err := sat.CompileBlock(enc.VectorFrom(m))
		if err != nil {
			return -1, fmt.Errorf("probe: internal CNF error: %w", err)
		}
		lib.blocks = append(lib.blocks, blk)
		lib.blockVars = append(lib.blockVars, int32(enc.NumVars()-preVars))
		return int32(len(lib.blocks) - 1), nil
	}
	for _, r := range rules {
		var idxs []int32
		var parts []*cnf.Formula
		for f := header.FieldID(0); f < header.NumFields; f++ {
			t := r.Match[f]
			if t.IsWildcard() {
				continue
			}
			k := atomKey{f, t.Value, t.Mask}
			bi, ok := atomIdx[k]
			if !ok {
				m, pre := enc.Mark(), enc.NumVars()
				atomLit[k] = enc.Define(cnf.And(ternaryLits(f, t)...))
				var err error
				if bi, err = compile(m, pre); err != nil {
					return nil, err
				}
				atomIdx[k] = bi
			}
			parts = append(parts, cnf.Lit(atomLit[k]))
			if !lib.blocks[bi].Empty() {
				idxs = append(idxs, bi)
			}
		}
		m, pre := enc.Mark(), enc.NumVars()
		lib.matchLit[r.ID] = enc.Define(cnf.And(parts...))
		bi, err := compile(m, pre)
		if err != nil {
			return nil, err
		}
		if !lib.blocks[bi].Empty() {
			idxs = append(idxs, bi)
		}
		lib.ruleBlocks[r.ID] = idxs
	}
	lib.libVars = enc.NumVars()
	lib.libClauses = enc.NumClauses()

	solver := sat.New(lib.baseVars)
	if err := solver.AddDIMACSVector(lib.baseVec); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	return &Session{
		g:       g,
		table:   table,
		rules:   rules,
		lib:     lib,
		enc:     enc,
		libMark: enc.Mark(),
		solver:  solver,
		cp:      solver.Mark(),
		loaded:  make([]uint32, len(lib.blocks)),
	}, nil
}

// Fork returns an independent Session over the same table, sharing the
// compiled library (base vector, definition blocks, match literals) and
// replaying only the small base into a fresh solver. Forks generate
// identical probes to the parent for any given rule.
func (s *Session) Fork() (*Session, error) {
	enc := s.enc.Fork()
	solver := sat.New(s.lib.baseVars)
	if err := solver.AddDIMACSVector(s.lib.baseVec); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	return &Session{
		g:       s.g,
		table:   s.table,
		rules:   s.rules,
		lib:     s.lib,
		enc:     enc,
		libMark: enc.Mark(),
		solver:  solver,
		cp:      solver.Mark(),
		loaded:  make([]uint32, len(s.lib.blocks)),
	}, nil
}

// Generate creates a probe for `probed` through the session's persistent
// solver. It is equivalent to Generator.Generate over the session's table:
// the same rules are monitorable, the returned probe satisfies the same
// Hit/Distinguish/Collect constraints, and the same errors are reported
// (the concrete header may differ — any witness of the constraints is a
// valid probe).
func (s *Session) Generate(probed *flowtable.Rule) (*Probe, error) {
	g := s.g
	if err := g.checkReserved(probed); err != nil {
		return nil, err
	}

	var scope []*flowtable.Rule
	if g.cfg.SkipOverlapFilter {
		for _, r := range s.rules {
			if r != probed && r.ID != probed.ID {
				scope = append(scope, r)
			}
		}
	} else {
		scope = s.table.Overlapping(probed)
	}
	for _, r := range scope {
		if err := g.checkReserved(r); err != nil {
			return nil, err
		}
	}

	// Hit, as assumptions: the probed rule's constrained match bits, and
	// ¬match for every higher-priority rule in scope via its definition
	// literal.
	assume := matchAssumptions(probed.Match)
	var lower []*flowtable.Rule
	for _, r := range scope {
		switch {
		case r.Priority > probed.Priority:
			ml, ok := s.lib.matchLit[r.ID]
			if !ok {
				return nil, fmt.Errorf("probe: rule %d not part of the session table", r.ID)
			}
			assume = append(assume, -ml)
		case r.Priority < probed.Priority:
			lower = append(lower, r)
		default:
			if r.Match.Overlaps(probed.Match) {
				return nil, fmt.Errorf("probe: rule %d overlaps probed rule %d at equal priority", r.ID, probed.ID)
			}
		}
	}

	// Distinguish, as freshly encoded delta clauses: the Velev
	// if-then-else chain (§5.3) whose conditions are the rules'
	// definition literals.
	sort.SliceStable(lower, func(i, j int) bool { return lower[i].Priority > lower[j].Priority })
	miss := missRule(s.table.Miss)
	conds := make([]*cnf.Formula, len(lower))
	thens := make([]*cnf.Formula, len(lower))
	for i, r := range lower {
		ml, ok := s.lib.matchLit[r.ID]
		if !ok {
			return nil, fmt.Errorf("probe: rule %d not part of the session table", r.ID)
		}
		conds[i] = cnf.Lit(ml)
		thens[i] = diffOutcome(probed, r, g.cfg.Counting)
	}

	defer func() {
		s.solver.RetractTo(s.cp)
		s.enc.Reset(s.libMark)
	}()
	s.enc.Assert(cnf.ITEChain(conds, thens, diffOutcome(probed, miss, g.cfg.Counting)))
	if s.enc.Unsat() {
		return nil, ErrUnmonitorable
	}
	s.solver.EnsureVars(s.enc.NumVars())

	// Attach the definition blocks of every rule in scope, each at most
	// once (shared atoms are deduplicated via the epoch stamp), tracking
	// the size of the instance actually handed to the solver.
	instVars := s.lib.baseVars
	instClauses := s.lib.baseNC
	s.epoch++
	for _, r := range scope {
		for _, bi := range s.lib.ruleBlocks[r.ID] {
			if s.loaded[bi] == s.epoch {
				continue
			}
			s.loaded[bi] = s.epoch
			s.solver.AddBlock(&s.lib.blocks[bi])
			instVars += int(s.lib.blockVars[bi])
			instClauses += s.lib.blocks[bi].NumClauses()
		}
	}
	// The Distinguish delta goes through the normalizing AddDIMACSVector
	// path on purpose: an if-then-else chain may repeat a condition
	// literal (two rules with identical matches share a definition), so
	// its clauses can contain duplicate or tautological literals, which
	// compiled blocks deliberately do not handle.
	if err := s.solver.AddDIMACSVector(s.enc.VectorFrom(s.libMark)); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	instVars += s.enc.NumVars() - s.lib.libVars
	instClauses += s.enc.NumClauses() - s.lib.libClauses

	d0, _, c0 := s.solver.Stats()
	status, model := s.solver.SolveAssuming(assume...)
	d1, _, c1 := s.solver.Stats()
	if status != sat.Satisfiable {
		return nil, ErrUnmonitorable
	}
	h := header.FromModel(model)

	h, err := g.repairDomains(h, s.table, probed)
	if err != nil {
		return nil, err
	}
	h = canonicalizeExcluded(h)

	p := &Probe{
		RuleID: probed.ID,
		Header: h,
		Stats: Stats{
			Vars:        instVars,
			Clauses:     instClauses,
			Overlapping: len(scope),
			Decisions:   d1 - d0,
			Conflicts:   c1 - c0,
		},
	}
	p.Present = outcomeOf(probed, h)
	p.Absent = g.absentOutcome(s.table, probed, h)
	p.Negative = p.Present.Drop

	if g.cfg.ValidateModel {
		if err := g.validate(s.table, probed, p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// matchAssumptions returns the Table-3 match encoding as raw assumption
// literals: one per constrained bit of m (cf. matchFormula).
func matchAssumptions(m flowtable.Match) []int {
	var lits []int
	for f := header.FieldID(0); f < header.NumFields; f++ {
		t := m[f]
		if t.IsWildcard() {
			continue
		}
		w := header.Width(f)
		for b := 0; b < w; b++ {
			if t.Mask>>(w-1-b)&1 == 0 {
				continue
			}
			v := header.BitVar(f, b)
			if t.Value>>(w-1-b)&1 == 1 {
				lits = append(lits, v)
			} else {
				lits = append(lits, -v)
			}
		}
	}
	return lits
}
