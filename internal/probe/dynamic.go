package probe

// Dynamic-monitoring probe construction (§4.1): probes for rule additions,
// deletions, and modifications.
//
// Additions reuse the steady-state generator against the expected table
// that already includes the new rule; the probe confirms installation once
// the data plane produces the Present outcome.
//
// Deletions reuse the same probe with the interpretation swapped: the
// deletion has taken effect once the probe produces the Absent outcome
// (the underlying lower-priority rule's actions).
//
// Modifications keep match and priority, so the probe always hits either
// the old or the new version. Per the paper we clone the expected table,
// drop every lower-priority rule, demote the old version just below the
// new one, and run standard generation for the new version: Present = new
// actions, Absent = old actions.

import (
	"fmt"
	"math"

	"monocle/internal/flowtable"
)

// GenerateAddition creates a probe confirming that newRule (already part
// of the expected table) has reached the data plane.
func (g *Generator) GenerateAddition(table *flowtable.Table, newRule *flowtable.Rule) (*Probe, error) {
	return g.Generate(table, newRule)
}

// GenerateDeletion creates a probe confirming that the rule has left the
// data plane. The table passed in must still contain the rule. Deletion is
// confirmed when the observed behaviour equals the probe's Absent outcome.
func (g *Generator) GenerateDeletion(table *flowtable.Table, rule *flowtable.Rule) (*Probe, error) {
	return g.Generate(table, rule)
}

// GenerateModification creates a probe distinguishing the new version of a
// rule from the old one. oldRule must be in table; newActions are the
// modified action list (match and priority unchanged, per OpenFlow modify
// semantics). In the returned probe, Present corresponds to the new
// version being active and Absent to the old version.
func (g *Generator) GenerateModification(table *flowtable.Table, oldRule *flowtable.Rule, newActions []flowtable.Action) (*Probe, error) {
	if oldRule.Priority == math.MinInt {
		return nil, fmt.Errorf("probe: cannot demote rule %d at minimum priority", oldRule.ID)
	}
	alt := flowtable.New()
	alt.Miss = table.Miss
	for _, r := range table.Rules() {
		if r.Priority < oldRule.Priority {
			continue // remove all lower-priority rules (§4.1)
		}
		cp := r.Clone()
		if r.ID == oldRule.ID {
			cp.Priority = oldRule.Priority - 1 // demote the old version
		}
		if err := alt.Insert(cp); err != nil {
			return nil, fmt.Errorf("probe: building altered table: %w", err)
		}
	}
	newVersion := &flowtable.Rule{
		ID:       oldRule.ID ^ (1 << 63), // synthetic id distinct from the old copy
		Priority: oldRule.Priority,
		Match:    oldRule.Match,
		Actions:  newActions,
	}
	if err := alt.Insert(newVersion); err != nil {
		return nil, fmt.Errorf("probe: inserting new version: %w", err)
	}
	p, err := g.Generate(alt, newVersion)
	if err != nil {
		return nil, err
	}
	p.RuleID = oldRule.ID
	return p, nil
}
