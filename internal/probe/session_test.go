package probe

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"monocle/internal/dataset"
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// TestSessionDifferentialRandomTables is the equivalence property test for
// the incremental engine: on seeded-random flow tables, Session.Generate
// must classify every rule exactly like the one-shot Generate (monitorable
// vs ErrUnmonitorable vs hard error), and every probe it produces must
// satisfy the same Hit/Distinguish/Collect discrimination (checked by
// ValidateModel inside both paths plus independent re-derivation here).
// The concrete headers may differ: any witness of the constraints is valid.
func TestSessionDifferentialRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	configs := []Config{
		{ValidateModel: true},
		{ValidateModel: true, Collect: flowtable.MatchAll().WithExact(header.VlanID, 1)},
		{ValidateModel: true, Counting: true},
		{ValidateModel: true, SkipOverlapFilter: true},
	}
	found, unmon := 0, 0
	for iter := 0; iter < 200; iter++ {
		tb := flowtable.New()
		if iter%3 == 0 {
			tb.Miss = flowtable.MissController
		}
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			_ = tb.Insert(randomRule(rng, uint64(i))) // skip equal-priority overlap rejects
		}
		g := NewGenerator(configs[iter%len(configs)])
		sess, err := g.NewSession(tb)
		if err != nil {
			t.Fatalf("iter %d: NewSession: %v", iter, err)
		}
		for _, r := range tb.Rules() {
			p1, err1 := g.Generate(tb, r)
			p2, err2 := sess.Generate(r)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("iter %d rule %v: one-shot err=%v, incremental err=%v", iter, r, err1, err2)
			}
			if errors.Is(err1, ErrUnmonitorable) != errors.Is(err2, ErrUnmonitorable) {
				t.Fatalf("iter %d rule %v: unmonitorable classification differs: %v vs %v", iter, r, err1, err2)
			}
			if err1 != nil {
				unmon++
				continue
			}
			found++
			if p1.Negative != p2.Negative {
				t.Fatalf("iter %d rule %v: negative-probe flag differs", iter, r)
			}
			// Independent discrimination check on the incremental probe:
			// it must hit the probed rule in the full table and produce
			// the re-derived absent behaviour without it.
			if hit := tb.Lookup(p2.Header); hit == nil || hit.ID != r.ID {
				t.Fatalf("iter %d rule %v: incremental probe %v hits %v", iter, r, p2.Header, hit)
			}
			without := flowtable.New()
			without.Miss = tb.Miss
			for _, o := range tb.Rules() {
				if o.ID != r.ID {
					if err := without.Insert(o.Clone()); err != nil {
						t.Fatal(err)
					}
				}
			}
			hit := without.Lookup(p2.Header)
			if hit == nil {
				if p2.Absent.Rule != nil {
					t.Fatalf("iter %d rule %v: absent should be a table miss, got rule %v", iter, r, p2.Absent.Rule)
				}
				if tb.Miss == flowtable.MissDrop && !p2.Absent.Drop {
					t.Fatalf("iter %d rule %v: absent mismatch on drop-miss: %+v", iter, r, p2.Absent)
				}
			} else if p2.Absent.Rule == nil || hit.ID != p2.Absent.Rule.ID {
				t.Fatalf("iter %d rule %v: absent rule mismatch: sim=%v probe=%v", iter, r, hit, p2.Absent.Rule)
			}
		}
	}
	if found == 0 {
		t.Fatal("differential test generated no probes at all")
	}
	t.Logf("differential: probes=%d unmonitorable=%d", found, unmon)
}

// TestSessionDifferentialACLDataset runs the same equivalence check on a
// structured ACL-style table (prefix nesting, deny mix, port matches) with
// the benchmark harness configuration.
func TestSessionDifferentialACLDataset(t *testing.T) {
	prof := dataset.Profile{
		Name: "mini", Rules: 80, PrefixPool: 50,
		DenyFraction: 0.35, PortFraction: 0.5, RewriteFraction: 0.1,
		Ports: 8, Seed: 990017,
	}
	tb, rules := dataset.Generate(prof)
	g := NewGenerator(Config{
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, 1),
		ValidateModel: true,
	})
	sess, err := g.NewSession(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		_, err1 := g.Generate(tb, r)
		_, err2 := sess.Generate(r)
		if (err1 == nil) != (err2 == nil) || errors.Is(err1, ErrUnmonitorable) != errors.Is(err2, ErrUnmonitorable) {
			t.Fatalf("rule %v: one-shot err=%v, incremental err=%v", r, err1, err2)
		}
	}
}

// miniTable builds the shared table for the batch-mode tests.
func miniTable() (*flowtable.Table, []*flowtable.Rule) {
	return dataset.Generate(dataset.Profile{
		Name: "batch", Rules: 120, PrefixPool: 70,
		DenyFraction: 0.3, PortFraction: 0.5, RewriteFraction: 0.1,
		Ports: 8, Seed: 5501,
	})
}

// TestGenerateAllDeterministicAcrossParallelism asserts the batch engine's
// determinism contract: the probe set is bit-identical no matter how many
// workers the sweep is spread over. Run under -race this also exercises
// the concurrent sessions on a shared table.
func TestGenerateAllDeterministicAcrossParallelism(t *testing.T) {
	tb, _ := miniTable()
	g := NewGenerator(Config{
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, 1),
		ValidateModel: true,
	})
	par := []int{1, 4, runtime.NumCPU()}
	var ref []Result
	for _, p := range par {
		res := g.GenerateAll(context.Background(), tb, p)
		if len(res) != tb.Len() {
			t.Fatalf("parallelism %d: %d results for %d rules", p, len(res), tb.Len())
		}
		if ref == nil {
			ref = res
			ok := 0
			for _, r := range res {
				if r.Err == nil {
					ok++
				} else if !errors.Is(r.Err, ErrUnmonitorable) {
					t.Fatalf("rule %v: unexpected error %v", r.Rule, r.Err)
				}
			}
			if ok == 0 {
				t.Fatal("batch sweep found no probes at all")
			}
			continue
		}
		for i, r := range res {
			want := ref[i]
			if r.Rule.ID != want.Rule.ID {
				t.Fatalf("parallelism %d: result order diverged at %d", p, i)
			}
			if (r.Err == nil) != (want.Err == nil) {
				t.Fatalf("parallelism %d rule %d: err %v vs %v", p, r.Rule.ID, r.Err, want.Err)
			}
			if r.Err == nil && r.Probe.Header != want.Probe.Header {
				t.Fatalf("parallelism %d rule %d: header %v vs %v — probe set is not deterministic",
					p, r.Rule.ID, r.Probe.Header, want.Probe.Header)
			}
		}
	}
}

// TestGenerateAllMatchesSequentialSession: the clustered batch sweep must
// classify every rule exactly like a plain sequential session sweep
// (monitorable vs not). Headers may legitimately differ — the clustered
// solve runs from different (cluster-shared) solver state and any witness
// of the constraints is a valid probe — so probe validity is re-checked
// against the table instead of pinning bytes.
func TestGenerateAllMatchesSequentialSession(t *testing.T) {
	tb, _ := miniTable()
	g := NewGenerator(Config{ValidateModel: true})
	sess, err := g.NewSession(tb)
	if err != nil {
		t.Fatal(err)
	}
	res := g.GenerateAll(context.Background(), tb, 3)
	for i, r := range tb.Rules() {
		p, err := sess.Generate(r)
		if (err == nil) != (res[i].Err == nil) {
			t.Fatalf("rule %d: session err=%v batch err=%v", r.ID, err, res[i].Err)
		}
		if errors.Is(err, ErrUnmonitorable) != errors.Is(res[i].Err, ErrUnmonitorable) {
			t.Fatalf("rule %d: unmonitorable classification differs: %v vs %v", r.ID, err, res[i].Err)
		}
		if err != nil {
			continue
		}
		_ = p
		if hit := tb.Lookup(res[i].Probe.Header); hit == nil || hit.ID != r.ID {
			t.Fatalf("rule %d: batch probe %v hits %v", r.ID, res[i].Probe.Header, hit)
		}
	}
}

// TestGenerateAllClusterAblations: every ablation combination (clustering
// off, learnt reuse off) stays deterministic across worker counts and
// classifies identically to the full configuration.
func TestGenerateAllClusterAblations(t *testing.T) {
	tb, _ := miniTable()
	full := NewGenerator(Config{ValidateModel: true}).GenerateAll(context.Background(), tb, 2)
	for _, cfg := range []Config{
		{ValidateModel: true, DisableClustering: true},
		{ValidateModel: true, DisableLearntReuse: true},
	} {
		g := NewGenerator(cfg)
		ref := g.GenerateAll(context.Background(), tb, 1)
		for _, par := range []int{3, runtime.NumCPU()} {
			res := g.GenerateAll(context.Background(), tb, par)
			for i := range res {
				if (res[i].Err == nil) != (ref[i].Err == nil) {
					t.Fatalf("cfg %+v par %d rule %d: err %v vs %v", cfg, par, i, res[i].Err, ref[i].Err)
				}
				if res[i].Err == nil && res[i].Probe.Header != ref[i].Probe.Header {
					t.Fatalf("cfg %+v par %d rule %d: nondeterministic header", cfg, par, i)
				}
			}
		}
		for i := range ref {
			if errors.Is(ref[i].Err, ErrUnmonitorable) != errors.Is(full[i].Err, ErrUnmonitorable) {
				t.Fatalf("cfg %+v rule %d: classification differs from full config: %v vs %v",
					cfg, i, ref[i].Err, full[i].Err)
			}
		}
	}
}

// TestGenerateAllContextCancelled: a cancelled context aborts the sweep
// and surfaces the context error on unprocessed rules.
func TestGenerateAllContextCancelled(t *testing.T) {
	tb, _ := miniTable()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := NewGenerator(Config{}).GenerateAll(ctx, tb, 2)
	for _, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("rule %v: err=%v, want context.Canceled", r.Rule, r.Err)
		}
	}
}

// TestGenerateAllEmptyTable: no rules, no workers, no results.
func TestGenerateAllEmptyTable(t *testing.T) {
	res := NewGenerator(Config{}).GenerateAll(context.Background(), flowtable.New(), 4)
	if len(res) != 0 {
		t.Fatalf("got %d results for an empty table", len(res))
	}
}

// TestSessionDynamicProbesStillWork pins that the one-shot paths reused by
// dynamic monitoring (modification probes over cloned tables) agree with a
// session built over the same altered table.
func TestSessionDynamicProbesStillWork(t *testing.T) {
	probed := &flowtable.Rule{ID: 7, Priority: 10,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(1)}}
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, probed, def)
	g := gen()
	sess, err := g.NewSession(tb)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.Generate(probed)
	if err != nil {
		t.Fatal(err)
	}
	if hit := tb.Lookup(p.Header); hit == nil || hit.ID != probed.ID {
		t.Fatalf("session probe misses the probed rule: %v", p.Header)
	}
}
