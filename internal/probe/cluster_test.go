package probe

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"monocle/internal/dataset"
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// TestClusterPlanCoversEveryRule: the plan partitions the rule set, every
// member's prefix+suffix equals its scope signature, and prefixes are
// subsets of every member's signature.
func TestClusterPlanCoversEveryRule(t *testing.T) {
	tb, _ := miniTable()
	g := NewGenerator(Config{Collect: flowtable.MatchAll().WithExact(header.VlanID, 1)})
	sess, err := g.NewSession(tb)
	if err != nil {
		t.Fatal(err)
	}
	plan := sess.clusterPlan()
	seen := make(map[int]bool)
	for _, c := range plan {
		for _, m := range c.members {
			if seen[m.idx] {
				t.Fatalf("rule index %d appears in two clusters", m.idx)
			}
			seen[m.idx] = true
			if m.err != nil {
				continue
			}
			sig := sess.sigOf(m.scope)
			union := append(append([]int32(nil), c.prefix...), m.suffix...)
			if len(union) != len(sig) {
				t.Fatalf("rule %d: prefix+suffix has %d blocks, scope signature %d", m.idx, len(union), len(sig))
			}
			want := make(map[int32]bool, len(sig))
			for _, b := range sig {
				want[b] = true
			}
			for _, b := range union {
				if !want[b] {
					t.Fatalf("rule %d: block %d attached but not in scope signature", m.idx, b)
				}
			}
		}
	}
	if len(seen) != len(sess.rules) {
		t.Fatalf("plan covers %d of %d rules", len(seen), len(sess.rules))
	}
}

// TestClusteredDifferentialRandomTables is the fuzz-style differential for
// the clustered engine: on seeded-random tables, the clustered parallel
// sweep must classify every rule exactly like the one-shot Generate, and
// every probe must discriminate the rule in the full table (independently
// re-derived here, on top of ValidateModel running inside both paths).
func TestClusteredDifferentialRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(987654))
	configs := []Config{
		{ValidateModel: true},
		{ValidateModel: true, Collect: flowtable.MatchAll().WithExact(header.VlanID, 1)},
		{ValidateModel: true, Counting: true},
		{ValidateModel: true, SkipOverlapFilter: true},
	}
	found := 0
	for iter := 0; iter < 120; iter++ {
		tb := flowtable.New()
		if iter%3 == 0 {
			tb.Miss = flowtable.MissController
		}
		n := 2 + rng.Intn(14)
		for i := 0; i < n; i++ {
			_ = tb.Insert(randomRule(rng, uint64(i)))
		}
		g := NewGenerator(configs[iter%len(configs)])
		par := 1 + rng.Intn(4)
		res := g.GenerateAll(context.Background(), tb, par)
		for i, r := range tb.Rules() {
			_, err1 := g.Generate(tb, r)
			err2 := res[i].Err
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("iter %d rule %v: one-shot err=%v, clustered err=%v", iter, r, err1, err2)
			}
			if errors.Is(err1, ErrUnmonitorable) != errors.Is(err2, ErrUnmonitorable) {
				t.Fatalf("iter %d rule %v: unmonitorable classification differs: %v vs %v", iter, r, err1, err2)
			}
			if err2 != nil {
				continue
			}
			found++
			p := res[i].Probe
			if hit := tb.Lookup(p.Header); hit == nil || hit.ID != r.ID {
				t.Fatalf("iter %d rule %v: clustered probe %v hits %v", iter, r, p.Header, hit)
			}
			without := flowtable.New()
			without.Miss = tb.Miss
			for _, o := range tb.Rules() {
				if o.ID != r.ID {
					if err := without.Insert(o.Clone()); err != nil {
						t.Fatal(err)
					}
				}
			}
			hit := without.Lookup(p.Header)
			if hit == nil {
				if p.Absent.Rule != nil {
					t.Fatalf("iter %d rule %v: absent should be a miss, got %v", iter, r, p.Absent.Rule)
				}
			} else if p.Absent.Rule == nil || hit.ID != p.Absent.Rule.ID {
				t.Fatalf("iter %d rule %v: absent rule mismatch: sim=%v probe=%v", iter, r, hit, p.Absent.Rule)
			}
		}
	}
	if found == 0 {
		t.Fatal("clustered differential generated no probes at all")
	}
}

// TestSessionForkClusterRace exercises concurrent forked sessions running
// clustered sweeps over one shared library (run with -race): two full
// GenerateAll sweeps race against each other on the same table while a
// sequential session reads the same shared library.
func TestSessionForkClusterRace(t *testing.T) {
	tb, rules := dataset.Generate(dataset.Profile{
		Name: "race", Rules: 150, PrefixPool: 60,
		DenyFraction: 0.3, PortFraction: 0.5, RewriteFraction: 0.1,
		Ports: 8, Seed: 31337,
	})
	g := NewGenerator(Config{
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, 1),
		ValidateModel: true,
	})
	var wg sync.WaitGroup
	sweep := func() []Result {
		defer wg.Done()
		return g.GenerateAll(context.Background(), tb, runtime.NumCPU())
	}
	wg.Add(2)
	go sweep()
	go sweep()
	sess, err := g.NewSession(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules[:40] {
		_, _ = sess.Generate(r)
	}
	wg.Wait()
}
