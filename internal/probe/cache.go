package probe

// SessionCache keeps the expensive per-table compilation (the
// tableLibrary: base clauses, per-atom and per-rule definition blocks,
// match literals) alive across changes to the table, so a Monitor that
// inserts or deletes a handful of rules per epoch does not recompile the
// whole library before its next probe generation. On epoch change the
// cache diffs the table against what it compiled, appends definition
// regions for new (or re-matched) rules only, forgets dropped ones, and
// hands out a fresh Session over the updated library — session
// construction itself is cheap (an encoder fork plus replaying the tiny
// base into a new solver).
//
// Deleted rules leave their blocks behind as garbage (atoms may be shared
// with live rules); once too much garbage accumulates the cache rebuilds
// the library from scratch, which also compacts the encoder's variable
// space.
//
// A SessionCache is not safe for concurrent use. It is designed for the
// Monitor's single-threaded event loop: sessions it returns are valid
// until the next table change, and the GenerateAll sweep it offers runs
// its parallel workers to completion before returning.

import (
	"context"

	"monocle/internal/flowtable"
)

// SessionCache hands out probe Sessions over one mutable table, keyed by
// the owner's table-change epoch.
type SessionCache struct {
	g     *Generator
	table *flowtable.Table

	b     *libraryBuilder
	known map[uint64]flowtable.Match // rule ID → match as compiled
	sess  *Session
	epoch uint64
	valid bool // sess matches the table state at `epoch`

	// Stats counts cache activity (benchmarks, tests, -stats reporting).
	Stats CacheStats
}

// CacheStats counts SessionCache activity. The JSON form feeds the
// monocled /metrics endpoint.
type CacheStats struct {
	// Hits are Session calls answered with the cached session.
	Hits int `json:"hits"`
	// Syncs are epoch changes that re-synced the library.
	Syncs int `json:"syncs"`
	// DeltaRules counts rules (re)compiled incrementally across syncs.
	DeltaRules int `json:"delta_rules"`
	// Rebuilds counts full library rebuilds (garbage compaction).
	Rebuilds int `json:"rebuilds"`
}

// NewSessionCache creates a cache bound to the given (live) table. The
// library is compiled lazily on first use.
func (g *Generator) NewSessionCache(table *flowtable.Table) *SessionCache {
	return &SessionCache{g: g, table: table}
}

// Session returns a Session for the table's current rule set. The caller
// passes its table-change epoch: as long as it does not change, the same
// session is returned without any table scan; when it changes, the
// library is delta-recompiled and a fresh session built.
func (c *SessionCache) Session(epoch uint64) (*Session, error) {
	if c.valid && c.epoch == epoch && c.sess != nil {
		c.Stats.Hits++
		return c.sess, nil
	}
	if err := c.sync(); err != nil {
		return nil, err
	}
	c.epoch = epoch
	c.valid = true
	return c.sess, nil
}

// GenerateAll sweeps every rule of the table through the cached library,
// exactly like Generator.GenerateAll but without recompiling unchanged
// rules. Errors building the session are reported per rule, mirroring
// Generator.GenerateAll.
func (c *SessionCache) GenerateAll(ctx context.Context, epoch uint64, parallelism int) []Result {
	res, _ := c.GenerateAllStats(ctx, epoch, parallelism)
	return res
}

// GenerateAllStats is GenerateAll surfacing per-worker solver statistics,
// mirroring Generator.GenerateAllStats on the cached-library path.
func (c *SessionCache) GenerateAllStats(ctx context.Context, epoch uint64, parallelism int) ([]Result, []WorkerStats) {
	sess, err := c.Session(epoch)
	if err != nil {
		rules := c.table.Rules()
		results := make([]Result, len(rules))
		for i, r := range rules {
			results[i].Rule = r
			results[i].Err = err
		}
		return results, nil
	}
	results := make([]Result, len(sess.rules))
	for i, r := range sess.rules {
		results[i].Rule = r
	}
	if len(results) == 0 {
		return results, nil
	}
	stats, err := sess.generateAllInto(ctx, results, parallelism)
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
	}
	return results, stats
}

// rebuildThreshold: a full rebuild happens once the dropped-rule count
// exceeds this fraction-ish bound relative to the live table.
func (c *SessionCache) needsRebuild(live int) bool {
	return c.b != nil && c.b.removed > live/2+8
}

// sync brings the compiled library in line with the table's current rule
// set: drop vanished rules, (re)compile new or re-matched ones, rebuild
// wholesale when the garbage threshold is crossed, and construct the new
// session.
func (c *SessionCache) sync() error {
	rules := c.table.Rules()
	if c.b == nil || c.needsRebuild(len(rules)) {
		if c.b != nil {
			c.Stats.Rebuilds++
		}
		c.b = c.g.newLibraryBuilder()
		c.known = make(map[uint64]flowtable.Match, len(rules))
		c.sess = nil // bound to the replaced builder's encoder/library
	}
	c.Stats.Syncs++

	// Drop rules that vanished or changed their match (add-or-replace
	// reuses rule IDs).
	for id, match := range c.known {
		r, ok := c.table.Get(id)
		if ok && r.Match.Equal(match) {
			continue
		}
		c.b.dropRule(id)
		delete(c.known, id)
	}
	// Compile the newcomers, in table priority order (deterministic
	// variable assignment for a given insertion history).
	for _, r := range rules {
		if _, ok := c.known[r.ID]; ok {
			continue
		}
		if err := c.b.addRule(r); err != nil {
			c.sess = nil
			c.valid = false
			return err
		}
		c.known[r.ID] = r.Match
		c.Stats.DeltaRules++
	}

	// The cached session shares the builder's encoder, so a delta
	// recompile only re-anchors it; a fresh session is built only after a
	// rebuild (or on first use).
	if c.sess != nil {
		c.sess.refreshLibrary(c.table, rules)
		return nil
	}
	sess, err := c.b.newSession(c.table, rules)
	if err != nil {
		c.sess = nil
		c.valid = false
		return err
	}
	c.sess = sess
	return nil
}
