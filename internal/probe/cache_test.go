package probe

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

func cacheGen() *Generator {
	return NewGenerator(Config{
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, 1),
		ValidateModel: true,
	})
}

// TestSessionCacheEpochHit: the same epoch returns the identical session
// with no table scan; a bumped epoch re-syncs.
func TestSessionCacheEpochHit(t *testing.T) {
	tb := flowtable.New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		_ = tb.Insert(randomRule(rng, uint64(i)))
	}
	c := cacheGen().NewSessionCache(tb)
	s1, err := c.Session(7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Session(7)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("same epoch must return the cached session")
	}
	if c.Stats.Hits != 1 || c.Stats.Syncs != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 sync", c.Stats)
	}
	if _, err := c.Session(8); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Syncs != 2 {
		t.Fatalf("epoch bump must re-sync: %+v", c.Stats)
	}
}

// TestSessionCacheDeltaRecompile: rule churn recompiles only the changed
// rules, and the cached session's probes classify exactly like a fresh
// session built from scratch after every epoch.
func TestSessionCacheDeltaRecompile(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	tb := flowtable.New()
	g := cacheGen()
	c := g.NewSessionCache(tb)
	epoch := uint64(0)
	nextID := uint64(0)
	for i := 0; i < 12; i++ {
		_ = tb.Insert(randomRule(rng, nextID))
		nextID++
	}
	for round := 0; round < 25; round++ {
		// Mutate: one insert, and one delete every other round.
		_ = tb.Insert(randomRule(rng, nextID))
		nextID++
		if round%2 == 1 {
			rules := tb.Rules()
			_ = tb.Delete(rules[rng.Intn(len(rules))].ID)
		}
		epoch++

		sess, err := c.Session(epoch)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := g.NewSession(tb)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tb.Rules() {
			p1, err1 := sess.Generate(r)
			p2, err2 := fresh.Generate(r)
			if (err1 == nil) != (err2 == nil) ||
				errors.Is(err1, ErrUnmonitorable) != errors.Is(err2, ErrUnmonitorable) {
				t.Fatalf("round %d rule %v: cached err=%v fresh err=%v", round, r, err1, err2)
			}
			if err1 != nil {
				continue
			}
			// Both probes were ValidateModel-checked; also pin that the
			// cached-library probe hits its rule in the live table.
			if hit := tb.Lookup(p1.Header); hit == nil || hit.ID != r.ID {
				t.Fatalf("round %d rule %v: cached probe %v hits %v", round, r, p1.Header, hit)
			}
			_ = p2
		}
	}
	if c.Stats.Syncs != 25 {
		t.Fatalf("want 25 syncs, got %+v", c.Stats)
	}
	// Each sync compiles only the inserted rule(s) — far fewer than a
	// rebuild-per-epoch (25 epochs × ~13 rules) would.
	if c.Stats.DeltaRules > 25+13+26 {
		t.Fatalf("delta recompile compiled too many rules: %+v", c.Stats)
	}
	if c.Stats.Rebuilds == 0 {
		t.Logf("note: garbage threshold never crossed: %+v", c.Stats)
	}
}

// TestSessionCacheRebuildCompaction: enough deletions trigger a full
// rebuild, after which generation still works.
func TestSessionCacheRebuildCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := flowtable.New()
	g := cacheGen()
	c := g.NewSessionCache(tb)
	var ids []uint64
	for i := uint64(0); i < 40; i++ {
		if tb.Insert(randomRule(rng, i)) == nil {
			ids = append(ids, i)
		}
	}
	if _, err := c.Session(1); err != nil {
		t.Fatal(err)
	}
	// Delete most rules one epoch at a time.
	epoch := uint64(1)
	for _, id := range ids[:len(ids)-4] {
		_ = tb.Delete(id)
		epoch++
		if _, err := c.Session(epoch); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.Rebuilds == 0 {
		t.Fatalf("garbage threshold never triggered a rebuild: %+v", c.Stats)
	}
	sess, err := c.Session(epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rules() {
		if _, err := sess.Generate(r); err != nil && !errors.Is(err, ErrUnmonitorable) {
			t.Fatalf("rule %v after rebuild: %v", r, err)
		}
	}
}

// TestSessionCacheGenerateAllMatchesGenerator: the cached sweep equals the
// from-scratch GenerateAll classification for the same table.
func TestSessionCacheGenerateAllMatchesGenerator(t *testing.T) {
	tb, _ := miniTable()
	g := cacheGen()
	c := g.NewSessionCache(tb)
	cached := c.GenerateAll(context.Background(), 1, 2)
	scratch := g.GenerateAll(context.Background(), tb, 2)
	if len(cached) != len(scratch) {
		t.Fatalf("result lengths differ: %d vs %d", len(cached), len(scratch))
	}
	for i := range cached {
		if cached[i].Rule.ID != scratch[i].Rule.ID {
			t.Fatalf("result order differs at %d", i)
		}
		if (cached[i].Err == nil) != (scratch[i].Err == nil) {
			t.Fatalf("rule %d: cached err=%v scratch err=%v", cached[i].Rule.ID, cached[i].Err, scratch[i].Err)
		}
	}
	// A second sweep at the same epoch hits the cached session and plan.
	again := c.GenerateAll(context.Background(), 1, 2)
	for i := range again {
		if (again[i].Err == nil) != (cached[i].Err == nil) {
			t.Fatalf("repeat sweep diverged at %d", i)
		}
		if again[i].Err == nil && again[i].Probe.Header != cached[i].Probe.Header {
			t.Fatalf("repeat sweep header diverged at %d", i)
		}
	}
	if c.Stats.Hits == 0 {
		t.Fatalf("repeat sweep did not hit the cache: %+v", c.Stats)
	}
}
