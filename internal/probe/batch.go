package probe

// Batch probe generation: a worker pool of forked Sessions sweeping every
// rule of a table, used by steady-state monitoring and the experiment
// harnesses. Work is scheduled cluster-by-cluster (see cluster.go): a
// worker claims a whole scope cluster, attaches its shared block prefix
// once, and solves the member rules back to back with learnt-clause,
// phase, and activity reuse between them. Because clusters are planned
// deterministically, processed atomically in member order, and always
// start from an exactly-restored base state, the probe set is bit-
// identical regardless of how many workers run or how clusters are
// scheduled onto them.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"monocle/internal/flowtable"
)

// Result is the outcome of generating a probe for one rule of a table.
type Result struct {
	// Rule is the probed rule (always set).
	Rule *flowtable.Rule
	// Probe is the generated probe; nil when Err is set.
	Probe *Probe
	// Err reports why no probe exists: ErrUnmonitorable,
	// ErrRewritesProbeField, a context error, or an internal failure.
	Err error
}

// WorkerStats aggregates one sweep worker's solver effort, for benchmarks
// and cmd/probegen's -stats reporting.
type WorkerStats struct {
	Worker       int
	Rules        int
	Clusters     int
	Decisions    int64
	Propagations int64
	Conflicts    int64
}

// GenerateAll generates probes for every rule of the table, in the table's
// priority order, fanning the work out over `parallelism` workers
// (parallelism <= 0 means GOMAXPROCS). Each worker holds its own forked
// Session, so the per-table encoding is built once and every solve runs
// incrementally. Cancelling the context stops the sweep early; rules not
// processed by then carry the context's error.
func (g *Generator) GenerateAll(ctx context.Context, table *flowtable.Table, parallelism int) []Result {
	res, _ := g.GenerateAllStats(ctx, table, parallelism)
	return res
}

// GenerateAllStats is GenerateAll surfacing per-worker solver statistics
// (decisions/propagations/conflicts and the cluster/rule split).
func (g *Generator) GenerateAllStats(ctx context.Context, table *flowtable.Table, parallelism int) ([]Result, []WorkerStats) {
	rules := table.Rules()
	results := make([]Result, len(rules))
	for i, r := range rules {
		results[i].Rule = r
	}
	if len(rules) == 0 {
		return results, nil
	}
	root, err := g.NewSession(table)
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results, nil
	}
	stats, err := root.generateAllInto(ctx, results, parallelism)
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
	}
	return results, stats
}

// generateAllInto runs the clustered sweep for the session's table,
// writing into results (indexed like s.rules). The session itself serves
// as worker 0 and is returned to its base state afterwards, so a cached
// session (SessionCache) can sweep repeatedly.
func (s *Session) generateAllInto(ctx context.Context, results []Result, parallelism int) ([]WorkerStats, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	if s.g.cfg.DisableClustering {
		return s.sweepUnclustered(ctx, results, parallelism)
	}

	clusters := s.clusterPlan()
	if parallelism > len(clusters) {
		parallelism = len(clusters)
	}
	sessions, err := s.workerSessions(parallelism)
	if err != nil {
		return nil, err
	}

	stats := make([]WorkerStats, len(sessions))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w, sess := range sessions {
		wg.Add(1)
		go func(w int, sess *Session) {
			defer wg.Done()
			ws := &stats[w]
			ws.Worker = w
			d0, p0, c0 := sess.solver.Stats()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(clusters) {
					break
				}
				c := &clusters[ci]
				if err := ctx.Err(); err != nil {
					for _, m := range c.members {
						results[m.idx].Err = err
					}
					continue
				}
				sess.beginCluster(c)
				for mi := range c.members {
					m := &c.members[mi]
					if err := ctx.Err(); err != nil {
						results[m.idx].Err = err
						continue
					}
					if m.err != nil {
						results[m.idx].Err = m.err
						continue
					}
					results[m.idx].Probe, results[m.idx].Err = sess.generate(s.rules[m.idx], m.scope, m)
					ws.Rules++
				}
				sess.endCluster()
				ws.Clusters++
			}
			d1, p1, c1 := sess.solver.Stats()
			ws.Decisions, ws.Propagations, ws.Conflicts = d1-d0, p1-p0, c1-c0
		}(w, sess)
	}
	wg.Wait()
	return stats, nil
}

// sweepUnclustered is the ablation path (DisableClustering): the PR-1
// engine, one rule at a time through the classic Generate with an exact
// retract to base after every rule.
func (s *Session) sweepUnclustered(ctx context.Context, results []Result, parallelism int) ([]WorkerStats, error) {
	if parallelism > len(s.rules) {
		parallelism = len(s.rules)
	}
	sessions, err := s.workerSessions(parallelism)
	if err != nil {
		return nil, err
	}
	stats := make([]WorkerStats, len(sessions))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w, sess := range sessions {
		wg.Add(1)
		go func(w int, sess *Session) {
			defer wg.Done()
			ws := &stats[w]
			ws.Worker = w
			d0, p0, c0 := sess.solver.Stats()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.rules) {
					break
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				results[i].Probe, results[i].Err = sess.Generate(s.rules[i])
				ws.Rules++
			}
			d1, p1, c1 := sess.solver.Stats()
			ws.Decisions, ws.Propagations, ws.Conflicts = d1-d0, p1-p0, c1-c0
		}(w, sess)
	}
	wg.Wait()
	return stats, nil
}

// workerSessions returns n sessions with s itself first and n-1 forks.
func (s *Session) workerSessions(n int) ([]*Session, error) {
	if n < 1 {
		n = 1
	}
	sessions := make([]*Session, n)
	sessions[0] = s
	for w := 1; w < n; w++ {
		fork, err := s.Fork()
		if err != nil {
			return nil, err
		}
		sessions[w] = fork
	}
	return sessions, nil
}
