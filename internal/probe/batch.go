package probe

// Batch probe generation: a worker pool of forked Sessions sweeping every
// rule of a table, used by steady-state monitoring and the experiment
// harnesses. Each rule's probe is generated from an identical solver state
// (the shared table prefix), so the result set is deterministic regardless
// of how many workers run or how rules are scheduled onto them.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"monocle/internal/flowtable"
)

// Result is the outcome of generating a probe for one rule of a table.
type Result struct {
	// Rule is the probed rule (always set).
	Rule *flowtable.Rule
	// Probe is the generated probe; nil when Err is set.
	Probe *Probe
	// Err reports why no probe exists: ErrUnmonitorable,
	// ErrRewritesProbeField, a context error, or an internal failure.
	Err error
}

// GenerateAll generates probes for every rule of the table, in the table's
// priority order, fanning the work out over `parallelism` workers
// (parallelism <= 0 means GOMAXPROCS). Each worker holds its own forked
// Session, so the per-table encoding is built once and every solve runs
// incrementally. Cancelling the context stops the sweep early; rules not
// processed by then carry the context's error.
func (g *Generator) GenerateAll(ctx context.Context, table *flowtable.Table, parallelism int) []Result {
	rules := table.Rules()
	results := make([]Result, len(rules))
	for i, r := range rules {
		results[i].Rule = r
	}
	if len(rules) == 0 {
		return results
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(rules) {
		parallelism = len(rules)
	}

	root, err := g.NewSession(table)
	if err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}
	sessions := make([]*Session, parallelism)
	sessions[0] = root
	for w := 1; w < parallelism; w++ {
		fork, err := root.Fork()
		if err != nil {
			for i := range results {
				results[i].Err = err
			}
			return results
		}
		sessions[w] = fork
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rules) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				results[i].Probe, results[i].Err = sess.Generate(rules[i])
			}
		}(sess)
	}
	wg.Wait()
	return results
}
