package probe

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"monocle/internal/cnf"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/sat"
)

// ErrUnmonitorable is returned when no probe packet can distinguish the
// presence of the rule (§3.5): the rule is hidden by higher-priority
// rules, or it does not change the observable forwarding behaviour.
var ErrUnmonitorable = errors.New("probe: rule is unmonitorable (constraints unsatisfiable)")

// ErrRewritesProbeField is returned when a rule in scope rewrites one of
// the reserved probing fields, which would break probe collection (§3.2).
var ErrRewritesProbeField = errors.New("probe: rule rewrites a reserved probing field")

// Outcome describes what the data plane does to the probe in one of the
// two hypotheses (rule present / rule absent).
type Outcome struct {
	// Rule is the rule that processes the probe under this hypothesis;
	// nil means table miss.
	Rule *flowtable.Rule
	// Drop reports that the probe is not emitted anywhere.
	Drop bool
	// ECMP reports that exactly one emission from Emissions occurs (the
	// switch picks which); otherwise all Emissions occur.
	ECMP bool
	// Emissions lists (port, rewritten header) pairs.
	Emissions []flowtable.Emission
}

// Matches reports whether an observed (port, header) pair is consistent
// with the outcome.
func (o Outcome) Matches(p flowtable.PortID, h header.Header) bool {
	for _, e := range o.Emissions {
		if e.Port == p && e.Header == h {
			return true
		}
	}
	return false
}

// Probe is a generated monitoring packet together with the outcomes it
// discriminates between.
type Probe struct {
	// RuleID is the probed rule's identifier.
	RuleID uint64
	// Header is the abstract probe packet.
	Header header.Header
	// Present is the expected data plane behaviour when the probed rule
	// is installed and working.
	Present Outcome
	// Absent is the behaviour when the rule is missing (the
	// highest-priority lower rule, or the table miss, processes it).
	Absent Outcome
	// Negative reports that Present expects *no* probe to be collected
	// (drop-rule probing, §3.3), so absence of evidence confirms the
	// rule with a false-positive risk.
	Negative bool
	// Stats carries solver statistics for this generation.
	Stats Stats
}

// Stats captures per-probe generation metrics, used by the Table 2
// reproduction.
type Stats struct {
	Vars        int
	Clauses     int
	Overlapping int
	Decisions   int64
	Conflicts   int64
}

// Config parameterizes a Generator.
type Config struct {
	// Collect is the match the probe must satisfy to be caught at the
	// desired downstream switch (the Collect constraint). A zero Match
	// disables the constraint (useful for unit tests).
	Collect flowtable.Match
	// Domains restricts field values to what the packet crafter can
	// emit; nil uses header.DefaultDomains.
	Domains map[header.FieldID]header.Domain
	// ReservedFields are the probing tag fields; rules rewriting them
	// make probing unsound and are rejected (§3.2).
	ReservedFields []header.FieldID
	// Counting enables the probe-counting exception for
	// multicast-vs-ECMP distinction (§3.4).
	Counting bool
	// MaxChain forwards to the CNF encoder's chain-splitting bound;
	// zero keeps the encoder default.
	MaxChain int
	// SkipOverlapFilter disables the §5.4 optimization and feeds every
	// rule into the constraints (for the ablation benchmark).
	SkipOverlapFilter bool
	// DisableClustering makes GenerateAll sweep rule-by-rule with an exact
	// retract to base after each rule (the PR-1 engine), instead of
	// grouping rules into scope clusters with a shared attached prefix
	// (for the ablation benchmark).
	DisableClustering bool
	// DisableLearntReuse keeps the scope clustering but retracts exactly
	// (dropping learnt clauses, activities, and saved phases) between the
	// rules of a cluster, isolating the learnt-reuse contribution from the
	// shared-prefix one (for the ablation benchmark).
	DisableLearntReuse bool
	// ValidateModel double-checks the SAT model against the table
	// semantics before returning (cheap; recommended).
	ValidateModel bool
}

// Generator turns (table, rule) pairs into probes. It is stateless apart
// from configuration and safe for concurrent use (the paper generates
// probes for different rules in parallel).
type Generator struct {
	cfg Config
}

// NewGenerator returns a Generator with the given configuration.
func NewGenerator(cfg Config) *Generator {
	if cfg.Domains == nil {
		cfg.Domains = header.DefaultDomains()
	}
	return &Generator{cfg: cfg}
}

// missRule synthesizes the virtual lowest-priority rule representing the
// table-miss behaviour, so the Distinguish chain has a well-defined else.
func missRule(miss flowtable.TableMiss) *flowtable.Rule {
	r := &flowtable.Rule{ID: math.MaxUint64, Priority: math.MinInt}
	if miss == flowtable.MissController {
		r.Actions = []flowtable.Action{flowtable.Output(flowtable.PortController)}
	}
	return r
}

// Generate creates a probe for `probed`, which must be present in table.
// It returns ErrUnmonitorable when the constraints are unsatisfiable and
// ErrRewritesProbeField when reserved fields are rewritten in scope.
func (g *Generator) Generate(table *flowtable.Table, probed *flowtable.Rule) (*Probe, error) {
	if err := g.checkReserved(probed); err != nil {
		return nil, err
	}

	var scope []*flowtable.Rule
	if g.cfg.SkipOverlapFilter {
		for _, r := range table.Rules() {
			if r != probed && r.ID != probed.ID {
				scope = append(scope, r)
			}
		}
	} else {
		scope = table.Overlapping(probed)
	}
	for _, r := range scope {
		if err := g.checkReserved(r); err != nil {
			return nil, err
		}
	}

	enc := cnf.NewEncoder(header.TotalBits)
	if g.cfg.MaxChain > 0 {
		enc.MaxChain = g.cfg.MaxChain
	}

	// Hit: match the probed rule, avoid all higher-priority rules.
	enc.Assert(matchFormula(probed.Match))
	var lower []*flowtable.Rule
	for _, r := range scope {
		if r.Priority > probed.Priority {
			enc.Assert(cnf.Not(matchFormula(r.Match)))
		} else if r.Priority < probed.Priority {
			lower = append(lower, r)
		} else {
			// Equal priority with overlap is undefined behaviour;
			// tables reject it, but scope may be unfiltered.
			if r.Match.Overlaps(probed.Match) {
				return nil, fmt.Errorf("probe: rule %d overlaps probed rule %d at equal priority", r.ID, probed.ID)
			}
		}
	}

	// Collect: match the downstream catching rule.
	enc.Assert(matchFormula(g.cfg.Collect))

	// Distinguish: if the probed rule were absent, the probe would be
	// processed by the highest-priority matching lower rule (or the
	// table miss); the outcome must differ. Encoded as the Velev
	// if-then-else chain in decreasing priority order (§5.3).
	sort.SliceStable(lower, func(i, j int) bool { return lower[i].Priority > lower[j].Priority })
	miss := missRule(table.Miss)
	conds := make([]*cnf.Formula, len(lower))
	thens := make([]*cnf.Formula, len(lower))
	for i, r := range lower {
		conds[i] = matchFormula(r.Match)
		thens[i] = diffOutcome(probed, r, g.cfg.Counting)
	}
	enc.Assert(cnf.ITEChain(conds, thens, diffOutcome(probed, miss, g.cfg.Counting)))

	// Limited domains (§5.2): enumerable domains become "one of"
	// constraints; large domains are repaired post-solve via the
	// spare-value lemma.
	for f, d := range g.cfg.Domains {
		if d.Values != nil {
			alts := make([]*cnf.Formula, len(d.Values))
			for i, v := range d.Values {
				alts[i] = fieldEquals(f, v)
			}
			enc.Assert(cnf.Or(alts...))
		}
	}

	if enc.Unsat() {
		return nil, ErrUnmonitorable
	}
	solver := sat.New(enc.NumVars())
	if err := solver.AddDIMACSVector(enc.Vector()); err != nil {
		return nil, fmt.Errorf("probe: internal CNF error: %w", err)
	}
	status, model := solver.Solve()
	if status != sat.Satisfiable {
		return nil, ErrUnmonitorable
	}
	h := header.FromModel(model)

	// Post-solve repairs.
	h, err := g.repairDomains(h, table, probed)
	if err != nil {
		return nil, err
	}
	h = canonicalizeExcluded(h)

	decisions, _, conflicts := solver.Stats()
	p := &Probe{
		RuleID: probed.ID,
		Header: h,
		Stats: Stats{
			Vars:        enc.NumVars(),
			Clauses:     enc.NumClauses(),
			Overlapping: len(scope),
			Decisions:   decisions,
			Conflicts:   conflicts,
		},
	}
	p.Present = outcomeOf(probed, h)
	p.Absent = g.absentOutcome(table, probed, h)
	p.Negative = p.Present.Drop

	if g.cfg.ValidateModel {
		if err := g.validate(table, probed, p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (g *Generator) checkReserved(r *flowtable.Rule) error {
	for _, a := range r.Actions {
		if a.Kind != flowtable.ActionSetField {
			continue
		}
		for _, f := range g.cfg.ReservedFields {
			if a.Field == f {
				return fmt.Errorf("%w: rule %d sets %s", ErrRewritesProbeField, r.ID, f)
			}
		}
	}
	return nil
}

// repairDomains applies the spare-value substitution lemma to fields with
// large (non-enumerated) domains whose solved value is invalid: replacing
// the value with a spare (valid, unused by any rule) value preserves every
// Matches test. The lemma requires the field to be fully wildcarded or
// fully specified in every rule; callers' rule sets satisfy this for
// dl_vlan, the only large constrained domain here.
func (g *Generator) repairDomains(h header.Header, table *flowtable.Table, probed *flowtable.Rule) (header.Header, error) {
	for f, d := range g.cfg.Domains {
		if d.Values != nil || d.Contains(h.Get(f)) {
			continue
		}
		used := map[uint64]bool{}
		for _, r := range table.View() {
			t := r.Match[f]
			if t.IsExact(f) {
				used[t.Value] = true
			} else if !t.IsWildcard() {
				return h, fmt.Errorf("probe: field %s partially masked in rule %d; spare-value lemma inapplicable", f, r.ID)
			}
		}
		// The collect match may also pin the field.
		if ct := g.cfg.Collect[f]; !ct.IsWildcard() {
			used[ct.Value] = true
		}
		_ = probed
		spare, ok := d.Spare(used, header.WidthMask(f))
		if !ok {
			return h, fmt.Errorf("probe: no spare value for field %s", f)
		}
		h.Set(f, spare)
	}
	return h, nil
}

// canonicalizeExcluded zeroes conditionally-excluded fields (§5.2): this
// does not change any Matches value for well-formed rules (see the paper's
// second lemma), and gives the packet crafter a consistent view.
func canonicalizeExcluded(h header.Header) header.Header {
	deps := header.Dependencies()
	for f, dep := range deps {
		ok := false
		for _, pv := range dep.ParentValues {
			if h.Get(dep.Parent) == pv {
				ok = true
				break
			}
		}
		if !ok {
			h.Set(f, 0)
		}
	}
	if header.PCPRequiresTag(h.Get(header.VlanID)) {
		h.Set(header.VlanPCP, 0)
	}
	return h
}

// outcomeOf evaluates what rule r does with probe h.
func outcomeOf(r *flowtable.Rule, h header.Header) Outcome {
	o := Outcome{Rule: r, ECMP: r.IsECMP()}
	if r.IsDrop() {
		o.Drop = true
		return o
	}
	if o.ECMP {
		// One emission per candidate port; exactly one will occur.
		for _, a := range r.Actions {
			if a.Kind != flowtable.ActionGroupECMP {
				continue
			}
			w, _ := r.RewriteOnPort(a.Ports[0])
			for _, p := range a.Ports {
				o.Emissions = append(o.Emissions, flowtable.Emission{Port: p, Header: w.Apply(h)})
			}
		}
		return o
	}
	o.Emissions = r.Apply(h, nil)
	return o
}

// absentOutcome computes the probe's fate if the probed rule were missing
// from the data plane: the highest-priority other matching rule, or the
// table miss.
func (g *Generator) absentOutcome(table *flowtable.Table, probed *flowtable.Rule, h header.Header) Outcome {
	for _, r := range table.View() {
		if r == probed || r.ID == probed.ID {
			continue
		}
		if r.Match.Covers(h) && r.Priority < probed.Priority {
			return outcomeOf(r, h)
		}
	}
	miss := missRule(table.Miss)
	o := outcomeOf(miss, h)
	o.Rule = nil
	return o
}

// validate cross-checks the generated probe against table semantics: it
// must hit the probed rule, satisfy Collect, and the two outcomes must be
// distinguishable.
func (g *Generator) validate(table *flowtable.Table, probed *flowtable.Rule, p *Probe) error {
	if !probed.Match.Covers(p.Header) {
		return fmt.Errorf("probe: generated probe does not match probed rule %d", probed.ID)
	}
	if got := table.Lookup(p.Header); got != nil && got.ID != probed.ID && got.Priority > probed.Priority {
		return fmt.Errorf("probe: probe hits higher-priority rule %d", got.ID)
	}
	zero := flowtable.Match{}
	if g.cfg.Collect != zero && !g.cfg.Collect.Covers(p.Header) {
		return fmt.Errorf("probe: probe violates Collect constraint")
	}
	if !distinguishable(p.Present, p.Absent) {
		return fmt.Errorf("probe: outcomes not distinguishable for rule %d", probed.ID)
	}
	return nil
}

// distinguishable reports whether no adversarial choice of ECMP ports can
// make the two outcomes produce identical observations.
func distinguishable(a, b Outcome) bool {
	obsA := observations(a)
	obsB := observations(b)
	// Deterministic outcomes produce exactly one observation set each;
	// ECMP outcomes produce one per candidate. The outcomes are
	// distinguishable iff the observation families are disjoint.
	for _, oa := range obsA {
		for _, ob := range obsB {
			if equalObs(oa, ob) {
				return false
			}
		}
	}
	return true
}

type obs []flowtable.Emission

// observations expands an Outcome into the family of possible observation
// sets (singleton for deterministic rules, one per port for ECMP).
func observations(o Outcome) []obs {
	if o.Drop {
		return []obs{nil}
	}
	if !o.ECMP {
		cp := make(obs, len(o.Emissions))
		copy(cp, o.Emissions)
		sortObs(cp)
		return []obs{cp}
	}
	var out []obs
	for _, e := range o.Emissions {
		out = append(out, obs{e})
	}
	return out
}

func sortObs(o obs) {
	sort.Slice(o, func(i, j int) bool {
		if o[i].Port != o[j].Port {
			return o[i].Port < o[j].Port
		}
		return o[i].Header.String() < o[j].Header.String()
	})
}

func equalObs(a, b obs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
