package probe

// Scope clustering for the batch sweep: rules whose overlap scopes attach
// mostly the same compiled blocks are grouped so the shared blocks are
// attached once per cluster instead of once per rule, and so learnt
// clauses derived from the shared prefix can be carried from rule to rule
// (sat.RetractToReuse).
//
// The plan is a pure function of the table and the compiled library: rule
// scope signatures are sorted lexicographically (similar scopes become
// neighbours) and grouped greedily while the running block intersection
// stays large. Each cluster is later processed atomically by exactly one
// worker, in member order, starting from an exactly-restored base state —
// which is what keeps GenerateAll's probe set bit-identical across worker
// counts even though solver state now flows between the rules of a
// cluster.

import (
	"slices"

	"monocle/internal/flowtable"
)

// maxClusterSize bounds how many rules share one cluster checkpoint. Large
// clusters amortize the prefix attach further but accumulate more learnt
// clauses between exact restores (the ReduceDB cap bounds those).
const maxClusterSize = 32

// clusterMember is one rule of a cluster with its planning-time context.
type clusterMember struct {
	idx    int               // index into the session's rule slice
	scope  []*flowtable.Rule // precomputed overlap scope
	err    error             // reserved-field violation found at planning
	suffix []int32           // scope blocks beyond the cluster prefix
}

// cluster is a group of rules solved behind one shared-prefix checkpoint.
type cluster struct {
	prefix  []int32 // blocks every member needs (attached once)
	members []clusterMember
}

// clusterPlan returns the session's cluster plan, computing it on first
// use. Only root sessions plan; forked workers receive cluster values.
func (s *Session) clusterPlan() []cluster {
	if s.plan == nil {
		s.plan = s.planClusters()
	}
	return s.plan
}

func (s *Session) planClusters() []cluster {
	n := len(s.rules)
	members := make([]clusterMember, n)
	sigs := make([][]int32, n)
	for i, r := range s.rules {
		scope, err := s.scopeFor(r)
		members[i] = clusterMember{idx: i, scope: scope, err: err}
		if err == nil {
			sigs[i] = s.sigOf(scope)
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return compareSig(sigs[a], sigs[b])
	})

	out := make([]cluster, 0, n/maxClusterSize+1)
	for i := 0; i < n; {
		seed := order[i]
		cur := cluster{members: []clusterMember{members[seed]}}
		prefix := sigs[seed]
		seedLen := len(prefix)
		i++
		for i < n && len(cur.members) < maxClusterSize {
			next := order[i]
			inter := intersectSig(prefix, sigs[next])
			// Extend only while the shared prefix keeps covering at least
			// half of both the seed's scope and the incoming rule's scope;
			// otherwise the members' suffixes outgrow the sharing win.
			if 2*len(inter) < seedLen || 2*len(inter) < len(sigs[next]) {
				break
			}
			prefix = inter
			cur.members = append(cur.members, members[next])
			i++
		}
		cur.prefix = prefix
		for m := range cur.members {
			cur.members[m].suffix = subtractSig(sigs[cur.members[m].idx], prefix)
		}
		out = append(out, cur)
	}
	return out
}

// sigOf is a rule's scope signature: the sorted, deduplicated block
// indices its overlap scope attaches. Dedup and ordering run through a
// stamp array plus an id-range scan (block ids are dense and clustered),
// which beats sorting the multiset for the table sizes swept here.
func (s *Session) sigOf(scope []*flowtable.Rule) []int32 {
	if len(s.sigStamp) < len(s.lib.blocks) {
		s.sigStamp = make([]uint32, len(s.lib.blocks))
	}
	s.sigGen++
	gen := s.sigGen
	count := 0
	lo, hi := int32(len(s.lib.blocks)), int32(-1)
	for _, r := range scope {
		for _, bi := range s.lib.ruleBlocks[r.ID] {
			if s.sigStamp[bi] != gen {
				s.sigStamp[bi] = gen
				count++
				if bi < lo {
					lo = bi
				}
				if bi > hi {
					hi = bi
				}
			}
		}
	}
	sig := make([]int32, 0, count)
	for bi := lo; bi <= hi; bi++ {
		if s.sigStamp[bi] == gen {
			sig = append(sig, bi)
		}
	}
	return sig
}

// compareSig orders signatures lexicographically (shorter prefix first).
func compareSig(a, b []int32) int {
	return slices.Compare(a, b)
}

// intersectSig merges two sorted signatures into their intersection.
func intersectSig(a, b []int32) []int32 {
	out := make([]int32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// subtractSig returns the sorted elements of a not present in b.
func subtractSig(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			continue
		}
		out = append(out, a[i])
		i++
	}
	return out
}
