// Package probe implements Monocle's primary contribution: generating data
// plane probe packets for a monitored rule by formulating the switch
// forwarding logic as a Boolean satisfiability problem (§3, §5).
//
// A probe for rule R_probed must
//
//	Hit:         match R_probed and no higher-priority rule,
//	Distinguish: behave observably differently depending on whether
//	             R_probed is installed, whatever lower-priority rule
//	             would process it otherwise, and
//	Collect:     match the downstream probe-catching rule.
//
// Constraints are built over the abstract header bits (package header),
// encoded to CNF with the if-then-else chain construction (package cnf) and
// solved with the bundled SAT solver (package sat). The SAT model is then
// translated into a valid abstract packet (limited field domains, the
// spare-value substitution lemma, conditionally-excluded field
// elimination — §5.2).
package probe

import (
	"monocle/internal/cnf"
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// matchFormula returns the Table-3 encoding of Matches(P, m): a
// conjunction of one literal per constrained header bit. The wildcard
// match yields the constant true.
func matchFormula(m flowtable.Match) *cnf.Formula {
	var lits []*cnf.Formula
	for f := header.FieldID(0); f < header.NumFields; f++ {
		t := m[f]
		if t.IsWildcard() {
			continue
		}
		lits = append(lits, ternaryLits(f, t)...)
	}
	return cnf.And(lits...)
}

// ternaryLits returns the literal formulas matching one field's ternary:
// the single-field slice of the Table-3 encoding.
func ternaryLits(f header.FieldID, t header.Ternary) []*cnf.Formula {
	w := header.Width(f)
	var lits []*cnf.Formula
	for b := 0; b < w; b++ {
		maskBit := t.Mask >> (w - 1 - b) & 1
		if maskBit == 0 {
			continue
		}
		v := header.BitVar(f, b)
		if t.Value>>(w-1-b)&1 == 1 {
			lits = append(lits, cnf.Lit(v))
		} else {
			lits = append(lits, cnf.Lit(-v))
		}
	}
	return lits
}

// fieldEquals returns the formula pinning field f to value v.
func fieldEquals(f header.FieldID, v uint64) *cnf.Formula {
	w := header.Width(f)
	lits := make([]*cnf.Formula, 0, w)
	for b := 0; b < w; b++ {
		bv := header.BitVar(f, b)
		if v>>(w-1-b)&1 == 1 {
			lits = append(lits, cnf.Lit(bv))
		} else {
			lits = append(lits, cnf.Lit(-bv))
		}
	}
	return cnf.And(lits...)
}

// portSet is a small helper over sorted forwarding sets.
type portSet map[flowtable.PortID]bool

func toSet(ports []flowtable.PortID) portSet {
	s := make(portSet, len(ports))
	for _, p := range ports {
		s[p] = true
	}
	return s
}

func setEqual(a, b portSet) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func intersect(a, b portSet) []flowtable.PortID {
	var out []flowtable.PortID
	for p := range a {
		if b[p] {
			out = append(out, p)
		}
	}
	return out
}

func difference(a, b portSet) []flowtable.PortID {
	var out []flowtable.PortID
	for p := range a {
		if !b[p] {
			out = append(out, p)
		}
	}
	return out
}

// diffPorts implements the §3.4 DiffPorts case analysis. Drop and unicast
// rules are multicast rules with zero / one element in their forwarding
// set; a single-port ECMP group is likewise deterministic.
func diffPorts(r1, r2 *flowtable.Rule, counting bool) bool {
	f1 := toSet(r1.ForwardingSet())
	f2 := toSet(r2.ForwardingSet())
	e1, e2 := r1.IsECMP(), r2.IsECMP()
	switch {
	case !e1 && !e2: // both multicast-like (incl. unicast, drop)
		return !setEqual(f1, f2)
	case e1 && e2: // both ECMP
		return len(intersect(f1, f2)) == 0
	case !e1: // r1 multicast, r2 ECMP
		if len(difference(f1, f2)) != 0 {
			return true
		}
		// Counting exception: an ECMP rule always emits exactly one
		// probe; a multicast rule emits |F1| ≠ 1 of them.
		return counting && len(f1) != 1
	default: // r1 ECMP, r2 multicast
		if len(difference(f2, f1)) != 0 {
			return true
		}
		return counting && len(f2) != 1
	}
}

// bitDiffOnPort returns the Table-4 formula: true iff rules r1 and r2
// rewrite at least one bit of the probe differently as observed on port p.
func bitDiffOnPort(r1, r2 *flowtable.Rule, p flowtable.PortID) *cnf.Formula {
	w1, ok1 := r1.RewriteOnPort(p)
	w2, ok2 := r2.RewriteOnPort(p)
	if !ok1 || !ok2 {
		// One of the rules never emits on p; location alone
		// distinguishes, which DiffPorts already accounts for.
		return cnf.False()
	}
	var terms []*cnf.Formula
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !w1.Set[f] && !w2.Set[f] {
			continue // both pass the whole field through
		}
		width := header.Width(f)
		for b := 0; b < width; b++ {
			f1, v1 := w1.BitRewrite(f, b)
			f2, v2 := w2.BitRewrite(f, b)
			switch {
			case f1 && f2:
				if v1 != v2 {
					return cnf.True() // bit always differs
				}
			case f1 != f2:
				// One side fixes the bit, the other passes P[i]
				// through: they differ iff P[i] disagrees with the
				// fixed value.
				fixedVal := v1
				if f2 {
					fixedVal = v2
				}
				bv := header.BitVar(f, b)
				if fixedVal {
					terms = append(terms, cnf.Lit(-bv))
				} else {
					terms = append(terms, cnf.Lit(bv))
				}
			}
		}
	}
	return cnf.Or(terms...)
}

// diffRewrite implements the §3.4 DiffRewrite case analysis over the ports
// in F1 ∩ F2. Drop rules never output, so their rewrites are meaningless
// and DiffRewrite is defined false (footnote 2).
func diffRewrite(r1, r2 *flowtable.Rule) *cnf.Formula {
	if r1.IsDrop() || r2.IsDrop() {
		return cnf.False()
	}
	common := intersect(toSet(r1.ForwardingSet()), toSet(r2.ForwardingSet()))
	if len(common) == 0 {
		return cnf.False()
	}
	terms := make([]*cnf.Formula, 0, len(common))
	for _, p := range common {
		terms = append(terms, bitDiffOnPort(r1, r2, p))
	}
	if !r1.IsECMP() && !r2.IsECMP() {
		// Both deterministic: a single differing port suffices.
		return cnf.Or(terms...)
	}
	// ECMP involved: the difference must be observable no matter which
	// common port the ECMP rule chooses.
	return cnf.And(terms...)
}

// diffOutcome is DiffOutcome(P, r1, r2) := DiffPorts ∨ DiffRewrite.
// DiffPorts depends only on the rules, so it folds to a constant before
// SAT encoding (Appendix B note).
func diffOutcome(r1, r2 *flowtable.Rule, counting bool) *cnf.Formula {
	if diffPorts(r1, r2, counting) {
		return cnf.True()
	}
	return diffRewrite(r1, r2)
}
