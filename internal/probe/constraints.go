// Package probe implements Monocle's primary contribution: generating data
// plane probe packets for a monitored rule by formulating the switch
// forwarding logic as a Boolean satisfiability problem (§3, §5).
//
// A probe for rule R_probed must
//
//	Hit:         match R_probed and no higher-priority rule,
//	Distinguish: behave observably differently depending on whether
//	             R_probed is installed, whatever lower-priority rule
//	             would process it otherwise, and
//	Collect:     match the downstream probe-catching rule.
//
// Constraints are built over the abstract header bits (package header),
// encoded to CNF with the if-then-else chain construction (package cnf) and
// solved with the bundled SAT solver (package sat). The SAT model is then
// translated into a valid abstract packet (limited field domains, the
// spare-value substitution lemma, conditionally-excluded field
// elimination — §5.2).
package probe

import (
	"monocle/internal/cnf"
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// matchFormula returns the Table-3 encoding of Matches(P, m): a
// conjunction of one literal per constrained header bit. The wildcard
// match yields the constant true.
func matchFormula(m flowtable.Match) *cnf.Formula {
	var lits []*cnf.Formula
	for f := header.FieldID(0); f < header.NumFields; f++ {
		t := m[f]
		if t.IsWildcard() {
			continue
		}
		lits = append(lits, ternaryLits(f, t)...)
	}
	return cnf.And(lits...)
}

// ternaryLits returns the literal formulas matching one field's ternary:
// the single-field slice of the Table-3 encoding.
func ternaryLits(f header.FieldID, t header.Ternary) []*cnf.Formula {
	w := header.Width(f)
	var lits []*cnf.Formula
	for b := 0; b < w; b++ {
		maskBit := t.Mask >> (w - 1 - b) & 1
		if maskBit == 0 {
			continue
		}
		v := header.BitVar(f, b)
		if t.Value>>(w-1-b)&1 == 1 {
			lits = append(lits, cnf.Lit(v))
		} else {
			lits = append(lits, cnf.Lit(-v))
		}
	}
	return lits
}

// fieldEquals returns the formula pinning field f to value v.
func fieldEquals(f header.FieldID, v uint64) *cnf.Formula {
	w := header.Width(f)
	lits := make([]*cnf.Formula, 0, w)
	for b := 0; b < w; b++ {
		bv := header.BitVar(f, b)
		if v>>(w-1-b)&1 == 1 {
			lits = append(lits, cnf.Lit(bv))
		} else {
			lits = append(lits, cnf.Lit(-bv))
		}
	}
	return cnf.And(lits...)
}

// fwdView caches a rule's forwarding analysis (sorted forwarding set and
// ECMP-ness) so the O(rules²) Distinguish term construction of a sweep
// does not rebuild it per rule pair. All port iteration runs over the
// sorted slice, so every derived formula has deterministic term order.
type fwdView struct {
	ports []flowtable.PortID // sorted forwarding set
	ecmp  bool
}

func newFwdView(r *flowtable.Rule) *fwdView {
	return &fwdView{ports: r.ForwardingSet(), ecmp: r.IsECMP()}
}

// has reports membership in the sorted forwarding set (sets here have at
// most a handful of ports; linear scan beats a map).
func (v *fwdView) has(p flowtable.PortID) bool {
	for _, q := range v.ports {
		if q == p {
			return true
		}
		if q > p {
			return false
		}
	}
	return false
}

func portsEqual(a, b *fwdView) bool {
	if len(a.ports) != len(b.ports) {
		return false
	}
	for i := range a.ports {
		if a.ports[i] != b.ports[i] {
			return false
		}
	}
	return true
}

// countShared returns |a ∩ b| over the sorted port slices.
func countShared(a, b *fwdView) int {
	n, i, j := 0, 0, 0
	for i < len(a.ports) && j < len(b.ports) {
		switch {
		case a.ports[i] == b.ports[j]:
			n++
			i++
			j++
		case a.ports[i] < b.ports[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// coveredBy reports a ⊆ b.
func coveredBy(a, b *fwdView) bool {
	return countShared(a, b) == len(a.ports)
}

// diffPorts implements the §3.4 DiffPorts case analysis. Drop and unicast
// rules are multicast rules with zero / one element in their forwarding
// set; a single-port ECMP group is likewise deterministic.
func diffPorts(a, b *fwdView, counting bool) bool {
	switch {
	case !a.ecmp && !b.ecmp: // both multicast-like (incl. unicast, drop)
		return !portsEqual(a, b)
	case a.ecmp && b.ecmp: // both ECMP
		return countShared(a, b) == 0
	case !a.ecmp: // a multicast, b ECMP
		if !coveredBy(a, b) {
			return true
		}
		// Counting exception: an ECMP rule always emits exactly one
		// probe; a multicast rule emits |F1| ≠ 1 of them.
		return counting && len(a.ports) != 1
	default: // a ECMP, b multicast
		if !coveredBy(b, a) {
			return true
		}
		return counting && len(b.ports) != 1
	}
}

// bitDiffOnPort returns the Table-4 formula: true iff rules r1 and r2
// rewrite at least one bit of the probe differently as observed on port p.
func bitDiffOnPort(r1, r2 *flowtable.Rule, p flowtable.PortID) *cnf.Formula {
	w1, ok1 := r1.RewriteOnPort(p)
	w2, ok2 := r2.RewriteOnPort(p)
	if !ok1 || !ok2 {
		// One of the rules never emits on p; location alone
		// distinguishes, which DiffPorts already accounts for.
		return cnf.False()
	}
	var terms []*cnf.Formula
	for f := header.FieldID(0); f < header.NumFields; f++ {
		if !w1.Set[f] && !w2.Set[f] {
			continue // both pass the whole field through
		}
		width := header.Width(f)
		for b := 0; b < width; b++ {
			f1, v1 := w1.BitRewrite(f, b)
			f2, v2 := w2.BitRewrite(f, b)
			switch {
			case f1 && f2:
				if v1 != v2 {
					return cnf.True() // bit always differs
				}
			case f1 != f2:
				// One side fixes the bit, the other passes P[i]
				// through: they differ iff P[i] disagrees with the
				// fixed value.
				fixedVal := v1
				if f2 {
					fixedVal = v2
				}
				bv := header.BitVar(f, b)
				if fixedVal {
					terms = append(terms, cnf.Lit(-bv))
				} else {
					terms = append(terms, cnf.Lit(bv))
				}
			}
		}
	}
	return cnf.Or(terms...)
}

// diffRewrite implements the §3.4 DiffRewrite case analysis over the ports
// in F1 ∩ F2, in sorted port order (deterministic term order). Drop rules
// never output, so their rewrites are meaningless and DiffRewrite is
// defined false (footnote 2).
func diffRewrite(r1, r2 *flowtable.Rule, v1, v2 *fwdView) *cnf.Formula {
	if len(v1.ports) == 0 || len(v2.ports) == 0 {
		return cnf.False() // a drop rule is involved
	}
	var terms []*cnf.Formula
	for _, p := range v1.ports {
		if v2.has(p) {
			terms = append(terms, bitDiffOnPort(r1, r2, p))
		}
	}
	if len(terms) == 0 {
		return cnf.False()
	}
	if !v1.ecmp && !v2.ecmp {
		// Both deterministic: a single differing port suffices.
		return cnf.Or(terms...)
	}
	// ECMP involved: the difference must be observable no matter which
	// common port the ECMP rule chooses.
	return cnf.And(terms...)
}

// diffOutcome is DiffOutcome(P, r1, r2) := DiffPorts ∨ DiffRewrite.
// DiffPorts depends only on the rules, so it folds to a constant before
// SAT encoding (Appendix B note).
func diffOutcome(r1, r2 *flowtable.Rule, counting bool) *cnf.Formula {
	return diffOutcomeView(r1, r2, newFwdView(r1), newFwdView(r2), counting)
}

// diffOutcomeView is diffOutcome with the rules' forwarding views supplied
// by the caller (sessions cache one per table rule).
func diffOutcomeView(r1, r2 *flowtable.Rule, v1, v2 *fwdView, counting bool) *cnf.Formula {
	if diffPorts(v1, v2, counting) {
		return cnf.True()
	}
	return diffRewrite(r1, r2, v1, v2)
}
