package probe

import (
	"errors"
	"math/rand"
	"testing"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

func ip(a, b, c, d uint64) uint64 { return a<<24 | b<<16 | c<<8 | d }

// newTable builds a flowtable and fails the test on insert errors.
func newTable(t *testing.T, miss flowtable.TableMiss, rules ...*flowtable.Rule) *flowtable.Table {
	t.Helper()
	tb := flowtable.New()
	tb.Miss = miss
	for _, r := range rules {
		if err := tb.Insert(r); err != nil {
			t.Fatalf("insert %v: %v", r, err)
		}
	}
	return tb
}

func gen() *Generator {
	return NewGenerator(Config{ValidateModel: true})
}

func srcMatch(a, b, c, d uint64, plen int) flowtable.Match {
	return flowtable.MatchAll().With(header.IPSrc, header.Prefix(header.IPSrc, ip(a, b, c, d), plen))
}

// TestPaperSection31Example reproduces the paper's §3.1 example: a naive
// "avoid lower-priority rules with the same outcome" would find no probe,
// but the correct Distinguish constraint admits P=(10.0.0.1, 10.0.0.2).
func TestPaperSection31Example(t *testing.T) {
	lowest := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	lower := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 1, 32),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	probed := &flowtable.Rule{ID: 3, Priority: 3,
		Match:   srcMatch(10, 0, 0, 1, 32).WithExact(header.IPDst, ip(10, 0, 0, 2)),
		Actions: []flowtable.Action{flowtable.Output(1)}}
	tb := newTable(t, flowtable.MissDrop, lowest, lower, probed)
	p, err := gen().Generate(tb, probed)
	if err != nil {
		t.Fatalf("expected a probe to exist: %v", err)
	}
	if p.Header.Get(header.IPSrc) != ip(10, 0, 0, 1) || p.Header.Get(header.IPDst) != ip(10, 0, 0, 2) {
		t.Fatalf("probe must be the unique flow: %v", p.Header)
	}
	// Present: forwarded to port 1 by probed; Absent: port 2 via lower.
	if p.Present.Emissions[0].Port != 1 {
		t.Fatalf("present port %d", p.Present.Emissions[0].Port)
	}
	if p.Absent.Rule != lower || p.Absent.Emissions[0].Port != 2 {
		t.Fatalf("absent outcome %+v", p.Absent)
	}
}

// TestUnmonitorableSameOutcome: a high-priority rule forwarding to the same
// port as the only underlying rule cannot be probed (§3.2 lead-in).
func TestUnmonitorableSameOutcome(t *testing.T) {
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	high := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 1, 32),
		Actions: []flowtable.Action{flowtable.Output(1)}}
	tb := newTable(t, flowtable.MissDrop, low, high)
	_, err := gen().Generate(tb, high)
	if !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("got %v, want ErrUnmonitorable", err)
	}
}

// TestRewriteMakesMonitorable: the same layout becomes monitorable when the
// high-priority rule rewrites ToS, and the probe must carry ToS != voice.
func TestRewriteMakesMonitorable(t *testing.T) {
	const voice = 0x2e
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	high := &flowtable.Rule{ID: 2, Priority: 2,
		Match: srcMatch(10, 0, 0, 1, 32),
		Actions: []flowtable.Action{
			flowtable.SetField(header.IPTos, voice), flowtable.Output(1)}}
	tb := newTable(t, flowtable.MissDrop, low, high)
	p, err := gen().Generate(tb, high)
	if err != nil {
		t.Fatalf("rewrite rule must be monitorable: %v", err)
	}
	if p.Header.Get(header.IPTos) == voice {
		t.Fatalf("probe ToS %#x must differ from the rewritten value", p.Header.Get(header.IPTos))
	}
	// Present: ToS rewritten; Absent: ToS unchanged — same port.
	if p.Present.Emissions[0].Header.Get(header.IPTos) != voice {
		t.Fatal("present outcome must carry the rewrite")
	}
	if p.Absent.Emissions[0].Header.Get(header.IPTos) == voice {
		t.Fatal("absent outcome must not carry the rewrite")
	}
}

// TestHiddenRuleUnmonitorable: a backup rule fully shadowed by a
// higher-priority rule has no probe (§3.5).
func TestHiddenRuleUnmonitorable(t *testing.T) {
	primary := &flowtable.Rule{ID: 1, Priority: 5,
		Match:   srcMatch(10, 0, 0, 0, 24),
		Actions: []flowtable.Action{flowtable.Output(1)}}
	backup := &flowtable.Rule{ID: 2, Priority: 4,
		Match:   srcMatch(10, 0, 0, 0, 24),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, primary, backup)
	_, err := gen().Generate(tb, backup)
	if !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("got %v, want ErrUnmonitorable", err)
	}
}

// TestDropRuleNegativeProbe: drop rules are distinguishable from the
// forwarding default and flagged for negative probing (§3.3).
func TestDropRuleNegativeProbe(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	drop := &flowtable.Rule{ID: 2, Priority: 2, Match: srcMatch(10, 0, 0, 0, 8)}
	tb := newTable(t, flowtable.MissDrop, def, drop)
	p, err := gen().Generate(tb, drop)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Negative || !p.Present.Drop {
		t.Fatalf("drop probe must be negative: %+v", p.Present)
	}
	if p.Absent.Drop || p.Absent.Emissions[0].Port != 1 {
		t.Fatalf("absent must forward via default: %+v", p.Absent)
	}
}

// TestDropVsMissDrop: a drop rule over a drop table-miss is unmonitorable.
func TestDropVsMissDrop(t *testing.T) {
	drop := &flowtable.Rule{ID: 1, Priority: 2, Match: srcMatch(10, 0, 0, 0, 8)}
	tb := newTable(t, flowtable.MissDrop, drop)
	_, err := gen().Generate(tb, drop)
	if !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("got %v", err)
	}
	// ...but monitorable when the miss punts to the controller.
	tb2 := newTable(t, flowtable.MissController, drop.Clone())
	r, _ := tb2.Get(1)
	if _, err := gen().Generate(tb2, r); err != nil {
		t.Fatalf("drop over controller-miss must be monitorable: %v", err)
	}
}

// TestCollectConstraint: the probe must match the downstream catching rule.
func TestCollectConstraint(t *testing.T) {
	const tag = 7
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	probed := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, probed)
	g := NewGenerator(Config{
		ValidateModel: true,
		Collect:       flowtable.MatchAll().WithExact(header.VlanID, tag),
	})
	p, err := g.Generate(tb, probed)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Get(header.VlanID) != tag {
		t.Fatalf("probe VLAN %#x, want catch tag %d", p.Header.Get(header.VlanID), tag)
	}
}

// TestCatchRuleAvoidedAtProbedSwitch: the probed switch's own catching
// rules are ordinary high-priority rules the probe must avoid.
func TestCatchRuleAvoidedAtProbedSwitch(t *testing.T) {
	// Switch i=3 catches probes of neighbours 7 and 9 (strategy 1).
	catch7 := &flowtable.Rule{ID: 100, Priority: 1000,
		Match:   flowtable.MatchAll().WithExact(header.VlanID, 7),
		Actions: []flowtable.Action{flowtable.Output(flowtable.PortController)}}
	catch9 := &flowtable.Rule{ID: 101, Priority: 1000,
		Match:   flowtable.MatchAll().WithExact(header.VlanID, 9),
		Actions: []flowtable.Action{flowtable.Output(flowtable.PortController)}}
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	probed := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, catch7, catch9, def, probed)
	g := NewGenerator(Config{
		ValidateModel: true,
		// The probe carries this switch's own id (3), which neighbours
		// catch.
		Collect: flowtable.MatchAll().WithExact(header.VlanID, 3),
	})
	p, err := g.Generate(tb, probed)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Header.Get(header.VlanID); v != 3 {
		t.Fatalf("VLAN=%#x", v)
	}
}

// TestMulticastVsUnicastDiffPorts: multicast {1,2} vs unicast {1} differ in
// forwarding sets, so a probe exists.
func TestMulticastVsUnicastDiffPorts(t *testing.T) {
	uni := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	mc := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(1), flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, uni, mc)
	p, err := gen().Generate(tb, mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Present.Emissions) != 2 {
		t.Fatalf("multicast present emissions: %+v", p.Present)
	}
}

// TestECMPvsECMPIntersecting: two ECMP rules with intersecting forwarding
// sets and identical rewrites cannot be distinguished.
func TestECMPvsECMPIntersecting(t *testing.T) {
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.ECMP(1, 2)}}
	high := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.ECMP(2, 3)}}
	tb := newTable(t, flowtable.MissDrop, low, high)
	_, err := gen().Generate(tb, high)
	if !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("intersecting ECMP sets: got %v", err)
	}
}

// TestECMPvsECMPDisjoint: disjoint ECMP sets are distinguishable.
func TestECMPvsECMPDisjoint(t *testing.T) {
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.ECMP(1, 2)}}
	high := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.ECMP(3, 4)}}
	tb := newTable(t, flowtable.MissDrop, low, high)
	p, err := gen().Generate(tb, high)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Present.ECMP || len(p.Present.Emissions) != 2 {
		t.Fatalf("present: %+v", p.Present)
	}
}

// TestECMPRewriteAllPortsMustDiffer: with an ECMP rule involved, the
// rewrite difference must hold on every common port (§3.4).
func TestECMPRewriteAllPortsMustDiffer(t *testing.T) {
	// low ECMP {1,2} with no rewrite; high ECMP {1,2} rewriting ToS on
	// both ports → distinguishable by rewrite on any choice.
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.ECMP(1, 2)}}
	high := &flowtable.Rule{ID: 2, Priority: 2,
		Match: srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{
			flowtable.SetField(header.IPTos, 0x2e), flowtable.ECMP(1, 2)}}
	tb := newTable(t, flowtable.MissDrop, low, high)
	p, err := gen().Generate(tb, high)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Get(header.IPTos) == 0x2e {
		t.Fatal("probe ToS must differ from rewrite")
	}
}

// TestCountingException: multicast {1,2} over ECMP {1,2} is separable only
// with probe counting enabled.
func TestCountingException(t *testing.T) {
	low := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.ECMP(1, 2)}}
	mc := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(1), flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, low, mc)
	if _, err := gen().Generate(tb, mc); !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("without counting: got %v", err)
	}
	g := NewGenerator(Config{ValidateModel: true, Counting: true})
	if _, err := g.Generate(tb, mc); err != nil {
		t.Fatalf("with counting: %v", err)
	}
}

// TestReservedFieldRejected: rules rewriting the probe tag field are
// rejected (§3.2).
func TestReservedFieldRejected(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	bad := &flowtable.Rule{ID: 2, Priority: 2,
		Match: srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{
			flowtable.SetField(header.VlanID, 5), flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, bad)
	g := NewGenerator(Config{ValidateModel: true, ReservedFields: []header.FieldID{header.VlanID}})
	if _, err := g.Generate(tb, bad); !errors.Is(err, ErrRewritesProbeField) {
		t.Fatalf("got %v", err)
	}
}

// TestDomainsRespected: the probe's dl_type and nw_proto come from the
// crafting domains.
func TestDomainsRespected(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	probed := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, probed)
	p, err := gen().Generate(tb, probed)
	if err != nil {
		t.Fatal(err)
	}
	doms := header.DefaultDomains()
	if !doms[header.EthType].Contains(p.Header.Get(header.EthType)) {
		t.Fatalf("dl_type %#x outside domain", p.Header.Get(header.EthType))
	}
	if !doms[header.IPProto].Contains(p.Header.Get(header.IPProto)) {
		t.Fatalf("nw_proto %#x outside domain", p.Header.Get(header.IPProto))
	}
	if !doms[header.VlanID].Contains(p.Header.Get(header.VlanID)) {
		t.Fatalf("dl_vlan %#x outside domain", p.Header.Get(header.VlanID))
	}
}

// TestAppendixAReduction encodes the appendix-A SAT instance
// (x1∨x2)∧(¬x2∨x3)∧(¬x3) as high-priority rules over 3 one-bit-relevant
// fields and asks for a probe of the low-priority wildcard rule. The probe
// values must solve the formula.
func TestAppendixAReduction(t *testing.T) {
	// Represent x1,x2,x3 by the LSB of nw_src, nw_dst, tp_src.
	bit := func(f header.FieldID, v uint64) header.Ternary {
		return header.Ternary{Value: v, Mask: 1}
	}
	// Disjunction i is falsified iff the probe matches rule Ri.
	r1 := &flowtable.Rule{ID: 1, Priority: 12, // (x1 ∨ x2): match x1=0 ∧ x2=0
		Match: flowtable.MatchAll().
			With(header.IPSrc, bit(header.IPSrc, 0)).
			With(header.IPDst, bit(header.IPDst, 0)),
		Actions: []flowtable.Action{flowtable.Output(9)}}
	r2 := &flowtable.Rule{ID: 2, Priority: 11, // (¬x2 ∨ x3): match x2=1 ∧ x3=0
		Match: flowtable.MatchAll().
			With(header.IPDst, bit(header.IPDst, 1)).
			With(header.TPSrc, bit(header.TPSrc, 0)),
		Actions: []flowtable.Action{flowtable.Output(9)}}
	r3 := &flowtable.Rule{ID: 3, Priority: 10, // (¬x3): match x3=1
		Match:   flowtable.MatchAll().With(header.TPSrc, bit(header.TPSrc, 1)),
		Actions: []flowtable.Action{flowtable.Output(9)}}
	low := &flowtable.Rule{ID: 4, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	tb := newTable(t, flowtable.MissDrop, r1, r2, r3, low)
	p, err := gen().Generate(tb, low)
	if err != nil {
		t.Fatalf("satisfiable instance must yield a probe: %v", err)
	}
	x1 := p.Header.Get(header.IPSrc)&1 == 1
	x2 := p.Header.Get(header.IPDst)&1 == 1
	x3 := p.Header.Get(header.TPSrc)&1 == 1
	if !((x1 || x2) && (!x2 || x3) && !x3) {
		t.Fatalf("probe bits (%v,%v,%v) do not solve the CNF", x1, x2, x3)
	}
}

// TestModificationProbe: the probe for a modification distinguishes old
// from new actions regardless of other lower-priority rules.
func TestModificationProbe(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	target := &flowtable.Rule{ID: 2, Priority: 5,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, target)
	p, err := gen().GenerateModification(tb, target, []flowtable.Action{flowtable.Output(3)})
	if err != nil {
		t.Fatal(err)
	}
	if p.RuleID != target.ID {
		t.Fatalf("RuleID=%d", p.RuleID)
	}
	if p.Present.Emissions[0].Port != 3 {
		t.Fatalf("present must reflect new actions: %+v", p.Present)
	}
	if p.Absent.Emissions[0].Port != 2 {
		t.Fatalf("absent must reflect old actions: %+v", p.Absent)
	}
}

// TestModificationSameActionsUnmonitorable: modifying a rule to identical
// behaviour cannot be confirmed.
func TestModificationSameActionsUnmonitorable(t *testing.T) {
	target := &flowtable.Rule{ID: 2, Priority: 5,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, target)
	_, err := gen().GenerateModification(tb, target, []flowtable.Action{flowtable.Output(2)})
	if !errors.Is(err, ErrUnmonitorable) {
		t.Fatalf("got %v", err)
	}
}

// TestDeletionProbe: deletion reuses the addition probe; Absent is the
// post-deletion behaviour.
func TestDeletionProbe(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	target := &flowtable.Rule{ID: 2, Priority: 5,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, target)
	p, err := gen().GenerateDeletion(tb, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.Absent.Rule != def {
		t.Fatalf("absent rule %v", p.Absent.Rule)
	}
}

// TestStatsPopulated ensures generation metrics are recorded.
func TestStatsPopulated(t *testing.T) {
	def := &flowtable.Rule{ID: 1, Priority: 1,
		Actions: []flowtable.Action{flowtable.Output(1)}}
	probed := &flowtable.Rule{ID: 2, Priority: 2,
		Match:   srcMatch(10, 0, 0, 0, 8),
		Actions: []flowtable.Action{flowtable.Output(2)}}
	tb := newTable(t, flowtable.MissDrop, def, probed)
	p, err := gen().Generate(tb, probed)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Vars < header.TotalBits || p.Stats.Clauses == 0 || p.Stats.Overlapping != 1 {
		t.Fatalf("stats %+v", p.Stats)
	}
}

// randomRule builds a random valid rule for the property test.
func randomRule(rng *rand.Rand, id uint64) *flowtable.Rule {
	m := flowtable.MatchAll()
	if rng.Intn(2) == 0 {
		m = m.With(header.IPSrc, header.Prefix(header.IPSrc, rng.Uint64(), 8*(1+rng.Intn(4))))
	}
	if rng.Intn(2) == 0 {
		m = m.With(header.IPDst, header.Prefix(header.IPDst, rng.Uint64(), 8*(1+rng.Intn(4))))
	}
	if rng.Intn(4) == 0 {
		m = m.WithExact(header.IPProto, []uint64{1, 6, 17}[rng.Intn(3)])
	}
	var acts []flowtable.Action
	switch rng.Intn(6) {
	case 0: // drop
	case 1: // ECMP
		acts = append(acts, flowtable.ECMP(flowtable.PortID(1+rng.Intn(3)), flowtable.PortID(4+rng.Intn(3))))
	case 2: // rewrite + output
		acts = append(acts,
			flowtable.SetField(header.IPTos, uint64(rng.Intn(64))),
			flowtable.Output(flowtable.PortID(1+rng.Intn(4))))
	case 3: // multicast
		acts = append(acts,
			flowtable.Output(flowtable.PortID(1+rng.Intn(3))),
			flowtable.Output(flowtable.PortID(4+rng.Intn(3))))
	default: // unicast
		acts = append(acts, flowtable.Output(flowtable.PortID(1+rng.Intn(6))))
	}
	return &flowtable.Rule{ID: id, Priority: 1 + rng.Intn(50), Match: m, Actions: acts}
}

// TestRandomTablesProbeSoundness is the core property test: on random
// tables, every successfully generated probe must pass independent
// semantic validation (hit the rule, satisfy collect, have distinguishable
// outcomes) — ValidateModel enforces this inside Generate, and we
// additionally re-derive the absent outcome by simulating a table without
// the rule.
func TestRandomTablesProbeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(208867))
	found, unmon := 0, 0
	for iter := 0; iter < 60; iter++ {
		tb := flowtable.New()
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			_ = tb.Insert(randomRule(rng, uint64(i))) // skip overlap-at-equal-priority rejects
		}
		for _, r := range tb.Rules() {
			p, err := gen().Generate(tb, r)
			if errors.Is(err, ErrUnmonitorable) {
				unmon++
				continue
			}
			if err != nil {
				t.Fatalf("iter %d rule %v: %v", iter, r, err)
			}
			found++
			// Re-derive absence behaviour from a table without r.
			without := flowtable.New()
			without.Miss = tb.Miss
			for _, o := range tb.Rules() {
				if o.ID != r.ID {
					if err := without.Insert(o.Clone()); err != nil {
						t.Fatal(err)
					}
				}
			}
			hit := without.Lookup(p.Header)
			if hit == nil {
				if !p.Absent.Drop && len(p.Absent.Emissions) != 0 {
					t.Fatalf("absent mismatch: miss but %+v", p.Absent)
				}
			} else if p.Absent.Rule == nil || hit.ID != p.Absent.Rule.ID {
				t.Fatalf("absent rule mismatch: sim=%v probe=%v", hit, p.Absent.Rule)
			}
		}
	}
	if found == 0 {
		t.Fatal("property test generated no probes at all")
	}
	t.Logf("probes found=%d unmonitorable=%d", found, unmon)
}

// TestOverlapFilterAblationEquivalence: disabling the §5.4 filter must not
// change monitorability.
func TestOverlapFilterAblationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	withF := NewGenerator(Config{ValidateModel: true})
	withoutF := NewGenerator(Config{ValidateModel: true, SkipOverlapFilter: true})
	for iter := 0; iter < 20; iter++ {
		tb := flowtable.New()
		for i := 0; i < 8; i++ {
			_ = tb.Insert(randomRule(rng, uint64(i)))
		}
		for _, r := range tb.Rules() {
			_, err1 := withF.Generate(tb, r)
			_, err2 := withoutF.Generate(tb, r)
			if errors.Is(err1, ErrUnmonitorable) != errors.Is(err2, ErrUnmonitorable) {
				t.Fatalf("filter changes monitorability for %v: %v vs %v", r, err1, err2)
			}
		}
	}
}

func BenchmarkGenerateSmallTable(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tb := flowtable.New()
	for i := 0; i < 50; i++ {
		_ = tb.Insert(randomRule(rng, uint64(i)))
	}
	rules := tb.Rules()
	g := NewGenerator(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Generate(tb, rules[i%len(rules)])
	}
}
