package policy

import (
	"strings"
	"testing"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

const demoPolicy = `
# Edge switches: tight cadence, alert only on the corp prefix.
policy edge {
	select tag "edge", "dmz"
	every 50ms
	confirm within 50ms
	debounce 1
	alert only nw_dst in 10.0.0.0/8
}

policy core {
	select switch 7, 9
	match priority >= 10 and not dl_type = 0x806
	every 5s
	sample 10% seed 42
}

default {
	stall 4
	flap 8 3
}
`

func TestParseDemoPolicy(t *testing.T) {
	p, err := Parse(demoPolicy)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Groups) != 2 || p.Default == nil {
		t.Fatalf("got %d groups, default=%v", len(p.Groups), p.Default)
	}
	edge := p.Groups[0]
	if edge.Name != "edge" || len(edge.Select.Tags) != 2 || edge.Dir.Every != 50*time.Millisecond {
		t.Fatalf("edge group parsed wrong: %+v", edge)
	}
	if edge.Dir.Alert == nil || edge.Dir.Alert.Only == nil {
		t.Fatalf("edge alert filter missing: %+v", edge.Dir.Alert)
	}
	core := p.Groups[1]
	if core.Name != "core" || len(core.Select.IDs) != 2 || core.Dir.SampleBP != 1000 || !core.Dir.HasSeed || core.Dir.Seed != 42 {
		t.Fatalf("core group parsed wrong: %+v", core)
	}
	if p.Default.Stall != 4 || p.Default.FlapWin != 8 || p.Default.FlapFlip != 3 {
		t.Fatalf("default block parsed wrong: %+v", p.Default)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for _, src := range []string{
		demoPolicy,
		``,
		`policy a { select all }`,
		`policy a { select switch 1 sample 12.5% }`,
		`policy a { select tag x alert none } default { every 1500ms }`,
		`policy a { select tag "spaced tag" match (nw_src in 0.0.0.0/0 or id = 3) and priority < 5 }`,
		`policy a { select all match not (dl_type = 2048 or dl_type = 0x806) alert all }`,
		`policy a { select all match tp_dst = 443 or tp_dst = 80 and priority <= 100 }`,
	} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		c1 := p1.String()
		p2, err := Parse(c1)
		if err != nil {
			t.Fatalf("reparse of canonical form failed: %v\n--- canonical:\n%s", err, c1)
		}
		if c2 := p2.String(); c2 != c1 {
			t.Fatalf("canonical form is not a fixed point:\n--- first:\n%s\n--- second:\n%s", c1, c2)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	cases := []struct {
		src        string
		line, col  int
		wantSubstr string
	}{
		{"policy {}", 1, 8, "expected group name"},
		{"bogus", 1, 1, "expected 'policy' or 'default'"},
		{"policy a {\n\tselect all\n\tevery fast\n}", 3, 8, "bad duration"},
		{"policy a {\n\tselect all\n\tsample 200%\n}", 3, 9, "between"},
		{"policy a {\n\tmatch nw_dst in 10.0.0.0\n\tselect all\n}", 2, 18, "CIDR"},
		{"policy a {\n\tmatch bogus = 1\n\tselect all\n}", 2, 8, "unknown field"},
		{"policy a {\n\tselect all\n\tevery 1s\n\tevery 2s\n}", 4, 2, "duplicate every"},
		{"policy default { select all }", 1, 8, "reserved"},
		{"policy a { select all }\npolicy a { select all }", 2, 8, "duplicate group"},
		{"policy a { every 1s }", 1, 8, "no select clause"},
		{"default { select all }", 1, 11, "cannot select"},
		{"policy a {\n\tselect all\n\tflap 4 9\n}", 3, 9, "cannot exceed"},
		{"policy a { select all match dl_type = 99999999 }", 1, 39, "does not fit"},
		{"policy a { select all\n\tmatch nw_src in 10.0.0.0/40 }", 2, 18, "prefix length"},
		{"policy a { select all } trailing", 1, 25, "expected 'policy'"},
		{`policy a { select tag "unterminated`, 1, 23, "unterminated string"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", c.src)
		}
		perr, ok := err.(*Error)
		if !ok {
			t.Fatalf("Parse(%q): error is %T, want *Error", c.src, err)
		}
		if perr.Line != c.line || perr.Col != c.col || !strings.Contains(perr.Msg, c.wantSubstr) {
			t.Errorf("Parse(%q) = %q (line %d col %d), want line %d col %d containing %q",
				c.src, perr.Msg, perr.Line, perr.Col, c.line, c.col, c.wantSubstr)
		}
	}
}

func TestAssignFirstMatchWinsAndInheritance(t *testing.T) {
	p, err := Parse(`
policy edge { select tag edge every 50ms debounce 1 }
policy all  { select all every 5s }
default { stall 9 every 1s }
`)
	if err != nil {
		t.Fatal(err)
	}
	edge := p.Assign(1, []string{"edge", "rack1"})
	if edge.Group != "edge" || edge.Dir.Every != 50*time.Millisecond || edge.Dir.Debounce != 1 {
		t.Fatalf("edge assignment wrong: %+v", edge)
	}
	if edge.Dir.Stall != 9 {
		t.Fatalf("edge should inherit stall from default block: %+v", edge.Dir)
	}
	rest := p.Assign(2, nil)
	if rest.Group != "all" || rest.Dir.Every != 5*time.Second || rest.Dir.Stall != 9 {
		t.Fatalf("fallthrough assignment wrong: %+v", rest)
	}
}

func TestAssignDefaultGroup(t *testing.T) {
	p, err := Parse(`policy edge { select tag edge } default { every 3s }`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Assign(5, []string{"core"})
	if d.Group != DefaultGroup || d.Dir.Every != 3*time.Second {
		t.Fatalf("default assignment wrong: %+v", d)
	}
	names := p.GroupNames()
	if len(names) != 2 || names[0] != "edge" || names[1] != DefaultGroup {
		t.Fatalf("GroupNames = %v", names)
	}
}

func TestPredicateEvalIntersection(t *testing.T) {
	pred := func(src string) Pred {
		p, err := Parse("policy a { select all match " + src + " }")
		if err != nil {
			t.Fatalf("match %q: %v", src, err)
		}
		return p.Groups[0].Dir.Match
	}
	rule := func(m flowtable.Match, prio int, id uint64) *flowtable.Rule {
		return &flowtable.Rule{ID: id, Priority: prio, Match: m}
	}
	in10 := flowtable.MatchAll().With(header.IPDst, header.Prefix(header.IPDst, 10<<24, 8))
	in192 := flowtable.MatchAll().With(header.IPDst, header.Prefix(header.IPDst, 192<<24|168<<16, 16))
	wild := flowtable.MatchAll()

	p := pred("nw_dst in 10.0.0.0/8")
	if !p.Eval(rule(in10, 1, 1)) {
		t.Error("10/8 rule should match nw_dst in 10/8")
	}
	if p.Eval(rule(in192, 1, 1)) {
		t.Error("192.168/16 rule should not match nw_dst in 10/8")
	}
	if !p.Eval(rule(wild, 1, 1)) {
		t.Error("wildcard rule intersects every prefix")
	}

	p = pred("priority >= 10 and id < 100")
	if !p.Eval(rule(wild, 10, 99)) || p.Eval(rule(wild, 9, 99)) || p.Eval(rule(wild, 10, 100)) {
		t.Error("numeric conjunction misbehaves")
	}

	p = pred("not nw_dst in 10.0.0.0/8")
	if p.Eval(rule(in10, 1, 1)) || !p.Eval(rule(in192, 1, 1)) {
		t.Error("negation misbehaves")
	}

	exact := flowtable.MatchAll().WithExact(header.EthType, 0x800)
	p = pred("dl_type = 0x800")
	if !p.Eval(rule(exact, 1, 1)) {
		t.Error("exact dl_type should match")
	}
	p = pred("dl_type = 0x806")
	if p.Eval(rule(exact, 1, 1)) {
		t.Error("different dl_type should not match")
	}
}

func TestSampledDeterministicAndUnbiased(t *testing.T) {
	const seed, sw = 7, 3
	for round := uint64(0); round < 4; round++ {
		for rid := uint64(1); rid <= 50; rid++ {
			a := Sampled(seed, sw, rid, round, 2500)
			b := Sampled(seed, sw, rid, round, 2500)
			if a != b {
				t.Fatalf("Sampled not deterministic at rid %d round %d", rid, round)
			}
		}
	}
	// Rate sanity over many draws: 25% ± a wide margin.
	hits := 0
	const n = 4000
	for rid := uint64(0); rid < n; rid++ {
		if Sampled(seed, sw, rid, 0, 2500) {
			hits++
		}
	}
	if hits < n/5 || hits > n/3 {
		t.Fatalf("25%% sampling hit %d of %d draws", hits, n)
	}
	// Degenerate rates sample everything.
	if !Sampled(seed, sw, 1, 0, 0) || !Sampled(seed, sw, 1, 0, 10000) {
		t.Fatal("rate 0 / 100% must sample every rule")
	}
	// Distinct rounds sample distinct subsets.
	same := true
	for rid := uint64(0); rid < 64 && same; rid++ {
		same = Sampled(seed, sw, rid, 1, 2500) == Sampled(seed, sw, rid, 2, 2500)
	}
	if same {
		t.Fatal("rounds 1 and 2 sampled identical subsets; round is not mixed in")
	}
}

func TestSeedDerivedFromGroupName(t *testing.T) {
	p, err := Parse(`policy a { select switch 1 sample 50% } policy b { select switch 2 sample 50% }`)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Assign(1, nil)
	b := p.Assign(2, nil)
	if a.Group != "a" || b.Group != "b" {
		t.Fatalf("assignments: %+v / %+v", a, b)
	}
	if a.Seed == b.Seed {
		t.Fatal("distinct groups must derive distinct default seeds")
	}
}
