package policy

import "testing"

// FuzzPolicyParse checks the three properties the HTTP surface leans on:
// the parser never panics on arbitrary input, a policy that parses prints
// in a canonical form that reparses to the same canonical form (fixed
// point — PUT /policy can round-trip what GET /policy serves), and
// rejection is stable (an input that fails once fails identically again,
// so validate-then-swap cannot race its own answer).
func FuzzPolicyParse(f *testing.F) {
	f.Add(demoPolicy)
	f.Add("")
	f.Add("policy a { select all }")
	f.Add("policy a {\n\tselect switch 1, 2\n\tmatch nw_dst in 10.0.0.0/8 and priority >= 5\n\tevery 50ms\n\tsample 12.5% seed 9\n\talert only not dl_type = 0x806\n}\ndefault { stall 4 flap 6 3 }")
	f.Add(`policy t { select tag "a b", edge confirm within 1.5s alert none }`)
	f.Add("# comment only\n")
	f.Add("policy x { select all match (tp_dst = 443 or tp_dst = 80) and not nw_src in 0.0.0.0/0 }")
	f.Add("policy default { select all }")
	f.Add("policy a { select all every 1s every 2s }")
	f.Add("policy a { select all sample 200% }")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err1 := Parse(src)
		_, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("unstable accept/reject: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err2.Error() != err1.Error() {
				t.Fatalf("unstable error: %q vs %q", err1, err2)
			}
			perr, ok := err1.(*Error)
			if !ok {
				t.Fatalf("error is %T, want *Error", err1)
			}
			if perr.Line < 1 || perr.Col < 1 {
				t.Fatalf("error position not 1-based: %+v", perr)
			}
			return
		}
		c1 := p1.String()
		p2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n--- input:\n%q\n--- canonical:\n%q", err, src, c1)
		}
		if c2 := p2.String(); c2 != c1 {
			t.Fatalf("canonical form is not a fixed point:\n--- input: %q\n--- first: %q\n--- second: %q", src, c1, c2)
		}
	})
}
