// Package policy implements the Monocle monitoring-policy language: a
// small declarative DSL that groups fleet switches by tag or ID and
// attaches per-group monitoring directives — sweep cadence, confirmation
// deadline, sampling rate, Differ thresholds, and alert filters. A policy
// text parses into a Policy AST (with positional errors), prints back in a
// canonical form (parse→print→parse is a fixed point, enforced by fuzz),
// and compiles against a live fleet into deterministic per-switch probe
// plans: which rules to sweep this round, at what cadence, with which
// alerting behavior. Sampling is a pure function of (seed, switch, rule,
// round), so plans are byte-identical regardless of worker budget.
package policy

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"monocle/internal/chaos"
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// Error is a policy parse or validation error carrying the 1-based source
// position of the offending token.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Policy is a parsed monitoring policy: an ordered list of named groups
// (first selector match wins) plus an optional default block whose
// directives apply to every group as a base layer and to switches no
// group selects.
type Policy struct {
	Groups  []Group
	Default *Directives // nil when the policy has no default block
}

// Group is one named policy block with a selector and directives.
type Group struct {
	Name   string
	Select Selector
	Dir    Directives
}

// Selector decides which switches a group covers. A switch matches when
// All is set, its ID appears in IDs, or any of its tags appears in Tags.
type Selector struct {
	All  bool
	IDs  []uint32
	Tags []string
}

// Matches reports whether the selector covers a switch with the given ID
// and tags.
func (s Selector) Matches(id uint32, tags []string) bool {
	if s.All {
		return true
	}
	for _, want := range s.IDs {
		if want == id {
			return true
		}
	}
	for _, want := range s.Tags {
		for _, have := range tags {
			if want == have {
				return true
			}
		}
	}
	return false
}

// Directives are the monitoring knobs a block may set. The zero value of
// each field means "unset — inherit from the layer below" (group inherits
// from the default block, which inherits from the service's own settings).
type Directives struct {
	Match    Pred          // rule predicate; nil = monitor every rule
	Every    time.Duration // sweep cadence; 0 = inherit
	Confirm  time.Duration // update-confirmation deadline; 0 = inherit
	SampleBP int           // sampling rate in basis points (10000 = 100%); 0 = unset
	Seed     uint64        // sampling seed; meaningful only when HasSeed
	HasSeed  bool
	Debounce int          // consecutive failing sweeps before alerting; 0 = inherit
	Stall    int          // missed sweeps before switch_stalled; 0 = inherit
	FlapWin  int          // verdict-flap detection window; 0 = inherit
	FlapFlip int          // flips within the window that trip flapping; 0 = inherit
	Alert    *AlertFilter // nil = inherit
}

// AlertFilter restricts which rule-level alerts a group emits. Exactly one
// of the three forms holds: All (pass everything, overriding an inherited
// filter), None (suppress all rule alerts), or Only (pass alerts only for
// rules matching the predicate).
type AlertFilter struct {
	All  bool
	None bool
	Only Pred
}

// merge layers over on top of base: every directive over sets wins.
func merge(base, over Directives) Directives {
	out := base
	if over.Match != nil {
		out.Match = over.Match
	}
	if over.Every > 0 {
		out.Every = over.Every
	}
	if over.Confirm > 0 {
		out.Confirm = over.Confirm
	}
	if over.SampleBP > 0 {
		out.SampleBP = over.SampleBP
		out.Seed = over.Seed
		out.HasSeed = over.HasSeed
	}
	if over.Debounce > 0 {
		out.Debounce = over.Debounce
	}
	if over.Stall > 0 {
		out.Stall = over.Stall
	}
	if over.FlapWin > 0 {
		out.FlapWin = over.FlapWin
		out.FlapFlip = over.FlapFlip
	}
	if over.Alert != nil {
		out.Alert = over.Alert
	}
	return out
}

// DefaultGroup is the implicit group name for switches no policy block
// selects. It is reserved: a policy block may not be named "default"
// (the `default { ... }` form declares the base layer instead).
const DefaultGroup = "default"

// Assignment is the resolved policy for one switch: the winning group and
// its fully merged directives. Zero-valued directives still mean "use the
// service default".
type Assignment struct {
	Group string
	Dir   Directives
	Seed  uint64 // effective sampling seed (explicit, or derived from group name)
}

// Assign resolves a switch against the policy: the first group whose
// selector matches wins; unmatched switches land in the "default" group
// with only the default block's directives.
func (p *Policy) Assign(id uint32, tags []string) Assignment {
	var base Directives
	if p.Default != nil {
		base = *p.Default
	}
	for _, g := range p.Groups {
		if g.Select.Matches(id, tags) {
			d := merge(base, g.Dir)
			return Assignment{Group: g.Name, Dir: d, Seed: seedFor(d, g.Name)}
		}
	}
	return Assignment{Group: DefaultGroup, Dir: base, Seed: seedFor(base, DefaultGroup)}
}

// GroupNames returns the declared group names in declaration order,
// followed by the implicit "default" group.
func (p *Policy) GroupNames() []string {
	names := make([]string, 0, len(p.Groups)+1)
	for _, g := range p.Groups {
		names = append(names, g.Name)
	}
	return append(names, DefaultGroup)
}

// seedFor returns the effective sampling seed: the explicit `seed N` if
// one was given, otherwise an FNV hash of the group name so distinct
// groups sample distinct subsets by default.
func seedFor(d Directives, group string) uint64 {
	if d.HasSeed {
		return d.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(group))
	return h.Sum64()
}

// Sampled reports whether rule rid of switch sw participates in sweep
// round `round` under the given seed and rate (basis points). It is a pure
// function of its arguments — no global state, no RNG stream — so the
// sampled subset for a round is identical regardless of worker budget,
// sweep order, or process restarts. Rates <= 0 or >= 10000 sample
// everything.
func Sampled(seed uint64, sw uint32, rid, round uint64, bp int) bool {
	if bp <= 0 || bp >= 10000 {
		return true
	}
	x := seed
	x ^= uint64(sw) * 0x9e3779b97f4a7c15
	x ^= rid * 0xc2b2ae3d27d4eb4f
	x ^= round * 0x165667b19e3779f9
	return chaos.New(x).Uint64()%10000 < uint64(bp)
}

// ---- predicates ----

// Pred is a rule predicate from a `match` or `alert only` clause.
type Pred interface {
	// Eval reports whether the rule satisfies the predicate. Field atoms
	// use ternary intersection: `nw_dst in 10.0.0.0/8` holds when the
	// rule's nw_dst match can produce an address in 10/8 (a wildcard
	// field intersects everything).
	Eval(r *flowtable.Rule) bool
	print(b *strings.Builder, prec int)
}

// Precedence levels for canonical printing: parens appear exactly where
// an operand's precedence is below its context's.
const (
	precOr = iota + 1
	precAnd
	precNot
	precAtom
)

// OrPred is the disjunction `X or Y`.
type OrPred struct{ X, Y Pred }

// AndPred is the conjunction `X and Y`.
type AndPred struct{ X, Y Pred }

// NotPred is the negation `not X`.
type NotPred struct{ X Pred }

func (p *OrPred) Eval(r *flowtable.Rule) bool  { return p.X.Eval(r) || p.Y.Eval(r) }
func (p *AndPred) Eval(r *flowtable.Rule) bool { return p.X.Eval(r) && p.Y.Eval(r) }
func (p *NotPred) Eval(r *flowtable.Rule) bool { return !p.X.Eval(r) }

func (p *OrPred) print(b *strings.Builder, prec int) {
	open := prec > precOr
	if open {
		b.WriteByte('(')
	}
	p.X.print(b, precOr)
	b.WriteString(" or ")
	p.Y.print(b, precOr)
	if open {
		b.WriteByte(')')
	}
}

func (p *AndPred) print(b *strings.Builder, prec int) {
	open := prec > precAnd
	if open {
		b.WriteByte('(')
	}
	p.X.print(b, precAnd)
	b.WriteString(" and ")
	p.Y.print(b, precAnd)
	if open {
		b.WriteByte(')')
	}
}

func (p *NotPred) print(b *strings.Builder, prec int) {
	b.WriteString("not ")
	p.X.print(b, precNot)
}

// FieldPred is a header-field atom: `nw_dst in 10.0.0.0/8` (Prefix) or
// `dl_type = 2048` (exact). Eval uses ternary intersection against the
// rule's match, so a rule wildcarding the field satisfies every atom on it.
type FieldPred struct {
	Field  header.FieldID
	Tern   header.Ternary
	Prefix bool // printed as addr/len rather than `= value`
	Plen   int  // prefix length when Prefix
}

func (p *FieldPred) Eval(r *flowtable.Rule) bool {
	t := r.Match[p.Field]
	return (t.Value^p.Tern.Value)&t.Mask&p.Tern.Mask == 0
}

func (p *FieldPred) print(b *strings.Builder, _ int) {
	b.WriteString(p.Field.String())
	if p.Prefix {
		b.WriteString(" in ")
		b.WriteString(formatFieldValue(p.Field, p.Tern.Value))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(p.Plen))
		return
	}
	b.WriteString(" = ")
	b.WriteString(formatFieldValue(p.Field, p.Tern.Value))
}

// IntSubject selects what an IntPred compares.
type IntSubject int

const (
	// SubjectPriority compares the rule's priority.
	SubjectPriority IntSubject = iota
	// SubjectID compares the rule's ID.
	SubjectID
)

// IntPred is a numeric atom: `priority >= 10` or `id = 7`.
type IntPred struct {
	Subject IntSubject
	Op      string // "=", "<", ">", "<=", ">="
	Value   uint64
}

func (p *IntPred) Eval(r *flowtable.Rule) bool {
	var have uint64
	switch p.Subject {
	case SubjectPriority:
		if r.Priority < 0 {
			// Negative priorities sort below every literal the grammar
			// can express.
			return p.Op == "<" || p.Op == "<="
		}
		have = uint64(r.Priority)
	case SubjectID:
		have = r.ID
	}
	switch p.Op {
	case "=":
		return have == p.Value
	case "<":
		return have < p.Value
	case ">":
		return have > p.Value
	case "<=":
		return have <= p.Value
	case ">=":
		return have >= p.Value
	}
	return false
}

func (p *IntPred) print(b *strings.Builder, _ int) {
	if p.Subject == SubjectPriority {
		b.WriteString("priority ")
	} else {
		b.WriteString("id ")
	}
	b.WriteString(p.Op)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(p.Value, 10))
}

// formatFieldValue renders a field value canonically: dotted quad for the
// 32-bit IP fields, decimal otherwise.
func formatFieldValue(f header.FieldID, v uint64) string {
	if f == header.IPSrc || f == header.IPDst {
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return strconv.FormatUint(v, 10)
}

// ---- canonical printing ----

// String renders the policy in canonical form: groups in declaration
// order, directives in a fixed order, values normalized (decimal numbers,
// dotted-quad IPs, time.Duration spellings, quoted tags). Parsing the
// canonical form yields a policy that prints identically.
func (p *Policy) String() string {
	var b strings.Builder
	for i, g := range p.Groups {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("policy ")
		b.WriteString(g.Name)
		b.WriteString(" {\n")
		printSelector(&b, g.Select)
		printDirectives(&b, g.Dir)
		b.WriteString("}\n")
	}
	if p.Default != nil {
		if len(p.Groups) > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("default {\n")
		printDirectives(&b, *p.Default)
		b.WriteString("}\n")
	}
	return b.String()
}

func printSelector(b *strings.Builder, s Selector) {
	if s.All {
		b.WriteString("\tselect all\n")
		return
	}
	if len(s.IDs) > 0 {
		b.WriteString("\tselect switch ")
		for i, id := range s.IDs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatUint(uint64(id), 10))
		}
		b.WriteByte('\n')
	}
	if len(s.Tags) > 0 {
		b.WriteString("\tselect tag ")
		for i, t := range s.Tags {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(t))
		}
		b.WriteByte('\n')
	}
}

func printDirectives(b *strings.Builder, d Directives) {
	if d.Match != nil {
		b.WriteString("\tmatch ")
		d.Match.print(b, precOr)
		b.WriteByte('\n')
	}
	if d.Every > 0 {
		fmt.Fprintf(b, "\tevery %s\n", d.Every)
	}
	if d.Confirm > 0 {
		fmt.Fprintf(b, "\tconfirm within %s\n", d.Confirm)
	}
	if d.SampleBP > 0 {
		fmt.Fprintf(b, "\tsample %s%%", formatBasisPoints(d.SampleBP))
		if d.HasSeed {
			fmt.Fprintf(b, " seed %d", d.Seed)
		}
		b.WriteByte('\n')
	}
	if d.Debounce > 0 {
		fmt.Fprintf(b, "\tdebounce %d\n", d.Debounce)
	}
	if d.Stall > 0 {
		fmt.Fprintf(b, "\tstall %d\n", d.Stall)
	}
	if d.FlapWin > 0 {
		fmt.Fprintf(b, "\tflap %d %d\n", d.FlapWin, d.FlapFlip)
	}
	if d.Alert != nil {
		switch {
		case d.Alert.None:
			b.WriteString("\talert none\n")
		case d.Alert.Only != nil:
			b.WriteString("\talert only ")
			d.Alert.Only.print(b, precOr)
			b.WriteByte('\n')
		default:
			b.WriteString("\talert all\n")
		}
	}
}

// formatBasisPoints renders a rate in basis points as a percentage with
// up to two decimals, trailing zeros trimmed: 1000 → "10", 1250 → "12.5",
// 33 → "0.33".
func formatBasisPoints(bp int) string {
	s := strconv.FormatFloat(float64(bp)/100, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// PredString renders a predicate in the canonical grammar spelling.
func PredString(p Pred) string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	p.print(&b, precOr)
	return b.String()
}

// fieldIDs maps OpenFlow field names to IDs for the parser.
var fieldIDs = func() map[string]header.FieldID {
	m := make(map[string]header.FieldID, int(header.NumFields))
	for f := header.FieldID(0); f < header.NumFields; f++ {
		m[f.String()] = f
	}
	return m
}()

// FieldNames returns the header-field names the grammar accepts, sorted.
func FieldNames() []string {
	names := make([]string, 0, len(fieldIDs))
	for n := range fieldIDs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
