package policy

import (
	"fmt"
	"strconv"
)

// tokKind classifies lexer output. Keywords are not distinguished here —
// the parser classifies words in context, so `tag`, `seed`, etc. stay
// usable as tag values and group names.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokWord           // bare word: idents, keywords, numbers, durations, CIDRs
	tokString         // double-quoted string (text holds the unquoted value)
	tokPunct          // one of { } ( ) , = < > <= >=
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return strconv.Quote(t.text)
	default:
		return strconv.Quote(t.text)
	}
}

// lex splits src into tokens. `#` starts a comment running to end of line.
// Words are runs of letters, digits, and the value characters `_ . / %`
// (covering numbers, durations like 50ms, CIDRs like 10.0.0.0/8, and
// percentages like 12.5%).
func lex(src string) ([]token, *Error) {
	var toks []token
	line, col := 1, 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			col++
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
		case c == '{' || c == '}' || c == '(' || c == ')' || c == ',' || c == '=':
			toks = append(toks, token{tokPunct, string(c), line, col})
			i++
			col++
		case c == '<' || c == '>':
			text := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				text += "="
			}
			toks = append(toks, token{tokPunct, text, line, col})
			i += len(text)
			col += len(text)
		case c == '"':
			start, startLine, startCol := i, line, col
			i++
			col++
			for i < len(src) && src[i] != '"' && src[i] != '\n' {
				if src[i] == '\\' && i+1 < len(src) {
					i++
					col++
				}
				i++
				col++
			}
			if i >= len(src) || src[i] != '"' {
				return nil, &Error{startLine, startCol, "unterminated string"}
			}
			i++
			col++
			val, err := strconv.Unquote(src[start:i])
			if err != nil {
				return nil, &Error{startLine, startCol, "bad string literal: " + err.Error()}
			}
			toks = append(toks, token{tokString, val, startLine, startCol})
		case isWordChar(c):
			start, startCol := i, col
			for i < len(src) && isWordChar(src[i]) {
				i++
				col++
			}
			toks = append(toks, token{tokWord, src[start:i], line, startCol})
		default:
			return nil, &Error{line, col, fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '/' || c == '%' || c == '-'
}

// isIdent reports whether s is a plain identifier (a valid group name).
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}
