package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"monocle/internal/header"
)

// Parse parses a policy text. The error, when non-nil, is always a *Error
// carrying the 1-based line and column of the offending token.
//
// Grammar (see the README for the commented version):
//
//	policyfile = { block } .
//	block      = "policy" NAME "{" { stmt } "}" | "default" "{" { directive } "}" .
//	stmt       = select | directive .
//	select     = "select" ( "all" | "switch" num {"," num} | "tag" tag {"," tag} ) .
//	directive  = "match" pred
//	           | "every" DURATION
//	           | "confirm" "within" DURATION
//	           | "sample" PERCENT [ "seed" num ]
//	           | "debounce" num
//	           | "stall" num
//	           | "flap" num num
//	           | "alert" ( "all" | "none" | "only" pred ) .
//	pred       = term { "or" term } .
//	term       = factor { "and" factor } .
//	factor     = "not" factor | "(" pred ")" | atom .
//	atom       = FIELD "in" CIDR | FIELD "=" value
//	           | "priority" relop num | "id" relop num .
//	relop      = "=" | "<" | ">" | "<=" | ">=" .
func Parse(src string) (*Policy, error) {
	pol, err := parse(src)
	if err != nil {
		return nil, err
	}
	return pol, nil
}

func parse(src string) (*Policy, *Error) {
	toks, lerr := lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	pol := &Policy{}
	names := map[string]bool{}
	for p.peek().kind != tokEOF {
		t := p.next()
		if t.kind != tokWord || (t.text != "policy" && t.text != "default") {
			return nil, errAt(t, fmt.Sprintf("expected 'policy' or 'default', got %s", t))
		}
		if t.text == "default" {
			if pol.Default != nil {
				return nil, errAt(t, "duplicate default block")
			}
			d, err := p.parseBlock(nil)
			if err != nil {
				return nil, err
			}
			pol.Default = d
			continue
		}
		nameTok := p.next()
		if nameTok.kind != tokWord || !isIdent(nameTok.text) {
			return nil, errAt(nameTok, fmt.Sprintf("expected group name, got %s", nameTok))
		}
		if nameTok.text == DefaultGroup {
			return nil, errAt(nameTok, "group name 'default' is reserved; use a 'default { ... }' block")
		}
		if names[nameTok.text] {
			return nil, errAt(nameTok, fmt.Sprintf("duplicate group %q", nameTok.text))
		}
		names[nameTok.text] = true
		g := Group{Name: nameTok.text}
		d, err := p.parseBlock(&g.Select)
		if err != nil {
			return nil, err
		}
		g.Dir = *d
		if !g.Select.All && len(g.Select.IDs) == 0 && len(g.Select.Tags) == 0 {
			return nil, errAt(nameTok, fmt.Sprintf("group %q has no select clause (it would match no switch)", g.Name))
		}
		pol.Groups = append(pol.Groups, g)
	}
	return pol, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func errAt(t token, msg string) *Error { return &Error{t.line, t.col, msg} }

func (p *parser) expectPunct(s string) *Error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return errAt(t, fmt.Sprintf("expected %q, got %s", s, t))
	}
	return nil
}

// parseBlock parses "{ stmt* }". sel == nil means select clauses are
// forbidden (the default block).
func (p *parser) parseBlock(sel *Selector) (*Directives, *Error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	d := &Directives{}
	seen := map[string]bool{}
	once := func(t token, what string) *Error {
		if seen[what] {
			return errAt(t, "duplicate "+what+" directive")
		}
		seen[what] = true
		return nil
	}
	for {
		t := p.next()
		if t.kind == tokPunct && t.text == "}" {
			return d, nil
		}
		if t.kind != tokWord {
			return nil, errAt(t, fmt.Sprintf("expected directive or '}', got %s", t))
		}
		switch t.text {
		case "select":
			if sel == nil {
				return nil, errAt(t, "the default block cannot select switches")
			}
			if err := p.parseSelect(t, sel); err != nil {
				return nil, err
			}
		case "match":
			if err := once(t, "match"); err != nil {
				return nil, err
			}
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			d.Match = pred
		case "every":
			if err := once(t, "every"); err != nil {
				return nil, err
			}
			dur, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			d.Every = dur
		case "confirm":
			if err := once(t, "confirm"); err != nil {
				return nil, err
			}
			if kw := p.next(); kw.kind != tokWord || kw.text != "within" {
				return nil, errAt(kw, fmt.Sprintf("expected 'within' after 'confirm', got %s", kw))
			}
			dur, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			d.Confirm = dur
		case "sample":
			if err := once(t, "sample"); err != nil {
				return nil, err
			}
			if err := p.parseSample(d); err != nil {
				return nil, err
			}
		case "debounce":
			if err := once(t, "debounce"); err != nil {
				return nil, err
			}
			n, err := p.parseCount(1, "debounce")
			if err != nil {
				return nil, err
			}
			d.Debounce = n
		case "stall":
			if err := once(t, "stall"); err != nil {
				return nil, err
			}
			n, err := p.parseCount(1, "stall")
			if err != nil {
				return nil, err
			}
			d.Stall = n
		case "flap":
			if err := once(t, "flap"); err != nil {
				return nil, err
			}
			win, err := p.parseCount(2, "flap window")
			if err != nil {
				return nil, err
			}
			flipTok := p.peek()
			flips, err := p.parseCount(1, "flap flips")
			if err != nil {
				return nil, err
			}
			if flips > win {
				return nil, errAt(flipTok, fmt.Sprintf("flap flips (%d) cannot exceed the window (%d)", flips, win))
			}
			d.FlapWin, d.FlapFlip = win, flips
		case "alert":
			if err := once(t, "alert"); err != nil {
				return nil, err
			}
			mode := p.next()
			if mode.kind != tokWord {
				return nil, errAt(mode, fmt.Sprintf("expected 'all', 'none' or 'only' after 'alert', got %s", mode))
			}
			switch mode.text {
			case "all":
				d.Alert = &AlertFilter{All: true}
			case "none":
				d.Alert = &AlertFilter{None: true}
			case "only":
				pred, err := p.parsePred()
				if err != nil {
					return nil, err
				}
				d.Alert = &AlertFilter{Only: pred}
			default:
				return nil, errAt(mode, fmt.Sprintf("expected 'all', 'none' or 'only' after 'alert', got %s", mode))
			}
		default:
			return nil, errAt(t, fmt.Sprintf("unknown directive %q", t.text))
		}
	}
}

func (p *parser) parseSelect(at token, sel *Selector) *Error {
	kind := p.next()
	if kind.kind != tokWord {
		return errAt(kind, fmt.Sprintf("expected 'all', 'switch' or 'tag' after 'select', got %s", kind))
	}
	if sel.All {
		return errAt(at, "'select all' cannot combine with other select clauses")
	}
	switch kind.text {
	case "all":
		if len(sel.IDs) > 0 || len(sel.Tags) > 0 {
			return errAt(at, "'select all' cannot combine with other select clauses")
		}
		sel.All = true
	case "switch":
		if len(sel.IDs) > 0 {
			return errAt(at, "duplicate 'select switch' clause")
		}
		for {
			t := p.next()
			n, err := strconv.ParseUint(t.text, 10, 32)
			if t.kind != tokWord || err != nil {
				return errAt(t, fmt.Sprintf("expected switch ID, got %s", t))
			}
			sel.IDs = append(sel.IDs, uint32(n))
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			return nil
		}
	case "tag":
		if len(sel.Tags) > 0 {
			return errAt(at, "duplicate 'select tag' clause")
		}
		for {
			t := p.next()
			if t.kind != tokWord && t.kind != tokString {
				return errAt(t, fmt.Sprintf("expected tag, got %s", t))
			}
			if t.text == "" {
				return errAt(t, "empty tag")
			}
			sel.Tags = append(sel.Tags, t.text)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			return nil
		}
	default:
		return errAt(kind, fmt.Sprintf("expected 'all', 'switch' or 'tag' after 'select', got %s", kind))
	}
	return nil
}

func (p *parser) parseDuration() (time.Duration, *Error) {
	t := p.next()
	if t.kind != tokWord {
		return 0, errAt(t, fmt.Sprintf("expected duration, got %s", t))
	}
	dur, err := time.ParseDuration(t.text)
	if err != nil {
		return 0, errAt(t, fmt.Sprintf("bad duration %q", t.text))
	}
	if dur <= 0 {
		return 0, errAt(t, fmt.Sprintf("duration %q must be positive", t.text))
	}
	return dur, nil
}

func (p *parser) parseCount(min int, what string) (int, *Error) {
	t := p.next()
	n, err := strconv.ParseUint(t.text, 10, 31)
	if t.kind != tokWord || err != nil {
		return 0, errAt(t, fmt.Sprintf("expected %s count, got %s", what, t))
	}
	if int(n) < min {
		return 0, errAt(t, fmt.Sprintf("%s must be at least %d", what, min))
	}
	return int(n), nil
}

func (p *parser) parseSample(d *Directives) *Error {
	t := p.next()
	if t.kind != tokWord || !strings.HasSuffix(t.text, "%") {
		return errAt(t, fmt.Sprintf("expected percentage (e.g. 10%%), got %s", t))
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.text, "%"), 64)
	if err != nil {
		return errAt(t, fmt.Sprintf("bad percentage %q", t.text))
	}
	bp := int(v*100 + 0.5)
	if bp < 1 || bp > 10000 {
		return errAt(t, fmt.Sprintf("sample rate %q must be between 0.01%% and 100%%", t.text))
	}
	d.SampleBP = bp
	if nxt := p.peek(); nxt.kind == tokWord && nxt.text == "seed" {
		p.next()
		st := p.next()
		seed, err := strconv.ParseUint(st.text, 10, 64)
		if st.kind != tokWord || err != nil {
			return errAt(st, fmt.Sprintf("expected seed value, got %s", st))
		}
		d.Seed = seed
		d.HasSeed = true
	}
	return nil
}

// ---- predicates ----

func (p *parser) parsePred() (Pred, *Error) {
	left, err := p.parseAndTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "or" {
		p.next()
		right, err := p.parseAndTerm()
		if err != nil {
			return nil, err
		}
		left = &OrPred{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseAndTerm() (Pred, *Error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "and" {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &AndPred{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Pred, *Error) {
	t := p.peek()
	if t.kind == tokPunct && t.text == "(" {
		p.next()
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return pred, nil
	}
	if t.kind == tokWord && t.text == "not" {
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &NotPred{X: inner}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Pred, *Error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, errAt(t, fmt.Sprintf("expected predicate, got %s", t))
	}
	if t.text == "priority" || t.text == "id" {
		subject := SubjectPriority
		if t.text == "id" {
			subject = SubjectID
		}
		op := p.next()
		switch {
		case op.kind == tokPunct && (op.text == "=" || op.text == "<" || op.text == ">" || op.text == "<=" || op.text == ">="):
		default:
			return nil, errAt(op, fmt.Sprintf("expected comparison operator after %q, got %s", t.text, op))
		}
		vt := p.next()
		v, err := strconv.ParseUint(vt.text, 10, 63)
		if vt.kind != tokWord || err != nil {
			return nil, errAt(vt, fmt.Sprintf("expected number, got %s", vt))
		}
		return &IntPred{Subject: subject, Op: op.text, Value: v}, nil
	}
	f, ok := fieldIDs[t.text]
	if !ok {
		return nil, errAt(t, fmt.Sprintf("unknown field %q (known: %s)", t.text, strings.Join(FieldNames(), ", ")))
	}
	op := p.next()
	switch {
	case op.kind == tokWord && op.text == "in":
		ct := p.next()
		if ct.kind != tokWord {
			return nil, errAt(ct, fmt.Sprintf("expected CIDR (addr/len), got %s", ct))
		}
		slash := strings.LastIndexByte(ct.text, '/')
		if slash < 0 {
			return nil, errAt(ct, fmt.Sprintf("expected CIDR (addr/len), got %q", ct.text))
		}
		v, perr := parseFieldValue(f, ct.text[:slash])
		if perr != "" {
			return nil, errAt(ct, perr)
		}
		width := header.Width(f)
		plen, err := strconv.Atoi(ct.text[slash+1:])
		if err != nil || plen < 0 || plen > width {
			return nil, errAt(ct, fmt.Sprintf("prefix length in %q must be between 0 and %d", ct.text, width))
		}
		mask := header.WidthMask(f) &^ (1<<uint(width-plen) - 1)
		return &FieldPred{Field: f, Tern: header.Ternary{Value: v & mask, Mask: mask}, Prefix: true, Plen: plen}, nil
	case op.kind == tokPunct && op.text == "=":
		vt := p.next()
		if vt.kind != tokWord {
			return nil, errAt(vt, fmt.Sprintf("expected value, got %s", vt))
		}
		v, perr := parseFieldValue(f, vt.text)
		if perr != "" {
			return nil, errAt(vt, perr)
		}
		return &FieldPred{Field: f, Tern: header.Ternary{Value: v, Mask: header.WidthMask(f)}}, nil
	default:
		return nil, errAt(op, fmt.Sprintf("expected 'in' or '=' after field %q, got %s", t.text, op))
	}
}

// parseFieldValue parses a field literal: dotted quad (IP fields and any
// 32-bit use), 0x-prefixed hex, or decimal. Returns a message instead of
// an error so the caller attaches the token position.
func parseFieldValue(f header.FieldID, s string) (uint64, string) {
	var v uint64
	if strings.Count(s, ".") == 3 {
		for i, part := range strings.SplitN(s, ".", 4) {
			b, err := strconv.ParseUint(part, 10, 8)
			if err != nil {
				return 0, fmt.Sprintf("bad address %q", s)
			}
			v |= b << uint(24-8*i)
		}
	} else {
		var err error
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			v, err = strconv.ParseUint(s[2:], 16, 64)
		} else {
			v, err = strconv.ParseUint(s, 10, 64)
		}
		if err != nil {
			return 0, fmt.Sprintf("bad value %q", s)
		}
	}
	if v&^header.WidthMask(f) != 0 {
		return 0, fmt.Sprintf("value %q does not fit %s (%d bits)", s, f, header.Width(f))
	}
	return v, ""
}
