package monocle

// Verifier: the single-switch verification facade. It owns one expected
// flow table and the incremental probe engine compiled for it, and turns
// table operations into the probes that confirm them in the data plane.

import (
	"context"
	"fmt"
	"sync"

	"monocle/internal/flowtable"
	"monocle/internal/probe"
)

// Verifier verifies one switch's flow table: it tracks the expected rule
// set, generates steady-state probes for any installed rule, and builds
// dynamic-update confirmation probes for additions, modifications, and
// deletions. The compiled table library is cached across operations —
// changing a handful of rules recompiles only those rules.
//
// A Verifier is safe for concurrent use; operations serialize on an
// internal mutex (whole-table sweeps parallelize internally across the
// configured worker budget).
type Verifier struct {
	mu    sync.Mutex
	set   settings
	id    uint32
	gen   *probe.Generator
	table *flowtable.Table
	cache *probe.SessionCache
	epoch uint64
}

// NewVerifier returns a Verifier for one switch. With no options, probes
// carry no Collect constraint (useful for offline generation and tests);
// production monitoring sets WithProbeTag (or a switch id via Fleet) so
// probes are catchable downstream.
func NewVerifier(opts ...Option) (*Verifier, error) {
	return newVerifier(0, nil, opts)
}

// newVerifier builds a Verifier for switch id, merging fleet-level and
// per-switch options.
func newVerifier(id uint32, base *settings, opts []Option) (*Verifier, error) {
	set := defaultSettings()
	if base != nil {
		set = *base
	}
	set.apply(opts)
	v := &Verifier{
		set:   set,
		id:    id,
		gen:   probe.NewGenerator(set.generatorConfig(id)),
		table: flowtable.New(),
	}
	v.table.Miss = set.miss
	v.cache = v.gen.NewSessionCache(v.table)
	return v, nil
}

// SwitchID returns the switch id this Verifier was registered under in a
// Fleet (zero for standalone verifiers).
func (v *Verifier) SwitchID() uint32 { return v.id }

// Install inserts rules into the expected table without generating
// confirmation probes (pre-existing state, catching rules, bulk loads).
// It stops at the first insert error and returns it.
func (v *Verifier) Install(rules ...*Rule) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range rules {
		if err := v.table.Insert(r); err != nil {
			v.epoch++
			return err
		}
	}
	v.epoch++
	return nil
}

// Add inserts a rule and returns the dynamic-update confirmation probe:
// the addition has reached the data plane once injecting the probe
// produces its Present outcome (Judge returns VerdictConfirmed).
// ErrUnmonitorable means the rule was added but cannot be confirmed by
// probing.
func (v *Verifier) Add(r *Rule) (*Probe, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.table.Insert(r); err != nil {
		return nil, err
	}
	v.epoch++
	return v.probeLocked(r)
}

// Modify replaces the action list of rule id and returns the probe that
// distinguishes the new version from the old: Present corresponds to the
// new actions being active, Absent to the old ones.
func (v *Verifier) Modify(id uint64, actions []Action) (*Probe, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old, ok := v.table.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	p, genErr := v.gen.GenerateModification(v.table, old, actions)
	if err := v.table.Modify(id, actions); err != nil {
		return nil, err
	}
	v.epoch++
	return p, genErr
}

// Delete removes rule id and returns the probe confirming the deletion:
// it is confirmed once injecting the probe produces its Absent outcome
// (Judge returns VerdictAbsent — the packet fell through to the
// underlying rule or the table miss).
func (v *Verifier) Delete(id uint64) (*Probe, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old, ok := v.table.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	// Generate while the rule is still present: the probe needs both
	// hypotheses of the pre-deletion table.
	p, genErr := v.probeLocked(old)
	if err := v.table.Delete(id); err != nil {
		return nil, err
	}
	v.epoch++
	return p, genErr
}

// ProbeFor generates (or re-uses from the compiled library) the
// steady-state probe for an installed rule.
func (v *Verifier) ProbeFor(id uint64) (*Probe, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r, ok := v.table.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	return v.probeLocked(r)
}

// probeLocked generates a probe for a rule of the current table through
// the epoch-aware session cache, falling back to one-shot generation when
// no session can be built.
func (v *Verifier) probeLocked(r *Rule) (*Probe, error) {
	sess, err := v.cache.Session(v.epoch)
	if err != nil {
		return v.gen.Generate(v.table, r)
	}
	return sess.Generate(r)
}

// Sweep generates probes for every installed rule — the steady-state
// monitoring set — in table priority order, fanning the solves out over
// the configured worker budget. Results are deterministic: the probe set
// is bit-identical for any worker count. Cancelling the context stops the
// sweep early; unprocessed rules carry the context error.
func (v *Verifier) Sweep(ctx context.Context) []ProbeResult {
	res, _ := v.SweepStats(ctx)
	return res
}

// SweepStats is Sweep surfacing per-worker solver statistics.
func (v *Verifier) SweepStats(ctx context.Context) ([]ProbeResult, []WorkerStats) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sweepLocked(ctx, v.set.effectiveWorkers())
}

// sweepLocked runs one sweep with an explicit worker count (the Fleet
// sharding path). Callers hold v.mu.
func (v *Verifier) sweepLocked(ctx context.Context, workers int) ([]ProbeResult, []WorkerStats) {
	return v.cache.GenerateAllStats(ctx, v.epoch, workers)
}

// sweepShard is the Fleet entry point: one sweep under the member's share
// of the fleet worker budget. It returns the epoch the sweep actually ran
// at, read under the same lock, so concurrent table mutations cannot
// mislabel the results.
func (v *Verifier) sweepShard(ctx context.Context, workers int) (uint64, []ProbeResult) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res, _ := v.sweepLocked(ctx, workers)
	return v.epoch, res
}

// sweepSubset generates probes for the given rule ids only — one switch's
// share of a policy probe plan. Rules are processed sequentially in table
// priority order through the epoch's cached session, so the result slice
// is deterministic for any worker budget (unknown ids are skipped: the
// plan may lag a concurrent table change by one round). Cancelling the
// context stops the sweep early; unprocessed rules carry the context
// error.
func (v *Verifier) sweepSubset(ctx context.Context, ids []uint64) (uint64, []ProbeResult) {
	v.mu.Lock()
	defer v.mu.Unlock()
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []ProbeResult
	for _, r := range v.table.Rules() {
		if !want[r.ID] {
			continue
		}
		if err := ctx.Err(); err != nil {
			out = append(out, ProbeResult{Rule: r, Err: err})
			continue
		}
		p, err := v.probeLocked(r)
		out = append(out, ProbeResult{Rule: r, Probe: p, Err: err})
	}
	return v.epoch, out
}

// Rule returns a copy of installed rule id, if present.
func (v *Verifier) Rule(id uint64) (*Rule, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	r, ok := v.table.Get(id)
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Rules returns the installed rules in table priority order.
func (v *Verifier) Rules() []*Rule {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.table.Rules()
}

// Len returns the number of installed rules.
func (v *Verifier) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.table.Len()
}

// Epoch returns the table-change epoch (bumped on every mutation).
func (v *Verifier) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// restoreEpoch fast-forwards the table-change epoch to a persisted value
// (never backwards). The restart path needs it: a restored Differ carries
// the pre-restart epoch, and a fresh Verifier restarting from epoch zero
// would stamp every post-restart sweep event with an epoch the Differ
// discards as stale.
func (v *Verifier) restoreEpoch(e uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e > v.epoch {
		v.epoch = e
	}
}

// CacheStats returns a snapshot of the session-cache counters (hits,
// delta recompiles, rebuilds).
func (v *Verifier) CacheStats() CacheStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cache.Stats
}

// String identifies the verifier in logs.
func (v *Verifier) String() string { return fmt.Sprintf("verifier(S%d)", v.id) }
