package monocle_test

// Facade-level tests: the fleet differential determinism guarantee, the
// verifier dynamic-update lifecycle, sweep streaming, JSON records, and
// the multiplexer's concurrent-routing contract.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"monocle"
	"monocle/internal/dataset"
)

// fleetProfile builds switch id's table variant (deterministic per id).
func fleetProfile(id uint32, rules int) dataset.Profile {
	p := dataset.Stanford()
	p.Rules = rules
	p.Seed = int64(id) * 7717
	return p
}

// TestFleetSweepMatchesStandaloneVerifiers is the fleet-level
// differential test: the per-switch probe sets produced by a Fleet sweep
// must be bit-identical to independent standalone Verifier runs, for
// several fleet worker budgets (the sharding must never leak into the
// results — the same guarantee PR 2 pinned for single-table sweeps).
func TestFleetSweepMatchesStandaloneVerifiers(t *testing.T) {
	const nSwitches, nRules = 4, 60

	// Reference: one standalone Verifier per switch, swept sequentially.
	type ref struct {
		ids     []uint64
		headers []monocle.Header
		unmon   []bool
	}
	want := make(map[uint32]*ref)
	for id := uint32(1); id <= nSwitches; id++ {
		v, err := monocle.NewVerifier(
			monocle.WithProbeTag(uint64(id)),
			monocle.WithWorkers(1),
		)
		if err != nil {
			t.Fatal(err)
		}
		_, rules := dataset.Generate(fleetProfile(id, nRules))
		if err := v.Install(rules...); err != nil {
			t.Fatal(err)
		}
		r := &ref{}
		for _, res := range v.Sweep(context.Background()) {
			switch {
			case res.Err == nil:
				r.ids = append(r.ids, res.Rule.ID)
				r.headers = append(r.headers, res.Probe.Header)
				r.unmon = append(r.unmon, false)
			case errors.Is(res.Err, monocle.ErrUnmonitorable):
				r.ids = append(r.ids, res.Rule.ID)
				r.headers = append(r.headers, monocle.Header{})
				r.unmon = append(r.unmon, true)
			default:
				t.Fatalf("switch %d rule %d: unexpected error %v", id, res.Rule.ID, res.Err)
			}
		}
		if len(r.ids) == 0 {
			t.Fatalf("switch %d: standalone sweep produced nothing", id)
		}
		want[id] = r
	}

	for _, budget := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", budget), func(t *testing.T) {
			fleet := monocle.NewFleet(monocle.WithWorkers(budget))
			for id := uint32(1); id <= nSwitches; id++ {
				v, err := fleet.AddSwitch(id)
				if err != nil {
					t.Fatal(err)
				}
				_, rules := dataset.Generate(fleetProfile(id, nRules))
				if err := v.Install(rules...); err != nil {
					t.Fatal(err)
				}
			}
			got := map[uint32]int{} // per-switch cursor into the reference
			for _, ev := range fleet.Sweep(context.Background()) {
				w, ok := want[ev.SwitchID]
				if !ok {
					t.Fatalf("event for unknown switch %d", ev.SwitchID)
				}
				i := got[ev.SwitchID]
				if i >= len(w.ids) {
					t.Fatalf("switch %d: more fleet results than standalone", ev.SwitchID)
				}
				if ev.Result.Rule.ID != w.ids[i] {
					t.Fatalf("switch %d result %d: rule %d, standalone had %d (order diverged)",
						ev.SwitchID, i, ev.Result.Rule.ID, w.ids[i])
				}
				unmon := errors.Is(ev.Result.Err, monocle.ErrUnmonitorable)
				if ev.Result.Err != nil && !unmon {
					t.Fatalf("switch %d rule %d: unexpected error %v", ev.SwitchID, ev.Result.Rule.ID, ev.Result.Err)
				}
				if unmon != w.unmon[i] {
					t.Fatalf("switch %d rule %d: monitorability diverged (fleet unmon=%v)",
						ev.SwitchID, ev.Result.Rule.ID, unmon)
				}
				if !unmon && ev.Result.Probe.Header != w.headers[i] {
					t.Fatalf("switch %d rule %d: header %v vs standalone %v — fleet probe set is not bit-identical",
						ev.SwitchID, ev.Result.Rule.ID, ev.Result.Probe.Header, w.headers[i])
				}
				got[ev.SwitchID] = i + 1
			}
			for id, w := range want {
				if got[id] != len(w.ids) {
					t.Fatalf("switch %d: fleet produced %d results, standalone %d", id, got[id], len(w.ids))
				}
			}
		})
	}
}

// TestFleetStreamDeliversAllAndHonorsContext: Stream must deliver every
// event of a sweep and close; a cancelled context must terminate the
// stream early without deadlocking.
func TestFleetStreamDeliversAllAndHonorsContext(t *testing.T) {
	fleet := monocle.NewFleet(monocle.WithWorkers(2))
	total := 0
	for id := uint32(1); id <= 3; id++ {
		v, err := fleet.AddSwitch(id)
		if err != nil {
			t.Fatal(err)
		}
		_, rules := dataset.Generate(fleetProfile(id, 30))
		if err := v.Install(rules...); err != nil {
			t.Fatal(err)
		}
		total += len(rules)
	}
	n := 0
	for range fleet.Stream(context.Background()) {
		n++
	}
	if n != total {
		t.Fatalf("stream delivered %d events for %d rules", n, total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ch := fleet.Stream(ctx)
	<-ch // at least one event flows
	cancel()
	for range ch { // must drain and close, not deadlock
	}
}

// TestFleetStreamCancelDeterministic pins the cancellation contract: once
// the context is cancelled, delivery stops deterministically. At most the
// single event already offered to the consumer at cancellation time may
// still arrive; after that the channel must close — even though the
// consumer stopped draining for a while — instead of delivering a random
// subset of the in-flight sweep results.
func TestFleetStreamCancelDeterministic(t *testing.T) {
	fleet := monocle.NewFleet(monocle.WithWorkers(2))
	for id := uint32(1); id <= 4; id++ {
		v, err := fleet.AddSwitch(id)
		if err != nil {
			t.Fatal(err)
		}
		_, rules := dataset.Generate(fleetProfile(id, 40))
		if err := v.Install(rules...); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := fleet.Stream(ctx)
		<-ch // the sweep is live
		cancel()
		// Deliberately no draining across the cancellation window: the
		// stream must shut itself down rather than wait for a consumer.
		time.Sleep(10 * time.Millisecond)
		extra := 0
		deadline := time.After(30 * time.Second)
		for open := true; open; {
			select {
			case _, ok := <-ch:
				if !ok {
					open = false
					break
				}
				if extra++; extra > 1 {
					t.Fatalf("round %d: %d events delivered after cancellation; at most the one in-flight event may arrive", round, extra)
				}
			case <-deadline:
				t.Fatalf("round %d: stream did not close after cancellation without a draining consumer", round)
			}
		}
	}
}

// TestVerifierDynamicUpdateLifecycle drives the single-switch facade
// through add → confirm, modify → confirm, delete → confirm, using Judge
// on synthetic observations taken from the probes' own outcomes.
func TestVerifierDynamicUpdateLifecycle(t *testing.T) {
	v, err := monocle.NewVerifier(monocle.WithProbeTag(7))
	if err != nil {
		t.Fatal(err)
	}
	low := &monocle.Rule{
		ID: 1, Priority: 1,
		Match:   monocle.MatchAll().WithExact(monocle.EthType, monocle.EthTypeIPv4),
		Actions: []monocle.Action{monocle.Output(9)},
	}
	if err := v.Install(low); err != nil {
		t.Fatal(err)
	}

	rule := &monocle.Rule{
		ID: 2, Priority: 10,
		Match: monocle.MatchAll().
			WithExact(monocle.EthType, monocle.EthTypeIPv4).
			WithExact(monocle.IPSrc, 10<<24|1),
		Actions: []monocle.Action{monocle.Output(2)},
	}
	p, err := v.Add(rule)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if len(p.Present.Emissions) == 0 {
		t.Fatal("addition probe has no Present emissions")
	}
	em := p.Present.Emissions[0]
	if got := monocle.Judge(p, em.Port, em.Header); got != monocle.VerdictConfirmed {
		t.Fatalf("Judge(present observation) = %v, want VerdictConfirmed", got)
	}
	if len(p.Absent.Emissions) > 0 {
		ae := p.Absent.Emissions[0]
		if got := monocle.Judge(p, ae.Port, ae.Header); got != monocle.VerdictAbsent {
			t.Fatalf("Judge(absent observation) = %v, want VerdictAbsent", got)
		}
	}

	mp, err := v.Modify(rule.ID, []monocle.Action{monocle.Output(3)})
	if err != nil {
		t.Fatalf("Modify: %v", err)
	}
	if len(mp.Present.Emissions) == 0 || mp.Present.Emissions[0].Port != 3 {
		t.Fatalf("modification probe Present should emit on port 3, got %+v", mp.Present)
	}
	if len(mp.Absent.Emissions) == 0 || mp.Absent.Emissions[0].Port != 2 {
		t.Fatalf("modification probe Absent should emit on old port 2, got %+v", mp.Absent)
	}

	dp, err := v.Delete(rule.ID)
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := v.ProbeFor(rule.ID); !errors.Is(err, monocle.ErrNotFound) {
		t.Fatalf("rule still present after Delete: %v", err)
	}
	// Deletion confirmed: the probe falls through to the low rule.
	if len(dp.Absent.Emissions) == 0 {
		t.Fatal("deletion probe has no Absent emissions")
	}
	de := dp.Absent.Emissions[0]
	if got := monocle.Judge(dp, de.Port, de.Header); got != monocle.VerdictAbsent {
		t.Fatalf("Judge(post-deletion observation) = %v, want VerdictAbsent", got)
	}
	if got := monocle.Judge(dp, 42, monocle.Header{}); got != monocle.VerdictUnexpected {
		t.Fatalf("Judge(garbage observation) = %v, want VerdictUnexpected", got)
	}
}

// TestResultRecordJSON pins the -json line format consumed by scripts:
// unmonitorable rules and probe-carrying rules render distinctly, and
// zero-valued header fields are omitted.
func TestResultRecordJSON(t *testing.T) {
	v, err := monocle.NewVerifier(monocle.WithProbeTag(1))
	if err != nil {
		t.Fatal(err)
	}
	rule := &monocle.Rule{
		ID: 5, Priority: 10,
		Match:   monocle.MatchAll().WithExact(monocle.EthType, monocle.EthTypeIPv4),
		Actions: []monocle.Action{monocle.Output(2)},
	}
	if err := v.Install(rule); err != nil {
		t.Fatal(err)
	}
	results := v.Sweep(context.Background())
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("unexpected sweep results %+v", results)
	}
	rec := monocle.NewResultRecord(3, 9, results[0])
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["switch"].(float64) != 3 || back["epoch"].(float64) != 9 || back["rule"].(float64) != 5 {
		t.Fatalf("record identity fields wrong: %s", raw)
	}
	probe, ok := back["probe"].(map[string]any)
	if !ok {
		t.Fatalf("record lacks probe object: %s", raw)
	}
	hdr := probe["header"].(map[string]any)
	if _, has := hdr["in_port"]; has && hdr["in_port"].(float64) == 0 {
		t.Fatalf("zero-valued header field not omitted: %s", raw)
	}

	unmon := monocle.ProbeResult{Rule: rule, Err: monocle.ErrUnmonitorable}
	raw, err = json.Marshal(monocle.NewResultRecord(0, 0, unmon))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"rule":5,"unmonitorable":true}` {
		t.Fatalf("unmonitorable record format changed: %s", raw)
	}
}

// TestMultiplexerConcurrentUse exercises the fleet-safe routing contract:
// concurrent Register and RouteCaught (to absent owners) must be safe,
// and Monitors() must iterate deterministically by switch id.
func TestMultiplexerConcurrentUse(t *testing.T) {
	mux := monocle.NewMultiplexer()
	s := monocle.NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mon := monocle.NewMonitor(s, monocle.NewMonitorConfig(uint32(8-i)))
			mux.Register(mon)
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Unowned probes only: exercises the locking without
			// violating any Monitor's single-threaded contract.
			mux.RouteCaught(monocle.ProbeMetadata{SwitchID: 999}, 1, monocle.Header{})
		}()
	}
	wg.Wait()
	mons := mux.Monitors()
	if len(mons) != 8 {
		t.Fatalf("registered 8 monitors, got %d", len(mons))
	}
	for i, m := range mons {
		if m.Cfg.SwitchID != uint32(i+1) {
			t.Fatalf("Monitors() not sorted by id: %v at %d", m.Cfg.SwitchID, i)
		}
	}
	if st := mux.Stats(); st.NoOwner != 8 {
		t.Fatalf("NoOwner = %d, want 8", st.NoOwner)
	}
}
