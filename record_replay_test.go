package monocle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"monocle/internal/netx"
)

// replaySessionLog captures the observable outputs of one service
// session — the per-round ResultRecord streams, every alert, and every
// rule-update verdict — the artifacts a replay must reproduce
// bit-for-bit.
type replaySessionLog struct {
	rounds   [][]byte
	alerts   []Alert
	verdicts []string
}

func (l *replaySessionLog) sweep(t *testing.T, svc *Service) []Alert {
	t.Helper()
	alerts := svc.SweepRound(context.Background())
	l.alerts = append(l.alerts, alerts...)
	b, err := json.Marshal(svc.LastSweep())
	if err != nil {
		t.Fatalf("marshaling sweep records: %v", err)
	}
	l.rounds = append(l.rounds, b)
	return alerts
}

func (l *replaySessionLog) apply(t *testing.T, svc *Service, op RuleOp) string {
	t.Helper()
	reply, err := svc.ApplyRule(1, op)
	if err != nil {
		t.Fatalf("%s rule %d: %v", op.Op, opRuleID(op), err)
	}
	l.verdicts = append(l.verdicts, reply.Verdict)
	return reply.Verdict
}

// TestRecordReplayLiveSession is the end-to-end record/replay pin: a
// live ProxyBackend session over real TCP — installs, clean sweeps, an
// injected data-plane failure, a recovery — is recorded with
// WithRecordDir, then replayed through a ReplayBackend in a fresh
// Service with the network provably unreachable. The replay must
// reproduce the live session's ResultRecord streams byte-for-byte, the
// same alert sequence, and the same update verdicts, with zero dials.
func TestRecordReplayLiveSession(t *testing.T) {
	recDir := t.TempDir()
	serviceOpts := func() []Option {
		return []Option{
			WithWorkers(1),
			WithDebounce(1),
			WithDetectionTimeout(150 * time.Millisecond),
		}
	}

	// ---- Live session over real TCP, recorded. ----
	srv, err := StartSwitchServer(SwitchServerConfig{ID: 1, Ports: []PortID{1, 2, 3, 4}, Profile: SwitchProfile{}})
	if err != nil {
		t.Fatalf("starting switch server: %v", err)
	}
	defer srv.Close()

	live := &replaySessionLog{}
	svc := NewService(append(serviceOpts(), WithRecordDir(recDir))...)
	spec := SwitchSpec{
		ID: 1, Backend: "proxy", Address: srv.Addr(),
		Ports: []uint16{1, 2, 3, 4},
		Peers: map[uint16]uint32{1: 1, 2: 1, 3: 1, 4: 1},
	}
	if _, err := svc.AddSwitch(spec); err != nil {
		t.Fatalf("adding live switch: %v", err)
	}

	rules := []RuleSpec{scenarioRule(0, 30, 2), scenarioRule(1, 20, 3), scenarioRule(2, 10, 4)}
	for _, rs := range rules {
		rs := rs
		if v := live.apply(t, svc, RuleOp{Op: "add", Rule: &rs}); v != "confirmed" {
			t.Fatalf("live add rule %d: verdict %q, want confirmed", rs.ID, v)
		}
	}
	live.sweep(t, svc)
	live.sweep(t, svc)

	srv.FailRule(101)
	if alerts := live.sweep(t, svc); len(alerts) != 1 || AlertKey(alerts[0]) != failKey(1, 101) {
		t.Fatalf("live failure sweep alerts = %v, want exactly %s", alerts, failKey(1, 101))
	}

	srv.HealRule(101)
	heal := rules[1]
	if v := live.apply(t, svc, RuleOp{Op: "add", Rule: &heal, Dataplane: "actual"}); v != "none" {
		t.Fatalf("live heal: verdict %q, want none", v)
	}
	if alerts := live.sweep(t, svc); len(alerts) != 1 || AlertKey(alerts[0]) != recoverKey(1, 101) {
		t.Fatalf("live recovery sweep alerts = %v, want exactly %s", alerts, recoverKey(1, 101))
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("closing live service: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("closing switch server: %v", err)
	}

	// ---- Replay: fresh service, network unreachable. ----
	var dials atomic.Int64
	restore := netx.SetDialHook(func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return nil, fmt.Errorf("network disabled for replay (dialed %s %s)", network, addr)
	})
	defer restore()

	tracePath := filepath.Join(recDir, "switch-1.trace")
	tr, err := ReadTraceFile(tracePath)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}

	// Rebuild the switch from its recorded spec annotation — ports and
	// peers must match for the probe streams to line up — swapping the
	// live proxy driver for the trace.
	var annos []TraceRecord
	replSpec := SwitchSpec{ID: tr.Header.Switch}
	for _, rec := range tr.Records {
		switch rec.Kind {
		case TraceKindSpec:
			if rec.Spec != nil {
				replSpec = *rec.Spec
			}
		case TraceKindRuleOp, TraceKindRound:
			annos = append(annos, rec)
		}
	}
	if replSpec.Backend != "proxy" {
		t.Fatalf("recorded spec backend = %q, want proxy", replSpec.Backend)
	}
	replSpec.Backend = "replay"
	replSpec.Trace = tracePath
	replSpec.Address = ""

	repl := &replaySessionLog{}
	svc2 := NewService(serviceOpts()...)
	defer svc2.Close()
	if _, err := svc2.AddSwitch(replSpec); err != nil {
		t.Fatalf("adding replay switch: %v", err)
	}

	// Re-drive the recorded session: rule-op annotations replay through
	// the same service entry points, round marks become sweep rounds —
	// the same merge loop cmd/monotrace runs.
	for i := 0; i < len(annos); {
		if annos[i].Kind == TraceKindRuleOp {
			op := annos[i].RuleOp
			i++
			if op == nil {
				continue
			}
			if op.Op == "install" {
				if err := svc2.InstallRuleSpecs(1, *op.Rule); err != nil {
					t.Fatalf("replaying install: %v", err)
				}
				continue
			}
			repl.apply(t, svc2, *op)
			continue
		}
		repl.sweep(t, svc2)
		i++
	}

	// The replay must not have diverged, and must never have touched the
	// network.
	be, ok := svc2.Fleet().Backend(1)
	if !ok {
		t.Fatal("replay backend missing from fleet")
	}
	rb, ok := UnwrapBackend(be).(*ReplayBackend)
	if !ok {
		t.Fatalf("fleet backend is %T, want *ReplayBackend", UnwrapBackend(be))
	}
	if div := rb.Divergence(); div != nil {
		t.Fatalf("replay diverged: %v", div)
	}
	if n := dials.Load(); n != 0 {
		t.Fatalf("replay dialed the network %d time(s)", n)
	}

	// Bit-identical session: every round's ResultRecord stream, the full
	// alert sequence, and every update verdict.
	if len(repl.rounds) != len(live.rounds) {
		t.Fatalf("replay ran %d rounds, live ran %d", len(repl.rounds), len(live.rounds))
	}
	for i := range live.rounds {
		if !bytes.Equal(repl.rounds[i], live.rounds[i]) {
			t.Errorf("round %d ResultRecord stream diverged:\n live:   %s\n replay: %s", i+1, live.rounds[i], repl.rounds[i])
		}
	}
	liveAlerts, _ := json.Marshal(live.alerts)
	replAlerts, _ := json.Marshal(repl.alerts)
	if !bytes.Equal(liveAlerts, replAlerts) {
		t.Errorf("alert streams diverged:\n live:   %s\n replay: %s", liveAlerts, replAlerts)
	}
	if len(repl.verdicts) != len(live.verdicts) {
		t.Fatalf("replay saw %d update verdicts, live saw %d", len(repl.verdicts), len(live.verdicts))
	}
	for i := range live.verdicts {
		if repl.verdicts[i] != live.verdicts[i] {
			t.Errorf("update %d verdict: live %q, replay %q", i+1, live.verdicts[i], repl.verdicts[i])
		}
	}
}

// TestReplayDivergenceDetected pins the failure mode: a session that
// departs from its recording (an extra rule operation the live run
// never made) must produce a structured DivergenceError, not a silent
// wrong answer.
func TestReplayDivergenceDetected(t *testing.T) {
	recDir := t.TempDir()

	srv, err := StartSwitchServer(SwitchServerConfig{ID: 1, Ports: []PortID{1, 2}, Profile: SwitchProfile{}})
	if err != nil {
		t.Fatalf("starting switch server: %v", err)
	}
	defer srv.Close()

	svc := NewService(WithWorkers(1), WithRecordDir(recDir), WithDetectionTimeout(150*time.Millisecond))
	if _, err := svc.AddSwitch(SwitchSpec{
		ID: 1, Backend: "proxy", Address: srv.Addr(),
		Ports: []uint16{1, 2}, Peers: map[uint16]uint32{1: 1, 2: 1},
	}); err != nil {
		t.Fatalf("adding live switch: %v", err)
	}
	rs := scenarioRule(0, 10, 2)
	if _, err := svc.ApplyRule(1, RuleOp{Op: "add", Rule: &rs}); err != nil {
		t.Fatalf("live add: %v", err)
	}
	svc.SweepRound(context.Background())
	if err := svc.Close(); err != nil {
		t.Fatalf("closing live service: %v", err)
	}

	svc2 := NewService(WithWorkers(1))
	defer svc2.Close()
	if _, err := svc2.AddSwitch(SwitchSpec{
		ID: 1, Backend: "replay", Trace: filepath.Join(recDir, "switch-1.trace"),
		Ports: []uint16{1, 2}, Peers: map[uint16]uint32{1: 1, 2: 1},
	}); err != nil {
		t.Fatalf("adding replay switch: %v", err)
	}
	// The recording added rule 100 — replaying an add of a different
	// rule departs from the trace.
	wrong := scenarioRule(9, 10, 2)
	if _, err := svc2.ApplyRule(1, RuleOp{Op: "add", Rule: &wrong}); err == nil {
		t.Fatal("divergent ApplyRule succeeded, want DivergenceError")
	}
	be, _ := svc2.Fleet().Backend(1)
	rb := UnwrapBackend(be).(*ReplayBackend)
	div := rb.Divergence()
	if div == nil {
		t.Fatal("Divergence() = nil after divergent call")
	}
	if div.Switch != 1 || div.Got == "" || div.Want == "" {
		t.Fatalf("divergence report incomplete: %+v", div)
	}
}
