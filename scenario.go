package monocle

// The adversarial scenario fleet: seeded, reproducible failure scenarios
// driven end-to-end through a live Service over real TCP SwitchServers —
// rule-churn storms, silent hardware divergence, switch flaps mid-sweep
// (driving the proxy driver's real reconnect machinery through the
// internal/netx fault seam), controller restart during a confirmation
// window, lossy data planes, ECMP/multicast-heavy tables, and priority
// shadowing. Every scenario declares its exact alert sequence — no false
// positives, no misses, exact recovery — and Run fails loudly on any
// departure. Scenario behaviour is byte-identical across solver worker
// budgets: the CI matrix runs each scenario at workers 1, 2, and 8 and
// compares the marshaled alert streams.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"monocle/internal/chaos"
	"monocle/internal/netx"
)

// Scenario is one adversarial robustness scenario: a scripted failure
// story executed against a fresh Service wired to in-process TCP
// switches, declaring the exact alert sequence it must produce.
type Scenario struct {
	// Name identifies the scenario (CI sub-test names, trace artifacts).
	Name string
	// Description is the one-line failure story.
	Description string

	run func(e *scenarioEnv) error
}

// ScenarioResult is one scenario execution's outcome.
type ScenarioResult struct {
	// Name is the scenario's name.
	Name string
	// Workers is the solver worker budget the run used.
	Workers int
	// Rounds is the number of sweep rounds the scenario drove.
	Rounds int
	// Alerts is the full alert sequence the run produced, in raised order.
	Alerts []Alert
	// Stream is the canonical byte form of Alerts (one JSON line per
	// alert): runs of the same scenario must produce byte-identical
	// streams regardless of the worker budget.
	Stream []byte
}

// AlertKey renders an alert's identity — type, switch, and rule for
// rule-level types — the granularity at which scenarios declare their
// expected alert sequences.
func AlertKey(a Alert) string {
	switch a.Type {
	case AlertSwitchStalled, AlertBackendFlapping:
		return fmt.Sprintf("%s(switch %d)", a.Type, a.SwitchID)
	default:
		return fmt.Sprintf("%s(switch %d, rule %d)", a.Type, a.SwitchID, a.Rule)
	}
}

// Run executes the scenario under the given solver worker budget,
// checking the produced alert sequence against the scenario's declared
// one: any missing, extra, or misordered alert is an error. A non-empty
// traceDir records every switch's backend session there (WithRecordDir),
// so a failing scenario leaves a replayable trace behind.
func (sc Scenario) Run(workers int, traceDir string) (*ScenarioResult, error) {
	e := &scenarioEnv{
		name:     sc.Name,
		workers:  workers,
		traceDir: traceDir,
		servers:  make(map[uint32]*SwitchServer),
		events:   make(map[uint32]<-chan BackendEvent),
	}
	defer e.close()
	err := sc.run(e)
	res := &ScenarioResult{Name: sc.Name, Workers: workers, Rounds: e.rounds, Alerts: e.alerts}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, a := range e.alerts {
		if encErr := enc.Encode(a); encErr != nil {
			return res, encErr
		}
	}
	res.Stream = buf.Bytes()
	if err != nil {
		return res, fmt.Errorf("scenario %s (workers %d): %w", sc.Name, workers, err)
	}
	got := make([]string, len(e.alerts))
	for i, a := range e.alerts {
		got[i] = AlertKey(a)
	}
	if len(got) != len(e.expected) {
		return res, fmt.Errorf("scenario %s (workers %d): got %d alerts %v, want %d %v",
			sc.Name, workers, len(got), got, len(e.expected), e.expected)
	}
	for i := range got {
		if got[i] != e.expected[i] {
			return res, fmt.Errorf("scenario %s (workers %d): alert %d is %s, want %s (full sequence %v)",
				sc.Name, workers, i, got[i], e.expected[i], got)
		}
	}
	return res, nil
}

// scenarioEnv is the harness one scenario run executes in.
type scenarioEnv struct {
	name     string
	workers  int
	traceDir string
	opts     []Option
	svc      *Service
	servers  map[uint32]*SwitchServer
	events   map[uint32]<-chan BackendEvent

	rounds   int
	alerts   []Alert
	expected []string
	cleanup  []func()
}

func (e *scenarioEnv) close() {
	if e.svc != nil {
		e.svc.Close()
	}
	for _, srv := range e.servers {
		srv.Close()
	}
	for i := len(e.cleanup) - 1; i >= 0; i-- {
		e.cleanup[i]()
	}
}

// service builds the scenario's Service: the worker budget under test,
// the trace recorder when the run wants artifacts, then the scenario's
// own options.
func (e *scenarioEnv) service(opts ...Option) {
	all := []Option{WithWorkers(e.workers)}
	if e.traceDir != "" {
		all = append(all, WithRecordDir(e.traceDir))
	}
	all = append(all, opts...)
	e.opts = all
	e.svc = NewService(all...)
}

// restart simulates a monitor crash/failover: the service closes (its
// store and backend connections die with it) and a fresh one resumes
// from the same options and persisted state.
func (e *scenarioEnv) restart() error {
	if err := e.svc.Close(); err != nil {
		return fmt.Errorf("closing first life: %w", err)
	}
	e.svc = NewService(e.opts...)
	if err := e.svc.Resume(context.Background()); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	for id := range e.servers {
		if be, ok := e.svc.Fleet().Backend(id); ok {
			e.events[id] = be.Events()
		}
	}
	return nil
}

// tempDir allocates a scratch directory cleaned up with the scenario.
func (e *scenarioEnv) tempDir() (string, error) {
	dir, err := os.MkdirTemp("", "monocle-scenario-")
	if err != nil {
		return "", err
	}
	e.cleanup = append(e.cleanup, func() { os.RemoveAll(dir) })
	return dir, nil
}

// addSwitch starts a SwitchServer and registers it with the service as a
// proxy-backed switch whose ports all catch their own probes.
func (e *scenarioEnv) addSwitch(id uint32, profile SwitchProfile, ports ...uint16) (*SwitchServer, error) {
	pids := make([]PortID, len(ports))
	for i, p := range ports {
		pids[i] = PortID(p)
	}
	srv, err := StartSwitchServer(SwitchServerConfig{ID: id, Ports: pids, Profile: profile})
	if err != nil {
		return nil, err
	}
	e.servers[id] = srv
	peers := make(map[uint16]uint32, len(ports))
	for _, p := range ports {
		peers[p] = id
	}
	spec := SwitchSpec{ID: id, Backend: "proxy", Address: srv.Addr(), Ports: ports, Peers: peers}
	if _, err := e.svc.AddSwitch(spec); err != nil {
		return nil, fmt.Errorf("adding switch %d: %w", id, err)
	}
	if be, ok := e.svc.Fleet().Backend(id); ok {
		e.events[id] = be.Events()
	}
	return srv, nil
}

// sweep drives one sweep round and accumulates its alerts.
func (e *scenarioEnv) sweep() []Alert {
	alerts := e.svc.SweepRound(context.Background())
	e.alerts = append(e.alerts, alerts...)
	e.rounds++
	return alerts
}

// sweepGroups drives one sweep round restricted to the named policy
// groups and accumulates its alerts.
func (e *scenarioEnv) sweepGroups(groups ...string) []Alert {
	alerts := e.svc.SweepRound(context.Background(), groups...)
	e.alerts = append(e.alerts, alerts...)
	e.rounds++
	return alerts
}

// planHasRule reports whether the next compiled probe plan for switch id
// samples rule rid — plan membership is a pure function of (policy,
// switch, rules, round), so a scenario can know a loss will surface
// before it sweeps.
func planHasRule(svc *Service, id uint32, rid uint64) bool {
	for _, p := range svc.ProbePlans() {
		if p.Switch != id {
			continue
		}
		for _, r := range p.Rules {
			if r == rid {
				return true
			}
		}
	}
	return false
}

// apply runs one rule operation and checks the confirmation verdict.
func (e *scenarioEnv) apply(id uint32, op RuleOp, wantVerdict string) error {
	reply, err := e.svc.ApplyRule(id, op)
	if err != nil {
		return fmt.Errorf("switch %d %s rule %d: %w", id, op.Op, opRuleID(op), err)
	}
	if reply.Verdict != wantVerdict {
		return fmt.Errorf("switch %d %s rule %d: verdict %q, want %q", id, op.Op, opRuleID(op), reply.Verdict, wantVerdict)
	}
	return nil
}

// opRuleID names the rule a RuleOp addresses.
func opRuleID(op RuleOp) uint64 {
	if op.ID != 0 {
		return op.ID
	}
	if op.Rule != nil {
		return op.Rule.ID
	}
	return 0
}

// expect appends alerts to the scenario's declared sequence.
func (e *scenarioEnv) expect(keys ...string) { e.expected = append(e.expected, keys...) }

// waitEvent consumes switch id's backend event stream until an event of
// type t arrives. Because the service's event tap queues each event for
// the diff engine before re-emitting it here, an event seen by waitEvent
// is guaranteed to fold into the next sweep round.
func (e *scenarioEnv) waitEvent(id uint32, t BackendEventType, timeout time.Duration) error {
	ch, ok := e.events[id]
	if !ok {
		return fmt.Errorf("no event stream for switch %d", id)
	}
	deadline := time.After(timeout)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return fmt.Errorf("switch %d event stream closed waiting for %s", id, t)
			}
			if ev.Type == t {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("timed out waiting for %s on switch %d", t, id)
		}
	}
}

// restoreRule repairs a hardware-side rule loss injected with FailRule:
// the suppression is lifted and the rule re-applied to the data plane
// only — the expected table never believed it was gone.
func (e *scenarioEnv) restoreRule(id uint32, spec RuleSpec) error {
	e.servers[id].HealRule(spec.ID)
	return e.apply(id, RuleOp{Op: "add", Rule: &spec, Dataplane: "actual"}, "none")
}

// failKey/recoverKey spell the rule-level alert identities.
func failKey(sw uint32, rule uint64) string {
	return fmt.Sprintf("rule_failing(switch %d, rule %d)", sw, rule)
}
func recoverKey(sw uint32, rule uint64) string {
	return fmt.Sprintf("rule_recovered(switch %d, rule %d)", sw, rule)
}

// scenarioRule builds slot's deterministic rule: disjoint /24 matches so
// every rule is independently monitorable.
func scenarioRule(slot, prio int, out uint16) RuleSpec {
	return RuleSpec{
		ID:       uint64(100 + slot),
		Priority: prio,
		Match:    map[string]string{"dl_type": "0x800", "nw_dst": fmt.Sprintf("10.0.%d.0/24", slot)},
		Actions:  []ActionSpec{{Output: out}},
	}
}

// churnOutputs are the egress ports churn plans cycle through.
var churnOutputs = []uint16{2, 3, 4}

// runChurn drives a seeded chaos.Churn plan through the service,
// asserting every confirmation verdict, and returns the specs of the
// rules live at the end, keyed by slot.
//
// Modifies always change the rule's nw_tos rewrite (a fresh value per
// generation): in the scenarios' self-catching topology every port
// reflects to the same catcher switch, so an output-only modify's old
// and new behaviour would be observationally indistinguishable — the
// header rewrite is what lets the confirmation probe tell them apart.
func runChurn(e *scenarioEnv, id uint32, r *chaos.Rand, slots, n, sweepEvery int) (map[int]RuleSpec, error) {
	plan, live := chaos.Churn(r, slots, n)
	specs := make(map[int]RuleSpec)
	gen := make(map[int]int)
	for i, op := range plan {
		switch op.Kind {
		case chaos.OpAdd:
			spec := scenarioRule(op.Slot, 10, churnOutputs[r.Intn(len(churnOutputs))])
			if err := e.apply(id, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
				return nil, fmt.Errorf("plan op %d: %w", i, err)
			}
			specs[op.Slot] = spec
		case chaos.OpModify:
			spec := specs[op.Slot]
			out := spec.Actions[len(spec.Actions)-1].Output
			next := churnOutputs[(indexOf(churnOutputs, out)+1+r.Intn(len(churnOutputs)-1))%len(churnOutputs)]
			gen[op.Slot]++
			tos := uint64((gen[op.Slot]%63 + 1) * 4)
			spec.Actions = []ActionSpec{{Set: &SetFieldSpec{Field: "nw_tos", Value: tos}}, {Output: next}}
			if err := e.apply(id, RuleOp{Op: "modify", ID: spec.ID, Actions: spec.Actions}, "confirmed"); err != nil {
				return nil, fmt.Errorf("plan op %d: %w", i, err)
			}
			specs[op.Slot] = spec
		case chaos.OpDelete:
			spec := specs[op.Slot]
			if err := e.apply(id, RuleOp{Op: "delete", ID: spec.ID}, "confirmed"); err != nil {
				return nil, fmt.Errorf("plan op %d: %w", i, err)
			}
			delete(specs, op.Slot)
		}
		if sweepEvery > 0 && (i+1)%sweepEvery == 0 {
			e.sweep()
		}
	}
	if len(specs) != len(live) {
		return nil, fmt.Errorf("live-set mismatch: specs %d, plan says %v", len(specs), live)
	}
	return specs, nil
}

func indexOf(s []uint16, v uint16) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return 0
}

// Scenarios returns the adversarial scenario fleet. Each scenario is
// self-contained and deterministic: same seed, same faults, same exact
// alert sequence at any worker budget.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "churn_storm",
			Description: "seeded add/modify/delete storm with sweeps interleaved: every confirmation lands, no alert ever fires",
			run: func(e *scenarioEnv) error {
				e.service(WithDetectionTimeout(150 * time.Millisecond))
				if _, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4); err != nil {
					return err
				}
				if _, err := runChurn(e, 1, chaos.New(0xC0FFEE), 6, 18, 6); err != nil {
					return err
				}
				e.sweep()
				e.sweep()
				return nil // expected: no alerts at all
			},
		},
		{
			Name:        "churn_divergence",
			Description: "after a churn storm, seeded victims silently vanish from the data plane: exactly those rules alert, then recover exactly once",
			run: func(e *scenarioEnv) error {
				e.service(WithDetectionTimeout(150 * time.Millisecond))
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				r := chaos.New(0xDEADBEEF)
				specs, err := runChurn(e, 1, r, 6, 18, 0)
				if err != nil {
					return err
				}
				e.sweep() // healthy baseline: no alerts
				// Seeded victims: live slots, ascending (the differ's
				// alert order within a round).
				liveSlots := make([]int, 0, len(specs))
				for s := range specs {
					liveSlots = append(liveSlots, s)
				}
				victims := chaos.New(0xFEED).Pick(len(liveSlots), 2)
				sortInts(liveSlots)
				for _, vi := range victims {
					srv.FailRule(specs[liveSlots[vi]].ID)
				}
				e.sweep()
				for _, vi := range victims {
					e.expect(failKey(1, specs[liveSlots[vi]].ID))
				}
				for _, vi := range victims {
					if err := e.restoreRule(1, specs[liveSlots[vi]]); err != nil {
						return err
					}
				}
				e.sweep()
				for _, vi := range victims {
					e.expect(recoverKey(1, specs[liveSlots[vi]].ID))
				}
				return nil
			},
		},
		{
			Name:        "flap_midsweep",
			Description: "switch TCP session dies mid-sweep with redial gated shut; reconnect heals it and the one failed rule recovers exactly once",
			run: func(e *scenarioEnv) error {
				e.service(
					WithDetectionTimeout(150*time.Millisecond),
					WithReconnectBackoff(25*time.Millisecond, 100*time.Millisecond),
					WithDebounce(2),
				)
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				r100 := scenarioRule(0, 30, 2)
				r101 := scenarioRule(1, 20, 3)
				r102 := scenarioRule(2, 10, 4)
				for _, rs := range []RuleSpec{r100, r101, r102} {
					spec := rs
					if err := e.apply(1, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
				}
				e.sweep() // healthy
				srv.FailRule(r101.ID)
				e.sweep() // bad streak 1: debounced, quiet
				e.sweep() // bad streak 2: rule_failing
				e.expect(failKey(1, r101.ID))

				// Gate the redial path shut through the transport fault
				// seam, then kill the connection after exactly one more
				// caught probe — the flap lands mid-sweep and the driver's
				// reconnect machinery spins against the gate.
				restore := netx.SetDialHook(func(ctx context.Context, network, addr string) (net.Conn, error) {
					return nil, fmt.Errorf("chaos: redial gated")
				})
				srv.DropAfterCatches(1)
				e.sweep() // flap mid-sweep: no new alerts
				e.sweep() // full-outage round: folds skip, stall not yet reached
				restore()
				if err := e.waitEvent(1, BackendReconnected, 10*time.Second); err != nil {
					return err
				}
				if err := e.restoreRule(1, r101); err != nil {
					return err
				}
				e.sweep() // exactly one rule_recovered for the healed rule
				e.expect(recoverKey(1, r101.ID))
				return nil
			},
		},
		{
			Name:        "backend_flapping",
			Description: "the transport dies and reconnects every round: rules stay healthy, and exactly one backend_flapping alert fires at the threshold",
			run: func(e *scenarioEnv) error {
				e.service(
					WithDetectionTimeout(150*time.Millisecond),
					WithReconnectBackoff(10*time.Millisecond, 50*time.Millisecond),
					WithBackendFlapWindow(6, 3),
				)
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2)
				if err != nil {
					return err
				}
				for slot := 0; slot < 2; slot++ {
					spec := scenarioRule(slot, 10, 2)
					if err := e.apply(1, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
				}
				e.sweep() // healthy baseline
				for i := 0; i < 3; i++ {
					srv.Drop()
					if err := e.waitEvent(1, BackendReconnected, 10*time.Second); err != nil {
						return fmt.Errorf("flap %d: %w", i, err)
					}
					e.sweep()
				}
				// Third completed cycle crosses the threshold; the alert
				// fires once and stays latched while the flapping lasts.
				e.expect("backend_flapping(switch 1)")
				return nil
			},
		},
		{
			Name:        "confirm_window_drop",
			Description: "a rule's confirmation window is lost and the monitor restarts before the next sweep: no false alerts survive the failover, and a real fault alerts exactly once",
			run: func(e *scenarioEnv) error {
				stateDir, err := e.tempDir()
				if err != nil {
					return err
				}
				e.service(
					WithDetectionTimeout(120*time.Millisecond),
					WithStateDir(stateDir),
				)
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3)
				if err != nil {
					return err
				}
				ra := scenarioRule(0, 20, 2)
				if err := e.apply(1, RuleOp{Op: "add", Rule: &ra}, "confirmed"); err != nil {
					return err
				}
				e.sweep() // healthy
				// The data plane goes dark exactly during rule B's
				// confirmation window: the FlowMod commits, the probe is
				// eaten, the window closes unconfirmed ("absent").
				srv.SetLossy(true)
				rb := scenarioRule(1, 10, 3)
				if err := e.apply(1, RuleOp{Op: "add", Rule: &rb}, "absent"); err != nil {
					return err
				}
				// Controller failover mid-story: the monitor dies here and
				// a fresh process resumes from the WAL.
				if err := e.restart(); err != nil {
					return err
				}
				srv.SetLossy(false)
				e.sweep() // both rules confirmed; the failover raised nothing
				srv.FailRule(ra.ID)
				e.sweep()
				e.expect(failKey(1, ra.ID))
				if err := e.restoreRule(1, ra); err != nil {
					return err
				}
				e.sweep()
				e.expect(recoverKey(1, ra.ID))
				return nil
			},
		},
		{
			Name:        "slow_lossy",
			Description: "a slow switch profile whose data plane starts eating every probe: every monitorable rule alerts, then recovers, exactly once each",
			run: func(e *scenarioEnv) error {
				e.service(WithDetectionTimeout(150 * time.Millisecond))
				srv, err := e.addSwitch(1, ProfileDellS4810(), 1, 2, 3, 4)
				if err != nil {
					return err
				}
				rules := []RuleSpec{
					scenarioRule(0, 30, 2),
					scenarioRule(1, 20, 3),
					scenarioRule(2, 10, 4),
				}
				for _, rs := range rules {
					spec := rs
					if err := e.apply(1, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
				}
				e.sweep() // healthy
				srv.SetLossy(true)
				e.sweep() // every positive probe times out: all rules fail
				for _, rs := range rules {
					e.expect(failKey(1, rs.ID))
				}
				srv.SetLossy(false)
				e.sweep()
				for _, rs := range rules {
					e.expect(recoverKey(1, rs.ID))
				}
				return nil
			},
		},
		{
			Name:        "ecmp_multicast",
			Description: "a multicast-heavy live table and an ECMP table sweep clean; each loses its group rule silently and alerts exactly once",
			run: func(e *scenarioEnv) error {
				e.service(
					WithDetectionTimeout(200*time.Millisecond),
					WithCounting(true),
				)
				// The multicast-heavy half runs over live TCP. ECMP groups
				// are not expressible on the OF1.0 wire, so the ECMP half
				// runs on a sim-backed member of the same fleet, faulted
				// through the behind-the-back dataplane hook instead of
				// the switch server.
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				if _, err := e.svc.AddSwitch(SwitchSpec{ID: 2, Backend: "sim", Ports: []uint16{1, 2, 3, 4}}); err != nil {
					return err
				}
				mcast := RuleSpec{ID: 201, Priority: 20,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.2.0.0/24"},
					Actions: []ActionSpec{{Output: 2}, {Output: 3}}}
				plain := RuleSpec{ID: 202, Priority: 20,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.4.0.0/24"},
					Actions: []ActionSpec{{Output: 4}}}
				r := chaos.New(0xECA9)
				extras := []RuleSpec{
					scenarioRule(0, 10, churnOutputs[r.Intn(len(churnOutputs))]),
					scenarioRule(1, 10, churnOutputs[r.Intn(len(churnOutputs))]),
				}
				for _, rs := range append([]RuleSpec{mcast, plain}, extras...) {
					spec := rs
					if err := e.apply(1, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
				}
				ecmp := RuleSpec{ID: 200, Priority: 20,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.1.0.0/24"},
					Actions: []ActionSpec{{ECMP: []uint16{2, 3}}}}
				if err := e.apply(2, RuleOp{Op: "add", Rule: &ecmp}, "confirmed"); err != nil {
					return err
				}
				e.sweep() // healthy
				// Each switch loses its group rule from the data plane only.
				srv.FailRule(mcast.ID)
				if err := e.apply(2, RuleOp{Op: "delete", ID: ecmp.ID, Dataplane: "actual"}, "none"); err != nil {
					return err
				}
				e.sweep()
				e.expect(failKey(1, mcast.ID), failKey(2, ecmp.ID))
				if err := e.restoreRule(1, mcast); err != nil {
					return err
				}
				if err := e.apply(2, RuleOp{Op: "add", Rule: &ecmp, Dataplane: "actual"}, "none"); err != nil {
					return err
				}
				e.sweep()
				e.expect(recoverKey(1, mcast.ID), recoverKey(2, ecmp.ID))
				return nil
			},
		},
		{
			Name:        "priority_shadow",
			Description: "a fully shadowed rule stays neutral while the shadowing rule's hardware loss is pinned on the right rule",
			run: func(e *scenarioEnv) error {
				e.service(WithDetectionTimeout(150 * time.Millisecond))
				srv, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				// Each layer rewrites nw_tos differently: in the
				// self-catching topology all ports reflect to the same
				// catcher, so falling through to the next layer must be
				// observable in the header itself, exactly as the paper's
				// probe generation distinguishes overlapping rules by
				// their rewrites.
				hi := RuleSpec{ID: 300, Priority: 20,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.3.0.0/24"},
					Actions: []ActionSpec{{Set: &SetFieldSpec{Field: "nw_tos", Value: 64}}, {Output: 2}}}
				lo := RuleSpec{ID: 301, Priority: 10,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.3.0.0/16"},
					Actions: []ActionSpec{{Output: 3}}}
				shadowed := RuleSpec{ID: 302, Priority: 5,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.3.0.0/16"},
					Actions: []ActionSpec{{Set: &SetFieldSpec{Field: "nw_tos", Value: 128}}, {Output: 4}}}
				if err := e.apply(1, RuleOp{Op: "add", Rule: &hi}, "confirmed"); err != nil {
					return err
				}
				if err := e.apply(1, RuleOp{Op: "add", Rule: &lo}, "confirmed"); err != nil {
					return err
				}
				// Fully covered by rule 301 at higher priority: structurally
				// unverifiable (§3.5), and must stay neutral, not failing.
				if err := e.apply(1, RuleOp{Op: "add", Rule: &shadowed}, "unmonitorable"); err != nil {
					return err
				}
				e.sweep() // healthy; the shadowed rule raises nothing
				// Losing the /24 rule makes its traffic fall to the /16 —
				// the exact absent-hypothesis outcome, pinned on rule 300.
				srv.FailRule(hi.ID)
				e.sweep()
				e.expect(failKey(1, hi.ID))
				if err := e.restoreRule(1, hi); err != nil {
					return err
				}
				e.sweep()
				e.expect(recoverKey(1, hi.ID))
				return nil
			},
		},
		{
			Name:        "policy_groups",
			Description: "a two-group monitoring policy over live switches: the edge filter mutes the non-customer loss, the core sample surfaces its loss exactly on the round the schedule probes it",
			run: func(e *scenarioEnv) error {
				e.service(WithDetectionTimeout(150 * time.Millisecond))
				srv1, err := e.addSwitch(1, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				srv2, err := e.addSwitch(2, SwitchProfile{}, 1, 2, 3, 4)
				if err != nil {
					return err
				}
				// The edge switch: a customer-prefix rule inside the alert
				// filter and a guest rule outside it.
				cust := scenarioRule(0, 20, 2)
				guest := RuleSpec{ID: 110, Priority: 10,
					Match:   map[string]string{"dl_type": "0x800", "nw_dst": "192.168.0.0/24"},
					Actions: []ActionSpec{{Output: 3}}}
				for _, rs := range []RuleSpec{cust, guest} {
					spec := rs
					if err := e.apply(1, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
				}
				// The core switch: four rules sampled half per round.
				var core []RuleSpec
				for slot := 0; slot < 4; slot++ {
					spec := scenarioRule(slot, 10, churnOutputs[slot%len(churnOutputs)])
					if err := e.apply(2, RuleOp{Op: "add", Rule: &spec}, "confirmed"); err != nil {
						return err
					}
					core = append(core, spec)
				}
				pol, err := ParsePolicy(`
policy edge {
  select switch 1
  debounce 1
  alert only nw_dst in 10.0.0.0/8
}

policy core {
  select switch 2
  sample 50% seed 3
}
`)
				if err != nil {
					return err
				}
				e.svc.SetPolicy(pol)
				e.sweep() // healthy baseline across both groups

				// One hardware loss per class behind the verifier's back —
				// plus the guest rule, whose loss the filter must mute.
				srv1.FailRule(cust.ID)
				srv1.FailRule(guest.ID)
				victim := core[2]
				srv2.FailRule(victim.ID)

				e.sweepGroups("edge")
				e.expect(failKey(1, cust.ID)) // the 192.168/24 loss stays silent

				// The core loss surfaces exactly on the round the sample
				// schedule probes the victim; until then the frozen entry
				// raises nothing.
				coreRound := func(want string) error {
					for round := 0; round < 32; round++ {
						sampled := planHasRule(e.svc, 2, victim.ID)
						alerts := e.sweepGroups("core")
						if sampled {
							e.expect(want)
							return nil
						}
						if len(alerts) != 0 {
							return fmt.Errorf("unsampled core round raised %v", alerts)
						}
					}
					return fmt.Errorf("rule %d never sampled in 32 core rounds", victim.ID)
				}
				if err := coreRound(failKey(2, victim.ID)); err != nil {
					return err
				}

				// Recovery mirrors the split: the filtered rule heals
				// silently, the others alert exactly once.
				if err := e.restoreRule(1, cust); err != nil {
					return err
				}
				if err := e.restoreRule(1, guest); err != nil {
					return err
				}
				e.sweepGroups("edge")
				e.expect(recoverKey(1, cust.ID))
				if err := e.restoreRule(2, victim); err != nil {
					return err
				}
				return coreRound(recoverKey(2, victim.ID))
			},
		},
	}
}

// sortInts sorts ascending in place (avoids importing sort for one call
// site — kept tiny and allocation-free).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
