package monocle

// Monitoring-policy surface. A Policy is the parsed form of the small
// declarative policy language (internal/policy): named groups select
// switches by tag or ID and attach monitoring directives — sweep cadence,
// confirmation deadline, sampling, Differ thresholds, alert filters. The
// Service compiles the active policy against the live fleet into
// deterministic per-switch ProbePlans each round; see the README's
// "Monitoring policies" section for the grammar.

import (
	"os"
	"time"

	"monocle/internal/policy"
)

// PolicyError is a policy parse or validation error. Line and Col are the
// 1-based source position of the offending token; Error() renders
// "line:col: message". The HTTP surface returns it as a 422 body.
type PolicyError = policy.Error

// Policy is a parsed monitoring policy. Policies are immutable once
// parsed; install one with WithPolicy, Service.SetPolicy, or PUT /policy.
type Policy struct {
	src string
	ast *policy.Policy
}

// ParsePolicy parses a policy text. A non-nil error is always a
// *PolicyError carrying the source position.
func ParsePolicy(src string) (*Policy, error) {
	ast, err := policy.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Policy{src: src, ast: ast}, nil
}

// ParsePolicyFile reads and parses a policy file.
func ParsePolicyFile(path string) (*Policy, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePolicy(string(b))
}

// Source returns the policy text as it was parsed.
func (p *Policy) Source() string { return p.src }

// String renders the policy in canonical form: groups in declaration
// order, directives in a fixed order, normalized values. Parsing the
// canonical form reproduces it exactly.
func (p *Policy) String() string { return p.ast.String() }

// GroupNames returns the declared group names in declaration order,
// followed by the implicit "default" group that catches unselected
// switches.
func (p *Policy) GroupNames() []string { return p.ast.GroupNames() }

// PolicyAssignment is one switch's resolved policy: the winning group
// (first selector match in declaration order; "default" when none) and
// the merged directives. Zero values mean the service's own settings
// apply.
type PolicyAssignment struct {
	// Group is the winning group's name.
	Group string `json:"group"`
	// Every is the group's sweep cadence (0 = service interval).
	Every time.Duration `json:"every,omitempty"`
	// Confirm is the update-confirmation deadline (0 = service default).
	Confirm time.Duration `json:"confirm,omitempty"`
	// SamplePercent is the per-round rule sampling rate (0 = sweep all).
	SamplePercent float64 `json:"sample_percent,omitempty"`
	// Seed is the effective sampling seed (explicit or derived from the
	// group name); meaningful only when SamplePercent is set.
	Seed uint64 `json:"seed,omitempty"`
	// Debounce, StallThreshold, FlapWindow, FlapFlips override the
	// Differ's thresholds for this switch (0 = service default).
	Debounce       int `json:"debounce,omitempty"`
	StallThreshold int `json:"stall_threshold,omitempty"`
	FlapWindow     int `json:"flap_window,omitempty"`
	FlapFlips      int `json:"flap_flips,omitempty"`
	// Match is the canonical rule predicate limiting what the group
	// monitors ("" = every rule).
	Match string `json:"match,omitempty"`
	// Alert describes the group's alert filter: "" (inherit/all), "all",
	// "none", or "only <predicate>".
	Alert string `json:"alert,omitempty"`
}

// Assignment resolves one switch against the policy.
func (p *Policy) Assignment(id uint32, tags []string) PolicyAssignment {
	asn := p.ast.Assign(id, tags)
	out := PolicyAssignment{
		Group:          asn.Group,
		Every:          asn.Dir.Every,
		Confirm:        asn.Dir.Confirm,
		SamplePercent:  float64(asn.Dir.SampleBP) / 100,
		Debounce:       asn.Dir.Debounce,
		StallThreshold: asn.Dir.Stall,
		FlapWindow:     asn.Dir.FlapWin,
		FlapFlips:      asn.Dir.FlapFlip,
		Match:          policy.PredString(asn.Dir.Match),
	}
	if asn.Dir.SampleBP > 0 {
		out.Seed = asn.Seed
	}
	if a := asn.Dir.Alert; a != nil {
		switch {
		case a.None:
			out.Alert = "none"
		case a.Only != nil:
			out.Alert = "only " + policy.PredString(a.Only)
		default:
			out.Alert = "all"
		}
	}
	return out
}

// ProbePlan is one switch's compiled plan for one sweep round: exactly
// which rules the round probes, under which cadence and thresholds. Plans
// are a pure function of (policy, switch, installed rules, round), so
// they are byte-identical across worker budgets, sweep interleavings, and
// process restarts.
type ProbePlan struct {
	// Switch is the member switch the plan is for.
	Switch uint32 `json:"switch"`
	// Group is the policy group the switch resolved to.
	Group string `json:"group"`
	// Round is the group's sweep-round index the plan was compiled for.
	Round uint64 `json:"round"`
	// Assignment echoes the resolved directives.
	Assignment PolicyAssignment `json:"assignment"`
	// Rules are the rule ids this round probes (the group's match
	// predicate intersected with the round's sample), in table priority
	// order.
	Rules []uint64 `json:"rules"`
	// Unsampled are matched rules the round's sample left out; they stay
	// tracked with frozen alert state.
	Unsampled []uint64 `json:"unsampled,omitempty"`
	// Matched counts installed rules matching the group's predicate;
	// Total counts all installed rules.
	Matched int `json:"matched"`
	// Total counts the switch's installed rules.
	Total int `json:"total"`
}

// Plan compiles the policy into one switch's probe plan for a round,
// given the switch's installed rules (in table priority order, as
// Verifier.Rules returns them).
func (p *Policy) Plan(id uint32, tags []string, rules []*Rule, round uint64) ProbePlan {
	asn := p.ast.Assign(id, tags)
	plan := ProbePlan{
		Switch:     id,
		Group:      asn.Group,
		Round:      round,
		Assignment: p.Assignment(id, tags),
		Rules:      []uint64{},
		Total:      len(rules),
	}
	for _, r := range rules {
		if asn.Dir.Match != nil && !asn.Dir.Match.Eval(r) {
			continue
		}
		plan.Matched++
		if policy.Sampled(asn.Seed, id, r.ID, round, asn.Dir.SampleBP) {
			plan.Rules = append(plan.Rules, r.ID)
		} else {
			plan.Unsampled = append(plan.Unsampled, r.ID)
		}
	}
	return plan
}

// groupOf returns the group name one switch resolves to.
func (p *Policy) groupOf(id uint32, tags []string) string {
	return p.ast.Assign(id, tags).Group
}

// everyOf returns a group's sweep cadence (0 = inherit), resolving the
// directive layering for any switch in the group. Cadence is a group
// property: every switch in a group resolves the same Every.
func (p *Policy) everyOf(group string) time.Duration {
	if p.ast.Default != nil && group == policy.DefaultGroup {
		return p.ast.Default.Every
	}
	for _, g := range p.ast.Groups {
		if g.Name == group {
			var base policy.Directives
			if p.ast.Default != nil {
				base = *p.ast.Default
			}
			if g.Dir.Every > 0 {
				return g.Dir.Every
			}
			return base.Every
		}
	}
	return 0
}

// overridesFor compiles one switch's Differ overrides from the policy,
// or nil when the assignment overrides nothing.
func (p *Policy) overridesFor(id uint32, tags []string) *DiffOverrides {
	asn := p.ast.Assign(id, tags)
	ov := &DiffOverrides{
		Debounce:    asn.Dir.Debounce,
		StallSweeps: asn.Dir.Stall,
		FlapWindow:  asn.Dir.FlapWin,
		FlapFlips:   asn.Dir.FlapFlip,
	}
	if a := asn.Dir.Alert; a != nil {
		switch {
		case a.None:
			ov.AlertFilter = func(uint64, *Rule) bool { return false }
		case a.Only != nil:
			pred := a.Only
			ov.AlertFilter = func(_ uint64, r *Rule) bool {
				return r != nil && pred.Eval(r)
			}
		}
	}
	if ov.Debounce == 0 && ov.StallSweeps == 0 && ov.FlapWindow == 0 && ov.AlertFilter == nil {
		return nil
	}
	return ov
}

// confirmOf returns one switch's confirmation deadline (0 = inherit).
func (p *Policy) confirmOf(id uint32, tags []string) time.Duration {
	return p.ast.Assign(id, tags).Dir.Confirm
}
