package monocle

// Simulated-testbed re-exports: the behavioural OpenFlow switch model
// (control-channel service times, commit pipelines, failure injection)
// used by the examples, the experiments, and integration tests to run
// full Monocle deployments in-process on a virtual clock.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"monocle/internal/switchsim"
)

// SimSwitch is a simulated OpenFlow 1.0 switch with a profiled control
// plane and an instantly-forwarding data plane.
type SimSwitch = switchsim.Switch

// SwitchProfile captures one hardware model's measured control-plane
// behaviour (§8's switch characterization).
type SwitchProfile = switchsim.Profile

// SwitchStats counts one simulated switch's activity.
type SwitchStats = switchsim.Stats

// Frame is a raw packet travelling the simulated data plane.
type Frame = switchsim.Frame

// Link is one simulated inter-switch (or switch-host) link; it can fail
// and heal.
type Link = switchsim.Link

// NewSimSwitch creates a simulated switch with the given id, clock,
// profile, and deterministic seed.
func NewSimSwitch(id uint32, s *Sim, profile SwitchProfile, seed int64) *SimSwitch {
	return switchsim.New(id, s, profile, seed)
}

// ConnectSwitches joins port pa of sa to port pb of sb with the given
// one-way latency.
func ConnectSwitches(sa *SimSwitch, pa PortID, sb *SimSwitch, pb PortID, latency time.Duration) *Link {
	return switchsim.Connect(sa, pa, sb, pb, latency)
}

// ConnectHost attaches a host-facing port: frames emitted there are
// handed to deliver after the latency.
func ConnectHost(sw *SimSwitch, p PortID, latency time.Duration, deliver func(f Frame)) *Link {
	return switchsim.ConnectHost(sw, p, latency, deliver)
}

// ProfileHP5406zl models the HP ProCurve 5406zl (the paper's primary
// hardware switch).
func ProfileHP5406zl() SwitchProfile { return switchsim.HP5406zl() }

// ProfilePica8 models the Pica8 P-3290, whose barriers acknowledge rules
// before they reach the data plane.
func ProfilePica8() SwitchProfile { return switchsim.Pica8() }

// ProfileHonestPica8 is Pica8 with honest barrier semantics (the
// what-if baseline of §8.1.2).
func ProfileHonestPica8() SwitchProfile { return switchsim.HonestPica8() }

// ProfileDellS4810 models the Dell Force10 S4810.
func ProfileDellS4810() SwitchProfile { return switchsim.DellS4810() }

// ProfileDell8132F models the Dell PowerConnect 8132F.
func ProfileDell8132F() SwitchProfile { return switchsim.Dell8132F() }

// ProfileOVS models Open vSwitch (software fast path).
func ProfileOVS() SwitchProfile { return switchsim.OVS() }

// ProfileIdeal is an idealized instant switch (unit tests, upper bounds).
func ProfileIdeal() SwitchProfile { return switchsim.Ideal() }

// SwitchServerConfig configures one SwitchServer.
type SwitchServerConfig struct {
	// ID is the switch's datapath id (required, non-zero).
	ID uint32
	// Ports are the switch's physical ports; each gets a host-facing
	// catcher delivering emitted frames back as the switch's own PacketIns
	// (or to Deliver when set).
	Ports []PortID
	// Profile is the simulated control-plane behaviour (zero: ideal).
	Profile SwitchProfile
	// Seed makes the simulated switch deterministic (zero: the id).
	Seed int64
	// Addr is the TCP listen address (empty: 127.0.0.1 on an OS-chosen
	// port; read the result from Addr).
	Addr string
	// Deliver, when set, receives every frame the data plane emits on a
	// physical port instead of the default self-reflection — the hook for
	// wiring multi-switch topologies where a neighbour catches the probe.
	// It is called on the server's event loop; delivering to another
	// SwitchServer is safe.
	Deliver func(port PortID, f Frame)
}

// SwitchServer is an in-process TCP OpenFlow 1.0 switch backed by a
// simulated data plane: it accepts ProxyBackend connections, drives a
// SimSwitch behind the real wire codec, and reflects every frame the
// data plane emits back as a PacketIn — the downstream probe catcher
// collapsed into the server. The listener keeps accepting, so a proxy
// that drops its connection (or a restarted monocled re-dialing) finds
// the same switch state on re-dial, exactly like hardware surviving a
// monitor restart.
//
// Its fault hooks make live-switch failure modes reproducible on demand:
// FailRule/HealRule (silent data-plane rule loss, the paper's core
// fault), Drop and DropAfterCatches (switch-side TCP failures, including
// mid-sweep), and SetLossy (a data plane that eats every probe). The
// adversarial scenario fleet (Scenarios) and the record/replay e2e tests
// are built on it.
type SwitchServer struct {
	cfg  SwitchServerConfig
	ln   net.Listener
	done chan struct{}
	ctl  chan func(sw *SimSwitch)
	addr string

	wmu  sync.Mutex
	conn net.Conn

	closeOnce sync.Once

	// Event-loop-owned fault state (mutated only via ctl ops).
	lossy     bool
	dropAfter int
}

// StartSwitchServer starts a SwitchServer and returns once it is
// listening.
func StartSwitchServer(cfg SwitchServerConfig) (*SwitchServer, error) {
	if cfg.ID == 0 {
		return nil, fmt.Errorf("monocle: switch server id must be non-zero")
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &SwitchServer{
		cfg:  cfg,
		ln:   ln,
		done: make(chan struct{}),
		ctl:  make(chan func(sw *SimSwitch)),
		addr: ln.Addr().String(),
	}
	go s.serve()
	return s, nil
}

// Addr returns the server's listen address (dial it as a SwitchSpec
// Address with backend "proxy").
func (s *SwitchServer) Addr() string { return s.addr }

// ID returns the switch's datapath id.
func (s *SwitchServer) ID() uint32 { return s.cfg.ID }

// Close stops the server: the listener closes, the current connection
// drops, and the event loop exits. Idempotent.
func (s *SwitchServer) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.ln.Close()
		s.dropConn()
	})
	return nil
}

// FailRule silently deletes rule id from the data plane only — the
// control plane keeps every view intact, the exact hardware fault the
// paper's monitoring exists to catch. It returns once the switch's event
// loop has applied it (the next probe sees the fault).
func (s *SwitchServer) FailRule(id uint64) {
	s.do(func(sw *SimSwitch) { sw.FailRule(id) })
}

// HealRule lifts an injected rule failure, returning once the event loop
// has processed it so a follow-up re-install cannot race the still-armed
// suppression.
func (s *SwitchServer) HealRule(id uint64) {
	s.do(func(sw *SimSwitch) { sw.HealRule(id) })
}

// Drop forcibly closes the current proxy connection — a switch-side TCP
// drop mid-flight. The switch keeps its data plane and listener, so a
// reconnecting driver finds the same switch state on re-dial.
func (s *SwitchServer) Drop() { s.dropConn() }

// DropAfterCatches arms a mid-sweep connection drop: after n more caught
// probes have been delivered as PacketIns, the connection closes. Zero
// disarms. This is the flap-mid-sweep fault — the transport dies between
// one probe's observation and the next.
func (s *SwitchServer) DropAfterCatches(n int) {
	s.do(func(*SimSwitch) { s.dropAfter = n })
}

// SetLossy makes the data plane eat every frame it would deliver to a
// catcher (true) or restores delivery (false): every positive probe times
// out unobserved, the slow/lossy switch profile at its extreme.
func (s *SwitchServer) SetLossy(lossy bool) {
	s.do(func(*SimSwitch) { s.lossy = lossy })
}

// do runs fn on the event loop and waits for it.
func (s *SwitchServer) do(fn func(sw *SimSwitch)) {
	ack := make(chan struct{})
	select {
	case s.ctl <- func(sw *SimSwitch) { fn(sw); close(ack) }:
		<-ack
	case <-s.done:
	}
}

// write sends one message up the control channel; safe from any
// goroutine. A write error means the proxy side dropped: the connection
// is shed and the switch waits for a re-dial.
func (s *SwitchServer) write(msg Message, xid uint32) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.conn == nil {
		return
	}
	if err := WriteMessage(s.conn, msg, xid); err != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// dropConn sheds the current connection without touching the listener.
func (s *SwitchServer) dropConn() {
	s.wmu.Lock()
	conn := s.conn
	s.conn = nil
	s.wmu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// catch handles one frame the data plane emitted on a physical port; it
// runs on the event loop.
func (s *SwitchServer) catch(port PortID, f Frame) {
	if s.lossy {
		return
	}
	if s.cfg.Deliver != nil {
		s.cfg.Deliver(port, f)
		return
	}
	s.write(PacketIn{
		BufferID: BufferNone,
		InPort:   uint16(port),
		Reason:   ReasonAction,
		Data:     f,
	}, 0)
	if s.dropAfter > 0 {
		s.dropAfter--
		if s.dropAfter == 0 {
			s.dropConn()
		}
	}
}

// serve runs the switch's event loop on a single goroutine: network
// messages are posted through a channel, the virtual clock is driven
// against wall time, and all simulated-switch state stays
// single-threaded.
func (s *SwitchServer) serve() {
	clock := NewSim()
	profile := s.cfg.Profile
	if profile == (SwitchProfile{}) {
		profile = ProfileIdeal()
	}
	seed := s.cfg.Seed
	if seed == 0 {
		seed = int64(s.cfg.ID)
	}
	sw := NewSimSwitch(s.cfg.ID, clock, profile, seed)
	sw.ToController = func(msg Message, xid uint32) { s.write(msg, xid) }
	for _, p := range s.cfg.Ports {
		port := p
		ConnectHost(sw, port, 0, func(f Frame) { s.catch(port, f) })
	}

	msgs := make(chan func(), 64)
	conns := make(chan net.Conn)
	go func() {
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				close(conns)
				return
			}
			select {
			case conns <- conn:
			case <-s.done:
				conn.Close()
				return
			}
		}
	}()

	var cur net.Conn
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	start := time.Now()
	for {
		clock.RunUntil(Time(time.Since(start)))
		select {
		case <-s.done:
			return
		case conn, ok := <-conns:
			if !ok {
				return
			}
			if cur != nil {
				cur.Close()
			}
			cur = conn
			s.wmu.Lock()
			s.conn = conn
			s.wmu.Unlock()
			go s.readConn(conn, sw, msgs)
		case fn := <-s.ctl:
			clock.RunUntil(Time(time.Since(start)))
			fn(sw)
		case fn := <-msgs:
			clock.RunUntil(Time(time.Since(start)))
			fn()
		case <-time.After(time.Millisecond):
		}
	}
}

// readConn pumps one proxy connection's messages onto the event loop,
// returning (without tearing anything down) when the connection drops.
func (s *SwitchServer) readConn(conn net.Conn, sw *SimSwitch, msgs chan func()) {
	for {
		msg, xid, err := ReadMessage(conn)
		if err != nil {
			return
		}
		select {
		case msgs <- func() { sw.FromController(msg, xid) }:
		case <-s.done:
			return
		}
	}
}
