package monocle

// Simulated-testbed re-exports: the behavioural OpenFlow switch model
// (control-channel service times, commit pipelines, failure injection)
// used by the examples, the experiments, and integration tests to run
// full Monocle deployments in-process on a virtual clock.

import (
	"time"

	"monocle/internal/switchsim"
)

// SimSwitch is a simulated OpenFlow 1.0 switch with a profiled control
// plane and an instantly-forwarding data plane.
type SimSwitch = switchsim.Switch

// SwitchProfile captures one hardware model's measured control-plane
// behaviour (§8's switch characterization).
type SwitchProfile = switchsim.Profile

// SwitchStats counts one simulated switch's activity.
type SwitchStats = switchsim.Stats

// Frame is a raw packet travelling the simulated data plane.
type Frame = switchsim.Frame

// Link is one simulated inter-switch (or switch-host) link; it can fail
// and heal.
type Link = switchsim.Link

// NewSimSwitch creates a simulated switch with the given id, clock,
// profile, and deterministic seed.
func NewSimSwitch(id uint32, s *Sim, profile SwitchProfile, seed int64) *SimSwitch {
	return switchsim.New(id, s, profile, seed)
}

// ConnectSwitches joins port pa of sa to port pb of sb with the given
// one-way latency.
func ConnectSwitches(sa *SimSwitch, pa PortID, sb *SimSwitch, pb PortID, latency time.Duration) *Link {
	return switchsim.Connect(sa, pa, sb, pb, latency)
}

// ConnectHost attaches a host-facing port: frames emitted there are
// handed to deliver after the latency.
func ConnectHost(sw *SimSwitch, p PortID, latency time.Duration, deliver func(f Frame)) *Link {
	return switchsim.ConnectHost(sw, p, latency, deliver)
}

// ProfileHP5406zl models the HP ProCurve 5406zl (the paper's primary
// hardware switch).
func ProfileHP5406zl() SwitchProfile { return switchsim.HP5406zl() }

// ProfilePica8 models the Pica8 P-3290, whose barriers acknowledge rules
// before they reach the data plane.
func ProfilePica8() SwitchProfile { return switchsim.Pica8() }

// ProfileHonestPica8 is Pica8 with honest barrier semantics (the
// what-if baseline of §8.1.2).
func ProfileHonestPica8() SwitchProfile { return switchsim.HonestPica8() }

// ProfileDellS4810 models the Dell Force10 S4810.
func ProfileDellS4810() SwitchProfile { return switchsim.DellS4810() }

// ProfileDell8132F models the Dell PowerConnect 8132F.
func ProfileDell8132F() SwitchProfile { return switchsim.Dell8132F() }

// ProfileOVS models Open vSwitch (software fast path).
func ProfileOVS() SwitchProfile { return switchsim.OVS() }

// ProfileIdeal is an idealized instant switch (unit tests, upper bounds).
func ProfileIdeal() SwitchProfile { return switchsim.Ideal() }
