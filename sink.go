package monocle

// Pluggable alert delivery. The Service's diff engine turns every sweep
// round into typed Alerts; a Sink is where those alerts go. The built-in
// sinks cover the three deployment shapes: RingSink retains them in
// memory (what GET /alerts serves), LogSink writes one JSON line per
// alert to a logger, and WebhookSink POSTs each round's batch to an HTTP
// endpoint. Wire them with WithAlertSink; any number can be attached and
// every round fans out to all of them.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"
)

// Sink consumes the alert stream of a Service. Deliver is called once per
// sweep round that raised alerts (never with an empty batch), from the
// sweeping goroutine; implementations must be safe for concurrent use and
// must not block indefinitely.
type Sink interface {
	// Deliver consumes one round's alerts.
	Deliver(ctx context.Context, alerts []Alert) error
	// Close releases sink resources; no Deliver follows it.
	Close() error
}

// defaultRingCapacity is the retained-alert bound when none is given
// (the service's historical hard-coded ring size).
const defaultRingCapacity = 4096

// RingSink retains the most recent alerts in memory, oldest dropped
// first. It backs the Service's GET /alerts endpoint.
type RingSink struct {
	mu     sync.Mutex
	cap    int
	alerts []Alert
}

// NewRingSink returns a ring retaining the last capacity alerts
// (capacity <= 0 uses the default, 4096).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = defaultRingCapacity
	}
	return &RingSink{cap: capacity}
}

// Deliver implements Sink.
func (r *RingSink) Deliver(_ context.Context, alerts []Alert) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.alerts = append(r.alerts, alerts...)
	if n := len(r.alerts); n > r.cap {
		r.alerts = append([]Alert(nil), r.alerts[n-r.cap:]...)
	}
	return nil
}

// Alerts returns a snapshot of the retained alerts, oldest first.
func (r *RingSink) Alerts() []Alert {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Alert(nil), r.alerts...)
}

// Len returns the number of retained alerts.
func (r *RingSink) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.alerts)
}

// Close implements Sink.
func (r *RingSink) Close() error { return nil }

// LogSink writes one "ALERT {json}" line per alert to a logger.
type LogSink struct {
	logger *log.Logger
}

// NewLogSink returns a sink logging through l (nil: the standard logger).
func NewLogSink(l *log.Logger) *LogSink {
	if l == nil {
		l = log.Default()
	}
	return &LogSink{logger: l}
}

// Deliver implements Sink.
func (s *LogSink) Deliver(_ context.Context, alerts []Alert) error {
	for _, a := range alerts {
		b, err := json.Marshal(a)
		if err != nil {
			return err
		}
		s.logger.Printf("ALERT %s", b)
	}
	return nil
}

// Close implements Sink.
func (s *LogSink) Close() error { return nil }

// WebhookSink POSTs each round's alerts as one JSON array to a URL
// (Content-Type application/json). Non-2xx responses are errors; the
// Service counts them in its sink_errors metric but keeps sweeping. Every
// POST runs under a bounded deadline (SetTimeout, default 10s) regardless
// of the caller's context or client: sweeps deliver with a background
// context, so without its own deadline one stalled endpoint would pile up
// a blocked goroutine per round, forever.
type WebhookSink struct {
	url     string
	client  *http.Client
	timeout time.Duration
}

// NewWebhookSink returns a webhook sink for url. client nil uses a
// private default client; either way each POST is bounded by the sink's
// per-request timeout.
func NewWebhookSink(url string, client *http.Client) *WebhookSink {
	if client == nil {
		client = &http.Client{}
	}
	return &WebhookSink{url: url, client: client, timeout: 10 * time.Second}
}

// SetTimeout replaces the per-POST deadline (default 10s; d <= 0 keeps
// the default). Call it before the sink is attached to a Service.
func (s *WebhookSink) SetTimeout(d time.Duration) *WebhookSink {
	if d > 0 {
		s.timeout = d
	}
	return s
}

// Deliver implements Sink.
func (s *WebhookSink) Deliver(ctx context.Context, alerts []Alert) error {
	body, err := json.Marshal(alerts)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("monocle: webhook %s: status %s", s.url, resp.Status)
	}
	return nil
}

// Close implements Sink.
func (s *WebhookSink) Close() error {
	s.client.CloseIdleConnections()
	return nil
}
