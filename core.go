package monocle

// Core data model re-exports: the abstract packet header, ternary matches,
// rules, and flow tables. These are aliases of the internal types, so
// values returned by the facade interoperate with values built through it.

import (
	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// FieldID identifies one abstract header field of the OpenFlow 1.0
// 12-tuple.
type FieldID = header.FieldID

// The OpenFlow 1.0 match fields.
const (
	InPort    = header.InPort
	EthSrc    = header.EthSrc
	EthDst    = header.EthDst
	EthType   = header.EthType
	VlanID    = header.VlanID
	VlanPCP   = header.VlanPCP
	IPSrc     = header.IPSrc
	IPDst     = header.IPDst
	IPProto   = header.IPProto
	IPTos     = header.IPTos
	TPSrc     = header.TPSrc
	TPDst     = header.TPDst
	NumFields = header.NumFields
)

// Well-known header values.
const (
	// VlanNone is the OpenFlow 1.0 sentinel for "no 802.1Q tag present".
	VlanNone = header.VlanNone
	// EthTypeIPv4 is the IPv4 EtherType.
	EthTypeIPv4 = header.EthTypeIPv4
	// EthTypeARP is the ARP EtherType.
	EthTypeARP = header.EthTypeARP
	// ProtoICMP is the ICMP IP protocol number.
	ProtoICMP = header.ProtoICMP
	// ProtoTCP is the TCP IP protocol number.
	ProtoTCP = header.ProtoTCP
	// ProtoUDP is the UDP IP protocol number.
	ProtoUDP = header.ProtoUDP
)

// Header is a fully concrete abstract packet: one value per field.
type Header = header.Header

// Ternary is a value/mask pair matching one header field.
type Ternary = header.Ternary

// Exact returns a Ternary matching field f exactly against v.
func Exact(f FieldID, v uint64) Ternary { return header.Exact(f, v) }

// Prefix returns a Ternary matching the top plen bits of field f (IPv4
// prefix style).
func Prefix(f FieldID, v uint64, plen int) Ternary { return header.Prefix(f, v, plen) }

// Wildcard returns the match-anything Ternary.
func Wildcard() Ternary { return header.Wildcard() }

// FieldWidth returns the bit width of field f.
func FieldWidth(f FieldID) int { return header.Width(f) }

// Match is a ternary match over every abstract header field; the zero
// value matches every packet.
type Match = flowtable.Match

// MatchAll returns the all-wildcard match.
func MatchAll() Match { return flowtable.MatchAll() }

// PortID identifies a switch port (OpenFlow 1.0 numbers physical ports
// from 1; the zero value is invalid).
type PortID = flowtable.PortID

// PortController is the reserved port for sending packets to the
// controller (catching rules use it).
const PortController = flowtable.PortController

// Action is one step of a rule's action list: a header-field rewrite, an
// output, or an ECMP group.
type Action = flowtable.Action

// Output returns an action emitting the packet on port p.
func Output(p PortID) Action { return flowtable.Output(p) }

// SetField returns an action rewriting header field f to v.
func SetField(f FieldID, v uint64) Action { return flowtable.SetField(f, v) }

// ECMP returns an action emitting the packet on exactly one of the given
// ports (the switch picks which).
func ECMP(ports ...PortID) Action { return flowtable.ECMP(ports...) }

// Rule is one prioritized flow table entry. An empty action list drops.
type Rule = flowtable.Rule

// Emission is one (port, rewritten header) pair a rule produces.
type Emission = flowtable.Emission

// Rewrite is the cumulative header rewrite a rule applies before emitting
// on a given port.
type Rewrite = flowtable.Rewrite

// Table models one switch's flow table with TCAM lookup semantics.
type Table = flowtable.Table

// NewTable returns an empty flow table (miss behaviour: drop).
func NewTable() *Table { return flowtable.New() }

// TableMiss selects what a table does with packets no rule matches.
type TableMiss = flowtable.TableMiss

// Table-miss behaviours.
const (
	// MissDrop drops unmatched packets (the default).
	MissDrop = flowtable.MissDrop
	// MissController punts unmatched packets to the controller.
	MissController = flowtable.MissController
)

// Flow table errors.
var (
	// ErrSamePriorityOverlap rejects overlapping rules at equal priority
	// (undefined behaviour on a real switch).
	ErrSamePriorityOverlap = flowtable.ErrSamePriorityOverlap
	// ErrNotFound reports a rule id absent from the table.
	ErrNotFound = flowtable.ErrNotFound
	// ErrDuplicateID rejects inserting a rule id twice.
	ErrDuplicateID = flowtable.ErrDuplicateID
)
