package monocle_test

// Crash-safety end-to-end tests: a monocled service killed mid-deployment
// must come back from its state directory with the diff engine's memory
// intact (no re-confirmation storm, no false rule_recovered, the alert
// history still on GET /alerts), and a proxy driver that loses its switch
// TCP session mid-sweep must reconnect with backoff and rejoin the sweep
// pool instead of hanging the round. Run under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"monocle"
	"monocle/internal/netx"
)

// waitBackendEvent drains a backend's event stream until an event of the
// wanted type arrives (other events are skipped) or the timeout fires.
func waitBackendEvent(t *testing.T, ch <-chan monocle.BackendEvent, want monocle.BackendEventType, timeout time.Duration) monocle.BackendEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-ch:
			if ev.Type == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for backend event %v", want)
		}
	}
}

// sweepUntilAlerts sweeps until a round raises alerts, or fails the test.
func sweepUntilAlerts(t *testing.T, svc *monocle.Service) []monocle.Alert {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if alerts := svc.SweepRound(context.Background()); len(alerts) > 0 {
			return alerts
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no alert surfaced before the deadline")
	return nil
}

// TestRestartResumeProxyEndToEnd is the kill-and-restart e2e: a live TCP
// switch (the harness survives the restart, exactly like hardware) is
// driven to a failing alert, the service process "dies" (Close) and a
// second service on the same state directory resumes. The restarted
// service must still hold the alert history, must raise ZERO alerts on
// its next sweeps — the rule is still broken and was already alerted; a
// false rule_recovered or a duplicate rule_failing is the bug class this
// pins — and must raise exactly one rule_recovered once the hardware is
// actually healed.
func TestRestartResumeProxyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ports := []monocle.PortID{1, 2, 3, 4}
	sw := startTCPSimSwitch(t, 1, ports)
	defer sw.stop()

	opts := func() []monocle.Option {
		return []monocle.Option{
			monocle.WithWorkers(1),
			monocle.WithDetectionTimeout(500 * time.Millisecond),
			monocle.WithStateDir(dir),
		}
	}
	spec := monocle.SwitchSpec{
		ID:      1,
		Backend: "proxy",
		Address: sw.addr,
		Ports:   []uint16{1, 2, 3, 4},
		Peers:   map[uint16]uint32{1: 1, 2: 1, 3: 1, 4: 1},
	}
	rs := monocle.RuleSpec{ID: 7, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.0.1.0/24"},
		Actions: []monocle.ActionSpec{{Output: 2}}}

	// Life 1: register, install (confirmed over the wire), sweep healthy,
	// break the hardware, alert.
	svc1 := monocle.NewService(opts()...)
	if _, err := svc1.AddSwitch(spec); err != nil {
		t.Fatal(err)
	}
	reply, err := svc1.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs})
	if err != nil || reply.Verdict != "confirmed" {
		t.Fatalf("install: %+v, %v", reply, err)
	}
	if alerts := svc1.SweepRound(context.Background()); len(alerts) != 0 {
		t.Fatalf("healthy sweep alerted: %+v", alerts)
	}
	sw.fail <- 7
	alerts := sweepUntilAlerts(t, svc1)
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleFailing || alerts[0].Rule != 7 {
		t.Fatalf("want one rule_failing for rule 7, got %+v", alerts)
	}
	// The alerted flag must keep later rounds quiet while the fault holds.
	for i := 0; i < 2; i++ {
		if alerts := svc1.SweepRound(context.Background()); len(alerts) != 0 {
			t.Fatalf("re-alerted while already alerted: %+v", alerts)
		}
	}
	before := svc1.Alerts()
	if len(before) == 0 {
		t.Fatal("no alerts retained before the restart")
	}
	// The process dies. The switch — and its fault — live on.
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: same state directory. Resume must re-dial the switch,
	// restore the expected table and fold state, and refill the ring.
	svc2 := monocle.NewService(opts()...)
	defer svc2.Close()
	if err := svc2.Resume(context.Background()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(svc2.Alerts(), before) {
		t.Fatalf("alert history did not survive the restart:\n got %+v\nwant %+v", svc2.Alerts(), before)
	}
	// The rule is still missing from the hardware and was already
	// alerted: the restarted differ must stay silent — in particular it
	// must NOT claim rule_recovered (the restart healed nothing) and must
	// not re-fire rule_failing (no re-confirmation storm).
	for i := 0; i < 3; i++ {
		if alerts := svc2.SweepRound(context.Background()); len(alerts) != 0 {
			t.Fatalf("restarted service alerted on an unchanged fleet (round %d): %+v", i, alerts)
		}
	}
	if !reflect.DeepEqual(svc2.Alerts(), before) {
		t.Fatalf("post-restart sweeps grew the alert history: %+v", svc2.Alerts())
	}

	// Heal the hardware for real — lift the injected failure, then re-add
	// the rule on the data plane only: now — and only now — exactly one
	// rule_recovered.
	sw.healRule(7)
	if _, err := svc2.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs, Dataplane: "actual"}); err != nil {
		t.Fatalf("healing the data plane: %v", err)
	}
	alerts = sweepUntilAlerts(t, svc2)
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleRecovered || alerts[0].Rule != 7 {
		t.Fatalf("want exactly one rule_recovered for rule 7, got %+v", alerts)
	}
	if alerts := svc2.SweepRound(context.Background()); len(alerts) != 0 {
		t.Fatalf("recovery re-fired: %+v", alerts)
	}
}

// restartScript drives one scripted deployment — install, fault, debounced
// failing alert, (optionally: kill + resume), quiet rounds, heal,
// recovery — and returns the service's full alert stream. With
// restart=true the process dies right after the failing alert and a new
// service resumes from dir; the data-plane fault is re-injected after
// Resume because a simulated data plane dies with the process (Resume
// replays the expected table into the fresh sim — re-breaking it restores
// the pre-kill hardware state; dataplane-only ops never touch the epoch).
func restartScript(t *testing.T, workers int, restart bool, dir string) []monocle.Alert {
	t.Helper()
	ctx := context.Background()
	newSvc := func() *monocle.Service {
		o := []monocle.Option{monocle.WithWorkers(workers), monocle.WithDebounce(2)}
		if dir != "" {
			o = append(o, monocle.WithStateDir(dir))
		}
		return monocle.NewService(o...)
	}
	svc := newSvc()
	defer func() { svc.Close() }()

	rules := map[uint32][]monocle.RuleSpec{}
	for id := uint32(1); id <= 3; id++ {
		if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: id}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			rs := monocle.RuleSpec{ID: uint64(7 + j), Priority: 10 + j,
				Match:   map[string]string{"dl_type": "0x800", "nw_src": fmt.Sprintf("10.%d.%d.1", id, j)},
				Actions: []monocle.ActionSpec{{Output: 9}}}
			reply, err := svc.ApplyRule(id, monocle.RuleOp{Op: "add", Rule: &rs})
			if err != nil || reply.Verdict != "confirmed" {
				t.Fatalf("switch %d rule %d: %+v, %v", id, rs.ID, reply, err)
			}
			rules[id] = append(rules[id], rs)
		}
	}
	breakRule := func() {
		if _, err := svc.ApplyRule(2, monocle.RuleOp{Op: "delete", ID: 7, Dataplane: "actual"}); err != nil {
			t.Fatalf("injecting the fault: %v", err)
		}
	}
	healRule := func() {
		rs := rules[2][0]
		if _, err := svc.ApplyRule(2, monocle.RuleOp{Op: "add", Rule: &rs, Dataplane: "actual"}); err != nil {
			t.Fatalf("healing the fault: %v", err)
		}
	}

	svc.SweepRound(ctx) // r1: healthy
	breakRule()
	svc.SweepRound(ctx) // r2: first miss (debounced)
	svc.SweepRound(ctx) // r3: rule_failing fires

	if restart {
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		svc = newSvc()
		if err := svc.Resume(ctx); err != nil {
			t.Fatalf("resume: %v", err)
		}
		breakRule() // the sim data plane was reborn healthy; restore the fault
	}

	svc.SweepRound(ctx) // r4: still failing, already alerted
	svc.SweepRound(ctx) // r5
	healRule()
	svc.SweepRound(ctx) // r6: rule_recovered fires
	svc.SweepRound(ctx) // r7: quiet
	return svc.Alerts()
}

// TestRestartDifferentialAlertStream pins the tentpole's acceptance bar:
// the alert stream of a deployment that is killed and resumed mid-incident
// is byte-identical to the stream of one that never restarted — and both
// are identical across solver-worker budgets.
func TestRestartDifferentialAlertStream(t *testing.T) {
	marshal := func(alerts []monocle.Alert) string {
		b, err := json.Marshal(alerts)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := marshal(restartScript(t, 1, false, ""))
	if want == "[]" || want == "null" {
		t.Fatalf("control run raised no alerts: %s", want)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, restart := range []bool{false, true} {
			dir := ""
			if restart {
				dir = t.TempDir()
			}
			got := marshal(restartScript(t, workers, restart, dir))
			if got != want {
				t.Fatalf("alert stream diverged (workers=%d restart=%v):\n got %s\nwant %s",
					workers, restart, got, want)
			}
		}
	}
}

// TestProxyBackendReconnectMidSweep drops the switch-side TCP session
// while the service depends on it: the driver must surface
// backend_disconnected, resolve in-flight work as unobserved instead of
// hanging (a sweep during the outage completes promptly and alerts
// nothing), fail Apply fast with ErrBackendDisconnected, reconnect with
// backoff once the "network" heals, surface backend_reconnected, and
// rejoin the sweep pool with healthy verdicts.
func TestProxyBackendReconnectMidSweep(t *testing.T) {
	ports := []monocle.PortID{1, 2}
	sw := startTCPSimSwitch(t, 1, ports)
	defer sw.stop()

	svc := monocle.NewService(
		monocle.WithWorkers(1),
		monocle.WithDetectionTimeout(300*time.Millisecond),
		monocle.WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond),
	)
	defer svc.Close()
	if _, err := svc.AddSwitch(monocle.SwitchSpec{
		ID: 1, Backend: "proxy", Address: sw.addr,
		Ports: []uint16{1, 2}, Peers: map[uint16]uint32{1: 1, 2: 1},
	}); err != nil {
		t.Fatal(err)
	}
	rs := monocle.RuleSpec{ID: 7, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.0.1.0/24"},
		Actions: []monocle.ActionSpec{{Output: 2}}}
	if reply, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs}); err != nil || reply.Verdict != "confirmed" {
		t.Fatalf("install: %+v, %v", reply, err)
	}
	if alerts := svc.SweepRound(context.Background()); len(alerts) != 0 {
		t.Fatalf("healthy sweep alerted: %+v", alerts)
	}
	be, ok := svc.Fleet().Backend(1)
	if !ok {
		t.Fatal("no backend for switch 1")
	}

	// Hold the redial path down so the outage persists for the duration
	// of the checks below (the hook is installed after the initial
	// Connect, so only reconnect dials see it).
	gate := make(chan struct{})
	restore := netx.SetDialHook(func(ctx context.Context, network, addr string) (net.Conn, error) {
		select {
		case <-gate:
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		default:
			return nil, errors.New("injected dial failure")
		}
	})
	defer restore()

	sw.drop()
	waitBackendEvent(t, be.Events(), monocle.BackendDisconnected, 10*time.Second)

	// A data-plane mutation during the outage fails fast and typed.
	spare := &monocle.Rule{ID: 8, Priority: 5,
		Match:   monocle.MatchAll().WithExact(monocle.EthType, monocle.EthTypeIPv4),
		Actions: []monocle.Action{monocle.Output(2)}}
	if err := be.Apply(monocle.BackendOp{Op: "add", Rule: spare}); !errors.Is(err, monocle.ErrBackendDisconnected) {
		t.Fatalf("Apply during outage: %v, want ErrBackendDisconnected", err)
	}
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "delete", ID: 7, Dataplane: "actual"}); !errors.Is(err, monocle.ErrBackendDisconnected) {
		t.Fatalf("ApplyRule during outage: %v, want ErrBackendDisconnected", err)
	}

	// A sweep during the outage must complete promptly — the in-flight
	// Observe resolves as unobserved, it does not hang until the observe
	// timeout per rule — and an unjudged round must not page anyone.
	start := time.Now()
	if alerts := svc.SweepRound(context.Background()); len(alerts) != 0 {
		t.Fatalf("outage sweep alerted: %+v", alerts)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("outage sweep took %v — in-flight observes are hanging", d)
	}

	// The network heals: the backoff loop's next dial succeeds and the
	// member rejoins the pool.
	close(gate)
	waitBackendEvent(t, be.Events(), monocle.BackendReconnected, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		alerts := svc.SweepRound(context.Background())
		if len(alerts) != 0 {
			t.Fatalf("post-reconnect sweep alerted: %+v", alerts)
		}
		recs := svc.LastSweep()
		if len(recs) == 1 && recs[0].Rule == 7 && recs[0].Error == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("switch never rejoined the sweep pool: %+v", recs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the dynamic-update path works again end to end: a fresh rule
	// installs over the new connection and confirms against the live data
	// plane.
	rs2 := monocle.RuleSpec{ID: 8, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.0.2.0/24"},
		Actions: []monocle.ActionSpec{{Output: 1}}}
	if reply, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs2}); err != nil || reply.Verdict != "confirmed" {
		t.Fatalf("post-reconnect install: %+v, %v", reply, err)
	}
}

// TestProxyBackendReconnectBackoff counts the redial attempts: with the
// first three dials failing, the driver must keep backing off and the
// eventual backend_reconnected event must report the fourth attempt.
func TestProxyBackendReconnectBackoff(t *testing.T) {
	ports := []monocle.PortID{1, 2}
	sw := startTCPSimSwitch(t, 9, ports)
	defer sw.stop()

	be := monocle.NewProxyBackend(monocle.ProxyConfig{
		SwitchID:       9,
		SwitchAddr:     sw.addr,
		ObserveTimeout: 300 * time.Millisecond,
		ReconnectMin:   2 * time.Millisecond,
		ReconnectMax:   20 * time.Millisecond,
	},
		monocle.WithPorts(1, 2),
		monocle.WithPeers(map[monocle.PortID]uint32{1: 9, 2: 9}),
	)
	if err := be.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	var dials atomic.Int32
	restore := netx.SetDialHook(func(ctx context.Context, network, addr string) (net.Conn, error) {
		if dials.Add(1) <= 3 {
			return nil, errors.New("injected dial failure")
		}
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	})
	defer restore()

	sw.drop()
	ev := waitBackendEvent(t, be.Events(), monocle.BackendReconnected, 10*time.Second)
	if got := dials.Load(); got != 4 {
		t.Fatalf("dial attempts = %d, want 4 (3 backed-off failures + 1 success)", got)
	}
	if want := "4 attempt"; !strings.Contains(ev.Detail, want) {
		t.Fatalf("reconnect event detail %q does not report the attempt count (%q)", ev.Detail, want)
	}
}
