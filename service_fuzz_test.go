package monocle

// Fuzz target for the HTTP rule-spec parser: RuleOp/RuleSpec JSON
// documents are decoded and run through the same field parsing the
// POST /switches/{id}/rules handler uses — OpenFlow 1.0 field names with
// decimal, 0x-hex, dotted-quad, and value/prefixlen forms, plus the
// action specs. The target asserts the parser never panics, that every
// accepted rule revalidates, that parsing is deterministic, and that
// accepted match values stay inside their field's width (an out-of-width
// exact value would silently match the wrong packets).

import (
	"encoding/json"
	"testing"
)

func FuzzRuleSpec(f *testing.F) {
	seeds := []string{
		// The canonical forms the service documentation advertises.
		`{"op":"add","rule":{"id":1,"priority":10,"match":{"dl_type":"0x800","nw_dst":"10.0.1.0/24"},"actions":[{"output":2}]}}`,
		`{"op":"add","rule":{"id":2,"priority":5,"match":{"dl_type":"2048","nw_src":"192.168.0.1"},"actions":[{"ecmp":[1,2,3]}]}}`,
		`{"op":"add","rule":{"id":3,"priority":1,"match":{"in_port":"4","dl_vlan":"0xffff"},"actions":[{"set":{"field":"nw_tos","value":184}},{"output":7}]}}`,
		`{"op":"modify","id":7,"actions":[{"output":9}],"dataplane":"actual"}`,
		`{"op":"delete","id":7,"dataplane":"expected"}`,
		// The sharp edges: overflow, bad quads, prefix bounds, empties.
		`{"op":"add","rule":{"match":{"nw_src":"10.0.0.0/33"}}}`,
		`{"op":"add","rule":{"match":{"nw_src":"1.2.3.4.5"}}}`,
		`{"op":"add","rule":{"match":{"nw_src":"256.0.0.1"}}}`,
		`{"op":"add","rule":{"match":{"dl_type":"0xfffffffffffffffff"}}}`,
		`{"op":"add","rule":{"match":{"tp_dst":"-1"}}}`,
		`{"op":"add","rule":{"match":{"nw_dst":"/8"}}}`,
		`{"op":"add","rule":{"match":{"nw_dst":"10.0.0.0/"}}}`,
		`{"op":"add","rule":{"match":{"bogus_field":"1"}}}`,
		`{"op":"add","rule":{"match":{"dl_src":"0x001122334455/12"}}}`,
		`{"op":"add","rule":{"actions":[{}]}}`,
		`{"op":"add","rule":{"actions":[{"set":{"field":"warp","value":1}}]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var op RuleOp
		if err := json.Unmarshal(data, &op); err != nil {
			return
		}
		if _, err := actionList(op.Actions); err != nil {
			_ = err // rejected action specs are fine; panics are not
		}
		if op.Rule == nil {
			return
		}
		r1, err1 := op.Rule.rule()
		r2, err2 := op.Rule.rule()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic parse: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if r1.ID != r2.ID || r1.Priority != r2.Priority || r1.Match != r2.Match {
			t.Fatalf("nondeterministic rule: %+v vs %+v", r1, r2)
		}
		if err := r1.Validate(); err != nil {
			t.Fatalf("accepted rule fails validation: %v (spec %s)", err, data)
		}
		for f := FieldID(0); f < NumFields; f++ {
			tern := r1.Match[f]
			mask := uint64(1)<<FieldWidth(f) - 1
			if FieldWidth(f) == 64 {
				mask = ^uint64(0)
			}
			if tern.Value&^mask != 0 || tern.Mask&^mask != 0 {
				t.Fatalf("field %s ternary %+v exceeds its %d-bit width (spec %s)",
					f, tern, FieldWidth(f), data)
			}
		}
	})
}
