package monocle_test

// End-to-end monocled service test: an in-process service fronting an
// 8-switch simulated fleet is driven through its full HTTP lifecycle —
// switches added, rules installed over the dynamic-update confirmation
// path, one rule mutated behind the verifier's back — and must surface
// the injected hardware/controller divergence as exactly one debounced
// alert on GET /alerts, then shut down cleanly (run under -race in CI).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"monocle"
)

// svcClient wraps the httptest server with JSON helpers.
type svcClient struct {
	t    *testing.T
	base string
}

func (c *svcClient) post(path string, body any, out any) (int, string) {
	c.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			c.t.Fatalf("POST %s: decoding %q: %v", path, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func (c *svcClient) get(path string) (int, string) {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// alerts fetches and decodes the GET /alerts JSON lines.
func (c *svcClient) alerts() []monocle.Alert {
	c.t.Helper()
	status, body := c.get("/alerts")
	if status != http.StatusOK {
		c.t.Fatalf("GET /alerts: status %d", status)
	}
	var out []monocle.Alert
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var a monocle.Alert
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			c.t.Fatalf("bad alert line %q: %v", sc.Text(), err)
		}
		out = append(out, a)
	}
	return out
}

func TestServiceEndToEndHTTP(t *testing.T) {
	const nSwitches = 8
	svc := monocle.NewService(
		monocle.WithWorkers(2),
		monocle.WithSteadyInterval(3*time.Millisecond),
		monocle.WithDebounce(2),
	)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &svcClient{t: t, base: ts.URL}

	// Add the fleet. Duplicate ids must conflict.
	for id := 1; id <= nSwitches; id++ {
		if status, body := c.post("/switches", monocle.SwitchSpec{ID: uint32(id)}, nil); status != http.StatusCreated {
			t.Fatalf("adding switch %d: status %d body %s", id, status, body)
		}
	}
	if status, _ := c.post("/switches", monocle.SwitchSpec{ID: 1}, nil); status != http.StatusConflict {
		t.Fatalf("duplicate switch add: status %d, want 409", status)
	}

	// Install rules through the dynamic-update path: a low-priority
	// fallback plus four ACL rules per switch. Additions must come back
	// confirmed — expected table and data plane move together.
	for id := 1; id <= nSwitches; id++ {
		rules := []monocle.RuleSpec{
			{ID: 99, Priority: 1, Match: map[string]string{"dl_type": "0x800"},
				Actions: []monocle.ActionSpec{{Output: 9}}},
		}
		for j := 0; j < 4; j++ {
			rules = append(rules, monocle.RuleSpec{
				ID: uint64(j + 1), Priority: 10 + j,
				Match: map[string]string{
					"dl_type": "0x800",
					"nw_dst":  fmt.Sprintf("10.0.%d.0/24", j),
				},
				Actions: []monocle.ActionSpec{{Output: uint16(j + 2)}},
			})
		}
		for _, rs := range rules {
			var reply monocle.UpdateReply
			status, body := c.post(fmt.Sprintf("/switches/%d/rules", id),
				monocle.RuleOp{Op: "add", Rule: &rs}, &reply)
			if status != http.StatusOK {
				t.Fatalf("add rule %d on switch %d: status %d body %s", rs.ID, id, status, body)
			}
			if reply.Verdict != "confirmed" && reply.Verdict != "unmonitorable" {
				t.Fatalf("add rule %d on switch %d: verdict %q, want confirmed", rs.ID, id, reply.Verdict)
			}
		}
	}

	// Start the sweep loop.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()

	// Baseline: let a few rounds pass; a healthy fleet raises nothing.
	waitRounds := func(target uint64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var m monocle.ServiceMetrics
			status, body := c.get("/metrics")
			if status != http.StatusOK {
				t.Fatalf("GET /metrics: status %d", status)
			}
			if err := json.Unmarshal([]byte(body), &m); err != nil {
				t.Fatalf("bad metrics %q: %v", body, err)
			}
			if m.Rounds >= target {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("service never reached %d sweep rounds", target)
	}
	waitRounds(3)
	if as := c.alerts(); len(as) != 0 {
		t.Fatalf("healthy fleet raised alerts: %+v", as)
	}

	// The divergence: switch 5's hardware silently rewrites rule 2 to a
	// wrong port — the controller's view is untouched.
	var reply monocle.UpdateReply
	status, body := c.post("/switches/5/rules", monocle.RuleOp{
		Op: "modify", ID: 2, Dataplane: "actual",
		Actions: []monocle.ActionSpec{{Output: 14}},
	}, &reply)
	if status != http.StatusOK {
		t.Fatalf("behind-the-back modify: status %d body %s", status, body)
	}
	if reply.Verdict != "none" {
		t.Fatalf("data-plane-only mutation produced a confirmation verdict %q", reply.Verdict)
	}

	// Exactly one debounced alert must surface, and stay exactly one.
	deadline := time.Now().Add(30 * time.Second)
	var got []monocle.Alert
	for time.Now().Before(deadline) {
		if got = c.alerts(); len(got) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one alert, got %+v", got)
	}
	a := got[0]
	if a.Type != monocle.AlertRuleFailing || a.SwitchID != 5 || a.Rule != 2 {
		t.Fatalf("alert identifies the wrong divergence: %+v", a)
	}
	if a.Streak < 2 {
		t.Fatalf("alert fired before the debounce threshold: %+v", a)
	}
	if a.Record == nil || a.Record.Switch != 5 || a.Record.Rule != 2 {
		t.Fatalf("alert record missing or wrong: %+v", a.Record)
	}

	// Debounced means debounced: many more rounds, still exactly one.
	var m monocle.ServiceMetrics
	_, mbody := c.get("/metrics")
	if err := json.Unmarshal([]byte(mbody), &m); err != nil {
		t.Fatal(err)
	}
	waitRounds(m.Rounds + 5)
	if as := c.alerts(); len(as) != 1 {
		t.Fatalf("alert count changed after more rounds: %+v", as)
	}

	// The sweep log streams ResultRecords for the whole fleet.
	status, body = c.get("/sweeps")
	if status != http.StatusOK {
		t.Fatalf("GET /sweeps: status %d", status)
	}
	lines := 0
	perSwitch := map[uint32]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var rec monocle.ResultRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		perSwitch[rec.Switch] = true
		lines++
	}
	if lines != nSwitches*5 {
		t.Fatalf("sweep log has %d lines, want %d", lines, nSwitches*5)
	}
	if len(perSwitch) != nSwitches {
		t.Fatalf("sweep log covers %d switches, want %d", len(perSwitch), nSwitches)
	}

	// Health before and after the drain.
	status, body = c.get("/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"ok":true`) || !strings.Contains(body, `"draining":false`) {
		t.Fatalf("healthz before drain: %d %s", status, body)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("service did not drain after cancellation")
	}
	status, body = c.get("/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"draining":true`) {
		t.Fatalf("healthz after drain: %d %s", status, body)
	}
}

// TestServiceSweepEndpointAndErrors covers the externally-paced POST
// /sweep path and the HTTP error mapping.
func TestServiceSweepEndpointAndErrors(t *testing.T) {
	svc := monocle.NewService(monocle.WithWorkers(1))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &svcClient{t: t, base: ts.URL}

	if status, _ := c.post("/switches", monocle.SwitchSpec{ID: 0}, nil); status != http.StatusBadRequest {
		t.Fatalf("zero switch id: status %d, want 400", status)
	}
	if status, _ := c.post("/switches/7/rules", monocle.RuleOp{Op: "delete", ID: 1}, nil); status != http.StatusNotFound {
		t.Fatalf("rule op on unknown switch: status %d, want 404", status)
	}
	if status, _ := c.post("/switches", monocle.SwitchSpec{ID: 7, Miss: "sideways"}, nil); status != http.StatusBadRequest {
		t.Fatalf("bad miss behaviour: status %d, want 400", status)
	}
	if status, body := c.post("/switches", monocle.SwitchSpec{ID: 7}, nil); status != http.StatusCreated {
		t.Fatalf("adding switch: %d %s", status, body)
	}
	if status, _ := c.post("/switches/7/rules", monocle.RuleOp{Op: "delete", ID: 1}, nil); status != http.StatusNotFound {
		t.Fatalf("deleting unknown rule: status %d, want 404", status)
	}
	if status, _ := c.post("/switches/7/rules", monocle.RuleOp{Op: "frobnicate"}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", status)
	}
	rs := monocle.RuleSpec{ID: 1, Priority: 5,
		Match:   map[string]string{"dl_type": "0x800", "nw_src": "192.168.0.0/16"},
		Actions: []monocle.ActionSpec{{Output: 3}}}
	if status, body := c.post("/switches/7/rules", monocle.RuleOp{Op: "add", Rule: &rs}, nil); status != http.StatusOK {
		t.Fatalf("add: %d %s", status, body)
	}
	if status, _ := c.post("/switches/7/rules", monocle.RuleOp{Op: "add", Rule: &rs}, nil); status != http.StatusConflict {
		t.Fatalf("duplicate rule id: status %d, want 409", status)
	}

	// One externally-paced round: no Run loop involved.
	var round struct {
		Round  uint64          `json:"round"`
		Rules  int             `json:"rules"`
		Alerts []monocle.Alert `json:"alerts"`
	}
	if status, body := c.post("/sweep", struct{}{}, &round); status != http.StatusOK {
		t.Fatalf("POST /sweep: %d %s", status, body)
	}
	if round.Round != 1 || round.Rules != 1 || len(round.Alerts) != 0 {
		t.Fatalf("unexpected round summary: %+v", round)
	}

	// A rule deleted from hardware only, swept twice (debounce default
	// 1): exactly one failing alert through the manual path too.
	if status, body := c.post("/switches/7/rules",
		monocle.RuleOp{Op: "delete", ID: 1, Dataplane: "actual"}, nil); status != http.StatusOK {
		t.Fatalf("behind-the-back delete: %d %s", status, body)
	}
	if status, body := c.post("/sweep", struct{}{}, &round); status != http.StatusOK {
		t.Fatalf("POST /sweep: %d %s", status, body)
	}
	if len(round.Alerts) != 1 || round.Alerts[0].Type != monocle.AlertRuleFailing {
		t.Fatalf("manual sweep alerts: %+v", round.Alerts)
	}
}
