package monocle

// Backend session traces: the append-only JSON-line format RecordBackend
// writes and ReplayBackend re-serves. A trace is one switch's complete
// driver history — every Connect/Apply/Observe/Epoch call with its
// outcome, every BackendEvent, and the service-layer markers (switch
// spec, rule operations, sweep-round boundaries) that let cmd/monotrace
// re-drive the whole session through a fresh Service. The file format
// follows the WAL discipline of store.go: a versioned header line,
// fsync-batched appends, and torn-tail-tolerant reads (a crash mid-append
// loses at most the unflushed tail, never the parse).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// TraceVersion is the trace format version this build writes and reads.
const TraceVersion = 1

// ErrTraceVersion reports a trace written by an incompatible format
// version.
var ErrTraceVersion = errors.New("monocle: unsupported trace version")

// errNoTraceHeader reports a stream that does not start with a trace
// header line.
var errNoTraceHeader = errors.New("monocle: missing trace header")

// TraceHeader is the first line of every trace file. The Version field
// marshals under the key "monocle_trace", doubling as the file's magic.
type TraceHeader struct {
	// Version is the trace format version (TraceVersion).
	Version int `json:"monocle_trace"`
	// Switch is the recorded switch's id.
	Switch uint32 `json:"switch,omitempty"`
	// Note is a free-form annotation (who recorded, why).
	Note string `json:"note,omitempty"`
}

// Trace record kinds. Call records (connect, apply, observe, close) are
// consumed in strict order by ReplayBackend; event records re-emit on the
// replay's Events stream at the position they were recorded; annotation
// records (epoch, spec, rule_op, round) carry session context for offline
// replay drivers and are skipped by the backend-call cursor.
const (
	// TraceKindConnect records one Backend.Connect call and its error.
	TraceKindConnect = "connect"
	// TraceKindClose records the Backend.Close call ending the session.
	TraceKindClose = "close"
	// TraceKindApply records one Backend.Apply call: the operation, the
	// driver's post-apply epoch, and the error.
	TraceKindApply = "apply"
	// TraceKindObserve records one Backend.Observe call: the probe's
	// header (the replay matching key), the expectation, and the verdict
	// or error the data plane produced.
	TraceKindObserve = "observe"
	// TraceKindEpoch annotates an explicit Backend.Epoch poll.
	TraceKindEpoch = "epoch"
	// TraceKindEvent records one BackendEvent from the driver's stream.
	TraceKindEvent = "event"
	// TraceKindSpec annotates the SwitchSpec the switch was added with.
	TraceKindSpec = "spec"
	// TraceKindRuleOp annotates one service-level rule operation
	// (Service.ApplyRule, or an InstallRules entry with Dataplane
	// "install").
	TraceKindRuleOp = "rule_op"
	// TraceKindRound annotates the start of one sweep round.
	TraceKindRound = "round"
)

// TraceOp is the serialized form of one BackendOp.
type TraceOp struct {
	Op      string       `json:"op"`
	ID      uint64       `json:"id,omitempty"`
	Rule    *RuleSpec    `json:"rule,omitempty"`
	Actions []ActionSpec `json:"actions,omitempty"`
}

// TraceEvent is the serialized form of one BackendEvent.
type TraceEvent struct {
	Type   string `json:"type"`
	Rule   uint64 `json:"rule,omitempty"`
	Err    string `json:"err,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// TraceRecord is one trace line. Kind selects which payload fields are
// meaningful. Seq is a per-trace monotonic sequence number; T is the
// record's clock offset in nanoseconds from the start of the recording.
type TraceRecord struct {
	Seq  uint64 `json:"seq"`
	T    int64  `json:"t,omitempty"`
	Kind string `json:"kind"`
	// Op is the applied operation (kind "apply").
	Op *TraceOp `json:"op,omitempty"`
	// Probe is the observed probe (kind "observe"); its Header is the
	// replay matching key.
	Probe *ProbeRecord `json:"probe,omitempty"`
	// RuleID is the observed probe's rule id (kind "observe").
	RuleID uint64 `json:"rule_id,omitempty"`
	// Expect is the observation's expectation name (kind "observe").
	Expect string `json:"expect,omitempty"`
	// Verdict is the data plane's judgement (kind "observe").
	Verdict string `json:"verdict,omitempty"`
	// Err is the call's error text ("" for success).
	Err string `json:"err,omitempty"`
	// Epoch is the driver epoch after the call (kinds "connect",
	// "apply", "epoch").
	Epoch uint64 `json:"epoch,omitempty"`
	// Event is the driver lifecycle event (kind "event").
	Event *TraceEvent `json:"event,omitempty"`
	// Spec is the switch registration (kind "spec").
	Spec *SwitchSpec `json:"spec,omitempty"`
	// RuleOp is the service-level rule operation (kind "rule_op").
	RuleOp *RuleOp `json:"rule_op,omitempty"`
	// Round is the sweep round number (kind "round").
	Round uint64 `json:"round,omitempty"`
}

// Trace is one decoded trace: the header plus every intact record in
// file order.
type Trace struct {
	Header  TraceHeader
	Records []TraceRecord
}

// traceSyncEvery bounds how many appended records may ride one fsync:
// the writer batches flushes so a probe-per-record sweep does not pay a
// disk sync per probe, and a crash loses at most the last batch.
const traceSyncEvery = 32

// TraceWriter appends records to one trace. It is safe for concurrent
// use (a recording driver appends from the caller's goroutine and its
// event pump concurrently).
type TraceWriter struct {
	mu      sync.Mutex
	f       *os.File // nil when backed by a plain io.Writer
	w       *bufio.Writer
	seq     uint64
	start   time.Time
	pending int
	closed  bool
}

// CreateTrace creates (truncating) a trace file at path and writes its
// header.
func CreateTrace(path string, hdr TraceHeader) (*TraceWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("monocle: trace: %w", err)
	}
	tw, err := newTraceWriter(f, f, hdr)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return tw, nil
}

// NewTraceWriter writes a trace to an arbitrary writer (tests, pipes);
// durability batching applies only to file-backed writers.
func NewTraceWriter(w io.Writer, hdr TraceHeader) (*TraceWriter, error) {
	return newTraceWriter(w, nil, hdr)
}

func newTraceWriter(w io.Writer, f *os.File, hdr TraceHeader) (*TraceWriter, error) {
	if hdr.Version == 0 {
		hdr.Version = TraceVersion
	}
	tw := &TraceWriter{f: f, w: bufio.NewWriter(w), start: time.Now()}
	line, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	tw.w.Write(line)
	tw.w.WriteByte('\n')
	if err := tw.flushLocked(); err != nil {
		return nil, err
	}
	return tw, nil
}

// Append stamps rec with the next sequence number and its clock offset,
// encodes it as one line, and schedules it for the next fsync batch.
func (tw *TraceWriter) Append(rec TraceRecord) error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.closed {
		return fmt.Errorf("monocle: trace writer closed")
	}
	tw.seq++
	rec.Seq = tw.seq
	rec.T = time.Since(tw.start).Nanoseconds()
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := tw.w.Write(append(line, '\n')); err != nil {
		return err
	}
	tw.pending++
	if tw.pending >= traceSyncEvery {
		return tw.flushLocked()
	}
	return nil
}

// Flush forces the pending batch to durable storage.
func (tw *TraceWriter) Flush() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.closed {
		return nil
	}
	return tw.flushLocked()
}

func (tw *TraceWriter) flushLocked() error {
	if err := tw.w.Flush(); err != nil {
		return err
	}
	tw.pending = 0
	if tw.f != nil {
		return tw.f.Sync()
	}
	return nil
}

// Close flushes and closes the trace. Idempotent.
func (tw *TraceWriter) Close() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.closed {
		return nil
	}
	err := tw.flushLocked()
	tw.closed = true
	if tw.f != nil {
		if cerr := tw.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadTraceFile decodes the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("monocle: trace: %w", err)
	}
	defer f.Close()
	return DecodeTrace(f)
}

// DecodeTrace decodes one trace stream: the header line, then every
// record up to (not including) the first torn or corrupt line — the
// signature of a crash mid-append, tolerated exactly like the store's
// WALs. A missing header or an unsupported version is an error; torn
// tails are not.
func DecodeTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	seenHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !seenHeader {
			var hdr TraceHeader
			if err := json.Unmarshal([]byte(line), &hdr); err != nil || hdr.Version == 0 {
				return nil, errNoTraceHeader
			}
			if hdr.Version != TraceVersion {
				return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrTraceVersion, hdr.Version, TraceVersion)
			}
			tr.Header = hdr
			seenHeader = true
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			break // torn tail: keep everything already parsed
		}
		if rec.Kind == "" {
			continue // unknown/foreign line: skip, keep reading
		}
		tr.Records = append(tr.Records, rec)
	}
	if !seenHeader {
		return nil, errNoTraceHeader
	}
	if err := sc.Err(); err != nil {
		return tr, nil // oversized torn tail: same treatment
	}
	return tr, nil
}
