package monocle

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// scenarioWorkerBudgets are the solver parallelism levels every scenario
// must behave identically under.
var scenarioWorkerBudgets = []int{1, 2, 8}

// TestScenarioMatrix runs the full adversarial scenario fleet at every
// worker budget: each scenario asserts its exact declared alert sequence
// (Run errors on any false positive, miss, or misorder), and the
// marshaled alert streams must be byte-identical across budgets. With
// SCENARIO_TRACE_DIR set (the CI artifact directory), every switch
// session is recorded there, so a failing scenario leaves a replayable
// trace behind.
func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix drives real TCP switches with wall-clock timeouts")
	}
	artifactRoot := os.Getenv("SCENARIO_TRACE_DIR")
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var canonical []byte
			for i, workers := range scenarioWorkerBudgets {
				traceDir := ""
				if artifactRoot != "" {
					traceDir = filepath.Join(artifactRoot, sc.Name, "workers-"+itoa(workers))
				} else {
					traceDir = filepath.Join(t.TempDir(), "workers-"+itoa(workers))
				}
				res, err := sc.Run(workers, traceDir)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				t.Logf("workers=%d: %d rounds, %d alerts", workers, res.Rounds, len(res.Alerts))
				if i == 0 {
					canonical = res.Stream
					continue
				}
				if !bytes.Equal(res.Stream, canonical) {
					t.Fatalf("workers=%d alert stream diverged from workers=%d:\n--- workers=%d ---\n%s--- workers=%d ---\n%s",
						workers, scenarioWorkerBudgets[0],
						scenarioWorkerBudgets[0], canonical, workers, res.Stream)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestScenariosDeclared pins the fleet's composition: the CI matrix job
// names these sub-tests, so renames must be deliberate.
func TestScenariosDeclared(t *testing.T) {
	want := []string{
		"churn_storm",
		"churn_divergence",
		"flap_midsweep",
		"backend_flapping",
		"confirm_window_drop",
		"slow_lossy",
		"ecmp_multicast",
		"priority_shadow",
		"policy_groups",
	}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("fleet has %d scenarios, want %d", len(got), len(want))
	}
	for i, sc := range got {
		if sc.Name != want[i] {
			t.Fatalf("scenario %d is %q, want %q", i, sc.Name, want[i])
		}
		if sc.Description == "" {
			t.Fatalf("scenario %q has no description", sc.Name)
		}
		if sc.run == nil {
			t.Fatalf("scenario %q has no body", sc.Name)
		}
	}
}
