package monocle_test

// Policy-layer end-to-end tests: a live service driven through PUT
// /policy splits its fleet into an edge group (fast cadence, filtered
// alerts) and a core group (slow cadence, sampled tables), each sweeping
// on its own clock with exactly the declared alert set; an invalid PUT
// is rejected with the source position and leaves the running plan
// untouched. A determinism test pins the whole policy pipeline — plan
// compilation, seeded sampling, alert folding — byte-identical across
// solver worker budgets, and a cancellation test pins that Run threads
// its context into the sweep so a drain aborts a blocked round.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"monocle"
)

// put issues a PUT with a raw body (the policy endpoints speak plain
// policy text, not JSON).
func (c *svcClient) put(path, body string) (int, string) {
	c.t.Helper()
	req, err := http.NewRequest(http.MethodPut, c.base+path, strings.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("PUT %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// policyE2EText is the two-class policy the e2e test installs: edge
// switches sweep fast and alert only on the customer prefix; core
// switches sweep slow and sample a quarter of their tables per round.
const policyE2EText = `
policy edge {
  select tag "edge"
  every 10ms
  debounce 1
  alert only nw_dst in 10.0.0.0/8
}

policy core {
  select tag "core"
  every 120ms
  sample 25% seed 11
}
`

func TestPolicyEndToEndHTTP(t *testing.T) {
	svc := monocle.NewService(
		monocle.WithWorkers(2),
		monocle.WithSteadyInterval(5*time.Millisecond),
	)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &svcClient{t: t, base: ts.URL}

	// No policy yet: GET /policy is a 404, not an empty document.
	if status, _ := c.get("/policy"); status != http.StatusNotFound {
		t.Fatalf("GET /policy without a policy: status %d, want 404", status)
	}

	// Two switch classes, tagged at registration: edge (1, 2), core (3, 4).
	for id := uint32(1); id <= 4; id++ {
		tag := "edge"
		if id >= 3 {
			tag = "core"
		}
		spec := monocle.SwitchSpec{ID: id, Tags: []string{tag}}
		if status, body := c.post("/switches", spec, nil); status != http.StatusCreated {
			t.Fatalf("adding switch %d: status %d body %s", id, status, body)
		}
	}
	// Edge switches carry a customer-prefix rule (inside the alert
	// filter) and a guest rule outside it; core switches carry four
	// rules so the 25% sample is a strict subset each round.
	addRule := func(sw uint32, id uint64, prio int, dst string, out uint16) {
		t.Helper()
		var reply monocle.UpdateReply
		op := monocle.RuleOp{Op: "add", Rule: &monocle.RuleSpec{
			ID: id, Priority: prio,
			Match:   map[string]string{"dl_type": "0x800", "nw_dst": dst},
			Actions: []monocle.ActionSpec{{Output: out}},
		}}
		status, body := c.post(fmt.Sprintf("/switches/%d/rules", sw), op, &reply)
		if status != http.StatusOK || reply.Verdict != "confirmed" {
			t.Fatalf("rule %d on switch %d: status %d verdict %q body %s", id, sw, status, reply.Verdict, body)
		}
	}
	for _, sw := range []uint32{1, 2} {
		addRule(sw, 1, 20, fmt.Sprintf("10.0.%d.0/24", sw), 2)
		addRule(sw, 2, 10, fmt.Sprintf("192.168.%d.0/24", sw), 3)
	}
	for _, sw := range []uint32{3, 4} {
		for j := uint64(1); j <= 4; j++ {
			addRule(sw, j, 10+int(j), fmt.Sprintf("10.%d.%d.0/24", j, sw), uint16(j+1))
		}
	}

	// Install the policy over the wire: the response names the groups
	// and where every switch landed.
	var installed struct {
		Groups      []string            `json:"groups"`
		Assignments map[string][]uint32 `json:"assignments"`
	}
	status, body := c.put("/policy", policyE2EText)
	if status != http.StatusOK {
		t.Fatalf("PUT /policy: status %d body %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &installed); err != nil {
		t.Fatalf("bad PUT /policy response %q: %v", body, err)
	}
	wantAsn := map[string][]uint32{"edge": {1, 2}, "core": {3, 4}}
	for g, want := range wantAsn {
		if got := installed.Assignments[g]; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("group %q resolved to switches %v, want %v (full response %s)", g, got, want, body)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v", err)
		}
	}()

	// groupMetrics polls GET /metrics until cond holds over the per-group
	// counters.
	groupMetrics := func(cond func(map[string]monocle.GroupMetrics) bool) map[string]monocle.GroupMetrics {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var m monocle.ServiceMetrics
			if status, body := c.get("/metrics"); status != http.StatusOK {
				t.Fatalf("GET /metrics: status %d", status)
			} else if err := json.Unmarshal([]byte(body), &m); err != nil {
				t.Fatalf("bad metrics %q: %v", body, err)
			}
			byName := make(map[string]monocle.GroupMetrics, len(m.Groups))
			for _, g := range m.Groups {
				byName[g.Group] = g
			}
			if cond(byName) {
				return byName
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatal("metrics never reached the expected per-group state")
		return nil
	}

	// Each group sweeps at its own cadence: by the time the slow core
	// group has finished a few rounds, the 12×-faster edge group must
	// have completed strictly more.
	groups := groupMetrics(func(g map[string]monocle.GroupMetrics) bool {
		return g["core"].Rounds >= 3
	})
	if e, co := groups["edge"], groups["core"]; e.Rounds < 2*co.Rounds {
		t.Fatalf("edge group swept %d rounds to core's %d; a 10ms cadence should far outpace 120ms", e.Rounds, co.Rounds)
	}
	if e := groups["edge"]; e.Switches != 2 || groups["core"].Switches != 2 {
		t.Fatalf("group membership wrong: %+v", groups)
	}
	if as := c.alerts(); len(as) != 0 {
		t.Fatalf("healthy fleet raised alerts: %+v", as)
	}

	// Three hardware losses behind the verifier's back: the filtered
	// edge rule must stay silent, the customer edge rule and the core
	// rule must each alert exactly once.
	breakRule := func(sw uint32, id uint64) {
		t.Helper()
		var reply monocle.UpdateReply
		op := monocle.RuleOp{Op: "delete", ID: id, Dataplane: "actual"}
		if status, body := c.post(fmt.Sprintf("/switches/%d/rules", sw), op, &reply); status != http.StatusOK {
			t.Fatalf("behind-the-back delete of rule %d on switch %d: status %d body %s", id, sw, status, body)
		}
	}
	breakRule(1, 2) // edge, 192.168/24: outside the alert filter
	breakRule(2, 1) // edge, 10/8: alerts
	breakRule(3, 1) // core: alerts on the round its sample comes up

	wantAlerts := map[string]bool{
		"rule_failing(switch 2, rule 1)": true,
		"rule_failing(switch 3, rule 1)": true,
	}
	deadline := time.Now().Add(30 * time.Second)
	var got []monocle.Alert
	for time.Now().Before(deadline) {
		got = c.alerts()
		seen := make(map[string]bool, len(got))
		for _, a := range got {
			seen[monocle.AlertKey(a)] = true
		}
		if len(seen) >= len(wantAlerts) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	keys := make(map[string]int)
	for _, a := range got {
		keys[monocle.AlertKey(a)]++
	}
	for k, n := range keys {
		if !wantAlerts[k] {
			t.Fatalf("unexpected alert %s (the filtered edge rule must stay silent): all %v", k, keys)
		}
		if n != 1 {
			t.Fatalf("alert %s fired %d times, want once: %v", k, n, keys)
		}
	}
	for k := range wantAlerts {
		if keys[k] != 1 {
			t.Fatalf("missing alert %s: got %v", k, keys)
		}
	}

	// An invalid policy is rejected with its source position and the
	// running plan stays untouched: GET /policy still serves the old
	// source and both groups keep sweeping.
	before := groupMetrics(func(map[string]monocle.GroupMetrics) bool { return true })
	status, body = c.put("/policy", "policy broken {\n  every\n}")
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("PUT of invalid policy: status %d body %s, want 422", status, body)
	}
	var perr struct {
		Error  string `json:"error"`
		Line   int    `json:"line"`
		Column int    `json:"column"`
	}
	if err := json.Unmarshal([]byte(body), &perr); err != nil {
		t.Fatalf("bad 422 body %q: %v", body, err)
	}
	// "every" on line 2 has no duration; the parser pins the error on the
	// "}" token that surfaced it (line 3, column 1).
	if perr.Error == "" || perr.Line != 3 || perr.Column != 1 {
		t.Fatalf("422 body does not pin the source position: %+v (body %s)", perr, body)
	}
	if status, src := c.get("/policy"); status != http.StatusOK || src != policyE2EText {
		t.Fatalf("rejected PUT disturbed the active policy: status %d source %q", status, src)
	}
	groupMetrics(func(g map[string]monocle.GroupMetrics) bool {
		return g["edge"].Rounds > before["edge"].Rounds && g["core"].Rounds >= before["core"].Rounds
	})
}

// TestPolicyDeterminismAcrossWorkers pins the policy pipeline's
// determinism: with a sampled two-group policy and injected divergences,
// the compiled probe plans and the alert stream are byte-identical at
// solver worker budgets 1, 2, and 8 (run under -race in CI).
func TestPolicyDeterminismAcrossWorkers(t *testing.T) {
	const policyText = `
policy edge {
  select tag "edge"
  debounce 1
  alert only nw_dst in 10.0.0.0/8
}

policy core {
  select tag "core"
  sample 50% seed 3
}
`
	run := func(workers int) []byte {
		pol, err := monocle.ParsePolicy(policyText)
		if err != nil {
			t.Fatal(err)
		}
		svc := monocle.NewService(monocle.WithWorkers(workers), monocle.WithPolicy(pol))
		defer svc.Close()
		for id := uint32(1); id <= 4; id++ {
			tag := "edge"
			if id >= 3 {
				tag = "core"
			}
			if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: id, Tags: []string{tag}}); err != nil {
				t.Fatal(err)
			}
			var rules []*monocle.Rule
			for j := uint64(1); j <= 4; j++ {
				prefix := uint64(10)<<24 | j<<16 | uint64(id)<<8
				if j == 2 {
					prefix = uint64(192)<<24 | uint64(168)<<16 | uint64(id)<<8
				}
				m := monocle.MatchAll().With(monocle.IPDst, monocle.Prefix(monocle.IPDst, prefix, 24))
				rules = append(rules, &monocle.Rule{
					ID: j, Priority: 10 + int(j), Match: m,
					Actions: []monocle.Action{monocle.Output(monocle.PortID(j + 1))},
				})
			}
			if err := svc.InstallRules(id, rules...); err != nil {
				t.Fatal(err)
			}
		}
		// One loss per class behind the verifier's back, plus a filtered
		// one that must never surface.
		for _, br := range []struct {
			sw uint32
			id uint64
		}{{1, 2}, {2, 1}, {3, 3}} {
			if _, err := svc.ApplyRule(br.sw, monocle.RuleOp{Op: "delete", ID: br.id, Dataplane: "actual"}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		ctx := context.Background()
		for round := 0; round < 12; round++ {
			for _, p := range svc.ProbePlans() {
				if err := enc.Encode(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, a := range svc.SweepRound(ctx) {
				if err := enc.Encode(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		return buf.Bytes()
	}

	budgets := []int{1, 2, 8}
	canonical := run(budgets[0])
	// The baseline must have surfaced the two unfiltered losses and
	// nothing from switch 1 (its loss is outside the edge alert filter).
	failing := 0
	for _, line := range bytes.Split(canonical, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if _, isAlert := probe["type"]; !isAlert {
			continue // a probe-plan line
		}
		var a monocle.Alert
		if err := json.Unmarshal(line, &a); err != nil {
			t.Fatalf("bad alert line %q: %v", line, err)
		}
		if a.SwitchID == 1 {
			t.Fatalf("filtered edge loss surfaced an alert: %s", line)
		}
		if a.Type == monocle.AlertRuleFailing {
			failing++
		}
	}
	if failing != 2 {
		t.Fatalf("baseline raised %d rule_failing alerts, want 2 (switch 2 and switch 3):\n%s", failing, canonical)
	}
	for _, w := range budgets[1:] {
		if stream := run(w); !bytes.Equal(stream, canonical) {
			t.Fatalf("workers=%d diverged from workers=%d:\n--- workers=%d ---\n%s--- workers=%d ---\n%s",
				w, budgets[0], budgets[0], canonical, w, stream)
		}
	}
}

// blockingBackend is a Backend whose Observe parks until its context is
// cancelled: with it registered, Run is guaranteed to be inside a sweep
// when the test cancels, so a hang here means the sweep context was not
// threaded through.
type blockingBackend struct {
	id      uint32
	entered chan struct{}
	enter   sync.Once
	closed  sync.Once
	events  chan monocle.BackendEvent
}

func (b *blockingBackend) SwitchID() uint32                    { return b.id }
func (b *blockingBackend) Connect(context.Context) error       { return nil }
func (b *blockingBackend) Apply(monocle.BackendOp) error       { return nil }
func (b *blockingBackend) Epoch() uint64                       { return 0 }
func (b *blockingBackend) Events() <-chan monocle.BackendEvent { return b.events }
func (b *blockingBackend) Close() error {
	b.closed.Do(func() { close(b.events) })
	return nil
}
func (b *blockingBackend) Observe(ctx context.Context, _ *monocle.Probe, _ monocle.Expectation) (monocle.Verdict, error) {
	b.enter.Do(func() { close(b.entered) })
	<-ctx.Done()
	return monocle.VerdictUnexpected, ctx.Err()
}

// TestRunCancellation pins the drain path: cancelling Run's context must
// abort the in-flight sweep round promptly — the round's partial fold is
// discarded (no alerts, round not counted) instead of blocking forever
// on a stuck data plane.
func TestRunCancellation(t *testing.T) {
	svc := monocle.NewService(monocle.WithSteadyInterval(time.Millisecond))
	defer svc.Close()
	be := &blockingBackend{
		id:      7,
		entered: make(chan struct{}),
		events:  make(chan monocle.BackendEvent),
	}
	if _, err := svc.Fleet().AddBackend(be); err != nil {
		t.Fatal(err)
	}
	rule := &monocle.Rule{ID: 1, Priority: 10, Match: monocle.MatchAll(),
		Actions: []monocle.Action{monocle.Output(1)}}
	if err := svc.InstallRules(7, rule); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()

	select {
	case <-be.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no sweep reached the backend")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after cancellation: the sweep is not running under Run's context")
	}
	if as := svc.Alerts(); len(as) != 0 {
		t.Fatalf("aborted round raised alerts: %+v", as)
	}
	if m := svc.Metrics(); m.Rounds != 0 {
		t.Fatalf("aborted round was counted: %d rounds", m.Rounds)
	}
}
